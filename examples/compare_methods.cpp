//===- examples/compare_methods.cpp - Framework extensibility demo --------===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
// Shows the §3.5 extensibility story: after end-to-end RL training, the
// learning-agent block of the framework (Fig 3) is swapped for other
// prediction methods — nearest-neighbor search and a decision tree fitted
// on brute-force labels, plus random search — and all of them are scored
// on a held-out slice of the synthetic dataset.
//
//   $ ./compare_methods
//
//===----------------------------------------------------------------------===//

#include "core/NeuroVectorizer.h"
#include "dataset/LoopGenerator.h"
#include "support/Stats.h"
#include "support/Table.h"

#include <iostream>

using namespace nv;

int main() {
  NeuroVectorizerConfig Config;
  Config.PPO.BatchSize = 256;
  Config.PPO.MiniBatchSize = 64;
  Config.PPO.LearningRate = 2e-3;
  Config.PPO.EntropyCoef = 0.05;
  NeuroVectorizer NV(Config);

  // 80/20 train/test split of the synthetic dataset (the paper keeps 20%
  // of its samples for testing, §4).
  LoopGenerator Gen(99);
  std::vector<GeneratedLoop> Train = Gen.generateMany(200);
  std::vector<GeneratedLoop> Test = Gen.generateMany(50);
  for (const GeneratedLoop &L : Train)
    NV.addTrainingProgram(L.Name, L.Source);

  std::cout << "training RL end-to-end, then fitting the supervised "
               "methods on brute-force labels...\n";
  NV.train(20000);
  NV.fitSupervised(/*MaxSamples=*/128);

  struct MethodRow {
    const char *Name;
    PredictMethod Method;
  };
  const MethodRow Methods[] = {
      {"random", PredictMethod::Random},
      {"NNS", PredictMethod::NNS},
      {"decision tree", PredictMethod::DecisionTree},
      {"RL", PredictMethod::RL},
      {"brute force", PredictMethod::BruteForce},
  };

  std::cout << "\nheld-out test set (" << Test.size()
            << " programs), average speedup over baseline:\n\n";
  std::vector<double> Geomeans;
  for (const MethodRow &M : Methods) {
    std::vector<double> Speedups;
    for (const GeneratedLoop &L : Test)
      Speedups.push_back(NV.speedupOverBaseline(L.Source, M.Method));
    Geomeans.push_back(geomean(Speedups));
  }
  const double BruteMean = Geomeans.back();

  Table T({"method", "geomean speedup", "vs brute force"});
  for (size_t I = 0; I < std::size(Methods); ++I)
    T.addRow({Methods[I].Name, Table::fmt(Geomeans[I]),
              Table::fmt(100.0 * Geomeans[I] / BruteMean, 1) + "%"});
  T.print(std::cout);
  return 0;
}
