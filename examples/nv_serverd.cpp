//===- examples/nv_serverd.cpp - The annotation daemon --------------------===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
// The network deployment of the paper's oracle: an epoll TCP daemon
// serving batched annotation requests over the length-prefixed protocol
// in net/Protocol.h, with zero-downtime hot model reload — push a
// retrained v3 model file and `reload` it without dropping a request.
//
//   $ ./nv_serverd --train-demo model.nvm --port 7117
//   $ python3 tools/nv_client.py --port 7117 annotate kernel.c
//   $ python3 tools/nv_client.py --port 7117 reload model.nvm
//   $ python3 tools/nv_client.py --port 7117 statsz
//
// --train-demo trains a small model first (so the daemon is usable
// standalone); production use is --model with a file a training process
// saved. SIGINT/SIGTERM drain: admitted requests finish and get their
// responses, new ones answer SHUTTING_DOWN, then the daemon exits after
// writing a final telemetry snapshot (--snapshot).
//
//===----------------------------------------------------------------------===//

#include "core/NeuroVectorizer.h"
#include "dataset/LoopGenerator.h"
#include "net/NetServer.h"
#include "nn/Kernels.h"
#include "serve/ModelHost.h"

#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

using namespace nv;

namespace {

NetServer *ActiveServer = nullptr;

void onSignal(int) {
  // Async-signal-safe by contract (one store + one eventfd write).
  if (ActiveServer)
    ActiveServer->requestShutdown();
}

int usage(const char *Argv0) {
  std::cerr
      << "usage: " << Argv0 << " [options]\n"
      << "  --host H          bind address (default 127.0.0.1)\n"
      << "  --port P          bind port (default 7117; 0 = ephemeral)\n"
      << "  --model PATH      v3 model file to serve (hot-reloadable)\n"
      << "  --train-demo PATH train a small demo model, save it to PATH,\n"
      << "                    and serve it (standalone quick start)\n"
      << "  --threads N       annotation pool size (default 4)\n"
      << "  --quantized       serve int8-quantized generations (inference\n"
      << "                    only; see docs/quantization.md)\n"
      << "  --executors N     request executor threads (default 2)\n"
      << "  --queue-watermark N  shed when executor queue >= N (default 64)\n"
      << "  --max-inflight-mb N  shed when admitted bytes > N MiB "
         "(default 32)\n"
      << "  --snapshot PATH   write a final telemetry snapshot on drain\n";
  return 2;
}

} // namespace

int main(int Argc, char **Argv) {
  // A client that vanishes mid-response must surface as EPIPE on the
  // write, not kill the daemon with SIGPIPE (belt to NetServer's
  // MSG_NOSIGNAL suspenders — covers any raw write paths too).
  std::signal(SIGPIPE, SIG_IGN);
  std::string Host = "127.0.0.1";
  uint16_t Port = 7117;
  std::string ModelPath;
  std::string TrainDemoPath;
  int Threads = 4;
  bool Quantized = false;
  NetServerConfig Net;

  for (int I = 1; I < Argc; ++I) {
    const std::string Arg = Argv[I];
    auto Next = [&](const char *Flag) -> const char * {
      if (I + 1 >= Argc) {
        std::cerr << Flag << " needs a value\n";
        std::exit(2);
      }
      return Argv[++I];
    };
    if (Arg == "--host")
      Host = Next("--host");
    else if (Arg == "--port")
      Port = static_cast<uint16_t>(std::atoi(Next("--port")));
    else if (Arg == "--model")
      ModelPath = Next("--model");
    else if (Arg == "--train-demo")
      TrainDemoPath = Next("--train-demo");
    else if (Arg == "--threads")
      Threads = std::atoi(Next("--threads"));
    else if (Arg == "--quantized")
      Quantized = true;
    else if (Arg == "--executors")
      Net.Executors = std::atoi(Next("--executors"));
    else if (Arg == "--queue-watermark")
      Net.QueueWatermark =
          static_cast<size_t>(std::atol(Next("--queue-watermark")));
    else if (Arg == "--max-inflight-mb")
      Net.MaxInFlightBytes =
          static_cast<size_t>(std::atol(Next("--max-inflight-mb"))) << 20;
    else if (Arg == "--snapshot")
      Net.FinalSnapshotPath = Next("--snapshot");
    else
      return usage(Argv[0]);
  }
  Net.Host = Host;
  Net.Port = Port;

  // One architecture for the whole process; a reloaded file must match it
  // (the serializer validates every shape).
  NeuroVectorizerConfig Config;

  if (!TrainDemoPath.empty()) {
    // Standalone quick start: train a small model in-process, distill the
    // supervised backends, and save — the file is then served AND doubles
    // as a hot-reload target for client demos.
    Config.PPO.BatchSize = 256;
    Config.PPO.MiniBatchSize = 64;
    Config.PPO.LearningRate = 2e-3;
    NeuroVectorizer Trainer(Config);
    LoopGenerator Gen(/*Seed=*/42);
    for (const GeneratedLoop &L : Gen.generateMany(100))
      Trainer.addTrainingProgram(L.Name, L.Source);
    std::cout << "training demo model..." << std::endl;
    Trainer.train(/*Steps=*/2000);
    Trainer.fitSupervised(/*MaxSamples=*/32);
    std::string Error;
    const SaveStatus St = Trainer.trySave(TrainDemoPath, &Error);
    if (St != SaveStatus::Ok) {
      std::cerr << "save failed (" << saveStatusName(St) << "): " << Error
                << "\n";
      return 1;
    }
    std::cout << "demo model saved to " << TrainDemoPath << std::endl;
    ModelPath = TrainDemoPath;
  }

  ServingModelConfig HostConfig = NeuroVectorizer(Config).servingModelConfig();
  HostConfig.Quantized = Quantized;
  ModelHost Models(HostConfig);
  if (!ModelPath.empty()) {
    std::string Error;
    const LoadStatus Status = Models.reload(ModelPath, &Error);
    if (Status != LoadStatus::Ok) {
      std::cerr << "model load failed (" << loadStatusName(Status)
                << "): " << Error << "\n";
      return 1;
    }
  } else {
    std::cout << "warning: serving an untrained generation-0 model; pass "
                 "--model or --train-demo, or push one with reload\n";
  }

  ServeConfig Serve;
  Serve.Threads = Threads;
  AnnotationService Service(Models, Config.Embedding.Paths, Config.Target,
                            Serve);
  NetServer Server(Service, Models, Net);

  std::string Error;
  if (!Server.start(&Error)) {
    std::cerr << "start failed: " << Error << "\n";
    return 1;
  }
  ActiveServer = &Server;
  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  // The smoke job and tests parse this line for the bound port.
  std::cout << "nv_serverd listening on " << Host << ":" << Server.port()
            << " generation=" << Models.generation()
            << " isa=" << kernelIsaName(kernelIsa())
            << (Quantized ? " quantized" : "") << std::endl;

  Server.wait();
  ActiveServer = nullptr;

  const NetServerCounters C = Server.counters();
  std::cout << "drained: " << C.Requests << " requests (" << C.Annotated
            << " annotated, " << C.Shed << " shed, " << C.Rejected
            << " rejected), " << C.Reloads << " reloads" << std::endl;
  return 0;
}
