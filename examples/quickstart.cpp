//===- examples/quickstart.cpp - Minimal end-to-end walkthrough -----------===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
// The shortest path through the framework: generate a synthetic loop
// dataset, train the end-to-end RL vectorizer (embedding + PPO agent),
// then annotate the paper's dot-product kernel and report the speedup
// over the stock cost model.
//
//   $ ./quickstart
//
//===----------------------------------------------------------------------===//

#include "core/NeuroVectorizer.h"
#include "dataset/LoopGenerator.h"
#include "support/Table.h"

#include <iostream>

using namespace nv;

static const char *DotProduct = R"(
int vec[512];
int example1() {
  int sum = 0;
  for (int i = 0; i < 512; i++) {
    sum += vec[i] * vec[i];
  }
  return sum;
}
)";

int main() {
  // 1. Configure the framework. Defaults follow the paper (64x64 FCNN,
  //    discrete joint VF/IF action space); we shrink the batch so this
  //    demo trains in seconds.
  NeuroVectorizerConfig Config;
  Config.PPO.BatchSize = 500;
  Config.PPO.LearningRate = 5e-4;
  NeuroVectorizer NV(Config);

  // 2. Build a training set with the synthetic generator (§3.2).
  LoopGenerator Gen(/*Seed=*/42);
  int Added = 0;
  for (const GeneratedLoop &L : Gen.generateMany(300))
    Added += NV.addTrainingProgram(L.Name, L.Source);
  std::cout << "training programs: " << Added << "\n";

  // 3. Train end-to-end: embedding and policy learn together from the
  //    (t_baseline - t) / t_baseline reward.
  TrainStats Stats = NV.train(/*Steps=*/6000);
  std::cout << "trained " << Stats.Steps
            << " steps; final reward mean = "
            << Table::fmt(Stats.FinalRewardMean, 3) << "\n\n";

  // 4. Inference: annotate unseen code (Fig 4 style output).
  std::cout << "annotated dot-product kernel:\n"
            << NV.annotate(DotProduct) << "\n";
  std::cout << "speedup over baseline cost model: "
            << Table::fmt(NV.speedupOverBaseline(DotProduct)) << "x\n";
  std::cout << "brute-force oracle would give:    "
            << Table::fmt(NV.speedupOverBaseline(
                   DotProduct, PredictMethod::BruteForce))
            << "x\n";
  return 0;
}
