//===- examples/transfer_polybench.cpp - Generalization demo --------------===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
// Demonstrates the paper's §4.1 transfer-learning experiment in miniature:
// train on synthetic loops only, then apply the trained model to the
// PolyBench-style kernels it has never seen, alone and combined with the
// Polly-lite polyhedral pass ("When combining Polly and deep RL the
// achieved average performance improvement reaches 2.92x").
//
//   $ ./transfer_polybench
//
//===----------------------------------------------------------------------===//

#include "core/NeuroVectorizer.h"
#include "dataset/LoopGenerator.h"
#include "dataset/Suites.h"
#include "lang/Parser.h"
#include "lang/PrettyPrinter.h"
#include "polly/Polly.h"
#include "support/Stats.h"
#include "support/Table.h"

#include <iostream>

using namespace nv;

int main() {
  NeuroVectorizerConfig Config;
  Config.PPO.BatchSize = 256;
  Config.PPO.MiniBatchSize = 64;
  Config.PPO.LearningRate = 2e-3;
  Config.PPO.EntropyCoef = 0.05;
  NeuroVectorizer NV(Config);

  std::cout << "training on synthetic loops only (no PolyBench in the "
               "training set)...\n";
  LoopGenerator Gen(13);
  for (const GeneratedLoop &L : Gen.generateMany(200))
    NV.addTrainingProgram(L.Name, L.Source);
  NV.train(20000);

  std::cout << "\nkernel-by-kernel transfer results:\n\n";
  Table T({"kernel", "RL", "Polly", "RL+Polly", "transforms"});
  std::vector<double> RL, Combo;
  for (const NamedProgram &B : polyBenchSuite()) {
    const double Base = NV.cyclesFor(B.Source, PredictMethod::Baseline);
    std::optional<Program> P = parseSource(B.Source);
    PollyReport Report;
    Program Transformed = applyPolly(*P, &Report);
    const std::string Src = printProgram(Transformed);
    const double L = NV.speedupOverBaseline(B.Source, PredictMethod::RL);
    const double Po = Base / NV.cyclesFor(Src, PredictMethod::Baseline);
    const double C = Base / NV.cyclesFor(Src, PredictMethod::RL);
    RL.push_back(L);
    Combo.push_back(C);
    const std::string Transforms =
        std::to_string(Report.Interchanged) + " interchange, " +
        std::to_string(Report.Tiled) + " tile, " +
        std::to_string(Report.Fused) + " fuse";
    T.addRow({B.Name, Table::fmt(L), Table::fmt(Po), Table::fmt(C),
              Transforms});
  }
  T.print(std::cout);
  std::cout << "\nRL alone:   " << Table::fmt(mean(RL)) << "x average\n";
  std::cout << "RL + Polly: " << Table::fmt(mean(Combo))
            << "x average (the paper's combination experiment)\n";
  return 0;
}
