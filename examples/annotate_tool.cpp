//===- examples/annotate_tool.cpp - Fig 4 style annotation tool -----------===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
// A small command-line auto-vectorizer: reads a LoopLang source file (or
// uses a built-in demo program), trains briefly on the synthetic dataset,
// and prints the pragma-annotated source for several prediction methods,
// with the predicted speedup over the stock cost model — the workflow of
// the paper's Fig 4.
//
//   $ ./annotate_tool [file.c]
//
//===----------------------------------------------------------------------===//

#include "core/NeuroVectorizer.h"
#include "dataset/LoopGenerator.h"
#include "support/Table.h"

#include <fstream>
#include <iostream>
#include <sstream>

using namespace nv;

static const char *DemoSource = R"(
short short_a[2048]; short short_b[2048];
int assign1[2048]; int assign2[2048];
int n = 2047;

void kernel() {
  for (int i = 0; i < n; i += 2) {
    assign1[i] = (int) (short_a[i]);
    assign1[i + 1] = (int) (short_a[i + 1]);
    assign2[i] = (int) (short_b[i]);
    assign2[i + 1] = (int) (short_b[i + 1]);
  }
}
)";

int main(int argc, char **argv) {
  std::string Source = DemoSource;
  if (argc > 1) {
    std::ifstream In(argv[1]);
    if (!In) {
      std::cerr << "error: cannot open " << argv[1] << "\n";
      return 1;
    }
    std::ostringstream Buffer;
    Buffer << In.rdbuf();
    Source = Buffer.str();
  }

  NeuroVectorizerConfig Config;
  Config.PPO.BatchSize = 256;
  Config.PPO.MiniBatchSize = 64;
  Config.PPO.LearningRate = 2e-3;
  Config.PPO.EntropyCoef = 0.05;
  NeuroVectorizer NV(Config);

  std::cout << "training on the synthetic loop dataset...\n";
  LoopGenerator Gen(7);
  for (const GeneratedLoop &L : Gen.generateMany(200))
    NV.addTrainingProgram(L.Name, L.Source);
  NV.train(12000);
  NV.fitSupervised(/*MaxSamples=*/64);

  struct MethodRow {
    const char *Name;
    PredictMethod Method;
  };
  const MethodRow Methods[] = {
      {"RL (deep PPO agent)", PredictMethod::RL},
      {"nearest neighbors", PredictMethod::NNS},
      {"decision tree", PredictMethod::DecisionTree},
      {"brute-force oracle", PredictMethod::BruteForce},
  };

  std::cout << "\n=== RL-annotated source (Fig 4 style) ===\n"
            << NV.annotate(Source, PredictMethod::RL) << "\n";

  std::cout << "=== predicted speedups over the baseline cost model ===\n";
  for (const MethodRow &M : Methods)
    std::cout << "  " << M.Name << ": "
              << Table::fmt(NV.speedupOverBaseline(Source, M.Method))
              << "x\n";
  return 0;
}
