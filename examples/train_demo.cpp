//===- examples/train_demo.cpp - Train, kill, resume, evaluate ------------===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
// End-to-end walkthrough of the training subsystem:
//
//   1. train with parallel rollout workers + the standard curriculum,
//      checkpointing every few batches;
//   2. "kill" the process halfway (simulated with a per-run step cap);
//   3. resume from the checkpoint in a *fresh* instance — the curriculum
//      cursor rebuilds the training distribution and the optimizer/RNG
//      state makes the continuation bit-identical to an uninterrupted run;
//   4. evaluate the result on the held-out benchmark suites and print the
//      per-suite reward/speedup tables.
//
// Doubles as the CI smoke test (kept to roughly half a minute).
//
//===----------------------------------------------------------------------===//

#include "core/NeuroVectorizer.h"

#include <cstdio>
#include <iostream>

using namespace nv;

namespace {

NeuroVectorizerConfig demoConfig() {
  NeuroVectorizerConfig Config;
  Config.PPO.BatchSize = 256;
  Config.PPO.MiniBatchSize = 64;
  Config.PPO.LearningRate = 2e-3;
  Config.Seed = 42;
  return Config;
}

} // namespace

int main() {
  const std::string CheckpointPath = "train_demo.nvck";
  const std::string BestModelPath = "train_demo_best.nvm";
  constexpr long long TotalSteps = 6144; // 24 batches of 256.

  TrainerConfig Train;
  Train.NumWorkers = 4;
  Train.TotalSteps = TotalSteps;
  Train.Curriculum = CurriculumConfig::standard(/*GeneratedPerStage=*/24);
  // Advance briskly so the demo walks through all three stages.
  Train.Curriculum.Stages[0].AdvanceSteps = 1024;
  Train.Curriculum.Stages[1].AdvanceSteps = 2048;
  Train.CheckpointPath = CheckpointPath;
  Train.CheckpointEveryBatches = 2;
  Train.BestModelPath = BestModelPath;
  Train.EvalEveryBatches = 6;
  Train.Verbose = true;
  // Machine-readable run log: one JSONL event per batch / curriculum
  // advance / eval (reward EMA, transitions/s, stage, eval speedups).
  // Both phases append to the same file, so the log spans the crash.
  Train.RunLogPath = "train_demo_runlog.jsonl";

  std::cout << "=== train_demo: train -> checkpoint -> kill -> resume -> "
               "evaluate ===\n\n";

  // --- Phase 1: train, then "die" halfway ---------------------------------
  std::cout << "--- phase 1: training to step " << TotalSteps / 2 << " of "
            << TotalSteps << ", then simulating a crash ---\n";
  {
    NeuroVectorizer NV(demoConfig());
    TrainerConfig Interrupted = Train;
    Interrupted.MaxStepsThisRun = TotalSteps / 2;
    TrainReport Report = NV.trainParallel(Interrupted);
    std::cout << "\nphase 1 stopped " << (Report.Interrupted ? "mid-run"
                                                             : "complete")
              << " at curriculum stage " << Report.FinalStage
              << " with reward EMA "
              << Table::fmt(Report.Stats.FinalRewardMean, 3) << "\n\n";
    // NV goes out of scope here: the process state is gone, only the
    // checkpoint file survives.
  }

  // --- Phase 2: resume in a fresh instance --------------------------------
  std::cout << "--- phase 2: fresh process resumes " << CheckpointPath
            << " ---\n";
  NeuroVectorizer NV(demoConfig());
  TrainerConfig Resumed = Train;
  Resumed.Resume = true;
  TrainReport Report = NV.trainParallel(Resumed);
  if (!Report.Resumed) {
    std::cerr << "resume failed: checkpoint missing or invalid\n";
    return 1;
  }
  std::cout << "\nresumed and finished " << Report.Stats.Steps << " of "
            << TotalSteps << " total steps (this run: " << Report.BatchesRun
            << " batches), final stage " << Report.FinalStage << "\n\n";

  // --- Phase 3: held-out evaluation ---------------------------------------
  std::cout << "--- phase 3: held-out evaluation (greedy policy) ---\n\n";
  Report.FinalEval.summaryTable().print(std::cout);
  std::cout << "\nper-program detail:\n";
  Report.FinalEval.programTable().print(std::cout);
  std::cout << "\nbest eval reward over the run: "
            << Table::fmt(Report.BestEvalReward, 3) << " (best model in "
            << BestModelPath << ")\n";
  std::cout << "run log (batch/curriculum/eval JSONL events, both phases): "
            << Train.RunLogPath << "\n";

  if (Report.Stats.Steps < TotalSteps) {
    std::cerr << "training did not reach the configured budget\n";
    return 1;
  }
  std::remove(CheckpointPath.c_str());
  std::remove(BestModelPath.c_str());
  return 0;
}
