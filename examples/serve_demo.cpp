//===- examples/serve_demo.cpp - Train, distill, save, serve any backend ---===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
// The deployment story the paper implies but never ships: train the RL
// vectorizer once, distill the supervised backends (NNS, decision tree)
// from the learned embedding, persist EVERYTHING as one v3 model file,
// then load it in a "server" process and serve batches through whichever
// backend each request names — rl, nns, tree, or the brute-force oracle.
//
//   $ ./serve_demo
//
//===----------------------------------------------------------------------===//

#include "core/NeuroVectorizer.h"
#include "dataset/LoopGenerator.h"
#include "dataset/Suites.h"
#include "support/Table.h"
#include "support/Telemetry.h"
#include "train/Evaluator.h"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <iterator>

using namespace nv;

int main() {
  const std::string ModelPath = "neurovectorizer.nvm";

  // --- "Training process": learn, distill, persist ------------------------
  NeuroVectorizerConfig Config;
  Config.PPO.BatchSize = 256;
  Config.PPO.MiniBatchSize = 64;
  Config.PPO.LearningRate = 2e-3;
  {
    NeuroVectorizer Trainer(Config);
    LoopGenerator Gen(/*Seed=*/42);
    for (const GeneratedLoop &L : Gen.generateMany(200))
      Trainer.addTrainingProgram(L.Name, L.Source);
    std::cout << "training...\n";
    Trainer.train(/*Steps=*/4000);

    std::cout << "distilling NNS + decision tree from the learned "
                 "embedding (brute-force labels)...\n";
    const DistillReport Distilled = Trainer.fitSupervised(/*MaxSamples=*/64);
    std::cout << "  labeled " << Distilled.Sites << " sites across "
              << Distilled.Programs << " programs ("
              << Distilled.OracleEvaluations << " oracle evaluations, "
              << Table::fmt(Distilled.GeomeanOracleSpeedup)
              << "x geomean oracle speedup)\n";

    std::string Error;
    if (!Trainer.save(ModelPath, &Error)) {
      std::cerr << "save failed: " << Error << "\n";
      return 1;
    }
    std::cout << "model + backends saved to " << ModelPath << "\n\n";
  } // Trainer destroyed: weights AND backends now live only in the file.

  // --- "Serving process": load the frozen backend set and serve -----------
  NeuroVectorizer Server(Config); // Same architecture, fresh weights...
  std::string Error;
  if (!Server.load(ModelPath, &Error)) { // ...replaced by the trained ones.
    std::cerr << "load failed: " << Error << "\n";
    return 1;
  }
  std::cout << "model loaded into a fresh instance (supervised backends "
            << (Server.supervisedReady() ? "restored" : "missing")
            << ")\n";

  ServeConfig Serve;
  Serve.Threads = 4;
  AnnotationService &Service = Server.service(Serve);

  // Trace every batch for the demo (the default is off — see README
  // "Observability"); the spans land in serve_trace.json below.
  Telemetry::trace().setSampleEvery(1);

  // One unseen program, every backend: the same source annotated four
  // ways from the one loaded model file.
  LoopGenerator Unseen(/*Seed=*/1234);
  const GeneratedLoop Probe = Unseen.generateMany(1).front();
  const PredictMethod Methods[] = {PredictMethod::RL, PredictMethod::NNS,
                                   PredictMethod::DecisionTree,
                                   PredictMethod::BruteForce};
  std::vector<AnnotationRequest> Requests;
  for (PredictMethod M : Methods)
    Requests.push_back({std::string(methodName(M)), Probe.Source, M});
  std::vector<AnnotationResult> PerMethod = Service.annotateBatch(Requests);

  std::cout << "\n" << Probe.Name << " under each backend:\n";
  Table Plans({"backend", "VF", "IF", "speedup vs baseline"});
  for (const AnnotationResult &Res : PerMethod) {
    if (!Res.Ok) {
      std::cerr << Res.Name << ": " << Res.Error << "\n";
      return 1;
    }
    Plans.addRow({Res.Name, std::to_string(Res.Plans[0].VF),
                  std::to_string(Res.Plans[0].IF),
                  Table::fmt(Server.speedupOverBaseline(Probe.Source,
                                                        Res.Method))});
  }
  Plans.print(std::cout);

  // A larger mixed batch (plus a duplicate to show the plan cache).
  std::vector<AnnotationRequest> Batch;
  for (const GeneratedLoop &L : Unseen.generateMany(32))
    Batch.push_back({L.Name, L.Source,
                     Methods[Batch.size() % std::size(Methods)]});
  Batch.push_back(Batch.front()); // Cache hit.
  int Served = 0;
  for (const AnnotationResult &Res : Service.annotateBatch(Batch))
    Served += Res.Ok;
  std::cout << "\nannotated " << Served << "/" << Batch.size()
            << " programs across 4 backends\n\nservice counters:\n";
  Service.stats().print(std::cout);

  // The cold-path front-end split (also rows of the table above): these
  // are cumulative worker-thread microseconds, so a regression in the
  // parser or the path-context extractor is visible here even when pool
  // parallelism hides it from the wall-clock phase times. One coherent
  // snapshot feeds every field.
  const ServeSnapshot S = Service.stats().snapshot();
  std::cout << "\ncold-path front-end (cumulative worker cpu): parse "
            << Table::fmt(S.ParseMicros / 1e3) << " ms, loop extract "
            << Table::fmt(S.LoopExtractMicros / 1e3) << " ms, contexts+keys "
            << Table::fmt(S.ContextMicros / 1e3) << " ms, embed "
            << Table::fmt(S.EmbedMicros / 1e3) << " ms\n";

  // Per-phase latency distributions from the process-wide registry: the
  // p50/p99 view the flat counters above cannot give.
  std::cout << "\nper-phase latency distributions (serve.* histograms):\n";
  Telemetry::metrics().histogramTable().print(std::cout);

  // Dump the whole registry (the /statsz payload) and the span trace.
  // Load serve_trace.json in chrome://tracing or https://ui.perfetto.dev
  // to see the batch/phase timeline; CI uploads both as artifacts.
  {
    std::ofstream Snapshot("serve_telemetry.json", std::ios::trunc);
    Snapshot << Telemetry::snapshotJson() << "\n";
    std::cout << "\ntelemetry snapshot written to serve_telemetry.json\n";
  }
  {
    std::ofstream Trace("serve_trace.json", std::ios::trunc);
    Telemetry::trace().exportChromeJson(Trace);
    std::cout << "trace (" << Telemetry::trace().snapshot().size()
              << " spans) written to serve_trace.json\n";
  }

  // --- Fig 7-style held-out comparison over the loaded backend set --------
  std::cout << "\nheld-out per-method speedup (Fig 7 style):\n";
  Evaluator Eval{SimCompiler(Config.Target, Config.Machine),
                 Config.Embedding.Paths};
  Eval.addSuite("benchmarks", evaluationBenchmarks());
  const MethodReport Report = Eval.evaluateMethods(
      Server.embedder(), Server.backends(),
      {PredictMethod::Random, PredictMethod::NNS, PredictMethod::DecisionTree,
       PredictMethod::RL, PredictMethod::BruteForce});
  Report.speedupTable().print(std::cout);

  std::remove(ModelPath.c_str());
  return 0;
}
