//===- examples/serve_demo.cpp - Train, save, load, serve -----------------===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
// The deployment story the paper implies but never ships: train the RL
// vectorizer once, persist the frozen model, then load it in a "server"
// process and annotate batches of unseen programs through the cached,
// multi-threaded serving layer.
//
//   $ ./serve_demo
//
//===----------------------------------------------------------------------===//

#include "core/NeuroVectorizer.h"
#include "dataset/LoopGenerator.h"
#include "support/Table.h"

#include <cstdio>
#include <iostream>

using namespace nv;

int main() {
  const std::string ModelPath = "neurovectorizer.nvm";

  // --- "Training process": learn and persist ------------------------------
  NeuroVectorizerConfig Config;
  Config.PPO.BatchSize = 256;
  Config.PPO.MiniBatchSize = 64;
  Config.PPO.LearningRate = 2e-3;
  {
    NeuroVectorizer Trainer(Config);
    LoopGenerator Gen(/*Seed=*/42);
    for (const GeneratedLoop &L : Gen.generateMany(200))
      Trainer.addTrainingProgram(L.Name, L.Source);
    std::cout << "training...\n";
    Trainer.train(/*Steps=*/4000);

    std::string Error;
    if (!Trainer.save(ModelPath, &Error)) {
      std::cerr << "save failed: " << Error << "\n";
      return 1;
    }
    std::cout << "model saved to " << ModelPath << "\n\n";
  } // Trainer destroyed: the weights now live only in the file.

  // --- "Serving process": load the frozen model and serve batches ---------
  NeuroVectorizer Server(Config); // Same architecture, fresh weights...
  std::string Error;
  if (!Server.load(ModelPath, &Error)) { // ...replaced by the trained ones.
    std::cerr << "load failed: " << Error << "\n";
    return 1;
  }
  std::cout << "model loaded into a fresh instance\n";

  ServeConfig Serve;
  Serve.Threads = 4;
  AnnotationService &Service = Server.service(Serve);

  // A batch of unseen programs (plus a duplicate to show the plan cache).
  LoopGenerator Unseen(/*Seed=*/1234);
  std::vector<AnnotationRequest> Requests;
  for (const GeneratedLoop &L : Unseen.generateMany(32))
    Requests.push_back({L.Name, L.Source});
  Requests.push_back(Requests.front()); // Cache hit.

  std::vector<AnnotationResult> Results = Service.annotateBatch(Requests);

  std::cout << "\nfirst annotated program (" << Results.front().Name
            << "):\n"
            << Results.front().Annotated << "\n";

  int Served = 0;
  for (const AnnotationResult &Res : Results)
    Served += Res.Ok;
  std::cout << "annotated " << Served << "/" << Results.size()
            << " programs\n\nservice counters:\n";
  Service.stats().print(std::cout);

  std::remove(ModelPath.c_str());
  return 0;
}
