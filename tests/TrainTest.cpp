//===- tests/TrainTest.cpp - train/ subsystem tests -----------------------===//
//
// The reproducibility contract of the training subsystem:
//  (a) checkpoint -> resume reproduces the uninterrupted run bit-for-bit,
//  (b) 1-worker and N-worker training with the same seed reach the same
//      final policy (bitwise),
//  (c) curriculum stages advance on trigger and the sample mix widens
//      accordingly,
// plus rollout determinism, checkpoint validation, and evaluator checks.
//
//===----------------------------------------------------------------------===//

#include "core/NeuroVectorizer.h"
#include "dataset/LoopGenerator.h"
#include "train/Checkpoint.h"
#include "train/Curriculum.h"
#include "train/Evaluator.h"
#include "train/RolloutWorkers.h"
#include "train/Trainer.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>

using namespace nv;

namespace {

/// Small-but-real model so training tests run in well under a second each.
NeuroVectorizerConfig smallConfig() {
  NeuroVectorizerConfig Config;
  Config.Embedding.CodeDim = 16;
  Config.Embedding.TokenDim = 8;
  Config.Embedding.PathDim = 8;
  Config.Hidden = {32, 32};
  Config.PPO.BatchSize = 64;
  Config.PPO.MiniBatchSize = 32;
  Config.PPO.LearningRate = 3e-3;
  Config.Seed = 21;
  return Config;
}

/// A tiny two-stage curriculum with a deterministic step trigger.
CurriculumConfig testCurriculum() {
  CurriculumConfig Config;
  Config.Seed = 77;
  CurriculumStageConfig Easy;
  Easy.Name = "easy";
  Easy.Templates = {5, 6};
  Easy.GeneratedCount = 4;
  Easy.AdvanceSteps = 128; // Two 64-step batches.
  Config.Stages.push_back(Easy);
  CurriculumStageConfig Full;
  Full.Name = "full";
  Full.Templates = {0, 1, 8, 9};
  Full.GeneratedCount = 4;
  Config.Stages.push_back(Full);
  return Config;
}

/// Every learnable weight, flattened — bitwise equality of two blobs means
/// two training runs produced the identical model.
std::vector<double> weightsOf(NeuroVectorizer &NV) {
  std::vector<double> Blob;
  for (Param *P : NV.runner().trainableParams())
    Blob.insert(Blob.end(), P->Value.raw().begin(), P->Value.raw().end());
  return Blob;
}

std::string tmpPath(const std::string &Name) {
  return ::testing::TempDir() + Name;
}

void expectSameTransitions(const RolloutBuffer &A, const RolloutBuffer &B) {
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I < A.size(); ++I) {
    const Transition &TA = A.Transitions[I];
    const Transition &TB = B.Transitions[I];
    EXPECT_EQ(TA.SampleIdx, TB.SampleIdx);
    EXPECT_EQ(TA.SiteIdx, TB.SiteIdx);
    EXPECT_EQ(TA.Reward, TB.Reward);
    EXPECT_EQ(TA.Action.VFIdx, TB.Action.VFIdx);
    EXPECT_EQ(TA.Action.IFIdx, TB.Action.IFIdx);
    EXPECT_EQ(TA.Action.LogProb, TB.Action.LogProb);
    EXPECT_EQ(TA.Action.Value, TB.Action.Value);
  }
}

//===----------------------------------------------------------------------===//
// Rollout workers.
//===----------------------------------------------------------------------===//

struct MasterModel {
  RNG Rng;
  Code2Vec Embedder;
  Policy Pol;

  explicit MasterModel(const RolloutModelSpec &Spec, uint64_t Seed)
      : Rng(Seed), Embedder(Spec.Embedding, Rng),
        Pol(Spec.ActionSpace, Embedder.codeDim(), Spec.Hidden, Spec.NumVF,
            Spec.NumIF, Rng) {}
};

RolloutModelSpec smallSpec() {
  RolloutModelSpec Spec;
  Spec.Embedding.CodeDim = 16;
  Spec.Embedding.TokenDim = 8;
  Spec.Embedding.PathDim = 8;
  Spec.Hidden = {32, 32};
  Spec.NumVF = 7;
  Spec.NumIF = 5;
  return Spec;
}

void fillEnv(VectorizationEnv &Env, int Count, uint64_t Seed = 5) {
  LoopGenerator Gen(Seed);
  while (static_cast<int>(Env.size()) < Count) {
    GeneratedLoop L = Gen.generate();
    Env.addProgram(L.Name, L.Source);
  }
}

TEST(RolloutWorkers, FillsRequestedBatch) {
  VectorizationEnv Env{SimCompiler(), PathContextConfig()};
  fillEnv(Env, 8);
  RolloutModelSpec Spec = smallSpec();
  MasterModel Master(Spec, 3);
  RolloutWorkers Workers(Env, Spec, 2);
  RolloutBuffer Buffer;
  Workers.collect(Master.Embedder, Master.Pol, RNG(42), Env.size(), 100,
                  Buffer);
  EXPECT_GE(Buffer.size(), 100u);
  for (const Transition &T : Buffer.Transitions) {
    EXPECT_LT(T.SampleIdx, Env.size());
    EXPECT_LT(T.SiteIdx, Env.sample(T.SampleIdx).Sites.size());
    EXPECT_GE(T.Reward, VectorizationEnv::TimeoutPenalty);
  }
}

TEST(RolloutWorkers, DeterministicAcrossWorkerCounts) {
  VectorizationEnv Env{SimCompiler(), PathContextConfig()};
  fillEnv(Env, 10);
  RolloutModelSpec Spec = smallSpec();
  MasterModel Master(Spec, 3);

  RolloutBuffer One, Four;
  RolloutWorkers W1(Env, Spec, 1);
  W1.collect(Master.Embedder, Master.Pol, RNG(42), Env.size(), 256, One);
  RolloutWorkers W4(Env, Spec, 4);
  W4.collect(Master.Embedder, Master.Pol, RNG(42), Env.size(), 256, Four);
  expectSameTransitions(One, Four);
}

TEST(RolloutWorkers, DifferentBaseStatesGiveDifferentBatches) {
  VectorizationEnv Env{SimCompiler(), PathContextConfig()};
  fillEnv(Env, 10);
  RolloutModelSpec Spec = smallSpec();
  MasterModel Master(Spec, 3);
  RolloutWorkers Workers(Env, Spec, 2);

  RolloutBuffer A, B;
  Workers.collect(Master.Embedder, Master.Pol, RNG(42), Env.size(), 128, A);
  Workers.collect(Master.Embedder, Master.Pol, RNG(43), Env.size(), 128, B);
  bool Differs = A.size() != B.size();
  for (size_t I = 0; !Differs && I < A.size(); ++I)
    Differs = A.Transitions[I].SampleIdx != B.Transitions[I].SampleIdx ||
              A.Transitions[I].Action.LogProb !=
                  B.Transitions[I].Action.LogProb;
  EXPECT_TRUE(Differs);
}

//===----------------------------------------------------------------------===//
// Curriculum.
//===----------------------------------------------------------------------===//

TEST(Curriculum, MaterializationIsDeterministic) {
  Curriculum A(testCurriculum()), B(testCurriculum());
  ASSERT_EQ(A.numStages(), B.numStages());
  for (int S = 0; S < A.numStages(); ++S) {
    ASSERT_EQ(A.stagePrograms(S).size(), B.stagePrograms(S).size());
    for (size_t I = 0; I < A.stagePrograms(S).size(); ++I)
      EXPECT_EQ(A.stagePrograms(S)[I].Source, B.stagePrograms(S)[I].Source);
  }
}

TEST(Curriculum, AdvancesOnStepTriggerAndWidensMix) {
  Curriculum Cur(testCurriculum());
  VectorizationEnv Env{SimCompiler(), PathContextConfig()};
  Cur.activate(Env);
  const size_t Stage0Count = Env.size();
  EXPECT_EQ(Stage0Count, 4u);
  EXPECT_EQ(Cur.stage(), 0);

  // Reward far below the threshold: only the step trigger can fire.
  EXPECT_FALSE(Cur.observe(-5.0, 64, Env));
  EXPECT_EQ(Env.size(), Stage0Count);
  EXPECT_TRUE(Cur.observe(-5.0, 64, Env)); // 128 steps reached.
  EXPECT_EQ(Cur.stage(), 1);
  EXPECT_EQ(Cur.stepsInStage(), 0);
  ASSERT_GT(Env.size(), Stage0Count);

  // The widened mix must actually be sampled: a batch over the grown env
  // contains programs beyond the stage-0 prefix.
  RolloutModelSpec Spec = smallSpec();
  MasterModel Master(Spec, 3);
  RolloutWorkers Workers(Env, Spec, 2);
  RolloutBuffer Buffer;
  Workers.collect(Master.Embedder, Master.Pol, RNG(7), Env.size(), 256,
                  Buffer);
  bool SawStage1 = false;
  for (const Transition &T : Buffer.Transitions)
    SawStage1 |= T.SampleIdx >= Stage0Count;
  EXPECT_TRUE(SawStage1);
}

TEST(Curriculum, AdvancesOnRewardTrigger) {
  CurriculumConfig Config = testCurriculum();
  Config.Stages[0].AdvanceReward = 0.2;
  Config.Stages[0].AdvanceSteps = 1 << 30;
  Curriculum Cur(Config);
  VectorizationEnv Env{SimCompiler(), PathContextConfig()};
  Cur.activate(Env);
  EXPECT_FALSE(Cur.observe(0.19, 64, Env));
  EXPECT_TRUE(Cur.observe(0.25, 64, Env));
  EXPECT_EQ(Cur.stage(), 1);
}

TEST(Curriculum, LastStageNeverAdvances) {
  Curriculum Cur(testCurriculum());
  VectorizationEnv Env{SimCompiler(), PathContextConfig()};
  Cur.activate(Env);
  ASSERT_TRUE(Cur.observe(-5.0, 128, Env)); // -> stage 1 (step trigger).
  const size_t Size = Env.size();
  for (int I = 0; I < 10; ++I)
    EXPECT_FALSE(Cur.observe(1e9, 1 << 20, Env));
  EXPECT_EQ(Cur.stage(), 1);
  EXPECT_EQ(Env.size(), Size);
}

//===----------------------------------------------------------------------===//
// Evaluator.
//===----------------------------------------------------------------------===//

TEST(Evaluator, ProducesPerSuiteTables) {
  Evaluator Eval{SimCompiler(), PathContextConfig()};
  EXPECT_EQ(Eval.addSuite("vectorizer", vectorizerTestSuite()), 15u);
  RolloutModelSpec Spec = smallSpec();
  MasterModel Master(Spec, 9);
  EvalReport Report = Eval.evaluate(Master.Embedder, Master.Pol);
  ASSERT_EQ(Report.Suites.size(), 1u);
  EXPECT_EQ(Report.NumPrograms, 15u);
  EXPECT_EQ(Report.Suites[0].Programs.size(), 15u);
  for (const EvalProgram &P : Report.Suites[0].Programs) {
    EXPECT_GE(P.Reward, VectorizationEnv::TimeoutPenalty);
    EXPECT_GT(P.Speedup, 0.0);
  }
  EXPECT_EQ(Report.summaryTable().numRows(), 1u);
  EXPECT_EQ(Report.programTable().numRows(), 15u);
  // Greedy evaluation is deterministic.
  EvalReport Again = Eval.evaluate(Master.Embedder, Master.Pol);
  EXPECT_EQ(Report.MeanReward, Again.MeanReward);
}

//===----------------------------------------------------------------------===//
// Checkpointing.
//===----------------------------------------------------------------------===//

TEST(Checkpoint, RoundTripRestoresEverything) {
  NeuroVectorizer A(smallConfig());
  fillEnv(A.env(), 6);
  A.train(128); // Touch weights, optimizer, RNG, and EMA.
  TrainProgress Progress;
  Progress.StepsDone = 128;
  Progress.BatchesDone = 2;
  Progress.BestEvalReward = 0.25;
  Progress.RewardEMAValue = A.runner().rewardEMA().value();
  Progress.RewardEMASeen = true;
  Progress.Stage = {1, 64};
  const std::string Path = tmpPath("roundtrip.nvck");
  std::string Error;
  ASSERT_TRUE(TrainCheckpoint::save(Path, A.runner(), Progress, &Error))
      << Error;

  NeuroVectorizer B(smallConfig());
  fillEnv(B.env(), 6);
  TrainProgress Loaded;
  ASSERT_TRUE(TrainCheckpoint::load(Path, B.runner(), Loaded, &Error))
      << Error;
  EXPECT_EQ(weightsOf(A), weightsOf(B));
  EXPECT_EQ(Loaded.StepsDone, 128);
  EXPECT_EQ(Loaded.BatchesDone, 2);
  EXPECT_EQ(Loaded.BestEvalReward, 0.25);
  EXPECT_EQ(Loaded.Stage.Stage, 1);
  EXPECT_EQ(Loaded.Stage.StepsInStage, 64);
  EXPECT_EQ(B.runner().rewardEMA().value(),
            A.runner().rewardEMA().value());
  EXPECT_EQ(B.runner().optimizer().stepCount(),
            A.runner().optimizer().stepCount());
  // Both RNGs resume the identical sequence.
  EXPECT_EQ(A.runner().rng().next(), B.runner().rng().next());
  std::remove(Path.c_str());
}

TEST(Checkpoint, CorruptFileLeavesRunnerUntouched) {
  NeuroVectorizer A(smallConfig());
  fillEnv(A.env(), 4);
  A.train(64);
  const std::string Path = tmpPath("corrupt.nvck");
  std::string Error;
  ASSERT_TRUE(TrainCheckpoint::save(Path, A.runner(), TrainProgress(),
                                    &Error));
  // Flip one payload byte.
  {
    std::fstream F(Path, std::ios::in | std::ios::out | std::ios::binary);
    F.seekp(64);
    char Byte = 0;
    F.seekg(64);
    F.read(&Byte, 1);
    Byte ^= 0x5A;
    F.seekp(64);
    F.write(&Byte, 1);
  }
  NeuroVectorizer B(smallConfig());
  fillEnv(B.env(), 4);
  const std::vector<double> Before = weightsOf(B);
  TrainProgress Progress;
  EXPECT_FALSE(TrainCheckpoint::load(Path, B.runner(), Progress, &Error));
  EXPECT_NE(Error.find("checksum"), std::string::npos) << Error;
  EXPECT_EQ(weightsOf(B), Before);
  std::remove(Path.c_str());
}

TEST(Checkpoint, ArchitectureMismatchRejected) {
  NeuroVectorizer A(smallConfig());
  fillEnv(A.env(), 4);
  const std::string Path = tmpPath("mismatch.nvck");
  std::string Error;
  ASSERT_TRUE(TrainCheckpoint::save(Path, A.runner(), TrainProgress(),
                                    &Error));
  NeuroVectorizerConfig Other = smallConfig();
  Other.Hidden = {16};
  NeuroVectorizer B(Other);
  fillEnv(B.env(), 4);
  TrainProgress Progress;
  EXPECT_FALSE(TrainCheckpoint::load(Path, B.runner(), Progress, &Error));
  EXPECT_NE(Error.find("mismatch"), std::string::npos) << Error;
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Trainer: the three headline reproducibility guarantees.
//===----------------------------------------------------------------------===//

TEST(Trainer, WorkerCountDoesNotChangeTheFinalPolicy) {
  auto runWith = [](int Workers) {
    NeuroVectorizer NV(smallConfig());
    fillEnv(NV.env(), 6);
    TrainerConfig Config;
    Config.NumWorkers = Workers;
    Config.TotalSteps = 3 * 64;
    NV.trainParallel(Config);
    return NV;
  };
  NeuroVectorizer One = runWith(1);
  NeuroVectorizer Four = runWith(4);
  EXPECT_EQ(weightsOf(One), weightsOf(Four));
}

TEST(Trainer, ResumeReproducesUninterruptedRunBitForBit) {
  TrainerConfig Base;
  Base.NumWorkers = 2;
  Base.TotalSteps = 6 * 64;
  Base.Curriculum = testCurriculum();
  Base.CheckpointEveryBatches = 2;

  // Uninterrupted reference run (checkpointing on: writing checkpoints
  // must not perturb training).
  NeuroVectorizer A(smallConfig());
  TrainerConfig ConfigA = Base;
  ConfigA.CheckpointPath = tmpPath("ref.nvck");
  TrainReport ReportA = A.trainParallel(ConfigA);
  EXPECT_FALSE(ReportA.Interrupted);
  EXPECT_EQ(ReportA.Stats.Steps, Base.TotalSteps);

  // "Killed" after 3 of 6 batches...
  NeuroVectorizer B(smallConfig());
  TrainerConfig ConfigB = Base;
  ConfigB.CheckpointPath = tmpPath("killed.nvck");
  ConfigB.MaxStepsThisRun = 3 * 64;
  TrainReport ReportB = B.trainParallel(ConfigB);
  EXPECT_TRUE(ReportB.Interrupted);
  EXPECT_NE(weightsOf(A), weightsOf(B));

  // ...and resumed in a fresh process (fresh instance, empty env: the
  // curriculum cursor replays the training distribution).
  NeuroVectorizer C(smallConfig());
  TrainerConfig ConfigC = Base;
  ConfigC.CheckpointPath = ConfigB.CheckpointPath;
  ConfigC.Resume = true;
  TrainReport ReportC = C.trainParallel(ConfigC);
  EXPECT_TRUE(ReportC.Resumed);
  EXPECT_FALSE(ReportC.Interrupted);
  EXPECT_EQ(ReportC.Stats.Steps, Base.TotalSteps);
  EXPECT_EQ(ReportC.BatchesRun, 3);

  EXPECT_EQ(weightsOf(A), weightsOf(C));
  EXPECT_EQ(A.runner().rng().next(), C.runner().rng().next());
  EXPECT_EQ(A.runner().rewardEMA().value(), C.runner().rewardEMA().value());

  std::remove(ConfigA.CheckpointPath.c_str());
  std::remove(ConfigB.CheckpointPath.c_str());
}

TEST(Trainer, RotatedCheckpointsSurviveACorruptNewestGeneration) {
  // With rotation on, a checkpoint that gets corrupted on disk costs
  // CheckpointEveryBatches of progress, not the whole run: resume falls
  // back to the newest *loadable* generation and still reproduces the
  // uninterrupted run bit-for-bit from there.
  TrainerConfig Base;
  Base.NumWorkers = 2;
  Base.TotalSteps = 6 * 64;
  Base.Curriculum = testCurriculum();
  Base.CheckpointEveryBatches = 2;
  Base.CheckpointKeep = 3;

  NeuroVectorizer A(smallConfig());
  TrainerConfig ConfigA = Base;
  ConfigA.CheckpointPath = tmpPath("rot_ref.nvck");
  A.trainParallel(ConfigA);

  // Killed after 3 of 6 batches: rotation leaves batch 3 at Path and
  // batch 2 at Path.1, each individually loadable.
  NeuroVectorizer B(smallConfig());
  TrainerConfig ConfigB = Base;
  ConfigB.CheckpointPath = tmpPath("rot_killed.nvck");
  ConfigB.MaxStepsThisRun = 3 * 64;
  TrainReport ReportB = B.trainParallel(ConfigB);
  EXPECT_TRUE(ReportB.Interrupted);
  const std::string Prev = ConfigB.CheckpointPath + ".1";
  {
    NeuroVectorizer Probe(smallConfig());
    TrainProgress Progress;
    std::string Error;
    ASSERT_TRUE(TrainCheckpoint::load(ConfigB.CheckpointPath,
                                      Probe.runner(), Progress, &Error))
        << Error;
    EXPECT_EQ(Progress.BatchesDone, 3);
    ASSERT_TRUE(
        TrainCheckpoint::load(Prev, Probe.runner(), Progress, &Error))
        << Error;
    EXPECT_EQ(Progress.BatchesDone, 2);
  }

  // Corrupt the newest generation the way a torn disk would.
  {
    std::fstream F(ConfigB.CheckpointPath,
                   std::ios::in | std::ios::out | std::ios::binary);
    F.seekp(64);
    char Byte = 0;
    F.seekg(64);
    F.read(&Byte, 1);
    Byte ^= 0x5A;
    F.seekp(64);
    F.write(&Byte, 1);
  }

  // loadNewest skips the corrupt file and reports where it landed.
  {
    NeuroVectorizer Probe(smallConfig());
    TrainProgress Progress;
    std::string LoadedFrom, Error;
    ASSERT_TRUE(TrainCheckpoint::loadNewest(
        ConfigB.CheckpointPath, Probe.runner(), Progress,
        Base.CheckpointKeep, &LoadedFrom, &Error))
        << Error;
    EXPECT_EQ(LoadedFrom, Prev);
    EXPECT_EQ(Progress.BatchesDone, 2);
  }

  // A full resume takes the same fallback and replays batches 3..6 to
  // the exact same final state as the uninterrupted reference.
  NeuroVectorizer C(smallConfig());
  TrainerConfig ConfigC = Base;
  ConfigC.CheckpointPath = ConfigB.CheckpointPath;
  ConfigC.Resume = true;
  TrainReport ReportC = C.trainParallel(ConfigC);
  EXPECT_TRUE(ReportC.Resumed);
  EXPECT_FALSE(ReportC.Interrupted);
  EXPECT_EQ(ReportC.BatchesRun, 4); // One batch redone vs. the kill point.
  EXPECT_EQ(weightsOf(A), weightsOf(C));
  EXPECT_EQ(A.runner().rng().next(), C.runner().rng().next());

  for (int K = 0; K < Base.CheckpointKeep; ++K) {
    const std::string P =
        K ? ConfigB.CheckpointPath + "." + std::to_string(K)
          : ConfigB.CheckpointPath;
    std::remove(P.c_str());
    std::remove((ConfigA.CheckpointPath +
                 (K ? "." + std::to_string(K) : "")).c_str());
  }
}

TEST(Trainer, CurriculumAdvancesDuringTraining) {
  NeuroVectorizer NV(smallConfig());
  TrainerConfig Config;
  Config.NumWorkers = 2;
  Config.TotalSteps = 4 * 64;
  Config.Curriculum = testCurriculum(); // Advances after 128 steps.
  TrainReport Report = NV.trainParallel(Config);
  EXPECT_EQ(Report.FinalStage, 1);
  // Stage 0 (4 programs) plus stage 1 (4 programs).
  EXPECT_EQ(NV.env().size(), 8u);
}

TEST(Trainer, SecondRunDoesNotDuplicateCurriculumPrograms) {
  NeuroVectorizer NV(smallConfig());
  TrainerConfig Config;
  Config.NumWorkers = 1;
  Config.TotalSteps = 4 * 64; // Far enough to reach stage 1 (both runs).
  Config.Curriculum = testCurriculum();
  NV.trainParallel(Config);
  const size_t SizeAfterFirst = NV.env().size();
  EXPECT_EQ(SizeAfterFirst, 8u); // Both stages active.
  // Train again in the same instance: the fresh Trainer's curriculum must
  // recognize its programs instead of appending duplicates.
  NV.trainParallel(Config);
  EXPECT_EQ(NV.env().size(), SizeAfterFirst);
}

TEST(Trainer, EmptyTrainingSetThrows) {
  NeuroVectorizer NV(smallConfig());
  TrainerConfig Config; // No curriculum, no programs added.
  Config.TotalSteps = 64;
  EXPECT_THROW(NV.trainParallel(Config), std::invalid_argument);
}

TEST(Trainer, TracksBestModelByEvalReward) {
  NeuroVectorizer NV(smallConfig());
  fillEnv(NV.env(), 6);
  TrainerConfig Config;
  Config.NumWorkers = 2;
  Config.TotalSteps = 2 * 64;
  Config.EvalEveryBatches = 1;
  Config.BestModelPath = tmpPath("best.nvm");
  TrainReport Report = NV.trainParallel(Config);
  EXPECT_GT(Report.BestEvalReward, -1e300);
  EXPECT_EQ(Report.FinalEval.NumPrograms, 12u); // evaluationBenchmarks().

  // The artifact is a valid model file loadable into a same-arch instance.
  NeuroVectorizer Fresh(smallConfig());
  std::string Error;
  EXPECT_TRUE(Fresh.load(Config.BestModelPath, &Error)) << Error;
  std::remove(Config.BestModelPath.c_str());
}

TEST(Trainer, SerialWrapperStillTrains) {
  // The refactored PPORunner::train() (collect + trainOnBatch) must still
  // learn the single-program bandit: regression guard for the refactor.
  NeuroVectorizer NV(smallConfig());
  ASSERT_TRUE(NV.addTrainingProgram(
      "dot", "int vec[512]; int out; void f() { int sum = 0; for (int i = "
             "0; i < 512; i++) { sum += vec[i] * vec[i]; } out = sum; }"));
  NV.train(1500);
  const double Reward =
      NV.env().step(0, NV.runner().predictSample(0));
  EXPECT_GT(Reward, 0.1);
}

} // namespace
