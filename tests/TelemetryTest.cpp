//===- tests/TelemetryTest.cpp - metrics, histograms, tracing tests --------===//
//
// Covers the observability layer: the log-bucketed histogram's pinned
// bucket layout and percentile contract, shard-merge equivalence and
// concurrent-recorder totals, the trace ring (nesting, wrap without
// tearing, chrome://tracing export), the JSON emitters, the coherent
// ServeStats snapshot, and the end-to-end serve wiring.
//
//===----------------------------------------------------------------------===//

#include "core/NeuroVectorizer.h"
#include "dataset/LoopGenerator.h"
#include "serve/ServeStats.h"
#include "support/RNG.h"
#include "support/Telemetry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

using namespace nv;

namespace {

// --- A minimal strict JSON parser (validation only) ----------------------
// Enough of RFC 8259 to prove our emitters produce well-formed documents:
// parses the full grammar, rejects trailing garbage, trailing commas, and
// unescaped control characters.
namespace minijson {

void skipWs(const std::string &S, size_t &I) {
  while (I < S.size() && (S[I] == ' ' || S[I] == '\t' || S[I] == '\n' ||
                          S[I] == '\r'))
    ++I;
}

bool parseValue(const std::string &S, size_t &I);

bool parseString(const std::string &S, size_t &I) {
  if (I >= S.size() || S[I] != '"')
    return false;
  ++I;
  while (I < S.size()) {
    const unsigned char C = static_cast<unsigned char>(S[I]);
    if (C == '"') {
      ++I;
      return true;
    }
    if (C < 0x20)
      return false; // Unescaped control character.
    if (C == '\\') {
      ++I;
      if (I >= S.size())
        return false;
      const char E = S[I];
      if (E == 'u') {
        for (int K = 0; K < 4; ++K) {
          ++I;
          if (I >= S.size() || !isxdigit(static_cast<unsigned char>(S[I])))
            return false;
        }
      } else if (!strchr("\"\\/bfnrt", E)) {
        return false;
      }
    }
    ++I;
  }
  return false;
}

bool parseNumber(const std::string &S, size_t &I) {
  const size_t Start = I;
  if (I < S.size() && S[I] == '-')
    ++I;
  if (I >= S.size() || !isdigit(static_cast<unsigned char>(S[I])))
    return false;
  while (I < S.size() && isdigit(static_cast<unsigned char>(S[I])))
    ++I;
  if (I < S.size() && S[I] == '.') {
    ++I;
    if (I >= S.size() || !isdigit(static_cast<unsigned char>(S[I])))
      return false;
    while (I < S.size() && isdigit(static_cast<unsigned char>(S[I])))
      ++I;
  }
  if (I < S.size() && (S[I] == 'e' || S[I] == 'E')) {
    ++I;
    if (I < S.size() && (S[I] == '+' || S[I] == '-'))
      ++I;
    if (I >= S.size() || !isdigit(static_cast<unsigned char>(S[I])))
      return false;
    while (I < S.size() && isdigit(static_cast<unsigned char>(S[I])))
      ++I;
  }
  return I > Start;
}

bool parseObject(const std::string &S, size_t &I) {
  ++I; // '{'
  skipWs(S, I);
  if (I < S.size() && S[I] == '}') {
    ++I;
    return true;
  }
  for (;;) {
    skipWs(S, I);
    if (!parseString(S, I))
      return false;
    skipWs(S, I);
    if (I >= S.size() || S[I] != ':')
      return false;
    ++I;
    if (!parseValue(S, I))
      return false;
    skipWs(S, I);
    if (I < S.size() && S[I] == ',') {
      ++I;
      continue;
    }
    if (I < S.size() && S[I] == '}') {
      ++I;
      return true;
    }
    return false;
  }
}

bool parseArray(const std::string &S, size_t &I) {
  ++I; // '['
  skipWs(S, I);
  if (I < S.size() && S[I] == ']') {
    ++I;
    return true;
  }
  for (;;) {
    if (!parseValue(S, I))
      return false;
    skipWs(S, I);
    if (I < S.size() && S[I] == ',') {
      ++I;
      continue;
    }
    if (I < S.size() && S[I] == ']') {
      ++I;
      return true;
    }
    return false;
  }
}

bool parseValue(const std::string &S, size_t &I) {
  skipWs(S, I);
  if (I >= S.size())
    return false;
  switch (S[I]) {
  case '{':
    return parseObject(S, I);
  case '[':
    return parseArray(S, I);
  case '"':
    return parseString(S, I);
  case 't':
    if (S.compare(I, 4, "true") == 0) {
      I += 4;
      return true;
    }
    return false;
  case 'f':
    if (S.compare(I, 5, "false") == 0) {
      I += 5;
      return true;
    }
    return false;
  case 'n':
    if (S.compare(I, 4, "null") == 0) {
      I += 4;
      return true;
    }
    return false;
  default:
    return parseNumber(S, I);
  }
}

/// Whole-document validation: one value, nothing after it.
bool valid(const std::string &S) {
  size_t I = 0;
  if (!parseValue(S, I))
    return false;
  skipWs(S, I);
  return I == S.size();
}

} // namespace minijson

size_t countOccurrences(const std::string &Haystack,
                        const std::string &Needle) {
  size_t Count = 0;
  for (size_t Pos = Haystack.find(Needle); Pos != std::string::npos;
       Pos = Haystack.find(Needle, Pos + Needle.size()))
    ++Count;
  return Count;
}

// --- Histogram layout and percentile contract ----------------------------

TEST(Histogram, BucketBoundsRoundTripAndTile) {
  // Every bucket's own bounds map back to it, and consecutive buckets
  // tile the value space with no gaps or overlaps.
  for (size_t I = 0; I < HistogramLayout::SubBuckets + 20 * 16; ++I) {
    EXPECT_EQ(HistogramLayout::bucketOf(HistogramLayout::lowerBound(I)), I);
    EXPECT_EQ(HistogramLayout::bucketOf(HistogramLayout::upperBound(I)), I);
    if (I > 0)
      EXPECT_EQ(HistogramLayout::lowerBound(I),
                HistogramLayout::upperBound(I - 1) + 1);
  }
  // Spot values around a power-of-two boundary.
  EXPECT_EQ(HistogramLayout::bucketOf(31), 31u);
  EXPECT_EQ(HistogramLayout::bucketOf(32), 32u);
  EXPECT_EQ(HistogramLayout::bucketOf(33), 32u); // [32,33] share a bucket.
  EXPECT_EQ(HistogramLayout::bucketOf(UINT64_MAX),
            HistogramLayout::NumBuckets - 1);
}

TEST(Histogram, SmallValuesAreExact) {
  Histogram H;
  for (uint64_t V = 0; V < HistogramLayout::SubBuckets; ++V)
    H.record(V);
  // Unit buckets below SubBuckets: every quantile is an exact sample.
  EXPECT_EQ(H.percentile(0.50), 15u); // rank 16 of 0..31.
  EXPECT_EQ(H.percentile(1.00), 31u);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), 31u);
}

TEST(Histogram, PinnedPercentilesOneToHundred) {
  // The acceptance pin: 1..100 recorded once each reports these exact
  // values (upper bucket bounds, clamped to the observed max).
  Histogram H;
  for (uint64_t V = 1; V <= 100; ++V)
    H.record(V);
  EXPECT_EQ(H.count(), 100u);
  EXPECT_EQ(H.sum(), 5050u);
  EXPECT_EQ(H.min(), 1u);
  EXPECT_EQ(H.max(), 100u);
  EXPECT_EQ(H.percentile(0.50), 51u);
  EXPECT_EQ(H.percentile(0.90), 91u);
  EXPECT_EQ(H.percentile(0.99), 99u);
  EXPECT_EQ(H.percentile(0.999), 100u);
}

TEST(Histogram, ConstantDatasetExactAtEveryQuantile) {
  Histogram H;
  for (int I = 0; I < 1000; ++I)
    H.record(4242);
  for (double Q : {0.01, 0.5, 0.9, 0.99, 0.999, 1.0})
    EXPECT_EQ(H.percentile(Q), 4242u) << "q=" << Q;
  EXPECT_DOUBLE_EQ(H.mean(), 4242.0);
}

TEST(Histogram, PercentileBoundsVsSortedReference) {
  // Random samples: the reported quantile must bracket the exact one
  // within the layout's 1/16 relative-error bound.
  RNG Rng(2024);
  Histogram H;
  std::vector<uint64_t> Sorted;
  for (int I = 0; I < 20000; ++I) {
    const uint64_t V = Rng.next() % 1000000;
    H.record(V);
    Sorted.push_back(V);
  }
  std::sort(Sorted.begin(), Sorted.end());
  for (double Q : {0.5, 0.9, 0.99, 0.999}) {
    const uint64_t Exact =
        Sorted[static_cast<size_t>(std::ceil(Q * Sorted.size())) - 1];
    const uint64_t Reported = H.percentile(Q);
    EXPECT_GE(Reported, Exact) << "q=" << Q;
    EXPECT_LE(Reported, Exact + Exact / 16 + 1) << "q=" << Q;
  }
}

TEST(Histogram, MergeOfShardsEqualsSerialRecording) {
  // The same multiset recorded serially into a plain histogram and
  // concurrently into the sharded one must merge to identical state.
  constexpr int Threads = 8, PerThread = 5000;
  Histogram Serial;
  for (int T = 0; T < Threads; ++T)
    for (int I = 0; I < PerThread; ++I)
      Serial.record(static_cast<uint64_t>(T) * 1000 + I % 997);

  ShardedHistogram Sharded;
  std::vector<std::thread> Workers;
  for (int T = 0; T < Threads; ++T)
    Workers.emplace_back([&Sharded, T] {
      for (int I = 0; I < PerThread; ++I)
        Sharded.record(static_cast<uint64_t>(T) * 1000 + I % 997);
    });
  for (std::thread &W : Workers)
    W.join();

  EXPECT_TRUE(Sharded.snapshot() == Serial);
}

TEST(Histogram, ConcurrentRecorderTotals) {
  constexpr int Threads = 8;
  constexpr uint64_t PerThread = 20000;
  ShardedHistogram H;
  std::vector<std::thread> Workers;
  for (int T = 0; T < Threads; ++T)
    Workers.emplace_back([&H, T] {
      for (uint64_t I = 0; I < PerThread; ++I)
        H.record(static_cast<uint64_t>(T) + 1);
    });
  for (std::thread &W : Workers)
    W.join();
  const Histogram Snap = H.snapshot();
  EXPECT_EQ(Snap.count(), Threads * PerThread);
  // Sum of T*(T+1) over threads, PerThread each: 1+2+...+8 = 36.
  EXPECT_EQ(Snap.sum(), 36 * PerThread);
  EXPECT_EQ(Snap.min(), 1u);
  EXPECT_EQ(Snap.max(), static_cast<uint64_t>(Threads));
}

// --- Trace buffer --------------------------------------------------------

TEST(Trace, SpanNestingIsContained) {
  TraceBuffer TB(64);
  {
    TraceSpan Outer(&TB, "outer", 7);
    for (volatile int I = 0; I < 10000; ++I)
      ;
    TraceSpan Inner(&TB, "inner", 7);
    for (volatile int I = 0; I < 10000; ++I)
      ;
  }
  const std::vector<TraceEvent> Events = TB.snapshot();
  ASSERT_EQ(Events.size(), 2u);
  const TraceEvent *Outer = nullptr, *Inner = nullptr;
  for (const TraceEvent &E : Events) {
    if (std::string(E.Name) == "outer")
      Outer = &E;
    else if (std::string(E.Name) == "inner")
      Inner = &E;
  }
  ASSERT_TRUE(Outer && Inner);
  EXPECT_GE(Inner->TsMicros, Outer->TsMicros);
  EXPECT_LE(Inner->TsMicros + Inner->DurMicros,
            Outer->TsMicros + Outer->DurMicros);
  EXPECT_EQ(Outer->RequestId, 7u);
}

TEST(Trace, RingWrapsWithoutTearingUnderStress) {
  // Small rings, heavy multi-thread traffic, concurrent snapshots. Every
  // recorded event carries a self-consistency invariant (Dur = 2*Req+1,
  // Ts = Req) that a torn read would break.
  constexpr size_t Capacity = 64;
  constexpr int Threads = 4;
  constexpr uint64_t PerThread = 30000;
  TraceBuffer TB(Capacity);
  std::atomic<bool> Stop{false};
  std::atomic<bool> Failed{false};

  std::thread Reader([&] {
    while (!Stop.load()) {
      for (const TraceEvent &E : TB.snapshot()) {
        if (E.DurMicros != 2 * E.RequestId + 1 || E.TsMicros != E.RequestId)
          Failed.store(true);
      }
    }
  });
  std::vector<std::thread> Writers;
  for (int T = 0; T < Threads; ++T)
    Writers.emplace_back([&TB] {
      for (uint64_t K = 0; K < PerThread; ++K)
        TB.record("stress", /*TsMicros=*/K, /*DurMicros=*/2 * K + 1,
                  /*RequestId=*/K);
    });
  for (std::thread &W : Writers)
    W.join();
  Stop.store(true);
  Reader.join();

  EXPECT_FALSE(Failed.load());
  const std::vector<TraceEvent> Final = TB.snapshot();
  EXPECT_LE(Final.size(), Capacity * Threads);
  for (const TraceEvent &E : Final) {
    EXPECT_EQ(E.DurMicros, 2 * E.RequestId + 1);
    EXPECT_EQ(E.TsMicros, E.RequestId);
  }
  // Each ring kept its newest Capacity spans; the rest are counted lost.
  EXPECT_EQ(TB.dropped(), Threads * PerThread - Final.size());

  TB.clear();
  EXPECT_TRUE(TB.snapshot().empty());
}

TEST(Trace, SamplingKnob) {
  TraceBuffer TB;
  EXPECT_EQ(TB.sampleEvery(), 0u);
  for (int I = 0; I < 100; ++I)
    EXPECT_FALSE(TB.shouldSample()); // Off by default.
  TB.setSampleEvery(4);
  int Sampled = 0;
  for (int I = 0; I < 100; ++I)
    Sampled += TB.shouldSample();
  EXPECT_EQ(Sampled, 25);
}

TEST(Trace, NullBufferSpanIsFree) {
  TraceSpan S(nullptr, "nothing"); // Must not crash or record.
}

TEST(Trace, ChromeJsonExportIsWellFormed) {
  TraceBuffer TB(32);
  {
    TraceSpan A(&TB, "phase_a", 1);
    TraceSpan B(&TB, "phase_b", 2);
  }
  TB.record("with \"quotes\"? no — names are literals", 10, 5, 3);

  std::ostringstream OS;
  TB.exportChromeJson(OS);
  const std::string Doc = OS.str();

  // Round-trip: the document parses, declares the trace-event envelope,
  // and carries one complete ("ph":"X") event per retained span.
  EXPECT_TRUE(minijson::valid(Doc)) << Doc;
  EXPECT_NE(Doc.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(Doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_EQ(countOccurrences(Doc, "\"ph\": \"X\""), TB.snapshot().size());
  EXPECT_EQ(countOccurrences(Doc, "\"args\""), TB.snapshot().size());
}

// --- JSON emitters and the registry --------------------------------------

TEST(Telemetry, JsonLineEscapesAndParses) {
  const std::string Line = JsonLine()
                               .field("text", "quo\"te\\back\nnew\ttab")
                               .field("num", 3.5)
                               .field("count", static_cast<uint64_t>(7))
                               .field("neg", -2)
                               .field("flag", true)
                               .raw("nested", "{\"x\": 1}")
                               .str();
  EXPECT_TRUE(minijson::valid(Line)) << Line;
  EXPECT_NE(Line.find("\\\""), std::string::npos);
  EXPECT_NE(Line.find("\\n"), std::string::npos);
}

TEST(Telemetry, RegistrySnapshotJsonParses) {
  MetricsRegistry Reg;
  Reg.counter("test.requests").add(5);
  Reg.gauge("test.depth").set(2.5);
  ShardedHistogram &H = Reg.histogram("test.latency_us");
  for (uint64_t V = 1; V <= 100; ++V)
    H.record(V);

  const std::string Doc = Reg.snapshotJson();
  EXPECT_TRUE(minijson::valid(Doc)) << Doc;
  EXPECT_NE(Doc.find("\"test.requests\": 5"), std::string::npos);
  // The pinned percentiles surface in the snapshot document.
  EXPECT_NE(Doc.find("\"p50_us\": 51"), std::string::npos);
  EXPECT_NE(Doc.find("\"p99_us\": 99"), std::string::npos);

  // Same instances on re-lookup: hot paths may cache the pointers.
  EXPECT_EQ(&Reg.counter("test.requests"), &Reg.counter("test.requests"));
  EXPECT_EQ(Reg.counter("test.requests").value(), 5u);
}

TEST(Telemetry, ProcessWideSnapshotParses) {
  Telemetry::metrics().counter("test.global").add();
  const std::string Doc = Telemetry::snapshotJson();
  EXPECT_TRUE(minijson::valid(Doc)) << Doc;
  EXPECT_NE(Doc.find("\"trace\""), std::string::npos);
  EXPECT_NE(Doc.find("\"sample_every\""), std::string::npos);
}

TEST(Telemetry, RunLogWritesParseableLines) {
  const std::string Path = ::testing::TempDir() + "nv_runlog_test.jsonl";
  std::remove(Path.c_str());
  {
    RunLog Log(Path);
    ASSERT_TRUE(Log.enabled());
    Log.write(JsonLine().field("event", "batch").field("step", 64));
    Log.write(JsonLine().field("event", "final").field("reward", 0.25));
    EXPECT_EQ(Log.lines(), 2u);
  }
  std::ifstream In(Path);
  std::string Line;
  int Lines = 0;
  while (std::getline(In, Line)) {
    ++Lines;
    EXPECT_TRUE(minijson::valid(Line)) << Line;
  }
  EXPECT_EQ(Lines, 2);
  std::remove(Path.c_str());

  RunLog Disabled("");
  EXPECT_FALSE(Disabled.enabled());
  Disabled.write(JsonLine().field("event", "x")); // No-op, no crash.
}

// --- ServeStats coherent snapshot -----------------------------------------

TEST(ServeStats, SnapshotSeesBatchesAllOrNothing) {
  // Each published batch keeps fixed ratios between fields; any snapshot
  // that catches a batch half-applied breaks them.
  ServeStats Stats;
  std::atomic<bool> Stop{false};
  std::atomic<bool> Failed{false};

  std::thread Reader([&] {
    while (!Stop.load()) {
      const ServeSnapshot S = Stats.snapshot();
      if (S.CacheHits * 5 != S.CacheMisses * 3 ||
          S.ProgramsServed * 2 != S.BatchesServed * 4 ||
          S.hitRate() > 1.0)
        Failed.store(true);
    }
  });
  std::vector<std::thread> Writers;
  for (int T = 0; T < 4; ++T)
    Writers.emplace_back([&Stats] {
      for (int I = 0; I < 2000; ++I) {
        ServeStats Delta;
        Delta.BatchesServed = 1;
        Delta.ProgramsServed = 2;
        Delta.CacheHits = 3;
        Delta.CacheMisses = 5;
        Delta.TotalMicros = 100;
        Stats.addBatch(Delta);
      }
    });
  for (std::thread &W : Writers)
    W.join();
  Stop.store(true);
  Reader.join();

  EXPECT_FALSE(Failed.load());
  const ServeSnapshot Final = Stats.snapshot();
  EXPECT_EQ(Final.BatchesServed, 8000u);
  EXPECT_EQ(Final.CacheHits, 24000u);
  EXPECT_EQ(Final.CacheMisses, 40000u);
  EXPECT_DOUBLE_EQ(Final.hitRate(), 24000.0 / 64000.0);
  EXPECT_DOUBLE_EQ(Final.throughput(), 16000.0 * 1e6 / 800000.0);

  Stats.reset();
  const ServeSnapshot Zero = Stats.snapshot();
  EXPECT_EQ(Zero.BatchesServed, 0u);
  EXPECT_EQ(Zero.TotalMicros, 0u);
  EXPECT_EQ(Zero.hitRate(), 0.0);
}

TEST(ServeStats, PerMethodCountersTravelWithBatch) {
  ServeStats Stats;
  ServeStats Delta;
  Delta.forMethod(PredictMethod::RL).Loops = 10;
  Delta.forMethod(PredictMethod::RL).Misses = 4;
  Delta.forMethod(PredictMethod::NNS).Loops = 3;
  Stats.addBatch(Delta);
  const ServeSnapshot S = Stats.snapshot();
  EXPECT_EQ(S.PerMethod[static_cast<size_t>(PredictMethod::RL)].Loops, 10u);
  EXPECT_EQ(S.PerMethod[static_cast<size_t>(PredictMethod::RL)].Misses, 4u);
  EXPECT_EQ(S.PerMethod[static_cast<size_t>(PredictMethod::NNS)].Loops, 3u);
}

// --- End-to-end serve wiring ----------------------------------------------

TEST(Telemetry, ServePipelineRecordsHistogramsAndSpans) {
  NeuroVectorizerConfig Config;
  Config.PPO.BatchSize = 64;
  Config.PPO.MiniBatchSize = 32;
  Config.Embedding.CodeDim = 16;
  Config.Embedding.TokenDim = 8;
  Config.Embedding.PathDim = 8;
  NeuroVectorizer NV(Config);
  LoopGenerator Gen(11);
  for (const GeneratedLoop &L : Gen.generateMany(4))
    ASSERT_TRUE(NV.addTrainingProgram(L.Name, L.Source));
  NV.train(64);

  // Trace every batch for this test, then restore the default (off).
  Telemetry::trace().clear();
  Telemetry::trace().setSampleEvery(1);

  ShardedHistogram &BatchUs = Telemetry::metrics().histogram("serve.batch_us");
  ShardedHistogram &ParseUs = Telemetry::metrics().histogram("serve.parse_us");
  const uint64_t BatchesBefore = BatchUs.snapshot().count();
  const uint64_t ParsesBefore = ParseUs.snapshot().count();

  std::vector<AnnotationRequest> Requests;
  for (const GeneratedLoop &L : Gen.generateMany(6))
    Requests.push_back({L.Name, L.Source});
  ServeConfig Serve;
  Serve.Threads = 2;
  std::vector<AnnotationResult> Results =
      NV.service(Serve).annotateBatch(Requests);
  Telemetry::trace().setSampleEvery(0);

  ASSERT_EQ(Results.size(), Requests.size());
  for (const AnnotationResult &Res : Results)
    EXPECT_TRUE(Res.Ok) << Res.Error;

  // Histograms advanced: one batch, one parse per request.
  EXPECT_EQ(BatchUs.snapshot().count(), BatchesBefore + 1);
  EXPECT_EQ(ParseUs.snapshot().count(), ParsesBefore + Requests.size());

  // The trace carries the batch and phase spans, and exports valid
  // chrome://tracing JSON.
  std::vector<TraceEvent> Events = Telemetry::trace().snapshot();
  auto Has = [&Events](const char *Name) {
    for (const TraceEvent &E : Events)
      if (std::string(E.Name) == Name)
        return true;
    return false;
  };
  EXPECT_TRUE(Has("serve.batch"));
  EXPECT_TRUE(Has("serve.extract"));
  EXPECT_TRUE(Has("serve.infer"));
  EXPECT_TRUE(Has("serve.render"));
  EXPECT_TRUE(Has("serve.parse"));

  std::ostringstream OS;
  Telemetry::trace().exportChromeJson(OS);
  EXPECT_TRUE(minijson::valid(OS.str()));

  // The full /statsz-style document stays well-formed with serve data in.
  EXPECT_TRUE(minijson::valid(Telemetry::snapshotJson()));

  // ServeStats agrees with itself through the coherent snapshot.
  const ServeSnapshot S = NV.service().stats().snapshot();
  EXPECT_EQ(S.BatchesServed, 1u);
  EXPECT_EQ(S.ProgramsServed, Requests.size());
}

TEST(Telemetry, ServeTelemetryOffRecordsNothing) {
  NeuroVectorizerConfig Config;
  Config.PPO.BatchSize = 64;
  Config.PPO.MiniBatchSize = 32;
  Config.Embedding.CodeDim = 16;
  Config.Embedding.TokenDim = 8;
  Config.Embedding.PathDim = 8;
  NeuroVectorizer NV(Config);
  LoopGenerator Gen(12);
  for (const GeneratedLoop &L : Gen.generateMany(3))
    ASSERT_TRUE(NV.addTrainingProgram(L.Name, L.Source));
  NV.train(64);

  ShardedHistogram &BatchUs = Telemetry::metrics().histogram("serve.batch_us");
  const uint64_t Before = BatchUs.snapshot().count();

  ServeConfig Serve;
  Serve.Threads = 2;
  Serve.Telemetry = false;
  std::vector<AnnotationRequest> Requests;
  for (const GeneratedLoop &L : Gen.generateMany(3))
    Requests.push_back({L.Name, L.Source});
  NV.service(Serve).annotateBatch(Requests);

  EXPECT_EQ(BatchUs.snapshot().count(), Before); // Untouched.
  // The thin counter view still works without telemetry.
  EXPECT_EQ(NV.service().stats().snapshot().ProgramsServed, Requests.size());
}

} // namespace
