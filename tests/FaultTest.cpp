//===- tests/FaultTest.cpp - fault injection and failure-hardening tests --===//
//
// The chaos suite: arms the process-wide fault registry
// (support/FaultInjection.h) and asserts the failure-hardening
// contracts end to end — crash-safe persistence survives mid-save
// kills, the daemon survives socket faults and half-closed peers, the
// retrying client loses zero idempotent operations, and the serving
// ladder degrades instead of erroring when a backend goes bad.
//
// Every test that arms the registry disarms it on scope exit
// (FaultScope) so arming never leaks into other suites.
//
//===----------------------------------------------------------------------===//

#include "core/NeuroVectorizer.h"
#include "net/Client.h"
#include "net/NetServer.h"
#include "net/Protocol.h"
#include "serve/CircuitBreaker.h"
#include "serve/ModelHost.h"
#include "support/AtomicFile.h"
#include "support/FaultInjection.h"
#include "support/Socket.h"
#include "support/TraceBuffer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

using namespace nv;
using net::Verb;
using net::WireStatus;

namespace {

const char *DotProduct =
    "int vec[512]; int out; void f() { int sum = 0; for (int i = 0; i < "
    "512; i++) { sum += vec[i] * vec[i]; } out = sum; }";

const char *Saxpy =
    "float x[256]; float y[256]; void s() { for (int i = 0; i < 256; "
    "i++) { y[i] = y[i] + x[i]; } }";

/// Small, fast configuration (matches NetTest's).
NeuroVectorizerConfig testConfig(uint64_t Seed = 1234) {
  NeuroVectorizerConfig Config;
  Config.PPO.BatchSize = 64;
  Config.PPO.MiniBatchSize = 32;
  Config.PPO.LearningRate = 3e-3;
  Config.Embedding.CodeDim = 16;
  Config.Embedding.TokenDim = 8;
  Config.Embedding.PathDim = 8;
  Config.Seed = Seed;
  return Config;
}

/// A scratch file path removed on scope exit (with any atomic-write temp
/// a crash test may have left beside it).
struct TempFile {
  std::string Path;
  explicit TempFile(const std::string &Name)
      : Path(::testing::TempDir() + Name) {}
  ~TempFile() {
    std::remove(Path.c_str());
    std::remove((Path + ".tmp." + std::to_string(::getpid())).c_str());
  }
};

/// Arms the registry for one scope; disarms unconditionally on exit so a
/// failing assertion cannot leave the process armed for later suites.
struct FaultScope {
  explicit FaultScope(const std::string &Spec,
                      uint64_t Seed = fault::DefaultSeed) {
    std::string Error;
    Armed = fault::FaultRegistry::instance().arm(Spec, Seed, &Error);
    EXPECT_TRUE(Armed) << Error;
  }
  ~FaultScope() { fault::FaultRegistry::instance().disarm(); }
  bool Armed = false;
};

std::string slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(In)),
                     std::istreambuf_iterator<char>());
}

ServeConfig smallServe(int Threads = 2) {
  ServeConfig S;
  S.Threads = Threads;
  return S;
}

/// A hosted-mode service + daemon on an ephemeral loopback port
/// (NetTest's fixture).
struct TestServer {
  NeuroVectorizerConfig Config;
  ModelHost Models;
  AnnotationService Service;
  NetServer Server;

  explicit TestServer(NetServerConfig Net = NetServerConfig(),
                      int Threads = 2)
      : Config(testConfig()),
        Models(NeuroVectorizer(Config).servingModelConfig()),
        Service(Models, Config.Embedding.Paths, Config.Target,
                smallServe(Threads)),
        Server(Service, Models, Net) {}

  uint16_t start() {
    std::string Error;
    EXPECT_TRUE(Server.start(&Error)) << Error;
    return Server.port();
  }
};

net::AnnotateRequestBody makeBatch(const std::vector<std::string> &Sources) {
  net::AnnotateRequestBody Req;
  for (size_t I = 0; I < Sources.size(); ++I) {
    net::WireProgram P;
    P.Name = "p" + std::to_string(I);
    P.Source = Sources[I];
    Req.Programs.push_back(std::move(P));
  }
  return Req;
}

// --- Registry and grammar ------------------------------------------------

TEST(FaultInjection, GrammarParsesEveryFormAndRejectsMalformed) {
  fault::FaultRegistry &R = fault::FaultRegistry::instance();
  {
    FaultScope Scope("a.b=0.25,c.d=fail@3,e.f=abort@9,g.h=15ms");
    ASSERT_TRUE(Scope.Armed);
    EXPECT_TRUE(R.armed());
    EXPECT_TRUE(fault::point("a.b").armed());
    EXPECT_TRUE(fault::point("c.d").armed());
    EXPECT_TRUE(fault::point("e.f").armed());
    EXPECT_TRUE(fault::point("g.h").armed());
    // The status document lists every armed point by name.
    const std::string Json = R.statusJson();
    for (const char *Name : {"a.b", "c.d", "e.f", "g.h"})
      EXPECT_NE(Json.find(Name), std::string::npos) << Json;
  }
  EXPECT_FALSE(R.armed());
  EXPECT_FALSE(fault::point("a.b").armed());

  // A grammar error arms nothing — all-or-nothing, with the cause named.
  for (const char *Bad :
       {"nospec", "p=", "p=1.5", "p=-0.1", "p=fail@", "p=fail@x", "p=12q",
        "=0.5", "p=abort@0"}) {
    std::string Error;
    EXPECT_FALSE(R.arm(Bad, fault::DefaultSeed, &Error)) << Bad;
    EXPECT_FALSE(Error.empty()) << Bad;
    EXPECT_FALSE(R.armed()) << Bad;
  }
}

TEST(FaultInjection, ProbabilityStreamIsDeterministicAcrossRearm) {
  fault::FaultRegistry &R = fault::FaultRegistry::instance();
  auto Pattern = [&](uint64_t Seed) {
    std::string Error;
    EXPECT_TRUE(R.arm("det.prob=0.3", Seed, &Error)) << Error;
    fault::FaultPoint &P = fault::point("det.prob");
    std::vector<bool> Out;
    for (int I = 0; I < 200; ++I)
      Out.push_back(fault::fired(P));
    return Out;
  };
  const std::vector<bool> A = Pattern(42);
  const std::vector<bool> B = Pattern(42);
  const std::vector<bool> C = Pattern(43);
  R.disarm();
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C); // 200 draws at p=0.3: collision is ~impossible.
  const size_t Fires = static_cast<size_t>(
      std::count(A.begin(), A.end(), true));
  EXPECT_GT(Fires, 30u); // Loose 3-sigma-ish bounds around 60.
  EXPECT_LT(Fires, 100u);
}

TEST(FaultInjection, FailAtNFiresExactlyOnce) {
  FaultScope Scope("nth.hit=fail@3");
  fault::FaultPoint &P = fault::point("nth.hit");
  for (int I = 1; I <= 10; ++I)
    EXPECT_EQ(fault::fired(P), I == 3) << "hit " << I;
  EXPECT_EQ(P.hits(), 10u);
  EXPECT_EQ(P.fired(), 1u);
}

TEST(FaultInjection, DelayInjectsLatencyWithoutFailure) {
  FaultScope Scope("slow.point=20ms");
  fault::FaultPoint &P = fault::point("slow.point");
  const uint64_t T0 = nowMicros();
  EXPECT_FALSE(fault::fired(P)); // Delay never reports failure.
  const uint64_t Elapsed = nowMicros() - T0;
  EXPECT_GE(Elapsed, 15000u) << "sleep was skipped";
}

TEST(FaultInjection, UnarmedFastPathCountsNothing) {
  fault::FaultRegistry::instance().disarm();
  fault::FaultPoint &P = fault::point("cold.point");
  const uint64_t Before = P.hits();
  for (int I = 0; I < 1000; ++I)
    EXPECT_FALSE(fault::fired(P));
  // Unarmed hits never reach the slow path, so the counter is untouched.
  EXPECT_EQ(P.hits(), Before);
}

// --- Crash-safe persistence ----------------------------------------------

TEST(AtomicFile, ReplacesWholeFileAtomically) {
  TempFile File("fault_atomic.bin");
  std::string Error;
  ASSERT_EQ(atomicWriteFile(File.Path, "first", 5, &Error), SaveStatus::Ok)
      << Error;
  EXPECT_EQ(slurp(File.Path), "first");
  ASSERT_EQ(atomicWriteFile(File.Path, "second!", 7, &Error),
            SaveStatus::Ok);
  EXPECT_EQ(slurp(File.Path), "second!");
}

TEST(AtomicFile, InjectedFailuresLeaveOldContentAndNoTempBehind) {
  TempFile File("fault_atomic_inject.bin");
  std::string Error;
  ASSERT_EQ(atomicWriteFile(File.Path, "good", 4, &Error), SaveStatus::Ok);

  const struct {
    const char *Spec;
    SaveStatus Want;
  } Cases[] = {
      {"file.write=fail@1", SaveStatus::WriteFailed},
      {"file.fsync=fail@1", SaveStatus::SyncFailed},
      {"file.rename=fail@1", SaveStatus::RenameFailed},
  };
  for (const auto &Case : Cases) {
    FaultScope Scope(Case.Spec);
    std::string Err;
    EXPECT_EQ(atomicWriteFile(File.Path, "torn-new-content", 16, &Err),
              Case.Want)
        << Case.Spec;
    EXPECT_FALSE(Err.empty());
    // Old bytes intact, temp cleaned up.
    EXPECT_EQ(slurp(File.Path), "good") << Case.Spec;
    const std::string Tmp =
        File.Path + ".tmp." + std::to_string(::getpid());
    EXPECT_NE(::access(Tmp.c_str(), F_OK), 0) << "temp leaked: " << Tmp;
  }
  EXPECT_EQ(slurp(File.Path), "good");
}

TEST(AtomicFile, MidSaveAbortLeavesOldFileIntact) {
  TempFile File("fault_atomic_abort.bin");
  std::string Error;
  ASSERT_EQ(atomicWriteFile(File.Path, "precious", 8, &Error),
            SaveStatus::Ok);

  // Arm before the fork so the child needs no post-fork setup (the
  // armed-path decision is lock-free); the parent disarms immediately.
  ASSERT_TRUE(fault::FaultRegistry::instance().arm("file.write=abort@2"));
  const pid_t Child = ::fork();
  if (Child == 0) {
    // In the child: a 1 MiB body spans four 256 KiB chunks, so the
    // abort lands mid-body with the temp file genuinely torn.
    std::vector<char> Big(1 << 20, 'x');
    (void)atomicWriteFile(File.Path, Big.data(), Big.size(), nullptr);
    ::_exit(0); // Only reached if the abort failed to fire.
  }
  fault::FaultRegistry::instance().disarm();
  ASSERT_GT(Child, 0);
  int Status = 0;
  ASSERT_EQ(::waitpid(Child, &Status, 0), Child);
  ASSERT_TRUE(WIFSIGNALED(Status)) << "child exited instead of aborting";
  EXPECT_EQ(WTERMSIG(Status), SIGABRT);

  // The kill hit mid-save; the destination never saw a torn byte. The
  // child's temp file may survive the crash — that is the contract
  // (rename never ran), and a later successful save ignores it.
  EXPECT_EQ(slurp(File.Path), "precious");
  std::remove((File.Path + ".tmp." + std::to_string(Child)).c_str());
}

TEST(ModelSerializer, TrySaveReportsStageAndPreservesOldModel) {
  TempFile File("fault_trysave.nvm");
  NeuroVectorizer NV(testConfig());
  ASSERT_TRUE(NV.addTrainingProgram("dot", DotProduct));
  NV.train(48);
  std::string Error;
  ASSERT_EQ(NV.trySave(File.Path, &Error), SaveStatus::Ok) << Error;
  const std::string Golden = slurp(File.Path);
  ASSERT_FALSE(Golden.empty());

  {
    FaultScope Scope("file.fsync=fail@1");
    std::string Err;
    EXPECT_EQ(NV.trySave(File.Path, &Err), SaveStatus::SyncFailed);
    EXPECT_STREQ(saveStatusName(SaveStatus::SyncFailed), "sync_failed");
  }
  // The failed save left the previous model byte-identical and loadable.
  EXPECT_EQ(slurp(File.Path), Golden);
  NeuroVectorizer Fresh(testConfig(/*Seed=*/9));
  EXPECT_TRUE(Fresh.load(File.Path, &Error)) << Error;
}

// --- Circuit breaker and the degradation ladder --------------------------

TEST(CircuitBreaker, OpensAfterThresholdCoolsDownAndRecovers) {
  CircuitBreaker B(/*FailureThreshold=*/3, /*CooldownMicros=*/1000);
  uint64_t Now = 0;
  EXPECT_TRUE(B.allow(Now));
  B.recordFailure(Now);
  B.recordFailure(Now);
  EXPECT_EQ(B.state(), CircuitBreaker::State::Closed);
  // A success resets the consecutive count...
  B.recordSuccess();
  B.recordFailure(Now);
  B.recordFailure(Now);
  EXPECT_TRUE(B.allow(Now));
  // ...so the third consecutive failure is what trips it.
  B.recordFailure(Now);
  EXPECT_EQ(B.state(), CircuitBreaker::State::Open);
  EXPECT_FALSE(B.allow(Now + 999));
  // Cooldown elapsed: probes flow (HalfOpen), a failure slams it shut.
  EXPECT_TRUE(B.allow(Now + 1000));
  EXPECT_EQ(B.state(), CircuitBreaker::State::HalfOpen);
  B.recordFailure(Now + 1001);
  EXPECT_EQ(B.state(), CircuitBreaker::State::Open);
  EXPECT_FALSE(B.allow(Now + 1500));
  // Second probe succeeds: closed for business.
  EXPECT_TRUE(B.allow(Now + 2500));
  B.recordSuccess();
  EXPECT_EQ(B.state(), CircuitBreaker::State::Closed);
  EXPECT_TRUE(B.allow(Now + 2500));
  EXPECT_EQ(B.failures(), 6u);
  EXPECT_EQ(B.opens(), 2u);
}

TEST(AnnotationService, PredictFaultDegradesThenBreakerShortCircuits) {
  // Every RL predict fails (injected). Requests still succeed — the
  // mid-flight ladder floors them to identity plans, flagged Degraded —
  // and after three consecutive failures the RL breaker opens, so the
  // fourth request never touches RL at all: phase-1 resolution walks
  // straight to the baseline cost model.
  NeuroVectorizer NV(testConfig());
  ServeConfig Serve;
  Serve.Threads = 2;
  Serve.BreakerFailureThreshold = 3;
  AnnotationService &Service = NV.service(Serve);
  FaultScope Scope("serve.predict.rl=1");

  for (int I = 0; I < 3; ++I) {
    const AnnotationResult Res =
        Service.annotateOne("dot", DotProduct, PredictMethod::RL);
    EXPECT_TRUE(Res.Ok) << Res.Error;
    EXPECT_TRUE(Res.Degraded);
    EXPECT_EQ(Service.breaker(PredictMethod::RL).failures(),
              static_cast<uint64_t>(I + 1));
  }
  EXPECT_EQ(Service.breaker(PredictMethod::RL).state(),
            CircuitBreaker::State::Open);
  EXPECT_EQ(Service.stats().PredictFailures.load(), 3u);

  const AnnotationResult After =
      Service.annotateOne("dot", DotProduct, PredictMethod::RL);
  EXPECT_TRUE(After.Ok) << After.Error;
  EXPECT_TRUE(After.Degraded);
  EXPECT_EQ(After.Method, PredictMethod::Baseline);
  // The short-circuited request never reached the faulted backend.
  EXPECT_EQ(Service.breaker(PredictMethod::RL).failures(), 3u);
  EXPECT_EQ(Service.stats().DegradedRequests.load(), 4u);
  EXPECT_EQ(Service.stats().ProgramsRejected.load(), 0u);
}

TEST(AnnotationService, StrictModePredictFaultRejectsInstead) {
  NeuroVectorizer NV(testConfig());
  ServeConfig Strict;
  Strict.Threads = 2;
  Strict.Fallback = false;
  AnnotationService &Service = NV.service(Strict);
  FaultScope Scope("serve.predict.rl=1");

  const AnnotationResult Res =
      Service.annotateOne("dot", DotProduct, PredictMethod::RL);
  EXPECT_FALSE(Res.Ok);
  EXPECT_NE(Res.Error.find("predict failed"), std::string::npos)
      << Res.Error;
  EXPECT_EQ(Service.stats().DegradedRequests.load(), 0u);
}

// --- Client resilience ---------------------------------------------------

TEST(NetClient, BackoffIsDeterministicCappedAndJittered) {
  ClientConfig Config;
  Config.BackoffBaseMs = 50;
  Config.BackoffMaxMs = 2000;
  for (int Attempt = 0; Attempt < 12; ++Attempt) {
    const uint64_t A = NetClient::backoffMicros(Config, Attempt);
    const uint64_t B = NetClient::backoffMicros(Config, Attempt);
    EXPECT_EQ(A, B) << "attempt " << Attempt; // Same seed, same delay.
    const uint64_t StepMs = std::min<uint64_t>(
        Config.BackoffMaxMs,
        static_cast<uint64_t>(Config.BackoffBaseMs) << Attempt);
    EXPECT_GE(A, StepMs * 1000 / 2) << "attempt " << Attempt;
    EXPECT_LT(A, StepMs * 1000) << "attempt " << Attempt;
  }
  // The cap holds forever: attempt 30 is still <= 2 s of sleep.
  EXPECT_LT(NetClient::backoffMicros(Config, 30), 2'000'000u);
  // A different seed draws a different jitter somewhere in the range.
  ClientConfig Other = Config;
  Other.BackoffSeed = 1;
  bool Differs = false;
  for (int Attempt = 0; Attempt < 12 && !Differs; ++Attempt)
    Differs = NetClient::backoffMicros(Other, Attempt) !=
              NetClient::backoffMicros(Config, Attempt);
  EXPECT_TRUE(Differs);
}

TEST(NetClient, IoDeadlineBoundsAHungServer) {
  // A listener that never accepts: connect() succeeds (backlog), the
  // ping then starves. The deadline must surface failure in bounded
  // time instead of hanging the caller forever.
  std::string Error;
  uint16_t Port = 0;
  FileDescriptor Listener = listenTcp("127.0.0.1", 0, &Error, &Port);
  ASSERT_TRUE(Listener.valid()) << Error;

  ClientConfig Config;
  Config.ConnectTimeoutMs = 1000;
  Config.IoTimeoutMs = 100;
  Config.MaxRetries = 1;
  Config.BackoffBaseMs = 1;
  Config.BackoffMaxMs = 4;
  NetClient Client(Config);
  ASSERT_TRUE(Client.connect("127.0.0.1", Port, &Error)) << Error;

  const uint64_t T0 = nowMicros();
  EXPECT_FALSE(Client.ping(&Error));
  const uint64_t Elapsed = nowMicros() - T0;
  EXPECT_FALSE(Error.empty());
  // Two attempts x ~100 ms deadline + backoff, with generous slack.
  EXPECT_LT(Elapsed, 5'000'000u) << "deadline did not bound the hang";
}

// --- End-to-end chaos ----------------------------------------------------

TEST(Chaos, SocketFaultHammerLosesNoIdempotentOperation) {
  TestServer TS;
  const uint16_t Port = TS.start();

  // Both ends of every connection live in this process, so the armed
  // probabilities flake client reads/writes AND the daemon's epoll
  // read/flush paths. The retrying client must still land every
  // idempotent operation.
  ClientConfig Config;
  Config.ConnectTimeoutMs = 2000;
  Config.IoTimeoutMs = 2000;
  Config.MaxRetries = 8;
  Config.BackoffBaseMs = 1;
  Config.BackoffMaxMs = 8;
  NetClient Client(Config);
  std::string Error;
  ASSERT_TRUE(Client.connect("127.0.0.1", Port, &Error)) << Error;

  {
    FaultScope Scope("socket.read=0.04,socket.write=0.04",
                     /*Seed=*/20260808);
    for (int I = 0; I < 30; ++I) {
      if (I % 3 == 0) {
        EXPECT_TRUE(Client.ping(&Error)) << "op " << I << ": " << Error;
        continue;
      }
      net::AnnotateResponseBody Out;
      WireStatus Status = WireStatus::Error;
      ASSERT_TRUE(Client.annotate(makeBatch({DotProduct, Saxpy}), Out,
                                  Status, &Error))
          << "op " << I << ": " << Error;
      EXPECT_EQ(Status, WireStatus::Ok);
      ASSERT_EQ(Out.Results.size(), 2u);
      for (const net::WireResult &R : Out.Results)
        EXPECT_TRUE(R.Ok) << R.Error;
    }
    // The profile must actually have bitten — otherwise this test
    // proves nothing (seed chosen so it reliably does).
    const RetryStats &Stats = Client.retryStats();
    EXPECT_GT(Stats.Retries + Stats.Reconnects, 0u)
        << "no fault ever fired; raise the probability or fix the seed";
  }

  // Disarmed again: the daemon is intact and answers cleanly.
  EXPECT_TRUE(Client.ping(&Error)) << Error;
  const NetServerCounters C = TS.Server.counters();
  EXPECT_GE(C.Requests, 30u);
}

TEST(Chaos, HalfClosedPeerDoesNotKillTheDaemon) {
  // SIGPIPE regression: a client that sends a request and vanishes
  // before reading the response makes the daemon write into a closed
  // peer. MSG_NOSIGNAL must turn that into EPIPE, not process death
  // (this test binary installs no SIGPIPE handler on purpose).
  TestServer TS;
  const uint16_t Port = TS.start();

  for (int Round = 0; Round < 4; ++Round) {
    std::string Error;
    FileDescriptor Fd = connectTcp("127.0.0.1", Port, &Error, 1000);
    ASSERT_TRUE(Fd.valid()) << Error;
    const std::vector<char> Frame =
        net::encodeAnnotateRequest(makeBatch({DotProduct, Saxpy}));
    ASSERT_TRUE(writeFull(Fd.fd(), Frame.data(), Frame.size()));
    // Hard close (RST on unread response data) without reading a byte.
    struct linger Abort = {1, 0};
    ::setsockopt(Fd.fd(), SOL_SOCKET, SO_LINGER, &Abort, sizeof(Abort));
    Fd.reset();
  }

  // The daemon survived every EPIPE/RST and still serves.
  NetClient Client;
  std::string Error;
  ASSERT_TRUE(Client.connect("127.0.0.1", Port, &Error)) << Error;
  EXPECT_TRUE(Client.ping(&Error)) << Error;
}

TEST(Chaos, InjectedReloadFailureSurfacesThenRetrySucceeds) {
  TempFile Model("fault_reload.nvm");
  {
    NeuroVectorizer NV(testConfig(/*Seed=*/5));
    ASSERT_TRUE(NV.addTrainingProgram("dot", DotProduct));
    NV.train(48);
    std::string Error;
    ASSERT_TRUE(NV.save(Model.Path, &Error)) << Error;
  }

  TestServer TS;
  const uint16_t Port = TS.start();
  NetClient Client;
  std::string Error;
  ASSERT_TRUE(Client.connect("127.0.0.1", Port, &Error)) << Error;

  FaultScope Scope("model.reload=fail@1");
  WireStatus Status = WireStatus::Ok;
  uint64_t Generation = 0;
  // First reload: the injected fault fails it, with the stage named in
  // the rejection body; the serving generation must not advance.
  ASSERT_TRUE(Client.reload(Model.Path, Status, &Generation, &Error))
      << Error;
  EXPECT_EQ(Status, WireStatus::ReloadFailed);
  EXPECT_NE(Client.statusMessage().find("fault injected"),
            std::string::npos)
      << Client.statusMessage();
  EXPECT_EQ(TS.Models.generation(), 0u);

  // fail@1 is spent: the operator's retry goes through and serves.
  ASSERT_TRUE(Client.reload(Model.Path, Status, &Generation, &Error))
      << Error;
  EXPECT_EQ(Status, WireStatus::Ok);
  EXPECT_EQ(Generation, 1u);
  EXPECT_EQ(TS.Models.generation(), 1u);

  net::AnnotateResponseBody Out;
  ASSERT_TRUE(Client.annotate(makeBatch({DotProduct}), Out, Status,
                              &Error))
      << Error;
  EXPECT_EQ(Status, WireStatus::Ok);
  ASSERT_EQ(Out.Results.size(), 1u);
  EXPECT_TRUE(Out.Results[0].Ok) << Out.Results[0].Error;
}

TEST(Chaos, StatszReportsFaultActivityWhileArmed) {
  TestServer TS;
  const uint16_t Port = TS.start();
  NetClient Client;
  std::string Error;
  ASSERT_TRUE(Client.connect("127.0.0.1", Port, &Error)) << Error;

  std::string Json;
  {
    FaultScope Scope("exec.slow=1ms");
    // One annotation exercises the executor point, so the faults
    // section has a nonzero hit count to report.
    net::AnnotateResponseBody Out;
    WireStatus Status = WireStatus::Error;
    ASSERT_TRUE(Client.annotate(makeBatch({DotProduct}), Out, Status,
                                &Error))
        << Error;
    ASSERT_TRUE(Client.statsz(Json, &Error)) << Error;
    EXPECT_NE(Json.find("\"faults\""), std::string::npos) << Json;
    EXPECT_NE(Json.find("exec.slow"), std::string::npos) << Json;
  }
  // Breaker telemetry is always present; faults only while armed.
  ASSERT_TRUE(Client.statsz(Json, &Error)) << Error;
  EXPECT_NE(Json.find("\"breakers\""), std::string::npos);
  EXPECT_NE(Json.find("\"degraded_requests\""), std::string::npos);
  EXPECT_EQ(Json.find("\"faults\""), std::string::npos) << Json;
}

} // namespace
