//===- tests/SupportTest.cpp - support library tests ----------------------===//

#include "support/Interner.h"
#include "support/RNG.h"
#include "support/Stats.h"
#include "support/StringUtils.h"
#include "support/Table.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>
#include <string>

using namespace nv;

namespace {

TEST(RNG, DeterministicAcrossInstances) {
  RNG A(123), B(123);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RNG, DifferentSeedsDiffer) {
  RNG A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 64; ++I)
    Same += A.next() == B.next();
  EXPECT_LT(Same, 2);
}

TEST(RNG, BoundedStaysInRange) {
  RNG R(7);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.nextBounded(17), 17u);
}

TEST(RNG, IntRangeInclusive) {
  RNG R(7);
  std::set<int64_t> Seen;
  for (int I = 0; I < 500; ++I) {
    int64_t V = R.nextInt(-3, 3);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 3);
    Seen.insert(V);
  }
  EXPECT_EQ(Seen.size(), 7u); // All values hit.
}

TEST(RNG, DoubleInUnitInterval) {
  RNG R(9);
  for (int I = 0; I < 1000; ++I) {
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(RNG, GaussianMoments) {
  RNG R(11);
  RunningStats S;
  for (int I = 0; I < 20000; ++I)
    S.add(R.nextGaussian());
  EXPECT_NEAR(S.mean(), 0.0, 0.05);
  EXPECT_NEAR(S.stddev(), 1.0, 0.05);
}

TEST(RNG, SampleWeightedRespectsWeights) {
  RNG R(13);
  int Counts[3] = {0, 0, 0};
  for (int I = 0; I < 9000; ++I)
    ++Counts[R.sampleWeighted({1.0, 2.0, 6.0})];
  EXPECT_LT(Counts[0], Counts[1]);
  EXPECT_LT(Counts[1], Counts[2]);
  EXPECT_NEAR(Counts[2] / 9000.0, 6.0 / 9.0, 0.05);
}

TEST(RNG, ShufflePreservesElements) {
  RNG R(17);
  std::vector<int> V = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> Orig = V;
  R.shuffle(V);
  std::sort(V.begin(), V.end());
  EXPECT_EQ(V, Orig);
}

TEST(RNG, SplitStreamIsReproducible) {
  // Same parent state + same stream id => identical stream.
  RNG A(123), B(123);
  RNG SA = A.split(uint64_t(7)), SB = B.split(uint64_t(7));
  for (int I = 0; I < 32; ++I)
    EXPECT_EQ(SA.next(), SB.next());
}

TEST(RNG, SplitStreamDoesNotAdvanceParent) {
  RNG A(99), B(99);
  (void)A.split(uint64_t(0));
  (void)A.split(uint64_t(1));
  for (int I = 0; I < 16; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RNG, SplitStreamsAreDecorrelated) {
  // Nearby ids must produce unrelated streams, and every stream must
  // differ from the parent's own output.
  RNG Parent(2026);
  RNG S0 = Parent.split(uint64_t(0));
  RNG S1 = Parent.split(uint64_t(1));
  int SameAsSibling = 0, SameAsParent = 0;
  for (int I = 0; I < 64; ++I) {
    const uint64_t A = S0.next(), B = S1.next(), P = Parent.next();
    SameAsSibling += A == B;
    SameAsParent += A == P;
  }
  EXPECT_EQ(SameAsSibling, 0);
  EXPECT_EQ(SameAsParent, 0);
}

TEST(RNG, SnapshotRestoreResumesSequence) {
  RNG A(55);
  for (int I = 0; I < 10; ++I)
    (void)A.next();
  (void)A.nextGaussian(); // Leaves a buffered Box-Muller spare.
  const RNG::Snapshot Snap = A.snapshot();
  std::vector<double> Expected;
  for (int I = 0; I < 8; ++I)
    Expected.push_back(A.nextGaussian());
  RNG B(1); // Unrelated state, fully overwritten by restore().
  B.restore(Snap);
  for (int I = 0; I < 8; ++I)
    EXPECT_EQ(Expected[I], B.nextGaussian());
}

TEST(Stats, MeanStd) {
  std::vector<double> V = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(V), 5.0);
  EXPECT_DOUBLE_EQ(stddev(V), 2.0);
}

TEST(Stats, Geomean) {
  EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Stats, RunningMatchesBatch) {
  RNG R(3);
  std::vector<double> V;
  RunningStats S;
  for (int I = 0; I < 500; ++I) {
    double X = R.nextUniform(-5, 11);
    V.push_back(X);
    S.add(X);
  }
  EXPECT_NEAR(S.mean(), mean(V), 1e-9);
  EXPECT_NEAR(S.stddev(), stddev(V), 1e-9);
  EXPECT_DOUBLE_EQ(S.min(), minOf(V));
  EXPECT_DOUBLE_EQ(S.max(), maxOf(V));
}

TEST(Stats, EMAConverges) {
  EMA E(0.5);
  for (int I = 0; I < 40; ++I)
    E.add(3.0);
  EXPECT_NEAR(E.value(), 3.0, 1e-9);
}

TEST(StringUtils, SplitJoin) {
  auto Parts = split("a,b,,c", ',');
  ASSERT_EQ(Parts.size(), 4u);
  EXPECT_EQ(Parts[2], "");
  EXPECT_EQ(join(Parts, ","), "a,b,,c");
}

TEST(StringUtils, TrimAndPredicates) {
  EXPECT_EQ(trim("  hi \n"), "hi");
  EXPECT_TRUE(startsWith("pragma clang", "pragma"));
  EXPECT_FALSE(startsWith("pr", "pragma"));
  EXPECT_TRUE(contains("hello world", "lo w"));
}

TEST(StringUtils, ReplaceAll) {
  EXPECT_EQ(replaceAll("aaa", "a", "bb"), "bbbbbb");
  EXPECT_EQ(replaceAll("xyx", "y", ""), "xx");
}

TEST(StringUtils, FNVIsStable) {
  // Regression-pinned: vocabulary ids must never change across platforms.
  EXPECT_EQ(fnv1a(""), 0xCBF29CE484222325ull);
  EXPECT_EQ(fnv1a("i"), 0xAF63E44C8601FA24ull);
  EXPECT_NE(fnv1a("a"), fnv1a("b"));
}

TEST(StringUtils, FNVContinuationMatchesConcatenation) {
  // The interner and the extractor hash piecewise; the pieces must equal
  // the whole.
  EXPECT_EQ(fnv1aContinue(fnv1a("Block"), "^For"), fnv1a("Block^For"));
  EXPECT_EQ(fnv1aByte(fnv1a("A"), 'b'), fnv1a("Ab"));
}

TEST(Interner, DensifiesAndDeduplicates) {
  Interner I;
  const uint32_t A = I.intern("alpha");
  const uint32_t B = I.intern("beta");
  EXPECT_EQ(A, 0u);
  EXPECT_EQ(B, 1u);
  EXPECT_EQ(I.intern("alpha"), A); // Dedup, same id.
  EXPECT_EQ(I.size(), 2u);
  EXPECT_EQ(I.text(A), "alpha");
  EXPECT_EQ(I.text(B), "beta");
  EXPECT_EQ(I.hash(A), fnv1a("alpha")); // Hash cached at intern time.
}

TEST(Interner, FindNeverInserts) {
  Interner I;
  I.intern("present");
  EXPECT_TRUE(I.find("present").has_value());
  EXPECT_FALSE(I.find("absent").has_value());
  EXPECT_EQ(I.size(), 1u);
  EXPECT_EQ(*I.find("present"), 0u);
}

TEST(Interner, SurvivesGrowthWithStableText) {
  // Force several table growths and arena chunks; ids, text views, and
  // hashes taken early must stay valid.
  Interner I;
  const uint32_t First = I.intern("the-very-first-symbol");
  const std::string_view FirstText = I.text(First);
  std::vector<uint32_t> Ids;
  for (int K = 0; K < 5000; ++K)
    Ids.push_back(I.intern("symbol_" + std::to_string(K)));
  EXPECT_EQ(I.size(), 5001u);
  EXPECT_EQ(I.text(First), "the-very-first-symbol");
  EXPECT_EQ(FirstText, "the-very-first-symbol"); // Arena never moved.
  for (int K = 0; K < 5000; ++K) {
    const std::string Expect = "symbol_" + std::to_string(K);
    EXPECT_EQ(I.intern(Expect), Ids[K]);
    EXPECT_EQ(I.text(Ids[K]), Expect);
    EXPECT_EQ(I.hash(Ids[K]), fnv1a(Expect));
  }
}

TEST(Interner, ClearResets) {
  Interner I;
  I.intern("one");
  I.intern("two");
  I.clear();
  EXPECT_EQ(I.size(), 0u);
  EXPECT_FALSE(I.find("one").has_value());
  EXPECT_EQ(I.intern("two"), 0u); // Ids restart densely.
}

TEST(Interner, EmptyStringIsAValidSymbol) {
  Interner I;
  const uint32_t Id = I.intern("");
  EXPECT_EQ(I.text(Id), "");
  EXPECT_EQ(I.hash(Id), fnv1a(""));
  EXPECT_EQ(I.intern(""), Id);
}

TEST(Table, PrintsAlignedRows) {
  Table T({"name", "value"});
  T.addRow({"x", "1.00"});
  T.addRow({"longer", "2.50"});
  std::ostringstream OS;
  T.print(OS);
  const std::string Out = OS.str();
  EXPECT_NE(Out.find("name"), std::string::npos);
  EXPECT_NE(Out.find("longer"), std::string::npos);
  EXPECT_NE(Out.find("----"), std::string::npos);
}

TEST(Table, FmtPrecision) {
  EXPECT_EQ(Table::fmt(1.234, 2), "1.23");
  EXPECT_EQ(Table::fmt(2.0, 0), "2");
}

TEST(Series, PrintsSampledPoints) {
  Series S("test");
  for (int I = 0; I < 100; ++I)
    S.add(I, I * 2.0);
  std::ostringstream OS;
  S.print(OS, 5);
  EXPECT_NE(OS.str().find("test"), std::string::npos);
  // Last point always included.
  EXPECT_NE(OS.str().find("198"), std::string::npos);
}

} // namespace
