//===- tests/LangTest.cpp - Lexer/parser/printer/extractor tests ----------===//

#include "lang/Lexer.h"
#include "lang/LoopExtractor.h"
#include "lang/Parser.h"
#include "lang/PrettyPrinter.h"

#include <gtest/gtest.h>

using namespace nv;

namespace {

const char *DotProductSource = R"(
int vec[512] __attribute__((aligned(16)));

__attribute__((noinline))
int example1() {
  int sum = 0;
  for (int i = 0; i < 512; i++) {
    sum += vec[i] * vec[i];
  }
  return sum;
}
)";

TEST(Lexer, TokenizesDotProduct) {
  Lexer L(DotProductSource);
  std::vector<Token> Tokens = L.lexAll();
  EXPECT_TRUE(L.error().empty()) << L.error();
  ASSERT_FALSE(Tokens.empty());
  EXPECT_TRUE(Tokens.back().is(TokenKind::End));
  // `__attribute__((...))` is consumed as trivia.
  for (const Token &T : Tokens)
    EXPECT_NE(T.Text, "__attribute__");
}

TEST(Lexer, RecognizesAllOperators) {
  Lexer L("+ - * / % << >> & | ^ ~ ! && || < > <= >= == != += -= *= ++ --");
  std::vector<Token> Tokens = L.lexAll();
  EXPECT_TRUE(L.error().empty()) << L.error();
  EXPECT_EQ(Tokens.size(), 25u + 1u); // 25 operators + End.
}

TEST(Lexer, LexesPragmaAsSingleToken) {
  Lexer L("#pragma clang loop vectorize_width(4) interleave_count(2)\n"
          "int x;");
  std::vector<Token> Tokens = L.lexAll();
  ASSERT_GE(Tokens.size(), 2u);
  EXPECT_TRUE(Tokens[0].is(TokenKind::Pragma));
  EXPECT_NE(Tokens[0].Text.find("vectorize_width(4)"), std::string::npos);
}

TEST(Lexer, NumericLiterals) {
  Lexer L("42 3.5 1e3 2.5e-2 7f 10u");
  std::vector<Token> Tokens = L.lexAll();
  ASSERT_EQ(Tokens.size(), 7u);
  EXPECT_TRUE(Tokens[0].is(TokenKind::IntLiteral));
  EXPECT_EQ(Tokens[0].IntValue, 42);
  EXPECT_TRUE(Tokens[1].is(TokenKind::FloatLiteral));
  EXPECT_DOUBLE_EQ(Tokens[1].FloatValue, 3.5);
  EXPECT_TRUE(Tokens[2].is(TokenKind::FloatLiteral));
  EXPECT_DOUBLE_EQ(Tokens[2].FloatValue, 1000.0);
  EXPECT_TRUE(Tokens[3].is(TokenKind::FloatLiteral));
  EXPECT_DOUBLE_EQ(Tokens[3].FloatValue, 0.025);
  EXPECT_TRUE(Tokens[4].is(TokenKind::FloatLiteral));
  EXPECT_TRUE(Tokens[5].is(TokenKind::IntLiteral));
}

TEST(Lexer, SkipsComments) {
  Lexer L("int x; // line comment\n/* block\ncomment */ int y;");
  std::vector<Token> Tokens = L.lexAll();
  EXPECT_TRUE(L.error().empty());
  EXPECT_EQ(Tokens.size(), 7u); // int x ; int y ; End
}

TEST(Lexer, ReportsUnexpectedCharacter) {
  Lexer L("int x @ y;");
  (void)L.lexAll();
  EXPECT_FALSE(L.error().empty());
}

TEST(Parser, ParsesDotProduct) {
  std::string Error;
  std::optional<Program> P = parseSource(DotProductSource, &Error);
  ASSERT_TRUE(P.has_value()) << Error;
  ASSERT_EQ(P->Globals.size(), 1u);
  EXPECT_EQ(P->Globals[0].Name, "vec");
  ASSERT_EQ(P->Globals[0].Dims.size(), 1u);
  EXPECT_EQ(P->Globals[0].Dims[0], 512);
  ASSERT_EQ(P->Functions.size(), 1u);
  EXPECT_EQ(P->Functions[0].Name, "example1");
}

TEST(Parser, ParsesNestedLoopsAndPragma) {
  const char *Source = R"(
    float A[64][64];
    float x;
    void fill() {
      for (int i = 0; i < 64; i++) {
        #pragma clang loop vectorize_width(8) interleave_count(2)
        for (int j = 0; j < 64; j++) {
          A[i][j] = x;
        }
      }
    }
  )";
  std::string Error;
  std::optional<Program> P = parseSource(Source, &Error);
  ASSERT_TRUE(P.has_value()) << Error;
  std::vector<LoopSite> Sites = extractLoops(*P);
  ASSERT_EQ(Sites.size(), 1u);
  EXPECT_EQ(Sites[0].Depth, 2);
  ASSERT_TRUE(Sites[0].Inner->Pragma.has_value());
  EXPECT_EQ(Sites[0].Inner->Pragma->VF, 8);
  EXPECT_EQ(Sites[0].Inner->Pragma->IF, 2);
}

TEST(Parser, ParsesPaperExample3Predicate) {
  const char *Source = R"(
    int a[1024]; int b[1024];
    void kernel() {
      for (int i = 0; i < 1024; i++) {
        int j = a[i];
        b[i] = (j > 255 ? 255 : 0);
      }
    }
  )";
  std::string Error;
  std::optional<Program> P = parseSource(Source, &Error);
  ASSERT_TRUE(P.has_value()) << Error;
}

TEST(Parser, ParsesStridedLoop) {
  const char *Source = R"(
    float a[512]; float b[1024]; float c[1024]; float d[512];
    void kernel() {
      for (int i = 0; i < 255; i++) {
        a[i] = b[2*i+1] * c[2*i+1] - b[2*i] * c[2*i];
        d[i] = b[2*i] * c[2*i+1] + b[2*i+1] * c[2*i];
      }
    }
  )";
  std::string Error;
  std::optional<Program> P = parseSource(Source, &Error);
  ASSERT_TRUE(P.has_value()) << Error;
}

TEST(Parser, RejectsNonCanonicalLoop) {
  std::string Error;
  EXPECT_FALSE(
      parseSource("void f() { for (int i = 0; i > 10; i++) {} }", &Error)
          .has_value());
  EXPECT_FALSE(Error.empty());
}

TEST(Parser, RejectsGarbage) {
  std::string Error;
  EXPECT_FALSE(parseSource("int 3x;", &Error).has_value());
  EXPECT_FALSE(parseSource("void f() { x ><= 3; }", &Error).has_value());
}

TEST(Parser, ParsesStepForms) {
  std::string Error;
  EXPECT_TRUE(
      parseSource("void f() { for (int i = 0; i < 8; ++i) {} }", &Error)
          .has_value())
      << Error;
  std::optional<Program> P = parseSource(
      "int a[32]; void f() { for (int i = 0; i < 32; i += 2) { a[i] = 1; } }",
      &Error);
  ASSERT_TRUE(P.has_value()) << Error;
  std::vector<LoopSite> Sites = extractLoops(*P);
  ASSERT_EQ(Sites.size(), 1u);
  EXPECT_EQ(Sites[0].Inner->Step, 2);
}

TEST(Printer, RoundTripsPrograms) {
  const char *Sources[] = {
      DotProductSource,
      R"(float A[16][16]; void f() {
           for (int i = 0; i < 16; i++)
             for (int j = 0; j < 16; j++)
               A[i][j] = (float) (i + j);
         })",
      R"(int a[64]; int b[64]; void f() {
           for (int i = 0; i < 64; i++) {
             if (a[i] > 3) { b[i] = a[i] << 1; } else { b[i] = 0; }
           }
         })",
  };
  for (const char *Source : Sources) {
    std::string Error;
    std::optional<Program> P1 = parseSource(Source, &Error);
    ASSERT_TRUE(P1.has_value()) << Error;
    std::string Printed1 = printProgram(*P1);
    std::optional<Program> P2 = parseSource(Printed1, &Error);
    ASSERT_TRUE(P2.has_value()) << Error << "\n" << Printed1;
    // Printing is a fixed point after one round trip.
    EXPECT_EQ(Printed1, printProgram(*P2));
  }
}

TEST(Printer, EmitsPragma) {
  std::string Error;
  std::optional<Program> P = parseSource(
      "int a[8]; void f() { for (int i = 0; i < 8; i++) { a[i] = i; } }",
      &Error);
  ASSERT_TRUE(P.has_value()) << Error;
  std::vector<LoopSite> Sites = extractLoops(*P);
  ASSERT_EQ(Sites.size(), 1u);
  injectPragma(Sites[0], {16, 4});
  std::string Printed = printProgram(*P);
  EXPECT_NE(
      Printed.find(
          "#pragma clang loop vectorize_width(16) interleave_count(4)"),
      std::string::npos)
      << Printed;
  // And it round-trips through the parser.
  std::optional<Program> P2 = parseSource(Printed, &Error);
  ASSERT_TRUE(P2.has_value()) << Error;
  std::vector<LoopSite> Sites2 = extractLoops(*P2);
  ASSERT_EQ(Sites2.size(), 1u);
  ASSERT_TRUE(Sites2[0].Inner->Pragma.has_value());
  EXPECT_EQ(Sites2[0].Inner->Pragma->VF, 16);
  EXPECT_EQ(Sites2[0].Inner->Pragma->IF, 4);
}

TEST(LoopExtractor, FindsAllInnermostLoops) {
  const char *Source = R"(
    float A[8][8]; float B[8][8]; float C[8][8]; float alpha;
    void f() {
      for (int i = 0; i < 8; i++) {
        for (int j = 0; j < 8; j++) {
          float sum = 0;
          for (int k = 0; k < 8; k++) {
            sum += alpha * A[i][k] * B[k][j];
          }
          C[i][j] = sum;
        }
      }
      for (int i = 0; i < 8; i++) {
        A[0][i] = 0;
      }
    }
  )";
  std::string Error;
  std::optional<Program> P = parseSource(Source, &Error);
  ASSERT_TRUE(P.has_value()) << Error;
  std::vector<LoopSite> Sites = extractLoops(*P);
  ASSERT_EQ(Sites.size(), 2u);
  EXPECT_EQ(Sites[0].Depth, 3);
  EXPECT_EQ(Sites[1].Depth, 1);
  EXPECT_EQ(Sites[0].Inner->IndexVar, "k");
  EXPECT_EQ(Sites[0].Outer->IndexVar, "i");
  // Context text is the whole outer loop, including inner bodies (§3.3).
  EXPECT_NE(Sites[0].ContextText.find("sum"), std::string::npos);
  EXPECT_NE(Sites[0].ContextText.find("for"), std::string::npos);
}

TEST(LoopExtractor, ClearAllPragmas) {
  const char *Source = R"(
    int a[8];
    void f() {
      #pragma clang loop vectorize_width(4) interleave_count(2)
      for (int i = 0; i < 8; i++) { a[i] = i; }
    }
  )";
  std::string Error;
  std::optional<Program> P = parseSource(Source, &Error);
  ASSERT_TRUE(P.has_value()) << Error;
  clearAllPragmas(*P);
  std::vector<LoopSite> Sites = extractLoops(*P);
  ASSERT_EQ(Sites.size(), 1u);
  EXPECT_FALSE(Sites[0].Inner->Pragma.has_value());
}

TEST(AST, CloneIsDeep) {
  std::string Error;
  std::optional<Program> P = parseSource(
      "int a[8]; void f() { for (int i = 0; i < 8; i++) { a[i] = i * 2; } }",
      &Error);
  ASSERT_TRUE(P.has_value()) << Error;
  Function Copy = P->Functions[0]; // Copy ctor deep-clones the body.
  std::vector<LoopSite> Sites = extractLoops(*P);
  injectPragma(Sites[0], {8, 2});
  // The copy must not observe the mutation.
  EXPECT_EQ(printStmt(*Copy.Body).find("#pragma"), std::string::npos);
}

} // namespace
