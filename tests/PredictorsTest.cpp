//===- tests/PredictorsTest.cpp - search/NNS/decision-tree tests ----------===//

#include "predictors/DecisionTree.h"
#include "predictors/NearestNeighbor.h"
#include "predictors/Search.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>

using namespace nv;

namespace {

const char *DotProduct =
    "int vec[512]; int out; void f() { int sum = 0; for (int i = 0; i < "
    "512; i++) { sum += vec[i] * vec[i]; } out = sum; }";

TEST(BruteForce, FindsAtLeastBaselinePerformance) {
  VectorizationEnv Env{SimCompiler(), PathContextConfig()};
  ASSERT_TRUE(Env.addProgram("dot", DotProduct));
  BruteForceResult Best = bruteForceSearch(Env, 0);
  EXPECT_LE(Best.Cycles, Env.sample(0).BaselineCycles);
  EXPECT_GT(Best.Evaluations, 35); // Swept the whole grid at least once.
}

TEST(BruteForce, BeatsEveryGridPoint) {
  VectorizationEnv Env{SimCompiler(), PathContextConfig()};
  ASSERT_TRUE(Env.addProgram("dot", DotProduct));
  BruteForceResult Best = bruteForceSearch(Env, 0);
  const TargetInfo &TI = Env.compiler().target();
  for (int VF : TI.vfActions())
    for (int IF : TI.ifActions())
      EXPECT_LE(Best.Cycles, Env.cyclesWith(0, {{VF, IF}}) + 1e-9);
}

TEST(BruteForce, CoordinateDescentOnMultiLoopPrograms) {
  VectorizationEnv Env{SimCompiler(), PathContextConfig()};
  ASSERT_TRUE(Env.addProgram("two", R"(
    float a[2048]; float v[2048]; float out;
    void f() {
      for (int i = 0; i < 2048; i++) { a[i] = a[i] * 2.0; }
      float s = 0;
      for (int i = 0; i < 2048; i++) { s += v[i] * v[i]; }
      out = s;
    })"));
  BruteForceResult Best = bruteForceSearch(Env, 0);
  ASSERT_EQ(Best.Plans.size(), 2u);
  EXPECT_LE(Best.Cycles, Env.sample(0).BaselineCycles);
}

TEST(RandomSearch, ProducesLegalActions) {
  VectorizationEnv Env{SimCompiler(), PathContextConfig()};
  ASSERT_TRUE(Env.addProgram("dot", DotProduct));
  RNG R(3);
  for (int I = 0; I < 100; ++I) {
    std::vector<VectorPlan> Plans = randomPlans(Env, 0, R);
    ASSERT_EQ(Plans.size(), 1u);
    EXPECT_GE(Plans[0].VF, 1);
    EXPECT_LE(Plans[0].VF, 64);
    EXPECT_GE(Plans[0].IF, 1);
    EXPECT_LE(Plans[0].IF, 16);
  }
}

TEST(NNS, ExactMatchWins) {
  NearestNeighborPredictor NNS(1);
  NNS.add({0.0, 0.0}, {4, 2});
  NNS.add({1.0, 1.0}, {16, 8});
  EXPECT_EQ(NNS.predict({0.05, -0.05}).VF, 4);
  EXPECT_EQ(NNS.predict({0.9, 1.1}).VF, 16);
}

TEST(NNS, MajorityVoteWithK3) {
  NearestNeighborPredictor NNS(3);
  NNS.add({0.0, 0.0}, {4, 2});
  NNS.add({0.1, 0.0}, {4, 2});
  NNS.add({0.0, 0.1}, {64, 16});
  VectorPlan P = NNS.predict({0.02, 0.02});
  EXPECT_EQ(P.VF, 4);
  EXPECT_EQ(P.IF, 2);
}

TEST(NNS, SquaredDistance) {
  EXPECT_DOUBLE_EQ(squaredDistance({1.0, 2.0}, {4.0, 6.0}), 25.0);
}

/// Reference linear scan (the pre-index implementation): exact squared
/// distances, partial sort by (distance, index), majority vote with ties
/// toward the nearer example.
VectorPlan linearScanReference(
    const std::vector<std::pair<std::vector<double>, VectorPlan>> &Examples,
    const std::vector<double> &Query, int K) {
  std::vector<std::pair<double, size_t>> Dist;
  for (size_t I = 0; I < Examples.size(); ++I)
    Dist.emplace_back(squaredDistance(Query, Examples[I].first), I);
  const size_t Keep = std::min<size_t>(static_cast<size_t>(K), Dist.size());
  std::partial_sort(Dist.begin(), Dist.begin() + Keep, Dist.end());
  std::vector<std::pair<VectorPlan, int>> Votes;
  for (size_t N = 0; N < Keep; ++N) {
    const VectorPlan &Label = Examples[Dist[N].second].second;
    bool Found = false;
    for (auto &[Plan, Count] : Votes) {
      if (Plan == Label) {
        ++Count;
        Found = true;
        break;
      }
    }
    if (!Found)
      Votes.emplace_back(Label, 1);
  }
  VectorPlan Best = Votes.front().first;
  int BestCount = Votes.front().second;
  for (const auto &[Plan, Count] : Votes) {
    if (Count > BestCount) {
      Best = Plan;
      BestCount = Count;
    }
  }
  return Best;
}

TEST(NNS, BatchMatchesLinearScanReference) {
  // The indexed path (one GEMM + norm - 2*dot selection) must agree with
  // the per-query exact-distance scan it replaced, at several K, on a
  // deterministic random set — including duplicated examples, where the
  // tie must resolve toward the lower index on both paths.
  RNG Rng(314);
  const int Dim = 24, Count = 500, Queries = 64;
  const VectorPlan PlanPool[] = {{1, 1}, {4, 2}, {8, 4}, {16, 4}, {64, 8}};
  for (int K : {1, 3, 5}) {
    NearestNeighborPredictor NNS(K);
    std::vector<std::pair<std::vector<double>, VectorPlan>> Ref;
    for (int I = 0; I < Count; ++I) {
      std::vector<double> E(Dim);
      for (double &V : E)
        V = Rng.nextUniform(-1.0, 1.0);
      const VectorPlan Label = PlanPool[I % 5];
      if (I % 7 == 0 && I > 0) // Exact duplicates with different labels.
        E = Ref[I - 1].first;
      NNS.add(E, Label);
      Ref.emplace_back(E, Label);
    }
    Matrix Q(Queries, Dim);
    for (int R = 0; R < Queries; ++R)
      for (int D = 0; D < Dim; ++D)
        Q.at(R, D) = Rng.nextUniform(-1.0, 1.0);
    // A query that *is* an example row: distance 0 tie territory.
    for (int D = 0; D < Dim; ++D)
      Q.at(0, D) = Ref[42].first[D];

    std::vector<VectorPlan> Batch;
    NNS.predictBatch(Q, Batch);
    ASSERT_EQ(Batch.size(), static_cast<size_t>(Queries));
    for (int R = 0; R < Queries; ++R) {
      std::vector<double> Query(Q.rowPtr(R), Q.rowPtr(R) + Dim);
      EXPECT_EQ(Batch[R], linearScanReference(Ref, Query, K))
          << "K=" << K << " row " << R;
      // Single-query entry point agrees with the batch.
      EXPECT_EQ(NNS.predict(Query), Batch[R]) << "K=" << K << " row " << R;
    }

    // Pooled selection is bit-identical to serial.
    ThreadPool Pool(4);
    std::vector<VectorPlan> Pooled;
    NNS.predictBatch(Q, Pooled, &Pool);
    EXPECT_EQ(Pooled, Batch);
  }
}

TEST(NNS, IndexSurvivesIncrementalGrowth) {
  // add() keeps the matrix rows, norms, and labels consistent through
  // capacity growth.
  NearestNeighborPredictor NNS(1);
  std::vector<std::pair<std::vector<double>, VectorPlan>> Ref;
  RNG Rng(99);
  for (int I = 0; I < 300; ++I) {
    std::vector<double> E = {Rng.nextUniform(-1.0, 1.0),
                             Rng.nextUniform(-1.0, 1.0),
                             Rng.nextUniform(-1.0, 1.0)};
    NNS.add(E, {1 << (I % 5), 2});
    Ref.emplace_back(E, VectorPlan{1 << (I % 5), 2});
    if (I % 50 == 0)
      EXPECT_EQ(NNS.predict(E), (VectorPlan{1 << (I % 5), 2}));
  }
  EXPECT_EQ(NNS.size(), 300u);
  EXPECT_EQ(NNS.dimension(), 3u);
  for (int I = 0; I < 300; I += 17)
    EXPECT_EQ(NNS.predict(Ref[I].first),
              linearScanReference(Ref, Ref[I].first, 1));
}

TEST(DecisionTree, LearnsAxisAlignedSplit) {
  std::vector<std::vector<double>> X;
  std::vector<int> Y;
  for (int I = 0; I < 50; ++I) {
    X.push_back({I < 25 ? -1.0 - I * 0.01 : 1.0 + I * 0.01, 0.5});
    Y.push_back(I < 25 ? 0 : 1);
  }
  DecisionTree Tree;
  Tree.fit(X, Y, 2);
  EXPECT_EQ(Tree.predict({-2.0, 0.5}), 0);
  EXPECT_EQ(Tree.predict({2.0, 0.5}), 1);
  EXPECT_LE(Tree.depth(), 3);
}

TEST(DecisionTree, FitsXorWithDepth) {
  std::vector<std::vector<double>> X;
  std::vector<int> Y;
  RNG R(5);
  for (int I = 0; I < 200; ++I) {
    const double A = R.nextUniform(-1, 1), B = R.nextUniform(-1, 1);
    X.push_back({A, B});
    Y.push_back((A > 0) != (B > 0) ? 1 : 0);
  }
  DecisionTree Tree;
  Tree.fit(X, Y, 2);
  int Correct = 0;
  for (size_t I = 0; I < X.size(); ++I)
    Correct += Tree.predict(X[I]) == Y[I];
  EXPECT_GT(Correct, 180); // Trees handle XOR with two levels.
}

TEST(DecisionTree, RespectsMaxDepth) {
  std::vector<std::vector<double>> X;
  std::vector<int> Y;
  RNG R(7);
  for (int I = 0; I < 300; ++I) {
    X.push_back({R.nextUniform(-1, 1), R.nextUniform(-1, 1)});
    Y.push_back(static_cast<int>(R.nextBounded(8))); // Pure noise.
  }
  DecisionTreeConfig Config;
  Config.MaxDepth = 3;
  DecisionTree Tree(Config);
  Tree.fit(X, Y, 8);
  EXPECT_LE(Tree.depth(), 4); // Root at depth 1.
}

TEST(DecisionTree, PureLeafStopsEarly) {
  std::vector<std::vector<double>> X = {{0.0}, {1.0}, {2.0}, {3.0}};
  std::vector<int> Y = {1, 1, 1, 1};
  DecisionTree Tree;
  Tree.fit(X, Y, 2);
  EXPECT_EQ(Tree.numNodes(), 1u);
  EXPECT_EQ(Tree.predict({5.0}), 1);
}

} // namespace
