//===- tests/PredictorsTest.cpp - search/NNS/decision-tree tests ----------===//

#include "predictors/DecisionTree.h"
#include "predictors/NearestNeighbor.h"
#include "predictors/Search.h"

#include <gtest/gtest.h>

using namespace nv;

namespace {

const char *DotProduct =
    "int vec[512]; int out; void f() { int sum = 0; for (int i = 0; i < "
    "512; i++) { sum += vec[i] * vec[i]; } out = sum; }";

TEST(BruteForce, FindsAtLeastBaselinePerformance) {
  VectorizationEnv Env{SimCompiler(), PathContextConfig()};
  ASSERT_TRUE(Env.addProgram("dot", DotProduct));
  BruteForceResult Best = bruteForceSearch(Env, 0);
  EXPECT_LE(Best.Cycles, Env.sample(0).BaselineCycles);
  EXPECT_GT(Best.Evaluations, 35); // Swept the whole grid at least once.
}

TEST(BruteForce, BeatsEveryGridPoint) {
  VectorizationEnv Env{SimCompiler(), PathContextConfig()};
  ASSERT_TRUE(Env.addProgram("dot", DotProduct));
  BruteForceResult Best = bruteForceSearch(Env, 0);
  const TargetInfo &TI = Env.compiler().target();
  for (int VF : TI.vfActions())
    for (int IF : TI.ifActions())
      EXPECT_LE(Best.Cycles, Env.cyclesWith(0, {{VF, IF}}) + 1e-9);
}

TEST(BruteForce, CoordinateDescentOnMultiLoopPrograms) {
  VectorizationEnv Env{SimCompiler(), PathContextConfig()};
  ASSERT_TRUE(Env.addProgram("two", R"(
    float a[2048]; float v[2048]; float out;
    void f() {
      for (int i = 0; i < 2048; i++) { a[i] = a[i] * 2.0; }
      float s = 0;
      for (int i = 0; i < 2048; i++) { s += v[i] * v[i]; }
      out = s;
    })"));
  BruteForceResult Best = bruteForceSearch(Env, 0);
  ASSERT_EQ(Best.Plans.size(), 2u);
  EXPECT_LE(Best.Cycles, Env.sample(0).BaselineCycles);
}

TEST(RandomSearch, ProducesLegalActions) {
  VectorizationEnv Env{SimCompiler(), PathContextConfig()};
  ASSERT_TRUE(Env.addProgram("dot", DotProduct));
  RNG R(3);
  for (int I = 0; I < 100; ++I) {
    std::vector<VectorPlan> Plans = randomPlans(Env, 0, R);
    ASSERT_EQ(Plans.size(), 1u);
    EXPECT_GE(Plans[0].VF, 1);
    EXPECT_LE(Plans[0].VF, 64);
    EXPECT_GE(Plans[0].IF, 1);
    EXPECT_LE(Plans[0].IF, 16);
  }
}

TEST(NNS, ExactMatchWins) {
  NearestNeighborPredictor NNS(1);
  NNS.add({0.0, 0.0}, {4, 2});
  NNS.add({1.0, 1.0}, {16, 8});
  EXPECT_EQ(NNS.predict({0.05, -0.05}).VF, 4);
  EXPECT_EQ(NNS.predict({0.9, 1.1}).VF, 16);
}

TEST(NNS, MajorityVoteWithK3) {
  NearestNeighborPredictor NNS(3);
  NNS.add({0.0, 0.0}, {4, 2});
  NNS.add({0.1, 0.0}, {4, 2});
  NNS.add({0.0, 0.1}, {64, 16});
  VectorPlan P = NNS.predict({0.02, 0.02});
  EXPECT_EQ(P.VF, 4);
  EXPECT_EQ(P.IF, 2);
}

TEST(NNS, SquaredDistance) {
  EXPECT_DOUBLE_EQ(squaredDistance({1.0, 2.0}, {4.0, 6.0}), 25.0);
}

TEST(DecisionTree, LearnsAxisAlignedSplit) {
  std::vector<std::vector<double>> X;
  std::vector<int> Y;
  for (int I = 0; I < 50; ++I) {
    X.push_back({I < 25 ? -1.0 - I * 0.01 : 1.0 + I * 0.01, 0.5});
    Y.push_back(I < 25 ? 0 : 1);
  }
  DecisionTree Tree;
  Tree.fit(X, Y, 2);
  EXPECT_EQ(Tree.predict({-2.0, 0.5}), 0);
  EXPECT_EQ(Tree.predict({2.0, 0.5}), 1);
  EXPECT_LE(Tree.depth(), 3);
}

TEST(DecisionTree, FitsXorWithDepth) {
  std::vector<std::vector<double>> X;
  std::vector<int> Y;
  RNG R(5);
  for (int I = 0; I < 200; ++I) {
    const double A = R.nextUniform(-1, 1), B = R.nextUniform(-1, 1);
    X.push_back({A, B});
    Y.push_back((A > 0) != (B > 0) ? 1 : 0);
  }
  DecisionTree Tree;
  Tree.fit(X, Y, 2);
  int Correct = 0;
  for (size_t I = 0; I < X.size(); ++I)
    Correct += Tree.predict(X[I]) == Y[I];
  EXPECT_GT(Correct, 180); // Trees handle XOR with two levels.
}

TEST(DecisionTree, RespectsMaxDepth) {
  std::vector<std::vector<double>> X;
  std::vector<int> Y;
  RNG R(7);
  for (int I = 0; I < 300; ++I) {
    X.push_back({R.nextUniform(-1, 1), R.nextUniform(-1, 1)});
    Y.push_back(static_cast<int>(R.nextBounded(8))); // Pure noise.
  }
  DecisionTreeConfig Config;
  Config.MaxDepth = 3;
  DecisionTree Tree(Config);
  Tree.fit(X, Y, 8);
  EXPECT_LE(Tree.depth(), 4); // Root at depth 1.
}

TEST(DecisionTree, PureLeafStopsEarly) {
  std::vector<std::vector<double>> X = {{0.0}, {1.0}, {2.0}, {3.0}};
  std::vector<int> Y = {1, 1, 1, 1};
  DecisionTree Tree;
  Tree.fit(X, Y, 2);
  EXPECT_EQ(Tree.numNodes(), 1u);
  EXPECT_EQ(Tree.predict({5.0}), 1);
}

} // namespace
