//===- tests/NetTest.cpp - protocol, daemon, hot-reload tests -------------===//

#include "core/NeuroVectorizer.h"
#include "dataset/LoopGenerator.h"
#include "net/Client.h"
#include "net/NetServer.h"
#include "net/Protocol.h"
#include "serve/ModelHost.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <thread>

using namespace nv;
using net::Verb;
using net::WireStatus;

namespace {

const char *DotProduct =
    "int vec[512]; int out; void f() { int sum = 0; for (int i = 0; i < "
    "512; i++) { sum += vec[i] * vec[i]; } out = sum; }";

const char *Saxpy =
    "float x[256]; float y[256]; void s() { for (int i = 0; i < 256; "
    "i++) { y[i] = y[i] + x[i]; } }";

/// Small, fast configuration (matches ServeTest's).
NeuroVectorizerConfig testConfig(uint64_t Seed = 1234) {
  NeuroVectorizerConfig Config;
  Config.PPO.BatchSize = 64;
  Config.PPO.MiniBatchSize = 32;
  Config.PPO.LearningRate = 3e-3;
  Config.Embedding.CodeDim = 16;
  Config.Embedding.TokenDim = 8;
  Config.Embedding.PathDim = 8;
  Config.Seed = Seed;
  return Config;
}

/// A scratch file path removed on scope exit.
struct TempFile {
  std::string Path;
  explicit TempFile(const std::string &Name)
      : Path(::testing::TempDir() + Name) {}
  ~TempFile() { std::remove(Path.c_str()); }
};

/// Trains a tiny model (distinct per seed) and saves it to \p Path.
void saveTrainedModel(const std::string &Path, uint64_t Seed) {
  NeuroVectorizer NV(testConfig(Seed));
  ASSERT_TRUE(NV.addTrainingProgram("dot", DotProduct));
  NV.train(48);
  std::string Error;
  ASSERT_TRUE(NV.save(Path, &Error)) << Error;
}

/// The plans a freshly loaded reference instance picks for \p Sources —
/// the ground truth a hosted generation serving that file must match.
std::vector<std::vector<VectorPlan>>
referencePlans(const std::string &ModelPath,
               const std::vector<std::string> &Sources) {
  NeuroVectorizer Ref(testConfig(/*Seed=*/777));
  std::string Error;
  EXPECT_TRUE(Ref.load(ModelPath, &Error)) << Error;
  std::vector<std::vector<VectorPlan>> Out;
  for (const std::string &S : Sources)
    Out.push_back(Ref.plansFor(S));
  return Out;
}

ServeConfig smallServe(int Threads = 2) {
  ServeConfig S;
  S.Threads = Threads;
  return S;
}

/// A hosted-mode service + daemon on an ephemeral loopback port.
struct TestServer {
  NeuroVectorizerConfig Config;
  ModelHost Models;
  AnnotationService Service;
  NetServer Server;

  explicit TestServer(NetServerConfig Net = NetServerConfig(),
                      int Threads = 2)
      : Config(testConfig()),
        Models(NeuroVectorizer(Config).servingModelConfig()),
        Service(Models, Config.Embedding.Paths, Config.Target,
                smallServe(Threads)),
        Server(Service, Models, Net) {}

  uint16_t start() {
    std::string Error;
    EXPECT_TRUE(Server.start(&Error)) << Error;
    return Server.port();
  }
};

net::AnnotateRequestBody
makeBatch(const std::vector<std::string> &Sources,
          uint64_t DeadlineMicros = 0) {
  net::AnnotateRequestBody Req;
  Req.DeadlineMicros = DeadlineMicros;
  for (size_t I = 0; I < Sources.size(); ++I) {
    net::WireProgram P;
    P.Name = "p" + std::to_string(I);
    P.Source = Sources[I];
    Req.Programs.push_back(std::move(P));
  }
  return Req;
}

// --- Protocol ------------------------------------------------------------

TEST(Protocol, HeaderRoundTripAndRejection) {
  std::vector<char> Buf;
  net::appendRequestHeader(Buf, Verb::Annotate, 123);
  ASSERT_EQ(Buf.size(), net::RequestHeaderSize);
  net::RequestHeader Req;
  ASSERT_TRUE(net::parseRequestHeader(Buf.data(), Buf.size(), Req));
  EXPECT_EQ(Req.V, Verb::Annotate);
  EXPECT_EQ(Req.BodyLen, 123u);
  // Too short, bad magic, bad verb, oversized body.
  EXPECT_FALSE(net::parseRequestHeader(Buf.data(), Buf.size() - 1, Req));
  std::vector<char> Bad = Buf;
  Bad[0] ^= 1;
  EXPECT_FALSE(net::parseRequestHeader(Bad.data(), Bad.size(), Req));
  Bad = Buf;
  Bad[4] = 99;
  EXPECT_FALSE(net::parseRequestHeader(Bad.data(), Bad.size(), Req));

  Buf.clear();
  net::appendResponseHeader(Buf, Verb::Reload, WireStatus::ReloadFailed, 7);
  ASSERT_EQ(Buf.size(), net::ResponseHeaderSize);
  net::ResponseHeader Res;
  ASSERT_TRUE(net::parseResponseHeader(Buf.data(), Buf.size(), Res));
  EXPECT_EQ(Res.V, Verb::Reload);
  EXPECT_EQ(Res.Status, WireStatus::ReloadFailed);
  EXPECT_EQ(Res.BodyLen, 7u);
}

TEST(Protocol, AnnotateRequestRoundTrip) {
  net::AnnotateRequestBody In = makeBatch({DotProduct, Saxpy}, 5000);
  In.Programs[1].HasMethod = true;
  In.Programs[1].Method = PredictMethod::NNS;

  const std::vector<char> Frame = net::encodeAnnotateRequest(In);
  net::RequestHeader Header;
  ASSERT_TRUE(net::parseRequestHeader(Frame.data(), Frame.size(), Header));
  EXPECT_EQ(Header.V, Verb::Annotate);
  ASSERT_EQ(Frame.size(), net::RequestHeaderSize + Header.BodyLen);

  const char *Body = Frame.data() + net::RequestHeaderSize;
  net::AnnotateRequestBody Out;
  ASSERT_TRUE(net::decodeAnnotateRequest(Body, Header.BodyLen, Out));
  EXPECT_EQ(Out.DeadlineMicros, 5000u);
  ASSERT_EQ(Out.Programs.size(), 2u);
  EXPECT_EQ(Out.Programs[0].Name, "p0");
  EXPECT_EQ(Out.Programs[0].Source, DotProduct);
  EXPECT_FALSE(Out.Programs[0].HasMethod);
  EXPECT_TRUE(Out.Programs[1].HasMethod);
  EXPECT_EQ(Out.Programs[1].Method, PredictMethod::NNS);

  // Any truncation fails decode cleanly.
  for (size_t Cut = 0; Cut < static_cast<size_t>(Header.BodyLen);
       Cut += 7)
    EXPECT_FALSE(net::decodeAnnotateRequest(Body, Cut, Out));
}

TEST(Protocol, AnnotateResponseRoundTrip) {
  std::vector<AnnotationResult> Results(2);
  Results[0].Name = "good";
  Results[0].Ok = true;
  Results[0].Method = PredictMethod::RL;
  Results[0].CachedSites = 1;
  Results[0].Plans = {{8, 2}, {4, 1}};
  Results[0].Annotated = "#pragma ...";
  Results[1].Name = "bad";
  Results[1].Ok = false;
  Results[1].Error = "parse error";

  const std::vector<char> Frame = net::encodeAnnotateResponse(9, Results);
  net::ResponseHeader Header;
  ASSERT_TRUE(net::parseResponseHeader(Frame.data(), Frame.size(), Header));
  EXPECT_EQ(Header.Status, WireStatus::Ok);

  net::AnnotateResponseBody Out;
  ASSERT_TRUE(net::decodeAnnotateResponse(
      Frame.data() + net::ResponseHeaderSize, Header.BodyLen, Out));
  EXPECT_EQ(Out.Generation, 9u);
  ASSERT_EQ(Out.Results.size(), 2u);
  EXPECT_TRUE(Out.Results[0].Ok);
  EXPECT_EQ(Out.Results[0].CachedSites, 1u);
  ASSERT_EQ(Out.Results[0].Plans.size(), 2u);
  EXPECT_EQ(Out.Results[0].Plans[0], (VectorPlan{8, 2}));
  EXPECT_EQ(Out.Results[0].Annotated, "#pragma ...");
  EXPECT_FALSE(Out.Results[1].Ok);
  EXPECT_EQ(Out.Results[1].Error, "parse error");
}

TEST(Protocol, DegradedStatusByteRoundTrips) {
  // Per-result status byte: 0 = error, 1 = ok, 2 = ok-but-degraded (the
  // fallback ladder answered). Anything above 2 is a framing error.
  std::vector<AnnotationResult> Results(2);
  Results[0].Name = "healthy";
  Results[0].Ok = true;
  Results[0].Method = PredictMethod::RL;
  Results[1].Name = "laddered";
  Results[1].Ok = true;
  Results[1].Degraded = true;
  Results[1].Method = PredictMethod::Baseline;

  const std::vector<char> Frame = net::encodeAnnotateResponse(1, Results);
  net::ResponseHeader Header;
  ASSERT_TRUE(net::parseResponseHeader(Frame.data(), Frame.size(), Header));
  net::AnnotateResponseBody Out;
  const char *Body = Frame.data() + net::ResponseHeaderSize;
  ASSERT_TRUE(net::decodeAnnotateResponse(Body, Header.BodyLen, Out));
  ASSERT_EQ(Out.Results.size(), 2u);
  EXPECT_TRUE(Out.Results[0].Ok);
  EXPECT_FALSE(Out.Results[0].Degraded);
  EXPECT_TRUE(Out.Results[1].Ok);
  EXPECT_TRUE(Out.Results[1].Degraded);
  EXPECT_EQ(Out.Results[1].Method, PredictMethod::Baseline);

  // Corrupt the second result's status byte to 3: decode must reject.
  // The byte sits right after the u64 generation + u32 count + result 0.
  std::vector<char> Bad(Body, Body + Header.BodyLen);
  const auto At = std::search(Bad.begin(), Bad.end(),
                              Results[1].Name.begin(),
                              Results[1].Name.end());
  ASSERT_NE(At, Bad.end());
  // Status byte precedes method byte + u32 name length + the name.
  *(At - 6) = 3;
  EXPECT_FALSE(
      net::decodeAnnotateResponse(Bad.data(), Bad.size(), Out));
}

// --- ModelSerializer::tryLoad (error-code path) --------------------------

TEST(TryLoad, StatusCodesAndUntouchedDestination) {
  TempFile File("net_tryload.nvm");
  {
    NeuroVectorizer NV(testConfig(/*Seed=*/5));
    std::string Error;
    ASSERT_TRUE(NV.save(File.Path, &Error)) << Error;
  }
  std::ifstream In(File.Path, std::ios::binary);
  std::string Bytes((std::istreambuf_iterator<char>(In)),
                    std::istreambuf_iterator<char>());
  In.close();
  ASSERT_GT(Bytes.size(), 64u);

  NeuroVectorizer Dest(testConfig(/*Seed=*/6));
  const std::vector<double> WeightsBefore =
      Dest.embedder().params()[0]->Value.raw();
  auto StatusOf = [&](const std::string &Path) {
    std::string Error;
    const LoadStatus S = ModelSerializer::tryLoad(
        Path, Dest.embedder(), Dest.policy(), nullptr, nullptr, &Error);
    if (S != LoadStatus::Ok)
      EXPECT_FALSE(Error.empty());
    return S;
  };
  auto Rewrite = [&](const std::string &Content) {
    std::ofstream Out(File.Path, std::ios::binary | std::ios::trunc);
    Out.write(Content.data(), static_cast<std::streamsize>(Content.size()));
  };
  // Re-stamps the checksum trailer so header edits reach their own check
  // (the checksum is validated first).
  auto Restamp = [](std::string Content) {
    const size_t PayloadSize = Content.size() - sizeof(uint64_t);
    const uint64_t Sum =
        ModelSerializer::checksum(Content.data(), PayloadSize);
    std::memcpy(&Content[PayloadSize], &Sum, sizeof(uint64_t));
    return Content;
  };

  EXPECT_EQ(StatusOf(File.Path + ".missing"), LoadStatus::OpenFailed);

  Rewrite(Bytes.substr(0, 8));
  EXPECT_EQ(StatusOf(File.Path), LoadStatus::Truncated);

  Rewrite(Bytes.substr(0, Bytes.size() - 1));
  EXPECT_EQ(StatusOf(File.Path), LoadStatus::BadChecksum);

  std::string Flipped = Bytes;
  Flipped[Bytes.size() / 2] ^= 0x40;
  Rewrite(Flipped);
  EXPECT_EQ(StatusOf(File.Path), LoadStatus::BadChecksum);

  std::string BadMagic = Bytes;
  BadMagic[0] ^= 0xFF;
  Rewrite(Restamp(BadMagic));
  EXPECT_EQ(StatusOf(File.Path), LoadStatus::BadMagic);

  std::string BadVersion = Bytes;
  BadVersion[4] = 99;
  Rewrite(Restamp(BadVersion));
  EXPECT_EQ(StatusOf(File.Path), LoadStatus::BadVersion);

  std::string Legacy = Bytes;
  Legacy[8] &= static_cast<char>(~2); // Clear the hash-fold flag bit.
  Rewrite(Restamp(Legacy));
  EXPECT_EQ(StatusOf(File.Path), LoadStatus::LegacyHashing);

  // Architecture mismatch: a destination with different shapes.
  Rewrite(Bytes);
  NeuroVectorizerConfig Wide = testConfig(/*Seed=*/7);
  Wide.Embedding.CodeDim = 32;
  NeuroVectorizer WideDest(Wide);
  std::string Error;
  EXPECT_EQ(ModelSerializer::tryLoad(File.Path, WideDest.embedder(),
                                     WideDest.policy(), nullptr, nullptr,
                                     &Error),
            LoadStatus::ArchMismatch);

  // Every failure above left the destination bit-identical.
  EXPECT_EQ(Dest.embedder().params()[0]->Value.raw(), WeightsBefore);

  // And the intact file still loads.
  EXPECT_EQ(StatusOf(File.Path), LoadStatus::Ok);
  EXPECT_NE(Dest.embedder().params()[0]->Value.raw(), WeightsBefore);
}

// --- PlanCache epochs ----------------------------------------------------

TEST(PlanCacheEpoch, MismatchIsAMissAndEvicts) {
  PlanCache Cache(/*Capacity=*/64, /*Shards=*/2);
  ContextKey Key{0x1234, 0x5678};
  Cache.insert(Key, {8, 2}, /*Epoch=*/1);
  ASSERT_EQ(Cache.size(), 1u);

  VectorPlan Out;
  ASSERT_TRUE(Cache.lookup(Key, Out, /*Epoch=*/1));
  EXPECT_EQ(Out, (VectorPlan{8, 2}));

  // Wrong epoch: miss AND evict (the stale generation never returns).
  EXPECT_FALSE(Cache.lookup(Key, Out, /*Epoch=*/2));
  EXPECT_EQ(Cache.size(), 0u);

  // Re-inserted under the new epoch, the old epoch can no longer hit.
  Cache.insert(Key, {4, 1}, /*Epoch=*/2);
  ASSERT_TRUE(Cache.lookup(Key, Out, /*Epoch=*/2));
  EXPECT_EQ(Out, (VectorPlan{4, 1}));
  EXPECT_FALSE(Cache.lookup(Key, Out, /*Epoch=*/1));
}

TEST(PlanCacheEpoch, DefaultEpochBackCompatAndRefresh) {
  PlanCache Cache(/*Capacity=*/8);
  ContextKey Key{1, 2};
  Cache.insert(Key, {16, 4}); // Epoch 0 (borrowed-model mode).
  VectorPlan Out;
  ASSERT_TRUE(Cache.lookup(Key, Out));
  EXPECT_EQ(Out, (VectorPlan{16, 4}));

  // Refreshing an existing key onto a new epoch re-tags in place.
  Cache.insert(Key, {2, 1}, /*Epoch=*/3);
  EXPECT_EQ(Cache.size(), 1u);
  EXPECT_FALSE(Cache.lookup(Key, Out)); // Epoch 0 is stale now.
  Cache.insert(Key, {2, 1}, /*Epoch=*/3);
  ASSERT_TRUE(Cache.lookup(Key, Out, 3));
  EXPECT_EQ(Out, (VectorPlan{2, 1}));
}

// --- ThreadPool saturation signals ---------------------------------------

TEST(ThreadPoolDepth, QueueDepthAndInFlight) {
  ThreadPool Pool(1);
  EXPECT_EQ(Pool.queueDepth(), 0u);
  EXPECT_EQ(Pool.inFlight(), 0u);

  std::mutex Gate;
  Gate.lock();
  Pool.run([&] { std::lock_guard<std::mutex> Hold(Gate); });
  Pool.run([] {});
  Pool.run([] {});
  // The first job holds the single worker; the others must be queued.
  while (Pool.queueDepth() < 2)
    std::this_thread::yield();
  EXPECT_GE(Pool.inFlight(), 2u);
  Gate.unlock();
  Pool.wait();
  EXPECT_EQ(Pool.queueDepth(), 0u);
  EXPECT_EQ(Pool.inFlight(), 0u);
}

// --- ModelHost + hosted service ------------------------------------------

TEST(ModelHost, ReloadPublishesGenerationsAndKeepsOldOnFailure) {
  TempFile File("net_host.nvm");
  saveTrainedModel(File.Path, /*Seed=*/31);

  ModelHost Host(NeuroVectorizer(testConfig()).servingModelConfig());
  EXPECT_EQ(Host.generation(), 0u);
  const std::shared_ptr<const ServingModel> Gen0 = Host.current();
  ASSERT_NE(Gen0, nullptr);

  std::string Error;
  ASSERT_EQ(Host.reload(File.Path, &Error), LoadStatus::Ok) << Error;
  EXPECT_EQ(Host.generation(), 1u);
  const std::shared_ptr<const ServingModel> Gen1 = Host.current();
  EXPECT_NE(Gen0, Gen1);
  EXPECT_EQ(Gen1->generation(), 1u);
  EXPECT_EQ(Gen1->path(), File.Path);
  // The old generation stays alive for its holders (RCU contract).
  EXPECT_EQ(Gen0->generation(), 0u);

  // A corrupt file must not flip anything.
  TempFile Corrupt("net_host_corrupt.nvm");
  std::ofstream(Corrupt.Path, std::ios::binary) << "not a model";
  EXPECT_EQ(Host.reload(Corrupt.Path, &Error), LoadStatus::Truncated);
  EXPECT_EQ(Host.generation(), 1u);
  EXPECT_EQ(Host.current(), Gen1);
}

TEST(HostedService, SwapInvalidatesCacheAndTagsGeneration) {
  TempFile FileA("net_swap_a.nvm");
  TempFile FileB("net_swap_b.nvm");
  saveTrainedModel(FileA.Path, /*Seed=*/41);
  saveTrainedModel(FileB.Path, /*Seed=*/42);
  const auto RefA = referencePlans(FileA.Path, {DotProduct});
  const auto RefB = referencePlans(FileB.Path, {DotProduct});

  NeuroVectorizerConfig Config = testConfig();
  ModelHost Host(NeuroVectorizer(Config).servingModelConfig());
  AnnotationService Service(Host, Config.Embedding.Paths, Config.Target,
                            smallServe());
  std::string Error;
  ASSERT_EQ(Host.reload(FileA.Path, &Error), LoadStatus::Ok) << Error;

  AnnotationResult R1 = Service.annotateOne("dot", DotProduct);
  ASSERT_TRUE(R1.Ok) << R1.Error;
  EXPECT_EQ(R1.Generation, 1u);
  EXPECT_EQ(R1.CachedSites, 0);
  EXPECT_EQ(R1.Plans, RefA[0]);

  // Same program again: answered by the generation-1 cache entry.
  AnnotationResult R2 = Service.annotateOne("dot", DotProduct);
  EXPECT_EQ(R2.CachedSites, 1);
  EXPECT_EQ(R2.Plans, RefA[0]);

  // Swap to B: the stale entry must NOT answer (lazy epoch invalidation),
  // and the fresh plans must be B's.
  ASSERT_EQ(Host.reload(FileB.Path, &Error), LoadStatus::Ok) << Error;
  AnnotationResult R3 = Service.annotateOne("dot", DotProduct);
  ASSERT_TRUE(R3.Ok) << R3.Error;
  EXPECT_EQ(R3.Generation, 2u);
  EXPECT_EQ(R3.CachedSites, 0);
  EXPECT_EQ(R3.Plans, RefB[0]);

  // And the generation-2 entry serves generation-2 lookups.
  AnnotationResult R4 = Service.annotateOne("dot", DotProduct);
  EXPECT_EQ(R4.CachedSites, 1);
  EXPECT_EQ(R4.Plans, RefB[0]);
}

// --- End-to-end daemon ---------------------------------------------------

TEST(NetServer, EndToEndAnnotateStatszReload) {
  TempFile FileA("net_e2e_a.nvm");
  saveTrainedModel(FileA.Path, /*Seed=*/51);
  const auto RefA = referencePlans(FileA.Path, {DotProduct, Saxpy});

  TestServer S;
  const uint16_t Port = S.start();
  ASSERT_NE(Port, 0);

  NetClient Client;
  std::string Error;
  ASSERT_TRUE(Client.connect("127.0.0.1", Port, &Error)) << Error;
  EXPECT_TRUE(Client.ping(&Error)) << Error;

  // Hot-load the real model over the wire.
  WireStatus Status;
  uint64_t Generation = 0;
  ASSERT_TRUE(Client.reload(FileA.Path, Status, &Generation, &Error))
      << Error;
  ASSERT_EQ(Status, WireStatus::Ok) << Client.statusMessage();
  EXPECT_EQ(Generation, 1u);

  net::AnnotateResponseBody Res;
  ASSERT_TRUE(
      Client.annotate(makeBatch({DotProduct, Saxpy}), Res, Status, &Error))
      << Error;
  ASSERT_EQ(Status, WireStatus::Ok);
  EXPECT_EQ(Res.Generation, 1u);
  ASSERT_EQ(Res.Results.size(), 2u);
  for (size_t I = 0; I < Res.Results.size(); ++I) {
    ASSERT_TRUE(Res.Results[I].Ok) << Res.Results[I].Error;
    EXPECT_EQ(Res.Results[I].Plans, RefA[I]);
    EXPECT_NE(Res.Results[I].Annotated.find("#pragma"), std::string::npos);
  }

  // A parse failure travels as a per-result rejection, not a dead frame.
  ASSERT_TRUE(Client.annotate(makeBatch({"not a program"}), Res, Status,
                              &Error))
      << Error;
  ASSERT_EQ(Status, WireStatus::Ok);
  ASSERT_EQ(Res.Results.size(), 1u);
  EXPECT_FALSE(Res.Results[0].Ok);

  // A corrupt reload reports RELOAD_FAILED and the old model keeps
  // serving at the same generation.
  TempFile Corrupt("net_e2e_corrupt.nvm");
  std::ofstream(Corrupt.Path, std::ios::binary) << "garbage";
  ASSERT_TRUE(Client.reload(Corrupt.Path, Status, nullptr, &Error))
      << Error;
  EXPECT_EQ(Status, WireStatus::ReloadFailed);
  EXPECT_NE(Client.statusMessage().find("truncated"), std::string::npos)
      << Client.statusMessage();
  ASSERT_TRUE(
      Client.annotate(makeBatch({DotProduct}), Res, Status, &Error))
      << Error;
  ASSERT_EQ(Status, WireStatus::Ok);
  EXPECT_EQ(Res.Generation, 1u);
  EXPECT_EQ(Res.Results[0].Plans, RefA[0]);

  // statsz: one JSON document with the generation and server counters.
  std::string Json;
  ASSERT_TRUE(Client.statsz(Json, &Error)) << Error;
  EXPECT_NE(Json.find("\"generation\": 1"), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"reloads_failed\": 1"), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"method\": \"rl\""), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"histograms\""), std::string::npos) << Json;

  S.Server.shutdown();
  const NetServerCounters C = S.Server.counters();
  EXPECT_EQ(C.Accepted, 1u);
  EXPECT_EQ(C.Reloads, 1u);
  EXPECT_EQ(C.ReloadsFailed, 1u);
  EXPECT_EQ(C.Annotated, 3u);
}

TEST(NetServer, OverloadedShedsBeforeQueueing) {
  NetServerConfig Net;
  Net.MaxInFlightBytes = 1; // Every annotate body exceeds this.
  TestServer S(Net);
  const uint16_t Port = S.start();

  NetClient Client;
  std::string Error;
  ASSERT_TRUE(Client.connect("127.0.0.1", Port, &Error)) << Error;

  net::AnnotateResponseBody Res;
  WireStatus Status;
  ASSERT_TRUE(
      Client.annotate(makeBatch({DotProduct}), Res, Status, &Error))
      << Error;
  EXPECT_EQ(Status, WireStatus::Overloaded);
  EXPECT_EQ(Client.statusMessage(), "server overloaded");

  // Ping and statsz still answer: shedding is per-verb admission, not a
  // dead server.
  EXPECT_TRUE(Client.ping(&Error)) << Error;
  EXPECT_EQ(S.Server.counters().Shed, 1u);
}

TEST(NetServer, DeadlineExceededInQueue) {
  NetServerConfig Net;
  Net.Executors = 1; // One lane: the big batch blocks the queue.
  TestServer S(Net);
  const uint16_t Port = S.start();

  std::vector<std::string> Big(96, DotProduct);
  NetClient Blocker;
  std::string Error;
  ASSERT_TRUE(Blocker.connect("127.0.0.1", Port, &Error)) << Error;
  // Joined on destruction even if an ASSERT below exits the test early.
  struct Joiner {
    std::thread T;
    ~Joiner() {
      if (T.joinable())
        T.join();
    }
  } BlockerThread{std::thread([&] {
    net::AnnotateResponseBody Res;
    WireStatus Status;
    EXPECT_TRUE(Blocker.annotate(makeBatch(Big), Res, Status, &Error));
    EXPECT_EQ(Status, WireStatus::Ok);
  })};

  // Admitted behind the big batch with a 1us budget: by the time the
  // executor reaches it, the deadline has long passed.
  NetClient Client;
  std::string Error2;
  ASSERT_TRUE(Client.connect("127.0.0.1", Port, &Error2)) << Error2;
  const uint64_t Before = S.Server.counters().Requests;
  while (S.Server.counters().Requests == Before)
    std::this_thread::yield(); // Blocker's frame admitted.
  net::AnnotateResponseBody Res;
  WireStatus Status;
  ASSERT_TRUE(Client.annotate(makeBatch({DotProduct}, /*Deadline=*/1), Res,
                              Status, &Error2))
      << Error2;
  EXPECT_EQ(Status, WireStatus::DeadlineExceeded);
}

TEST(NetServer, GracefulShutdownDrainsWithoutDroppingRequests) {
  TempFile Snapshot("net_drain_snapshot.json");
  NetServerConfig Net;
  Net.Executors = 1;
  Net.FinalSnapshotPath = Snapshot.Path;
  TestServer S(Net);
  const uint16_t Port = S.start();

  // Two slow in-flight batches on one executor (distinct programs so
  // the plan cache cannot answer them instantly): while the first runs,
  // the second is queued, so the daemon provably outlives the probes
  // below no matter how the test threads are scheduled.
  std::vector<GeneratedLoop> Pool = LoopGenerator(/*Seed=*/7)
                                        .generateMany(2 * 384);
  std::vector<std::string> Big1, Big2;
  for (size_t I = 0; I < Pool.size(); ++I)
    (I % 2 ? Big1 : Big2).push_back(Pool[I].Source);

  std::string Error;
  std::atomic<int> FullResponses{0};
  auto SendBig = [&](NetClient &Client,
                     const std::vector<std::string> &Batch) {
    net::AnnotateResponseBody Res;
    WireStatus Status;
    std::string ThreadError;
    ASSERT_TRUE(Client.annotate(makeBatch(Batch), Res, Status,
                                &ThreadError))
        << ThreadError;
    ASSERT_EQ(Status, WireStatus::Ok);
    ASSERT_EQ(Res.Results.size(), Batch.size());
    for (const net::WireResult &R : Res.Results)
      ASSERT_TRUE(R.Ok) << R.Error;
    ++FullResponses;
  };
  // Joins on destruction so an ASSERT exiting this test early cannot
  // std::terminate on a joinable thread.
  struct Joiner {
    std::thread T;
    ~Joiner() {
      if (T.joinable())
        T.join();
    }
  };

  NetClient InFlight1, InFlight2, Late;
  ASSERT_TRUE(InFlight1.connect("127.0.0.1", Port, &Error)) << Error;
  ASSERT_TRUE(InFlight2.connect("127.0.0.1", Port, &Error)) << Error;
  // The late connection is established *before* the drain starts (the
  // listen socket closes with it).
  ASSERT_TRUE(Late.connect("127.0.0.1", Port, &Error)) << Error;

  Joiner T1{std::thread([&] { SendBig(InFlight1, Big1); })};
  Joiner T2{std::thread([&] { SendBig(InFlight2, Big2); })};

  // Wait until both batches are admitted, then start draining.
  while (S.Server.counters().Requests < 2)
    std::this_thread::yield();
  S.Server.requestShutdown();

  // statsz is served inline on the event thread — it stays live during
  // the drain and never extends it. Poll it until the drain has
  // provably begun (the wake and a client frame can land in the same
  // epoll batch); the still-running batches pin the daemon alive
  // throughout.
  std::string Json;
  do {
    ASSERT_TRUE(Late.statsz(Json, &Error)) << Error;
  } while (Json.find("\"draining\": true") == std::string::npos);

  // New work during the drain is rejected with SHUTTING_DOWN.
  net::AnnotateResponseBody Res;
  WireStatus Status;
  ASSERT_TRUE(
      Late.annotate(makeBatch({DotProduct}), Res, Status, &Error))
      << Error;
  EXPECT_EQ(Status, WireStatus::ShuttingDown);

  // ...but the admitted batches still get their full responses (no
  // request dropped mid-flight), and the daemon then exits.
  S.Server.wait();
  T1.T.join();
  T2.T.join();
  EXPECT_EQ(FullResponses.load(), 2);
  EXPECT_FALSE(S.Server.running());

  // The final telemetry snapshot landed on disk.
  std::ifstream SnapIn(Snapshot.Path);
  ASSERT_TRUE(SnapIn.good());
  std::string Doc((std::istreambuf_iterator<char>(SnapIn)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(Doc.find("\"histograms\""), std::string::npos);
}

TEST(NetServer, ConcurrentHotReloadIsGenerationConsistent) {
  TempFile FileA("net_hammer_a.nvm");
  TempFile FileB("net_hammer_b.nvm");
  saveTrainedModel(FileA.Path, /*Seed=*/61);
  saveTrainedModel(FileB.Path, /*Seed=*/62);
  const std::vector<std::string> Probes = {DotProduct, Saxpy};
  const auto RefA = referencePlans(FileA.Path, Probes);
  const auto RefB = referencePlans(FileB.Path, Probes);

  TestServer S;
  const uint16_t Port = S.start();

  NetClient Control;
  std::string Error;
  ASSERT_TRUE(Control.connect("127.0.0.1", Port, &Error)) << Error;
  WireStatus Status;
  uint64_t Generation = 0;
  ASSERT_TRUE(Control.reload(FileA.Path, Status, &Generation, &Error))
      << Error;
  ASSERT_EQ(Status, WireStatus::Ok);
  ASSERT_EQ(Generation, 1u);

  // Hammer from client threads while the control connection flips
  // between the two models. Odd generations serve A, even serve B; every
  // response must be internally consistent with exactly one generation.
  std::atomic<bool> Stop{false};
  std::atomic<int> Inconsistent{0};
  std::atomic<int> Served{0};
  auto Hammer = [&] {
    NetClient Client;
    std::string HErr;
    if (!Client.connect("127.0.0.1", Port, &HErr)) {
      ++Inconsistent;
      return;
    }
    while (!Stop.load()) {
      net::AnnotateResponseBody Res;
      WireStatus HStatus;
      if (!Client.annotate(makeBatch(Probes), Res, HStatus, &HErr) ||
          HStatus != WireStatus::Ok || Res.Results.size() != Probes.size()) {
        ++Inconsistent;
        return;
      }
      const auto &Expected = (Res.Generation % 2 == 1) ? RefA : RefB;
      for (size_t I = 0; I < Res.Results.size(); ++I)
        if (!Res.Results[I].Ok || Res.Results[I].Plans != Expected[I])
          ++Inconsistent;
      ++Served;
    }
  };
  std::thread T1(Hammer), T2(Hammer);

  for (uint64_t Flip = 2; Flip <= 7; ++Flip) {
    const std::string &Path = (Flip % 2 == 1) ? FileA.Path : FileB.Path;
    ASSERT_TRUE(Control.reload(Path, Status, &Generation, &Error)) << Error;
    ASSERT_EQ(Status, WireStatus::Ok) << Control.statusMessage();
    ASSERT_EQ(Generation, Flip);
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  }
  Stop.store(true);
  T1.join();
  T2.join();

  EXPECT_EQ(Inconsistent.load(), 0);
  EXPECT_GT(Served.load(), 0);
  EXPECT_EQ(S.Server.counters().Reloads, 7u);
}

} // namespace

TEST(ModelHost, QuantizedGenerationServesFp32PlansAcrossReload) {
  // Hot reload into a quantized generation: the freshly loaded weights
  // are re-quantized before the RCU flip, and the served plans still
  // match an fp32 reference instance loading the same file.
  TempFile File("net_quant_reload.nvm");
  saveTrainedModel(File.Path, /*Seed=*/61);
  const auto Ref = referencePlans(File.Path, {DotProduct, Saxpy});

  NeuroVectorizerConfig Config = testConfig();
  ServingModelConfig HostConfig =
      NeuroVectorizer(Config).servingModelConfig();
  HostConfig.Quantized = true;
  ModelHost Host(HostConfig);
  EXPECT_TRUE(Host.current()->isQuantized());
  AnnotationService Service(Host, Config.Embedding.Paths, Config.Target,
                            smallServe());

  std::string Error;
  ASSERT_EQ(Host.reload(File.Path, &Error), LoadStatus::Ok) << Error;
  EXPECT_TRUE(Host.current()->isQuantized());

  AnnotationResult RDot = Service.annotateOne("dot", DotProduct);
  AnnotationResult RSaxpy = Service.annotateOne("saxpy", Saxpy);
  ASSERT_TRUE(RDot.Ok) << RDot.Error;
  ASSERT_TRUE(RSaxpy.Ok) << RSaxpy.Error;
  EXPECT_EQ(RDot.Plans, Ref[0]);
  EXPECT_EQ(RSaxpy.Plans, Ref[1]);
  EXPECT_EQ(RDot.Generation, 1u);
  EXPECT_GT(Service.stats().QuantizedBatches.load(), 0u);
}
