//===- tests/ColdPathTest.cpp - cold-path refactor equivalence suite -------===//
//
// Proves the allocation-free cold path (interned tokens, arena'd
// extraction, span-based encode, sharded plan cache) is a pure
// performance change: a string-based reference extractor — the pre-PR
// implementation, op for op, over std::string labels and tokens — must
// yield byte-identical path contexts, embeddings, and serve plans, across
// pool sizes, cache shard counts, and v1/v2/v3 model loads.
//
//===----------------------------------------------------------------------===//

#include "core/NeuroVectorizer.h"
#include "dataset/LoopGenerator.h"
#include "embedding/ContextBuffer.h"
#include "ir/Legality.h"
#include "ir/Lowering.h"
#include "lang/LoopExtractor.h"
#include "lang/Parser.h"
#include "serve/ModelSerializer.h"
#include "support/StringUtils.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>

using namespace nv;

namespace {

//===----------------------------------------------------------------------===//
// The string-path reference extractor: the pre-PR TreeBuilder, verbatim —
// std::string node labels and terminal tokens, per-pair token hashing —
// evaluating the same structural path hash from the label *strings*, so
// any divergence in the interner, the cached token hashes, or the prefix
// states shows up as a context mismatch.
//===----------------------------------------------------------------------===//

struct RefNode {
  std::string Label;
  std::string Token;
  int Parent = -1;
  bool IsTerminal = false;
};

class RefTreeBuilder {
public:
  std::vector<RefNode> Nodes;

  int addNode(const std::string &Label, int Parent) {
    RefNode N;
    N.Label = Label;
    N.Parent = Parent;
    Nodes.push_back(N);
    return static_cast<int>(Nodes.size()) - 1;
  }

  int addTerminal(const std::string &Token, int Parent) {
    RefNode N;
    N.Token = Token;
    N.Label = "T";
    N.Parent = Parent;
    N.IsTerminal = true;
    Nodes.push_back(N);
    return static_cast<int>(Nodes.size()) - 1;
  }

  void buildExpr(const Expr &E, int Parent) {
    switch (E.kind()) {
    case ExprKind::IntLit:
      addTerminal(std::to_string(static_cast<const IntLit &>(E).Value),
                  addNode("Int", Parent));
      return;
    case ExprKind::FloatLit:
      addTerminal("<flt>", addNode("Flt", Parent));
      return;
    case ExprKind::VarRef:
      addTerminal(static_cast<const VarRef &>(E).Name,
                  addNode("Var", Parent));
      return;
    case ExprKind::ArrayRef: {
      const auto &Ref = static_cast<const ArrayRef &>(E);
      const int Node = addNode("Arr", Parent);
      addTerminal(Ref.Name, Node);
      for (const auto &Index : Ref.Indices)
        buildExpr(*Index, addNode("Idx", Node));
      return;
    }
    case ExprKind::Unary: {
      const auto &U = static_cast<const UnaryExpr &>(E);
      const char *Label = U.Op == UnaryOp::Neg   ? "Neg"
                          : U.Op == UnaryOp::Not ? "LNot"
                                                 : "BNot";
      buildExpr(*U.Sub, addNode(Label, Parent));
      return;
    }
    case ExprKind::Binary: {
      const auto &B = static_cast<const BinaryExpr &>(E);
      const int Node =
          addNode(std::string("Bin") + binaryOpSpelling(B.Op), Parent);
      buildExpr(*B.LHS, Node);
      buildExpr(*B.RHS, Node);
      return;
    }
    case ExprKind::Ternary: {
      const auto &T = static_cast<const TernaryExpr &>(E);
      const int Node = addNode("Cond", Parent);
      buildExpr(*T.Cond, Node);
      buildExpr(*T.Then, Node);
      buildExpr(*T.Else, Node);
      return;
    }
    case ExprKind::Cast: {
      const auto &C = static_cast<const CastExpr &>(E);
      const int Node = addNode("Cast", Parent);
      addTerminal(typeName(C.Ty), Node);
      buildExpr(*C.Sub, Node);
      return;
    }
    case ExprKind::Call: {
      const auto &C = static_cast<const CallExpr &>(E);
      const int Node = addNode("Call", Parent);
      addTerminal(C.Callee, Node);
      for (const auto &Arg : C.Args)
        buildExpr(*Arg, Node);
      return;
    }
    }
  }

  void buildStmt(const Stmt &S, int Parent) {
    switch (S.kind()) {
    case StmtKind::Block: {
      const int Node = addNode("Block", Parent);
      for (const auto &Child : static_cast<const BlockStmt &>(S).Stmts)
        buildStmt(*Child, Node);
      return;
    }
    case StmtKind::Decl: {
      const auto &D = static_cast<const DeclStmt &>(S);
      const int Node = addNode("Decl", Parent);
      addTerminal(typeName(D.Ty), Node);
      addTerminal(D.Name, Node);
      if (D.Init)
        buildExpr(*D.Init, Node);
      return;
    }
    case StmtKind::Assign: {
      const auto &A = static_cast<const AssignStmt &>(S);
      const char *Label = A.Op == AssignOp::Assign      ? "Asg"
                          : A.Op == AssignOp::AddAssign ? "Asg+"
                          : A.Op == AssignOp::SubAssign ? "Asg-"
                                                        : "Asg*";
      const int Node = addNode(Label, Parent);
      buildExpr(*A.LValue, Node);
      buildExpr(*A.RHS, Node);
      return;
    }
    case StmtKind::For: {
      const auto &F = static_cast<const ForStmt &>(S);
      const int Node = addNode("For", Parent);
      addTerminal(F.IndexVar, Node);
      buildExpr(*F.Init, addNode("Lo", Node));
      buildExpr(*F.Bound, addNode("Hi", Node));
      addTerminal(std::to_string(F.Step), addNode("Step", Node));
      buildStmt(*F.Body, Node);
      return;
    }
    case StmtKind::If: {
      const auto &I = static_cast<const IfStmt &>(S);
      const int Node = addNode("If", Parent);
      buildExpr(*I.Cond, Node);
      buildStmt(*I.Then, Node);
      if (I.Else)
        buildStmt(*I.Else, addNode("Else", Node));
      return;
    }
    case StmtKind::Return: {
      const auto &R = static_cast<const ReturnStmt &>(S);
      const int Node = addNode("Ret", Parent);
      if (R.Value)
        buildExpr(*R.Value, Node);
      return;
    }
    }
  }
};

/// The pre-PR extraction flow over the string tree, computing the
/// structural path hash from label strings (fnv1a per label, chained
/// through the public pathHashPush/pathHashCombine definitions).
std::vector<PathContext> referenceExtract(const Stmt &S,
                                          const PathContextConfig &Config) {
  RefTreeBuilder Builder;
  Builder.buildStmt(S, /*Parent=*/-1);

  std::vector<int> Terminals;
  for (size_t I = 0; I < Builder.Nodes.size(); ++I)
    if (Builder.Nodes[I].IsTerminal)
      Terminals.push_back(static_cast<int>(I));

  auto RootPath = [&](int Node) {
    std::vector<int> Path;
    for (int Cur = Builder.Nodes[Node].Parent; Cur != -1;
         Cur = Builder.Nodes[Cur].Parent)
      Path.push_back(Cur);
    return Path; // Leaf's parent first, root last.
  };
  std::vector<std::vector<int>> Paths;
  Paths.reserve(Terminals.size());
  for (int T : Terminals)
    Paths.push_back(RootPath(T));

  std::vector<PathContext> Contexts;
  for (size_t I = 0; I < Terminals.size(); ++I) {
    for (size_t J = I + 1; J < Terminals.size(); ++J) {
      const std::vector<int> &PI = Paths[I];
      const std::vector<int> &PJ = Paths[J];
      size_t SI = PI.size(), SJ = PJ.size();
      while (SI > 0 && SJ > 0 && PI[SI - 1] == PJ[SJ - 1]) {
        --SI;
        --SJ;
      }
      const size_t UpLen = SI, DownLen = SJ;
      if (static_cast<int>(UpLen + DownLen + 1) > Config.MaxPathLength)
        continue;

      uint64_t Up = pathHashSeed();
      for (size_t K = 0; K <= UpLen; ++K)
        Up = pathHashPush(Up, fnv1a(Builder.Nodes[PI[K]].Label));
      uint64_t Down = pathHashSeed();
      for (size_t K = 0; K < DownLen; ++K)
        Down = pathHashPush(Down, fnv1a(Builder.Nodes[PJ[K]].Label));

      PathContext Ctx;
      Ctx.SrcToken =
          hashToken(Builder.Nodes[Terminals[I]].Token, Config.TokenVocabSize);
      Ctx.Path = hashToVocab(pathHashCombine(Up, Down), Config.PathVocabSize);
      Ctx.DstToken =
          hashToken(Builder.Nodes[Terminals[J]].Token, Config.TokenVocabSize);
      Contexts.push_back(Ctx);
    }
  }

  if (static_cast<int>(Contexts.size()) > Config.MaxContexts) {
    std::vector<PathContext> Sampled;
    Sampled.reserve(Config.MaxContexts);
    const double Stride =
        static_cast<double>(Contexts.size()) / Config.MaxContexts;
    for (int K = 0; K < Config.MaxContexts; ++K)
      Sampled.push_back(Contexts[static_cast<size_t>(K * Stride)]);
    Contexts = std::move(Sampled);
  }
  return Contexts;
}

bool sameContexts(const std::vector<PathContext> &A,
                  const std::vector<PathContext> &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I < A.size(); ++I)
    if (A[I].SrcToken != B[I].SrcToken || A[I].Path != B[I].Path ||
        A[I].DstToken != B[I].DstToken)
      return false;
  return true;
}

/// Small, fast model configuration (matches ServeTest).
NeuroVectorizerConfig testConfig(uint64_t Seed = 1234) {
  NeuroVectorizerConfig Config;
  Config.PPO.BatchSize = 64;
  Config.PPO.MiniBatchSize = 32;
  Config.PPO.LearningRate = 3e-3;
  Config.Embedding.CodeDim = 16;
  Config.Embedding.TokenDim = 8;
  Config.Embedding.PathDim = 8;
  Config.Seed = Seed;
  return Config;
}

struct TempModel {
  std::string Path;
  explicit TempModel(const std::string &Name)
      : Path(::testing::TempDir() + Name) {}
  ~TempModel() { std::remove(Path.c_str()); }
};

/// Rewrites a freshly saved (v3, weights-only) model file as an older
/// format version (mirrors ServeTest::downgradeModelFile).
void downgradeModelFile(const std::string &Path, uint32_t Version) {
  std::ifstream In(Path, std::ios::binary);
  std::string Bytes((std::istreambuf_iterator<char>(In)),
                    std::istreambuf_iterator<char>());
  In.close();
  ASSERT_GT(Bytes.size(), 24u);
  Bytes.erase(Bytes.size() - sizeof(uint64_t) - sizeof(uint32_t),
              sizeof(uint32_t)); // Empty v3 section count.
  if (Version == 1)
    Bytes.erase(8, 4); // Flags word.
  std::memcpy(&Bytes[4], &Version, sizeof(Version));
  const uint64_t Sum = ModelSerializer::checksum(
      Bytes.data(), Bytes.size() - sizeof(uint64_t));
  std::memcpy(&Bytes[Bytes.size() - sizeof(uint64_t)], &Sum, sizeof(Sum));
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
  Out.close();
}

//===----------------------------------------------------------------------===//
// Tests
//===----------------------------------------------------------------------===//

TEST(ColdPath, InternedExtractionMatchesStringReference) {
  PathContextConfig Config;
  LoopGenerator Gen(/*Seed=*/2024);
  ContextBuffer Buf; // One buffer across the whole corpus: reuse on purpose.
  int Sites = 0;
  for (const GeneratedLoop &L : Gen.generateMany(48)) {
    std::optional<Program> P = parseSource(L.Source);
    ASSERT_TRUE(P.has_value()) << L.Name;
    for (const LoopSite &Site : extractLoops(*P)) {
      for (const Stmt *Root :
           {static_cast<const Stmt *>(Site.Outer),
            static_cast<const Stmt *>(Site.Inner)}) {
        const std::vector<PathContext> Ref = referenceExtract(*Root, Config);
        const std::vector<PathContext> Wrapped =
            extractPathContexts(*Root, Config);
        const ContextSpan Span = extractPathContextsInto(*Root, Config, Buf);
        ASSERT_TRUE(sameContexts(Ref, Wrapped)) << L.Name;
        ASSERT_TRUE(sameContexts(
            Ref, std::vector<PathContext>(Span.begin(), Span.end())))
            << L.Name;
        ++Sites;
      }
    }
  }
  EXPECT_GT(Sites, 60); // The corpus actually exercised the extractor.
}

TEST(ColdPath, InternedExtractionMatchesReferenceOnSmallVocab) {
  // Small vocabularies force collisions; the fold must still agree.
  PathContextConfig Config;
  Config.TokenVocabSize = 17; // Deliberately not a power of two.
  Config.PathVocabSize = 13;
  LoopGenerator Gen(/*Seed=*/7);
  for (const GeneratedLoop &L : Gen.generateMany(12)) {
    std::optional<Program> P = parseSource(L.Source);
    ASSERT_TRUE(P.has_value());
    for (const LoopSite &Site : extractLoops(*P)) {
      const std::vector<PathContext> Ref =
          referenceExtract(*Site.Outer, Config);
      EXPECT_TRUE(sameContexts(Ref, extractPathContexts(*Site.Outer, Config)));
      for (const PathContext &Ctx : Ref) {
        EXPECT_GE(Ctx.SrcToken, 0);
        EXPECT_LT(Ctx.SrcToken, 17);
        EXPECT_GE(Ctx.Path, 0);
        EXPECT_LT(Ctx.Path, 13);
      }
    }
  }
}

TEST(ColdPath, SpanEncodeBitwiseMatchesBatchEncode) {
  RNG R(11);
  Code2VecConfig Config;
  Config.CodeDim = 24;
  Code2Vec Embedder(Config, R);
  LoopGenerator Gen(/*Seed=*/99);
  std::vector<std::vector<PathContext>> Bags;
  for (const GeneratedLoop &L : Gen.generateMany(16)) {
    std::optional<Program> P = parseSource(L.Source);
    ASSERT_TRUE(P.has_value());
    for (const LoopSite &Site : extractLoops(*P))
      Bags.push_back(extractPathContexts(*Site.Outer, Config.Paths));
  }
  Bags.push_back({}); // An empty bag must encode to zero on both paths.
  ASSERT_GT(Bags.size(), 8u);

  Matrix ViaBatch;
  Embedder.encodeBatchInto(Bags, ViaBatch);
  std::vector<ContextSpan> Spans;
  for (const auto &Bag : Bags)
    Spans.push_back({Bag.data(), Bag.size()});
  Matrix ViaSpans;
  Embedder.encodeSpansInto(Spans, ViaSpans);

  ASSERT_EQ(ViaBatch.rows(), ViaSpans.rows());
  ASSERT_EQ(ViaBatch.cols(), ViaSpans.cols());
  EXPECT_EQ(ViaBatch.raw(), ViaSpans.raw()); // Bitwise.

  // And with a pool: still bitwise identical.
  ThreadPool Pool(4);
  Matrix Pooled;
  Embedder.encodeSpansInto(Spans, Pooled, &Pool);
  EXPECT_EQ(ViaBatch.raw(), Pooled.raw());
}

TEST(ColdPath, ServePlansMatchReferencePipelineAcrossThreads) {
  // The serve cold path (arena extraction, sharded cache, span encode)
  // must produce exactly the plans of the reference pipeline: string-path
  // extraction -> batched encode -> the same backend, and must do so at
  // every pool size and shard count, with identical counter stats.
  NeuroVectorizer NV(testConfig(/*Seed=*/3));
  LoopGenerator Train(/*Seed=*/5);
  for (const GeneratedLoop &L : Train.generateMany(24))
    NV.addTrainingProgram(L.Name, L.Source);
  NV.train(256);

  LoopGenerator Unseen(/*Seed=*/606);
  std::vector<AnnotationRequest> Requests;
  for (const GeneratedLoop &L : Unseen.generateMany(24))
    Requests.push_back({L.Name, L.Source});
  Requests.push_back(Requests.front()); // One intra-batch duplicate.

  // Reference plans, one program at a time through the string extractor,
  // then the same legality clamp the service applies at its boundary.
  std::vector<std::vector<VectorPlan>> Reference;
  const TargetInfo RefTI;
  for (const AnnotationRequest &Req : Requests) {
    std::optional<Program> P = parseSource(Req.Source);
    ASSERT_TRUE(P.has_value());
    clearAllPragmas(*P);
    std::vector<LoopSite> Sites = extractLoops(*P);
    std::vector<std::vector<PathContext>> Bags;
    for (const LoopSite &Site : Sites)
      Bags.push_back(referenceExtract(
          *Site.Outer, NV.embedder().config().Paths));
    const Matrix States = NV.embedder().encodeBatch(Bags);
    std::vector<VectorPlan> Plans =
        NV.backends().get(PredictMethod::RL)->plansForEmbeddings(States,
                                                                 nullptr);
    const std::vector<LoopSummary> Summaries =
        lowerAllLoops(*P, Sites, RefTI.MaxVF);
    for (size_t S = 0; S < Plans.size(); ++S)
      Plans[S] = legalizePlan(
          analyzeLegality(Summaries[S], RefTI).MaxSafeVF, Plans[S], RefTI);
    Reference.push_back(std::move(Plans));
  }

  std::vector<uint64_t> FirstCounters;
  for (int Threads : {1, 2, 4}) {
    for (int Shards : {1, 8}) {
      ServeConfig Serve;
      Serve.Threads = Threads;
      Serve.CacheShards = Shards;
      AnnotationService &Service = NV.service(Serve); // Fresh cache+stats.
      const std::vector<AnnotationResult> Results =
          Service.annotateBatch(Requests);
      ASSERT_EQ(Results.size(), Requests.size());
      for (size_t I = 0; I < Results.size(); ++I) {
        ASSERT_TRUE(Results[I].Ok) << Results[I].Error;
        ASSERT_EQ(Results[I].Plans.size(), Reference[I].size());
        for (size_t S = 0; S < Reference[I].size(); ++S)
          EXPECT_EQ(Results[I].Plans[S], Reference[I][S])
              << Requests[I].Name << " site " << S << " threads "
              << Threads << " shards " << Shards;
      }
      // Counter stats (not timings) must not depend on pool or shards.
      const ServeStats &S = Service.stats();
      const std::vector<uint64_t> Counters = {
          S.ProgramsServed.load(), S.LoopsServed.load(),
          S.CacheHits.load(),      S.DedupHits.load(),
          S.CacheMisses.load(),    S.ForwardPasses.load(),
          S.LoopsPerForward.load()};
      if (FirstCounters.empty())
        FirstCounters = Counters;
      else
        EXPECT_EQ(Counters, FirstCounters)
            << "threads " << Threads << " shards " << Shards;
    }
  }
}

TEST(ColdPath, ServePlansStableAcrossModelFileVersions) {
  // Save once, serve the same weights through v1, v2, and v3 files: the
  // cold path must answer identically for every format generation.
  TempModel V3("coldpath_v3.nvm"), V2("coldpath_v2.nvm"),
      V1("coldpath_v1.nvm");
  NeuroVectorizer Trained(testConfig(/*Seed=*/21));
  LoopGenerator Train(/*Seed=*/22);
  for (const GeneratedLoop &L : Train.generateMany(16))
    Trained.addTrainingProgram(L.Name, L.Source);
  Trained.train(192);
  ASSERT_TRUE(Trained.save(V3.Path));
  ASSERT_TRUE(Trained.save(V2.Path));
  ASSERT_TRUE(Trained.save(V1.Path));
  downgradeModelFile(V2.Path, /*Version=*/2);
  downgradeModelFile(V1.Path, /*Version=*/1);

  LoopGenerator Unseen(/*Seed=*/23);
  std::vector<AnnotationRequest> Requests;
  for (const GeneratedLoop &L : Unseen.generateMany(12))
    Requests.push_back({L.Name, L.Source});

  std::vector<std::string> FirstAnnotations;
  for (const std::string *Path : {&V3.Path, &V2.Path, &V1.Path}) {
    NeuroVectorizer Fresh(testConfig(/*Seed=*/99));
    std::string Error;
    ASSERT_TRUE(Fresh.load(*Path, &Error)) << Error;
    ServeConfig Serve;
    Serve.Threads = 2;
    std::vector<std::string> Annotations;
    for (const AnnotationResult &Res :
         Fresh.service(Serve).annotateBatch(Requests)) {
      ASSERT_TRUE(Res.Ok) << Res.Error;
      Annotations.push_back(Res.Annotated);
    }
    if (FirstAnnotations.empty())
      FirstAnnotations = std::move(Annotations);
    else
      EXPECT_EQ(Annotations, FirstAnnotations) << *Path;
  }
}

} // namespace
