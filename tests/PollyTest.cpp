//===- tests/PollyTest.cpp - polyhedral-lite transform tests --------------===//

#include "ir/Lowering.h"
#include "lang/LoopExtractor.h"
#include "lang/Parser.h"
#include "lang/PrettyPrinter.h"
#include "polly/Polly.h"
#include "sim/Compiler.h"

#include <gtest/gtest.h>

using namespace nv;

namespace {

Program parsed(const std::string &Source) {
  std::string Error;
  std::optional<Program> P = parseSource(Source, &Error);
  EXPECT_TRUE(P.has_value()) << Error;
  return std::move(*P);
}

TEST(Polly, InterchangesColumnMajorWalk) {
  // y[j] += A[i][j] * t[i] with i innermost: A is walked by column.
  Program P = parsed(R"(
    float A[64][64]; float t[64]; float y[64];
    void f() {
      for (int j = 0; j < 64; j++) {
        for (int i = 0; i < 64; i++) {
          y[j] = y[j] + A[i][j] * t[i];
        }
      }
    })");
  PollyReport Report;
  Program Out = applyPolly(P, &Report);
  EXPECT_EQ(Report.Interchanged, 1);

  // After interchange the innermost accesses are contiguous.
  std::vector<LoopSite> Sites = extractLoops(Out);
  ASSERT_EQ(Sites.size(), 1u);
  EXPECT_EQ(Sites[0].Inner->IndexVar, "j");
  LoopSummary S = lowerLoop(Out, Sites[0], 64);
  for (const MemAccess &A : S.Accesses)
    if (A.Array == "A")
      EXPECT_EQ(A.InnerStride, 1);
}

TEST(Polly, LeavesRowMajorAlone) {
  Program P = parsed(R"(
    float A[64][64]; float x;
    void f() {
      for (int i = 0; i < 64; i++) {
        for (int j = 0; j < 64; j++) {
          A[i][j] = x;
        }
      }
    })");
  PollyReport Report;
  (void)applyPolly(P, &Report);
  EXPECT_EQ(Report.Interchanged, 0);
}

TEST(Polly, InterchangeImprovesSimulatedTime) {
  const char *Bad = R"(
    float A[256][256]; float t[256]; float y[256];
    void f() {
      for (int j = 0; j < 256; j++) {
        for (int i = 0; i < 256; i++) {
          y[j] = y[j] + A[i][j] * t[i];
        }
      }
    })";
  Program P = parsed(Bad);
  Program Out = applyPolly(P);
  SimCompiler C;
  Program P2 = parsed(Bad);
  const double Before = C.compileBaseline(P2).ExecutionCycles;
  const double After = C.compileBaseline(Out).ExecutionCycles;
  EXPECT_LT(After, Before);
}

TEST(Polly, TilesLargeReusedFootprint) {
  // Inner loop walks 128KB (y + acc) per i iteration: reused, out of L1.
  Program P = parsed(R"(
    float x[512]; float y[16384]; float acc[16384];
    void f() {
      for (int i = 0; i < 512; i++) {
        for (int j = 0; j < 16384; j++) {
          acc[j] = acc[j] + y[j] * x[i];
        }
      }
    })");
  PollyReport Report;
  Program Out = applyPolly(P, &Report);
  EXPECT_EQ(Report.Tiled, 1);
  // The result must still parse and re-extract (now 3 loops deep).
  std::string Src = printProgram(Out);
  std::string Error;
  std::optional<Program> Reparsed = parseSource(Src, &Error);
  ASSERT_TRUE(Reparsed.has_value()) << Error << "\n" << Src;
  std::vector<LoopSite> Sites = extractLoops(*Reparsed);
  ASSERT_EQ(Sites.size(), 1u);
  EXPECT_EQ(Sites[0].Depth, 3);
}

TEST(Polly, SkipsTilingSmallFootprints) {
  Program P = parsed(R"(
    float y[256]; float out[64];
    void f() {
      for (int i = 0; i < 64; i++) {
        for (int j = 0; j < 256; j++) {
          out[i] = out[i] + y[j];
        }
      }
    })");
  PollyReport Report;
  (void)applyPolly(P, &Report);
  EXPECT_EQ(Report.Tiled, 0);
}

TEST(Polly, FusesIdenticalHeaders) {
  Program P = parsed(R"(
    float a[128]; float b[128]; float c[128]; float d[128];
    void f() {
      for (int i = 0; i < 128; i++) { b[i] = a[i] * 2.0; }
      for (int i = 0; i < 128; i++) { d[i] = c[i] + 1.0; }
    })");
  PollyReport Report;
  Program Out = applyPolly(P, &Report);
  EXPECT_EQ(Report.Fused, 1);
  std::vector<LoopSite> Sites = extractLoops(Out);
  EXPECT_EQ(Sites.size(), 1u);
}

TEST(Polly, RefusesFusionAcrossDependence) {
  // Second loop reads what the first wrote: element-wise fusion is only
  // safe here if indices line up; the conservative check refuses.
  Program P = parsed(R"(
    float a[128]; float b[128]; float c[128];
    void f() {
      for (int i = 0; i < 128; i++) { b[i] = a[i] * 2.0; }
      for (int i = 0; i < 128; i++) { c[i] = b[127 - i]; }
    })");
  PollyReport Report;
  (void)applyPolly(P, &Report);
  EXPECT_EQ(Report.Fused, 0);
}

TEST(Polly, TransformedProgramsRoundTrip) {
  Program P = parsed(R"(
    float A[64][64]; float t[64]; float y[64];
    void f() {
      for (int j = 0; j < 64; j++) {
        for (int i = 0; i < 64; i++) {
          y[j] = y[j] + A[i][j] * t[i];
        }
      }
    })");
  Program Out = applyPolly(P);
  std::string Error;
  EXPECT_TRUE(parseSource(printProgram(Out), &Error).has_value()) << Error;
}

TEST(Polly, OriginalProgramUntouched) {
  Program P = parsed(R"(
    float A[64][64]; float t[64]; float y[64];
    void f() {
      for (int j = 0; j < 64; j++) {
        for (int i = 0; i < 64; i++) {
          y[j] = y[j] + A[i][j] * t[i];
        }
      }
    })");
  const std::string Before = printProgram(P);
  (void)applyPolly(P);
  EXPECT_EQ(printProgram(P), Before);
}

} // namespace
