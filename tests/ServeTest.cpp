//===- tests/ServeTest.cpp - serializer, cache, batched service tests ------===//

#include "core/NeuroVectorizer.h"
#include "dataset/LoopGenerator.h"
#include "serve/ModelSerializer.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <thread>

using namespace nv;

namespace {

const char *DotProduct =
    "int vec[512]; int out; void f() { int sum = 0; for (int i = 0; i < "
    "512; i++) { sum += vec[i] * vec[i]; } out = sum; }";

/// Small, fast configuration (matches CoreTest's integration config).
NeuroVectorizerConfig testConfig(uint64_t Seed = 1234) {
  NeuroVectorizerConfig Config;
  Config.PPO.BatchSize = 64;
  Config.PPO.MiniBatchSize = 32;
  Config.PPO.LearningRate = 3e-3;
  Config.Embedding.CodeDim = 16;
  Config.Embedding.TokenDim = 8;
  Config.Embedding.PathDim = 8;
  Config.Seed = Seed;
  return Config;
}

/// A scratch model path that is removed on scope exit.
struct TempModel {
  std::string Path;
  explicit TempModel(const std::string &Name)
      : Path(::testing::TempDir() + Name) {}
  ~TempModel() { std::remove(Path.c_str()); }
};

std::vector<AnnotationRequest> generatedRequests(int Count,
                                                 uint64_t Seed = 99) {
  LoopGenerator Gen(Seed);
  std::vector<AnnotationRequest> Requests;
  for (const GeneratedLoop &L : Gen.generateMany(Count))
    Requests.push_back({L.Name, L.Source});
  return Requests;
}

TEST(ModelSerializer, RoundTripIsBitwiseExact) {
  TempModel File("serve_roundtrip.nvm");

  NeuroVectorizer Trained(testConfig(/*Seed=*/1));
  ASSERT_TRUE(Trained.addTrainingProgram("dot", DotProduct));
  Trained.train(128);
  ASSERT_TRUE(Trained.save(File.Path));

  // A different seed guarantees the fresh instance starts from different
  // weights, so equality after load() proves the file carried everything.
  // (Compare the weights themselves: two different models can
  // coincidentally pick the same plan for one program.)
  NeuroVectorizer Fresh(testConfig(/*Seed=*/2));
  ASSERT_NE(Trained.embedder().params()[0]->Value.raw(),
            Fresh.embedder().params()[0]->Value.raw());
  std::string Error;
  ASSERT_TRUE(Fresh.load(File.Path, &Error)) << Error;

  std::vector<Param *> A = Trained.embedder().params();
  std::vector<Param *> B = Fresh.embedder().params();
  for (Param *P : Trained.policy().params())
    A.push_back(P);
  for (Param *P : Fresh.policy().params())
    B.push_back(P);
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I < A.size(); ++I)
    EXPECT_EQ(A[I]->Value.raw(), B[I]->Value.raw()) << "param " << I;

  // Identical weights must mean identical annotations on unseen programs.
  for (const AnnotationRequest &Req : generatedRequests(8))
    EXPECT_EQ(Trained.annotate(Req.Source), Fresh.annotate(Req.Source));
}

TEST(ModelSerializer, RejectsTruncatedFile) {
  TempModel File("serve_truncated.nvm");
  NeuroVectorizer NV(testConfig());
  ASSERT_TRUE(NV.save(File.Path));

  std::ifstream In(File.Path, std::ios::binary);
  std::string Bytes((std::istreambuf_iterator<char>(In)),
                    std::istreambuf_iterator<char>());
  In.close();
  ASSERT_GT(Bytes.size(), 64u);

  for (size_t Keep : {size_t(0), size_t(3), size_t(17), Bytes.size() / 2,
                      Bytes.size() - 1}) {
    std::ofstream Out(File.Path, std::ios::binary | std::ios::trunc);
    Out.write(Bytes.data(), static_cast<std::streamsize>(Keep));
    Out.close();
    std::string Error;
    EXPECT_FALSE(NV.load(File.Path, &Error)) << "kept " << Keep;
    EXPECT_FALSE(Error.empty());
  }
}

TEST(ModelSerializer, RejectsBitFlipAndLeavesModelUntouched) {
  TempModel File("serve_corrupt.nvm");
  NeuroVectorizer NV(testConfig());
  ASSERT_TRUE(NV.addTrainingProgram("dot", DotProduct));
  NV.train(64);
  const std::string Before = NV.annotate(DotProduct);
  ASSERT_TRUE(NV.save(File.Path));

  std::fstream F(File.Path,
                 std::ios::binary | std::ios::in | std::ios::out);
  F.seekp(128);
  char Byte = 0;
  F.seekg(128);
  F.read(&Byte, 1);
  Byte ^= 0x40;
  F.seekp(128);
  F.write(&Byte, 1);
  F.close();

  std::string Error;
  EXPECT_FALSE(NV.load(File.Path, &Error));
  EXPECT_NE(Error.find("checksum"), std::string::npos) << Error;
  // Failed loads must not clobber the live model.
  EXPECT_EQ(NV.annotate(DotProduct), Before);
}

/// Rewrites a freshly saved (v3, weights-only) model file as an older
/// format version: v2 drops the trailing empty section-count word, v1
/// additionally drops the u32 flags word at offset 8. The trailing
/// checksum is recomputed either way.
void downgradeModelFile(const std::string &Path, uint32_t Version) {
  std::ifstream In(Path, std::ios::binary);
  std::string Bytes((std::istreambuf_iterator<char>(In)),
                    std::istreambuf_iterator<char>());
  In.close();
  ASSERT_GT(Bytes.size(), 24u);
  Bytes.erase(Bytes.size() - sizeof(uint64_t) - sizeof(uint32_t),
              sizeof(uint32_t)); // Empty v3 section count.
  if (Version == 1)
    Bytes.erase(8, 4); // Flags word.
  std::memcpy(&Bytes[4], &Version, sizeof(Version));
  const uint64_t Sum = ModelSerializer::checksum(
      Bytes.data(), Bytes.size() - sizeof(uint64_t));
  std::memcpy(&Bytes[Bytes.size() - sizeof(uint64_t)], &Sum, sizeof(Sum));
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
  Out.close();
}

TEST(ModelSerializer, RejectsLegacyVocabHashFiles) {
  // Flags bit 1 marks the bias-free vocabulary fold. A v2+ file without
  // it was written before the fold: its embedding rows are bucketed by
  // the old `fnv1a % vocab`, which the current extractor no longer
  // reproduces — loading must fail loudly, not silently degrade.
  TempModel File("serve_oldhash.nvm");
  NeuroVectorizer NV(testConfig(/*Seed=*/77));
  ASSERT_TRUE(NV.save(File.Path));

  std::ifstream In(File.Path, std::ios::binary);
  std::string Bytes((std::istreambuf_iterator<char>(In)),
                    std::istreambuf_iterator<char>());
  In.close();
  uint32_t Flags = 0;
  std::memcpy(&Flags, &Bytes[8], sizeof(Flags));
  ASSERT_NE(Flags & 2u, 0u); // Fresh saves carry the marker.
  Flags &= ~2u;              // Simulate a pre-fold file.
  std::memcpy(&Bytes[8], &Flags, sizeof(Flags));
  const uint64_t Sum = ModelSerializer::checksum(
      Bytes.data(), Bytes.size() - sizeof(uint64_t));
  std::memcpy(&Bytes[Bytes.size() - sizeof(uint64_t)], &Sum, sizeof(Sum));
  std::ofstream Out(File.Path, std::ios::binary | std::ios::trunc);
  Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
  Out.close();

  std::string Error;
  EXPECT_FALSE(NV.load(File.Path, &Error));
  EXPECT_NE(Error.find("vocabulary"), std::string::npos) << Error;
}

TEST(ModelSerializer, LoadsLegacyV1Files) {
  // v1 files (no flags word, no sections) predate the extraction-setting
  // header; they must keep loading, with the setting defaulting to
  // outer-context.
  TempModel File("serve_v1.nvm");
  NeuroVectorizer Saved(testConfig(/*Seed=*/5));
  ASSERT_TRUE(Saved.addTrainingProgram("dot", DotProduct));
  Saved.train(64);
  ASSERT_TRUE(Saved.save(File.Path));
  downgradeModelFile(File.Path, /*Version=*/1);

  NeuroVectorizer Fresh(testConfig(/*Seed=*/6));
  std::string Error;
  ASSERT_TRUE(Fresh.load(File.Path, &Error)) << Error;
  EXPECT_FALSE(Fresh.env().innerContextOnly());
  EXPECT_EQ(Fresh.annotate(DotProduct), Saved.annotate(DotProduct));
}

TEST(ModelSerializer, LoadsLegacyV2Files) {
  // v2 files (flags word, no backend sections) must keep loading; their
  // supervised backends are simply unfitted.
  TempModel File("serve_v2.nvm");
  NeuroVectorizer Saved(testConfig(/*Seed=*/15));
  ASSERT_TRUE(Saved.addTrainingProgram("dot", DotProduct));
  Saved.train(64);
  ASSERT_TRUE(Saved.save(File.Path));
  downgradeModelFile(File.Path, /*Version=*/2);

  NeuroVectorizer Fresh(testConfig(/*Seed=*/16));
  // Pre-fit backends must not survive a weights-only load: the loaded
  // weights produce different embeddings than the ones they were fit on.
  ASSERT_TRUE(Fresh.addTrainingProgram("dot", DotProduct));
  Fresh.fitSupervised(/*MaxSamples=*/1);
  EXPECT_TRUE(Fresh.supervisedReady());
  std::string Error;
  ASSERT_TRUE(Fresh.load(File.Path, &Error)) << Error;
  EXPECT_FALSE(Fresh.supervisedReady());
  EXPECT_EQ(Fresh.annotate(DotProduct), Saved.annotate(DotProduct));
}

TEST(ModelSerializer, V3RoundTripRestoresSupervisedBackends) {
  // The acceptance path: train, distill, save ONE file; a fresh process
  // loads it and serves rl, nns, tree, and bruteforce without refitting.
  TempModel File("serve_v3_backends.nvm");
  NeuroVectorizer Trained(testConfig(/*Seed=*/31));
  LoopGenerator Gen(7);
  for (const GeneratedLoop &L : Gen.generateMany(12))
    ASSERT_TRUE(Trained.addTrainingProgram(L.Name, L.Source));
  Trained.train(128);
  const DistillReport Distilled = Trained.fitSupervised(/*MaxSamples=*/12);
  EXPECT_EQ(Distilled.Programs, 12u);
  EXPECT_GT(Distilled.Sites, 0u);
  EXPECT_GT(Distilled.TreeNodes, 0u);
  ASSERT_TRUE(Trained.save(File.Path));

  NeuroVectorizer Fresh(testConfig(/*Seed=*/32));
  EXPECT_FALSE(Fresh.supervisedReady());
  std::string Error;
  ASSERT_TRUE(Fresh.load(File.Path, &Error)) << Error;
  EXPECT_TRUE(Fresh.supervisedReady());

  // Every backend must reproduce the training-side plans exactly.
  for (const AnnotationRequest &Req : generatedRequests(6, /*Seed=*/123)) {
    for (PredictMethod M :
         {PredictMethod::RL, PredictMethod::NNS, PredictMethod::DecisionTree,
          PredictMethod::BruteForce, PredictMethod::Baseline}) {
      const std::vector<VectorPlan> A = Trained.plansFor(Req.Source, M);
      const std::vector<VectorPlan> B = Fresh.plansFor(Req.Source, M);
      ASSERT_EQ(A.size(), B.size()) << methodName(M);
      for (size_t S = 0; S < A.size(); ++S)
        EXPECT_EQ(A[S], B[S]) << methodName(M) << " site " << S;
    }
  }
}

TEST(ModelSerializer, RejectsForeignFile) {
  TempModel File("serve_foreign.nvm");
  std::ofstream Out(File.Path, std::ios::binary);
  Out << "definitely not a model file, but long enough to have a header";
  Out.close();
  NeuroVectorizer NV(testConfig());
  std::string Error;
  EXPECT_FALSE(NV.load(File.Path, &Error));
  EXPECT_FALSE(NV.load(File.Path + ".does-not-exist", &Error));
}

TEST(ModelSerializer, RejectsArchitectureMismatch) {
  TempModel File("serve_arch.nvm");
  NeuroVectorizer Small(testConfig());
  ASSERT_TRUE(Small.save(File.Path));

  NeuroVectorizerConfig BigConfig = testConfig();
  BigConfig.Embedding.CodeDim = 32; // Different code-vector width.
  NeuroVectorizer Big(BigConfig);
  std::string Error;
  EXPECT_FALSE(Big.load(File.Path, &Error));
  EXPECT_NE(Error.find("mismatch"), std::string::npos) << Error;
}

TEST(PlanCache, LRUEvictsOldest) {
  // One shard isolates the pure LRU semantics (all keys share the list).
  const ContextKey K1{1, 1}, K2{2, 2}, K3{3, 3};
  PlanCache Cache(2, /*Shards=*/1);
  Cache.insert(K1, {2, 2});
  Cache.insert(K2, {4, 4});
  VectorPlan Out;
  ASSERT_TRUE(Cache.lookup(K1, Out)); // Refreshes key 1.
  Cache.insert(K3, {8, 8});           // Evicts key 2.
  EXPECT_EQ(Cache.size(), 2u);
  EXPECT_TRUE(Cache.lookup(K1, Out));
  EXPECT_EQ(Out.VF, 2);
  EXPECT_FALSE(Cache.lookup(K2, Out));
  EXPECT_TRUE(Cache.lookup(K3, Out));
}

TEST(PlanCache, ShardedCapacityAndIsolation) {
  // 8 shards, capacity 64: each shard holds ceil(64/8) = 8 entries, and
  // keys spread by the Hi stream's top bits. Filling well under the total
  // capacity with realistic (well-mixed) keys must never evict.
  PlanCache Cache(64, /*Shards=*/8);
  EXPECT_EQ(Cache.shards(), 8);
  std::vector<ContextKey> Keys;
  for (uint32_t I = 0; I < 32; ++I) {
    // Realistic keys come out of contextBagKey (both halves mixed).
    Keys.push_back(contextBagKey({{static_cast<int>(I), 1, 2}}, false));
    Cache.insert(Keys.back(), {2, static_cast<int>(I)});
  }
  EXPECT_EQ(Cache.size(), 32u);
  VectorPlan Out;
  for (uint32_t I = 0; I < 32; ++I) {
    ASSERT_TRUE(Cache.lookup(Keys[I], Out)) << "key " << I;
    EXPECT_EQ(Out.IF, static_cast<int>(I));
  }
  Cache.clear();
  EXPECT_EQ(Cache.size(), 0u);
  EXPECT_FALSE(Cache.lookup(Keys[0], Out));
}

TEST(PlanCache, ZeroCapacityDisablesInsertion) {
  PlanCache Cache(0, /*Shards=*/4);
  Cache.insert({1, 1}, {4, 2});
  VectorPlan Out;
  EXPECT_FALSE(Cache.lookup({1, 1}, Out));
  EXPECT_EQ(Cache.size(), 0u);
}

TEST(PlanCache, HalfMatchingKeysDoNotCollide) {
  // The 128-bit key exists because one colliding 64-bit half must not be
  // enough to serve the wrong plan.
  PlanCache Cache(8);
  Cache.insert({42, 1}, {2, 2});
  VectorPlan Out;
  EXPECT_FALSE(Cache.lookup({42, 2}, Out)); // Same Lo, different Hi.
  EXPECT_FALSE(Cache.lookup({43, 1}, Out)); // Same Hi, different Lo.
  EXPECT_TRUE(Cache.lookup({42, 1}, Out));
}

TEST(ContextKey, DistinguishesBagsAndExtractionFlavour) {
  const std::vector<PathContext> BagA = {{1, 2, 3}, {4, 5, 6}};
  const std::vector<PathContext> BagB = {{1, 2, 3}, {4, 5, 7}};
  EXPECT_EQ(contextBagKey(BagA, false), contextBagKey(BagA, false));
  EXPECT_NE(contextBagKey(BagA, false), contextBagKey(BagB, false));
  // Same bag, other extraction flavour: a different identity, so an
  // inner-context model's plans can never answer outer-context lookups.
  EXPECT_NE(contextBagKey(BagA, false), contextBagKey(BagA, true));
  // Both halves populated (independent hash streams).
  const ContextKey Key = contextBagKey(BagA, false);
  EXPECT_NE(Key.Lo, 0u);
  EXPECT_NE(Key.Hi, 0u);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool Pool(4);
  std::vector<std::atomic<int>> Seen(1000);
  Pool.parallelFor(0, Seen.size(), [&](size_t I) { ++Seen[I]; });
  for (size_t I = 0; I < Seen.size(); ++I)
    EXPECT_EQ(Seen[I].load(), 1) << "index " << I;
}

TEST(ThreadPool, ConcurrentParallelForCallsDoNotWaitOnEachOther) {
  // Regression: wait() used to block on the pool-global in-flight count,
  // so two concurrent parallelFor callers waited on each other's jobs.
  // With per-call completion this must be correct (each caller sees all
  // of its own indices done on return) under heavy interleaving.
  ThreadPool Pool(4);
  constexpr int Callers = 4, Rounds = 25, Range = 64;
  std::vector<std::thread> Threads;
  std::atomic<int> Failures{0};
  for (int C = 0; C < Callers; ++C) {
    Threads.emplace_back([&, C] {
      for (int R = 0; R < Rounds; ++R) {
        std::vector<std::atomic<int>> Seen(Range);
        Pool.parallelFor(0, Range,
                         [&](size_t I) { ++Seen[I]; });
        for (int I = 0; I < Range; ++I)
          if (Seen[I].load() != 1)
            ++Failures;
        (void)C;
      }
    });
  }
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Failures.load(), 0);
}

TEST(ThreadPool, NestedParallelForCompletes) {
  // A parallelFor issued from inside a pool job must finish even when
  // every worker is already busy (the caller claims indices itself).
  ThreadPool Pool(1);
  std::atomic<int> Count{0};
  Pool.parallelFor(0, 4, [&](size_t) {
    Pool.parallelFor(0, 8, [&](size_t) { ++Count; });
  });
  EXPECT_EQ(Count.load(), 32);
}

TEST(AnnotationService, MatchesSingleProgramAnnotate) {
  NeuroVectorizer NV(testConfig());
  ASSERT_TRUE(NV.addTrainingProgram("dot", DotProduct));
  NV.train(128);

  const std::vector<AnnotationRequest> Requests = generatedRequests(16);
  std::vector<AnnotationResult> Results = NV.annotateBatch(Requests);
  ASSERT_EQ(Results.size(), Requests.size());
  for (size_t I = 0; I < Requests.size(); ++I) {
    ASSERT_TRUE(Results[I].Ok) << Results[I].Error;
    EXPECT_EQ(Results[I].Annotated, NV.annotate(Requests[I].Source))
        << Requests[I].Name;
  }
}

TEST(AnnotationService, CacheHitsAreCorrectAndCounted) {
  NeuroVectorizer NV(testConfig());
  AnnotationService &Service = NV.service();

  const AnnotationResult First = Service.annotateOne("dot", DotProduct);
  ASSERT_TRUE(First.Ok);
  EXPECT_EQ(First.CachedSites, 0);
  EXPECT_EQ(Service.stats().CacheMisses.load(), 1u);

  const AnnotationResult Second = Service.annotateOne("dot", DotProduct);
  ASSERT_TRUE(Second.Ok);
  EXPECT_EQ(Second.CachedSites, 1);
  EXPECT_EQ(Service.stats().CacheHits.load(), 1u);
  EXPECT_EQ(Second.Annotated, First.Annotated);
  ASSERT_EQ(Second.Plans.size(), First.Plans.size());
  EXPECT_EQ(Second.Plans[0], First.Plans[0]);
}

TEST(AnnotationService, DeduplicatesIdenticalLoopsWithinBatch) {
  NeuroVectorizer NV(testConfig());
  AnnotationService &Service = NV.service();

  std::vector<AnnotationRequest> Requests(10, {"dot", DotProduct});
  std::vector<AnnotationResult> Results = Service.annotateBatch(Requests);
  // Ten identical programs, one distinct loop: a single forward row, the
  // other nine sites served by intra-batch dedup.
  EXPECT_EQ(Service.stats().ForwardPasses.load(), 1u);
  EXPECT_EQ(Service.stats().LoopsPerForward.load(), 1u);
  EXPECT_EQ(Service.stats().CacheMisses.load(), 1u);
  EXPECT_EQ(Service.stats().DedupHits.load(), 9u);
  EXPECT_GT(Service.stats().hitRate(), 0.85);
  for (const AnnotationResult &Res : Results) {
    ASSERT_TRUE(Res.Ok);
    EXPECT_EQ(Res.Annotated, Results.front().Annotated);
  }
}

TEST(AnnotationService, RejectsBadProgramsWithoutPoisoningBatch) {
  NeuroVectorizer NV(testConfig());
  std::vector<AnnotationRequest> Requests = {
      {"good", DotProduct},
      {"broken", "int 3x;"},
      {"noloops", "int x; void f() { x = 1; }"},
  };
  std::vector<AnnotationResult> Results = NV.annotateBatch(Requests);
  EXPECT_TRUE(Results[0].Ok);
  EXPECT_FALSE(Results[1].Ok);
  EXPECT_NE(Results[1].Error.find("parse"), std::string::npos);
  EXPECT_FALSE(Results[2].Ok);
  EXPECT_NE(Results[2].Error.find("no vectorizable"), std::string::npos);
  EXPECT_EQ(NV.service().stats().ProgramsRejected.load(), 2u);
}

TEST(AnnotationService, PoolSizeNeverChangesResults) {
  NeuroVectorizer NV(testConfig());
  ASSERT_TRUE(NV.addTrainingProgram("dot", DotProduct));
  NV.train(128);
  const std::vector<AnnotationRequest> Requests = generatedRequests(32);

  std::vector<std::string> Reference;
  for (int Threads : {1, 2, 8}) {
    ServeConfig Serve;
    Serve.Threads = Threads;
    std::vector<AnnotationResult> Results =
        NV.service(Serve).annotateBatch(Requests);
    if (Reference.empty()) {
      for (const AnnotationResult &Res : Results) {
        ASSERT_TRUE(Res.Ok) << Res.Error;
        Reference.push_back(Res.Annotated);
      }
      continue;
    }
    for (size_t I = 0; I < Results.size(); ++I)
      EXPECT_EQ(Results[I].Annotated, Reference[I])
          << "threads=" << Threads << " request " << I;
  }
}

TEST(AnnotationService, ConcurrentAnnotateBatchStress) {
  // Several client threads hammer one shared service with overlapping
  // batches (shared model lock, shared cache, shared pool). Every result
  // must match the single-threaded reference — and with the per-call
  // completion latch, no caller can return while its own phase work is
  // still running (which would show up here as missing annotations).
  NeuroVectorizer NV(testConfig());
  ASSERT_TRUE(NV.addTrainingProgram("dot", DotProduct));
  NV.train(128);

  const std::vector<AnnotationRequest> Requests = generatedRequests(24);
  std::vector<std::string> Reference;
  for (const AnnotationRequest &Req : Requests)
    Reference.push_back(NV.annotate(Req.Source));

  ServeConfig Serve;
  Serve.Threads = 4;
  AnnotationService &Service = NV.service(Serve);

  constexpr int Clients = 4, Rounds = 8;
  std::atomic<int> Mismatches{0};
  std::vector<std::thread> Threads;
  for (int C = 0; C < Clients; ++C) {
    Threads.emplace_back([&, C] {
      // Each client rotates through a different slice so batches overlap
      // without being identical.
      for (int R = 0; R < Rounds; ++R) {
        std::vector<AnnotationRequest> Slice;
        for (size_t I = C % 3; I < Requests.size(); I += 2)
          Slice.push_back(Requests[I]);
        std::vector<AnnotationResult> Results =
            Service.annotateBatch(Slice);
        for (size_t I = 0; I < Slice.size(); ++I) {
          const size_t Orig = (C % 3) + 2 * I;
          if (!Results[I].Ok || Results[I].Annotated != Reference[Orig])
            ++Mismatches;
        }
      }
    });
  }
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Mismatches.load(), 0);
  EXPECT_GE(Service.stats().CacheHits.load(), 1u);
}

TEST(AnnotationService, InnerContextModelRoundTripServesEnvSidePlans) {
  TempModel File("serve_inner_ctx.nvm");

  // A doubly nested loop where inner- and outer-context embeddings truly
  // differ.
  const char *Nested =
      "float A[64][64]; float x[64]; float y[64];\n"
      "void mv() { for (int i = 0; i < 64; i++) { float s = 0;\n"
      "  for (int j = 0; j < 64; j++) { s += A[i][j] * x[j]; }\n"
      "  y[i] = s; } }";

  // Train with the inner-context ablation (§3.3) active.
  NeuroVectorizer Trained(testConfig(/*Seed=*/21));
  Trained.env().setInnerContextOnly(true);
  ASSERT_TRUE(Trained.addTrainingProgram("mv", Nested));
  Trained.train(128);
  ASSERT_TRUE(Trained.save(File.Path));

  // A fresh default (outer-context) instance must pick the setting up
  // from the model file alone.
  NeuroVectorizer Loaded(testConfig(/*Seed=*/22));
  ASSERT_FALSE(Loaded.env().innerContextOnly());
  std::string Error;
  ASSERT_TRUE(Loaded.load(File.Path, &Error)) << Error;
  EXPECT_TRUE(Loaded.env().innerContextOnly());
  EXPECT_TRUE(Loaded.service().innerContextOnly());

  // Env-side greedy plans (the training-side view of this model).
  const std::vector<VectorPlan> EnvPlans = Trained.plansFor(Nested);

  // Serve-side plans from the loaded model must match them exactly; with
  // the pre-fix extraction (always outer) they would be computed from an
  // embedding the model never saw.
  const AnnotationResult Served = Loaded.service().annotateOne("mv", Nested);
  ASSERT_TRUE(Served.Ok) << Served.Error;
  ASSERT_EQ(Served.Plans.size(), EnvPlans.size());
  for (size_t S = 0; S < EnvPlans.size(); ++S)
    EXPECT_EQ(Served.Plans[S], EnvPlans[S]) << "site " << S;

  // And the annotated output must agree with the training-side annotate().
  EXPECT_EQ(Served.Annotated, Trained.annotate(Nested));
}

TEST(AnnotationService, LoadedModelServesIdenticalAnnotations) {
  TempModel File("serve_e2e.nvm");

  NeuroVectorizer Trained(testConfig(/*Seed=*/7));
  ASSERT_TRUE(Trained.addTrainingProgram("dot", DotProduct));
  Trained.train(256);
  ASSERT_TRUE(Trained.save(File.Path));

  NeuroVectorizer Fresh(testConfig(/*Seed=*/8));
  std::string Error;
  ASSERT_TRUE(Fresh.load(File.Path, &Error)) << Error;

  const std::vector<AnnotationRequest> Requests = generatedRequests(24);
  std::vector<AnnotationResult> A = Trained.annotateBatch(Requests);
  std::vector<AnnotationResult> B = Fresh.annotateBatch(Requests);
  for (size_t I = 0; I < Requests.size(); ++I) {
    ASSERT_TRUE(A[I].Ok && B[I].Ok);
    EXPECT_EQ(A[I].Annotated, B[I].Annotated) << Requests[I].Name;
  }
}

TEST(AnnotationService, PerRequestMethodOverrideSelectsBackend) {
  NeuroVectorizer NV(testConfig());
  ASSERT_TRUE(NV.addTrainingProgram("dot", DotProduct));
  NV.train(128);
  NV.fitSupervised(/*MaxSamples=*/1);
  AnnotationService &Service = NV.service();

  // One batch, every backend: each request must be answered by exactly
  // the backend it names, matching the facade's single-program path.
  std::vector<AnnotationRequest> Requests = {
      {"rl", DotProduct, PredictMethod::RL},
      {"nns", DotProduct, PredictMethod::NNS},
      {"tree", DotProduct, PredictMethod::DecisionTree},
      {"brute", DotProduct, PredictMethod::BruteForce},
      {"default", DotProduct, std::nullopt}, // ServeConfig default = RL.
  };
  std::vector<AnnotationResult> Results = Service.annotateBatch(Requests);
  for (size_t I = 0; I < Requests.size(); ++I)
    ASSERT_TRUE(Results[I].Ok) << Results[I].Error;
  const PredictMethod Expect[] = {PredictMethod::RL, PredictMethod::NNS,
                                  PredictMethod::DecisionTree,
                                  PredictMethod::BruteForce,
                                  PredictMethod::RL};
  for (size_t I = 0; I < Requests.size(); ++I) {
    EXPECT_EQ(Results[I].Method, Expect[I]);
    ASSERT_EQ(Results[I].Plans.size(), 1u);
    EXPECT_EQ(Results[I].Plans[0], NV.plansFor(DotProduct, Expect[I])[0])
        << Requests[I].Name;
  }
  // The default-method request deduped against the explicit RL one.
  EXPECT_EQ(Results[4].Annotated, Results[0].Annotated);

  // Per-backend counters saw exactly their own traffic.
  const ServeStats &Stats = Service.stats();
  EXPECT_EQ(Stats.forMethod(PredictMethod::RL).Loops.load(), 2u);
  EXPECT_EQ(Stats.forMethod(PredictMethod::NNS).Loops.load(), 1u);
  EXPECT_EQ(Stats.forMethod(PredictMethod::DecisionTree).Loops.load(), 1u);
  EXPECT_EQ(Stats.forMethod(PredictMethod::BruteForce).Loops.load(), 1u);
  EXPECT_EQ(Stats.forMethod(PredictMethod::NNS).Misses.load(), 1u);
  EXPECT_EQ(Stats.methodTable().numRows(), 4u);
}

TEST(AnnotationService, BackendsNeverAnswerForEachOther) {
  NeuroVectorizer NV(testConfig());
  ASSERT_TRUE(NV.addTrainingProgram("dot", DotProduct));
  NV.train(128);
  NV.fitSupervised(/*MaxSamples=*/1);
  AnnotationService &Service = NV.service();

  // Warm the cache with the RL answer, then ask for brute force: the
  // method is part of the cache key, so the second request must compute
  // rather than hit.
  const AnnotationResult RL =
      Service.annotateOne("dot", DotProduct, PredictMethod::RL);
  ASSERT_TRUE(RL.Ok);
  const AnnotationResult BF =
      Service.annotateOne("dot", DotProduct, PredictMethod::BruteForce);
  ASSERT_TRUE(BF.Ok);
  EXPECT_EQ(BF.CachedSites, 0);
  EXPECT_EQ(Service.stats().forMethod(PredictMethod::BruteForce)
                .CacheHits.load(),
            0u);
  // And the brute-force answer itself is cached under its own key.
  const AnnotationResult BF2 =
      Service.annotateOne("dot", DotProduct, PredictMethod::BruteForce);
  EXPECT_EQ(BF2.CachedSites, 1);
  ASSERT_EQ(BF2.Plans.size(), 1u);
  EXPECT_EQ(BF2.Plans[0], BF.Plans[0]);
}

TEST(AnnotationService, UnfittedBackendDegradesDownTheLadder) {
  // Default config: the fallback ladder is on, so a request for an
  // unfitted supervised backend walks NNS -> tree (also unfitted) ->
  // baseline cost model and succeeds, flagged Degraded.
  NeuroVectorizer NV(testConfig());
  AnnotationService &Service = NV.service();
  const AnnotationResult Res =
      Service.annotateOne("dot", DotProduct, PredictMethod::NNS);
  EXPECT_TRUE(Res.Ok) << Res.Error;
  EXPECT_TRUE(Res.Degraded);
  EXPECT_EQ(Res.Method, PredictMethod::Baseline);
  EXPECT_EQ(Service.stats().DegradedRequests.load(), 1u);
  EXPECT_EQ(Service.stats().ProgramsRejected.load(), 0u);
  // A healthy backend answers undegraded.
  const AnnotationResult RL =
      Service.annotateOne("dot", DotProduct, PredictMethod::RL);
  EXPECT_TRUE(RL.Ok);
  EXPECT_FALSE(RL.Degraded);
  EXPECT_EQ(RL.Method, PredictMethod::RL);
}

TEST(AnnotationService, UnfittedBackendRejectsPolitelyWhenStrict) {
  // Fallback off restores the strict contract: unavailable backend ->
  // per-request error, never a silent ladder walk.
  NeuroVectorizer NV(testConfig());
  ServeConfig Strict;
  Strict.Fallback = false;
  AnnotationService &Service = NV.service(Strict);
  const AnnotationResult Res =
      Service.annotateOne("dot", DotProduct, PredictMethod::NNS);
  EXPECT_FALSE(Res.Ok);
  EXPECT_NE(Res.Error.find("not fitted"), std::string::npos) << Res.Error;
  EXPECT_EQ(Service.stats().ProgramsRejected.load(), 1u);
  // The rejection must not poison later, valid requests.
  const AnnotationResult RL =
      Service.annotateOne("dot", DotProduct, PredictMethod::RL);
  EXPECT_TRUE(RL.Ok);
}

TEST(AnnotationService, RefittingSupervisedBackendsInvalidatesPlanCache) {
  NeuroVectorizer NV(testConfig());
  ASSERT_TRUE(NV.addTrainingProgram("dot", DotProduct));
  NV.train(128);
  NV.fitSupervised(/*MaxSamples=*/1);
  AnnotationService &Service = NV.service();

  ASSERT_TRUE(Service.annotateOne("dot", DotProduct,
                                  PredictMethod::NNS).Ok);
  EXPECT_EQ(Service.cacheSize(), 1u);
  // Refitting replaces the backends; plans cached from the old fit must
  // not survive to answer for the new one.
  NV.fitSupervised(/*MaxSamples=*/1);
  EXPECT_EQ(Service.cacheSize(), 0u);
  const AnnotationResult After =
      Service.annotateOne("dot", DotProduct, PredictMethod::NNS);
  ASSERT_TRUE(After.Ok);
  EXPECT_EQ(After.CachedSites, 0);
}

TEST(AnnotationService, RandomBackendIsServedButNeverCached) {
  NeuroVectorizer NV(testConfig());
  AnnotationService &Service = NV.service();
  const size_t CacheBefore = Service.cacheSize();
  for (int I = 0; I < 4; ++I) {
    const AnnotationResult Res =
        Service.annotateOne("dot", DotProduct, PredictMethod::Random);
    ASSERT_TRUE(Res.Ok) << Res.Error;
    EXPECT_EQ(Res.CachedSites, 0);
  }
  // Random plans never enter the plan cache (two requests for the same
  // loop are two independent draws).
  EXPECT_EQ(Service.cacheSize(), CacheBefore);
  EXPECT_EQ(Service.stats().forMethod(PredictMethod::Random).Loops.load(),
            4u);
}

} // namespace

//===----------------------------------------------------------------------===//
// Int8 quantized serving (docs/quantization.md): plan-level equivalence
//===----------------------------------------------------------------------===//

TEST(Quantization, ServedPlansMatchFp32) {
  // The acceptance bar for the int8 path: on the eval-suite programs a
  // quantized service must pick the same plans as fp32 serving — the
  // quantization error stays below the policy's argmax margins.
  NeuroVectorizer NV(testConfig(/*Seed=*/21));
  ASSERT_TRUE(NV.addTrainingProgram("dot", DotProduct));
  NV.train(256);

  const std::vector<AnnotationRequest> Requests = generatedRequests(24);
  ServeConfig Fp32;
  Fp32.Threads = 2;
  NV.service(Fp32);
  const std::vector<AnnotationResult> Ref = NV.annotateBatch(Requests);

  ServeConfig Int8 = Fp32;
  Int8.Quantized = true;
  AnnotationService &Service = NV.service(Int8);
  EXPECT_TRUE(NV.embedder().isQuantized());
  EXPECT_TRUE(NV.policy().isQuantized());
  const std::vector<AnnotationResult> Quant = NV.annotateBatch(Requests);

  ASSERT_EQ(Ref.size(), Quant.size());
  for (size_t I = 0; I < Ref.size(); ++I) {
    ASSERT_TRUE(Ref[I].Ok && Quant[I].Ok) << Requests[I].Name;
    EXPECT_EQ(Ref[I].Plans, Quant[I].Plans) << Requests[I].Name;
    EXPECT_EQ(Ref[I].Annotated, Quant[I].Annotated) << Requests[I].Name;
  }
  EXPECT_GT(Service.stats().QuantizedBatches.load(), 0u);

  // Dropping back to an fp32 service clears the shadows again.
  NV.service(Fp32);
  EXPECT_FALSE(NV.embedder().isQuantized());
  EXPECT_FALSE(NV.policy().isQuantized());
}

TEST(Quantization, TrainingDropsShadowsAndRebuildsOnExit) {
  // Rollout sampling is an inference-shaped forward; if the int8 shadows
  // answered it, training would see quantized features. The owner drops
  // them for the duration of train() and re-quantizes from the updated
  // weights on exit — so serving after more training still matches a
  // from-scratch fp32 reference on the same weights.
  NeuroVectorizer NV(testConfig(/*Seed=*/22));
  ASSERT_TRUE(NV.addTrainingProgram("dot", DotProduct));
  NV.train(128);

  ServeConfig Int8;
  Int8.Threads = 2;
  Int8.Quantized = true;
  NV.service(Int8);
  EXPECT_TRUE(NV.policy().isQuantized());

  // Mirror run: identical seeds/steps, never quantized.
  NeuroVectorizer Mirror(testConfig(/*Seed=*/22));
  ASSERT_TRUE(Mirror.addTrainingProgram("dot", DotProduct));
  Mirror.train(128);

  NV.train(128);
  Mirror.train(128);
  // Shadows were rebuilt from the post-training weights.
  EXPECT_TRUE(NV.embedder().isQuantized());
  EXPECT_TRUE(NV.policy().isQuantized());

  const std::vector<AnnotationRequest> Requests = generatedRequests(12);
  const std::vector<AnnotationResult> A = NV.annotateBatch(Requests);
  const std::vector<AnnotationResult> B = Mirror.annotateBatch(Requests);
  for (size_t I = 0; I < Requests.size(); ++I) {
    ASSERT_TRUE(A[I].Ok && B[I].Ok);
    EXPECT_EQ(A[I].Plans, B[I].Plans) << Requests[I].Name;
  }
}

TEST(Quantization, LoadRebuildsShadowsFromLoadedWeights) {
  TempModel File("serve_quant_load.nvm");
  NeuroVectorizer Trained(testConfig(/*Seed=*/23));
  ASSERT_TRUE(Trained.addTrainingProgram("dot", DotProduct));
  Trained.train(256);
  ASSERT_TRUE(Trained.save(File.Path));

  // Quantized reference over the trained weights. Because the int8 path
  // is bit-exact (integer accumulation), a second quantized instance
  // serving the *same* weights must agree plan-for-plan — so any
  // disagreement below means the loaded instance is serving shadows of
  // the wrong (pre-load random init) weights.
  ServeConfig Int8;
  Int8.Threads = 2;
  Int8.Quantized = true;
  Trained.service(Int8);
  const std::vector<AnnotationRequest> Requests = generatedRequests(12);
  const std::vector<AnnotationResult> Ref = Trained.annotateBatch(Requests);

  NeuroVectorizer Fresh(testConfig(/*Seed=*/24));
  Fresh.service(Int8);
  std::string Error;
  ASSERT_TRUE(Fresh.load(File.Path, &Error)) << Error;
  EXPECT_TRUE(Fresh.policy().isQuantized());
  EXPECT_TRUE(Fresh.embedder().isQuantized());
  const std::vector<AnnotationResult> Loaded = Fresh.annotateBatch(Requests);
  for (size_t I = 0; I < Requests.size(); ++I) {
    ASSERT_TRUE(Ref[I].Ok && Loaded[I].Ok);
    EXPECT_EQ(Ref[I].Plans, Loaded[I].Plans) << Requests[I].Name;
    EXPECT_EQ(Ref[I].Annotated, Loaded[I].Annotated) << Requests[I].Name;
  }
}
