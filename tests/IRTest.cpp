//===- tests/IRTest.cpp - ConstEval/affine/dependence/lowering tests ------===//

#include "ir/AccessAnalysis.h"
#include "ir/ConstEval.h"
#include "ir/Dependence.h"
#include "ir/Lowering.h"
#include "lang/LoopExtractor.h"
#include "lang/Parser.h"

#include <gtest/gtest.h>

using namespace nv;

namespace {

/// Parses and lowers the first vectorization site of \p Source.
LoopSummary summarize(const std::string &Source, int HWMaxVF = 64) {
  std::string Error;
  std::optional<Program> P = parseSource(Source, &Error);
  EXPECT_TRUE(P.has_value()) << Error;
  static std::vector<std::unique_ptr<Program>> Keep; // Keep AST alive.
  Keep.push_back(std::make_unique<Program>(std::move(*P)));
  std::vector<LoopSite> Sites = extractLoops(*Keep.back());
  EXPECT_FALSE(Sites.empty());
  return lowerLoop(*Keep.back(), Sites[0], HWMaxVF);
}

TEST(ConstEval, LiteralArithmetic) {
  std::string Error;
  std::optional<Program> P = parseSource(
      "int a[8]; void f() { for (int i = 0; i < 512 / 2 - 1; i++) { a[0] = "
      "1; } }",
      &Error);
  ASSERT_TRUE(P.has_value()) << Error;
  std::vector<LoopSite> Sites = extractLoops(*P);
  ValueEnv Empty;
  EXPECT_EQ(tripCount(*Sites[0].Inner, Empty).value_or(-1), 255);
}

TEST(ConstEval, SymbolicBoundNeedsEnv) {
  std::string Error;
  std::optional<Program> P = parseSource(
      "int n = 100; int a[128]; void f() { for (int i = 0; i < n; i++) { "
      "a[0] = 1; } }",
      &Error);
  ASSERT_TRUE(P.has_value()) << Error;
  std::vector<LoopSite> Sites = extractLoops(*P);
  ValueEnv Empty;
  EXPECT_FALSE(tripCount(*Sites[0].Inner, Empty).has_value());
  ValueEnv Runtime = runtimeEnv(*P);
  EXPECT_EQ(tripCount(*Sites[0].Inner, Runtime).value_or(-1), 100);
}

TEST(ConstEval, LEConditionAndStep) {
  std::string Error;
  std::optional<Program> P = parseSource(
      "int a[64]; void f() { for (int i = 0; i <= 30; i += 3) { a[i] = 1; "
      "} }",
      &Error);
  ASSERT_TRUE(P.has_value()) << Error;
  std::vector<LoopSite> Sites = extractLoops(*P);
  ValueEnv Empty;
  EXPECT_EQ(tripCount(*Sites[0].Inner, Empty).value_or(-1), 11);
}

TEST(AccessAnalysis, SimpleAffine) {
  std::string Error;
  // b[2*i + 1]: coefficient 2, constant 1.
  std::optional<Program> P = parseSource(
      "float a[8]; float b[64]; void f() { for (int i = 0; i < 8; i++) { "
      "a[i] = b[2 * i + 1]; } }",
      &Error);
  ASSERT_TRUE(P.has_value()) << Error;
  std::vector<LoopSite> Sites = extractLoops(*P);
  LoopSummary S = lowerLoop(*P, Sites[0], 64);
  ASSERT_EQ(S.Accesses.size(), 2u);
  const MemAccess &Load = S.Accesses[0];
  EXPECT_EQ(Load.Array, "b");
  EXPECT_TRUE(Load.IsAffine);
  EXPECT_EQ(Load.InnerStride, 2);
  EXPECT_EQ(Load.Flat.Const, 1);
}

TEST(AccessAnalysis, TwoDimensionalFlattening) {
  std::string Error;
  // A[i][j] in a 32-wide array: flat = 32*i + j.
  std::optional<Program> P = parseSource(
      "float A[16][32]; void f() { for (int i = 0; i < 16; i++) { for "
      "(int j = 0; j < 32; j++) { A[i][j] = 0; } } }",
      &Error);
  ASSERT_TRUE(P.has_value()) << Error;
  std::vector<LoopSite> Sites = extractLoops(*P);
  LoopSummary S = lowerLoop(*P, Sites[0], 64);
  ASSERT_EQ(S.Accesses.size(), 1u);
  EXPECT_EQ(S.Accesses[0].Flat.coeffOf("i"), 32);
  EXPECT_EQ(S.Accesses[0].Flat.coeffOf("j"), 1);
  EXPECT_EQ(S.Accesses[0].InnerStride, 1);
}

TEST(AccessAnalysis, IndirectIsNonAffine) {
  LoopSummary S = summarize(
      "float d[64]; int idx[8]; float o[8]; void f() { for (int i = 0; i "
      "< 8; i++) { o[i] = d[idx[i]]; } }");
  bool SawNonAffine = false;
  for (const MemAccess &A : S.Accesses)
    if (A.Array == "d")
      SawNonAffine = !A.IsAffine;
  EXPECT_TRUE(SawNonAffine);
}

TEST(Dependence, NoStoreMeansFullWidth) {
  LoopSummary S = summarize(
      "float a[64]; float out; void f() { float s = 0; for (int i = 0; i "
      "< 64; i++) { s += a[i]; } out = s; }");
  EXPECT_EQ(S.MaxSafeVF, 64);
}

TEST(Dependence, FlowDistanceLimitsVF) {
  // a[i + 8] = f(a[i]): distance 8 -> VF capped at 8.
  LoopSummary S = summarize(
      "float a[72]; void f() { for (int i = 0; i < 64; i++) { a[i + 8] = "
      "a[i] * 2.0; } }");
  EXPECT_EQ(S.MaxSafeVF, 8);
}

TEST(Dependence, NonPow2DistanceRoundsDown) {
  LoopSummary S = summarize(
      "float a[72]; void f() { for (int i = 0; i < 64; i++) { a[i + 6] = "
      "a[i] + 1.0; } }");
  EXPECT_EQ(S.MaxSafeVF, 4); // floor_pow2(6).
}

TEST(Dependence, AntiDependenceIsSafe) {
  // a[i] = a[i+1]: loads read old values; any VF is fine.
  LoopSummary S = summarize(
      "float a[65]; void f() { for (int i = 0; i < 64; i++) { a[i] = a[i "
      "+ 1]; } }");
  EXPECT_EQ(S.MaxSafeVF, 64);
}

TEST(Dependence, SameIterationAccessIsSafe) {
  LoopSummary S = summarize(
      "float a[64]; void f() { for (int i = 0; i < 64; i++) { a[i] = a[i] "
      "+ 1.0; } }");
  EXPECT_EQ(S.MaxSafeVF, 64);
}

TEST(Dependence, NonAffineStoreBlocksVectorization) {
  LoopSummary S = summarize(
      "float a[64]; int idx[64]; void f() { for (int i = 0; i < 64; i++) "
      "{ a[idx[i]] = 1.0; } }");
  EXPECT_EQ(S.MaxSafeVF, 1);
}

TEST(Dependence, DifferentArraysNeverAlias) {
  LoopSummary S = summarize(
      "float a[64]; float b[64]; void f() { for (int i = 0; i < 64; i++) "
      "{ a[i] = b[i]; } }");
  EXPECT_EQ(S.MaxSafeVF, 64);
}

TEST(Dependence, FloorPow2) {
  EXPECT_EQ(floorPow2(0), 1);
  EXPECT_EQ(floorPow2(1), 1);
  EXPECT_EQ(floorPow2(2), 2);
  EXPECT_EQ(floorPow2(3), 2);
  EXPECT_EQ(floorPow2(64), 64);
  EXPECT_EQ(floorPow2(100), 64);
}

TEST(Lowering, DotProductShape) {
  LoopSummary S = summarize(
      "int vec[512]; int out; void f() { int sum = 0; for (int i = 0; i < "
      "512; i++) { sum += vec[i] * vec[i]; } out = sum; }");
  EXPECT_EQ(S.Reduction.Kind, ReductionKind::Sum);
  EXPECT_EQ(S.Reduction.Var, "sum");
  EXPECT_EQ(S.countOp(VROp::Load), 2);
  EXPECT_EQ(S.countOp(VROp::Mul), 1);
  EXPECT_EQ(S.countOp(VROp::Add), 1);
  EXPECT_EQ(S.CompileTrip, 512);
  EXPECT_EQ(S.RuntimeTrip, 512);
  // The reduction update is flagged for the latency model.
  bool SawReductionUpdate = false;
  for (const VecInst &I : S.Body)
    SawReductionUpdate |= I.ReductionUpdate;
  EXPECT_TRUE(SawReductionUpdate);
}

TEST(Lowering, ExplicitSumFormIsAReduction) {
  LoopSummary S = summarize(
      "float v[64]; float out; void f() { float s = 0; for (int i = 0; i "
      "< 64; i++) { s = s + v[i]; } out = s; }");
  EXPECT_EQ(S.Reduction.Kind, ReductionKind::Sum);
}

TEST(Lowering, MaxReductionViaCall) {
  LoopSummary S = summarize(
      "float v[64]; float out; void f() { float m = 0; for (int i = 0; i "
      "< 64; i++) { m = max(m, v[i]); } out = m; }");
  EXPECT_EQ(S.Reduction.Kind, ReductionKind::Max);
}

TEST(Lowering, ScalarCycleBlocksVectorization) {
  // t = a[i] + t * 3 is a genuine serial recurrence, not a reduction.
  LoopSummary S = summarize(
      "int a[64]; int out; void f() { int t = 0; for (int i = 0; i < 64; "
      "i++) { t = a[i] + t * 3; } out = t; }");
  EXPECT_EQ(S.MaxSafeVF, 1);
}

TEST(Lowering, PredicationDetected) {
  LoopSummary S = summarize(
      "int a[64]; int b[64]; void f() { for (int i = 0; i < 64; i++) { if "
      "(a[i] > 3) { b[i] = 1; } } }");
  EXPECT_TRUE(S.HasPredicate);
  // Stores under the branch are masked.
  bool SawPredicatedStore = false;
  for (const VecInst &I : S.Body)
    if (I.Op == VROp::Store)
      SawPredicatedStore |= I.Predicated;
  EXPECT_TRUE(SawPredicatedStore);
}

TEST(Lowering, TernaryEmitsSelect) {
  LoopSummary S = summarize(
      "int a[64]; int b[64]; void f() { for (int i = 0; i < 64; i++) { "
      "b[i] = (a[i] > 2 ? 9 : 0); } }");
  EXPECT_GE(S.countOp(VROp::Select), 1);
  EXPECT_GE(S.countOp(VROp::Cmp), 1);
}

TEST(Lowering, CastsAndTypeExtremes) {
  LoopSummary S = summarize(
      "short s[64]; int d[64]; void f() { for (int i = 0; i < 64; i++) { "
      "d[i] = (int) (s[i]); } }");
  EXPECT_GE(S.countOp(VROp::Cast), 1);
  EXPECT_EQ(S.NarrowestType, ScalarType::Short);
  EXPECT_EQ(S.WidestType, ScalarType::Int);
}

TEST(Lowering, UnknownCallBlocksVectorization) {
  LoopSummary S = summarize(
      "float a[64]; void f() { for (int i = 0; i < 64; i++) { a[i] = "
      "mystery(a[i]); } }");
  EXPECT_TRUE(S.HasUnknownCall);
  EXPECT_EQ(S.MaxSafeVF, 1);
}

TEST(Lowering, NestedLoopOuterIterations) {
  LoopSummary S = summarize(
      "float A[32][16]; void f() { for (int i = 0; i < 32; i++) { for "
      "(int j = 0; j < 16; j++) { A[i][j] = 1.0; } } }");
  EXPECT_EQ(S.Depth, 2);
  EXPECT_EQ(S.OuterIterations, 32);
  EXPECT_EQ(S.RuntimeTrip, 16);
}

} // namespace
