//===- tests/RLTest.cpp - environment, policy, PPO tests ------------------===//

#include "rl/PPO.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

using namespace nv;

namespace {

const char *DotProduct =
    "int vec[512]; int out; void f() { int sum = 0; for (int i = 0; i < "
    "512; i++) { sum += vec[i] * vec[i]; } out = sum; }";

TEST(Env, RejectsBadAndLooplessPrograms) {
  VectorizationEnv Env{SimCompiler(), PathContextConfig()};
  EXPECT_FALSE(Env.addProgram("broken", "int 3x;"));
  EXPECT_FALSE(Env.addProgram("noloops", "int x; void f() { x = 1; }"));
  EXPECT_TRUE(Env.addProgram("ok", DotProduct));
  EXPECT_EQ(Env.size(), 1u);
}

TEST(Env, BaselineActionGivesZeroReward) {
  VectorizationEnv Env{SimCompiler(), PathContextConfig()};
  ASSERT_TRUE(Env.addProgram("dot", DotProduct));
  // The baseline cost model picks (4, 2) for this kernel (Fig 1); taking
  // exactly that action must score (t_base - t)/t_base == 0.
  EXPECT_NEAR(Env.step(0, {{4, 2}}), 0.0, 1e-12);
}

TEST(Env, BetterActionPositiveWorseNegative) {
  VectorizationEnv Env{SimCompiler(), PathContextConfig()};
  ASSERT_TRUE(Env.addProgram("dot", DotProduct));
  EXPECT_GT(Env.step(0, {{16, 4}}), 0.0);
  EXPECT_LT(Env.step(0, {{1, 1}}), 0.0);
}

TEST(Env, RewardIsClippedAtPenalty) {
  VectorizationEnv Env{SimCompiler(), PathContextConfig()};
  ASSERT_TRUE(Env.addProgram("dot", DotProduct));
  for (int VF : {1, 2, 4, 8, 16, 32, 64})
    for (int IF : {1, 2, 4, 8, 16})
      EXPECT_GE(Env.step(0, {{VF, IF}}), VectorizationEnv::TimeoutPenalty);
}

TEST(Env, ContextsExtractedPerSite) {
  VectorizationEnv Env{SimCompiler(), PathContextConfig()};
  ASSERT_TRUE(Env.addProgram("two", R"(
    float a[64]; float b[64];
    void f() {
      for (int i = 0; i < 64; i++) { a[i] = 1.0; }
      for (int i = 0; i < 64; i++) { b[i] = 2.0; }
    })"));
  EXPECT_EQ(Env.sample(0).Sites.size(), 2u);
  EXPECT_EQ(Env.sample(0).Contexts.size(), 2u);
  EXPECT_FALSE(Env.sample(0).Contexts[0].empty());
}

TEST(Policy, SampleAndGreedyStayInRange) {
  RNG R(1);
  Policy P(ActionSpaceKind::Discrete, 8, {16, 16}, 7, 5, R);
  Matrix X(4, 8);
  X.initGaussian(R, 1.0);
  P.forward(X);
  for (int Row = 0; Row < 4; ++Row) {
    ActionRecord A = P.sampleAction(Row, R);
    EXPECT_GE(A.VFIdx, 0);
    EXPECT_LT(A.VFIdx, 7);
    EXPECT_GE(A.IFIdx, 0);
    EXPECT_LT(A.IFIdx, 5);
    EXPECT_LE(A.LogProb, 0.0);
    ActionRecord G = P.greedyAction(Row);
    EXPECT_GE(G.VFIdx, 0);
    EXPECT_LT(G.VFIdx, 7);
  }
}

TEST(Policy, LogProbConsistentWithSampling) {
  RNG R(2);
  Policy P(ActionSpaceKind::Discrete, 4, {8}, 7, 5, R);
  Matrix X(1, 4);
  X.initGaussian(R, 1.0);
  P.forward(X);
  ActionRecord A = P.sampleAction(0, R);
  EXPECT_NEAR(A.LogProb, P.logProb(0, A), 1e-12);
}

TEST(Policy, ContinuousVariantsRoundToActions) {
  RNG R(3);
  for (ActionSpaceKind Kind :
       {ActionSpaceKind::Continuous1, ActionSpaceKind::Continuous2}) {
    Policy P(Kind, 4, {8}, 7, 5, R);
    Matrix X(1, 4);
    X.initGaussian(R, 1.0);
    P.forward(X);
    for (int I = 0; I < 50; ++I) {
      ActionRecord A = P.sampleAction(0, R);
      EXPECT_GE(A.VFIdx, 0);
      EXPECT_LT(A.VFIdx, 7);
      EXPECT_GE(A.IFIdx, 0);
      EXPECT_LT(A.IFIdx, 5);
      EXPECT_TRUE(std::isfinite(A.LogProb));
    }
  }
}

TEST(Policy, ToPlanMapsIndicesToFactors) {
  RNG R(4);
  TargetInfo TI;
  Policy P(ActionSpaceKind::Discrete, 4, {8}, 7, 5, R);
  ActionRecord A;
  A.VFIdx = 3; // 2^3 = 8.
  A.IFIdx = 2; // 2^2 = 4.
  VectorPlan Plan = P.toPlan(A, TI);
  EXPECT_EQ(Plan.VF, 8);
  EXPECT_EQ(Plan.IF, 4);
}

TEST(Policy, EntropyDecreasesWhenLogitsSharpen) {
  RNG R(5);
  Policy P(ActionSpaceKind::Discrete, 4, {8}, 7, 5, R);
  Matrix X(1, 4, 0.5);
  P.forward(X);
  const double H0 = P.entropy(0);
  // Push one action's logits up by hand through the head bias.
  for (Param *Q : P.params())
    ;
  // Indirect check instead: a fresh policy starts near-uniform.
  EXPECT_NEAR(H0, std::log(7.0) + std::log(5.0), 0.35);
}

TEST(PPO, ConfigValidationRejectsBadValues) {
  EXPECT_NO_THROW(PPOConfig().validate());

  auto reject = [](void (*Mutate)(PPOConfig &)) {
    PPOConfig Config;
    Mutate(Config);
    EXPECT_THROW(Config.validate(), std::invalid_argument);
  };
  reject([](PPOConfig &C) { C.BatchSize = 0; });
  reject([](PPOConfig &C) { C.BatchSize = -5; });
  reject([](PPOConfig &C) { C.MiniBatchSize = 0; });
  reject([](PPOConfig &C) {
    C.BatchSize = 64;
    C.MiniBatchSize = 128;
  });
  reject([](PPOConfig &C) { C.Epochs = 0; });
  reject([](PPOConfig &C) { C.ClipEps = 0.0; });
  reject([](PPOConfig &C) { C.ClipEps = -0.3; });
  reject([](PPOConfig &C) { C.LearningRate = 0.0; });
  reject([](PPOConfig &C) { C.MaxGradNorm = 0.0; });
  reject([](PPOConfig &C) { C.EntropyCoef = -0.1; });
}

TEST(PPO, RunnerConstructionValidatesConfig) {
  VectorizationEnv Env{SimCompiler(), PathContextConfig()};
  ASSERT_TRUE(Env.addProgram("dot", DotProduct));
  RNG R(13);
  Code2VecConfig CC;
  Code2Vec Embedder(CC, R);
  Policy Pol(ActionSpaceKind::Discrete, CC.CodeDim, {16}, 7, 5, R);
  PPOConfig Config;
  Config.BatchSize = 32; // Default MiniBatchSize of 128 now exceeds it.
  EXPECT_THROW(PPORunner(Env, Embedder, Pol, Config, 13),
               std::invalid_argument);
  Config.MiniBatchSize = 32;
  EXPECT_NO_THROW(PPORunner(Env, Embedder, Pol, Config, 13));
}

TEST(PPO, LearnsSingleStateBandit) {
  // One program, tabular-like setting: PPO must find a better-than-
  // baseline factor assignment quickly.
  VectorizationEnv Env{SimCompiler(), PathContextConfig()};
  ASSERT_TRUE(Env.addProgram("dot", DotProduct));
  RNG R(7);
  Code2VecConfig CC;
  CC.CodeDim = 16;
  CC.TokenDim = 8;
  CC.PathDim = 8;
  Code2Vec Embedder(CC, R);
  Policy Pol(ActionSpaceKind::Discrete, CC.CodeDim, {32, 32}, 7, 5, R);
  PPOConfig Config;
  Config.BatchSize = 64;
  Config.MiniBatchSize = 32;
  Config.LearningRate = 3e-3;
  PPORunner Runner(Env, Embedder, Pol, Config, 7);
  Runner.train(2000);
  const double GreedyReward = Env.step(0, Runner.predictSample(0));
  EXPECT_GT(GreedyReward, 0.1); // Clearly better than the baseline.
}

TEST(PPO, RewardCurveImproves) {
  VectorizationEnv Env{SimCompiler(), PathContextConfig()};
  ASSERT_TRUE(Env.addProgram("dot", DotProduct));
  ASSERT_TRUE(Env.addProgram("fill", R"(
    float a[2048]; void f() { for (int i = 0; i < 2048; i++) { a[i] = 1.0; } })"));
  RNG R(9);
  Code2VecConfig CC;
  CC.CodeDim = 16;
  CC.TokenDim = 8;
  CC.PathDim = 8;
  Code2Vec Embedder(CC, R);
  Policy Pol(ActionSpaceKind::Discrete, CC.CodeDim, {32, 32}, 7, 5, R);
  PPOConfig Config;
  Config.BatchSize = 64;
  Config.MiniBatchSize = 32;
  Config.LearningRate = 3e-3;
  PPORunner Runner(Env, Embedder, Pol, Config, 9);
  TrainStats Stats = Runner.train(1600);
  EXPECT_EQ(Stats.Steps, 1600);
  EXPECT_GT(Stats.RewardMean.size(), 10u);
  EXPECT_GT(Stats.FinalRewardMean, -1.0); // Clearly above random (-2ish).
}

TEST(PPO, PredictReturnsLegalFactors) {
  VectorizationEnv Env{SimCompiler(), PathContextConfig()};
  ASSERT_TRUE(Env.addProgram("dot", DotProduct));
  RNG R(11);
  Code2VecConfig CC;
  Code2Vec Embedder(CC, R);
  Policy Pol(ActionSpaceKind::Discrete, CC.CodeDim, {64, 64}, 7, 5, R);
  PPOConfig Config;
  Config.BatchSize = 32;
  Config.MiniBatchSize = 32;
  PPORunner Runner(Env, Embedder, Pol, Config, 11);
  std::vector<VectorPlan> Plans = Runner.predictSample(0);
  ASSERT_EQ(Plans.size(), 1u);
  EXPECT_GE(Plans[0].VF, 1);
  EXPECT_LE(Plans[0].VF, 64);
  EXPECT_GE(Plans[0].IF, 1);
  EXPECT_LE(Plans[0].IF, 16);
}

} // namespace
