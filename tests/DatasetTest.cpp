//===- tests/DatasetTest.cpp - generator and suite property tests ---------===//
//
// Property-style checks over the synthetic generator (every generated
// program must parse, contain loops, lower cleanly, and run on the
// simulator) and over the fixed suites.
//
//===----------------------------------------------------------------------===//

#include "dataset/LoopGenerator.h"
#include "dataset/Suites.h"
#include "ir/Lowering.h"
#include "lang/LoopExtractor.h"
#include "lang/Parser.h"
#include "lang/PrettyPrinter.h"
#include "rl/Env.h"
#include "sim/Compiler.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace nv;

namespace {

//===----------------------------------------------------------------------===//
// Parameterized sweep over generator templates.
//===----------------------------------------------------------------------===//

class GeneratorTemplateTest : public ::testing::TestWithParam<int> {};

TEST_P(GeneratorTemplateTest, ProgramsParseAndLower) {
  LoopGenerator Gen(1000 + GetParam());
  for (int I = 0; I < 8; ++I) {
    GeneratedLoop L = Gen.generate(GetParam());
    std::string Error;
    std::optional<Program> P = parseSource(L.Source, &Error);
    ASSERT_TRUE(P.has_value()) << L.Name << ": " << Error << "\n"
                               << L.Source;
    std::vector<LoopSite> Sites = extractLoops(*P);
    ASSERT_FALSE(Sites.empty()) << L.Source;
    for (const LoopSite &Site : Sites) {
      LoopSummary S = lowerLoop(*P, Site, 64);
      EXPECT_GE(S.MaxSafeVF, 1);
      EXPECT_GT(S.RuntimeTrip, 0) << L.Source;
      EXPECT_FALSE(S.Body.empty()) << L.Source;
    }
  }
}

TEST_P(GeneratorTemplateTest, ProgramsRunOnSimulator) {
  LoopGenerator Gen(2000 + GetParam());
  SimCompiler C;
  for (int I = 0; I < 4; ++I) {
    GeneratedLoop L = Gen.generate(GetParam());
    std::optional<Program> P = parseSource(L.Source);
    ASSERT_TRUE(P.has_value());
    CompileResult R = C.compileBaseline(*P);
    EXPECT_GT(R.ExecutionCycles, 0.0) << L.Source;
    EXPECT_GT(R.CompileCycles, 0.0);
  }
}

TEST_P(GeneratorTemplateTest, PrintedProgramsRoundTrip) {
  LoopGenerator Gen(3000 + GetParam());
  GeneratedLoop L = Gen.generate(GetParam());
  std::string Error;
  std::optional<Program> P1 = parseSource(L.Source, &Error);
  ASSERT_TRUE(P1.has_value()) << Error;
  const std::string Printed = printProgram(*P1);
  std::optional<Program> P2 = parseSource(Printed, &Error);
  ASSERT_TRUE(P2.has_value()) << Error << "\n" << Printed;
  EXPECT_EQ(Printed, printProgram(*P2));
}

TEST_P(GeneratorTemplateTest, ProgramsYieldVectorizableSites) {
  // Every template must produce programs the RL environment accepts: they
  // parse and expose at least one vectorization site with path contexts.
  LoopGenerator Gen(4000 + GetParam());
  VectorizationEnv Env{SimCompiler(), PathContextConfig()};
  for (int I = 0; I < 4; ++I) {
    GeneratedLoop L = Gen.generate(GetParam());
    ASSERT_TRUE(Env.addProgram(L.Name, L.Source)) << L.Source;
    const EnvSample &Sample = Env.sample(Env.size() - 1);
    EXPECT_GE(Sample.Sites.size(), 1u) << L.Source;
    EXPECT_EQ(Sample.Contexts.size(), Sample.Sites.size());
    EXPECT_GT(Sample.BaselineCycles, 0.0);
  }
}

TEST_P(GeneratorTemplateTest, DeterministicPerSeedAndTemplate) {
  LoopGenerator A(5000 + GetParam()), B(5000 + GetParam());
  for (int I = 0; I < 6; ++I) {
    GeneratedLoop LA = A.generate(GetParam());
    GeneratedLoop LB = B.generate(GetParam());
    EXPECT_EQ(LA.Name, LB.Name);
    EXPECT_EQ(LA.Source, LB.Source);
    EXPECT_EQ(LA.Template, GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(AllTemplates, GeneratorTemplateTest,
                         ::testing::Range(0, LoopGenerator::NumTemplates));

TEST(Generator, ManyProgramsAreDistinct) {
  LoopGenerator Gen(5);
  std::vector<GeneratedLoop> Loops = Gen.generateMany(100);
  int Distinct = 0;
  for (size_t I = 1; I < Loops.size(); ++I)
    Distinct += Loops[I].Source != Loops[0].Source;
  EXPECT_GT(Distinct, 95);
}

TEST(Generator, DeterministicForSeed) {
  LoopGenerator A(99), B(99);
  for (int I = 0; I < 20; ++I)
    EXPECT_EQ(A.generate().Source, B.generate().Source);
}

//===----------------------------------------------------------------------===//
// Fixed suites.
//===----------------------------------------------------------------------===//

struct SuiteCase {
  const char *Name;
  std::vector<NamedProgram> (*Get)();
  size_t ExpectedCount;
};

class SuiteTest : public ::testing::TestWithParam<SuiteCase> {};

TEST_P(SuiteTest, AllProgramsLoadIntoTheEnvironment) {
  VectorizationEnv Env{SimCompiler(), PathContextConfig()};
  for (const NamedProgram &P : GetParam().Get())
    EXPECT_TRUE(Env.addProgram(P.Name, P.Source)) << P.Name;
  EXPECT_EQ(Env.size(), GetParam().ExpectedCount);
}

INSTANTIATE_TEST_SUITE_P(
    AllSuites, SuiteTest,
    ::testing::Values(
        SuiteCase{"vectorizer", &vectorizerTestSuite, 15},
        SuiteCase{"evaluation", &evaluationBenchmarks, 12},
        SuiteCase{"polybench", &polyBenchSuite, 6},
        SuiteCase{"mibench", &miBenchSuite, 6}),
    [](const ::testing::TestParamInfo<SuiteCase> &Info) {
      return Info.param.Name;
    });

TEST(Suites, MiBenchIsMostlyNotVectorizable) {
  // The defining property of Fig 9's workloads: the dominant loops have
  // MaxSafeVF == 1 (serial recurrences / unknown calls).
  for (const NamedProgram &B : miBenchSuite()) {
    std::optional<Program> P = parseSource(B.Source);
    ASSERT_TRUE(P.has_value()) << B.Name;
    std::vector<LoopSite> Sites = extractLoops(*P);
    bool HasSerialLoop = false;
    for (const LoopSite &Site : Sites)
      HasSerialLoop |= lowerLoop(*P, Site, 64).MaxSafeVF == 1;
    EXPECT_TRUE(HasSerialLoop) << B.Name;
  }
}

TEST(Suites, PolyBenchHasInterchangeHeadroom) {
  // At least atax/bicg/mvt contain a column-major phase Polly can fix.
  int WithStridedPhase = 0;
  for (const NamedProgram &B : polyBenchSuite()) {
    std::optional<Program> P = parseSource(B.Source);
    ASSERT_TRUE(P.has_value()) << B.Name;
    std::vector<LoopSite> Sites = extractLoops(*P);
    for (const LoopSite &Site : Sites) {
      LoopSummary S = lowerLoop(*P, Site, 64);
      for (const MemAccess &A : S.Accesses)
        if (A.IsAffine && A.InnerStride > 1) {
          ++WithStridedPhase;
          break;
        }
    }
  }
  EXPECT_GE(WithStridedPhase, 3);
}

//===----------------------------------------------------------------------===//
// Simulator invariants swept over the whole action grid (property test).
//===----------------------------------------------------------------------===//

class ActionGridTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ActionGridTest, SimulatorIsFiniteAndPositiveEverywhere) {
  auto [VF, IF] = GetParam();
  LoopGenerator Gen(77);
  SimCompiler C;
  for (int I = 0; I < LoopGenerator::NumTemplates; ++I) {
    GeneratedLoop L = Gen.generate(I);
    std::optional<Program> P = parseSource(L.Source);
    ASSERT_TRUE(P.has_value());
    SimCompiler::Precompiled Pre = C.precompile(*P);
    std::vector<VectorPlan> Plans(Pre.Summaries.size(),
                                  VectorPlan{VF, IF});
    bool TimedOut = false;
    const double Cycles = C.runPrecompiled(Pre, Plans, TimedOut);
    EXPECT_TRUE(std::isfinite(Cycles)) << L.Source;
    EXPECT_GT(Cycles, 0.0) << L.Source;
  }
}

TEST_P(ActionGridTest, LegalizationAlwaysWithinBounds) {
  auto [VF, IF] = GetParam();
  LoopGenerator Gen(78);
  SimCompiler C;
  for (int I = 0; I < LoopGenerator::NumTemplates; ++I) {
    GeneratedLoop L = Gen.generate(I);
    std::optional<Program> P = parseSource(L.Source);
    ASSERT_TRUE(P.has_value());
    std::vector<LoopSite> Sites = extractLoops(*P);
    for (const LoopSite &Site : Sites) {
      LoopSummary S = lowerLoop(*P, Site, 64);
      VectorPlan Legal = C.legalize(S, {VF, IF});
      EXPECT_GE(Legal.VF, 1);
      EXPECT_LE(Legal.VF, S.MaxSafeVF);
      EXPECT_GE(Legal.IF, 1);
      EXPECT_LE(Legal.IF, 16);
      // Powers of two only (Eq. 3).
      EXPECT_EQ(Legal.VF & (Legal.VF - 1), 0);
      EXPECT_EQ(Legal.IF & (Legal.IF - 1), 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    FullGrid, ActionGridTest,
    ::testing::Combine(::testing::Values(1, 2, 4, 8, 16, 32, 64),
                       ::testing::Values(1, 2, 4, 8, 16)));

} // namespace
