//===- tests/SimTest.cpp - cost model, machine, compiler tests ------------===//

#include "ir/Lowering.h"
#include "lang/LoopExtractor.h"
#include "lang/Parser.h"
#include "sim/Compiler.h"
#include "target/CostModel.h"

#include <gtest/gtest.h>

using namespace nv;

namespace {

struct Loaded {
  std::unique_ptr<Program> P;
  std::vector<LoopSite> Sites;
  LoopSummary Summary;
};

Loaded load(const std::string &Source) {
  std::string Error;
  std::optional<Program> Parsed = parseSource(Source, &Error);
  EXPECT_TRUE(Parsed.has_value()) << Error;
  Loaded L;
  L.P = std::make_unique<Program>(std::move(*Parsed));
  L.Sites = extractLoops(*L.P);
  EXPECT_FALSE(L.Sites.empty());
  L.Summary = lowerLoop(*L.P, L.Sites[0], 64);
  return L;
}

const char *DotProduct =
    "int vec[512]; int out; void f() { int sum = 0; for (int i = 0; i < "
    "512; i++) { sum += vec[i] * vec[i]; } out = sum; }";

TEST(CostModel, DotProductMatchesPaperBaseline) {
  // Paper Fig 1: "The best VF and IF corresponding to the baseline cost
  // model are (VF = 4, IF = 2)".
  Loaded L = load(DotProduct);
  BaselineCostModel Model{TargetInfo()};
  VectorPlan Plan = Model.choose(L.Summary);
  EXPECT_EQ(Plan.VF, 4);
  EXPECT_EQ(Plan.IF, 2);
}

TEST(CostModel, LegacyWidthCapsVF) {
  // Doubles: 128-bit thinking allows at most VF 2.
  Loaded L = load("double a[256]; double b[256]; void f() { for (int i = "
                  "0; i < 256; i++) { b[i] = a[i] + 1.0; } }");
  BaselineCostModel Model{TargetInfo()};
  EXPECT_LE(Model.choose(L.Summary).VF, 2);
}

TEST(CostModel, RefusesStridedLoops) {
  // The legacy model scalarizes strided accesses -> stays scalar.
  Loaded L = load("float a[64]; float b[128]; void f() { for (int i = 0; "
                  "i < 64; i++) { a[i] = b[2 * i]; } }");
  BaselineCostModel Model{TargetInfo()};
  EXPECT_EQ(Model.choose(L.Summary).VF, 1);
}

TEST(CostModel, RefusesTinyTripCounts) {
  Loaded L = load("float a[8]; void f() { for (int i = 0; i < 8; i++) { "
                  "a[i] = 1.0; } }");
  BaselineCostModel Model{TargetInfo()};
  EXPECT_EQ(Model.choose(L.Summary).VF, 1);
}

TEST(CostModel, CostPerLaneDropsWithVF) {
  Loaded L = load("float a[1024]; float b[1024]; void f() { for (int i = "
                  "0; i < 1024; i++) { b[i] = a[i] * 2.0; } }");
  BaselineCostModel Model{TargetInfo()};
  EXPECT_LT(Model.costPerLane(L.Summary, 4),
            Model.costPerLane(L.Summary, 1));
}

TEST(Machine, MoreLanesNeverSlowerOnCleanKernel) {
  // On a simple contiguous kernel, VF 8 beats VF 1.
  Loaded L = load("float a[4096]; float b[4096]; void f() { for (int i = "
                  "0; i < 4096; i++) { b[i] = a[i] + 1.0; } }");
  Machine M;
  EXPECT_LT(M.loopCycles(L.Summary, 8, 2), M.loopCycles(L.Summary, 1, 1));
}

TEST(Machine, InterleavingHelpsReductions) {
  // The accumulator chain limits IF=1; independent accumulators help.
  Loaded L = load(DotProduct);
  Machine M;
  EXPECT_LT(M.loopCycles(L.Summary, 8, 4), M.loopCycles(L.Summary, 8, 1));
}

TEST(Machine, ExtremeFactorsSpill) {
  // (64, 16) blows the register file on a reduction: worse than (16, 4).
  Loaded L = load(DotProduct);
  Machine M;
  EXPECT_GT(M.loopCycles(L.Summary, 64, 16),
            M.loopCycles(L.Summary, 16, 4));
}

TEST(Machine, GathersCostMoreThanContiguous) {
  Loaded Contig =
      load("float a[4096]; float b[4096]; void f() { for (int i = 0; i < "
           "2048; i++) { b[i] = a[i]; } }");
  Loaded Strided =
      load("float a[8192]; float b[4096]; void f() { for (int i = 0; i < "
           "2048; i++) { b[i] = a[4 * i]; } }");
  Machine M;
  EXPECT_GT(M.loopCycles(Strided.Summary, 16, 2),
            M.loopCycles(Contig.Summary, 16, 2));
}

TEST(Machine, FootprintDrivesLineCost) {
  Machine M;
  EXPECT_LT(M.lineCost(16 * 1024), M.lineCost(256 * 1024));
  EXPECT_LT(M.lineCost(256 * 1024), M.lineCost(64 * 1024 * 1024));
}

TEST(Machine, RemainderIterationsAccounted) {
  // Trip 100 with chunk 64 leaves 36 scalar iterations.
  Loaded L = load("float a[128]; void f() { for (int i = 0; i < 100; i++) "
                  "{ a[i] = 1.0; } }");
  Machine M;
  LoopTiming T = M.timeLoop(L.Summary, 16, 4);
  EXPECT_EQ(T.Chunks, 1);
  EXPECT_EQ(T.RemainderIters, 36);
  EXPECT_GT(T.RemainderCycles, 0.0);
}

TEST(Machine, ZeroTripLoopCostsOnlySetup) {
  Loaded L = load("float a[8]; void f() { for (int i = 0; i < 0; i++) { "
                  "a[i] = 1.0; } }");
  Machine M;
  EXPECT_LE(M.loopCycles(L.Summary, 8, 2), M.config().LoopSetupCycles + 1);
}

TEST(Compiler, PragmaHonoredWhenLegal) {
  std::string Error;
  std::optional<Program> P = parseSource(
      "float a[256]; void f() { #pragma clang loop vectorize_width(16) "
      "interleave_count(4)\n for (int i = 0; i < 256; i++) { a[i] = 1.0; "
      "} }",
      &Error);
  ASSERT_TRUE(P.has_value()) << Error;
  SimCompiler C;
  CompileResult R = C.compileAndRun(*P);
  ASSERT_EQ(R.Loops.size(), 1u);
  EXPECT_TRUE(R.Loops[0].FromPragma);
  EXPECT_EQ(R.Loops[0].Effective.VF, 16);
  EXPECT_EQ(R.Loops[0].Effective.IF, 4);
}

TEST(Compiler, IllegalPragmaIsClamped) {
  // Paper: "if the agent accidentally injected bad pragmas, the compiler
  // will ignore it". Dependence distance 4 clamps VF 64 -> 4.
  std::string Error;
  std::optional<Program> P = parseSource(
      "float a[260]; void f() { #pragma clang loop vectorize_width(64) "
      "interleave_count(2)\n for (int i = 0; i < 256; i++) { a[i + 4] = "
      "a[i]; } }",
      &Error);
  ASSERT_TRUE(P.has_value()) << Error;
  SimCompiler C;
  CompileResult R = C.compileAndRun(*P);
  ASSERT_EQ(R.Loops.size(), 1u);
  EXPECT_EQ(R.Loops[0].Requested.VF, 64);
  EXPECT_EQ(R.Loops[0].Effective.VF, 4);
}

TEST(Compiler, CompileTimeGrowsWithFactors) {
  Loaded L = load(DotProduct);
  SimCompiler C;
  EXPECT_GT(C.loopCompileCycles(L.Summary, {64, 16}),
            C.loopCompileCycles(L.Summary, {4, 2}));
}

TEST(Compiler, PrecompiledMatchesFullPipeline) {
  std::string Error;
  std::optional<Program> P = parseSource(DotProduct, &Error);
  ASSERT_TRUE(P.has_value()) << Error;
  SimCompiler C;
  SimCompiler::Precompiled Pre = C.precompile(*P);

  std::vector<LoopSite> Sites = extractLoops(*P);
  injectPragma(Sites[0], {16, 4});
  CompileResult Full = C.compileAndRun(*P);

  bool TimedOut = false;
  const double Fast = C.runPrecompiled(Pre, {{16, 4}}, TimedOut);
  EXPECT_DOUBLE_EQ(Fast, Full.ExecutionCycles);
  EXPECT_EQ(TimedOut, Full.CompileTimedOut);
}

TEST(Compiler, BaselineIgnoresPragmas) {
  std::string Error;
  std::optional<Program> P = parseSource(
      "float a[256]; void f() { #pragma clang loop vectorize_width(32) "
      "interleave_count(8)\n for (int i = 0; i < 256; i++) { a[i] = 1.0; "
      "} }",
      &Error);
  ASSERT_TRUE(P.has_value()) << Error;
  SimCompiler C;
  CompileResult R = C.compileBaseline(*P);
  EXPECT_FALSE(R.Loops[0].FromPragma);
  EXPECT_NE(R.Loops[0].Effective.VF, 32);
}

} // namespace
