//===- tests/LegalityTest.cpp - Loop legality analysis tests --------------===//
//
// The legality framework end to end: access classification goldens, the
// dependence-distance matrix checked against a brute-force iteration-space
// oracle across every LoopGenerator template, mask <-> clamp <-> simulator
// agreement over the whole action grid, masked policy sampling, legality
// of every planner's output over >= 1k generated loops, the analysis JSON
// emitter, and the model-format legality-feature flag round trip.
//
//===----------------------------------------------------------------------===//

#include "dataset/LoopGenerator.h"
#include "ir/AnalysisReport.h"
#include "ir/Legality.h"
#include "ir/Lowering.h"
#include "lang/LoopExtractor.h"
#include "lang/Parser.h"
#include "predictors/Search.h"
#include "rl/Policy.h"
#include "serve/ModelSerializer.h"
#include "sim/Compiler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstring>
#include <limits>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

using namespace nv;

namespace {

int floorPow2Local(long long X) {
  int P = 1;
  while (2ll * P <= X)
    P *= 2;
  return X < 1 ? 1 : P;
}

/// Parses and lowers the first vectorization site of \p Source, returning
/// (summary, legality) with the AST kept alive for the process.
struct Analyzed {
  LoopSummary Summary;
  LegalitySummary Legal;
};

Analyzed analyze(const std::string &Source, const TargetInfo &TI = {}) {
  std::string Error;
  std::optional<Program> P = parseSource(Source, &Error);
  EXPECT_TRUE(P.has_value()) << Error << "\n" << Source;
  static std::vector<std::unique_ptr<Program>> Keep;
  Keep.push_back(std::make_unique<Program>(std::move(*P)));
  std::vector<LoopSite> Sites = extractLoops(*Keep.back());
  EXPECT_FALSE(Sites.empty()) << Source;
  Analyzed A;
  A.Summary = lowerLoop(*Keep.back(), Sites[0], TI.MaxVF);
  A.Legal = analyzeLegality(A.Summary, TI);
  return A;
}

// --- Brute-force iteration-space oracle -----------------------------------
// Enumerates the loop's iterations and finds, for every (store at k1,
// access at k2, k1 < k2) pair on the same array, the minimum conflict
// distance k2 - k1 — the ground truth the analysis approximates. Pairs the
// analysis itself cannot evaluate (non-affine, mismatched invariant terms)
// are skipped: the analysis is strictly conservative on those, so skipping
// keeps the oracle an upper bound.

struct OracleResult {
  bool Computable = false;
  int MaxSafeVF = 1;
};

long long addrAt(const MemAccess &A, const std::string &Var, long long Lo,
                 long long Step, long long K) {
  return A.Flat.Const + A.Flat.coeffOf(Var) * (Lo + Step * K);
}

std::vector<std::pair<std::string, long long>>
invariantTermsOf(const AffineIndex &Index, const std::string &Var) {
  std::vector<std::pair<std::string, long long>> Terms;
  for (const auto &Term : Index.Terms)
    if (Term.first != Var)
      Terms.push_back(Term);
  std::sort(Terms.begin(), Terms.end());
  return Terms;
}

OracleResult oracleMaxSafeVF(const LoopSummary &Sum, int HWMaxVF) {
  OracleResult R;
  if (Sum.RuntimeTrip <= 0 || !Sum.Loop)
    return R;
  const long long Trip = Sum.RuntimeTrip;
  const std::string &Var = Sum.Loop->IndexVar;
  long long MinDist = std::numeric_limits<long long>::max();

  for (const MemAccess &Store : Sum.Accesses) {
    if (!Store.IsStore || !Store.IsAffine)
      continue;
    for (const MemAccess &Other : Sum.Accesses) {
      if (Other.Array != Store.Array || !Other.IsAffine)
        continue;
      if (invariantTermsOf(Store.Flat, Var) !=
          invariantTermsOf(Other.Flat, Var))
        continue; // Unknown to the analysis; skipping keeps oracle >= it.
      // Sweep iteration space: store addresses by cell, then for each
      // access iteration find the closest earlier store of that cell.
      std::map<long long, std::vector<long long>> StoreIters;
      for (long long K = 0; K < Trip; ++K)
        StoreIters[addrAt(Store, Var, Sum.InnerVarLo, Sum.InnerStep, K)]
            .push_back(K);
      for (long long K2 = 1; K2 < Trip; ++K2) {
        const auto It = StoreIters.find(
            addrAt(Other, Var, Sum.InnerVarLo, Sum.InnerStep, K2));
        if (It == StoreIters.end())
          continue;
        // Largest store iteration strictly before K2.
        const std::vector<long long> &Ks = It->second;
        auto Lb = std::lower_bound(Ks.begin(), Ks.end(), K2);
        if (Lb == Ks.begin())
          continue;
        MinDist = std::min(MinDist, K2 - *(Lb - 1));
      }
    }
  }

  long long Bound =
      MinDist == std::numeric_limits<long long>::max() ? HWMaxVF : MinDist;
  R.MaxSafeVF = floorPow2Local(std::min<long long>(Bound, HWMaxVF));
  if (Sum.HasUnknownCall || Sum.HasScalarCycle)
    R.MaxSafeVF = 1;
  R.Computable = true;
  return R;
}

/// True when the analysis has a binding edge whose conflict distance
/// varies across iterations (weak-crossing SIV): the analysis assumes
/// distance 1 there, so exact agreement with the oracle is not expected.
bool hasCrossingEdge(const LoopSummary &Sum, const LegalitySummary &Legal) {
  if (!Sum.Loop)
    return false;
  const std::string &Var = Sum.Loop->IndexVar;
  for (const DependenceEdge &E : Legal.Edges) {
    if (!E.BindsVF || E.Unknown || E.HasDistance)
      continue;
    const long long A =
        Sum.Accesses[E.Src].Flat.coeffOf(Var) * Sum.InnerStep;
    const long long B =
        Sum.Accesses[E.Dst].Flat.coeffOf(Var) * Sum.InnerStep;
    if (A != 0 && A == -B)
      return true;
  }
  return false;
}

// --- A minimal strict JSON validator (subset of TelemetryTest's) ----------
namespace minijson {

void skipWs(const std::string &S, size_t &I) {
  while (I < S.size() && std::isspace(static_cast<unsigned char>(S[I])))
    ++I;
}

bool parseValue(const std::string &S, size_t &I);

bool parseString(const std::string &S, size_t &I) {
  if (I >= S.size() || S[I] != '"')
    return false;
  ++I;
  while (I < S.size()) {
    const unsigned char C = static_cast<unsigned char>(S[I]);
    if (C == '"') {
      ++I;
      return true;
    }
    if (C < 0x20)
      return false;
    if (C == '\\') {
      ++I;
      if (I >= S.size())
        return false;
      if (S[I] == 'u') {
        for (int K = 0; K < 4; ++K) {
          ++I;
          if (I >= S.size() ||
              !std::isxdigit(static_cast<unsigned char>(S[I])))
            return false;
        }
      } else if (!std::strchr("\"\\/bfnrt", S[I])) {
        return false;
      }
    }
    ++I;
  }
  return false;
}

bool parseNumber(const std::string &S, size_t &I) {
  const size_t Start = I;
  if (I < S.size() && S[I] == '-')
    ++I;
  while (I < S.size() &&
         (std::isdigit(static_cast<unsigned char>(S[I])) || S[I] == '.' ||
          S[I] == 'e' || S[I] == 'E' || S[I] == '+' || S[I] == '-'))
    ++I;
  return I > Start;
}

bool parseContainer(const std::string &S, size_t &I, char Open, char Close,
                    bool KeyValue) {
  ++I;
  skipWs(S, I);
  if (I < S.size() && S[I] == Close) {
    ++I;
    return true;
  }
  for (;;) {
    skipWs(S, I);
    if (KeyValue) {
      if (!parseString(S, I))
        return false;
      skipWs(S, I);
      if (I >= S.size() || S[I] != ':')
        return false;
      ++I;
    }
    if (!parseValue(S, I))
      return false;
    skipWs(S, I);
    if (I < S.size() && S[I] == ',') {
      ++I;
      continue;
    }
    if (I < S.size() && S[I] == Close) {
      ++I;
      return true;
    }
    return false;
  }
}

bool parseValue(const std::string &S, size_t &I) {
  skipWs(S, I);
  if (I >= S.size())
    return false;
  switch (S[I]) {
  case '{':
    return parseContainer(S, I, '{', '}', true);
  case '[':
    return parseContainer(S, I, '[', ']', false);
  case '"':
    return parseString(S, I);
  case 't':
    if (S.compare(I, 4, "true") == 0) {
      I += 4;
      return true;
    }
    return false;
  case 'f':
    if (S.compare(I, 5, "false") == 0) {
      I += 5;
      return true;
    }
    return false;
  case 'n':
    if (S.compare(I, 4, "null") == 0) {
      I += 4;
      return true;
    }
    return false;
  default:
    return parseNumber(S, I);
  }
}

bool valid(const std::string &S) {
  size_t I = 0;
  if (!parseValue(S, I))
    return false;
  skipWs(S, I);
  return I == S.size();
}

} // namespace minijson

// --- Access classification goldens -----------------------------------------

TEST(Classify, Goldens) {
  Analyzed A = analyze("float a[64]; float b[64]; float c[64]; int x[64]; "
                       "float s[8];"
                       "void f() { for (int i = 0; i < 32; i++) {"
                       "  a[i] = b[2 * i] + c[x[i]] + s[5]; } }");
  // Lowering emits loads in expression order: b[2i], x[i], c[x[i]], s[5],
  // then the store a[i].
  ASSERT_EQ(A.Legal.Classes.size(), A.Summary.Accesses.size());
  std::map<std::string, AccessClass> ByArray;
  for (size_t I = 0; I < A.Summary.Accesses.size(); ++I)
    ByArray[A.Summary.Accesses[I].Array +
            (A.Summary.Accesses[I].IsStore ? "!" : "")] = A.Legal.Classes[I];
  EXPECT_EQ(ByArray.at("a!"), AccessClass::Consecutive);
  EXPECT_EQ(ByArray.at("b"), AccessClass::Strided);
  EXPECT_EQ(ByArray.at("x"), AccessClass::Consecutive);
  EXPECT_EQ(ByArray.at("c"), AccessClass::Gather);
  EXPECT_EQ(ByArray.at("s"), AccessClass::Uniform);
}

TEST(Classify, StepTwoMakesUnitStrideStrided) {
  // Lanes map to iterations: a[i] under i += 2 touches every other cell.
  Analyzed A = analyze("float a[64]; void f() { for (int i = 0; i < 64; "
                       "i += 2) { a[i] = 1.0; } }");
  ASSERT_EQ(A.Legal.Classes.size(), 1u);
  EXPECT_EQ(A.Legal.Classes[0], AccessClass::Strided);
  EXPECT_EQ(A.Legal.digest().ClassCount[
                static_cast<int>(AccessClass::Strided)], 1);
}

// --- The dependence-distance matrix ----------------------------------------

struct DistanceCase {
  const char *Source;
  int ExpectedVF;
};

TEST(Dependence, DistanceMatrix) {
  const TargetInfo TI;
  const DistanceCase Cases[] = {
      // No dependence at all: full hardware width.
      {"float a[256]; float b[256]; void f() { for (int i = 0; i < 256; "
       "i++) { a[i] = b[i] + 1.0; } }",
       64},
      // Loop-carried flow, distance 4.
      {"float a[256]; void f() { for (int i = 4; i < 256; i++) { a[i] = "
       "a[i - 4]; } }",
       4},
      // Distance 3 floors to VF 2.
      {"float a[256]; void f() { for (int i = 3; i < 256; i++) { a[i] = "
       "a[i - 3]; } }",
       2},
      // Distance 1 serializes.
      {"float a[256]; void f() { for (int i = 1; i < 256; i++) { a[i] = "
       "a[i - 1]; } }",
       1},
      // Anti dependence (read-ahead): chunk loads precede stores — free.
      {"float a[256]; void f() { for (int i = 0; i < 252; i++) { a[i] = "
       "a[i + 4]; } }",
       64},
      // Invariant store conflicts with itself every iteration.
      {"float a[8]; float b[256]; void f() { for (int i = 0; i < 256; "
       "i++) { a[0] = b[i]; } }",
       1},
      // Interleaved strides never collide (2i vs 2i+1).
      {"float a[512]; void f() { for (int i = 0; i < 200; i++) { a[2 * i] "
       "= a[2 * i + 1]; } }",
       64},
      // GCD refutation: 2k1 = 4k2 + 1 has no integer solution.
      {"float a[1024]; void f() { for (int i = 0; i < 200; i++) { a[2 * "
       "i] = a[4 * i + 1]; } }",
       64},
      // GCD cannot refute 2k1 = 4k2: unknown, assume serial.
      {"float a[1024]; void f() { for (int i = 0; i < 200; i++) { a[2 * "
       "i] = a[4 * i]; } }",
       1},
      // Weak-zero: store sweeps over an invariant read at a[16].
      {"float a[256]; void f() { for (int i = 0; i < 256; i++) { a[i] = "
       "a[16] + 1.0; } }",
       1},
      // Weak-crossing: i and 126-i collide mid-loop (k1 + k2 = 126).
      {"float a[512]; void f() { for (int i = 0; i < 128; i++) { a[i] = "
       "a[126 - i]; } }",
       1},
      // Weak-crossing refuted: the crossing point lies past the last
      // iteration (k1 + k2 = 400 > 2 * 127).
      {"float a[512]; void f() { for (int i = 0; i < 128; i++) { a[i] = "
       "a[400 - i]; } }",
       64},
      // Step-2 loop: var-space distance 8 is 4 iterations.
      {"float a[512]; void f() { for (int i = 8; i < 512; i += 2) { a[i] "
       "= a[i - 8]; } }",
       4},
  };
  for (const DistanceCase &C : Cases) {
    Analyzed A = analyze(C.Source, TI);
    EXPECT_EQ(A.Legal.MaxSafeVF, C.ExpectedVF) << C.Source;
    // Each verdict agrees with the ground-truth iteration sweep.
    const OracleResult Oracle = oracleMaxSafeVF(A.Summary, TI.MaxVF);
    ASSERT_TRUE(Oracle.Computable) << C.Source;
    EXPECT_LE(A.Legal.MaxSafeVF, Oracle.MaxSafeVF) << C.Source;
  }
}

// --- Satellite regressions --------------------------------------------------

TEST(Regression, ReadOnlyGatherKeepsFullVF) {
  // A gather *load* of another array must not pessimize: only store<->
  // access pairs can carry a dependence, and `b[x[i]]` never pairs with
  // the store to `a`. (This used to collapse the loop to VF 1.)
  Analyzed A = analyze("float a[256]; float b[256]; int x[256]; "
                       "void f() { for (int i = 0; i < 256; i++) { a[i] = "
                       "b[x[i]]; } }");
  EXPECT_EQ(A.Legal.MaxSafeVF, 64);
  EXPECT_FALSE(A.Legal.HasUnknownDep);
  // A scatter *store* is a different story: it aliases unpredictably.
  Analyzed B = analyze("float a[256]; float b[256]; int x[256]; "
                       "void f() { for (int i = 0; i < 256; i++) { a[x[i]] "
                       "= b[i]; } }");
  EXPECT_EQ(B.Legal.MaxSafeVF, 1);
  EXPECT_TRUE(B.Legal.HasUnknownDep);
}

TEST(Regression, WeakZeroTripRangeRefutation) {
  // The conflicting iteration (k* = 200) lies outside the 64-iteration
  // loop, so the invariant read cannot alias the sweeping store.
  Analyzed A = analyze("float a[256]; void f() { for (int i = 0; i < 64; "
                       "i++) { a[i] = a[200] + 1.0; } }");
  EXPECT_EQ(A.Legal.MaxSafeVF, 64);
  EXPECT_FALSE(A.Legal.HasUnknownDep);
  // In range, it binds.
  Analyzed B = analyze("float a[256]; void f() { for (int i = 0; i < 64; "
                       "i++) { a[i] = a[32] + 1.0; } }");
  EXPECT_EQ(B.Legal.MaxSafeVF, 1);
}

// --- Mask / clamp / simulator agreement -------------------------------------

TEST(Mask, AgreesWithClampAndSimulatorOverFullGrid) {
  const SimCompiler Compiler;
  const TargetInfo &TI = Compiler.target();
  LoopGenerator Gen(0xA11CE);
  for (int T = 0; T < LoopGenerator::NumTemplates; ++T) {
    for (int J = 0; J < 4; ++J) {
      const GeneratedLoop G = Gen.generate(T);
      std::string Error;
      std::optional<Program> P = parseSource(G.Source, &Error);
      ASSERT_TRUE(P.has_value()) << G.Source << "\n" << Error;
      std::vector<LoopSite> Sites = extractLoops(*P);
      ASSERT_FALSE(Sites.empty()) << G.Source;
      const std::vector<LoopSummary> Sums =
          lowerAllLoops(*P, Sites, TI.MaxVF);
      for (const LoopSummary &Sum : Sums) {
        const LegalitySummary Legal = analyzeLegality(Sum, TI);
        int LegalRows = 0;
        for (int VF : TI.vfActions())
          LegalRows += VF <= Legal.MaxSafeVF ? 1 : 0;
        EXPECT_EQ(Legal.Mask.count(),
                  LegalRows * static_cast<int>(TI.ifActions().size()));
        for (int VF : TI.vfActions()) {
          for (int IF : TI.ifActions()) {
            const VectorPlan Plan{VF, IF};
            const bool ByMask = Legal.isLegal(Plan, TI);
            const bool ByClamp = Legal.clamp(Plan, TI) == Plan;
            const bool BySim = Compiler.legalize(Sum, Plan) == Plan;
            EXPECT_EQ(ByMask, ByClamp) << G.Source;
            EXPECT_EQ(ByMask, BySim) << G.Source;
            EXPECT_EQ(Legal.explain(Plan, TI) == "legal", ByMask);
          }
        }
      }
    }
  }
}

// --- The iteration-space oracle across every template -----------------------

TEST(Oracle, AnalysisSoundAndExactAcrossTemplates) {
  const TargetInfo TI;
  LoopGenerator Gen(0xBEEF);
  int Exact = 0, Checked = 0;
  for (int T = 0; T < LoopGenerator::NumTemplates; ++T) {
    for (int J = 0; J < 8; ++J) {
      const GeneratedLoop G = Gen.generate(T);
      std::string Error;
      std::optional<Program> P = parseSource(G.Source, &Error);
      ASSERT_TRUE(P.has_value()) << G.Source << "\n" << Error;
      std::vector<LoopSite> Sites = extractLoops(*P);
      const std::vector<LoopSummary> Sums =
          lowerAllLoops(*P, Sites, TI.MaxVF);
      for (const LoopSummary &Sum : Sums) {
        const LegalitySummary Legal = analyzeLegality(Sum, TI);
        const OracleResult Oracle = oracleMaxSafeVF(Sum, TI.MaxVF);
        if (!Oracle.Computable)
          continue;
        ++Checked;
        // Soundness: the analysis never exceeds the ground truth.
        ASSERT_LE(Legal.MaxSafeVF, Oracle.MaxSafeVF)
            << "template " << T << "\n" << G.Source;
        // Exactness: when every pair was analyzable with a definite
        // distance, the verdict matches the iteration sweep exactly.
        if (!Legal.HasUnknownDep && !hasCrossingEdge(Sum, Legal)) {
          EXPECT_EQ(Legal.MaxSafeVF, Oracle.MaxSafeVF)
              << "template " << T << "\n" << G.Source;
          ++Exact;
        }
      }
    }
  }
  // The sweep must have exercised real loops, mostly exactly.
  EXPECT_GE(Checked, LoopGenerator::NumTemplates * 8);
  EXPECT_GE(Exact, Checked / 2);
}

// --- Masked policy sampling --------------------------------------------------

TEST(Policy, MaskedSamplingNeverPicksIllegal) {
  const TargetInfo TI;
  PlanMask Mask;
  Mask.NumVF = static_cast<int8_t>(TI.vfActions().size());
  Mask.NumIF = static_cast<int8_t>(TI.ifActions().size());
  // Legal: VF in {1, 2, 4} (indices 0..2), all IF.
  for (int V = 0; V < 3; ++V)
    for (int I = 0; I < Mask.NumIF; ++I)
      Mask.set(V, I);
  for (ActionSpaceKind Kind :
       {ActionSpaceKind::Discrete, ActionSpaceKind::Continuous1,
        ActionSpaceKind::Continuous2}) {
    RNG R(7);
    Policy P(Kind, 6, {16}, Mask.NumVF, Mask.NumIF, R);
    Matrix States(4, 6);
    for (int I = 0; I < States.rows() * States.cols(); ++I)
      States.raw()[I] = R.nextGaussian();
    P.forward(States);
    for (int Row = 0; Row < States.rows(); ++Row) {
      for (int Draw = 0; Draw < 200; ++Draw) {
        const ActionRecord A = P.sampleAction(Row, R, &Mask);
        EXPECT_TRUE(Mask.legal(A.VFIdx, A.IFIdx))
            << "kind " << static_cast<int>(Kind) << " VFIdx " << A.VFIdx
            << " IFIdx " << A.IFIdx;
      }
      const ActionRecord G = P.greedyAction(Row, &Mask);
      EXPECT_TRUE(Mask.legal(G.VFIdx, G.IFIdx));
    }
  }
}

// --- Every planner respects legality over >= 1k generated loops -------------

TEST(Property, AllPlannersRespectLegalityOverThousandLoops) {
  constexpr int LoopsPerTemplate = 90; // 12 * 90 = 1080 programs.
  VectorizationEnv Env{SimCompiler(), PathContextConfig()};
  const TargetInfo &TI = Env.compiler().target();
  LoopGenerator Gen(0xD00D);
  for (int T = 0; T < LoopGenerator::NumTemplates; ++T)
    for (int J = 0; J < LoopsPerTemplate; ++J) {
      const GeneratedLoop G = Gen.generate(T);
      ASSERT_TRUE(Env.addProgram(G.Name, G.Source)) << G.Source;
    }
  ASSERT_GE(Env.size(), 1000u);

  RNG R(11);
  Policy Pol(ActionSpaceKind::Discrete, 6,
             {16}, static_cast<int>(TI.vfActions().size()),
             static_cast<int>(TI.ifActions().size()), R);
  Matrix State(1, 6);

  for (size_t I = 0; I < Env.size(); ++I) {
    const size_t Sites = Env.sample(I).Sites.size();
    // Masked policy sampling only ever lands on legal grid points.
    for (size_t S = 0; S < Sites; ++S) {
      const LegalitySummary &Legal = Env.legality(I, S);
      EXPECT_EQ(&Legal.Mask, &Env.actionMask(I, S));
      for (int D = 0; D < State.cols(); ++D)
        State.at(0, D) = R.nextGaussian();
      Pol.forward(State);
      const ActionRecord A = Pol.sampleAction(0, R, &Env.actionMask(I, S));
      EXPECT_TRUE(Legal.isLegal(Pol.toPlan(A, TI), TI));
    }
    // Random search draws only legal plans.
    const std::vector<VectorPlan> Rand = randomPlans(Env, I, R);
    ASSERT_EQ(Rand.size(), Sites);
    for (size_t S = 0; S < Sites; ++S)
      EXPECT_TRUE(Env.legality(I, S).isLegal(Rand[S], TI));
    // Brute force sweeps only legal plans (spot-checked: full sweeps on
    // every 6th program keep the test fast).
    if (I % 6 == 0) {
      const BruteForceResult Best = bruteForceSearch(Env, I, /*Passes=*/1);
      ASSERT_EQ(Best.Plans.size(), Sites);
      for (size_t S = 0; S < Sites; ++S)
        EXPECT_TRUE(Env.legality(I, S).isLegal(Best.Plans[S], TI))
            << Env.sample(I).Name;
    }
  }
}

// --- Analysis report JSON ----------------------------------------------------

TEST(Report, JsonIsStrictAndTextRenders) {
  const TargetInfo TI;
  LoopGenerator Gen(0xFEED);
  for (int T = 0; T < LoopGenerator::NumTemplates; ++T) {
    const GeneratedLoop G = Gen.generate(T);
    const AnalysisReport Report = analyzeProgram(G.Name, G.Source, TI);
    ASSERT_TRUE(Report.Ok) << G.Source << "\n" << Report.Error;
    const std::string Json = analysisJson(Report, TI);
    EXPECT_TRUE(minijson::valid(Json)) << Json;
    std::ostringstream Text;
    printAnalysisText(Report, TI, Text);
    EXPECT_NE(Text.str().find("max safe VF"), std::string::npos);
  }
  // Failure paths stay valid JSON too.
  const AnalysisReport Bad = analyzeProgram("bad", "int x = ;", TI);
  EXPECT_FALSE(Bad.Ok);
  EXPECT_TRUE(minijson::valid(analysisJson(Bad, TI)));
  const AnalysisReport NoLoops =
      analyzeProgram("flat", "int x; void f() { x = 1; }", TI);
  EXPECT_FALSE(NoLoops.Ok);
  EXPECT_TRUE(minijson::valid(analysisJson(NoLoops, TI)));
}

// --- Model-format legality-feature flag --------------------------------------

TEST(ModelFormat, LegalityFeatureFlagRoundTripsAndGuards) {
  const std::string Path =
      ::testing::TempDir() + "nv_legality_flag_model.bin";
  Code2VecConfig CC;
  CC.CodeDim = 12;
  RNG R(5);
  Code2Vec Wide(CC, R);
  Policy WidePol(ActionSpaceKind::Discrete,
                 CC.CodeDim + NumLegalityFeatures, {8}, 7, 5, R);
  ModelMeta Meta;
  Meta.LegalityFeatures = true;
  std::string Error;
  ASSERT_TRUE(ModelSerializer::save(Path, Wide, WidePol, Meta, &Error))
      << Error;

  // Round trip into a matching wide destination.
  Code2Vec DstE(CC, R);
  Policy DstWide(ActionSpaceKind::Discrete,
                 CC.CodeDim + NumLegalityFeatures, {8}, 7, 5, R);
  ModelMeta Loaded;
  EXPECT_EQ(ModelSerializer::tryLoad(Path, DstE, DstWide, &Loaded, nullptr,
                                     &Error),
            LoadStatus::Ok)
      << Error;
  EXPECT_TRUE(Loaded.LegalityFeatures);

  // A widened file must not load into a bare-embedding policy.
  Policy DstNarrow(ActionSpaceKind::Discrete, CC.CodeDim, {8}, 7, 5, R);
  EXPECT_EQ(ModelSerializer::tryLoad(Path, DstE, DstNarrow, nullptr,
                                     nullptr, &Error),
            LoadStatus::ArchMismatch);

  // And a bare file must not load into a widened policy.
  Policy NarrowPol(ActionSpaceKind::Discrete, CC.CodeDim, {8}, 7, 5, R);
  ASSERT_TRUE(ModelSerializer::save(Path, Wide, NarrowPol, ModelMeta(),
                                    &Error))
      << Error;
  EXPECT_EQ(ModelSerializer::tryLoad(Path, DstE, DstWide, nullptr, nullptr,
                                     &Error),
            LoadStatus::ArchMismatch);
}

// --- Legality feature vector -------------------------------------------------

TEST(Features, LayoutAndNormalization) {
  const TargetInfo TI; // MaxVF 64 -> log2 denom 6.
  LegalityDigest D;
  D.MaxSafeVF = 8;
  D.ClassCount[static_cast<int>(AccessClass::Consecutive)] = 3;
  D.ClassCount[static_cast<int>(AccessClass::Gather)] = 1;
  D.HasReduction = 1;
  D.IfConvertible = 0;
  double F[NumLegalityFeatures];
  legalityFeatures(D, TI, F);
  EXPECT_DOUBLE_EQ(F[static_cast<int>(AccessClass::Uniform)], 0.0);
  EXPECT_DOUBLE_EQ(F[static_cast<int>(AccessClass::Consecutive)], 0.75);
  EXPECT_DOUBLE_EQ(F[static_cast<int>(AccessClass::Gather)], 0.25);
  EXPECT_DOUBLE_EQ(F[4], 3.0 / 6.0); // log2(8) / log2(64).
  EXPECT_DOUBLE_EQ(F[5], 1.0);
  EXPECT_DOUBLE_EQ(F[6], 0.0);
}

} // namespace
