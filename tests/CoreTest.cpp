//===- tests/CoreTest.cpp - end-to-end framework integration tests --------===//

#include "core/NeuroVectorizer.h"
#include "dataset/LoopGenerator.h"

#include <gtest/gtest.h>

using namespace nv;

namespace {

const char *DotProduct =
    "int vec[512]; int out; void f() { int sum = 0; for (int i = 0; i < "
    "512; i++) { sum += vec[i] * vec[i]; } out = sum; }";

/// Small, fast configuration for integration tests.
NeuroVectorizerConfig testConfig() {
  NeuroVectorizerConfig Config;
  Config.PPO.BatchSize = 64;
  Config.PPO.MiniBatchSize = 32;
  Config.PPO.LearningRate = 3e-3;
  Config.PPO.EntropyCoef = 0.05;
  Config.Embedding.CodeDim = 16;
  Config.Embedding.TokenDim = 8;
  Config.Embedding.PathDim = 8;
  return Config;
}

TEST(NeuroVectorizer, AnnotateInjectsPragmas) {
  NeuroVectorizer NV(testConfig());
  ASSERT_TRUE(NV.addTrainingProgram("dot", DotProduct));
  NV.train(256); // Minimal training; we only check plumbing here.
  const std::string Annotated = NV.annotate(DotProduct);
  EXPECT_NE(Annotated.find("#pragma clang loop vectorize_width("),
            std::string::npos)
      << Annotated;
  EXPECT_NE(Annotated.find("interleave_count("), std::string::npos);
}

TEST(NeuroVectorizer, TrainedModelBeatsBaselineOnTrainingKernel) {
  NeuroVectorizer NV(testConfig());
  ASSERT_TRUE(NV.addTrainingProgram("dot", DotProduct));
  NV.train(2000);
  EXPECT_GT(NV.speedupOverBaseline(DotProduct), 1.0);
}

TEST(NeuroVectorizer, BruteForceIsAnUpperBoundForAllMethods) {
  NeuroVectorizer NV(testConfig());
  ASSERT_TRUE(NV.addTrainingProgram("dot", DotProduct));
  NV.train(512);
  NV.fitSupervised();
  const double BF =
      NV.speedupOverBaseline(DotProduct, PredictMethod::BruteForce);
  for (PredictMethod M : {PredictMethod::RL, PredictMethod::NNS,
                          PredictMethod::DecisionTree,
                          PredictMethod::Baseline}) {
    EXPECT_LE(NV.speedupOverBaseline(DotProduct, M), BF + 1e-9);
  }
  EXPECT_NEAR(
      NV.speedupOverBaseline(DotProduct, PredictMethod::Baseline), 1.0,
      1e-9);
}

TEST(NeuroVectorizer, SupervisedMethodsPredictAfterFit) {
  NeuroVectorizer NV(testConfig());
  LoopGenerator Gen(21);
  for (const GeneratedLoop &L : Gen.generateMany(20))
    NV.addTrainingProgram(L.Name, L.Source);
  NV.train(256);
  NV.fitSupervised();
  std::vector<VectorPlan> NNSPlans =
      NV.plansFor(DotProduct, PredictMethod::NNS);
  std::vector<VectorPlan> TreePlans =
      NV.plansFor(DotProduct, PredictMethod::DecisionTree);
  ASSERT_EQ(NNSPlans.size(), 1u);
  ASSERT_EQ(TreePlans.size(), 1u);
  EXPECT_GE(NNSPlans[0].VF, 1);
  EXPECT_GE(TreePlans[0].VF, 1);
}

TEST(NeuroVectorizer, MultiLoopProgramsGetOnePragmaPerSite) {
  NeuroVectorizer NV(testConfig());
  const char *TwoLoops = R"(
    float a[256]; float b[256];
    void f() {
      for (int i = 0; i < 256; i++) { a[i] = 1.0; }
      for (int i = 0; i < 256; i++) { b[i] = 2.0; }
    })";
  ASSERT_TRUE(NV.addTrainingProgram("two", TwoLoops));
  NV.train(128);
  std::vector<VectorPlan> Plans = NV.plansFor(TwoLoops);
  EXPECT_EQ(Plans.size(), 2u);
  const std::string Annotated = NV.annotate(TwoLoops);
  size_t First = Annotated.find("#pragma");
  ASSERT_NE(First, std::string::npos);
  EXPECT_NE(Annotated.find("#pragma", First + 1), std::string::npos);
}

TEST(NeuroVectorizer, AnnotatedOutputIsValidInput) {
  NeuroVectorizer NV(testConfig());
  ASSERT_TRUE(NV.addTrainingProgram("dot", DotProduct));
  NV.train(128);
  const std::string Annotated = NV.annotate(DotProduct);
  // The annotated program must itself be compilable by the framework.
  const double Cycles = NV.cyclesFor(Annotated, PredictMethod::Baseline);
  EXPECT_GT(Cycles, 0.0);
}

TEST(NeuroVectorizer, DeterministicAcrossIdenticalRuns) {
  auto Run = [&]() {
    NeuroVectorizer NV(testConfig());
    NV.addTrainingProgram("dot", DotProduct);
    NV.train(512);
    return NV.annotate(DotProduct);
  };
  EXPECT_EQ(Run(), Run());
}

} // namespace
