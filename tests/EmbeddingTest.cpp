//===- tests/EmbeddingTest.cpp - path-context and code2vec tests ----------===//

#include "embedding/Code2Vec.h"
#include "embedding/PathContext.h"
#include "lang/LoopExtractor.h"
#include "lang/Parser.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace nv;

namespace {

std::vector<PathContext> contextsOf(const std::string &Source,
                                    const PathContextConfig &Config) {
  std::string Error;
  std::optional<Program> P = parseSource(Source, &Error);
  EXPECT_TRUE(P.has_value()) << Error;
  std::vector<LoopSite> Sites = extractLoops(*P);
  EXPECT_FALSE(Sites.empty());
  return extractPathContexts(*Sites[0].Outer, Config);
}

TEST(PathContext, DeterministicExtraction) {
  PathContextConfig Config;
  const char *Src = "int a[8]; void f() { for (int i = 0; i < 8; i++) { "
                    "a[i] = i * 2; } }";
  auto C1 = contextsOf(Src, Config);
  auto C2 = contextsOf(Src, Config);
  ASSERT_EQ(C1.size(), C2.size());
  for (size_t I = 0; I < C1.size(); ++I) {
    EXPECT_EQ(C1[I].SrcToken, C2[I].SrcToken);
    EXPECT_EQ(C1[I].Path, C2[I].Path);
    EXPECT_EQ(C1[I].DstToken, C2[I].DstToken);
  }
  EXPECT_FALSE(C1.empty());
}

TEST(PathContext, VocabularyBounds) {
  PathContextConfig Config;
  Config.TokenVocabSize = 64;
  Config.PathVocabSize = 32;
  auto Contexts = contextsOf(
      "float x[64]; float y[64]; void f() { for (int i = 0; i < 64; i++) "
      "{ y[i] = x[i] * 3.0 + y[i]; } }",
      Config);
  for (const PathContext &C : Contexts) {
    EXPECT_GE(C.SrcToken, 0);
    EXPECT_LT(C.SrcToken, 64);
    EXPECT_GE(C.Path, 0);
    EXPECT_LT(C.Path, 32);
    EXPECT_GE(C.DstToken, 0);
    EXPECT_LT(C.DstToken, 64);
  }
}

TEST(PathContext, MaxContextsCapRespected) {
  PathContextConfig Config;
  Config.MaxContexts = 10;
  auto Contexts = contextsOf(
      "float A[32][32]; float B[32][32]; float C[32][32]; void f() { for "
      "(int i = 0; i < 32; i++) { for (int j = 0; j < 32; j++) { C[i][j] "
      "= A[i][j] * B[i][j] + C[i][j]; } } }",
      Config);
  EXPECT_LE(Contexts.size(), 10u);
  EXPECT_FALSE(Contexts.empty());
}

TEST(PathContext, DifferentLoopsDifferentContexts) {
  PathContextConfig Config;
  auto A = contextsOf("int a[8]; void f() { for (int i = 0; i < 8; i++) { "
                      "a[i] = 1; } }",
                      Config);
  auto B = contextsOf("float s[64]; float o; void f() { float m = 0; for "
                      "(int i = 0; i < 64; i++) { m += s[i] * s[i]; } o = "
                      "m; }",
                      Config);
  // At least the context multisets must differ.
  EXPECT_NE(A.size(), B.size());
}

TEST(PathContext, RenamedVariablesChangeTokensNotPaths) {
  // The paper's generators rename parameters to de-bias the embedding;
  // renaming must keep the *path* structure identical.
  PathContextConfig Config;
  auto A = contextsOf("int a[8]; void f() { for (int i = 0; i < 8; i++) { "
                      "a[i] = i; } }",
                      Config);
  auto B = contextsOf("int zz[8]; void f() { for (int k = 0; k < 8; k++) "
                      "{ zz[k] = k; } }",
                      Config);
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I < A.size(); ++I)
    EXPECT_EQ(A[I].Path, B[I].Path);
}

TEST(PathContext, PinnedVocabHashes) {
  // The exact token -> vocab-id mapping is load-bearing: a trained model's
  // embedding tables are indexed by these ids, so any silent change to the
  // hash (interning, folding, bias fix) re-buckets the vocabulary and
  // invalidates every saved model. Values computed independently (Python)
  // from the documented definition: hashToVocab(fnv1a(token)).
  EXPECT_EQ(hashToken("i", 2048), 1127);
  EXPECT_EQ(hashToken("sum", 2048), 467);
  EXPECT_EQ(hashToken("<flt>", 2048), 710);
  EXPECT_EQ(hashToken("0", 2048), 1399);
  EXPECT_EQ(hashToken("512", 2048), 1674);
  EXPECT_EQ(hashToken("float", 2048), 611);
  // Folding is not plain truncation: small vocabularies see the high bits.
  EXPECT_EQ(hashToken("i", 64), 35);
  EXPECT_EQ(hashToken("sum", 64), 14);

  // One pinned structural path hash: up labels [Var, Asg+] (LCA last),
  // down labels [Arr].
  const uint64_t Up = pathHashPush(pathHashPush(pathHashSeed(), fnv1a("Var")),
                                   fnv1a("Asg+"));
  const uint64_t Down = pathHashPush(pathHashSeed(), fnv1a("Arr"));
  EXPECT_EQ(hashToVocab(pathHashCombine(Up, Down), 4096), 1266);
  // Direction matters: the reversed path hashes differently.
  const uint64_t RevUp = pathHashPush(pathHashPush(pathHashSeed(),
                                                   fnv1a("Arr")),
                                      fnv1a("Asg+"));
  const uint64_t RevDown = pathHashPush(pathHashSeed(), fnv1a("Var"));
  EXPECT_NE(pathHashCombine(Up, Down), pathHashCombine(RevUp, RevDown));
}

TEST(PathContext, HashToVocabIsUnbiasedAtBoundaries) {
  // The Lemire multiply-shift maps [0, 2^64) onto [0, V) without the
  // low-residue bias of `%` and never returns out-of-range ids, including
  // for vocabularies that do not divide 2^64.
  for (int Vocab : {1, 2, 13, 17, 64, 2048, 4095}) {
    for (uint64_t Hash :
         {uint64_t(0), uint64_t(1), ~uint64_t(0), fnv1a("i"),
          fnv1a("some-longer-token"), uint64_t(0x8000000000000000ull)}) {
      const int Id = hashToVocab(Hash, Vocab);
      EXPECT_GE(Id, 0);
      EXPECT_LT(Id, Vocab);
    }
  }
  // All-distinct small inputs must not all collapse into one bucket (the
  // old low-bits-only modulo did exactly that for stride-2^k hashes).
  int Seen[8] = {0};
  for (uint64_t I = 0; I < 64; ++I)
    ++Seen[hashToVocab(I << 32, 8)];
  int NonEmpty = 0;
  for (int Count : Seen)
    NonEmpty += Count > 0;
  EXPECT_GT(NonEmpty, 4);
}

TEST(Code2Vec, OutputShapeAndDeterminism) {
  RNG R(5);
  Code2VecConfig Config;
  Code2Vec Embedder(Config, R);
  auto Contexts = contextsOf(
      "int a[8]; void f() { for (int i = 0; i < 8; i++) { a[i] = i; } }",
      Config.Paths);
  Matrix V1 = Embedder.encode(Contexts);
  Matrix V2 = Embedder.encode(Contexts);
  ASSERT_EQ(V1.rows(), 1);
  ASSERT_EQ(V1.cols(), Config.CodeDim);
  for (int D = 0; D < Config.CodeDim; ++D)
    EXPECT_DOUBLE_EQ(V1.at(0, D), V2.at(0, D));
}

TEST(Code2Vec, EmptyContextsEncodeToZero) {
  RNG R(5);
  Code2VecConfig Config;
  Code2Vec Embedder(Config, R);
  Matrix V = Embedder.encode({});
  for (int D = 0; D < Config.CodeDim; ++D)
    EXPECT_DOUBLE_EQ(V.at(0, D), 0.0);
  // Backward through the empty sample must be a no-op, not a crash.
  Matrix G(1, Config.CodeDim, 1.0);
  Embedder.backward(G);
}

TEST(Code2Vec, GradientsMatchFiniteDifferences) {
  RNG R(3);
  Code2VecConfig Config;
  Config.Paths.TokenVocabSize = 32;
  Config.Paths.PathVocabSize = 32;
  Config.TokenDim = 4;
  Config.PathDim = 4;
  Config.CodeDim = 5;
  Code2Vec Embedder(Config, R);
  std::vector<PathContext> Contexts = {
      {1, 2, 3}, {4, 5, 6}, {1, 5, 3}, {7, 8, 9}};
  Matrix G(1, 5);
  for (int I = 0; I < 5; ++I)
    G.at(0, I) = 0.3 * I - 0.5;

  auto LossOf = [&]() {
    Matrix V = Embedder.encode(Contexts);
    double L = 0;
    for (int I = 0; I < 5; ++I)
      L += V.at(0, I) * G.at(0, I);
    return L;
  };

  for (Param *P : Embedder.params())
    P->zeroGrad();
  (void)LossOf();
  Embedder.backward(G);

  const double Eps = 1e-6;
  double MaxRel = 0.0;
  int Checked = 0;
  for (Param *P : Embedder.params()) {
    const size_t Stride = std::max<size_t>(1, P->Value.size() / 16);
    for (size_t I = 0; I < P->Value.size(); I += Stride) {
      const double Old = P->Value.raw()[I];
      P->Value.raw()[I] = Old + Eps;
      const double L1 = LossOf();
      P->Value.raw()[I] = Old - Eps;
      const double L2 = LossOf();
      P->Value.raw()[I] = Old;
      const double Num = (L1 - L2) / (2 * Eps);
      const double Ana = P->Grad.raw()[I];
      if (std::fabs(Num) + std::fabs(Ana) > 1e-10) {
        MaxRel = std::max(MaxRel, std::fabs(Num - Ana) /
                                      (std::fabs(Num) + std::fabs(Ana)));
        ++Checked;
      }
    }
  }
  EXPECT_GT(Checked, 10);
  EXPECT_LT(MaxRel, 1e-6);
}

TEST(Code2Vec, AttentionWeightsAreADistribution) {
  // Indirectly: scaling one context's embedding shifts the output but the
  // encoding stays bounded by the max context norm (convex combination of
  // tanh vectors: every output dim stays within [-1, 1]).
  RNG R(9);
  Code2VecConfig Config;
  Code2Vec Embedder(Config, R);
  auto Contexts = contextsOf(
      "float A[32][32]; void f() { for (int i = 0; i < 32; i++) { for "
      "(int j = 0; j < 32; j++) { A[i][j] = 0.5; } } }",
      Config.Paths);
  Matrix V = Embedder.encode(Contexts);
  for (int D = 0; D < Config.CodeDim; ++D) {
    EXPECT_LE(V.at(0, D), 1.0);
    EXPECT_GE(V.at(0, D), -1.0);
  }
}

} // namespace
