//===- tests/BackendTest.cpp - Predictor backends + distillation tests -----===//

#include "core/NeuroVectorizer.h"
#include "dataset/LoopGenerator.h"
#include "dataset/Suites.h"
#include "train/Distill.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace nv;

namespace {

const char *DotProduct =
    "int vec[512]; int out; void f() { int sum = 0; for (int i = 0; i < "
    "512; i++) { sum += vec[i] * vec[i]; } out = sum; }";

NeuroVectorizerConfig testConfig(uint64_t Seed = 1234) {
  NeuroVectorizerConfig Config;
  Config.PPO.BatchSize = 64;
  Config.PPO.MiniBatchSize = 32;
  Config.PPO.LearningRate = 3e-3;
  Config.Embedding.CodeDim = 16;
  Config.Embedding.TokenDim = 8;
  Config.Embedding.PathDim = 8;
  Config.Seed = Seed;
  return Config;
}

TEST(PredictMethodNames, RoundTrip) {
  for (int I = 0; I < NumPredictMethods; ++I) {
    const PredictMethod M = static_cast<PredictMethod>(I);
    const auto Back = methodFromName(methodName(M));
    ASSERT_TRUE(Back.has_value()) << methodName(M);
    EXPECT_EQ(*Back, M);
  }
  EXPECT_FALSE(methodFromName("definitely-not-a-method").has_value());
}

TEST(PlanClasses, RoundTripEveryClass) {
  const TargetInfo TI;
  const int Classes = numPlanClasses(TI);
  EXPECT_EQ(Classes, 35); // 7 VFs x 5 IFs.
  for (int C = 0; C < Classes; ++C)
    EXPECT_EQ(planToClass(classToPlan(C, TI), TI), C);
}

TEST(PredictorSet, RegistersEveryMethodWithMatchingNames) {
  NeuroVectorizer NV(testConfig());
  for (int I = 0; I < NumPredictMethods; ++I) {
    const PredictMethod M = static_cast<PredictMethod>(I);
    Predictor *P = NV.backends().get(M);
    ASSERT_NE(P, nullptr) << methodName(M);
    EXPECT_EQ(P->name(), methodName(M));
  }
  EXPECT_EQ(NV.backends().size(), static_cast<size_t>(NumPredictMethods));
  // Supervised backends start unfitted; everything else is ready.
  EXPECT_FALSE(NV.backends().get(PredictMethod::NNS)->ready());
  EXPECT_FALSE(NV.backends().get(PredictMethod::DecisionTree)->ready());
  EXPECT_TRUE(NV.backends().get(PredictMethod::RL)->ready());
  EXPECT_TRUE(NV.backends().get(PredictMethod::BruteForce)->ready());
  // Random answers must never be cached; the deterministic ones may.
  EXPECT_FALSE(NV.backends().get(PredictMethod::Random)->cacheable());
  EXPECT_TRUE(NV.backends().get(PredictMethod::BruteForce)->cacheable());
}

TEST(NNSSerialization, RoundTripIsByteStable) {
  NearestNeighborPredictor A(3);
  A.add({0.5, -1.25, 2.0}, {4, 2});
  A.add({1.0, 0.0, -3.5}, {16, 8});
  std::vector<char> Bytes;
  A.serialize(Bytes);

  NearestNeighborPredictor B;
  std::string Error;
  ASSERT_TRUE(B.deserialize(Bytes.data(), Bytes.size(), &Error)) << Error;
  EXPECT_EQ(B.size(), 2u);
  EXPECT_EQ(B.neighbors(), 3);
  EXPECT_EQ(B.predict({0.4, -1.0, 2.0}), A.predict({0.4, -1.0, 2.0}));
  std::vector<char> Bytes2;
  B.serialize(Bytes2);
  EXPECT_EQ(Bytes, Bytes2);

  // Truncated payloads must be rejected without touching the destination.
  NearestNeighborPredictor C(1);
  C.add({9.0, 9.0, 9.0}, {2, 2});
  EXPECT_FALSE(C.deserialize(Bytes.data(), Bytes.size() - 1, &Error));
  EXPECT_EQ(C.size(), 1u);
}

TEST(TreeSerialization, RoundTripPredictsIdentically) {
  std::vector<std::vector<double>> X;
  std::vector<int> Y;
  RNG R(11);
  for (int I = 0; I < 200; ++I) {
    const double A = R.nextUniform(-1, 1), B = R.nextUniform(-1, 1);
    X.push_back({A, B});
    Y.push_back((A > 0) != (B > 0) ? 1 : 0);
  }
  DecisionTree Fitted;
  Fitted.fit(X, Y, 2);
  std::vector<char> Bytes;
  Fitted.serialize(Bytes);

  DecisionTree Loaded;
  std::string Error;
  ASSERT_TRUE(Loaded.deserialize(Bytes.data(), Bytes.size(), &Error))
      << Error;
  EXPECT_EQ(Loaded.numNodes(), Fitted.numNodes());
  EXPECT_EQ(Loaded.depth(), Fitted.depth());
  for (const std::vector<double> &Row : X)
    EXPECT_EQ(Loaded.predict(Row), Fitted.predict(Row));

  // A corrupt child index must be rejected (it would walk out of the
  // node array — or cycle — at predict time).
  std::vector<char> Bad = Bytes;
  ASSERT_GT(Fitted.numNodes(), 1u);
  const size_t NodeArrayStart = 5 * 4 + 8; // 5 i32 header fields + u64.
  const size_t LeftOffset = NodeArrayStart + 4 + 8; // Feature + Threshold.
  const int32_t Evil = 1 << 20;
  std::memcpy(Bad.data() + LeftOffset, &Evil, sizeof(Evil));
  DecisionTree Untouched;
  EXPECT_FALSE(Untouched.deserialize(Bad.data(), Bad.size(), &Error));
  EXPECT_FALSE(Untouched.fitted());

  // A self-referential child (in range, but cyclic) must be rejected too:
  // predict() would otherwise never terminate.
  std::vector<char> Cyclic = Bytes;
  const int32_t Self = 0;
  std::memcpy(Cyclic.data() + LeftOffset, &Self, sizeof(Self));
  EXPECT_FALSE(Untouched.deserialize(Cyclic.data(), Cyclic.size(), &Error));

  // A split feature past the fitted width must be rejected: predict()
  // would read Row out of bounds.
  std::vector<char> WideFeature = Bytes;
  const int32_t Wide = 1000000;
  std::memcpy(WideFeature.data() + NodeArrayStart, &Wide, sizeof(Wide));
  EXPECT_FALSE(
      Untouched.deserialize(WideFeature.data(), WideFeature.size(), &Error));
  EXPECT_EQ(Loaded.numFeatures(), 2);
}

TEST(TreeSerialization, RejectsOutOfRangeLeafLabel) {
  // A pure one-leaf tree: predict() returns the leaf label verbatim, so
  // an out-of-range label would index the (VF, IF) class arrays out of
  // bounds at serve time.
  DecisionTree Tree;
  Tree.fit({{0.0}, {1.0}, {2.0}, {3.0}}, {1, 1, 1, 1}, 2);
  ASSERT_EQ(Tree.numNodes(), 1u);
  std::vector<char> Bytes;
  Tree.serialize(Bytes);
  const size_t LabelOffset = 5 * 4 + 8 + 4 + 8 + 4 + 4; // Header + node.
  ASSERT_EQ(Bytes.size(), LabelOffset + 4);
  std::string Error;
  for (int32_t Evil : {-3, 2, 1000}) {
    std::vector<char> Bad = Bytes;
    std::memcpy(Bad.data() + LabelOffset, &Evil, sizeof(Evil));
    DecisionTree Untouched;
    EXPECT_FALSE(Untouched.deserialize(Bad.data(), Bad.size(), &Error))
        << Evil;
  }
}

TEST(Backends, ContinuedTrainingInvalidatesSupervisedFit) {
  // More train() steps change the weights (and so the embedding space);
  // an NNS/tree fit from before must not survive looking valid.
  NeuroVectorizer NV(testConfig());
  ASSERT_TRUE(NV.addTrainingProgram("dot", DotProduct));
  NV.train(64);
  NV.fitSupervised(/*MaxSamples=*/1);
  ASSERT_TRUE(NV.supervisedReady());
  NV.train(64);
  EXPECT_FALSE(NV.supervisedReady());
}

TEST(Distillation, IsDeterministicFromAFixedCheckpoint) {
  // Distilling twice from the same weights must produce byte-identical
  // backends: labeling (brute force), embedding, and both fits are
  // RNG-free.
  NeuroVectorizer NV(testConfig(/*Seed=*/77));
  LoopGenerator Gen(5);
  for (const GeneratedLoop &L : Gen.generateMany(10))
    ASSERT_TRUE(NV.addTrainingProgram(L.Name, L.Source));
  NV.train(128);

  auto Snapshot = [&NV] {
    DecisionTree Tree;
    NearestNeighborPredictor NNS;
    const DistillReport Report =
        distill(NV.env(), NV.embedder(), NV.target(), NNS, Tree,
                DistillConfig{/*MaxSamples=*/10, /*BruteForcePasses=*/2});
    std::vector<char> Bytes;
    NNS.serialize(Bytes);
    Tree.serialize(Bytes);
    return std::make_pair(Report.Sites, Bytes);
  };
  const auto [SitesA, BytesA] = Snapshot();
  const auto [SitesB, BytesB] = Snapshot();
  EXPECT_GT(SitesA, 0u);
  EXPECT_EQ(SitesA, SitesB);
  EXPECT_EQ(BytesA, BytesB);

  // And the facade's fitSupervised is the same pipeline: refitting must
  // not change a single prediction.
  NV.fitSupervised(/*MaxSamples=*/10);
  const std::vector<VectorPlan> First = NV.plansFor(DotProduct,
                                                    PredictMethod::NNS);
  NV.fitSupervised(/*MaxSamples=*/10);
  const std::vector<VectorPlan> Second = NV.plansFor(DotProduct,
                                                     PredictMethod::NNS);
  ASSERT_EQ(First.size(), Second.size());
  for (size_t I = 0; I < First.size(); ++I)
    EXPECT_EQ(First[I], Second[I]);
}

TEST(Distillation, ReportsOracleQuality) {
  NeuroVectorizer NV(testConfig());
  ASSERT_TRUE(NV.addTrainingProgram("dot", DotProduct));
  const DistillReport Report = NV.fitSupervised();
  EXPECT_EQ(Report.Programs, 1u);
  EXPECT_EQ(Report.Sites, 1u);
  EXPECT_GT(Report.OracleEvaluations, 35); // Swept the grid at least once.
  // The oracle can only match or beat the baseline cost model.
  EXPECT_GE(Report.GeomeanOracleSpeedup, 1.0);
  EXPECT_TRUE(NV.supervisedReady());
}

TEST(EvaluatorMethods, EmitsFig7StyleTable) {
  NeuroVectorizer NV(testConfig(/*Seed=*/3));
  LoopGenerator Gen(21);
  for (const GeneratedLoop &L : Gen.generateMany(12))
    ASSERT_TRUE(NV.addTrainingProgram(L.Name, L.Source));
  NV.train(128);
  NV.fitSupervised(/*MaxSamples=*/12);

  Evaluator Eval{SimCompiler(), PathContextConfig()};
  ASSERT_GT(Eval.addSuite("benchmarks", evaluationBenchmarks()), 0u);

  const std::vector<PredictMethod> Methods = {
      PredictMethod::Random, PredictMethod::NNS, PredictMethod::DecisionTree,
      PredictMethod::RL, PredictMethod::BruteForce};
  const MethodReport Report =
      Eval.evaluateMethods(NV.embedder(), NV.backends(), Methods);
  ASSERT_EQ(Report.Suites.size(), 1u);
  ASSERT_EQ(Report.Overall.size(), Methods.size());
  EXPECT_GT(Report.NumPrograms, 0u);
  for (double Speedup : Report.Overall)
    EXPECT_GT(Speedup, 0.0);
  // The oracle bounds every other method from above (it tries every grid
  // point the others choose from).
  const double Brute = Report.overallFor(PredictMethod::BruteForce);
  EXPECT_GE(Brute + 1e-9, Report.overallFor(PredictMethod::RL));
  EXPECT_GE(Brute + 1e-9, Report.overallFor(PredictMethod::NNS));
  EXPECT_GE(Brute + 1e-9, Report.overallFor(PredictMethod::DecisionTree));
  EXPECT_GE(Brute, 1.0); // Never worse than the baseline it sweeps against.
  // Table shape: suite column, programs column, one column per method;
  // single suite => no "all programs" summary row.
  EXPECT_EQ(Report.speedupTable().numRows(), 1u);

  // An unready backend is skipped, not fatal: its column reports 1.0.
  NeuroVectorizer Unfitted(testConfig(/*Seed=*/4));
  const MethodReport Partial = Eval.evaluateMethods(
      Unfitted.embedder(), Unfitted.backends(), {PredictMethod::NNS});
  EXPECT_DOUBLE_EQ(Partial.Overall[0], 1.0);
}

} // namespace
