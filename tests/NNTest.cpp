//===- tests/NNTest.cpp - Matrix/layers/optimizer/distribution tests ------===//

#include "nn/Distributions.h"
#include "nn/Kernels.h"
#include "nn/Layers.h"
#include "nn/Matrix.h"
#include "nn/Optimizer.h"
#include "nn/Workspace.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

using namespace nv;

namespace {

Matrix randomMatrix(int Rows, int Cols, RNG &Rng) {
  Matrix M(Rows, Cols);
  M.initGaussian(Rng, 1.0);
  return M;
}

void expectNear(const Matrix &A, const Matrix &B, double Tol,
                const char *What) {
  ASSERT_EQ(A.rows(), B.rows()) << What;
  ASSERT_EQ(A.cols(), B.cols()) << What;
  for (int I = 0; I < A.rows(); ++I)
    for (int J = 0; J < A.cols(); ++J)
      EXPECT_NEAR(A.at(I, J), B.at(I, J), Tol)
          << What << " at (" << I << "," << J << ")";
}

TEST(Matrix, BasicOps) {
  Matrix A(2, 3, 1.0);
  Matrix B(2, 3, 2.0);
  A += B;
  EXPECT_DOUBLE_EQ(A.at(1, 2), 3.0);
  A *= 2.0;
  EXPECT_DOUBLE_EQ(A.at(0, 0), 6.0);
  A -= B;
  EXPECT_DOUBLE_EQ(A.at(0, 1), 4.0);
}

TEST(Matrix, Matmul) {
  Matrix A(2, 3);
  Matrix B(3, 2);
  int K = 0;
  for (int I = 0; I < 2; ++I)
    for (int J = 0; J < 3; ++J)
      A.at(I, J) = ++K;
  K = 0;
  for (int I = 0; I < 3; ++I)
    for (int J = 0; J < 2; ++J)
      B.at(I, J) = ++K;
  Matrix C = matmul(A, B);
  EXPECT_DOUBLE_EQ(C.at(0, 0), 22.0);
  EXPECT_DOUBLE_EQ(C.at(0, 1), 28.0);
  EXPECT_DOUBLE_EQ(C.at(1, 0), 49.0);
  EXPECT_DOUBLE_EQ(C.at(1, 1), 64.0);
}

TEST(Matrix, TransposedMultiplies) {
  RNG R(5);
  Matrix A(4, 3), B(4, 2), C(1, 3);
  A.initGaussian(R, 1.0);
  B.initGaussian(R, 1.0);
  C.initGaussian(R, 1.0);
  // A^T B == matmul of explicit transpose.
  Matrix TA = matmulTA(A, B);
  for (int I = 0; I < 3; ++I)
    for (int J = 0; J < 2; ++J) {
      double Want = 0;
      for (int K = 0; K < 4; ++K)
        Want += A.at(K, I) * B.at(K, J);
      EXPECT_NEAR(TA.at(I, J), Want, 1e-12);
    }
  // A C^T.
  Matrix TB = matmulTB(A, C); // (4x3) * (1x3)^T = 4x1.
  for (int I = 0; I < 4; ++I) {
    double Want = 0;
    for (int K = 0; K < 3; ++K)
      Want += A.at(I, K) * C.at(0, K);
    EXPECT_NEAR(TB.at(I, 0), Want, 1e-12);
  }
}

TEST(Matrix, SumRowsAndBroadcast) {
  Matrix A(2, 2);
  A.at(0, 0) = 1;
  A.at(0, 1) = 2;
  A.at(1, 0) = 3;
  A.at(1, 1) = 4;
  Matrix S = sumRows(A);
  EXPECT_DOUBLE_EQ(S.at(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(S.at(0, 1), 6.0);
  Matrix B = addRowBroadcast(A, S);
  EXPECT_DOUBLE_EQ(B.at(1, 0), 7.0);
}

TEST(Kernels, GemmMatchesNaiveReference) {
  RNG Rng(31);
  // Shapes straddle the MR=4 row-panel and NB=64 column-block boundaries
  // on purpose (exact, one-under, one-over in each dimension).
  const int Shapes[][3] = {{1, 1, 1},    {3, 5, 2},    {4, 48, 63},
                           {5, 7, 65},   {17, 40, 64}, {64, 64, 64},
                           {130, 33, 97}};
  for (const auto &S : Shapes) {
    const int M = S[0], K = S[1], N = S[2];
    Matrix A = randomMatrix(M, K, Rng);
    Matrix B = randomMatrix(K, N, Rng);
    Matrix C;
    gemmInto(C, A, B);
    expectNear(C, matmul(A, B), 1e-12, "gemmInto");

    Matrix TA = randomMatrix(K, M, Rng); // (R x M) with R = K.
    Matrix TB = randomMatrix(K, N, Rng);
    Matrix CTA;
    gemmTAInto(CTA, TA, TB);
    expectNear(CTA, matmulTA(TA, TB), 1e-12, "gemmTAInto");

    Matrix BT = randomMatrix(N, K, Rng);
    Matrix CTB;
    gemmTBInto(CTB, A, BT);
    expectNear(CTB, matmulTB(A, BT), 1e-12, "gemmTBInto");
  }
}

TEST(Kernels, GemmTAAccumulates) {
  RNG Rng(32);
  Matrix A = randomMatrix(9, 6, Rng), B = randomMatrix(9, 5, Rng);
  Matrix C(6, 5, 1.5);
  gemmTAInto(C, A, B, /*Accumulate=*/true);
  Matrix Want = matmulTA(A, B);
  for (int I = 0; I < 6; ++I)
    for (int J = 0; J < 5; ++J)
      EXPECT_NEAR(C.at(I, J), Want.at(I, J) + 1.5, 1e-12);
}

TEST(Kernels, FusedBiasActivationMatchesSeparateOps) {
  RNG Rng(33);
  Matrix X = randomMatrix(10, 13, Rng);
  Matrix W = randomMatrix(13, 50, Rng);
  Matrix Bias = randomMatrix(1, 50, Rng);

  Matrix Want = addRowBroadcast(matmul(X, W), Bias);
  Matrix Fused;
  gemmInto(Fused, X, W, &Bias, Activation::Identity);
  expectNear(Fused, Want, 1e-12, "fused bias");

  applyActivation(Want, Activation::Tanh);
  gemmInto(Fused, X, W, &Bias, Activation::Tanh);
  expectNear(Fused, Want, 1e-12, "fused bias+tanh");

  Matrix WantRelu = addRowBroadcast(matmul(X, W), Bias);
  applyActivation(WantRelu, Activation::ReLU);
  gemmInto(Fused, X, W, &Bias, Activation::ReLU);
  expectNear(Fused, WantRelu, 1e-12, "fused bias+relu");
}

TEST(Kernels, BitIdenticalAcrossPoolSizes) {
  // The determinism contract of the blocked kernels: every output
  // element's reduction order is fixed, so thread count never changes a
  // single bit. (PR 2's training determinism guarantee rests on this.)
  RNG Rng(34);
  Matrix A = randomMatrix(101, 37, Rng);
  Matrix B = randomMatrix(37, 53, Rng);
  Matrix Bias = randomMatrix(1, 53, Rng);
  // gemmTA computes A^T * B: the operands must agree on ROWS (the
  // contraction dimension), unlike plain gemm's cols-vs-rows.
  Matrix BTall = randomMatrix(101, 53, Rng);

  Matrix Serial;
  gemmInto(Serial, A, B, &Bias, Activation::Tanh, nullptr);
  for (int Threads : {1, 2, 4}) {
    ThreadPool Pool(Threads);
    Matrix Pooled;
    gemmInto(Pooled, A, B, &Bias, Activation::Tanh, &Pool);
    EXPECT_EQ(Serial.raw(), Pooled.raw()) << Threads << " threads";

    Matrix TASerial, TAPooled;
    gemmTAInto(TASerial, A, BTall);
    gemmTAInto(TAPooled, A, BTall, /*Accumulate=*/false, &Pool);
    EXPECT_EQ(TASerial.raw(), TAPooled.raw()) << Threads << " threads";

    Matrix BT = randomMatrix(53, 37, Rng);
    Matrix TBSerial, TBPooled;
    gemmTBInto(TBSerial, A, BT);
    gemmTBInto(TBPooled, A, BT, &Pool);
    EXPECT_EQ(TBSerial.raw(), TBPooled.raw()) << Threads << " threads";
  }
}

TEST(Kernels, WorkspaceReusesSlots) {
  Workspace WS;
  Matrix &A = WS.get(0, 8, 8);
  const double *Data = A.rowPtr(0);
  Matrix &B = WS.get(0, 4, 4); // Smaller shape: same allocation.
  EXPECT_EQ(&A, &B);
  EXPECT_EQ(B.rowPtr(0), Data);
  Matrix &C = WS.get(7, 2, 2); // Growing the table keeps references valid.
  (void)C;
  EXPECT_EQ(WS.get(0, 4, 4).rowPtr(0), Data);
}

TEST(Layers, ForwardIntoMatchesLegacyForward) {
  RNG R1(41), R2(41);
  MLP NetA({6, 9, 5, 3}, Activation::Tanh, R1);
  MLP NetB({6, 9, 5, 3}, Activation::Tanh, R2); // Same init stream.
  RNG RX(5);
  Matrix X = randomMatrix(7, 6, RX);

  Matrix Legacy = NetA.forward(X);
  Matrix InPlace;
  NetB.forwardInto(X, InPlace);
  EXPECT_EQ(Legacy.raw(), InPlace.raw());

  // Pooled forward is bit-identical too, and so is a repeat on the warm
  // buffers.
  ThreadPool Pool(2);
  Matrix Pooled;
  NetB.forwardInto(X, Pooled, &Pool);
  EXPECT_EQ(Legacy.raw(), Pooled.raw());
  NetB.forwardInto(X, Pooled, &Pool);
  EXPECT_EQ(Legacy.raw(), Pooled.raw());
}

/// Finite-difference gradient check of an MLP through a linear loss.
TEST(Layers, MLPGradientsMatchFiniteDifferences) {
  RNG R(11);
  MLP Net({5, 7, 4}, Activation::Tanh, R);
  Matrix X(3, 5);
  X.initGaussian(R, 1.0);
  Matrix G(3, 4);
  G.initGaussian(R, 1.0);

  auto LossOf = [&]() {
    Matrix Y = Net.forward(X);
    double L = 0;
    for (size_t I = 0; I < Y.size(); ++I)
      L += Y.raw()[I] * G.raw()[I];
    return L;
  };

  for (Param *P : Net.params())
    P->zeroGrad();
  (void)Net.forward(X);
  Matrix dX = Net.backward(G);

  const double Eps = 1e-6;
  double MaxRel = 0.0;
  for (Param *P : Net.params()) {
    for (size_t I = 0; I < P->Value.size(); I += 3) {
      const double Old = P->Value.raw()[I];
      P->Value.raw()[I] = Old + Eps;
      const double L1 = LossOf();
      P->Value.raw()[I] = Old - Eps;
      const double L2 = LossOf();
      P->Value.raw()[I] = Old;
      const double Num = (L1 - L2) / (2 * Eps);
      const double Ana = P->Grad.raw()[I];
      if (std::fabs(Num) + std::fabs(Ana) > 1e-10)
        MaxRel = std::max(MaxRel, std::fabs(Num - Ana) /
                                      (std::fabs(Num) + std::fabs(Ana)));
    }
  }
  EXPECT_LT(MaxRel, 1e-6);

  // Input gradient too.
  for (int Row = 0; Row < 3; ++Row)
    for (int Col = 0; Col < 5; ++Col) {
      const double Old = X.at(Row, Col);
      X.at(Row, Col) = Old + Eps;
      const double L1 = LossOf();
      X.at(Row, Col) = Old - Eps;
      const double L2 = LossOf();
      X.at(Row, Col) = Old;
      EXPECT_NEAR(dX.at(Row, Col), (L1 - L2) / (2 * Eps), 1e-5);
    }
}

TEST(Layers, ReLUBlocksNegativeGradient) {
  RNG R(3);
  ActivationLayer A(Activation::ReLU);
  Matrix X(1, 2);
  X.at(0, 0) = -1.0;
  X.at(0, 1) = 2.0;
  Matrix Y = A.forward(X);
  EXPECT_DOUBLE_EQ(Y.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(Y.at(0, 1), 2.0);
  Matrix G(1, 2, 1.0);
  Matrix dX = A.backward(G);
  EXPECT_DOUBLE_EQ(dX.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(dX.at(0, 1), 1.0);
}

TEST(Optimizer, SGDMinimizesQuadratic) {
  Param P(1, 1);
  P.Value.at(0, 0) = 5.0;
  SGD Opt(0.1);
  for (int I = 0; I < 200; ++I) {
    P.zeroGrad();
    P.Grad.at(0, 0) = 2.0 * P.Value.at(0, 0); // d/dx x^2.
    Opt.step({&P});
  }
  EXPECT_NEAR(P.Value.at(0, 0), 0.0, 1e-6);
}

TEST(Optimizer, AdamMinimizesQuadratic) {
  Param P(1, 2);
  P.Value.at(0, 0) = 4.0;
  P.Value.at(0, 1) = -3.0;
  Adam Opt(0.1);
  for (int I = 0; I < 500; ++I) {
    P.zeroGrad();
    P.Grad.at(0, 0) = 2.0 * (P.Value.at(0, 0) - 1.0);
    P.Grad.at(0, 1) = 2.0 * (P.Value.at(0, 1) + 2.0);
    Opt.step({&P});
  }
  EXPECT_NEAR(P.Value.at(0, 0), 1.0, 1e-3);
  EXPECT_NEAR(P.Value.at(0, 1), -2.0, 1e-3);
}

TEST(Optimizer, GradClipScalesDown) {
  Param P(1, 2);
  P.Grad.at(0, 0) = 3.0;
  P.Grad.at(0, 1) = 4.0; // Norm 5.
  const double Norm = clipGradNorm({&P}, 1.0);
  EXPECT_NEAR(Norm, 5.0, 1e-12);
  EXPECT_NEAR(P.Grad.at(0, 0), 0.6, 1e-12);
  EXPECT_NEAR(P.Grad.at(0, 1), 0.8, 1e-12);
}

TEST(Distributions, SoftmaxNormalizes) {
  std::vector<double> Probs = softmax({1.0, 2.0, 3.0});
  double Sum = 0;
  for (double P : Probs)
    Sum += P;
  EXPECT_NEAR(Sum, 1.0, 1e-12);
  EXPECT_GT(Probs[2], Probs[1]);
  EXPECT_GT(Probs[1], Probs[0]);
}

TEST(Distributions, SoftmaxStableForHugeLogits) {
  std::vector<double> Probs = softmax({1000.0, 1001.0});
  EXPECT_NEAR(Probs[0] + Probs[1], 1.0, 1e-12);
  EXPECT_FALSE(std::isnan(Probs[0]));
}

TEST(Distributions, LogSoftmaxMatchesSoftmax) {
  std::vector<double> Logits = {0.3, -1.2, 2.0, 0.0};
  std::vector<double> Probs = softmax(Logits);
  for (int I = 0; I < 4; ++I)
    EXPECT_NEAR(logSoftmaxAt(Logits, I), std::log(Probs[I]), 1e-12);
}

TEST(Distributions, EntropyMaxAtUniform) {
  EXPECT_NEAR(softmaxEntropy({1.0, 1.0, 1.0, 1.0}), std::log(4.0), 1e-12);
  EXPECT_LT(softmaxEntropy({10.0, 0.0, 0.0, 0.0}), 0.1);
}

TEST(Distributions, CategoricalSamplingFollowsProbs) {
  RNG R(19);
  std::vector<double> Logits = {0.0, std::log(3.0)}; // probs 1/4, 3/4.
  int Ones = 0;
  for (int I = 0; I < 8000; ++I)
    Ones += sampleCategorical(Logits, R);
  EXPECT_NEAR(Ones / 8000.0, 0.75, 0.03);
}

TEST(Distributions, CategoricalGradIsOneHotMinusProbs) {
  std::vector<double> Logits = {0.5, -0.5, 1.5};
  std::vector<double> Probs = softmax(Logits);
  std::vector<double> Grad = categoricalLogProbGrad(Logits, 1);
  EXPECT_NEAR(Grad[0], -Probs[0], 1e-12);
  EXPECT_NEAR(Grad[1], 1.0 - Probs[1], 1e-12);
  EXPECT_NEAR(Grad[2], -Probs[2], 1e-12);
}

TEST(Distributions, GaussianLogProbAndGrad) {
  const double LP = gaussianLogProb(0.0, 0.0, 0.0);
  EXPECT_NEAR(LP, -0.5 * std::log(2.0 * M_PI), 1e-12);
  // Finite-difference check of the gradients.
  const double X = 0.7, Mean = 0.2, LogStd = -0.3, Eps = 1e-6;
  double dMean, dLogStd;
  gaussianLogProbGrad(X, Mean, LogStd, dMean, dLogStd);
  EXPECT_NEAR(dMean,
              (gaussianLogProb(X, Mean + Eps, LogStd) -
               gaussianLogProb(X, Mean - Eps, LogStd)) /
                  (2 * Eps),
              1e-6);
  EXPECT_NEAR(dLogStd,
              (gaussianLogProb(X, Mean, LogStd + Eps) -
               gaussianLogProb(X, Mean, LogStd - Eps)) /
                  (2 * Eps),
              1e-6);
}

} // namespace

//===----------------------------------------------------------------------===//
// Kernel ISA dispatch + cross-tier equivalence (docs/kernels.md contract)
//===----------------------------------------------------------------------===//

namespace {

/// Restores the dispatched tier on scope exit so ISA-switching tests
/// cannot leak a clamped tier into later tests.
struct IsaGuard {
  KernelIsa Saved;
  IsaGuard() : Saved(kernelIsa()) {}
  ~IsaGuard() { setKernelIsa(Saved); }
};

/// Every tier this binary + machine can actually run (always >= {Scalar}).
std::vector<KernelIsa> availableIsas() {
  std::vector<KernelIsa> Tiers = {KernelIsa::Scalar};
  if (detectKernelIsa() >= KernelIsa::Avx2)
    Tiers.push_back(KernelIsa::Avx2);
  if (detectKernelIsa() >= KernelIsa::Avx512)
    Tiers.push_back(KernelIsa::Avx512);
  return Tiers;
}

} // namespace

TEST(KernelIsa, SetClampsToDetected) {
  IsaGuard Guard;
  // Requests above the detected tier clamp down; Scalar always applies.
  EXPECT_LE(setKernelIsa(KernelIsa::Avx512), detectKernelIsa());
  EXPECT_EQ(setKernelIsa(KernelIsa::Scalar), KernelIsa::Scalar);
  EXPECT_EQ(kernelIsa(), KernelIsa::Scalar);
  EXPECT_STREQ(kernelIsaName(KernelIsa::Scalar), "scalar");
  EXPECT_STREQ(kernelIsaName(KernelIsa::Avx2), "avx2");
  EXPECT_STREQ(kernelIsaName(KernelIsa::Avx512), "avx512");
}

TEST(KernelIsa, GemmBitIdenticalAcrossTiers) {
  // The strong half of the contract: gemmInto and gemmTAInto promise
  // bit-identical results on every tier (each output element is one
  // ascending-k FMA chain regardless of vector width). The shapes cross
  // the 4/8/16-column vector boundaries and their scalar tails.
  IsaGuard Guard;
  RNG Rng(71);
  const int Shapes[][3] = {{1, 1, 1},   {3, 5, 2},    {4, 32, 15},
                           {2, 8, 9},   {5, 7, 65},   {17, 40, 64},
                           {64, 64, 64}, {130, 33, 97}};
  const Activation Acts[] = {Activation::Identity, Activation::ReLU,
                             Activation::Tanh};
  for (const auto &S : Shapes) {
    const int M = S[0], K = S[1], N = S[2];
    Matrix A = randomMatrix(M, K, Rng);
    Matrix B = randomMatrix(K, N, Rng);
    Matrix Bias = randomMatrix(1, N, Rng);
    Matrix TA = randomMatrix(K, M, Rng);

    for (Activation Act : Acts) {
      setKernelIsa(KernelIsa::Scalar);
      Matrix Ref;
      gemmInto(Ref, A, B, &Bias, Act);
      for (KernelIsa Isa : availableIsas()) {
        setKernelIsa(Isa);
        Matrix C;
        gemmInto(C, A, B, &Bias, Act);
        EXPECT_EQ(Ref.raw(), C.raw())
            << kernelIsaName(Isa) << " " << M << "x" << K << "x" << N;
      }
    }

    setKernelIsa(KernelIsa::Scalar);
    Matrix TARef, TAAccRef(M, N, 0.25);
    gemmTAInto(TARef, TA, B);
    gemmTAInto(TAAccRef, TA, B, /*Accumulate=*/true);
    for (KernelIsa Isa : availableIsas()) {
      setKernelIsa(Isa);
      Matrix C, CAcc(M, N, 0.25);
      gemmTAInto(C, TA, B);
      gemmTAInto(CAcc, TA, B, /*Accumulate=*/true);
      EXPECT_EQ(TARef.raw(), C.raw()) << kernelIsaName(Isa);
      EXPECT_EQ(TAAccRef.raw(), CAcc.raw()) << kernelIsaName(Isa);
    }
  }
}

TEST(KernelIsa, GemmTBDeterministicPerTier) {
  // The weak half: gemmTBInto vectorizes over k with per-lane partial
  // sums, so tiers agree only within rounding — but each tier is
  // deterministic and pool-size-invariant on its own.
  IsaGuard Guard;
  RNG Rng(72);
  Matrix A = randomMatrix(23, 37, Rng);
  Matrix B = randomMatrix(19, 37, Rng);

  setKernelIsa(KernelIsa::Scalar);
  Matrix Ref;
  gemmTBInto(Ref, A, B);
  for (KernelIsa Isa : availableIsas()) {
    setKernelIsa(Isa);
    Matrix C1, C2;
    gemmTBInto(C1, A, B);
    gemmTBInto(C2, A, B);
    EXPECT_EQ(C1.raw(), C2.raw()) << kernelIsaName(Isa) << " reruns";
    ThreadPool Pool(3);
    Matrix Pooled;
    gemmTBInto(Pooled, A, B, &Pool);
    EXPECT_EQ(C1.raw(), Pooled.raw()) << kernelIsaName(Isa) << " pooled";
    expectNear(Ref, C1, 1e-11, kernelIsaName(Isa));
  }
}

TEST(KernelIsa, EnvOverrideNamesParse) {
  // setKernelIsa mirrors the NV_KERNEL_ISA parsing (same clamp); the env
  // knob itself is read once at startup, so here we only pin the clamp
  // semantics the knob relies on.
  IsaGuard Guard;
  const KernelIsa Detected = detectKernelIsa();
  EXPECT_EQ(setKernelIsa(Detected), Detected);
  EXPECT_EQ(setKernelIsa(KernelIsa::Avx512),
            std::min(KernelIsa::Avx512, Detected));
}

//===----------------------------------------------------------------------===//
// Int8 quantized inference kernels (docs/quantization.md)
//===----------------------------------------------------------------------===//

TEST(KernelsInt8, MatchesFp32WithinQuantTolerance) {
  RNG Rng(81);
  // In = 33 exercises the zero-padded KPad tail; Out = 300 crosses the
  // dispatcher's 256-column accumulator chunk.
  const int Shapes[][3] = {{1, 1, 1}, {4, 33, 7}, {9, 64, 300}, {17, 40, 64}};
  const Activation Acts[] = {Activation::Identity, Activation::ReLU,
                             Activation::Tanh};
  for (const auto &S : Shapes) {
    const int M = S[0], K = S[1], N = S[2];
    Matrix X = randomMatrix(M, K, Rng);
    Matrix W = randomMatrix(K, N, Rng);
    Matrix Bias = randomMatrix(1, N, Rng);
    QuantizedLinear Q;
    quantizeLinearWeights(W, Q);
    EXPECT_TRUE(Q.ready());
    EXPECT_EQ(Q.KPad % 32, 0);
    for (Activation Act : Acts) {
      Matrix F, I8;
      gemmInto(F, X, W, &Bias, Act);
      QuantScratch Scratch;
      gemmQuantInto(I8, X, Q, &Bias, Act, Scratch);
      ASSERT_EQ(F.rows(), I8.rows());
      ASSERT_EQ(F.cols(), I8.cols());
      // Symmetric per-row x per-output scales: each product carries
      // ~1/127 relative error per factor and the errors accumulate like
      // a random walk over k, so the bound grows with sqrt(K). Loose
      // enough for Gaussian data at any K here, tight enough that a
      // broken kernel (errors ~ output magnitude) fails outright.
      double MaxAbs = 0.0;
      for (double V : F.raw())
        MaxAbs = std::max(MaxAbs, std::fabs(V));
      const double Tol = 0.05 * std::sqrt(static_cast<double>(K)) *
                         (1.0 + MaxAbs);
      for (size_t E = 0; E < F.raw().size(); ++E)
        EXPECT_NEAR(F.raw()[E], I8.raw()[E], Tol)
            << M << "x" << K << "x" << N;
    }
  }
}

TEST(KernelsInt8, BitIdenticalAcrossTiersAndPools) {
  // Integer accumulation is exact, so the int8 path is bit-identical not
  // just across pool sizes but across ISA tiers too — stronger than the
  // fp64 gemmTB story, and what lets a quantized deployment pin plans
  // across heterogeneous serving hosts.
  IsaGuard Guard;
  RNG Rng(82);
  Matrix X = randomMatrix(13, 47, Rng);
  Matrix W = randomMatrix(47, 66, Rng);
  Matrix Bias = randomMatrix(1, 66, Rng);
  QuantizedLinear Q;
  quantizeLinearWeights(W, Q);

  setKernelIsa(KernelIsa::Scalar);
  Matrix Ref;
  QuantScratch RefScratch;
  gemmQuantInto(Ref, X, Q, &Bias, Activation::Tanh, RefScratch);
  for (KernelIsa Isa : availableIsas()) {
    setKernelIsa(Isa);
    QuantScratch Scratch;
    Matrix C;
    gemmQuantInto(C, X, Q, &Bias, Activation::Tanh, Scratch);
    EXPECT_EQ(Ref.raw(), C.raw()) << kernelIsaName(Isa);
    ThreadPool Pool(3);
    Matrix Pooled;
    gemmQuantInto(Pooled, X, Q, &Bias, Activation::Tanh, Scratch, &Pool);
    EXPECT_EQ(Ref.raw(), Pooled.raw()) << kernelIsaName(Isa) << " pooled";
  }
}

TEST(KernelsInt8, ZeroAndTinyWeightsStayFinite) {
  // All-zero weight columns take the scale-1.0 fallback; the output must
  // be exactly bias (then activation), never NaN.
  Matrix W(16, 3, 0.0);
  W.at(0, 1) = 1e-30; // Denormal-ish column still quantizes cleanly.
  Matrix X(2, 16, 0.5);
  Matrix Bias(1, 3, 0.25);
  QuantizedLinear Q;
  quantizeLinearWeights(W, Q);
  QuantScratch Scratch;
  Matrix Y;
  gemmQuantInto(Y, X, Q, &Bias, Activation::Identity, Scratch);
  EXPECT_DOUBLE_EQ(Y.at(0, 0), 0.25);
  EXPECT_DOUBLE_EQ(Y.at(1, 2), 0.25);
  for (double V : Y.raw())
    EXPECT_TRUE(std::isfinite(V));
}

TEST(KernelsInt8, LinearLayerQuantizesInferenceOnly) {
  RNG R1(91), R2(91);
  LinearLayer Plain(12, 8, R1);
  LinearLayer Quant(12, 8, R2); // Identical init stream.
  Quant.quantizeForInference();
  EXPECT_TRUE(Quant.isQuantized());
  EXPECT_FALSE(Plain.isQuantized());

  RNG Rx(92);
  Matrix X = randomMatrix(5, 12, Rx);
  // Training-shaped forward (CacheInput = true): the quantized layer must
  // take the fp32 path bit for bit — gradients depend on it.
  Matrix YPlain, YQuant;
  Plain.forwardInto(X, YPlain, Activation::Tanh, nullptr,
                    /*CacheInput=*/true);
  Quant.forwardInto(X, YQuant, Activation::Tanh, nullptr,
                    /*CacheInput=*/true);
  EXPECT_EQ(YPlain.raw(), YQuant.raw());

  // Inference forward: int8 path — near fp32, not (generally) equal.
  Matrix YInfer;
  Quant.forwardInto(X, YInfer, Activation::Tanh, nullptr,
                    /*CacheInput=*/false);
  expectNear(YPlain, YInfer, 0.1, "int8 inference forward");

  Quant.clearQuantized();
  EXPECT_FALSE(Quant.isQuantized());
  Quant.forwardInto(X, YInfer, Activation::Tanh, nullptr,
                    /*CacheInput=*/false);
  EXPECT_EQ(YPlain.raw(), YInfer.raw()); // Back to fp32 exactly.
}

TEST(KernelsInt8, MLPQuantizeRoundTrip) {
  RNG R(93);
  MLP Net({10, 16, 4}, Activation::Tanh, R);
  EXPECT_FALSE(Net.isQuantized());
  Net.quantizeForInference();
  EXPECT_TRUE(Net.isQuantized());

  RNG Rx(94);
  Matrix X = randomMatrix(3, 10, Rx);
  Matrix Fp32, Int8;
  Net.forwardInto(X, Fp32, nullptr, /*ActivateLast=*/false,
                  /*ForBackward=*/true); // Training path: fp32.
  Net.forwardInto(X, Int8, nullptr, /*ActivateLast=*/false,
                  /*ForBackward=*/false); // Inference path: int8.
  expectNear(Fp32, Int8, 0.15, "quantized MLP forward");

  Net.clearQuantized();
  EXPECT_FALSE(Net.isQuantized());
}
