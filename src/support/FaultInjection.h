//===- support/FaultInjection.h - Deterministic fault-point registry -*- C++
//-*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide registry of named fault points compiled into the I/O
/// and serving hot paths (socket reads/writes, file persistence, the
/// request executors, model reload), so the chaos suite and the CI chaos
/// job can make real failures happen on demand — deterministically.
///
/// Arming is env- or call-driven. The `NV_FAULT` grammar is a
/// comma-separated list of `point=spec` pairs:
///
///   NV_FAULT="socket.write=0.01,file.fsync=fail@3,exec.slow=50ms"
///
///   p          probability in [0, 1]: the point fails each hit with
///              probability p (decided by a seeded, hit-indexed stream —
///              the same seed always produces the same fire pattern,
///              regardless of thread interleaving).
///   fail@N     the point fails on exactly its N-th hit (1-based), once.
///   abort@N    the process calls abort() on the N-th hit — a simulated
///              crash for the mid-save kill tests (fork first!).
///   Nms        every hit sleeps N milliseconds, then proceeds normally
///              (latency injection; never reports failure).
///
/// `NV_FAULT_SEED` selects the decision stream (default below); the
/// probability form derives one decorrelated stream per point via the
/// existing RNG::split scheme and indexes it by hit count, so concurrent
/// hooks agree with a serial replay.
///
/// Cost contract: an unarmed process pays ONE relaxed atomic load per
/// hook (see fault::fired) — cheap enough to compile the hooks into
/// release builds permanently, which is the point: the binary that runs
/// the chaos suite is the binary that ships. bench/serve_net runs with
/// the hooks compiled in but unarmed and must stay inside the perf gate.
///
//===----------------------------------------------------------------------===//

#ifndef NV_SUPPORT_FAULTINJECTION_H
#define NV_SUPPORT_FAULTINJECTION_H

#include <atomic>
#include <cstdint>
#include <string>

namespace nv {
namespace fault {

/// What an armed point does when its spec says "this hit fires".
enum class FaultKind : uint8_t {
  Fail,  ///< The hook reports failure (probability and fail@N forms).
  Abort, ///< The process aborts — a simulated crash (abort@N form).
  Delay, ///< Sleep, then proceed normally (Nms form).
};

/// One parsed `point=spec` arm.
struct FaultSpec {
  FaultKind Kind = FaultKind::Fail;
  double Probability = 0.0; ///< Probability form (NthHit == 0).
  uint64_t NthHit = 0;      ///< fail@N / abort@N form (1-based); 0 = off.
  uint64_t DelayMicros = 0; ///< Delay form.
};

/// One named injection site. Stable address for the lifetime of the
/// process (hooks resolve it once into a static local); counters are
/// readable any time for tests and the statsz fault section.
class FaultPoint {
public:
  const std::string &name() const { return Name; }
  uint64_t hits() const { return Hits.load(std::memory_order_relaxed); }
  uint64_t fired() const { return Fired.load(std::memory_order_relaxed); }
  bool armed() const { return Armed.load(std::memory_order_acquire); }

private:
  friend class FaultRegistry;
  friend bool firedSlow(FaultPoint &P);

  std::string Name;
  std::atomic<uint64_t> Hits{0};  ///< Evaluations since last arm().
  std::atomic<uint64_t> Fired{0}; ///< Hits whose spec fired.
  std::atomic<bool> Armed{false}; ///< Spec below is live (release/acquire).
  FaultSpec Spec;                 ///< Written before Armed, under the
                                  ///< registry mutex.
  uint64_t Stream = 0;            ///< Per-point decision stream seed.
};

/// Default decision seed (same constant the RNG default uses).
constexpr uint64_t DefaultSeed = 0x9E3779B97F4A7C15ull;

/// The process-wide registry. instance() parses `NV_FAULT` /
/// `NV_FAULT_SEED` once on first touch (a static initializer in
/// FaultInjection.cpp touches it at startup, so env arming needs no call
/// site at all).
class FaultRegistry {
public:
  static FaultRegistry &instance();

  /// Parses \p Spec (the NV_FAULT grammar) and arms the named points,
  /// replacing any previous arming and resetting every hit counter.
  /// Points named before they are first hit are remembered and applied
  /// on registration. Returns false (and sets \p Error) on a grammar
  /// error — nothing is armed then.
  bool arm(const std::string &Spec, uint64_t Seed = DefaultSeed,
           std::string *Error = nullptr);

  /// Disarms every point (hooks return to the one-load fast path) and
  /// resets hit counters.
  void disarm();

  /// True when any point is armed (mirrors the fast-path flag).
  bool armed() const;

  /// Returns the stable point registered under \p Name (creating it
  /// unarmed on first use). Hooks call this once via a static local.
  FaultPoint &point(const std::string &Name);

  /// One JSON object per armed point (name, hits, fired) as a JSON
  /// array — the statsz "faults" section and the chaos job's evidence
  /// that the profile actually exercised the points.
  std::string statusJson() const;

private:
  FaultRegistry();
  struct Impl;
  Impl *I; ///< Leaked intentionally: hooks may run during shutdown.
};

/// The one-load fast path flag. Never read directly — use fired().
extern std::atomic<bool> ProcessArmed;

/// Armed-path evaluation of \p P (counts the hit, applies the spec,
/// sleeps for Delay kinds, aborts for Abort kinds). Returns true when
/// the hook must report failure.
bool firedSlow(FaultPoint &P);

/// Convenience accessor for hook sites:
///   static fault::FaultPoint &FP = fault::point("socket.write");
inline FaultPoint &point(const std::string &Name) {
  return FaultRegistry::instance().point(Name);
}

/// THE hook. Zero-cost when the process is unarmed: one relaxed load of
/// a process-global flag, no function call, no lock.
inline bool fired(FaultPoint &P) {
  if (!ProcessArmed.load(std::memory_order_relaxed))
    return false;
  return firedSlow(P);
}

} // namespace fault
} // namespace nv

#endif // NV_SUPPORT_FAULTINJECTION_H
