//===- support/ThreadPool.h - Shared worker pool ----------------*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size worker pool shared by the serving layer (parallel parse /
/// extract / render phases), the training rollout workers, and the NN math
/// kernels (row-panel-parallel GEMM, see nn/Kernels.h). Deliberately
/// small: a job queue for fire-and-forget work plus a parallelFor that
/// hands out indices through one atomic counter.
///
/// parallelFor tracks completion *per call* (a completed-index count owned
/// by the call, not the pool-global in-flight counter), so concurrent
/// callers never wait on each other's work, and the calling thread itself
/// claims indices alongside the workers — a parallelFor issued from inside
/// a pool job completes even when every worker is busy.
///
/// An owner may attachTelemetry() the pool to a MetricsRegistry, after
/// which it exports queue depth (gauge), tasks run (counter), and
/// enqueue-to-start wait latency (histogram). Unattached pools (the
/// default) pay nothing — not even a clock read per task.
///
//===----------------------------------------------------------------------===//

#ifndef NV_SUPPORT_THREADPOOL_H
#define NV_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

namespace nv {

class Counter;
class Gauge;
class MetricsRegistry;
class ShardedHistogram;

/// Fixed-size thread pool.
class ThreadPool {
public:
  /// Spawns \p Threads workers. Values < 1 are clamped to 1; a pool of
  /// size 1 still runs jobs on the worker thread (uniform behaviour), so
  /// callers never need a special single-threaded path.
  explicit ThreadPool(int Threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  int size() const { return static_cast<int>(Workers.size()); }

  /// Enqueues \p Job for execution on some worker.
  void run(std::function<void()> Job);

  /// Jobs queued but not yet picked up by a worker. A cheap saturation
  /// signal for admission control: a deep queue means new work will sit
  /// behind everything already enqueued, so callers with a latency budget
  /// (the network daemon) shed load instead of queueing more.
  size_t queueDepth() const;

  /// Queued + currently running jobs (the quantity wait() drains to 0).
  size_t inFlight() const;

  /// Exports this pool's queue metrics under \p Prefix (e.g.
  /// "serve.pool" -> "serve.pool.queue_depth" gauge, ".tasks" counter,
  /// ".queue_wait_us" histogram). Call before the pool sees traffic;
  /// not thread-safe against concurrent run().
  void attachTelemetry(MetricsRegistry &Metrics, const std::string &Prefix);

  /// Blocks until every enqueued job has finished — pool-global, so only
  /// meaningful for single-owner pools (e.g. train/RolloutWorkers, which
  /// pairs its own run() calls with one wait()). Concurrent-use paths
  /// should use parallelFor, which waits on its own work only.
  void wait();

  /// Runs Fn(I) for every I in [Begin, End) across the pool and the
  /// calling thread, returning when all indices are done. Indices are
  /// claimed through an atomic counter, so work distribution adapts to
  /// uneven item costs; completion is counted per call, so concurrent
  /// parallelFor calls (and nested ones issued from pool jobs) never
  /// block on each other's work.
  void parallelFor(size_t Begin, size_t End,
                   const std::function<void(size_t)> &Fn);

private:
  /// A queued job plus its enqueue timestamp (0 when unattached: the
  /// clock is only read while telemetry is on).
  struct Job {
    std::function<void()> Fn;
    uint64_t EnqueueMicros = 0;
  };

  void workerLoop();

  std::vector<std::thread> Workers;
  std::queue<Job> Jobs;
  mutable std::mutex QueueMutex;
  Gauge *QueueDepth = nullptr;         ///< attachTelemetry exports.
  Counter *TasksRun = nullptr;
  ShardedHistogram *QueueWaitUs = nullptr;
  std::condition_variable JobReady;  ///< Signals workers.
  std::condition_variable AllIdle;   ///< Signals wait().
  size_t InFlight = 0;               ///< Queued + currently running jobs.
  bool ShuttingDown = false;
};

} // namespace nv

#endif // NV_SUPPORT_THREADPOOL_H
