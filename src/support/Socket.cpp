//===- support/Socket.cpp - Minimal POSIX TCP helpers ---------------------===//

#include "support/Socket.h"

#include "support/FaultInjection.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

using namespace nv;

void FileDescriptor::reset(int NewFd) {
  if (Fd >= 0)
    ::close(Fd);
  Fd = NewFd;
}

namespace {

void setError(std::string *Error, const char *What) {
  if (Error)
    *Error = std::string(What) + ": " + std::strerror(errno);
}

/// Parses \p Host into \p Out (dotted quad or "localhost"); DNS is out of
/// scope for a loopback-serving daemon.
bool parseHost(const std::string &Host, in_addr &Out) {
  const std::string Addr =
      (Host.empty() || Host == "localhost") ? "127.0.0.1" : Host;
  return ::inet_pton(AF_INET, Addr.c_str(), &Out) == 1;
}

} // namespace

FileDescriptor nv::listenTcp(const std::string &Host, uint16_t Port,
                             std::string *Error, uint16_t *BoundPort) {
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  if (!parseHost(Host, Addr.sin_addr)) {
    if (Error)
      *Error = "bad listen address '" + Host + "'";
    return FileDescriptor();
  }

  FileDescriptor Sock(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!Sock) {
    setError(Error, "socket");
    return FileDescriptor();
  }
  const int One = 1;
  ::setsockopt(Sock.fd(), SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  if (::bind(Sock.fd(), reinterpret_cast<sockaddr *>(&Addr),
             sizeof(Addr)) != 0) {
    setError(Error, "bind");
    return FileDescriptor();
  }
  if (::listen(Sock.fd(), SOMAXCONN) != 0) {
    setError(Error, "listen");
    return FileDescriptor();
  }
  if (BoundPort) {
    sockaddr_in Bound{};
    socklen_t Len = sizeof(Bound);
    if (::getsockname(Sock.fd(), reinterpret_cast<sockaddr *>(&Bound),
                      &Len) != 0) {
      setError(Error, "getsockname");
      return FileDescriptor();
    }
    *BoundPort = ntohs(Bound.sin_port);
  }
  return Sock;
}

FileDescriptor nv::connectTcp(const std::string &Host, uint16_t Port,
                              std::string *Error, int TimeoutMs) {
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  if (!parseHost(Host, Addr.sin_addr)) {
    if (Error)
      *Error = "bad connect address '" + Host + "'";
    return FileDescriptor();
  }

  FileDescriptor Sock(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!Sock) {
    setError(Error, "socket");
    return FileDescriptor();
  }

  if (TimeoutMs > 0) {
    // Deadline-bounded connect: non-blocking connect, poll for
    // writability, then harvest SO_ERROR and restore blocking mode.
    const int Flags = ::fcntl(Sock.fd(), F_GETFL, 0);
    if (Flags < 0 || ::fcntl(Sock.fd(), F_SETFL, Flags | O_NONBLOCK) != 0) {
      setError(Error, "fcntl");
      return FileDescriptor();
    }
    int Status;
    do {
      Status = ::connect(Sock.fd(), reinterpret_cast<sockaddr *>(&Addr),
                         sizeof(Addr));
    } while (Status != 0 && errno == EINTR);
    if (Status != 0) {
      if (errno != EINPROGRESS) {
        setError(Error, "connect");
        return FileDescriptor();
      }
      pollfd Pfd{Sock.fd(), POLLOUT, 0};
      int Ready;
      do {
        Ready = ::poll(&Pfd, 1, TimeoutMs);
      } while (Ready < 0 && errno == EINTR);
      if (Ready == 0) {
        if (Error)
          *Error = "connect: timed out";
        return FileDescriptor();
      }
      if (Ready < 0) {
        setError(Error, "poll");
        return FileDescriptor();
      }
      int SoError = 0;
      socklen_t Len = sizeof(SoError);
      if (::getsockopt(Sock.fd(), SOL_SOCKET, SO_ERROR, &SoError, &Len) != 0 ||
          SoError != 0) {
        errno = SoError ? SoError : errno;
        setError(Error, "connect");
        return FileDescriptor();
      }
    }
    if (::fcntl(Sock.fd(), F_SETFL, Flags) != 0) {
      setError(Error, "fcntl");
      return FileDescriptor();
    }
  } else {
    int Status;
    do {
      Status = ::connect(Sock.fd(), reinterpret_cast<sockaddr *>(&Addr),
                         sizeof(Addr));
    } while (Status != 0 && errno == EINTR);
    if (Status != 0) {
      setError(Error, "connect");
      return FileDescriptor();
    }
  }
  const int One = 1;
  ::setsockopt(Sock.fd(), IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
  return Sock;
}

bool nv::setIoTimeouts(int Fd, int TimeoutMs) {
  timeval Tv{};
  Tv.tv_sec = TimeoutMs / 1000;
  Tv.tv_usec = (TimeoutMs % 1000) * 1000;
  if (::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Tv, sizeof(Tv)) != 0)
    return false;
  return ::setsockopt(Fd, SOL_SOCKET, SO_SNDTIMEO, &Tv, sizeof(Tv)) == 0;
}

bool nv::setNonBlocking(int Fd) {
  const int Flags = ::fcntl(Fd, F_GETFL, 0);
  if (Flags < 0)
    return false;
  return ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK) == 0;
}

bool nv::readFull(int Fd, void *Data, size_t Size) {
  static fault::FaultPoint &FP = fault::point("socket.read");
  if (fault::fired(FP))
    return false;
  char *Out = static_cast<char *>(Data);
  while (Size > 0) {
    const ssize_t N = ::read(Fd, Out, Size);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false; // Includes EAGAIN from an SO_RCVTIMEO deadline.
    }
    if (N == 0)
      return false; // EOF mid-frame.
    Out += N;
    Size -= static_cast<size_t>(N);
  }
  return true;
}

bool nv::writeFull(int Fd, const void *Data, size_t Size) {
  static fault::FaultPoint &FP = fault::point("socket.write");
  if (fault::fired(FP))
    return false;
  const char *In = static_cast<const char *>(Data);
  while (Size > 0) {
    // MSG_NOSIGNAL: a peer that vanished mid-response must surface as
    // EPIPE here, never as a process-killing SIGPIPE. Fall back to
    // ::write for non-socket descriptors (ENOTSOCK), e.g. pipes in tests.
    ssize_t N = ::send(Fd, In, Size, MSG_NOSIGNAL);
    if (N < 0 && errno == ENOTSOCK)
      N = ::write(Fd, In, Size);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false; // Includes EAGAIN from an SO_SNDTIMEO deadline.
    }
    In += N;
    Size -= static_cast<size_t>(N);
  }
  return true;
}
