//===- support/Telemetry.h - Process-wide metrics registry ------*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The observability layer: a registry of named counters, gauges, and
/// log-bucketed latency histograms (support/Histogram.h), plus the
/// process-wide trace buffer (support/TraceBuffer.h) and a JSONL run-log
/// writer for training timelines.
///
/// Registration (counter()/gauge()/histogram()) takes a mutex and is
/// meant for setup paths; instrumented hot paths resolve their metric
/// once and keep the pointer — recording itself is lock-free (relaxed
/// atomics). Everything is dumpable as one JSON document
/// (Telemetry::snapshotJson()), the payload a future /statsz endpoint
/// serves, with exact p50/p90/p99/p99.9 per histogram.
///
//===----------------------------------------------------------------------===//

#ifndef NV_SUPPORT_TELEMETRY_H
#define NV_SUPPORT_TELEMETRY_H

#include "support/Histogram.h"
#include "support/Table.h"
#include "support/TraceBuffer.h"

#include <atomic>
#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>

namespace nv {

/// Monotonic event counter.
class Counter {
public:
  void add(uint64_t N = 1) { V.fetch_add(N, std::memory_order_relaxed); }
  uint64_t value() const { return V.load(std::memory_order_relaxed); }
  void reset() { V.store(0, std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> V{0};
};

/// Last-value-wins instantaneous measurement (queue depth, EMA, stage).
class Gauge {
public:
  void set(double X) { V.store(X, std::memory_order_relaxed); }
  double value() const { return V.load(std::memory_order_relaxed); }

private:
  std::atomic<double> V{0.0};
};

/// Escapes \p S for inclusion in a JSON string literal.
std::string jsonEscape(const std::string &S);

/// One JSON object built field by field; str() closes it. Numbers are
/// emitted with enough precision to round-trip doubles.
class JsonLine {
public:
  JsonLine &field(const std::string &Key, const std::string &Value);
  JsonLine &field(const std::string &Key, const char *Value);
  JsonLine &field(const std::string &Key, double Value);
  JsonLine &field(const std::string &Key, uint64_t Value);
  JsonLine &field(const std::string &Key, long long Value);
  JsonLine &field(const std::string &Key, int Value);
  JsonLine &field(const std::string &Key, bool Value);
  /// Splices \p RawJson in verbatim (must itself be valid JSON).
  JsonLine &raw(const std::string &Key, const std::string &RawJson);
  std::string str() const;

private:
  std::ostringstream OS;
  bool First = true;

  void key(const std::string &Key);
};

/// Append-only JSONL sink for per-iteration training timelines. Each
/// write() emits one line and flushes, so a killed run keeps every batch
/// it completed. An empty path disables the log (write() is a no-op).
class RunLog {
public:
  RunLog() = default;
  explicit RunLog(const std::string &Path);

  bool enabled() const { return Out.is_open(); }
  void write(const JsonLine &Line);
  size_t lines() const { return Lines; }

private:
  std::ofstream Out;
  size_t Lines = 0;
};

/// Named metrics, stable addresses for the lifetime of the registry.
class MetricsRegistry {
public:
  Counter &counter(const std::string &Name);
  Gauge &gauge(const std::string &Name);
  ShardedHistogram &histogram(const std::string &Name);

  /// The full registry as one JSON object:
  /// {"counters": {...}, "gauges": {...}, "histograms": {name:
  /// {"count","sum_us","min_us","max_us","mean_us","p50_us","p90_us",
  /// "p99_us","p999_us"}, ...}}. Keys are sorted (std::map), so the
  /// document is deterministic for a quiesced registry.
  std::string snapshotJson() const;

  /// One row per histogram: count, mean/p50/p90/p99/p99.9/max in ms.
  Table histogramTable() const;

  /// Writes snapshotJson() to \p Path; false on I/O failure.
  bool writeJsonFile(const std::string &Path) const;

private:
  mutable std::mutex Mutex;
  std::map<std::string, std::unique_ptr<Counter>> Counters;
  std::map<std::string, std::unique_ptr<Gauge>> Gauges;
  std::map<std::string, std::unique_ptr<ShardedHistogram>> Histograms;
};

/// Process-wide telemetry singletons: the metrics registry every
/// subsystem records into and the trace buffer spans go to. Tracing is
/// off until someone turns the sampling knob
/// (trace().setSampleEvery(N)); histograms are always live — recording
/// one is a few relaxed atomic adds.
class Telemetry {
public:
  static MetricsRegistry &metrics();
  static TraceBuffer &trace();

  /// The /statsz payload: metrics plus trace-buffer status, one JSON
  /// document.
  static std::string snapshotJson();
};

} // namespace nv

#endif // NV_SUPPORT_TELEMETRY_H
