//===- support/Table.cpp - ASCII table / series printing ------------------===//

#include "support/Table.h"

#include <cassert>
#include <iomanip>
#include <ostream>
#include <sstream>

using namespace nv;

Table::Table(std::vector<std::string> Header) : Header(std::move(Header)) {
  assert(!this->Header.empty() && "table needs at least one column");
}

void Table::addRow(std::vector<std::string> Row) {
  assert(Row.size() == Header.size() && "row arity must match header");
  Rows.push_back(std::move(Row));
}

std::string Table::fmt(double Value, int Precision) {
  std::ostringstream OS;
  OS << std::fixed << std::setprecision(Precision) << Value;
  return OS.str();
}

void Table::print(std::ostream &OS) const {
  std::vector<size_t> Widths(Header.size(), 0);
  for (size_t C = 0; C < Header.size(); ++C)
    Widths[C] = Header[C].size();
  for (const auto &Row : Rows)
    for (size_t C = 0; C < Row.size(); ++C)
      Widths[C] = std::max(Widths[C], Row[C].size());

  auto PrintRow = [&](const std::vector<std::string> &Row) {
    for (size_t C = 0; C < Row.size(); ++C) {
      OS << (C == 0 ? "" : "  ");
      OS << std::left << std::setw(static_cast<int>(Widths[C])) << Row[C];
    }
    OS << '\n';
  };

  PrintRow(Header);
  size_t Total = 0;
  for (size_t C = 0; C < Widths.size(); ++C)
    Total += Widths[C] + (C == 0 ? 0 : 2);
  OS << std::string(Total, '-') << '\n';
  for (const auto &Row : Rows)
    PrintRow(Row);
}

void Series::print(std::ostream &OS, size_t MaxPoints) const {
  OS << "series: " << Name << '\n';
  if (Points.empty()) {
    OS << "  (empty)\n";
    return;
  }
  const size_t N = Points.size();
  const size_t Stride = N <= MaxPoints ? 1 : (N + MaxPoints - 1) / MaxPoints;
  for (size_t I = 0; I < N; I += Stride)
    OS << "  step " << std::setw(8) << Points[I].Step << "  value "
       << Table::fmt(Points[I].Value, 4) << '\n';
  if ((N - 1) % Stride != 0)
    OS << "  step " << std::setw(8) << Points[N - 1].Step << "  value "
       << Table::fmt(Points[N - 1].Value, 4) << '\n';
}

void nv::printBar(std::ostream &OS, const std::string &Label, double Value,
                  double MaxValue, int Width) {
  OS << std::left << std::setw(24) << Label << " |";
  int Fill = 0;
  if (MaxValue > 0)
    Fill = static_cast<int>(Value / MaxValue * Width + 0.5);
  Fill = std::min(std::max(Fill, 0), Width);
  OS << std::string(Fill, '#') << std::string(Width - Fill, ' ') << "| "
     << Table::fmt(Value) << "x\n";
}
