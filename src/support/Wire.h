//===- support/Wire.h - Little-endian byte-buffer helpers -------*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The raw append/read primitives shared by every binary persistence
/// format in the tree (serve/ModelSerializer, train/Checkpoint, and the
/// per-backend predictor sections). Values are written in host byte order
/// with doubles raw, so a round trip on the same machine class is bitwise
/// exact; every read is bounds-checked against the buffer so truncated
/// input fails a read instead of running off the end.
///
//===----------------------------------------------------------------------===//

#ifndef NV_SUPPORT_WIRE_H
#define NV_SUPPORT_WIRE_H

#include <cstddef>
#include <cstring>
#include <vector>

namespace nv {
namespace wire {

inline void appendBytes(std::vector<char> &Buffer, const void *Data,
                        size_t Size) {
  const char *Bytes = static_cast<const char *>(Data);
  Buffer.insert(Buffer.end(), Bytes, Bytes + Size);
}

template <typename T> void appendValue(std::vector<char> &Buffer, T Value) {
  appendBytes(Buffer, &Value, sizeof(T));
}

inline bool readBytes(const char *Data, size_t Size, size_t &Offset,
                      void *Out, size_t Bytes) {
  if (Offset + Bytes > Size)
    return false;
  std::memcpy(Out, Data + Offset, Bytes);
  Offset += Bytes;
  return true;
}

template <typename T>
bool readValue(const char *Data, size_t Size, size_t &Offset, T &Out) {
  return readBytes(Data, Size, Offset, &Out, sizeof(T));
}

template <typename T>
bool readValue(const std::vector<char> &Buffer, size_t &Offset, T &Out) {
  return readValue(Buffer.data(), Buffer.size(), Offset, Out);
}

} // namespace wire
} // namespace nv

#endif // NV_SUPPORT_WIRE_H
