//===- support/ThreadPool.cpp - Shared worker pool --------------------------===//

#include "support/ThreadPool.h"

#include "support/Telemetry.h"

#include <algorithm>
#include <atomic>
#include <memory>

using namespace nv;

ThreadPool::ThreadPool(int Threads) {
  const int Count = std::max(1, Threads);
  Workers.reserve(Count);
  for (int I = 0; I < Count; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    ShuttingDown = true;
  }
  JobReady.notify_all();
  for (std::thread &Worker : Workers)
    Worker.join();
}

void ThreadPool::attachTelemetry(MetricsRegistry &Metrics,
                                 const std::string &Prefix) {
  QueueDepth = &Metrics.gauge(Prefix + ".queue_depth");
  TasksRun = &Metrics.counter(Prefix + ".tasks");
  QueueWaitUs = &Metrics.histogram(Prefix + ".queue_wait_us");
}

void ThreadPool::run(std::function<void()> Fn) {
  const uint64_t EnqueueMicros = QueueWaitUs ? nowMicros() : 0;
  size_t Depth;
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    Jobs.push({std::move(Fn), EnqueueMicros});
    ++InFlight;
    Depth = Jobs.size();
  }
  if (QueueDepth)
    QueueDepth->set(static_cast<double>(Depth));
  JobReady.notify_one();
}

size_t ThreadPool::queueDepth() const {
  std::lock_guard<std::mutex> Lock(QueueMutex);
  return Jobs.size();
}

size_t ThreadPool::inFlight() const {
  std::lock_guard<std::mutex> Lock(QueueMutex);
  return InFlight;
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(QueueMutex);
  AllIdle.wait(Lock, [this] { return InFlight == 0; });
}

void ThreadPool::workerLoop() {
  for (;;) {
    Job Work;
    size_t Depth;
    {
      std::unique_lock<std::mutex> Lock(QueueMutex);
      JobReady.wait(Lock, [this] { return ShuttingDown || !Jobs.empty(); });
      if (Jobs.empty())
        return; // Shutting down and drained.
      Work = std::move(Jobs.front());
      Jobs.pop();
      Depth = Jobs.size();
    }
    if (TasksRun) {
      TasksRun->add();
      QueueDepth->set(static_cast<double>(Depth));
      if (Work.EnqueueMicros != 0)
        QueueWaitUs->record(nowMicros() - Work.EnqueueMicros);
    }
    Work.Fn();
    {
      std::lock_guard<std::mutex> Lock(QueueMutex);
      --InFlight;
      if (InFlight == 0)
        AllIdle.notify_all();
    }
  }
}

namespace {

/// Per-parallelFor completion state. Lanes are opportunistic helpers: the
/// call is complete when every *index* has run, not when every lane job has
/// been scheduled — so a lane that never gets a worker (all of them busy,
/// or the caller drained the range first) is not waited on. The callback
/// lives *in* the shared state: a stale lane job may run after the call
/// returned (it finds Next >= End and exits), and the shared_ptr keeps
/// everything it can touch alive until then.
struct ForState {
  std::function<void(size_t)> Fn;
  std::atomic<size_t> Next{0};
  std::atomic<size_t> Completed{0};
  size_t End = 0;
  size_t Total = 0;
  std::mutex Mutex;
  std::condition_variable AllDone;
};

/// Claims indices until the range is drained. Returns true if this lane
/// completed the final index.
bool drainRange(ForState &State, const std::function<void(size_t)> &Fn) {
  bool FinishedLast = false;
  for (size_t I = State.Next.fetch_add(1); I < State.End;
       I = State.Next.fetch_add(1)) {
    Fn(I);
    if (State.Completed.fetch_add(1) + 1 == State.Total)
      FinishedLast = true;
  }
  return FinishedLast;
}

} // namespace

void ThreadPool::parallelFor(size_t Begin, size_t End,
                             const std::function<void(size_t)> &Fn) {
  if (Begin >= End)
    return;
  if (End - Begin == 1) {
    Fn(Begin);
    return;
  }

  auto State = std::make_shared<ForState>();
  State->Fn = Fn;
  State->Next = Begin;
  State->End = End;
  State->Total = End - Begin;

  // The caller is one lane, so enqueue at most (range - 1) helper jobs.
  const size_t Lanes = std::min<size_t>(Workers.size(), End - Begin - 1);
  for (size_t L = 0; L < Lanes; ++L) {
    run([State] {
      if (drainRange(*State, State->Fn)) {
        std::lock_guard<std::mutex> Lock(State->Mutex);
        State->AllDone.notify_all();
      }
    });
  }

  drainRange(*State, Fn);
  if (State->Completed.load() == State->Total)
    return;
  std::unique_lock<std::mutex> Lock(State->Mutex);
  State->AllDone.wait(
      Lock, [&] { return State->Completed.load() == State->Total; });
}
