//===- support/Stats.cpp - Small statistics helpers -----------------------===//

#include "support/Stats.h"

#include <cassert>
#include <cmath>
#include <limits>

using namespace nv;

double nv::mean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double Sum = 0.0;
  for (double V : Values)
    Sum += V;
  return Sum / static_cast<double>(Values.size());
}

double nv::stddev(const std::vector<double> &Values) {
  if (Values.size() < 2)
    return 0.0;
  const double M = mean(Values);
  double Sum = 0.0;
  for (double V : Values)
    Sum += (V - M) * (V - M);
  return std::sqrt(Sum / static_cast<double>(Values.size()));
}

double nv::geomean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double LogSum = 0.0;
  for (double V : Values) {
    assert(V > 0.0 && "geomean() requires positive values");
    LogSum += std::log(V);
  }
  return std::exp(LogSum / static_cast<double>(Values.size()));
}

double nv::minOf(const std::vector<double> &Values) {
  double M = std::numeric_limits<double>::infinity();
  for (double V : Values)
    M = std::min(M, V);
  return M;
}

double nv::maxOf(const std::vector<double> &Values) {
  double M = -std::numeric_limits<double>::infinity();
  for (double V : Values)
    M = std::max(M, V);
  return M;
}

void RunningStats::add(double X) {
  if (N == 0) {
    Min = Max = X;
  } else {
    Min = std::min(Min, X);
    Max = std::max(Max, X);
  }
  ++N;
  const double Delta = X - Mean;
  Mean += Delta / static_cast<double>(N);
  M2 += Delta * (X - Mean);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  return N ? Min : std::numeric_limits<double>::infinity();
}

double RunningStats::max() const {
  return N ? Max : -std::numeric_limits<double>::infinity();
}
