//===- support/StringUtils.cpp - String helpers ---------------------------===//

#include "support/StringUtils.h"

using namespace nv;

std::vector<std::string> nv::split(const std::string &Text, char Sep) {
  std::vector<std::string> Parts;
  std::string Current;
  for (char C : Text) {
    if (C == Sep) {
      Parts.push_back(Current);
      Current.clear();
    } else {
      Current.push_back(C);
    }
  }
  Parts.push_back(Current);
  return Parts;
}

std::vector<std::string> nv::splitLines(const std::string &Text) {
  return split(Text, '\n');
}

std::string nv::join(const std::vector<std::string> &Parts,
                     const std::string &Sep) {
  std::string Result;
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (I != 0)
      Result += Sep;
    Result += Parts[I];
  }
  return Result;
}

std::string nv::trim(const std::string &Text) {
  size_t Begin = 0;
  size_t End = Text.size();
  while (Begin < End && std::isspace(static_cast<unsigned char>(Text[Begin])))
    ++Begin;
  while (End > Begin &&
         std::isspace(static_cast<unsigned char>(Text[End - 1])))
    --End;
  return Text.substr(Begin, End - Begin);
}

bool nv::startsWith(const std::string &Text, const std::string &Prefix) {
  return Text.size() >= Prefix.size() &&
         Text.compare(0, Prefix.size(), Prefix) == 0;
}

bool nv::contains(const std::string &Text, const std::string &Needle) {
  return Text.find(Needle) != std::string::npos;
}

std::string nv::replaceAll(std::string Text, const std::string &From,
                           const std::string &To) {
  if (From.empty())
    return Text;
  size_t Pos = 0;
  while ((Pos = Text.find(From, Pos)) != std::string::npos) {
    Text.replace(Pos, From.size(), To);
    Pos += To.size();
  }
  return Text;
}
