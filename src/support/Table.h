//===- support/Table.h - ASCII table / series printing ----------*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pretty-printers for the bench harnesses. Every paper figure is rendered
/// as either a row/column table (bar charts) or a sampled series (training
/// curves); these helpers keep the output format uniform across benches.
///
//===----------------------------------------------------------------------===//

#ifndef NV_SUPPORT_TABLE_H
#define NV_SUPPORT_TABLE_H

#include <string>
#include <vector>

namespace nv {

/// A simple column-aligned ASCII table.
///
/// Usage:
/// \code
///   Table T({"bench", "baseline", "RL"});
///   T.addRow({"s1", "1.00", "2.41"});
///   T.print(std::cout);
/// \endcode
class Table {
public:
  explicit Table(std::vector<std::string> Header);

  /// Appends one row; must have the same arity as the header.
  void addRow(std::vector<std::string> Row);

  /// Convenience: formats doubles with \p Precision decimals.
  static std::string fmt(double Value, int Precision = 2);

  /// Renders the table to \p OS with column alignment and a rule under the
  /// header.
  void print(std::ostream &OS) const;

  size_t numRows() const { return Rows.size(); }

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

/// A named (step, value) series, used to print training curves in text form
/// (reward mean / training loss per paper Figs 5-6).
class Series {
public:
  explicit Series(std::string Name) : Name(std::move(Name)) {}

  void add(double Step, double Value) { Points.push_back({Step, Value}); }

  const std::string &name() const { return Name; }
  size_t size() const { return Points.size(); }

  /// Prints up to \p MaxPoints evenly sampled points as "step value" pairs.
  void print(std::ostream &OS, size_t MaxPoints = 20) const;

private:
  struct Point {
    double Step;
    double Value;
  };
  std::string Name;
  std::vector<Point> Points;
};

/// Prints a horizontal bar chart line, e.g. "name  |#####     | 2.31x".
void printBar(std::ostream &OS, const std::string &Label, double Value,
              double MaxValue, int Width = 40);

} // namespace nv

#endif // NV_SUPPORT_TABLE_H
