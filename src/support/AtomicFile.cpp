//===- support/AtomicFile.cpp - Crash-safe atomic file replacement --------===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "AtomicFile.h"

#include "FaultInjection.h"

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

namespace nv {

namespace {

void setError(std::string *Error, const char *Step) {
  if (Error)
    *Error = std::string(Step) + ": " + std::strerror(errno);
}

/// Best-effort fsync of the directory containing \p Path, making the
/// rename itself durable. Returns false on failure (destination is kept).
bool syncParentDir(const std::string &Path) {
  std::size_t Slash = Path.find_last_of('/');
  std::string Dir = Slash == std::string::npos ? "." : Path.substr(0, Slash);
  if (Dir.empty())
    Dir = "/";
  int Fd = ::open(Dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (Fd < 0)
    return false;
  bool Ok = ::fsync(Fd) == 0;
  ::close(Fd);
  return Ok;
}

} // namespace

const char *saveStatusName(SaveStatus S) {
  switch (S) {
  case SaveStatus::Ok:
    return "ok";
  case SaveStatus::OpenFailed:
    return "open_failed";
  case SaveStatus::WriteFailed:
    return "write_failed";
  case SaveStatus::SyncFailed:
    return "sync_failed";
  case SaveStatus::RenameFailed:
    return "rename_failed";
  }
  return "unknown";
}

SaveStatus atomicWriteFile(const std::string &Path, const void *Data,
                           std::size_t Size, std::string *Error) {
  static fault::FaultPoint &WriteFP = fault::point("file.write");
  static fault::FaultPoint &FsyncFP = fault::point("file.fsync");
  static fault::FaultPoint &RenameFP = fault::point("file.rename");

  // Suffix with the pid so concurrent savers of the same path cannot
  // clobber each other's temp file; last rename wins on the destination.
  std::string Tmp = Path + ".tmp." + std::to_string(::getpid());
  int Fd = ::open(Tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0) {
    setError(Error, "open temp");
    return SaveStatus::OpenFailed;
  }

  auto fail = [&](SaveStatus St) {
    ::close(Fd);
    ::unlink(Tmp.c_str());
    return St;
  };

  // Chunked body writes: the per-chunk fault check is what lets an armed
  // `file.write=abort@N` tear the temp file part-way through a real
  // multi-chunk payload instead of before byte 0.
  constexpr std::size_t Chunk = 256u * 1024u;
  const char *P = static_cast<const char *>(Data);
  std::size_t Left = Size;
  do {
    if (fault::fired(WriteFP)) {
      if (Error)
        *Error = "write temp: fault injected (file.write)";
      return fail(SaveStatus::WriteFailed);
    }
    std::size_t N = Left < Chunk ? Left : Chunk;
    std::size_t Done = 0;
    while (Done < N) {
      ssize_t W = ::write(Fd, P + Done, N - Done);
      if (W < 0) {
        if (errno == EINTR)
          continue;
        setError(Error, "write temp");
        return fail(SaveStatus::WriteFailed);
      }
      Done += static_cast<std::size_t>(W);
    }
    P += N;
    Left -= N;
  } while (Left > 0);

  if (fault::fired(FsyncFP)) {
    if (Error)
      *Error = "fsync temp: fault injected (file.fsync)";
    return fail(SaveStatus::SyncFailed);
  }
  if (::fsync(Fd) != 0) {
    setError(Error, "fsync temp");
    return fail(SaveStatus::SyncFailed);
  }
  if (::close(Fd) != 0) {
    setError(Error, "close temp");
    ::unlink(Tmp.c_str());
    return SaveStatus::SyncFailed;
  }

  if (fault::fired(RenameFP)) {
    if (Error)
      *Error = "rename: fault injected (file.rename)";
    ::unlink(Tmp.c_str());
    return SaveStatus::RenameFailed;
  }
  if (::rename(Tmp.c_str(), Path.c_str()) != 0) {
    setError(Error, "rename");
    ::unlink(Tmp.c_str());
    return SaveStatus::RenameFailed;
  }

  // The data is already safely in place; a directory-sync failure only
  // risks the rename's durability, so keep the destination but report it.
  if (!syncParentDir(Path)) {
    setError(Error, "fsync dir");
    return SaveStatus::SyncFailed;
  }
  return SaveStatus::Ok;
}

} // namespace nv
