//===- support/Interner.h - Arena-backed string interner --------*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A string interner mapping each distinct string to a dense uint32_t
/// symbol id. Character data lives in a chunked arena (pointers stay
/// stable as the interner grows), and every symbol's 64-bit FNV-1a hash is
/// computed exactly once — at intern time — so hot paths that need a
/// string's hash repeatedly (the path-context extractor hashes every
/// terminal token into the embedding vocabulary) pay O(1) per use instead
/// of rehashing the bytes.
///
/// The table is open-addressing with linear probing over a power-of-two
/// slot array; probe starts are derived from the FNV hash through a
/// splitmix64 mix so FNV's byte-serial structure cannot cluster probes.
///
/// Not thread-safe: each extraction thread owns its own interner (inside
/// its embedding/ContextBuffer). A fully-built interner is safe to share
/// read-only through find()/text()/hash().
///
//===----------------------------------------------------------------------===//

#ifndef NV_SUPPORT_INTERNER_H
#define NV_SUPPORT_INTERNER_H

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

namespace nv {

/// String -> dense symbol id map with arena-backed storage.
class Interner {
public:
  Interner();

  /// Returns the symbol id of \p Text, interning it on first sight. Ids
  /// are dense and assigned in first-intern order (0, 1, 2, ...).
  uint32_t intern(std::string_view Text);

  /// Returns the id of \p Text if it is already interned (never inserts;
  /// safe on a const, shared interner).
  std::optional<uint32_t> find(std::string_view Text) const;

  /// The characters of symbol \p Id. The view stays valid for the
  /// interner's lifetime (arena chunks are never moved or freed).
  std::string_view text(uint32_t Id) const {
    const Symbol &S = Symbols[Id];
    return std::string_view(S.Data, S.Length);
  }

  /// The 64-bit FNV-1a hash of symbol \p Id's text, computed at intern
  /// time.
  uint64_t hash(uint32_t Id) const { return Symbols[Id].Hash; }

  /// Number of distinct symbols interned.
  size_t size() const { return Symbols.size(); }

  /// Drops every symbol and returns the arena to its initial chunk.
  void clear();

private:
  struct Symbol {
    const char *Data;
    uint32_t Length;
    uint64_t Hash;
  };

  /// Copies \p Text into the arena and returns the stable pointer.
  const char *store(std::string_view Text);

  /// Probes for \p Text (with precomputed \p Hash); returns the slot
  /// index holding it or the first empty slot.
  size_t probe(std::string_view Text, uint64_t Hash) const;

  /// Doubles the slot table and reinserts every symbol.
  void grow();

  std::vector<Symbol> Symbols;
  /// Symbol id + 1 per slot; 0 marks an empty slot.
  std::vector<uint32_t> Slots;
  /// Chunked character storage; chunks are fixed once allocated.
  std::vector<std::unique_ptr<char[]>> Chunks;
  size_t ChunkUsed = 0; ///< Bytes used in the newest chunk.
};

} // namespace nv

#endif // NV_SUPPORT_INTERNER_H
