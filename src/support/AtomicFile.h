//===- support/AtomicFile.h - Crash-safe atomic file replacement -*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Crash-safe whole-file replacement: write-temp → fsync → rename →
/// fsync-dir. A crash (or an injected abort) at any step leaves either
/// the old file intact or the new file complete — never a torn
/// destination. ModelSerializer and TrainCheckpoint both persist through
/// this, which is what makes the "kill the writer mid-save, assert the
/// model still loads" chaos tests pass.
///
/// Fault points (see support/FaultInjection.h): `file.write` fires per
/// 256 KiB chunk (so an armed abort@N genuinely tears the temp file
/// mid-body), `file.fsync`, `file.rename`.
///
//===----------------------------------------------------------------------===//

#ifndef NV_SUPPORT_ATOMICFILE_H
#define NV_SUPPORT_ATOMICFILE_H

#include <cstddef>
#include <string>

namespace nv {

/// Outcome of an atomic save, mirroring the LoadStatus idiom from
/// serve/ModelSerializer.h: a machine-readable code plus a human string
/// out-param at the call site.
enum class SaveStatus {
  Ok,
  OpenFailed,   ///< Could not create the temp file.
  WriteFailed,  ///< A body write failed (temp removed).
  SyncFailed,   ///< fsync of the temp file failed (temp removed).
  RenameFailed, ///< rename(temp, dest) failed (temp removed).
};

/// Short stable identifier for \p S ("ok", "write_failed", ...), used in
/// error payloads, run logs, and statsz.
const char *saveStatusName(SaveStatus S);

/// Atomically replaces \p Path with \p Size bytes from \p Data.
///
/// On any failure the temp file is unlinked and the previous \p Path
/// content is untouched. A failed *directory* fsync after a successful
/// rename keeps the destination (the data is good; durability of the
/// rename is all that's at risk) but still reports SyncFailed so callers
/// can log it.
SaveStatus atomicWriteFile(const std::string &Path, const void *Data,
                           std::size_t Size, std::string *Error = nullptr);

} // namespace nv

#endif // NV_SUPPORT_ATOMICFILE_H
