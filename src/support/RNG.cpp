//===- support/RNG.cpp - Deterministic random number generation ----------===//

#include "support/RNG.h"

#include <cmath>

using namespace nv;

static uint64_t splitMix64(uint64_t &X) {
  X += 0x9E3779B97F4A7C15ull;
  uint64_t Z = X;
  Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ull;
  Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBull;
  return Z ^ (Z >> 31);
}

static uint64_t rotl(uint64_t X, int K) {
  return (X << K) | (X >> (64 - K));
}

void RNG::reseed(uint64_t Seed) {
  uint64_t S = Seed;
  for (uint64_t &Word : State)
    Word = splitMix64(S);
  HasSpareGaussian = false;
}

uint64_t RNG::next() {
  const uint64_t Result = rotl(State[1] * 5, 7) * 9;
  const uint64_t T = State[1] << 17;
  State[2] ^= State[0];
  State[3] ^= State[1];
  State[1] ^= State[2];
  State[0] ^= State[3];
  State[2] ^= T;
  State[3] = rotl(State[3], 45);
  return Result;
}

uint64_t RNG::nextBounded(uint64_t Bound) {
  assert(Bound > 0 && "nextBounded() requires a positive bound");
  // Rejection sampling to avoid modulo bias.
  const uint64_t Threshold = -Bound % Bound;
  for (;;) {
    uint64_t R = next();
    if (R >= Threshold)
      return R % Bound;
  }
}

int64_t RNG::nextInt(int64_t Lo, int64_t Hi) {
  assert(Lo <= Hi && "nextInt() requires Lo <= Hi");
  return Lo + static_cast<int64_t>(
                  nextBounded(static_cast<uint64_t>(Hi - Lo) + 1));
}

double RNG::nextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double RNG::nextUniform(double Lo, double Hi) {
  return Lo + (Hi - Lo) * nextDouble();
}

double RNG::nextGaussian() {
  if (HasSpareGaussian) {
    HasSpareGaussian = false;
    return SpareGaussian;
  }
  double U, V, S;
  do {
    U = nextUniform(-1.0, 1.0);
    V = nextUniform(-1.0, 1.0);
    S = U * U + V * V;
  } while (S >= 1.0 || S == 0.0);
  const double Scale = std::sqrt(-2.0 * std::log(S) / S);
  SpareGaussian = V * Scale;
  HasSpareGaussian = true;
  return U * Scale;
}

std::size_t RNG::sampleWeighted(const std::vector<double> &Weights) {
  assert(!Weights.empty() && "sampleWeighted() on empty weights");
  double Total = 0.0;
  for (double W : Weights) {
    assert(W >= 0.0 && "weights must be non-negative");
    Total += W;
  }
  if (Total <= 0.0)
    return nextBounded(Weights.size());
  double Target = nextDouble() * Total;
  for (std::size_t I = 0; I < Weights.size(); ++I) {
    Target -= Weights[I];
    if (Target < 0.0)
      return I;
  }
  return Weights.size() - 1;
}

RNG RNG::split() { return RNG(next() ^ 0xD1B54A32D192ED03ull); }

RNG RNG::split(uint64_t StreamId) const {
  // Fold the stream id and all four state words through SplitMix64. Each
  // fold rekeys the chain, so nearby ids (0, 1, 2, ...) land in unrelated
  // seeds. Const: the parent state is read, never advanced.
  uint64_t X = StreamId ^ 0xD1B54A32D192ED03ull;
  uint64_t Seed = splitMix64(X);
  for (uint64_t Word : State) {
    X ^= Word;
    Seed ^= splitMix64(X);
  }
  return RNG(Seed);
}

RNG::Snapshot RNG::snapshot() const {
  Snapshot S;
  for (int I = 0; I < 4; ++I)
    S.State[I] = State[I];
  S.HasSpareGaussian = HasSpareGaussian;
  S.SpareGaussian = SpareGaussian;
  return S;
}

void RNG::restore(const Snapshot &S) {
  for (int I = 0; I < 4; ++I)
    State[I] = S.State[I];
  HasSpareGaussian = S.HasSpareGaussian;
  SpareGaussian = S.SpareGaussian;
}
