//===- support/StringUtils.h - String helpers -------------------*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small string utilities shared by the lexer, the pragma injector, and the
/// dataset generators.
///
//===----------------------------------------------------------------------===//

#ifndef NV_SUPPORT_STRINGUTILS_H
#define NV_SUPPORT_STRINGUTILS_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace nv {

/// Splits \p Text on \p Sep, keeping empty fields.
std::vector<std::string> split(const std::string &Text, char Sep);

/// Splits \p Text into lines (splitting on '\n').
std::vector<std::string> splitLines(const std::string &Text);

/// Joins \p Parts with \p Sep.
std::string join(const std::vector<std::string> &Parts,
                 const std::string &Sep);

/// Removes leading and trailing whitespace.
std::string trim(const std::string &Text);

/// Returns true if \p Text starts with \p Prefix.
bool startsWith(const std::string &Text, const std::string &Prefix);

/// Returns true if \p Text contains \p Needle.
bool contains(const std::string &Text, const std::string &Needle);

/// Replaces every occurrence of \p From in \p Text with \p To.
std::string replaceAll(std::string Text, const std::string &From,
                       const std::string &To);

/// FNV-1a offset basis (the hash state of the empty string).
inline constexpr uint64_t Fnv1aOffset = 0xCBF29CE484222325ull;

/// Absorbs one byte into an FNV-1a hash state.
inline uint64_t fnv1aByte(uint64_t Hash, unsigned char Byte) {
  return (Hash ^ Byte) * 0x100000001B3ull;
}

/// Continues an FNV-1a hash over \p Text. Because FNV-1a is byte-serial,
/// hashing a concatenation equals chaining fnv1aContinue over the parts —
/// the interner and the path-context extractor rely on this to hash
/// without materializing the concatenated string.
inline uint64_t fnv1aContinue(uint64_t Hash, std::string_view Text) {
  for (char C : Text)
    Hash = fnv1aByte(Hash, static_cast<unsigned char>(C));
  return Hash;
}

/// Stable 64-bit FNV-1a hash; the embedding vocabularies hash token and
/// path strings with this so that vocab ids are platform independent.
inline uint64_t fnv1a(std::string_view Text) {
  return fnv1aContinue(Fnv1aOffset, Text);
}

/// splitmix64 finalizer: a fast, well-mixed 64 -> 64 bijection. Used as
/// the FNV-independent second hash stream (serve/ContextKey), the path
/// prefix-hash combinator, and the interner's probe mixer.
inline uint64_t splitmix64(uint64_t X) {
  X += 0x9E3779B97F4A7C15ull;
  X = (X ^ (X >> 30)) * 0xBF58476D1CE4E5B9ull;
  X = (X ^ (X >> 27)) * 0x94D049BB133111EBull;
  return X ^ (X >> 31);
}

} // namespace nv

#endif // NV_SUPPORT_STRINGUTILS_H
