//===- support/StringUtils.h - String helpers -------------------*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small string utilities shared by the lexer, the pragma injector, and the
/// dataset generators.
///
//===----------------------------------------------------------------------===//

#ifndef NV_SUPPORT_STRINGUTILS_H
#define NV_SUPPORT_STRINGUTILS_H

#include <cstdint>
#include <string>
#include <vector>

namespace nv {

/// Splits \p Text on \p Sep, keeping empty fields.
std::vector<std::string> split(const std::string &Text, char Sep);

/// Splits \p Text into lines (splitting on '\n').
std::vector<std::string> splitLines(const std::string &Text);

/// Joins \p Parts with \p Sep.
std::string join(const std::vector<std::string> &Parts,
                 const std::string &Sep);

/// Removes leading and trailing whitespace.
std::string trim(const std::string &Text);

/// Returns true if \p Text starts with \p Prefix.
bool startsWith(const std::string &Text, const std::string &Prefix);

/// Returns true if \p Text contains \p Needle.
bool contains(const std::string &Text, const std::string &Needle);

/// Replaces every occurrence of \p From in \p Text with \p To.
std::string replaceAll(std::string Text, const std::string &From,
                       const std::string &To);

/// Stable 64-bit FNV-1a hash; the embedding vocabularies hash token and
/// path strings with this so that vocab ids are platform independent.
uint64_t fnv1a(const std::string &Text);

} // namespace nv

#endif // NV_SUPPORT_STRINGUTILS_H
