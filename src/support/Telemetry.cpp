//===- support/Telemetry.cpp - Process-wide metrics registry ---------------===//

#include "support/Telemetry.h"

#include <cstdio>

using namespace nv;

std::string nv::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (const char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(C)));
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

void JsonLine::key(const std::string &Key) {
  if (!First)
    OS << ", ";
  First = false;
  OS << "\"" << jsonEscape(Key) << "\": ";
}

JsonLine &JsonLine::field(const std::string &Key, const std::string &Value) {
  key(Key);
  OS << "\"" << jsonEscape(Value) << "\"";
  return *this;
}

JsonLine &JsonLine::field(const std::string &Key, const char *Value) {
  return field(Key, std::string(Value));
}

JsonLine &JsonLine::field(const std::string &Key, double Value) {
  key(Key);
  // Shortest representation that round-trips; integers print bare.
  if (Value == static_cast<double>(static_cast<long long>(Value))) {
    OS << static_cast<long long>(Value);
  } else {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.9g", Value);
    OS << Buf;
  }
  return *this;
}

JsonLine &JsonLine::field(const std::string &Key, uint64_t Value) {
  key(Key);
  OS << Value;
  return *this;
}

JsonLine &JsonLine::field(const std::string &Key, long long Value) {
  key(Key);
  OS << Value;
  return *this;
}

JsonLine &JsonLine::field(const std::string &Key, int Value) {
  key(Key);
  OS << Value;
  return *this;
}

JsonLine &JsonLine::field(const std::string &Key, bool Value) {
  key(Key);
  OS << (Value ? "true" : "false");
  return *this;
}

JsonLine &JsonLine::raw(const std::string &Key, const std::string &RawJson) {
  key(Key);
  OS << RawJson;
  return *this;
}

std::string JsonLine::str() const { return "{" + OS.str() + "}"; }

RunLog::RunLog(const std::string &Path) {
  if (!Path.empty())
    Out.open(Path, std::ios::app);
}

void RunLog::write(const JsonLine &Line) {
  if (!Out.is_open())
    return;
  Out << Line.str() << "\n";
  Out.flush();
  ++Lines;
}

Counter &MetricsRegistry::counter(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::unique_ptr<Counter> &Slot = Counters[Name];
  if (!Slot)
    Slot = std::make_unique<Counter>();
  return *Slot;
}

Gauge &MetricsRegistry::gauge(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::unique_ptr<Gauge> &Slot = Gauges[Name];
  if (!Slot)
    Slot = std::make_unique<Gauge>();
  return *Slot;
}

ShardedHistogram &MetricsRegistry::histogram(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::unique_ptr<ShardedHistogram> &Slot = Histograms[Name];
  if (!Slot)
    Slot = std::make_unique<ShardedHistogram>();
  return *Slot;
}

namespace {

/// The per-histogram JSON object (all durations in microseconds).
std::string histogramJson(const Histogram &H) {
  return JsonLine()
      .field("count", H.count())
      .field("sum_us", H.sum())
      .field("min_us", H.min())
      .field("max_us", H.max())
      .field("mean_us", H.mean())
      .field("p50_us", H.percentile(0.50))
      .field("p90_us", H.percentile(0.90))
      .field("p99_us", H.percentile(0.99))
      .field("p999_us", H.percentile(0.999))
      .str();
}

} // namespace

std::string MetricsRegistry::snapshotJson() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  JsonLine CountersJson;
  for (const auto &[Name, C] : Counters)
    CountersJson.field(Name, C->value());
  JsonLine GaugesJson;
  for (const auto &[Name, G] : Gauges)
    GaugesJson.field(Name, G->value());
  JsonLine HistogramsJson;
  for (const auto &[Name, H] : Histograms)
    HistogramsJson.raw(Name, histogramJson(H->snapshot()));
  return JsonLine()
      .raw("counters", CountersJson.str())
      .raw("gauges", GaugesJson.str())
      .raw("histograms", HistogramsJson.str())
      .str();
}

Table MetricsRegistry::histogramTable() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  Table T({"histogram", "count", "mean ms", "p50 ms", "p90 ms", "p99 ms",
           "p99.9 ms", "max ms"});
  for (const auto &[Name, Sharded] : Histograms) {
    const Histogram H = Sharded->snapshot();
    if (H.count() == 0)
      continue;
    T.addRow({Name, std::to_string(H.count()), Table::fmt(H.mean() / 1e3),
              Table::fmt(H.percentile(0.50) / 1e3),
              Table::fmt(H.percentile(0.90) / 1e3),
              Table::fmt(H.percentile(0.99) / 1e3),
              Table::fmt(H.percentile(0.999) / 1e3),
              Table::fmt(H.max() / 1e3)});
  }
  return T;
}

bool MetricsRegistry::writeJsonFile(const std::string &Path) const {
  std::ofstream Out(Path, std::ios::trunc);
  Out << snapshotJson() << "\n";
  return static_cast<bool>(Out);
}

MetricsRegistry &Telemetry::metrics() {
  static MetricsRegistry Registry;
  return Registry;
}

TraceBuffer &Telemetry::trace() {
  static TraceBuffer Buffer;
  return Buffer;
}

std::string Telemetry::snapshotJson() {
  TraceBuffer &TB = trace();
  return JsonLine()
      .raw("metrics", metrics().snapshotJson())
      .raw("trace", JsonLine()
                        .field("sample_every",
                               static_cast<uint64_t>(TB.sampleEvery()))
                        .field("capacity_per_thread",
                               static_cast<uint64_t>(TB.capacity()))
                        .field("events",
                               static_cast<uint64_t>(TB.snapshot().size()))
                        .field("dropped", TB.dropped())
                        .str())
      .str();
}
