//===- support/FaultInjection.cpp - Deterministic fault-point registry ----===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "FaultInjection.h"

#include "RNG.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

namespace nv {
namespace fault {

std::atomic<bool> ProcessArmed{false};

namespace {

/// FNV-1a over the point name: folds the name into the decision stream so
/// distinct points armed with the same probability fire on different hits.
uint64_t fnv1a(const std::string &S) {
  uint64_t H = 0xCBF29CE484222325ull;
  for (unsigned char C : S) {
    H ^= C;
    H *= 0x100000001B3ull;
  }
  return H;
}

/// One SplitMix64 step: the stateless per-hit mixer. Indexing the stream
/// by hit count (instead of advancing shared generator state) makes the
/// fire pattern independent of thread interleaving — hit K of a point
/// fires or not identically in a concurrent run and a serial replay.
uint64_t splitmix64(uint64_t X) {
  X += 0x9E3779B97F4A7C15ull;
  X = (X ^ (X >> 30)) * 0xBF58476D1CE4E5B9ull;
  X = (X ^ (X >> 27)) * 0x94D049BB133111EBull;
  return X ^ (X >> 31);
}

/// Parses one spec value (the part after '='). Grammar, in try order:
/// `fail@N`, `abort@N`, `<int>ms`, `<float probability in [0,1]>`.
bool parseSpecValue(const std::string &V, FaultSpec &Out, std::string &Err) {
  auto parseCount = [&](const std::string &S, uint64_t &N) {
    if (S.empty())
      return false;
    char *End = nullptr;
    unsigned long long Val = std::strtoull(S.c_str(), &End, 10);
    if (End != S.c_str() + S.size() || Val == 0)
      return false;
    N = Val;
    return true;
  };
  if (V.rfind("fail@", 0) == 0) {
    Out.Kind = FaultKind::Fail;
    if (!parseCount(V.substr(5), Out.NthHit)) {
      Err = "bad fail@N count in '" + V + "'";
      return false;
    }
    return true;
  }
  if (V.rfind("abort@", 0) == 0) {
    Out.Kind = FaultKind::Abort;
    if (!parseCount(V.substr(6), Out.NthHit)) {
      Err = "bad abort@N count in '" + V + "'";
      return false;
    }
    return true;
  }
  if (V.size() > 2 && V.compare(V.size() - 2, 2, "ms") == 0) {
    uint64_t Ms = 0;
    if (!parseCount(V.substr(0, V.size() - 2), Ms)) {
      Err = "bad millisecond count in '" + V + "'";
      return false;
    }
    Out.Kind = FaultKind::Delay;
    Out.DelayMicros = Ms * 1000;
    return true;
  }
  char *End = nullptr;
  double P = std::strtod(V.c_str(), &End);
  if (V.empty() || End != V.c_str() + V.size() || P < 0.0 || P > 1.0) {
    Err = "bad fault spec value '" + V +
          "' (want probability, fail@N, abort@N, or Nms)";
    return false;
  }
  Out.Kind = FaultKind::Fail;
  Out.Probability = P;
  return true;
}

} // namespace

struct FaultRegistry::Impl {
  mutable std::mutex Mutex;
  /// deque: stable FaultPoint addresses across registration.
  std::deque<FaultPoint> Points;
  std::unordered_map<std::string, FaultPoint *> ByName;
  /// Arms for points named in NV_FAULT before any hook registers them.
  std::unordered_map<std::string, FaultSpec> Pending;
  uint64_t Seed = DefaultSeed;

  FaultPoint &pointLocked(const std::string &Name) {
    auto It = ByName.find(Name);
    if (It != ByName.end())
      return *It->second;
    Points.emplace_back();
    FaultPoint &P = Points.back();
    P.Name = Name;
    P.Stream = RNG(Seed).split(fnv1a(Name)).next();
    ByName.emplace(Name, &P);
    auto Pend = Pending.find(Name);
    if (Pend != Pending.end()) {
      P.Spec = Pend->second;
      P.Armed.store(true, std::memory_order_release);
      Pending.erase(Pend);
    }
    return P;
  }

  void disarmLocked() {
    ProcessArmed.store(false, std::memory_order_relaxed);
    for (FaultPoint &P : Points) {
      P.Armed.store(false, std::memory_order_release);
      P.Hits.store(0, std::memory_order_relaxed);
      P.Fired.store(0, std::memory_order_relaxed);
    }
    Pending.clear();
  }
};

FaultRegistry::FaultRegistry() : I(new Impl) {
  const char *Env = std::getenv("NV_FAULT");
  if (!Env || !*Env)
    return;
  uint64_t Seed = DefaultSeed;
  if (const char *SeedEnv = std::getenv("NV_FAULT_SEED")) {
    char *End = nullptr;
    unsigned long long V = std::strtoull(SeedEnv, &End, 10);
    if (End != SeedEnv && *End == '\0')
      Seed = V;
  }
  std::string Error;
  if (!arm(Env, Seed, &Error)) {
    // A malformed env profile must not be silently ignored *or* crash the
    // process mid-constructor; loudly refusing to arm is the safe state.
    std::fprintf(stderr, "NV_FAULT ignored: %s\n", Error.c_str());
  }
}

FaultRegistry &FaultRegistry::instance() {
  static FaultRegistry *R = new FaultRegistry(); // leaked: see header
  return *R;
}

bool FaultRegistry::arm(const std::string &Spec, uint64_t Seed,
                        std::string *Error) {
  // Parse the full profile before touching any state: grammar errors arm
  // nothing.
  std::vector<std::pair<std::string, FaultSpec>> Parsed;
  std::string Err;
  std::size_t Pos = 0;
  while (Pos <= Spec.size()) {
    std::size_t Comma = Spec.find(',', Pos);
    std::string Item = Spec.substr(
        Pos, Comma == std::string::npos ? std::string::npos : Comma - Pos);
    Pos = Comma == std::string::npos ? Spec.size() + 1 : Comma + 1;
    if (Item.empty())
      continue;
    std::size_t Eq = Item.find('=');
    if (Eq == std::string::npos || Eq == 0) {
      if (Error)
        *Error = "missing '=' in fault spec item '" + Item + "'";
      return false;
    }
    FaultSpec FS;
    if (!parseSpecValue(Item.substr(Eq + 1), FS, Err)) {
      if (Error)
        *Error = Err;
      return false;
    }
    Parsed.emplace_back(Item.substr(0, Eq), FS);
  }

  std::lock_guard<std::mutex> Lock(I->Mutex);
  I->disarmLocked();
  I->Seed = Seed;
  // Reseed every existing point's stream: arm() defines a fresh
  // deterministic experiment, independent of registration history.
  for (FaultPoint &P : I->Points)
    P.Stream = RNG(Seed).split(fnv1a(P.Name)).next();
  for (auto &KV : Parsed) {
    auto It = I->ByName.find(KV.first);
    if (It != I->ByName.end()) {
      It->second->Spec = KV.second;
      It->second->Armed.store(true, std::memory_order_release);
    } else {
      I->Pending[KV.first] = KV.second;
    }
  }
  if (!Parsed.empty())
    ProcessArmed.store(true, std::memory_order_relaxed);
  return true;
}

void FaultRegistry::disarm() {
  std::lock_guard<std::mutex> Lock(I->Mutex);
  I->disarmLocked();
}

bool FaultRegistry::armed() const {
  return ProcessArmed.load(std::memory_order_relaxed);
}

FaultPoint &FaultRegistry::point(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(I->Mutex);
  return I->pointLocked(Name);
}

std::string FaultRegistry::statusJson() const {
  std::lock_guard<std::mutex> Lock(I->Mutex);
  std::ostringstream OS;
  OS << '[';
  bool First = true;
  for (const FaultPoint &P : I->Points) {
    if (!P.armed())
      continue;
    if (!First)
      OS << ',';
    First = false;
    OS << "{\"point\":\"" << P.name() << "\",\"hits\":" << P.hits()
       << ",\"fired\":" << P.fired() << '}';
  }
  OS << ']';
  return OS.str();
}

bool firedSlow(FaultPoint &P) {
  if (!P.Armed.load(std::memory_order_acquire))
    return false;
  // 1-based hit index; fetch_add returns the pre-increment value.
  uint64_t Hit = P.Hits.fetch_add(1, std::memory_order_relaxed) + 1;
  const FaultSpec &S = P.Spec;
  bool Fires = false;
  if (S.NthHit != 0) {
    Fires = (Hit == S.NthHit);
  } else if (S.Kind == FaultKind::Delay) {
    Fires = true;
  } else if (S.Probability > 0.0) {
    // Stateless hit-indexed decision: u64 threshold compare against
    // p * 2^64 (clamped), no floating-point conversion of the sample.
    uint64_t Sample = splitmix64(P.Stream ^ Hit);
    double Scaled = S.Probability * 18446744073709551616.0; // 2^64
    uint64_t Threshold = S.Probability >= 1.0 ? ~0ull
                         : Scaled >= 18446744073709551615.0
                             ? ~0ull
                             : static_cast<uint64_t>(Scaled);
    Fires = S.Probability >= 1.0 || Sample < Threshold;
  }
  if (!Fires)
    return false;
  P.Fired.fetch_add(1, std::memory_order_relaxed);
  switch (S.Kind) {
  case FaultKind::Abort:
    std::abort();
  case FaultKind::Delay:
    std::this_thread::sleep_for(std::chrono::microseconds(S.DelayMicros));
    return false; // Delay never reports failure.
  case FaultKind::Fail:
    return true;
  }
  return true;
}

namespace {
/// Touch the registry at static-init time so NV_FAULT arming needs no
/// explicit call anywhere in main().
struct EnvInit {
  EnvInit() { FaultRegistry::instance(); }
} EnvInitOnce;
} // namespace

} // namespace fault
} // namespace nv
