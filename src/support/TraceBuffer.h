//===- support/TraceBuffer.h - Per-thread span trace rings ------*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded trace of phase spans (begin time, duration, thread, request)
/// collected into per-thread ring buffers and exported as
/// chrome://tracing-compatible JSON ("trace event format", ph:"X"
/// complete events — load the file in chrome://tracing or Perfetto).
///
/// Writers touch only their own ring under a never-contended mutex (the
/// only other locker is a snapshot/export), so steady-state recording
/// costs one uncontended lock plus a slot store; the ring wraps by
/// overwriting the oldest spans (dropped() counts them). Recording is
/// further gated by a sampling knob: setSampleEvery(N) makes
/// shouldSample() pass every Nth unit of work (0 disables tracing
/// entirely, the default), so instrumented call sites cost one relaxed
/// load when tracing is off.
///
/// TraceSpan is the RAII recorder: it stamps the start on construction
/// and pushes the completed span on destruction. Spans recorded by a
/// null-buffer TraceSpan never read the clock at all.
///
//===----------------------------------------------------------------------===//

#ifndef NV_SUPPORT_TRACEBUFFER_H
#define NV_SUPPORT_TRACEBUFFER_H

#include "support/Histogram.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace nv {

/// Microseconds on the process-wide steady clock (anchored at first use,
/// so values are small and chrome://tracing timestamps stay readable).
inline uint64_t nowMicros() {
  static const std::chrono::steady_clock::time_point Anchor =
      std::chrono::steady_clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - Anchor)
          .count());
}

/// One completed phase span. Name must be a string literal (or otherwise
/// outlive the buffer): spans are POD so the ring never allocates.
struct TraceEvent {
  const char *Name = nullptr;
  uint64_t TsMicros = 0;  ///< Span begin, nowMicros() clock.
  uint64_t DurMicros = 0; ///< Span duration.
  uint64_t RequestId = 0; ///< Batch/request correlation id (0 = none).
  uint32_t ThreadId = 0;  ///< threadIndex() of the recording thread.
};

/// Bounded multi-thread span collector.
class TraceBuffer {
public:
  explicit TraceBuffer(size_t PerThreadCapacity = 4096)
      : Capacity(PerThreadCapacity < 1 ? 1 : PerThreadCapacity),
        Instance(NextInstance().fetch_add(1, std::memory_order_relaxed)) {}

  /// Sampling knob: shouldSample() passes every Nth call; 0 (the
  /// default) disables tracing entirely.
  void setSampleEvery(uint32_t N) {
    SampleEvery.store(N, std::memory_order_relaxed);
  }
  uint32_t sampleEvery() const {
    return SampleEvery.load(std::memory_order_relaxed);
  }

  /// One shared sampling decision per unit of work (e.g. per served
  /// batch): true every Nth call across all threads.
  bool shouldSample() {
    const uint32_t N = SampleEvery.load(std::memory_order_relaxed);
    if (N == 0)
      return false;
    return SampleCounter.fetch_add(1, std::memory_order_relaxed) % N == 0;
  }

  /// Appends one completed span to the calling thread's ring.
  void record(const char *Name, uint64_t TsMicros, uint64_t DurMicros,
              uint64_t RequestId = 0) {
    Ring &R = localRing();
    std::lock_guard<std::mutex> Lock(R.Mutex);
    R.Events[R.Head % Capacity] = {Name, TsMicros, DurMicros, RequestId,
                                   R.ThreadId};
    ++R.Head;
  }

  /// Copies every retained span, oldest-first per thread, then sorted by
  /// begin time. Safe concurrently with recording.
  std::vector<TraceEvent> snapshot() const {
    std::vector<TraceEvent> Out;
    std::lock_guard<std::mutex> RegLock(RegistryMutex);
    for (const std::unique_ptr<Ring> &R : Rings) {
      std::lock_guard<std::mutex> Lock(R->Mutex);
      const uint64_t Kept = std::min<uint64_t>(R->Head, Capacity);
      for (uint64_t I = R->Head - Kept; I < R->Head; ++I)
        Out.push_back(R->Events[I % Capacity]);
    }
    std::stable_sort(Out.begin(), Out.end(),
                     [](const TraceEvent &A, const TraceEvent &B) {
                       return A.TsMicros < B.TsMicros;
                     });
    return Out;
  }

  /// Spans lost to ring wrap so far.
  uint64_t dropped() const {
    uint64_t Lost = 0;
    std::lock_guard<std::mutex> RegLock(RegistryMutex);
    for (const std::unique_ptr<Ring> &R : Rings) {
      std::lock_guard<std::mutex> Lock(R->Mutex);
      if (R->Head > Capacity)
        Lost += R->Head - Capacity;
    }
    return Lost;
  }

  /// Drops every retained span (rings stay registered).
  void clear() {
    std::lock_guard<std::mutex> RegLock(RegistryMutex);
    for (const std::unique_ptr<Ring> &R : Rings) {
      std::lock_guard<std::mutex> Lock(R->Mutex);
      R->Head = 0;
    }
  }

  size_t capacity() const { return Capacity; }

  /// Writes the chrome://tracing "trace event format" JSON document:
  /// {"displayTimeUnit":"ms","traceEvents":[{"name":...,"ph":"X",...}]}.
  /// Span names are plain literals in practice, but the export escapes
  /// them anyway so the document is well-formed JSON unconditionally.
  void exportChromeJson(std::ostream &OS) const {
    OS << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
    bool First = true;
    for (const TraceEvent &E : snapshot()) {
      if (!First)
        OS << ",";
      First = false;
      OS << "\n  {\"name\": \"";
      for (const char *C = E.Name ? E.Name : ""; *C; ++C) {
        const unsigned char U = static_cast<unsigned char>(*C);
        if (*C == '"' || *C == '\\')
          OS << '\\' << *C;
        else if (U < 0x20) {
          char Hex[8];
          std::snprintf(Hex, sizeof(Hex), "\\u%04x", U);
          OS << Hex;
        } else
          OS << *C;
      }
      OS << "\", \"ph\": \"X\", \"ts\": " << E.TsMicros
         << ", \"dur\": " << E.DurMicros << ", \"pid\": 1, \"tid\": "
         << E.ThreadId << ", \"args\": {\"req\": " << E.RequestId << "}}";
    }
    OS << "\n]}\n";
  }

private:
  struct Ring {
    std::mutex Mutex;
    std::vector<TraceEvent> Events;
    uint64_t Head = 0; ///< Total spans ever pushed.
    uint32_t ThreadId = 0;
  };

  static std::atomic<uint64_t> &NextInstance() {
    static std::atomic<uint64_t> Counter{0};
    return Counter;
  }

  /// The calling thread's ring for THIS buffer, registered on first use.
  /// The thread-local cache is keyed by (buffer pointer, instance id):
  /// a new buffer reusing a dead buffer's address gets a fresh instance
  /// id, so a stale cache entry can never alias it.
  Ring &localRing() {
    struct CacheEntry {
      const TraceBuffer *Buf;
      uint64_t Instance;
      Ring *R;
    };
    thread_local std::vector<CacheEntry> Cache;
    for (CacheEntry &E : Cache)
      if (E.Buf == this && E.Instance == Instance)
        return *E.R;
    auto Owned = std::make_unique<Ring>();
    Owned->Events.resize(Capacity);
    Owned->ThreadId = threadIndex();
    Ring *R = Owned.get();
    {
      std::lock_guard<std::mutex> Lock(RegistryMutex);
      Rings.push_back(std::move(Owned));
    }
    Cache.push_back({this, Instance, R});
    return *R;
  }

  size_t Capacity;
  uint64_t Instance;
  std::atomic<uint32_t> SampleEvery{0};
  std::atomic<uint64_t> SampleCounter{0};
  mutable std::mutex RegistryMutex;
  std::deque<std::unique_ptr<Ring>> Rings;
};

/// RAII span: stamps the start now, records on destruction. A null
/// buffer makes both ends free (no clock read).
class TraceSpan {
public:
  TraceSpan(TraceBuffer *Buf, const char *Name, uint64_t RequestId = 0)
      : Buf(Buf), Name(Name), RequestId(RequestId),
        StartMicros(Buf ? nowMicros() : 0) {}
  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;
  ~TraceSpan() {
    if (Buf)
      Buf->record(Name, StartMicros, nowMicros() - StartMicros, RequestId);
  }

private:
  TraceBuffer *Buf;
  const char *Name;
  uint64_t RequestId;
  uint64_t StartMicros;
};

} // namespace nv

#endif // NV_SUPPORT_TRACEBUFFER_H
