//===- support/Histogram.h - Log-bucketed latency histograms ----*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fixed-layout log-bucketed histograms for latency distributions, built
/// for the serving hot path: recording is a handful of relaxed atomic adds
/// into a per-thread-striped shard (no locks, no allocation), and
/// percentile queries merge the shards into a plain snapshot on demand.
///
/// Bucket layout (HdrHistogram-style, pinned by tests): values below
/// SubBuckets (32) get exact unit buckets; above that, each power-of-two
/// octave is split into SubBuckets/2 equal sub-buckets, so the relative
/// bucket width — and therefore the worst-case percentile error — is
/// bounded by 1/16 (6.25%) everywhere. The layout is a compile-time
/// constant: histograms from different threads or shards merge
/// bucket-for-bucket, and a recorded percentile can never shift because a
/// config knob moved.
///
/// percentile(q) reports the *upper bound* of the bucket holding the
/// rank-ceil(q*count) value, clamped to the observed maximum — so a
/// histogram of identical values reports that exact value at every
/// quantile, values below SubBuckets are exact, and any reported quantile
/// P satisfies exact <= P <= exact * (1 + 1/16).
///
//===----------------------------------------------------------------------===//

#ifndef NV_SUPPORT_HISTOGRAM_H
#define NV_SUPPORT_HISTOGRAM_H

#include <array>
#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <memory>

namespace nv {

/// Dense per-thread index for shard striping (first use on a thread
/// assigns the next id). Shared across every sharded structure so a
/// thread's traffic stays on one cache-resident shard.
inline unsigned threadIndex() {
  static std::atomic<unsigned> Next{0};
  thread_local unsigned Id = Next.fetch_add(1, std::memory_order_relaxed);
  return Id;
}

/// The shared bucket layout: index math only, no storage.
struct HistogramLayout {
  /// log2 of the sub-bucket count; 5 bounds relative error by 2^-(5-1).
  static constexpr int SubBucketBits = 5;
  static constexpr uint64_t SubBuckets = 1ull << SubBucketBits; // 32
  /// Shift range for values with the top bit at position >= SubBucketBits.
  static constexpr int MaxShift = 64 - SubBucketBits; // 59
  static constexpr size_t NumBuckets =
      SubBuckets + static_cast<size_t>(MaxShift) * (SubBuckets / 2); // 976

  /// Bucket index of \p V (total: every uint64 maps to one bucket).
  static size_t bucketOf(uint64_t V) {
    if (V < SubBuckets)
      return static_cast<size_t>(V);
    const int Msb = 63 - __builtin_clzll(V);
    const int Shift = Msb - (SubBucketBits - 1); // >= 1
    const uint64_t Sub = V >> Shift; // In [SubBuckets/2, SubBuckets).
    return SubBuckets + static_cast<size_t>(Shift - 1) * (SubBuckets / 2) +
           static_cast<size_t>(Sub - SubBuckets / 2);
  }

  /// Smallest value mapping to bucket \p Index.
  static uint64_t lowerBound(size_t Index) {
    if (Index < SubBuckets)
      return Index;
    const size_t Rel = Index - SubBuckets;
    const int Shift = static_cast<int>(Rel / (SubBuckets / 2)) + 1;
    const uint64_t Sub = (Rel % (SubBuckets / 2)) + SubBuckets / 2;
    return Sub << Shift;
  }

  /// Largest value mapping to bucket \p Index (inclusive).
  static uint64_t upperBound(size_t Index) {
    if (Index < SubBuckets)
      return Index;
    const size_t Rel = Index - SubBuckets;
    const int Shift = static_cast<int>(Rel / (SubBuckets / 2)) + 1;
    return lowerBound(Index) + ((1ull << Shift) - 1);
  }
};

/// A plain (single-writer) histogram: the merge target of shard
/// snapshots, and directly usable where recording is already serial.
class Histogram : public HistogramLayout {
public:
  void record(uint64_t V) {
    ++Buckets[bucketOf(V)];
    addAggregates(1, V, V, V);
  }

  /// Adds \p C samples to bucket \p Index without touching the
  /// aggregates; pair with addAggregates (shard merging).
  void addBucketCount(size_t Index, uint64_t C) { Buckets[Index] += C; }

  /// Folds pre-accumulated aggregates (count, sum, min, max) in.
  void addAggregates(uint64_t N_, uint64_t Total_, uint64_t Lo_,
                     uint64_t Hi_) {
    if (N_ == 0)
      return;
    N += N_;
    Total += Total_;
    if (Lo_ < Lo)
      Lo = Lo_;
    if (Hi_ > Hi)
      Hi = Hi_;
  }

  void merge(const Histogram &O) {
    for (size_t I = 0; I < NumBuckets; ++I)
      Buckets[I] += O.Buckets[I];
    addAggregates(O.N, O.Total, O.Lo, O.Hi);
  }

  uint64_t count() const { return N; }
  uint64_t sum() const { return Total; }
  uint64_t min() const { return N ? Lo : 0; }
  uint64_t max() const { return Hi; }
  double mean() const {
    return N ? static_cast<double>(Total) / static_cast<double>(N) : 0.0;
  }
  uint64_t bucketCount(size_t Index) const { return Buckets[Index]; }

  /// Upper bound of the bucket holding the rank-ceil(q*count) value,
  /// clamped to the observed max; 0 on an empty histogram.
  uint64_t percentile(double Q) const {
    if (N == 0)
      return 0;
    uint64_t Rank =
        static_cast<uint64_t>(std::ceil(Q * static_cast<double>(N)));
    if (Rank < 1)
      Rank = 1;
    if (Rank > N)
      Rank = N;
    uint64_t Seen = 0;
    for (size_t I = 0; I < NumBuckets; ++I) {
      Seen += Buckets[I];
      if (Seen >= Rank) {
        const uint64_t Upper = upperBound(I);
        return Upper < Hi ? Upper : Hi;
      }
    }
    return Hi; // Unreachable: Seen reaches N.
  }

  bool operator==(const Histogram &O) const {
    return N == O.N && Total == O.Total && Lo == O.Lo && Hi == O.Hi &&
           Buckets == O.Buckets;
  }
  bool operator!=(const Histogram &O) const { return !(*this == O); }

private:
  std::array<uint64_t, NumBuckets> Buckets{};
  uint64_t N = 0;
  uint64_t Total = 0;
  uint64_t Lo = UINT64_MAX;
  uint64_t Hi = 0;
};

/// The concurrent recording front: per-thread-striped shards of relaxed
/// atomic bucket counters. record() is lock-free and contention-free for
/// up to NumShards concurrently recording threads (striped by
/// threadIndex(), so a thread always lands on the same shard);
/// snapshot() merges the shards into a plain Histogram. Recording
/// concurrent with snapshot() is safe: a racing record lands in this
/// snapshot or the next, and a snapshot's bucket cells never tear (each
/// is one relaxed load), though its aggregates may run one racing sample
/// ahead of its buckets — quiesce recording where exact equality matters.
class ShardedHistogram : public HistogramLayout {
public:
  static constexpr size_t NumShards = 8;

  ShardedHistogram() : Shards(new Shard[NumShards]) {
    for (size_t S = 0; S < NumShards; ++S) {
      Shard &Sh = Shards[S];
      for (size_t I = 0; I < NumBuckets; ++I)
        Sh.Buckets[I].store(0, std::memory_order_relaxed);
      Sh.N.store(0, std::memory_order_relaxed);
      Sh.Total.store(0, std::memory_order_relaxed);
      Sh.Lo.store(UINT64_MAX, std::memory_order_relaxed);
      Sh.Hi.store(0, std::memory_order_relaxed);
    }
  }

  void record(uint64_t V) {
    Shard &S = Shards[threadIndex() % NumShards];
    S.Buckets[bucketOf(V)].fetch_add(1, std::memory_order_relaxed);
    S.N.fetch_add(1, std::memory_order_relaxed);
    S.Total.fetch_add(V, std::memory_order_relaxed);
    uint64_t Cur = S.Lo.load(std::memory_order_relaxed);
    while (V < Cur &&
           !S.Lo.compare_exchange_weak(Cur, V, std::memory_order_relaxed))
      ;
    Cur = S.Hi.load(std::memory_order_relaxed);
    while (V > Cur &&
           !S.Hi.compare_exchange_weak(Cur, V, std::memory_order_relaxed))
      ;
  }

  uint64_t count() const {
    uint64_t N = 0;
    for (size_t S = 0; S < NumShards; ++S)
      N += Shards[S].N.load(std::memory_order_relaxed);
    return N;
  }

  /// Merges every shard into one plain histogram (O(buckets), not
  /// O(samples)).
  Histogram snapshot() const {
    Histogram Merged;
    for (size_t S = 0; S < NumShards; ++S) {
      const Shard &Sh = Shards[S];
      for (size_t I = 0; I < NumBuckets; ++I) {
        const uint64_t C = Sh.Buckets[I].load(std::memory_order_relaxed);
        if (C != 0)
          Merged.addBucketCount(I, C);
      }
      Merged.addAggregates(Sh.N.load(std::memory_order_relaxed),
                           Sh.Total.load(std::memory_order_relaxed),
                           Sh.Lo.load(std::memory_order_relaxed),
                           Sh.Hi.load(std::memory_order_relaxed));
    }
    return Merged;
  }

private:
  struct alignas(64) Shard {
    std::array<std::atomic<uint64_t>, NumBuckets> Buckets;
    std::atomic<uint64_t> N;
    std::atomic<uint64_t> Total;
    std::atomic<uint64_t> Lo;
    std::atomic<uint64_t> Hi;
  };

  std::unique_ptr<Shard[]> Shards;
};

} // namespace nv

#endif // NV_SUPPORT_HISTOGRAM_H
