//===- support/Interner.cpp - Arena-backed string interner -----------------===//

#include "support/Interner.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cstring>

using namespace nv;

namespace {

constexpr size_t InitialSlots = 256;   ///< Power of two.
constexpr size_t ChunkBytes = 1 << 16; ///< Arena chunk size.

} // namespace

Interner::Interner() : Slots(InitialSlots, 0) {}

const char *Interner::store(std::string_view Text) {
  if (Chunks.empty() || ChunkUsed + Text.size() > ChunkBytes) {
    // A token longer than the standard chunk gets a chunk of its own:
    // service input is untrusted, and a giant identifier must not write
    // past a fixed-size block.
    Chunks.push_back(
        std::make_unique<char[]>(std::max(Text.size(), ChunkBytes)));
    ChunkUsed = 0;
  }
  char *Dest = Chunks.back().get() + ChunkUsed;
  if (!Text.empty())
    std::memcpy(Dest, Text.data(), Text.size());
  ChunkUsed += Text.size();
  return Dest;
}

size_t Interner::probe(std::string_view Text, uint64_t Hash) const {
  const size_t Mask = Slots.size() - 1;
  size_t Index = splitmix64(Hash) & Mask;
  for (;;) {
    const uint32_t Slot = Slots[Index];
    if (Slot == 0)
      return Index;
    const Symbol &S = Symbols[Slot - 1];
    if (S.Hash == Hash && S.Length == Text.size() &&
        (Text.empty() ||
         std::memcmp(S.Data, Text.data(), Text.size()) == 0))
      return Index;
    Index = (Index + 1) & Mask;
  }
}

void Interner::grow() {
  std::vector<uint32_t> Old = std::move(Slots);
  Slots.assign(Old.size() * 2, 0);
  const size_t Mask = Slots.size() - 1;
  for (uint32_t Slot : Old) {
    if (Slot == 0)
      continue;
    size_t Index = splitmix64(Symbols[Slot - 1].Hash) & Mask;
    while (Slots[Index] != 0)
      Index = (Index + 1) & Mask;
    Slots[Index] = Slot;
  }
}

uint32_t Interner::intern(std::string_view Text) {
  const uint64_t Hash = fnv1a(Text);
  size_t Index = probe(Text, Hash);
  if (Slots[Index] != 0)
    return Slots[Index] - 1;

  // Keep the load factor under ~70% so probe chains stay short.
  if ((Symbols.size() + 1) * 10 >= Slots.size() * 7) {
    grow();
    Index = probe(Text, Hash);
  }
  Symbol S;
  S.Data = store(Text);
  S.Length = static_cast<uint32_t>(Text.size());
  S.Hash = Hash;
  Symbols.push_back(S);
  const uint32_t Id = static_cast<uint32_t>(Symbols.size()) - 1;
  Slots[Index] = Id + 1;
  return Id;
}

std::optional<uint32_t> Interner::find(std::string_view Text) const {
  const size_t Index = probe(Text, fnv1a(Text));
  if (Slots[Index] == 0)
    return std::nullopt;
  return Slots[Index] - 1;
}

void Interner::clear() {
  Symbols.clear();
  Slots.assign(InitialSlots, 0);
  Chunks.clear();
  ChunkUsed = 0;
}
