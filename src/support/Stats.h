//===- support/Stats.h - Small statistics helpers ---------------*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Mean / stddev / geomean / min / max over value sequences, plus a running
/// accumulator. Used by the RL trainer (reward statistics) and the bench
/// harnesses (speedup summaries, matching the paper's "average speedup").
///
//===----------------------------------------------------------------------===//

#ifndef NV_SUPPORT_STATS_H
#define NV_SUPPORT_STATS_H

#include <cstddef>
#include <vector>

namespace nv {

/// Arithmetic mean of \p Values; 0 when empty.
double mean(const std::vector<double> &Values);

/// Population standard deviation of \p Values; 0 when size < 2.
double stddev(const std::vector<double> &Values);

/// Geometric mean of \p Values (all must be positive); 0 when empty.
double geomean(const std::vector<double> &Values);

/// Minimum of \p Values; +inf when empty.
double minOf(const std::vector<double> &Values);

/// Maximum of \p Values; -inf when empty.
double maxOf(const std::vector<double> &Values);

/// Numerically stable running mean/variance accumulator (Welford).
class RunningStats {
public:
  void add(double X);
  void clear() { *this = RunningStats(); }

  size_t count() const { return N; }
  double mean() const { return N ? Mean : 0.0; }
  double variance() const { return N > 1 ? M2 / static_cast<double>(N) : 0.0; }
  double stddev() const;
  double min() const;
  double max() const;

private:
  size_t N = 0;
  double Mean = 0.0;
  double M2 = 0.0;
  double Min = 0.0;
  double Max = 0.0;
};

/// Exponential moving average, used for the "reward mean" training curves
/// (Figs 5 and 6 plot a smoothed reward mean).
class EMA {
public:
  explicit EMA(double Alpha = 0.05) : Alpha(Alpha) {}

  double add(double X) {
    Value = Seen ? (1.0 - Alpha) * Value + Alpha * X : X;
    Seen = true;
    return Value;
  }
  double value() const { return Value; }
  bool seen() const { return Seen; }

  /// Checkpoint restore: overwrites the running state.
  void restore(double NewValue, bool NewSeen) {
    Value = NewValue;
    Seen = NewSeen;
  }

private:
  double Alpha;
  double Value = 0.0;
  bool Seen = false;
};

} // namespace nv

#endif // NV_SUPPORT_STATS_H
