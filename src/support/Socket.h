//===- support/Socket.h - Minimal POSIX TCP helpers -------------*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The thin, dependency-free POSIX slice the network layer stands on: an
/// RAII file descriptor, IPv4 listen/connect helpers, and full-buffer
/// read/write loops that absorb EINTR and short transfers. Deliberately
/// not a sockets framework — net/NetServer.h drives epoll itself; these
/// helpers only remove the error-prone boilerplate (FD_CLOEXEC,
/// SO_REUSEADDR, ephemeral-port recovery, partial writes) that every
/// caller would otherwise re-implement.
///
//===----------------------------------------------------------------------===//

#ifndef NV_SUPPORT_SOCKET_H
#define NV_SUPPORT_SOCKET_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace nv {

/// Move-only owner of a POSIX file descriptor (-1 = empty).
class FileDescriptor {
public:
  FileDescriptor() = default;
  explicit FileDescriptor(int Fd) : Fd(Fd) {}
  ~FileDescriptor() { reset(); }

  FileDescriptor(FileDescriptor &&O) noexcept : Fd(O.Fd) { O.Fd = -1; }
  FileDescriptor &operator=(FileDescriptor &&O) noexcept {
    if (this != &O) {
      reset();
      Fd = O.Fd;
      O.Fd = -1;
    }
    return *this;
  }
  FileDescriptor(const FileDescriptor &) = delete;
  FileDescriptor &operator=(const FileDescriptor &) = delete;

  int fd() const { return Fd; }
  bool valid() const { return Fd >= 0; }
  explicit operator bool() const { return valid(); }

  /// Gives up ownership without closing.
  int release() {
    const int Out = Fd;
    Fd = -1;
    return Out;
  }

  /// Closes the held descriptor (if any) and optionally adopts \p NewFd.
  void reset(int NewFd = -1);

private:
  int Fd = -1;
};

/// Creates a TCP listening socket bound to \p Host:\p Port (IPv4 dotted
/// quad or "localhost"), with SO_REUSEADDR and FD_CLOEXEC set. \p Port 0
/// picks an ephemeral port; \p BoundPort (when non-null) receives the
/// actual one either way. Returns an empty descriptor and sets \p Error
/// on failure.
FileDescriptor listenTcp(const std::string &Host, uint16_t Port,
                         std::string *Error = nullptr,
                         uint16_t *BoundPort = nullptr);

/// Connects (blocking) to \p Host:\p Port with TCP_NODELAY set — the
/// protocol is request/response with small frames, so Nagle coalescing
/// only adds latency. \p TimeoutMs > 0 bounds the connect itself
/// (non-blocking connect + poll); 0 keeps the historical blocking
/// behavior. Returns an empty descriptor and sets \p Error on failure.
FileDescriptor connectTcp(const std::string &Host, uint16_t Port,
                          std::string *Error = nullptr, int TimeoutMs = 0);

/// Marks \p Fd non-blocking. Returns false on fcntl failure.
bool setNonBlocking(int Fd);

/// Sets SO_RCVTIMEO / SO_SNDTIMEO on \p Fd (0 = never time out). A timed
/// out read/write surfaces as EAGAIN, which readFull/writeFull report as
/// failure — the caller's deadline, not a hang. Returns false on error.
bool setIoTimeouts(int Fd, int TimeoutMs);

/// Reads exactly \p Size bytes (looping over short reads, retrying
/// EINTR). Returns false on EOF, timeout, or error before \p Size bytes
/// arrived. Fault point: `socket.read`.
bool readFull(int Fd, void *Data, size_t Size);

/// Writes exactly \p Size bytes (looping over short writes, retrying
/// EINTR). Sends with MSG_NOSIGNAL so a half-closed peer yields EPIPE
/// instead of killing the process. Returns false on timeout or error.
/// Fault point: `socket.write`.
bool writeFull(int Fd, const void *Data, size_t Size);

} // namespace nv

#endif // NV_SUPPORT_SOCKET_H
