//===- net/Client.h - Blocking protocol client ------------------*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small blocking client for the annotation daemon's wire protocol —
/// the C++ twin of tools/nv_client.py, used by the tests and the
/// serve_net load generator. One connection, strict request/response
/// (no pipelining); every call returns the server's WireStatus so a
/// caller can distinguish transport failure (false + \p Error) from a
/// protocol-level rejection (OVERLOADED, SHUTTING_DOWN, ...).
///
/// Resilience (fault-hardening pass): every socket operation runs under
/// a deadline (ClientConfig::ConnectTimeoutMs / IoTimeoutMs — a hung
/// daemon can no longer block a caller forever), and transport failures
/// on *idempotent* verbs (ping, annotate, statsz) are retried up to
/// MaxRetries times over a fresh connection with capped exponential
/// backoff + deterministic jitter. `reload` is NOT transport-idempotent:
/// once its frame may have reached the daemon a blind resend could apply
/// the reload twice, so only connection *establishment* is retried for
/// it. Protocol-level rejections (OVERLOADED, ...) are never retried
/// internally — they are the server's explicit load signal and stay
/// visible to the caller.
///
//===----------------------------------------------------------------------===//

#ifndef NV_NET_CLIENT_H
#define NV_NET_CLIENT_H

#include "net/Protocol.h"
#include "support/Socket.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace nv {

/// Deadline and retry policy for a NetClient.
struct ClientConfig {
  int ConnectTimeoutMs = 5000; ///< TCP connect deadline; 0 = blocking.
  int IoTimeoutMs = 30000;     ///< Per-read/write deadline; 0 = none.
  int MaxRetries = 3;          ///< Extra attempts after the first failure.
  int BackoffBaseMs = 50;      ///< First backoff (doubles per attempt).
  int BackoffMaxMs = 2000;     ///< Backoff cap.
  uint64_t BackoffSeed = 0x9E3779B97F4A7C15ull; ///< Jitter stream.
};

/// Retry activity since connect()/resetRetryStats(), for tests and the
/// serve_net load generator's report.
struct RetryStats {
  uint64_t Reconnects = 0; ///< Fresh connections after a transport loss.
  uint64_t Retries = 0;    ///< Operations re-sent after a failure.
};

/// Blocking single-connection client with deadlines and retries.
class NetClient {
public:
  NetClient() = default;
  explicit NetClient(const ClientConfig &Config) : Config(Config) {}

  /// Replaces the deadline/retry policy (applies from the next connect).
  void setConfig(const ClientConfig &NewConfig) { Config = NewConfig; }
  const ClientConfig &config() const { return Config; }

  /// Connects to \p Host:\p Port (one attempt, under ConnectTimeoutMs)
  /// and remembers the address for retry reconnects. False + \p Error on
  /// failure.
  bool connect(const std::string &Host, uint16_t Port,
               std::string *Error = nullptr);

  bool connected() const { return Sock.valid(); }
  void close() { Sock.reset(); }

  /// Liveness round trip. Idempotent: retried on transport failure.
  bool ping(std::string *Error = nullptr);

  /// Sends an annotate batch; \p Status receives the wire status. On Ok,
  /// \p Out holds the decoded results. Returns false only on transport
  /// or framing failure (after retries); a shed/rejected request is
  /// `true` with the corresponding status — see statusMessage() for the
  /// rejection text. Idempotent: retried on transport failure.
  bool annotate(const net::AnnotateRequestBody &Req,
                net::AnnotateResponseBody &Out, net::WireStatus &Status,
                std::string *Error = nullptr);

  /// Fetches the statsz JSON document. Idempotent: retried on transport
  /// failure.
  bool statsz(std::string &Json, std::string *Error = nullptr);

  /// Requests a hot reload of \p Path; \p Status receives the wire
  /// status. On Ok, \p Generation (when non-null) receives the new model
  /// generation; on RELOAD_FAILED, statusMessage() holds the cause. NOT
  /// transport-idempotent: only connection establishment is retried —
  /// a mid-stream failure surfaces to the caller, who knows whether a
  /// duplicate reload is acceptable.
  bool reload(const std::string &Path, net::WireStatus &Status,
              uint64_t *Generation = nullptr, std::string *Error = nullptr);

  /// The string body of the last non-Ok response (rejection cause).
  const std::string &statusMessage() const { return LastMessage; }

  const RetryStats &retryStats() const { return Stats; }
  void resetRetryStats() { Stats = RetryStats(); }

  /// The deterministic backoff before retry attempt \p Attempt
  /// (0-based), in microseconds: min(BackoffMaxMs, BackoffBaseMs <<
  /// Attempt) scaled by a jitter factor in [0.5, 1.0) drawn from the
  /// seeded per-attempt stream. Exposed for the chaos suite's
  /// bounded-latency assertions.
  static uint64_t backoffMicros(const ClientConfig &Config, int Attempt);

private:
  /// Writes \p Frame, then reads exactly one response for \p V into
  /// \p Header / \p Body. On failure the connection is closed (the
  /// stream position is unknown; request/response framing cannot
  /// recover mid-connection).
  bool roundTrip(net::Verb V, const std::vector<char> &Frame,
                 net::ResponseHeader &Header, std::vector<char> &Body,
                 std::string *Error);

  /// Reconnects to the remembered address if the socket is down.
  bool ensureConnected(std::string *Error);

  /// Runs \p Once (one full attempt: connect + round trip + decode) up
  /// to 1 + MaxRetries times with backoff between attempts.
  bool withRetries(const std::function<bool(std::string *)> &Once,
                   std::string *Error);

  ClientConfig Config;
  FileDescriptor Sock;
  std::string Host;
  uint16_t Port = 0;
  std::string LastMessage;
  RetryStats Stats;
};

} // namespace nv

#endif // NV_NET_CLIENT_H
