//===- net/Client.h - Blocking protocol client ------------------*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small blocking client for the annotation daemon's wire protocol —
/// the C++ twin of tools/nv_client.py, used by the tests and the
/// serve_net load generator. One connection, strict request/response
/// (no pipelining); every call returns the server's WireStatus so a
/// caller can distinguish transport failure (false + \p Error) from a
/// protocol-level rejection (OVERLOADED, SHUTTING_DOWN, ...).
///
//===----------------------------------------------------------------------===//

#ifndef NV_NET_CLIENT_H
#define NV_NET_CLIENT_H

#include "net/Protocol.h"
#include "support/Socket.h"

#include <cstdint>
#include <string>
#include <vector>

namespace nv {

/// Blocking single-connection client.
class NetClient {
public:
  /// Connects to \p Host:\p Port. False + \p Error on failure.
  bool connect(const std::string &Host, uint16_t Port,
               std::string *Error = nullptr);

  bool connected() const { return Sock.valid(); }
  void close() { Sock.reset(); }

  /// Liveness round trip.
  bool ping(std::string *Error = nullptr);

  /// Sends an annotate batch; \p Status receives the wire status. On Ok,
  /// \p Out holds the decoded results. Returns false only on transport
  /// or framing failure; a shed/rejected request is `true` with the
  /// corresponding status and the server's message in \p Out-less
  /// \p Error... see statusMessage() for the rejection text.
  bool annotate(const net::AnnotateRequestBody &Req,
                net::AnnotateResponseBody &Out, net::WireStatus &Status,
                std::string *Error = nullptr);

  /// Fetches the statsz JSON document.
  bool statsz(std::string &Json, std::string *Error = nullptr);

  /// Requests a hot reload of \p Path; \p Status receives the wire
  /// status. On Ok, \p Generation (when non-null) receives the new model
  /// generation; on RELOAD_FAILED, statusMessage() holds the cause.
  bool reload(const std::string &Path, net::WireStatus &Status,
              uint64_t *Generation = nullptr, std::string *Error = nullptr);

  /// The string body of the last non-Ok response (rejection cause).
  const std::string &statusMessage() const { return LastMessage; }

private:
  /// Writes \p Frame, then reads exactly one response for \p V into
  /// \p Header / \p Body.
  bool roundTrip(net::Verb V, const std::vector<char> &Frame,
                 net::ResponseHeader &Header, std::vector<char> &Body,
                 std::string *Error);

  FileDescriptor Sock;
  std::string LastMessage;
};

} // namespace nv

#endif // NV_NET_CLIENT_H
