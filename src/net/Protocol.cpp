//===- net/Protocol.cpp - Length-prefixed annotation wire format ----------===//

#include "net/Protocol.h"

#include "support/Wire.h"

using namespace nv;
using namespace nv::net;

const char *net::verbName(Verb V) {
  switch (V) {
  case Verb::Ping:
    return "ping";
  case Verb::Annotate:
    return "annotate";
  case Verb::Statsz:
    return "statsz";
  case Verb::Reload:
    return "reload";
  }
  return "?";
}

const char *net::statusName(WireStatus Status) {
  switch (Status) {
  case WireStatus::Ok:
    return "ok";
  case WireStatus::BadRequest:
    return "bad_request";
  case WireStatus::ParseError:
    return "parse_error";
  case WireStatus::Overloaded:
    return "overloaded";
  case WireStatus::ShuttingDown:
    return "shutting_down";
  case WireStatus::ReloadFailed:
    return "reload_failed";
  case WireStatus::DeadlineExceeded:
    return "deadline_exceeded";
  case WireStatus::Error:
    return "error";
  }
  return "?";
}

void net::appendRequestHeader(std::vector<char> &Out, Verb V,
                              uint32_t BodyLen) {
  wire::appendValue(Out, FrameMagic);
  wire::appendValue(Out, static_cast<uint8_t>(V));
  wire::appendValue(Out, BodyLen);
}

void net::appendResponseHeader(std::vector<char> &Out, Verb V,
                               WireStatus Status, uint32_t BodyLen) {
  wire::appendValue(Out, FrameMagic);
  wire::appendValue(Out, static_cast<uint8_t>(V));
  wire::appendValue(Out, static_cast<uint8_t>(Status));
  wire::appendValue(Out, BodyLen);
}

bool net::parseRequestHeader(const char *Data, size_t Size,
                             RequestHeader &Out) {
  size_t Offset = 0;
  uint32_t Magic = 0;
  uint8_t V = 0;
  if (!wire::readValue(Data, Size, Offset, Magic) ||
      !wire::readValue(Data, Size, Offset, V) ||
      !wire::readValue(Data, Size, Offset, Out.BodyLen))
    return false;
  if (Magic != FrameMagic || V >= NumVerbs || Out.BodyLen > MaxFrameBody)
    return false;
  Out.V = static_cast<Verb>(V);
  return true;
}

bool net::parseResponseHeader(const char *Data, size_t Size,
                              ResponseHeader &Out) {
  size_t Offset = 0;
  uint32_t Magic = 0;
  uint8_t V = 0;
  uint8_t Status = 0;
  if (!wire::readValue(Data, Size, Offset, Magic) ||
      !wire::readValue(Data, Size, Offset, V) ||
      !wire::readValue(Data, Size, Offset, Status) ||
      !wire::readValue(Data, Size, Offset, Out.BodyLen))
    return false;
  if (Magic != FrameMagic || V >= NumVerbs ||
      Status > static_cast<uint8_t>(WireStatus::Error) ||
      Out.BodyLen > MaxFrameBody)
    return false;
  Out.V = static_cast<Verb>(V);
  Out.Status = static_cast<WireStatus>(Status);
  return true;
}

namespace {

void appendString32(std::vector<char> &Out, const std::string &S) {
  wire::appendValue(Out, static_cast<uint32_t>(S.size()));
  wire::appendBytes(Out, S.data(), S.size());
}

bool readString32(const char *Data, size_t Size, size_t &Offset,
                  std::string &Out) {
  uint32_t Len = 0;
  if (!wire::readValue(Data, Size, Offset, Len))
    return false;
  if (Offset + Len > Size)
    return false;
  Out.assign(Data + Offset, Len);
  Offset += Len;
  return true;
}

/// Frames \p Body (already encoded) under a request header.
std::vector<char> frameRequest(Verb V, std::vector<char> Body) {
  std::vector<char> Out;
  Out.reserve(RequestHeaderSize + Body.size());
  appendRequestHeader(Out, V, static_cast<uint32_t>(Body.size()));
  Out.insert(Out.end(), Body.begin(), Body.end());
  return Out;
}

/// Frames \p Body (already encoded) under a response header.
std::vector<char> frameResponse(Verb V, WireStatus Status,
                                std::vector<char> Body) {
  std::vector<char> Out;
  Out.reserve(ResponseHeaderSize + Body.size());
  appendResponseHeader(Out, V, Status, static_cast<uint32_t>(Body.size()));
  Out.insert(Out.end(), Body.begin(), Body.end());
  return Out;
}

} // namespace

std::vector<char> net::encodePingRequest() {
  return frameRequest(Verb::Ping, {});
}

std::vector<char> net::encodeStatszRequest() {
  return frameRequest(Verb::Statsz, {});
}

std::vector<char>
net::encodeAnnotateRequest(const AnnotateRequestBody &Body) {
  std::vector<char> B;
  wire::appendValue(B, Body.DeadlineMicros);
  wire::appendValue(B, static_cast<uint32_t>(Body.Programs.size()));
  for (const WireProgram &P : Body.Programs) {
    wire::appendValue(B, static_cast<uint8_t>(P.HasMethod ? 1 : 0));
    wire::appendValue(B, static_cast<uint8_t>(P.Method));
    appendString32(B, P.Name);
    appendString32(B, P.Source);
  }
  return frameRequest(Verb::Annotate, std::move(B));
}

bool net::decodeAnnotateRequest(const char *Body, size_t Size,
                                AnnotateRequestBody &Out) {
  size_t Offset = 0;
  uint32_t Count = 0;
  if (!wire::readValue(Body, Size, Offset, Out.DeadlineMicros) ||
      !wire::readValue(Body, Size, Offset, Count))
    return false;
  // Each program costs at least 10 body bytes; reject counts the body
  // cannot possibly hold before reserving anything.
  if (Count > (Size - Offset) / 10)
    return false;
  Out.Programs.clear();
  Out.Programs.reserve(Count);
  for (uint32_t I = 0; I < Count; ++I) {
    WireProgram P;
    uint8_t HasMethod = 0;
    uint8_t Method = 0;
    if (!wire::readValue(Body, Size, Offset, HasMethod) ||
        !wire::readValue(Body, Size, Offset, Method))
      return false;
    if (HasMethod > 1 || Method >= NumPredictMethods)
      return false;
    P.HasMethod = HasMethod != 0;
    P.Method = static_cast<PredictMethod>(Method);
    if (!readString32(Body, Size, Offset, P.Name) ||
        !readString32(Body, Size, Offset, P.Source))
      return false;
    Out.Programs.push_back(std::move(P));
  }
  return Offset == Size;
}

std::vector<char> net::encodeReloadRequest(const std::string &Path) {
  std::vector<char> B;
  appendString32(B, Path);
  return frameRequest(Verb::Reload, std::move(B));
}

bool net::decodeReloadRequest(const char *Body, size_t Size,
                              std::string &Path) {
  size_t Offset = 0;
  return readString32(Body, Size, Offset, Path) && Offset == Size;
}

std::vector<char>
net::encodeAnnotateResponse(uint64_t Generation,
                            const std::vector<AnnotationResult> &Results) {
  std::vector<char> B;
  wire::appendValue(B, Generation);
  wire::appendValue(B, static_cast<uint32_t>(Results.size()));
  for (const AnnotationResult &R : Results) {
    // Per-result status byte: 0 error, 1 ok, 2 ok-degraded (fallback
    // ladder answered — see the DEGRADED contract in Protocol.h).
    wire::appendValue(
        B, static_cast<uint8_t>(!R.Ok ? 0 : (R.Degraded ? 2 : 1)));
    wire::appendValue(B, static_cast<uint8_t>(R.Method));
    appendString32(B, R.Name);
    if (!R.Ok) {
      appendString32(B, R.Error);
      continue;
    }
    wire::appendValue(B, static_cast<uint32_t>(R.CachedSites));
    wire::appendValue(B, static_cast<uint32_t>(R.Plans.size()));
    for (const VectorPlan &Plan : R.Plans) {
      wire::appendValue(B, static_cast<uint32_t>(Plan.VF));
      wire::appendValue(B, static_cast<uint32_t>(Plan.IF));
    }
    appendString32(B, R.Annotated);
  }
  return frameResponse(Verb::Annotate, WireStatus::Ok, std::move(B));
}

bool net::decodeAnnotateResponse(const char *Body, size_t Size,
                                 AnnotateResponseBody &Out) {
  size_t Offset = 0;
  uint32_t Count = 0;
  if (!wire::readValue(Body, Size, Offset, Out.Generation) ||
      !wire::readValue(Body, Size, Offset, Count))
    return false;
  if (Count > (Size - Offset) / 6)
    return false;
  Out.Results.clear();
  Out.Results.reserve(Count);
  for (uint32_t I = 0; I < Count; ++I) {
    WireResult R;
    uint8_t Ok = 0;
    uint8_t Method = 0;
    if (!wire::readValue(Body, Size, Offset, Ok) ||
        !wire::readValue(Body, Size, Offset, Method))
      return false;
    if (Ok > 2 || Method >= NumPredictMethods)
      return false;
    R.Ok = Ok != 0;
    R.Degraded = Ok == 2;
    R.Method = static_cast<PredictMethod>(Method);
    if (!readString32(Body, Size, Offset, R.Name))
      return false;
    if (!R.Ok) {
      if (!readString32(Body, Size, Offset, R.Error))
        return false;
      Out.Results.push_back(std::move(R));
      continue;
    }
    uint32_t PlanCount = 0;
    if (!wire::readValue(Body, Size, Offset, R.CachedSites) ||
        !wire::readValue(Body, Size, Offset, PlanCount))
      return false;
    if (PlanCount > (Size - Offset) / 8)
      return false;
    R.Plans.reserve(PlanCount);
    for (uint32_t P = 0; P < PlanCount; ++P) {
      uint32_t VF = 0, IF = 0;
      if (!wire::readValue(Body, Size, Offset, VF) ||
          !wire::readValue(Body, Size, Offset, IF))
        return false;
      VectorPlan Plan;
      Plan.VF = static_cast<int>(VF);
      Plan.IF = static_cast<int>(IF);
      R.Plans.push_back(Plan);
    }
    if (!readString32(Body, Size, Offset, R.Annotated))
      return false;
    Out.Results.push_back(std::move(R));
  }
  return Offset == Size;
}

std::vector<char> net::encodeEmptyResponse(Verb V, WireStatus Status) {
  return frameResponse(V, Status, {});
}

std::vector<char> net::encodeStringResponse(Verb V, WireStatus Status,
                                            const std::string &Payload) {
  std::vector<char> B;
  appendString32(B, Payload);
  return frameResponse(V, Status, std::move(B));
}

std::vector<char> net::encodeReloadOkResponse(uint64_t Generation) {
  std::vector<char> B;
  wire::appendValue(B, Generation);
  return frameResponse(Verb::Reload, WireStatus::Ok, std::move(B));
}

bool net::decodeStringBody(const char *Body, size_t Size, std::string &Out) {
  size_t Offset = 0;
  return readString32(Body, Size, Offset, Out) && Offset == Size;
}

bool net::decodeReloadOkBody(const char *Body, size_t Size,
                             uint64_t &Generation) {
  size_t Offset = 0;
  return wire::readValue(Body, Size, Offset, Generation) && Offset == Size;
}
