//===- net/NetServer.h - epoll annotation daemon ----------------*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The network front-end over AnnotationService: a dependency-free,
/// epoll-based TCP daemon speaking the length-prefixed protocol in
/// net/Protocol.h. One event thread owns all socket I/O (accept, frame
/// reassembly, response flushing); annotate and reload bodies execute on
/// a small executor pool so a slow batch never stalls the event loop.
///
/// Admission control sheds load *before* it costs anything: a new
/// annotate frame is rejected with OVERLOADED when the executor queue is
/// past its watermark or the bytes of admitted-but-unanswered requests
/// would exceed the in-flight budget — the client backs off; the server
/// never queues unboundedly.
///
/// Hot reload is zero-downtime by construction: the reload verb runs
/// ModelHost::reload() on the executor pool — build + validate the new
/// generation entirely off to the side, then RCU-flip the published
/// pointer. Batches in flight finish on the generation they acquired;
/// the plan cache invalidates lazily through generation-tagged epochs;
/// a rejected file answers RELOAD_FAILED and the old model keeps
/// serving. statsz exposes the live generation.
///
/// Shutdown (requestShutdown() is async-signal-safe — call it straight
/// from a SIGINT/SIGTERM handler) drains: the listen socket closes, new
/// work frames answer SHUTTING_DOWN, every admitted request still gets
/// its response flushed, and a final telemetry snapshot is written to
/// disk before the event thread exits.
///
//===----------------------------------------------------------------------===//

#ifndef NV_NET_NETSERVER_H
#define NV_NET_NETSERVER_H

#include "net/Protocol.h"
#include "support/Socket.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace nv {

class AnnotationService;
class ModelHost;

/// Daemon tuning knobs.
struct NetServerConfig {
  std::string Host = "127.0.0.1";
  uint16_t Port = 0; ///< 0 picks an ephemeral port (see NetServer::port).
  int Executors = 2; ///< Threads running annotate batches and reloads.
  /// Admission control: total body bytes of admitted-but-unanswered
  /// annotate requests. A frame that would push past this sheds with
  /// OVERLOADED instead of queueing.
  size_t MaxInFlightBytes = 32u << 20;
  /// Admission control: executor-queue depth at which new annotate
  /// frames shed with OVERLOADED.
  size_t QueueWatermark = 64;
  /// Reject request frames whose body exceeds this (<= protocol ceiling).
  uint32_t MaxFrameBytes = net::MaxFrameBody;
  /// When non-empty, the drain path writes Telemetry::metrics() here as
  /// one JSON document after the last response is flushed.
  std::string FinalSnapshotPath;
};

/// Monotonic operation counters, exported through statsz.
struct NetServerCounters {
  uint64_t Accepted = 0;     ///< Connections accepted.
  uint64_t Requests = 0;     ///< Frames answered (any status).
  uint64_t Annotated = 0;    ///< Annotate frames answered Ok.
  uint64_t Shed = 0;         ///< Frames answered OVERLOADED.
  uint64_t Rejected = 0;     ///< Frames answered SHUTTING_DOWN.
  uint64_t Reloads = 0;      ///< Successful hot reloads.
  uint64_t ReloadsFailed = 0;
};

/// The epoll daemon. Construct over a hosted-mode AnnotationService and
/// its ModelHost, start(), and either serve until shutdown() (tests) or
/// park the main thread in wait() while signal handlers call
/// requestShutdown() (nv_serverd).
class NetServer {
public:
  NetServer(AnnotationService &Service, ModelHost &Host,
            const NetServerConfig &Config = NetServerConfig());
  ~NetServer();

  NetServer(const NetServer &) = delete;
  NetServer &operator=(const NetServer &) = delete;

  /// Binds, listens, and spawns the event thread. False + \p Error on
  /// bind failure (port in use, bad address).
  bool start(std::string *Error = nullptr);

  /// The bound port (useful with Config.Port == 0).
  uint16_t port() const { return BoundPort; }

  /// Begins the drain. Async-signal-safe: one relaxed store and one
  /// eventfd write, so it is callable straight from a signal handler
  /// (and from any thread).
  void requestShutdown();

  /// requestShutdown() + joins the event thread (blocks until the drain
  /// finished). Idempotent.
  void shutdown();

  /// Blocks until the event thread exits (i.e. after some caller or
  /// signal handler requested shutdown and the drain completed).
  void wait();

  bool running() const { return Running.load(); }

  /// Coherent copy of the operation counters.
  NetServerCounters counters() const;

  const NetServerConfig &config() const { return Config; }

private:
  /// Per-connection state. The event thread owns In (frame reassembly);
  /// Out is shared with executor jobs finishing asynchronously, hence
  /// the mutex. Connections are shared_ptr-held so an executor job can
  /// outlive a midway disconnect without touching freed state.
  struct Connection {
    int Fd = -1;
    std::vector<char> In;
    size_t InStart = 0; ///< Consumed prefix of In (compacted lazily).
    std::mutex OutMutex;
    std::vector<char> Out;
    size_t OutStart = 0;
    bool WantWrite = false; ///< EPOLLOUT currently armed.
    std::atomic<bool> Closed{false};
  };
  using ConnPtr = std::shared_ptr<Connection>;

  void eventLoop();
  void acceptNew();
  bool readInput(const ConnPtr &Conn);   ///< False: close the connection.
  bool drainFrames(const ConnPtr &Conn); ///< False: protocol violation.
  void handleFrame(const ConnPtr &Conn, net::Verb V, const char *Body,
                   uint32_t BodyLen);
  void runAnnotate(const ConnPtr &Conn, std::vector<char> Body,
                   uint64_t ArrivalMicros);
  void runReload(const ConnPtr &Conn, std::string Path);
  std::string buildStatszJson();

  /// Queues \p Frame on \p Conn and (from executor threads) wakes the
  /// event thread to flush it. Safe from any thread.
  void sendFrame(const ConnPtr &Conn, std::vector<char> Frame);

  /// Event-thread only: writes as much of Conn->Out as the socket takes,
  /// arming/disarming EPOLLOUT as needed. False: connection broken.
  bool flushOut(const ConnPtr &Conn);

  void closeConnection(const ConnPtr &Conn);
  void wakeEventThread();

  AnnotationService &Service;
  ModelHost &Host;
  NetServerConfig Config;

  FileDescriptor ListenFd;
  FileDescriptor EpollFd;
  FileDescriptor WakeFd; ///< eventfd; also the signal-handler doorbell.
  uint16_t BoundPort = 0;

  std::thread EventThread;
  std::unique_ptr<ThreadPool> Exec; ///< Built in start() (Executors).

  std::unordered_map<int, ConnPtr> Conns; ///< Event-thread only.
  std::mutex DirtyMutex;
  std::vector<ConnPtr> Dirty; ///< Executor-finished conns to flush.

  std::atomic<bool> StopRequested{false};
  std::atomic<bool> Running{false};
  bool Draining = false; ///< Event-thread only.
  std::atomic<size_t> InFlightBytes{0};
  std::atomic<size_t> InFlightRequests{0};

  mutable std::mutex CountersMutex;
  NetServerCounters Counters;

  void count(uint64_t NetServerCounters::*Field) {
    std::lock_guard<std::mutex> Lock(CountersMutex);
    ++(Counters.*Field);
  }
};

} // namespace nv

#endif // NV_NET_NETSERVER_H
