//===- net/Protocol.h - Length-prefixed annotation wire format --*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compact binary protocol the annotation daemon speaks. Frames are
/// length-prefixed so a stream reader always knows how many bytes to
/// wait for before touching the payload, and every frame is independent
/// (no connection state beyond the byte stream), so pipelining requests
/// on one connection is legal.
///
///   request:  u32 magic 'NVRP' | u8 verb | u32 bodyLen | body
///   response: u32 magic 'NVRP' | u8 verb | u8 status | u32 bodyLen | body
///
/// Verbs: ping (liveness, empty bodies), annotate (a batch of programs,
/// each with an optional PredictMethod override, plus a relative
/// deadline), statsz (returns the full telemetry snapshot + per-method
/// serving tables + the live model generation as one JSON document), and
/// reload (hot-swaps the serving model to a v3 model file, zero
/// downtime; the response carries the new generation).
///
/// Status codes tell clients what to *do*: OVERLOADED means back off and
/// retry (admission control shed the request before it cost anything),
/// SHUTTING_DOWN means this daemon is draining — reconnect elsewhere,
/// RELOAD_FAILED means the pushed file was rejected and the old model
/// still serves, DEADLINE_EXCEEDED means the request sat past its own
/// budget. BAD_REQUEST/PARSE_ERROR are frame- and body-level malformed
/// input. Error bodies carry `u32 len | message`.
///
/// DEGRADED contract: inside an Ok annotate response, each result leads
/// with a status byte — 0 error, 1 ok, 2 ok-degraded. Degraded means the
/// requested predictor backend was unavailable (unfitted, failing, or
/// circuit-broken) and the plans came from a lower rung of the fallback
/// ladder (RL → tree → baseline cost model → identity). The plans are
/// still legal and usable; the flag tells the client the quality tier
/// dropped so it can re-request later or route elsewhere. The `Method`
/// byte in a degraded result names the backend that actually answered.
///
/// Multi-byte integers are host-endian (the daemon serves loopback /
/// same-arch fleets; both reference clients — net/Client.h and
/// tools/nv_client.py — match). All lengths are validated against the
/// enclosing frame, so truncated or hostile bodies fail decode cleanly.
///
//===----------------------------------------------------------------------===//

#ifndef NV_NET_PROTOCOL_H
#define NV_NET_PROTOCOL_H

#include "predictors/Predictor.h"
#include "serve/AnnotationService.h"

#include <cstdint>
#include <string>
#include <vector>

namespace nv {
namespace net {

/// 'NVRP' — NeuroVectorizer Remote Protocol.
constexpr uint32_t FrameMagic = 0x4E565250;

/// Hard ceiling on a frame body (64 MiB): a hostile or corrupt length
/// prefix must not make the server allocate unbounded memory.
constexpr uint32_t MaxFrameBody = 64u << 20;

constexpr size_t RequestHeaderSize = 9;   ///< magic + verb + bodyLen.
constexpr size_t ResponseHeaderSize = 10; ///< ... + status.

enum class Verb : uint8_t {
  Ping = 0,
  Annotate = 1,
  Statsz = 2,
  Reload = 3,
};
constexpr uint8_t NumVerbs = 4;

enum class WireStatus : uint8_t {
  Ok = 0,
  BadRequest = 1,       ///< Malformed frame or body.
  ParseError = 2,       ///< Body framing decoded but contents invalid.
  Overloaded = 3,       ///< Shed by admission control; retry with backoff.
  ShuttingDown = 4,     ///< Daemon is draining; reconnect elsewhere.
  ReloadFailed = 5,     ///< Model file rejected; old model still serves.
  DeadlineExceeded = 6, ///< Request outlived its own deadline budget.
  Error = 7,            ///< Internal failure.
};

/// Stable lowercase names ("ping", "overloaded", ...) for logs and JSON.
const char *verbName(Verb V);
const char *statusName(WireStatus Status);

/// Parsed request/response headers.
struct RequestHeader {
  Verb V = Verb::Ping;
  uint32_t BodyLen = 0;
};
struct ResponseHeader {
  Verb V = Verb::Ping;
  WireStatus Status = WireStatus::Ok;
  uint32_t BodyLen = 0;
};

/// Header codecs. parse* requires at least the header size of \p Size
/// bytes and validates magic, verb range, and the body-length ceiling.
void appendRequestHeader(std::vector<char> &Out, Verb V, uint32_t BodyLen);
void appendResponseHeader(std::vector<char> &Out, Verb V, WireStatus Status,
                          uint32_t BodyLen);
bool parseRequestHeader(const char *Data, size_t Size, RequestHeader &Out);
bool parseResponseHeader(const char *Data, size_t Size, ResponseHeader &Out);

/// One program inside an annotate request.
struct WireProgram {
  std::string Name;
  std::string Source;
  bool HasMethod = false; ///< False: server's default backend.
  PredictMethod Method = PredictMethod::RL;
};

/// Annotate request body: a relative deadline (microseconds from server
/// receipt; 0 = none) and the batch.
struct AnnotateRequestBody {
  uint64_t DeadlineMicros = 0;
  std::vector<WireProgram> Programs;
};

/// One annotated program inside an annotate response.
struct WireResult {
  std::string Name;
  bool Ok = false;
  bool Degraded = false; ///< Ok, but from a fallback-ladder backend.
  PredictMethod Method = PredictMethod::RL;
  uint32_t CachedSites = 0;
  std::vector<VectorPlan> Plans;
  std::string Annotated; ///< Ok only.
  std::string Error;     ///< !Ok only.
};

/// Annotate response body. Generation is the model generation that
/// answered the whole batch (every result in one response comes from
/// exactly one generation — the hot-reload consistency contract).
struct AnnotateResponseBody {
  uint64_t Generation = 0;
  std::vector<WireResult> Results;
};

/// Body codecs. Encoders return a complete frame (header included);
/// decoders take the body only and reject any length that escapes it.
std::vector<char> encodePingRequest();
std::vector<char> encodeStatszRequest();
std::vector<char> encodeAnnotateRequest(const AnnotateRequestBody &Body);
std::vector<char> encodeReloadRequest(const std::string &Path);

bool decodeAnnotateRequest(const char *Body, size_t Size,
                           AnnotateRequestBody &Out);
bool decodeReloadRequest(const char *Body, size_t Size, std::string &Path);

/// Annotate response straight from the service's results.
std::vector<char>
encodeAnnotateResponse(uint64_t Generation,
                       const std::vector<AnnotationResult> &Results);
bool decodeAnnotateResponse(const char *Body, size_t Size,
                            AnnotateResponseBody &Out);

/// Generic responses: empty body, `u32 len | string` body (error
/// messages, statsz JSON), and the reload-success body (u64 generation).
std::vector<char> encodeEmptyResponse(Verb V, WireStatus Status);
std::vector<char> encodeStringResponse(Verb V, WireStatus Status,
                                       const std::string &Payload);
std::vector<char> encodeReloadOkResponse(uint64_t Generation);
bool decodeStringBody(const char *Body, size_t Size, std::string &Out);
bool decodeReloadOkBody(const char *Body, size_t Size, uint64_t &Generation);

} // namespace net
} // namespace nv

#endif // NV_NET_PROTOCOL_H
