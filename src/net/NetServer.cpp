//===- net/NetServer.cpp - epoll annotation daemon ------------------------===//

#include "net/NetServer.h"

#include "nn/Kernels.h"
#include "serve/AnnotationService.h"
#include "serve/ModelHost.h"
#include "support/FaultInjection.h"
#include "support/Telemetry.h"

#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace nv;
using net::Verb;
using net::WireStatus;

NetServer::NetServer(AnnotationService &Service, ModelHost &Host,
                     const NetServerConfig &Config)
    : Service(Service), Host(Host), Config(Config) {}

NetServer::~NetServer() { shutdown(); }

bool NetServer::start(std::string *Error) {
  ListenFd = listenTcp(Config.Host, Config.Port, Error, &BoundPort);
  if (!ListenFd)
    return false;
  setNonBlocking(ListenFd.fd());

  EpollFd.reset(::epoll_create1(EPOLL_CLOEXEC));
  WakeFd.reset(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK));
  if (!EpollFd || !WakeFd) {
    if (Error)
      *Error = std::string("epoll/eventfd: ") + std::strerror(errno);
    return false;
  }
  epoll_event Ev{};
  Ev.events = EPOLLIN;
  Ev.data.fd = ListenFd.fd();
  ::epoll_ctl(EpollFd.fd(), EPOLL_CTL_ADD, ListenFd.fd(), &Ev);
  Ev.data.fd = WakeFd.fd();
  ::epoll_ctl(EpollFd.fd(), EPOLL_CTL_ADD, WakeFd.fd(), &Ev);

  Exec = std::make_unique<ThreadPool>(Config.Executors);
  Running.store(true);
  EventThread = std::thread([this] { eventLoop(); });
  return true;
}

void NetServer::requestShutdown() {
  // Async-signal-safe: a relaxed store plus one eventfd write. Everything
  // with teeth happens on the event thread when it observes the flag.
  StopRequested.store(true, std::memory_order_relaxed);
  if (WakeFd.valid()) {
    const uint64_t One = 1;
    [[maybe_unused]] ssize_t N = ::write(WakeFd.fd(), &One, sizeof(One));
  }
}

void NetServer::wait() {
  if (EventThread.joinable())
    EventThread.join();
}

void NetServer::shutdown() {
  requestShutdown();
  wait();
}

NetServerCounters NetServer::counters() const {
  std::lock_guard<std::mutex> Lock(CountersMutex);
  return Counters;
}

void NetServer::wakeEventThread() {
  const uint64_t One = 1;
  [[maybe_unused]] ssize_t N = ::write(WakeFd.fd(), &One, sizeof(One));
}

void NetServer::eventLoop() {
  epoll_event Events[64];
  for (;;) {
    // Park indefinitely in steady state (the eventfd is the doorbell);
    // poll while draining so completion is re-checked even if a wake is
    // coalesced away.
    const int Timeout = Draining ? 10 : -1;
    const int N = ::epoll_wait(EpollFd.fd(), Events, 64, Timeout);
    if (N < 0 && errno != EINTR)
      break;

    for (int I = 0; I < N; ++I) {
      const int Fd = Events[I].data.fd;
      if (Fd == WakeFd.fd()) {
        uint64_t Drained;
        while (::read(WakeFd.fd(), &Drained, sizeof(Drained)) > 0) {
        }
        continue;
      }
      if (ListenFd.valid() && Fd == ListenFd.fd()) {
        acceptNew();
        continue;
      }
      auto It = Conns.find(Fd);
      if (It == Conns.end())
        continue;
      ConnPtr Conn = It->second;
      if (Events[I].events & (EPOLLHUP | EPOLLERR)) {
        closeConnection(Conn);
        continue;
      }
      if ((Events[I].events & EPOLLIN) && !readInput(Conn)) {
        closeConnection(Conn);
        continue;
      }
      if ((Events[I].events & EPOLLOUT) && !flushOut(Conn))
        closeConnection(Conn);
    }

    // Flush connections whose responses were produced off-thread.
    std::vector<ConnPtr> ToFlush;
    {
      std::lock_guard<std::mutex> Lock(DirtyMutex);
      ToFlush.swap(Dirty);
    }
    for (const ConnPtr &Conn : ToFlush)
      if (!Conn->Closed.load() && !flushOut(Conn))
        closeConnection(Conn);

    if (StopRequested.load(std::memory_order_relaxed) && !Draining) {
      // Stop accepting; everything already admitted still completes.
      Draining = true;
      if (ListenFd.valid()) {
        ::epoll_ctl(EpollFd.fd(), EPOLL_CTL_DEL, ListenFd.fd(), nullptr);
        ListenFd.reset();
      }
    }
    if (Draining && InFlightRequests.load() == 0) {
      bool Pending = false;
      {
        std::lock_guard<std::mutex> Lock(DirtyMutex);
        Pending = !Dirty.empty();
      }
      for (const auto &[Fd, Conn] : Conns) {
        std::lock_guard<std::mutex> Lock(Conn->OutMutex);
        if (Conn->Out.size() > Conn->OutStart)
          Pending = true;
      }
      if (!Pending)
        break; // Every admitted request answered and flushed.
    }
  }

  for (auto &[Fd, Conn] : Conns) {
    Conn->Closed.store(true);
    ::close(Conn->Fd);
  }
  Conns.clear();
  if (!Config.FinalSnapshotPath.empty())
    Telemetry::metrics().writeJsonFile(Config.FinalSnapshotPath);
  Running.store(false);
}

void NetServer::acceptNew() {
  for (;;) {
    const int Fd = ::accept4(ListenFd.fd(), nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (Fd < 0)
      return; // EAGAIN (or transient error): nothing more to accept.
    const int One = 1;
    ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
    auto Conn = std::make_shared<Connection>();
    Conn->Fd = Fd;
    Conns[Fd] = Conn;
    epoll_event Ev{};
    Ev.events = EPOLLIN;
    Ev.data.fd = Fd;
    ::epoll_ctl(EpollFd.fd(), EPOLL_CTL_ADD, Fd, &Ev);
    count(&NetServerCounters::Accepted);
  }
}

bool NetServer::readInput(const ConnPtr &Conn) {
  // Chaos hook: a fired socket.read fault drops the connection exactly as
  // a mid-frame peer reset would; the client's retry layer must recover.
  static fault::FaultPoint &ReadFault = fault::point("socket.read");
  if (fault::fired(ReadFault))
    return false;
  char Buf[64 * 1024];
  for (;;) {
    const ssize_t N = ::read(Conn->Fd, Buf, sizeof(Buf));
    if (N > 0) {
      Conn->In.insert(Conn->In.end(), Buf, Buf + N);
      continue;
    }
    if (N == 0)
      return false; // Peer closed.
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      break;
    if (errno == EINTR)
      continue;
    return false;
  }
  return drainFrames(Conn);
}

bool NetServer::drainFrames(const ConnPtr &Conn) {
  for (;;) {
    const size_t Avail = Conn->In.size() - Conn->InStart;
    if (Avail < net::RequestHeaderSize)
      break;
    const char *Data = Conn->In.data() + Conn->InStart;
    net::RequestHeader Header;
    if (!net::parseRequestHeader(Data, Avail, Header))
      return false; // Not speaking our protocol: hang up.
    if (Header.BodyLen > Config.MaxFrameBytes) {
      sendFrame(Conn, net::encodeStringResponse(Header.V,
                                                WireStatus::BadRequest,
                                                "frame too large"));
      return false;
    }
    if (Avail < net::RequestHeaderSize + Header.BodyLen)
      break; // Wait for the rest of the frame.
    handleFrame(Conn, Header.V, Data + net::RequestHeaderSize,
                Header.BodyLen);
    Conn->InStart += net::RequestHeaderSize + Header.BodyLen;
  }
  // Compact once the consumed prefix dominates the buffer.
  if (Conn->InStart == Conn->In.size()) {
    Conn->In.clear();
    Conn->InStart = 0;
  } else if (Conn->InStart > (64u << 10)) {
    Conn->In.erase(Conn->In.begin(),
                   Conn->In.begin() + static_cast<long>(Conn->InStart));
    Conn->InStart = 0;
  }
  return true;
}

void NetServer::handleFrame(const ConnPtr &Conn, Verb V, const char *Body,
                            uint32_t BodyLen) {
  count(&NetServerCounters::Requests);
  switch (V) {
  case Verb::Ping:
    sendFrame(Conn, net::encodeEmptyResponse(Verb::Ping, WireStatus::Ok));
    return;

  case Verb::Statsz:
    // Read-only over coherent snapshots; cheap enough for the event
    // thread, and observability staying responsive under full executor
    // load is the point.
    sendFrame(Conn, net::encodeStringResponse(Verb::Statsz, WireStatus::Ok,
                                              buildStatszJson()));
    return;

  case Verb::Reload: {
    if (Draining) {
      count(&NetServerCounters::Rejected);
      sendFrame(Conn, net::encodeStringResponse(
                          Verb::Reload, WireStatus::ShuttingDown,
                          "server is draining"));
      return;
    }
    std::string Path;
    if (!net::decodeReloadRequest(Body, BodyLen, Path)) {
      sendFrame(Conn,
                net::encodeStringResponse(Verb::Reload,
                                          WireStatus::BadRequest,
                                          "malformed reload body"));
      return;
    }
    // Off the event thread: loading + validating a model is file I/O and
    // deserialization; accepts and statsz stay live throughout.
    InFlightRequests.fetch_add(1);
    Exec->run([this, Conn, Path = std::move(Path)]() mutable {
      runReload(Conn, std::move(Path));
    });
    return;
  }

  case Verb::Annotate: {
    if (Draining) {
      count(&NetServerCounters::Rejected);
      sendFrame(Conn, net::encodeStringResponse(
                          Verb::Annotate, WireStatus::ShuttingDown,
                          "server is draining"));
      return;
    }
    // Admission control: shed *now*, before decoding or queueing, when
    // the executor queue is past its watermark or admitted bytes would
    // blow the in-flight budget. OVERLOADED is a contract with the
    // client: nothing was done, back off and retry.
    const size_t Admitted = InFlightBytes.load();
    if (Exec->queueDepth() >= Config.QueueWatermark ||
        Admitted + BodyLen > Config.MaxInFlightBytes) {
      count(&NetServerCounters::Shed);
      sendFrame(Conn, net::encodeStringResponse(Verb::Annotate,
                                                WireStatus::Overloaded,
                                                "server overloaded"));
      return;
    }
    InFlightBytes.fetch_add(BodyLen);
    InFlightRequests.fetch_add(1);
    std::vector<char> BodyCopy(Body, Body + BodyLen);
    const uint64_t Arrival = nowMicros();
    Exec->run(
        [this, Conn, BodyCopy = std::move(BodyCopy), Arrival]() mutable {
          runAnnotate(Conn, std::move(BodyCopy), Arrival);
        });
    return;
  }
  }
}

void NetServer::runAnnotate(const ConnPtr &Conn, std::vector<char> Body,
                            uint64_t ArrivalMicros) {
  // Chaos hook: `exec.slow=50ms` stalls executor work here, upstream of
  // decode, to exercise queue deadlines and client timeouts.
  static fault::FaultPoint &SlowFault = fault::point("exec.slow");
  (void)fault::fired(SlowFault);
  net::AnnotateRequestBody Req;
  if (!net::decodeAnnotateRequest(Body.data(), Body.size(), Req)) {
    sendFrame(Conn, net::encodeStringResponse(Verb::Annotate,
                                              WireStatus::BadRequest,
                                              "malformed annotate body"));
  } else if (Req.DeadlineMicros != 0 &&
             nowMicros() - ArrivalMicros > Req.DeadlineMicros) {
    // Sat in the queue past its own budget: the client has long timed
    // out, so running the batch now would burn executor time on an
    // answer nobody reads.
    sendFrame(Conn, net::encodeStringResponse(Verb::Annotate,
                                              WireStatus::DeadlineExceeded,
                                              "deadline exceeded in queue"));
  } else {
    std::vector<AnnotationRequest> Batch;
    Batch.reserve(Req.Programs.size());
    for (net::WireProgram &P : Req.Programs) {
      AnnotationRequest R;
      R.Name = std::move(P.Name);
      R.Source = std::move(P.Source);
      if (P.HasMethod)
        R.Method = P.Method;
      Batch.push_back(std::move(R));
    }
    const std::vector<AnnotationResult> Results =
        Service.annotateBatch(Batch);
    // Every result in a batch is answered by exactly one generation (the
    // RCU acquisition in annotateBatch).
    const uint64_t Generation =
        Results.empty() ? Host.generation() : Results.front().Generation;
    sendFrame(Conn, net::encodeAnnotateResponse(Generation, Results));
    count(&NetServerCounters::Annotated);
  }
  InFlightBytes.fetch_sub(Body.size());
  InFlightRequests.fetch_sub(1);
  wakeEventThread(); // Drain check may now pass.
}

void NetServer::runReload(const ConnPtr &Conn, std::string Path) {
  std::string Error;
  const LoadStatus Status = Host.reload(Path, &Error);
  if (Status == LoadStatus::Ok) {
    count(&NetServerCounters::Reloads);
    sendFrame(Conn, net::encodeReloadOkResponse(Host.generation()));
  } else {
    count(&NetServerCounters::ReloadsFailed);
    std::string Message = loadStatusName(Status);
    if (!Error.empty())
      Message += ": " + Error;
    sendFrame(Conn, net::encodeStringResponse(
                        Verb::Reload, WireStatus::ReloadFailed, Message));
  }
  InFlightRequests.fetch_sub(1);
  wakeEventThread();
}

std::string NetServer::buildStatszJson() {
  const ServeSnapshot S = Service.stats().snapshot();
  const NetServerCounters C = counters();

  JsonLine Server;
  Server.field("accepted", C.Accepted)
      .field("requests", C.Requests)
      .field("annotated", C.Annotated)
      .field("shed", C.Shed)
      .field("rejected", C.Rejected)
      .field("reloads", C.Reloads)
      .field("reloads_failed", C.ReloadsFailed)
      .field("draining", Draining)
      .field("in_flight_requests",
             static_cast<uint64_t>(InFlightRequests.load()))
      .field("in_flight_bytes", static_cast<uint64_t>(InFlightBytes.load()));

  std::string Methods = "[";
  bool First = true;
  for (int M = 0; M < NumPredictMethods; ++M) {
    const MethodCountersView &MC = S.PerMethod[M];
    if (MC.Loops == 0)
      continue;
    JsonLine Row;
    Row.field("method", methodName(static_cast<PredictMethod>(M)))
        .field("loops", MC.Loops)
        .field("cache_hits", MC.CacheHits)
        .field("dedup_hits", MC.DedupHits)
        .field("misses", MC.Misses)
        .field("predict_us", MC.PredictMicros);
    if (!First)
      Methods += ",";
    Methods += Row.str();
    First = false;
  }
  Methods += "]";

  JsonLine AccessClasses;
  for (int AC = 0; AC < NumAccessClasses; ++AC)
    AccessClasses.field(accessClassName(static_cast<AccessClass>(AC)),
                        S.AccessClasses[AC]);

  std::string Breakers = "[";
  for (int M = 0; M < NumPredictMethods; ++M) {
    const CircuitBreaker &Breaker =
        Service.breaker(static_cast<PredictMethod>(M));
    JsonLine Row;
    Row.field("method", methodName(static_cast<PredictMethod>(M)))
        .field("state", CircuitBreaker::stateName(Breaker.state()))
        .field("failures", Breaker.failures())
        .field("opens", Breaker.opens());
    if (M != 0)
      Breakers += ",";
    Breakers += Row.str();
  }
  Breakers += "]";

  JsonLine Serve;
  Serve.field("batches", S.BatchesServed)
      .field("programs", S.ProgramsServed)
      .field("rejected", S.ProgramsRejected)
      .field("degraded_requests", S.DegradedRequests)
      .field("predict_failures", S.PredictFailures)
      .field("loops", S.LoopsServed)
      .field("cache_hits", S.CacheHits)
      .field("dedup_hits", S.DedupHits)
      .field("cache_misses", S.CacheMisses)
      .field("forward_passes", S.ForwardPasses)
      .field("quantized_batches", S.QuantizedBatches)
      .field("kernel_isa", kernelIsaName(kernelIsa()))
      .field("hit_rate", S.hitRate())
      .field("throughput", S.throughput())
      .field("loops_analyzed", S.LoopsAnalyzed)
      .field("plans_clamped", S.PlansClamped)
      .field("legality_us", S.LegalityMicros)
      .raw("access_classes", AccessClasses.str())
      .raw("methods", Methods)
      .raw("breakers", Breakers);

  JsonLine Root;
  Root.field("generation", Host.generation())
      .raw("server", Server.str())
      .raw("serve", Serve.str())
      .raw("telemetry", Telemetry::snapshotJson());
  // Armed fault points show their hit/fired counts so a chaos run can
  // verify its faults actually exercised the paths under test.
  if (fault::FaultRegistry::instance().armed())
    Root.raw("faults", fault::FaultRegistry::instance().statusJson());
  return Root.str();
}

void NetServer::sendFrame(const ConnPtr &Conn, std::vector<char> Frame) {
  {
    std::lock_guard<std::mutex> Lock(Conn->OutMutex);
    if (Conn->Closed.load())
      return;
    Conn->Out.insert(Conn->Out.end(), Frame.begin(), Frame.end());
  }
  {
    std::lock_guard<std::mutex> Lock(DirtyMutex);
    Dirty.push_back(Conn);
  }
  wakeEventThread();
}

bool NetServer::flushOut(const ConnPtr &Conn) {
  static fault::FaultPoint &WriteFault = fault::point("socket.write");
  std::lock_guard<std::mutex> Lock(Conn->OutMutex);
  while (Conn->Out.size() > Conn->OutStart) {
    if (fault::fired(WriteFault))
      return false; // Injected mid-response connection loss.
    // MSG_NOSIGNAL: a half-closed peer must surface as EPIPE, not tear
    // the daemon down with SIGPIPE (nv_serverd also SIG_IGNs it for the
    // raw ::write paths; this keeps the library safe on its own).
    const ssize_t N =
        ::send(Conn->Fd, Conn->Out.data() + Conn->OutStart,
               Conn->Out.size() - Conn->OutStart, MSG_NOSIGNAL);
    if (N > 0) {
      Conn->OutStart += static_cast<size_t>(N);
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!Conn->WantWrite) {
        epoll_event Ev{};
        Ev.events = EPOLLIN | EPOLLOUT;
        Ev.data.fd = Conn->Fd;
        ::epoll_ctl(EpollFd.fd(), EPOLL_CTL_MOD, Conn->Fd, &Ev);
        Conn->WantWrite = true;
      }
      return true; // Socket full; EPOLLOUT resumes us.
    }
    return false; // Broken pipe.
  }
  Conn->Out.clear();
  Conn->OutStart = 0;
  if (Conn->WantWrite) {
    epoll_event Ev{};
    Ev.events = EPOLLIN;
    Ev.data.fd = Conn->Fd;
    ::epoll_ctl(EpollFd.fd(), EPOLL_CTL_MOD, Conn->Fd, &Ev);
    Conn->WantWrite = false;
  }
  return true;
}

void NetServer::closeConnection(const ConnPtr &Conn) {
  if (Conn->Closed.exchange(true))
    return;
  ::epoll_ctl(EpollFd.fd(), EPOLL_CTL_DEL, Conn->Fd, nullptr);
  ::close(Conn->Fd);
  Conns.erase(Conn->Fd);
}
