//===- net/Client.cpp - Blocking protocol client --------------------------===//

#include "net/Client.h"

#include "support/RNG.h"

#include <chrono>
#include <thread>

using namespace nv;
using net::Verb;
using net::WireStatus;

uint64_t NetClient::backoffMicros(const ClientConfig &Config, int Attempt) {
  if (Config.BackoffBaseMs <= 0)
    return 0;
  // Saturating shift, then cap.
  uint64_t Ms = static_cast<uint64_t>(Config.BackoffBaseMs);
  if (Attempt > 0)
    Ms = Attempt >= 32 ? ~0ull >> 1 : Ms << Attempt;
  const uint64_t Cap = static_cast<uint64_t>(
      Config.BackoffMaxMs > 0 ? Config.BackoffMaxMs : Config.BackoffBaseMs);
  if (Ms > Cap)
    Ms = Cap;
  // Deterministic jitter in [0.5, 1.0): same seed + attempt, same delay —
  // the chaos suite asserts exact bounds on total retry latency.
  const double Jitter =
      0.5 + 0.5 * RNG(Config.BackoffSeed)
                      .split(static_cast<uint64_t>(Attempt))
                      .nextDouble();
  return static_cast<uint64_t>(static_cast<double>(Ms) * 1000.0 * Jitter);
}

bool NetClient::connect(const std::string &Host, uint16_t Port,
                        std::string *Error) {
  this->Host = Host;
  this->Port = Port;
  Sock = connectTcp(Host, Port, Error, Config.ConnectTimeoutMs);
  if (Sock.valid() && Config.IoTimeoutMs > 0)
    setIoTimeouts(Sock.fd(), Config.IoTimeoutMs);
  return Sock.valid();
}

bool NetClient::ensureConnected(std::string *Error) {
  if (Sock.valid())
    return true;
  if (Host.empty()) {
    if (Error)
      *Error = "not connected";
    return false;
  }
  if (!connect(Host, Port, Error))
    return false;
  Stats.Reconnects += 1;
  return true;
}

bool NetClient::withRetries(const std::function<bool(std::string *)> &Once,
                            std::string *Error) {
  std::string LocalError;
  for (int Attempt = 0;; ++Attempt) {
    LocalError.clear();
    if (Once(&LocalError))
      return true;
    if (Attempt >= Config.MaxRetries) {
      if (Error)
        *Error = LocalError;
      return false;
    }
    Stats.Retries += 1;
    const uint64_t Delay = backoffMicros(Config, Attempt);
    if (Delay > 0)
      std::this_thread::sleep_for(std::chrono::microseconds(Delay));
  }
}

bool NetClient::roundTrip(Verb V, const std::vector<char> &Frame,
                          net::ResponseHeader &Header,
                          std::vector<char> &Body, std::string *Error) {
  if (!Sock.valid()) {
    if (Error)
      *Error = "not connected";
    return false;
  }
  // Any failure below closes the socket: the stream position is unknown
  // (a half-written request or half-read response), so the only safe
  // recovery is a fresh connection.
  if (!writeFull(Sock.fd(), Frame.data(), Frame.size())) {
    Sock.reset();
    if (Error)
      *Error = "write failed (connection lost)";
    return false;
  }
  char HeaderBuf[net::ResponseHeaderSize];
  if (!readFull(Sock.fd(), HeaderBuf, sizeof(HeaderBuf))) {
    Sock.reset();
    if (Error)
      *Error = "short read on response header";
    return false;
  }
  if (!net::parseResponseHeader(HeaderBuf, sizeof(HeaderBuf), Header) ||
      Header.V != V) {
    Sock.reset();
    if (Error)
      *Error = "malformed response header";
    return false;
  }
  Body.resize(Header.BodyLen);
  if (Header.BodyLen > 0 &&
      !readFull(Sock.fd(), Body.data(), Body.size())) {
    Sock.reset();
    if (Error)
      *Error = "short read on response body";
    return false;
  }
  // Non-Ok responses carry their cause as a string body; remember it so
  // callers can report *why* a request was rejected.
  LastMessage.clear();
  if (Header.Status != WireStatus::Ok)
    net::decodeStringBody(Body.data(), Body.size(), LastMessage);
  return true;
}

bool NetClient::ping(std::string *Error) {
  return withRetries(
      [&](std::string *E) {
        if (!ensureConnected(E))
          return false;
        net::ResponseHeader Header;
        std::vector<char> Body;
        if (!roundTrip(Verb::Ping, net::encodePingRequest(), Header, Body, E))
          return false;
        if (Header.Status != WireStatus::Ok) {
          if (E)
            *E = std::string("ping: ") + net::statusName(Header.Status);
          return false;
        }
        return true;
      },
      Error);
}

bool NetClient::annotate(const net::AnnotateRequestBody &Req,
                         net::AnnotateResponseBody &Out,
                         net::WireStatus &Status, std::string *Error) {
  const std::vector<char> Frame = net::encodeAnnotateRequest(Req);
  return withRetries(
      [&](std::string *E) {
        if (!ensureConnected(E))
          return false;
        net::ResponseHeader Header;
        std::vector<char> Body;
        if (!roundTrip(Verb::Annotate, Frame, Header, Body, E))
          return false;
        Status = Header.Status;
        if (Status != WireStatus::Ok)
          return true; // Rejection: the server's load signal, not ours to
                       // retry. Cause in statusMessage().
        if (!net::decodeAnnotateResponse(Body.data(), Body.size(), Out)) {
          Sock.reset();
          if (E)
            *E = "malformed annotate response body";
          return false;
        }
        return true;
      },
      Error);
}

bool NetClient::statsz(std::string &Json, std::string *Error) {
  return withRetries(
      [&](std::string *E) {
        if (!ensureConnected(E))
          return false;
        net::ResponseHeader Header;
        std::vector<char> Body;
        if (!roundTrip(Verb::Statsz, net::encodeStatszRequest(), Header, Body,
                       E))
          return false;
        if (Header.Status != WireStatus::Ok) {
          if (E)
            *E = std::string("statsz: ") + net::statusName(Header.Status);
          return false;
        }
        if (!net::decodeStringBody(Body.data(), Body.size(), Json)) {
          Sock.reset();
          if (E)
            *E = "malformed statsz body";
          return false;
        }
        return true;
      },
      Error);
}

bool NetClient::reload(const std::string &Path, net::WireStatus &Status,
                       uint64_t *Generation, std::string *Error) {
  // Only the connect stage is retried: once the frame may have reached
  // the daemon, a blind resend could apply the reload twice.
  if (!Sock.valid() && !withRetries(
                           [&](std::string *E) { return ensureConnected(E); },
                           Error))
    return false;
  net::ResponseHeader Header;
  std::vector<char> Body;
  if (!roundTrip(Verb::Reload, net::encodeReloadRequest(Path), Header, Body,
                 Error))
    return false;
  Status = Header.Status;
  if (Status != WireStatus::Ok)
    return true;
  uint64_t Gen = 0;
  if (!net::decodeReloadOkBody(Body.data(), Body.size(), Gen)) {
    Sock.reset();
    if (Error)
      *Error = "malformed reload response body";
    return false;
  }
  if (Generation)
    *Generation = Gen;
  return true;
}
