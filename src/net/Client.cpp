//===- net/Client.cpp - Blocking protocol client --------------------------===//

#include "net/Client.h"

using namespace nv;
using net::Verb;
using net::WireStatus;

bool NetClient::connect(const std::string &Host, uint16_t Port,
                        std::string *Error) {
  Sock = connectTcp(Host, Port, Error);
  return Sock.valid();
}

bool NetClient::roundTrip(Verb V, const std::vector<char> &Frame,
                          net::ResponseHeader &Header,
                          std::vector<char> &Body, std::string *Error) {
  if (!Sock.valid()) {
    if (Error)
      *Error = "not connected";
    return false;
  }
  if (!writeFull(Sock.fd(), Frame.data(), Frame.size())) {
    if (Error)
      *Error = "write failed (connection lost)";
    return false;
  }
  char HeaderBuf[net::ResponseHeaderSize];
  if (!readFull(Sock.fd(), HeaderBuf, sizeof(HeaderBuf))) {
    if (Error)
      *Error = "short read on response header";
    return false;
  }
  if (!net::parseResponseHeader(HeaderBuf, sizeof(HeaderBuf), Header) ||
      Header.V != V) {
    if (Error)
      *Error = "malformed response header";
    return false;
  }
  Body.resize(Header.BodyLen);
  if (Header.BodyLen > 0 &&
      !readFull(Sock.fd(), Body.data(), Body.size())) {
    if (Error)
      *Error = "short read on response body";
    return false;
  }
  // Non-Ok responses carry their cause as a string body; remember it so
  // callers can report *why* a request was rejected.
  LastMessage.clear();
  if (Header.Status != WireStatus::Ok)
    net::decodeStringBody(Body.data(), Body.size(), LastMessage);
  return true;
}

bool NetClient::ping(std::string *Error) {
  net::ResponseHeader Header;
  std::vector<char> Body;
  return roundTrip(Verb::Ping, net::encodePingRequest(), Header, Body,
                   Error) &&
         Header.Status == WireStatus::Ok;
}

bool NetClient::annotate(const net::AnnotateRequestBody &Req,
                         net::AnnotateResponseBody &Out,
                         net::WireStatus &Status, std::string *Error) {
  net::ResponseHeader Header;
  std::vector<char> Body;
  if (!roundTrip(Verb::Annotate, net::encodeAnnotateRequest(Req), Header,
                 Body, Error))
    return false;
  Status = Header.Status;
  if (Status != WireStatus::Ok)
    return true; // Protocol-level rejection; cause in statusMessage().
  if (!net::decodeAnnotateResponse(Body.data(), Body.size(), Out)) {
    if (Error)
      *Error = "malformed annotate response body";
    return false;
  }
  return true;
}

bool NetClient::statsz(std::string &Json, std::string *Error) {
  net::ResponseHeader Header;
  std::vector<char> Body;
  if (!roundTrip(Verb::Statsz, net::encodeStatszRequest(), Header, Body,
                 Error))
    return false;
  if (Header.Status != WireStatus::Ok) {
    if (Error)
      *Error = std::string("statsz: ") + net::statusName(Header.Status);
    return false;
  }
  if (!net::decodeStringBody(Body.data(), Body.size(), Json)) {
    if (Error)
      *Error = "malformed statsz body";
    return false;
  }
  return true;
}

bool NetClient::reload(const std::string &Path, net::WireStatus &Status,
                       uint64_t *Generation, std::string *Error) {
  net::ResponseHeader Header;
  std::vector<char> Body;
  if (!roundTrip(Verb::Reload, net::encodeReloadRequest(Path), Header, Body,
                 Error))
    return false;
  Status = Header.Status;
  if (Status != WireStatus::Ok)
    return true;
  uint64_t Gen = 0;
  if (!net::decodeReloadOkBody(Body.data(), Body.size(), Gen)) {
    if (Error)
      *Error = "malformed reload response body";
    return false;
  }
  if (Generation)
    *Generation = Gen;
  return true;
}
