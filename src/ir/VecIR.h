//===- ir/VecIR.h - Vectorization IR for innermost loops --------*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-iteration instruction IR that an innermost loop body lowers to.
/// Both the LLVM-like baseline cost model (src/target) and the machine
/// simulator (src/sim) consume this representation: the cost model applies
/// linear per-instruction cost tables to it (exactly the class of model the
/// paper criticizes), while the simulator schedules it cycle-by-cycle.
///
//===----------------------------------------------------------------------===//

#ifndef NV_IR_VECIR_H
#define NV_IR_VECIR_H

#include "lang/AST.h"
#include "lang/Type.h"

#include <string>
#include <vector>

namespace nv {

/// Affine form of an index expression: `Const + sum(Coeff_k * Var_k)` over
/// loop induction variables. Non-affine indices (e.g. indirect `a[b[i]]`)
/// set IsAffine = false.
struct AffineIndex {
  bool IsAffine = true;
  long long Const = 0;
  /// (loop variable, coefficient) terms; variables appear at most once.
  std::vector<std::pair<std::string, long long>> Terms;

  /// Coefficient of \p Var (0 if absent).
  long long coeffOf(const std::string &Var) const {
    for (const auto &[Name, Coeff] : Terms)
      if (Name == Var)
        return Coeff;
    return 0;
  }
};

/// One memory access of the loop body.
struct MemAccess {
  std::string Array;
  ScalarType ElemTy = ScalarType::Int;
  bool IsStore = false;
  bool IsAffine = true;  ///< False => gather/scatter (indirect index).
  /// Flattened element index as an affine function of the loop variables
  /// (row-major flattening using the array's declared dimensions).
  AffineIndex Flat;
  /// Stride in *elements* with respect to the innermost loop variable
  /// (0 = invariant, 1 = contiguous, >1 = strided); meaningless when
  /// !IsAffine.
  long long InnerStride = 0;
  /// Total declared elements of the array (for footprint estimates).
  long long ArrayElements = 0;
};

/// Vector IR opcodes.
enum class VROp {
  Load,
  Store,
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  Shl,
  Shr,
  And,
  Or,
  Xor,
  Neg,
  Not,
  Cmp,
  Select,
  Cast,
  Min,
  Max,
  Abs,
  Sqrt,
};

/// Returns a printable mnemonic.
const char *vrOpName(VROp Op);

/// One per-iteration instruction. Operands reference earlier instructions
/// by index; -1 denotes a loop-invariant value or constant (free: lives in
/// a register across the loop).
struct VecInst {
  VROp Op = VROp::Add;
  ScalarType Ty = ScalarType::Int; ///< Result (or stored value) type.
  ScalarType SrcTy = ScalarType::Int; ///< Source type for Cast.
  int Operands[3] = {-1, -1, -1};
  int AccessIdx = -1;       ///< Index into LoopSummary::Accesses (mem ops).
  bool Predicated = false;  ///< Executed under an if/ternary mask.
  bool ReductionUpdate = false; ///< Part of a loop-carried reduction chain.
};

/// Loop-carried reduction kinds.
enum class ReductionKind { None, Sum, Product, Min, Max };

/// Reduction summary of a loop (at most one reduction variable tracked;
/// additional ones only deepen the same modeling).
struct ReductionInfo {
  ReductionKind Kind = ReductionKind::None;
  ScalarType Ty = ScalarType::Int;
  std::string Var;
};

/// Everything the cost model / simulator needs to know about one innermost
/// loop. Produced by lowerLoop() in ir/Lowering.h.
struct LoopSummary {
  const ForStmt *Loop = nullptr;

  std::vector<VecInst> Body;       ///< Per-iteration instructions.
  std::vector<MemAccess> Accesses; ///< Parallel table for mem ops.
  ReductionInfo Reduction;
  bool HasPredicate = false;   ///< Body contains if/ternary control.
  bool HasUnknownCall = false; ///< Calls we cannot vectorize.
  /// Loop-carried scalar recurrence that is not a recognized reduction
  /// (e.g. `crc = f(crc)`): serializes iterations entirely — unrolling
  /// cannot break the chain, unlike reduction accumulators.
  bool HasScalarCycle = false;

  /// Largest legal VF from memory dependence analysis (power of two).
  int MaxSafeVF = 1;

  /// Iteration domain of the innermost loop, resolved with the same
  /// runtime binding as RuntimeTrip: the induction variable takes the
  /// values InnerVarLo + k * InnerStep for k in [0, RuntimeTrip). The
  /// legality analysis normalizes affine indices to iteration space with
  /// these (so `i += 2` loops are not pessimized by var-space distances).
  long long InnerVarLo = 0;
  long long InnerStep = 1;

  /// Compile-time-known trip count; -1 when the bound is symbolic
  /// ("unknown loop bounds" in the paper's benchmark taxonomy).
  long long CompileTrip = -1;
  /// Actual trip count the simulator runs (symbolic bounds resolved via
  /// global initializers).
  long long RuntimeTrip = 0;
  /// Product of the enclosing loops' runtime trip counts (1 if not nested).
  long long OuterIterations = 1;

  ScalarType NarrowestType = ScalarType::Double;
  ScalarType WidestType = ScalarType::Char;
  int Depth = 1;
  /// Estimated simultaneously-live vector values (register pressure).
  int LiveValues = 0;

  /// Number of instructions of a given opcode (convenience for tests).
  int countOp(VROp Op) const {
    int N = 0;
    for (const VecInst &I : Body)
      if (I.Op == Op)
        ++N;
    return N;
  }
};

} // namespace nv

#endif // NV_IR_VECIR_H
