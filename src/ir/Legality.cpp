//===- ir/Legality.cpp - Loop legality analysis ---------------------------===//

#include "ir/Legality.h"

#include "ir/Dependence.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <numeric>
#include <sstream>

using namespace nv;

const char *nv::accessClassName(AccessClass C) {
  switch (C) {
  case AccessClass::Uniform:
    return "uniform";
  case AccessClass::Consecutive:
    return "consecutive";
  case AccessClass::Strided:
    return "strided";
  case AccessClass::Gather:
    return "gather";
  }
  return "?";
}

const char *nv::depKindName(DepKind K) {
  switch (K) {
  case DepKind::Flow:
    return "flow";
  case DepKind::Anti:
    return "anti";
  case DepKind::Output:
    return "output";
  }
  return "?";
}

const char *nv::depDirectionName(DepDirection D) {
  switch (D) {
  case DepDirection::Lt:
    return "<";
  case DepDirection::Eq:
    return "=";
  case DepDirection::Gt:
    return ">";
  }
  return "?";
}

AccessClass nv::classifyAccess(const MemAccess &Access, long long InnerStep) {
  if (!Access.IsAffine)
    return AccessClass::Gather;
  const long long IterStride = Access.InnerStride * InnerStep;
  if (IterStride == 0)
    return AccessClass::Uniform;
  if (IterStride == 1)
    return AccessClass::Consecutive;
  return AccessClass::Strided;
}

/// Returns the term list of \p Index without \p InnerVar, sorted by name.
static std::vector<std::pair<std::string, long long>>
invariantTerms(const AffineIndex &Index, const std::string &InnerVar) {
  std::vector<std::pair<std::string, long long>> Terms;
  for (const auto &Term : Index.Terms)
    if (Term.first != InnerVar)
      Terms.push_back(Term);
  std::sort(Terms.begin(), Terms.end());
  return Terms;
}

bool nv::testAccessPair(const MemAccess &Store, const MemAccess &Other,
                        int SrcIdx, int DstIdx, const std::string &InnerVar,
                        const IterationDomain &Domain,
                        DependenceEdge &Out) {
  if (Store.Array != Other.Array)
    return false; // Distinct arrays never alias in LoopLang (no pointers).

  Out = DependenceEdge();
  Out.Src = SrcIdx;
  Out.Dst = DstIdx;
  Out.Kind = Other.IsStore ? DepKind::Output : DepKind::Flow;

  if (!Store.IsAffine || !Other.IsAffine) {
    Out.Unknown = true;
    Out.BindsVF = true;
    return true;
  }

  // Outer-variable terms must match to compare constants; otherwise the
  // addresses differ by an unknown loop-invariant amount and we give up
  // (conservative, like LLVM's RuntimeChecks-off behaviour).
  if (invariantTerms(Store.Flat, InnerVar) !=
      invariantTerms(Other.Flat, InnerVar)) {
    Out.Unknown = true;
    Out.BindsVF = true;
    return true;
  }

  // Normalize to iteration space: with i = Lo + Step*k the address is
  // (Const + Coeff*Lo) + (Coeff*Step)*k over k in [0, Trip).
  const long long A = Store.Flat.coeffOf(InnerVar) * Domain.Step;
  const long long B = Other.Flat.coeffOf(InnerVar) * Domain.Step;
  const long long CS =
      Store.Flat.Const + Store.Flat.coeffOf(InnerVar) * Domain.Lo;
  const long long CO =
      Other.Flat.Const + Other.Flat.coeffOf(InnerVar) * Domain.Lo;
  const long long Trip = Domain.Trip;

  if (A == 0 && B == 0) {
    // ZIV: both invariant along the inner loop. The same cell touched
    // every iteration is a serial distance-1 chain; distinct cells never
    // alias.
    if (CS != CO)
      return false;
    Out.HasDistance = true;
    Out.Distance = 1;
    Out.BindsVF = true;
    return true;
  }

  if (A == B) {
    // Strong SIV: constant distance D = (CS - CO) / A in iterations.
    const long long Diff = CS - CO;
    if (Diff % A != 0)
      return false; // Addresses interleave without colliding.
    const long long D = Diff / A;
    if (Trip >= 0 && std::llabs(D) >= Trip)
      return false; // The sink iteration is outside the loop.
    if (D == 0) {
      if (SrcIdx == DstIdx)
        return false; // An access trivially aliases itself in-iteration.
      Out.Direction = DepDirection::Eq;
      Out.HasDistance = true;
      Out.Distance = 0;
      return true; // Loop-independent: reported, never binding.
    }
    Out.HasDistance = true;
    Out.Distance = D;
    if (D > 0) {
      Out.BindsVF = true;
      return true;
    }
    // Store in a *later* iteration than the conflicting access: an anti
    // dependence for loads (chunk loads precede chunk stores, so safe).
    // For store-store pairs the mirrored enumeration binds the positive
    // direction, so this direction stays informational.
    Out.Kind = Other.IsStore ? DepKind::Output : DepKind::Anti;
    Out.Direction = DepDirection::Gt;
    return true;
  }

  if (A == 0 || B == 0) {
    // Weak-zero SIV: one access is invariant, the other sweeps. There is
    // a single conflicting iteration k*; refute it against the trip range
    // (this is what rescues `a[i] = ...` against a read of `a[C]` with
    // C outside the iteration space).
    const long long Sweep = A != 0 ? A : B;
    const long long Num = A != 0 ? (CO - CS) : (CS - CO);
    if (Num % Sweep != 0)
      return false;
    const long long K = Num / Sweep;
    if (K < 0 || (Trip >= 0 && K >= Trip))
      return false;
    if (A != 0) {
      // The store sweeps and hits the invariant cell at k*; the invariant
      // access repeats every iteration, so any iteration after k*
      // observes the store.
      if (Trip < 0 || K + 1 < Trip) {
        Out.BindsVF = true;
        return true;
      }
      if (SrcIdx == DstIdx || K == 0)
        return false;
      Out.Kind = Other.IsStore ? DepKind::Output : DepKind::Anti;
      Out.Direction = DepDirection::Gt;
      return true;
    }
    // The store is invariant (writes every iteration); the sweeping
    // access touches that cell at k*. Every store before k* conflicts.
    if (K > 0) {
      Out.BindsVF = true;
      return true;
    }
    if (SrcIdx == DstIdx || Other.IsStore)
      return false; // Mirrored enumeration covers the store-store case.
    Out.Kind = DepKind::Anti;
    Out.Direction = DepDirection::Gt;
    return true;
  }

  if (A == -B) {
    // Weak-crossing SIV: conflicts satisfy k1 + k2 = T.
    const long long Sum = CO - CS;
    if (Sum % A != 0)
      return false;
    const long long T = Sum / A;
    if (T < 0 || (Trip >= 0 && T > 2 * (Trip - 1)))
      return false;
    if (T == 0) {
      if (SrcIdx == DstIdx)
        return false;
      Out.Direction = DepDirection::Eq;
      Out.HasDistance = true;
      Out.Distance = 0;
      return true;
    }
    Out.BindsVF = true; // Distances vary across the crossing; assume 1.
    return true;
  }

  // MIV/GCD fallback: a conflict A*k1 + CS = B*k2 + CO has integer
  // solutions only when gcd(A, B) divides the constant difference.
  const long long G = std::gcd(std::llabs(A), std::llabs(B));
  if (G != 0 && (CO - CS) % G != 0)
    return false;
  Out.Unknown = true;
  Out.BindsVF = true;
  return true;
}

namespace {

/// Dependence sweep over all store<->access pairs (including self-pairs:
/// an invariant store serializes against itself).
struct DepSweep {
  std::vector<DependenceEdge> Edges;
  long long MinBindingDistance = 0; ///< 0 = no binding constant distance.
  bool HasUnknown = false;
  int MaxSafeVF = 1;

  void run(const std::vector<MemAccess> &Accesses,
           const std::string &InnerVar, const IterationDomain &Domain,
           int HWMaxVF) {
    long long Bound = HWMaxVF;
    for (size_t S = 0; S < Accesses.size(); ++S) {
      const MemAccess &Store = Accesses[S];
      if (!Store.IsStore)
        continue;
      // A non-affine store pairs as Unknown with everything, including
      // itself, so scatters bind VF to 1 without a special case.
      for (size_t O = 0; O < Accesses.size(); ++O) {
        DependenceEdge Edge;
        if (!testAccessPair(Store, Accesses[O], static_cast<int>(S),
                            static_cast<int>(O), InnerVar, Domain, Edge))
          continue;
        if (Edge.Src == Edge.Dst && !Edge.BindsVF)
          continue; // Trivial self facts are noise.
        if (Edge.BindsVF) {
          const long long D =
              Edge.HasDistance && Edge.Distance > 0 ? Edge.Distance : 1;
          Bound = std::min(Bound, D);
          if (Edge.HasDistance && Edge.Distance > 0 &&
              (MinBindingDistance == 0 || D < MinBindingDistance))
            MinBindingDistance = D;
        }
        HasUnknown |= Edge.Unknown;
        Edges.push_back(Edge);
      }
    }
    MaxSafeVF = floorPow2(std::min<long long>(Bound, HWMaxVF));
  }
};

} // namespace

VectorPlan nv::legalizePlan(int MaxSafeVF, VectorPlan Requested,
                            const TargetInfo &TI) {
  VectorPlan Plan;
  Plan.VF = floorPow2(std::clamp(Requested.VF, 1, TI.MaxVF));
  Plan.IF = floorPow2(std::clamp(Requested.IF, 1, TI.MaxIF));
  // The compiler ignores infeasible widths (dependences, calls, ...).
  Plan.VF = std::min(Plan.VF, MaxSafeVF);
  return Plan;
}

bool LegalitySummary::isLegal(VectorPlan Plan, const TargetInfo &TI) const {
  const std::vector<int> VFs = TI.vfActions();
  const std::vector<int> IFs = TI.ifActions();
  int VFIdx = -1, IFIdx = -1;
  for (size_t I = 0; I < VFs.size(); ++I)
    if (VFs[I] == Plan.VF)
      VFIdx = static_cast<int>(I);
  for (size_t I = 0; I < IFs.size(); ++I)
    if (IFs[I] == Plan.IF)
      IFIdx = static_cast<int>(I);
  if (VFIdx < 0 || IFIdx < 0)
    return false;
  return Mask.legal(VFIdx, IFIdx);
}

VectorPlan LegalitySummary::clamp(VectorPlan Requested,
                                  const TargetInfo &TI) const {
  return legalizePlan(MaxSafeVF, Requested, TI);
}

std::string LegalitySummary::explain(VectorPlan Plan,
                                     const TargetInfo &TI) const {
  std::ostringstream OS;
  const VectorPlan Clamped = clamp(Plan, TI);
  if (Plan.VF < 1 || Plan.VF > TI.MaxVF || floorPow2(Plan.VF) != Plan.VF) {
    OS << "VF " << Plan.VF << " is not a power of two within [1, "
       << TI.MaxVF << "]";
    return OS.str();
  }
  if (Plan.IF < 1 || Plan.IF > TI.MaxIF || floorPow2(Plan.IF) != Plan.IF) {
    OS << "IF " << Plan.IF << " is not a power of two within [1, "
       << TI.MaxIF << "]";
    return OS.str();
  }
  if (Clamped == Plan)
    return "legal";
  OS << "VF " << Plan.VF << " exceeds max safe VF " << MaxSafeVF;
  if (HasUnknownCall)
    OS << " (call in loop body)";
  else if (HasScalarCycle)
    OS << " (loop-carried scalar recurrence)";
  else if (MinDependenceDistance > 0)
    OS << " (dependence distance " << MinDependenceDistance << ")";
  else if (HasUnknownDep)
    OS << " (unprovable dependence)";
  return OS.str();
}

LegalityDigest LegalitySummary::digest() const {
  LegalityDigest D;
  D.MaskBits = Mask.Bits;
  D.MaxSafeVF = MaxSafeVF;
  for (AccessClass C : Classes)
    ++D.ClassCount[static_cast<int>(C)];
  D.HasReduction = HasReduction ? 1 : 0;
  D.IfConvertible = (HasPredicate && IfConvertible) ? 1 : 0;
  return D;
}

LegalitySummary nv::analyzeLegality(const LoopSummary &Loop,
                                    const TargetInfo &TI) {
  LegalitySummary L;
  L.HasReduction = Loop.Reduction.Kind != ReductionKind::None;
  L.HasPredicate = Loop.HasPredicate;
  L.HasUnknownCall = Loop.HasUnknownCall;
  L.HasScalarCycle = Loop.HasScalarCycle;
  L.IfConvertible = !Loop.HasUnknownCall && !Loop.HasScalarCycle;

  L.Classes.reserve(Loop.Accesses.size());
  for (const MemAccess &Access : Loop.Accesses)
    L.Classes.push_back(classifyAccess(Access, Loop.InnerStep));

  IterationDomain Domain;
  Domain.Lo = Loop.InnerVarLo;
  Domain.Step = Loop.InnerStep == 0 ? 1 : Loop.InnerStep;
  Domain.Trip = Loop.RuntimeTrip > 0 ? Loop.RuntimeTrip : -1;

  DepSweep Sweep;
  Sweep.run(Loop.Accesses, Loop.Loop ? Loop.Loop->IndexVar : std::string(),
            Domain, TI.MaxVF);
  L.Edges = std::move(Sweep.Edges);
  L.MinDependenceDistance = Sweep.MinBindingDistance;
  L.HasUnknownDep = Sweep.HasUnknown;
  L.MaxSafeVF = Sweep.MaxSafeVF;
  if (Loop.HasUnknownCall || Loop.HasScalarCycle)
    L.MaxSafeVF = 1;

  const std::vector<int> VFs = TI.vfActions();
  const std::vector<int> IFs = TI.ifActions();
  L.Mask.Bits = 0;
  L.Mask.NumVF = static_cast<int8_t>(VFs.size());
  L.Mask.NumIF = static_cast<int8_t>(IFs.size());
  for (size_t V = 0; V < VFs.size(); ++V) {
    if (VFs[V] > L.MaxSafeVF)
      continue;
    // Interleaving is plain unrolling: every IF is legal at a legal VF.
    for (size_t I = 0; I < IFs.size(); ++I)
      L.Mask.set(static_cast<int>(V), static_cast<int>(I));
  }
  return L;
}

void nv::legalityFeatures(const LegalityDigest &Digest, const TargetInfo &TI,
                          double *Out) {
  double Total = 0.0;
  for (int C = 0; C < NumAccessClasses; ++C)
    Total += Digest.ClassCount[C];
  for (int C = 0; C < NumAccessClasses; ++C)
    Out[C] = Total > 0.0 ? Digest.ClassCount[C] / Total : 0.0;
  const double Denom = TI.MaxVF > 1 ? std::log2(double(TI.MaxVF)) : 1.0;
  Out[4] = std::log2(std::max(1.0, double(Digest.MaxSafeVF))) / Denom;
  Out[5] = Digest.HasReduction ? 1.0 : 0.0;
  Out[6] = Digest.IfConvertible ? 1.0 : 0.0;
}
