//===- ir/Dependence.cpp - Memory dependence analysis ---------------------===//

#include "ir/Dependence.h"

#include "ir/Legality.h"

#include <algorithm>

using namespace nv;

int nv::floorPow2(long long X) {
  if (X <= 1)
    return 1;
  int P = 1;
  while (2LL * P <= X && P < (1 << 29))
    P *= 2;
  return P;
}

/// Returns the term list of \p Index without \p InnerVar, sorted by name.
static std::vector<std::pair<std::string, long long>>
outerTerms(const AffineIndex &Index, const std::string &InnerVar) {
  std::vector<std::pair<std::string, long long>> Terms;
  for (const auto &Term : Index.Terms)
    if (Term.first != InnerVar)
      Terms.push_back(Term);
  std::sort(Terms.begin(), Terms.end());
  return Terms;
}

DependenceResult nv::testDependence(const MemAccess &Store,
                                    const MemAccess &Other,
                                    const std::string &InnerVar) {
  DependenceResult R;
  if (Store.Array != Other.Array)
    return R; // Distinct arrays never alias in LoopLang (no pointers).
  if (!Store.IsAffine || !Other.IsAffine) {
    R.Unknown = true;
    return R;
  }

  const long long CoeffS = Store.Flat.coeffOf(InnerVar);
  const long long CoeffO = Other.Flat.coeffOf(InnerVar);

  // Outer-variable terms must match to compare constants; otherwise the
  // addresses differ by an unknown loop-invariant amount and we give up
  // (conservative, like LLVM's RuntimeChecks-off behaviour).
  if (outerTerms(Store.Flat, InnerVar) != outerTerms(Other.Flat, InnerVar)) {
    R.Unknown = true;
    return R;
  }
  if (CoeffS != CoeffO) {
    // Different inner strides over the same array (e.g. a[i] and a[2*i]):
    // distances vary per iteration; treat as unknown.
    R.Unknown = true;
    return R;
  }
  const long long ConstS = Store.Flat.Const;
  const long long ConstO = Other.Flat.Const;
  if (CoeffS == 0) {
    // Both invariant along the inner loop. Same address every iteration is
    // a loop-carried serial dependence; different addresses never alias.
    if (ConstS == ConstO) {
      R.Unknown = true;
      return R;
    }
    return R;
  }
  const long long Diff = ConstS - ConstO;
  if (Diff % CoeffS != 0)
    return R; // Addresses interleave without colliding.
  const long long Distance = Diff / CoeffS;
  if (Distance <= 0)
    return R; // Same-iteration or anti-dependence: safe for any VF.
  R.Exists = true;
  R.Distance = Distance;
  return R;
}

int nv::computeMaxSafeVF(const std::vector<MemAccess> &Accesses,
                         const std::string &InnerVar, int HWMaxVF) {
  return computeMaxSafeVF(Accesses, InnerVar, HWMaxVF, /*Lo=*/0, /*Step=*/1,
                          /*Trip=*/-1);
}

int nv::computeMaxSafeVF(const std::vector<MemAccess> &Accesses,
                         const std::string &InnerVar, int HWMaxVF,
                         long long Lo, long long Step, long long Trip) {
  IterationDomain Domain;
  Domain.Lo = Lo;
  Domain.Step = Step != 0 ? Step : 1;
  Domain.Trip = Trip > 0 ? Trip : -1;

  long long Bound = HWMaxVF;
  for (size_t S = 0; S < Accesses.size(); ++S) {
    if (!Accesses[S].IsStore)
      continue;
    for (size_t O = 0; O < Accesses.size(); ++O) {
      DependenceEdge Edge;
      if (!testAccessPair(Accesses[S], Accesses[O], static_cast<int>(S),
                          static_cast<int>(O), InnerVar, Domain, Edge))
        continue;
      if (!Edge.BindsVF)
        continue;
      Bound = std::min(Bound, Edge.HasDistance && Edge.Distance > 0
                                  ? Edge.Distance
                                  : 1);
    }
  }
  return floorPow2(std::min<long long>(Bound, HWMaxVF));
}
