//===- ir/AnalysisReport.h - Offline legality reporting ---------*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The offline analysis driver behind the nv_analyze tool: parse a source
/// program, lower every vectorization site, run the legality analysis, and
/// render the findings — access classes, dependence edges with direction
/// vectors and distances, reductions/predication, the max safe VF, and
/// the legal-(VF, IF) mask — as human-readable text or strict JSON.
///
/// Deliberately offline-only: the report owns its parsed Program and never
/// touches the serving or training stacks, so it is safe to run against
/// untrusted sources without a model anywhere in sight.
///
//===----------------------------------------------------------------------===//

#ifndef NV_IR_ANALYSISREPORT_H
#define NV_IR_ANALYSISREPORT_H

#include "ir/Legality.h"
#include "lang/AST.h"
#include "lang/LoopExtractor.h"
#include "target/TargetInfo.h"

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

namespace nv {

/// Everything the analysis found for one program. Sites/Summaries/Legal
/// are parallel vectors (one entry per vectorization site); Sites borrow
/// AST nodes owned by Prog.
struct AnalysisReport {
  std::string Name;
  bool Ok = false;
  std::string Error; ///< Parse failure / "no loops" when !Ok.

  std::unique_ptr<Program> Prog;
  std::vector<LoopSite> Sites;
  std::vector<LoopSummary> Summaries;
  std::vector<LegalitySummary> Legal;
};

/// Runs parse -> loop extraction -> lowering -> legality analysis over
/// \p Source. Never throws; failures land in Report.Error.
AnalysisReport analyzeProgram(const std::string &Name,
                              const std::string &Source,
                              const TargetInfo &TI);

/// Renders \p Report as indented human-readable text (one block per loop).
void printAnalysisText(const AnalysisReport &Report, const TargetInfo &TI,
                       std::ostream &OS);

/// Renders \p Report as one strict JSON object:
/// {"name","ok","error","loops":[{"index","function","var","depth","trip",
///  "step","max_safe_vf","min_dependence_distance","unknown_dep",
///  "reduction","has_predicate","if_convertible","legal_plans",
///  "mask_bits","accesses":[...],"dependences":[...]}]}.
std::string analysisJson(const AnalysisReport &Report, const TargetInfo &TI);

} // namespace nv

#endif // NV_IR_ANALYSISREPORT_H
