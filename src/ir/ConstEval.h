//===- ir/ConstEval.h - Constant expression evaluation ----------*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Evaluates LoopLang expressions over an environment of scalar variable
/// values. Used twice: at "compile time" with an empty environment (loop
/// bounds that reference variables are *unknown trip counts*, a feature the
/// baseline cost model must handle pessimistically, like LLVM does) and at
/// "run time" with global initializers bound (the machine simulator needs
/// concrete trip counts).
///
//===----------------------------------------------------------------------===//

#ifndef NV_IR_CONSTEVAL_H
#define NV_IR_CONSTEVAL_H

#include "lang/AST.h"

#include <optional>
#include <string>
#include <unordered_map>

namespace nv {

/// Variable environment: name -> value.
using ValueEnv = std::unordered_map<std::string, double>;

/// Evaluates \p E over \p Env. Returns std::nullopt if the expression
/// references an unbound variable, an array element, or an unknown call.
std::optional<double> evalExpr(const Expr &E, const ValueEnv &Env);

/// Builds the runtime environment from a program's global scalar
/// initializers (`int N = 512;` binds N=512). Uninitialized scalars are
/// bound to \p DefaultValue, so bounds always resolve at run time.
ValueEnv runtimeEnv(const Program &P, double DefaultValue = 256.0);

/// Trip count of a canonical loop `for (i = Init; i </<= Bound; i += Step)`
/// over \p Env; std::nullopt if the bounds do not evaluate.
std::optional<long long> tripCount(const ForStmt &Loop, const ValueEnv &Env);

} // namespace nv

#endif // NV_IR_CONSTEVAL_H
