//===- ir/Legality.h - Loop legality analysis -------------------*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-loop legality analysis: the static pass that decides which (VF, IF)
/// plans the simulated compiler will honor, and why. It subsumes the old
/// pairwise dependence test with a full classification:
///
///  - Dependence testing per store<->access pair: ZIV, strong SIV (constant
///    distance + direction vector), weak-zero SIV with trip-range
///    refutation, weak-crossing SIV, and a GCD fallback for mismatched
///    coefficients. All tests run in *iteration space* (the induction
///    variable's start value and step are normalized away), so `i += 2`
///    loops no longer pessimize.
///  - Access classification: uniform / consecutive / strided(k) / gather.
///  - Reduction and if-convertible-predicate detection.
///  - A precomputed legal-(VF, IF) bitmask over the action grid, consumed
///    by the RL policy (masked logits), the search baselines, and the
///    serving front-end.
///
/// The contract with the simulated compiler: a plan drawn from the action
/// grid is legal iff legalizing it is the identity — equivalently, iff
/// VF <= MaxSafeVF (interleaving is unrolling and is always legal).
///
//===----------------------------------------------------------------------===//

#ifndef NV_IR_LEGALITY_H
#define NV_IR_LEGALITY_H

#include "ir/VecIR.h"
#include "target/TargetInfo.h"

#include <cstdint>
#include <string>
#include <vector>

namespace nv {

/// Memory access shapes, in the taxonomy of bistra's Analysis/Value.h.
enum class AccessClass {
  Uniform,     ///< Loop-invariant address (broadcast / single lane).
  Consecutive, ///< Unit iteration stride (a vector load/store).
  Strided,     ///< Constant non-unit (or negative) iteration stride.
  Gather,      ///< Indirect index (gather load / scatter store).
};
constexpr int NumAccessClasses = 4;

const char *accessClassName(AccessClass C);

/// Classifies \p Access. \p InnerStep is the induction variable's
/// per-iteration increment: `a[i]` under `i += 2` is Strided, not
/// Consecutive, because vector lanes map to iterations.
AccessClass classifyAccess(const MemAccess &Access, long long InnerStep);

/// Dependence kinds, source fixed as the earlier iteration.
enum class DepKind {
  Flow,   ///< Store then later load of the same address.
  Anti,   ///< Load then later store (safe here: chunk loads precede stores).
  Output, ///< Store then later store.
};
const char *depKindName(DepKind K);

/// Direction of the source iteration relative to the sink (<, =, >). In
/// this single-loop model Lt is a loop-carried dependence, Eq is
/// loop-independent, and Gt only appears on Anti edges.
enum class DepDirection { Lt, Eq, Gt };
const char *depDirectionName(DepDirection D);

/// One dependence fact between two accesses of the same array.
struct DependenceEdge {
  int Src = 0; ///< Index into LoopSummary::Accesses (a store).
  int Dst = 0; ///< Index into LoopSummary::Accesses.
  DepKind Kind = DepKind::Flow;
  DepDirection Direction = DepDirection::Lt;
  bool Unknown = false;     ///< Analysis gave up; assume distance 1.
  bool HasDistance = false; ///< Distance holds a constant iteration count.
  long long Distance = 0;
  /// True when the edge constrains MaxSafeVF (loop-carried Flow/Output or
  /// Unknown). Anti and loop-independent edges are reported but free.
  bool BindsVF = false;
};

/// Iteration domain of the innermost loop, for normalizing affine indices
/// to iteration space and for trip-range refutation.
struct IterationDomain {
  long long Lo = 0;    ///< First induction-variable value.
  long long Step = 1;  ///< Per-iteration increment (nonzero).
  long long Trip = -1; ///< Iteration count; -1 when unknown.
};

/// Tests the pair (store \p Store at index \p SrcIdx, access \p Other at
/// \p DstIdx) along \p InnerVar over \p Domain. Returns an edge with
/// BindsVF/Unknown set, or a non-binding edge, or nothing (no dependence).
/// A returned edge with Src == Dst is a self-dependence (e.g. an invariant
/// store overwriting the same cell every iteration).
bool testAccessPair(const MemAccess &Store, const MemAccess &Other,
                    int SrcIdx, int DstIdx, const std::string &InnerVar,
                    const IterationDomain &Domain, DependenceEdge &Out);

/// Legal-(VF, IF) bitmask over the action grid. Bit (VFIdx * NumIF + IFIdx)
/// is set when that grid point is legal. Fits in one word for the default
/// 7x5 grid.
struct PlanMask {
  uint64_t Bits = 0;
  int8_t NumVF = 0;
  int8_t NumIF = 0;

  bool legal(int VFIdx, int IFIdx) const {
    if (VFIdx < 0 || IFIdx < 0 || VFIdx >= NumVF || IFIdx >= NumIF)
      return false;
    return (Bits >> (VFIdx * NumIF + IFIdx)) & 1u;
  }
  void set(int VFIdx, int IFIdx) {
    Bits |= uint64_t(1) << (VFIdx * NumIF + IFIdx);
  }
  /// True when any IF is legal at \p VFIdx (the VF-head mask).
  bool vfLegal(int VFIdx) const {
    for (int I = 0; I < NumIF; ++I)
      if (legal(VFIdx, I))
        return true;
    return false;
  }
  int count() const {
    int N = 0;
    for (int V = 0; V < NumVF; ++V)
      for (int I = 0; I < NumIF; ++I)
        N += legal(V, I) ? 1 : 0;
    return N;
  }
  bool empty() const { return NumVF == 0; }
};

/// Compact, POD legality payload carried by the serving plan cache (and
/// enough to reconstruct the optional embedding features).
struct LegalityDigest {
  uint64_t MaskBits = 0;
  int32_t MaxSafeVF = 1;
  uint16_t ClassCount[NumAccessClasses] = {0, 0, 0, 0};
  uint8_t HasReduction = 0;
  uint8_t IfConvertible = 0;
};

/// Everything the consumers need to gate, mask, and explain plans for one
/// loop. Produced by analyzeLegality().
struct LegalitySummary {
  std::vector<AccessClass> Classes; ///< Parallel to LoopSummary::Accesses.
  std::vector<DependenceEdge> Edges;
  int MaxSafeVF = 1;
  /// Smallest binding constant dependence distance (0 = none binding).
  long long MinDependenceDistance = 0;
  bool HasUnknownDep = false;
  bool HasReduction = false;
  bool HasPredicate = false;
  /// True when any predicate in the body can be turned into a select mask
  /// (always, unless the body also has a call or a scalar recurrence).
  bool IfConvertible = true;
  bool HasUnknownCall = false;
  bool HasScalarCycle = false;
  PlanMask Mask;

  int classCount(AccessClass C) const {
    int N = 0;
    for (AccessClass K : Classes)
      N += K == C ? 1 : 0;
    return N;
  }

  /// True iff \p Plan is a grid point the compiler will honor unchanged.
  bool isLegal(VectorPlan Plan, const TargetInfo &TI) const;

  /// The plan the compiler actually uses for \p Requested — identical to
  /// SimCompiler::legalize() by construction.
  VectorPlan clamp(VectorPlan Requested, const TargetInfo &TI) const;

  /// Human-readable verdict for \p Plan ("legal", or why not).
  std::string explain(VectorPlan Plan, const TargetInfo &TI) const;

  LegalityDigest digest() const;
};

/// Runs the full analysis for one lowered loop over the action grid of
/// \p TI. Uses the iteration domain recorded on the summary by lowering.
LegalitySummary analyzeLegality(const LoopSummary &Loop,
                                const TargetInfo &TI);

/// Shared clamp used by SimCompiler::legalize and LegalitySummary::clamp:
/// round to powers of two, clamp to the target bounds, cap VF at
/// \p MaxSafeVF.
VectorPlan legalizePlan(int MaxSafeVF, VectorPlan Requested,
                        const TargetInfo &TI);

/// Optional embedding features derived from legality (class histogram +
/// normalized max-safe VF + reduction/if-conversion flags), appended to
/// the code2vec state when enabled.
constexpr int NumLegalityFeatures = 7;

/// Writes NumLegalityFeatures values to \p Out.
void legalityFeatures(const LegalityDigest &Digest, const TargetInfo &TI,
                      double *Out);

} // namespace nv

#endif // NV_IR_LEGALITY_H
