//===- ir/Lowering.h - AST to vector IR lowering ----------------*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers an innermost loop (a vectorization site found by the loop
/// extractor) into a LoopSummary: the per-iteration instruction list,
/// memory access table, reduction/predication facts, trip counts, and the
/// maximum legal VF. Everything downstream — the baseline cost model, the
/// machine simulator, and Polly-lite — consumes this summary.
///
//===----------------------------------------------------------------------===//

#ifndef NV_IR_LOWERING_H
#define NV_IR_LOWERING_H

#include "ir/VecIR.h"
#include "lang/AST.h"
#include "lang/LoopExtractor.h"

#include <vector>

namespace nv {

/// Lowers vectorization site \p Site of program \p P. \p HWMaxVF is the
/// widest VF the target supports (legality results are capped to it).
LoopSummary lowerLoop(const Program &P, const LoopSite &Site, int HWMaxVF);

/// Lowers every site of \p P (convenience used by the simulated compiler).
std::vector<LoopSummary> lowerAllLoops(const Program &P,
                                       std::vector<LoopSite> &Sites,
                                       int HWMaxVF);

} // namespace nv

#endif // NV_IR_LOWERING_H
