//===- ir/Lowering.cpp - AST to vector IR lowering ------------------------===//

#include "ir/Lowering.h"

#include "ir/AccessAnalysis.h"
#include "ir/ConstEval.h"
#include "ir/Dependence.h"

#include <cassert>
#include <unordered_map>

using namespace nv;

namespace {

/// An SSA-ish value: instruction index (-1 = loop-invariant/constant) plus
/// its element type.
struct Value {
  int Idx = -1;
  ScalarType Ty = ScalarType::Int;
};

/// Stateful lowering of one innermost loop body.
class LoweringContext {
public:
  LoweringContext(const Program &P, const LoopSite &Site, int HWMaxVF)
      : Prog(P), Site(Site), HWMaxVF(HWMaxVF) {
    for (const ForStmt *Loop : Site.Nest)
      LoopVars.push_back(Loop->IndexVar);
    collectLocalTypes(*Site.Func->Body);
  }

  LoopSummary run();

private:
  // Type environment ------------------------------------------------------
  void collectLocalTypes(const Stmt &S);
  ScalarType typeOfVar(const std::string &Name) const;

  // Expression lowering ----------------------------------------------------
  Value lowerExpr(const Expr &E);
  Value lowerArrayLoad(const ArrayRef &Ref);
  Value emit(VROp Op, ScalarType Ty, Value A = {}, Value B = {},
             Value C = {});
  Value castTo(Value V, ScalarType Ty);
  int addAccess(const ArrayRef &Ref, bool IsStore, ScalarType ElemTy);

  // Statement lowering -----------------------------------------------------
  void lowerStmt(const Stmt &S);
  void lowerAssign(const AssignStmt &A);
  bool detectReduction(const AssignStmt &A, const std::string &Var);

  static bool exprReads(const Expr &E, const std::string &Var);

  const Program &Prog;
  const LoopSite &Site;
  int HWMaxVF;

  std::vector<std::string> LoopVars;
  std::unordered_map<std::string, ScalarType> LocalTypes;
  std::unordered_map<std::string, Value> Defs; ///< Scalar defs in the body.
  LoopSummary Summary;
  int PredicateDepth = 0;
  Value CurrentPredicate; ///< Condition value of the innermost open if.
};

} // namespace

const char *nv::vrOpName(VROp Op) {
  switch (Op) {
  case VROp::Load:
    return "load";
  case VROp::Store:
    return "store";
  case VROp::Add:
    return "add";
  case VROp::Sub:
    return "sub";
  case VROp::Mul:
    return "mul";
  case VROp::Div:
    return "div";
  case VROp::Rem:
    return "rem";
  case VROp::Shl:
    return "shl";
  case VROp::Shr:
    return "shr";
  case VROp::And:
    return "and";
  case VROp::Or:
    return "or";
  case VROp::Xor:
    return "xor";
  case VROp::Neg:
    return "neg";
  case VROp::Not:
    return "not";
  case VROp::Cmp:
    return "cmp";
  case VROp::Select:
    return "select";
  case VROp::Cast:
    return "cast";
  case VROp::Min:
    return "min";
  case VROp::Max:
    return "max";
  case VROp::Abs:
    return "abs";
  case VROp::Sqrt:
    return "sqrt";
  }
  return "?";
}

void LoweringContext::collectLocalTypes(const Stmt &S) {
  switch (S.kind()) {
  case StmtKind::Block:
    for (const auto &Child : static_cast<const BlockStmt &>(S).Stmts)
      collectLocalTypes(*Child);
    return;
  case StmtKind::Decl: {
    const auto &D = static_cast<const DeclStmt &>(S);
    LocalTypes[D.Name] = D.Ty;
    return;
  }
  case StmtKind::For:
    collectLocalTypes(*static_cast<const ForStmt &>(S).Body);
    return;
  case StmtKind::If: {
    const auto &I = static_cast<const IfStmt &>(S);
    collectLocalTypes(*I.Then);
    if (I.Else)
      collectLocalTypes(*I.Else);
    return;
  }
  default:
    return;
  }
}

ScalarType LoweringContext::typeOfVar(const std::string &Name) const {
  auto It = LocalTypes.find(Name);
  if (It != LocalTypes.end())
    return It->second;
  if (const VarDecl *G = Prog.findGlobal(Name))
    return G->Ty;
  // Loop indices and anything unknown behave as int.
  return ScalarType::Int;
}

Value LoweringContext::emit(VROp Op, ScalarType Ty, Value A, Value B,
                            Value C) {
  VecInst Inst;
  Inst.Op = Op;
  Inst.Ty = Ty;
  Inst.Operands[0] = A.Idx;
  Inst.Operands[1] = B.Idx;
  Inst.Operands[2] = C.Idx;
  Inst.Predicated = PredicateDepth > 0;
  Summary.Body.push_back(Inst);
  return {static_cast<int>(Summary.Body.size()) - 1, Ty};
}

Value LoweringContext::castTo(Value V, ScalarType Ty) {
  if (V.Ty == Ty)
    return V;
  Value Result = emit(VROp::Cast, Ty, V);
  Summary.Body.back().SrcTy = V.Ty;
  return Result;
}

int LoweringContext::addAccess(const ArrayRef &Ref, bool IsStore,
                               ScalarType ElemTy) {
  MemAccess Access;
  Access.Array = Ref.Name;
  Access.ElemTy = ElemTy;
  Access.IsStore = IsStore;

  const VarDecl *Decl = Prog.findGlobal(Ref.Name);
  std::vector<long long> Dims;
  if (Decl && Decl->isArray()) {
    Dims = Decl->Dims;
    Access.ArrayElements = Decl->numElements();
  } else {
    // Undeclared array (or scalar used as array): assume 1-D, large.
    Dims.assign(Ref.Indices.size(), 1 << 20);
    Access.ArrayElements = 1 << 20;
  }

  std::vector<AffineIndex> PerDim;
  PerDim.reserve(Ref.Indices.size());
  for (const auto &Index : Ref.Indices)
    PerDim.push_back(analyzeIndex(*Index, LoopVars));
  Access.Flat = flattenIndex(PerDim, Dims);
  Access.IsAffine = Access.Flat.IsAffine;
  if (Access.IsAffine && !Site.Nest.empty())
    Access.InnerStride = Access.Flat.coeffOf(Site.Inner->IndexVar);

  Summary.Accesses.push_back(Access);
  return static_cast<int>(Summary.Accesses.size()) - 1;
}

Value LoweringContext::lowerArrayLoad(const ArrayRef &Ref) {
  // Indirect indices (a[b[i]]) require materializing the inner loads.
  for (const auto &Index : Ref.Indices) {
    AffineIndex AI = analyzeIndex(*Index, LoopVars);
    if (!AI.IsAffine)
      (void)lowerExpr(*Index);
  }
  const ScalarType ElemTy = typeOfVar(Ref.Name);
  const int AccessIdx = addAccess(Ref, /*IsStore=*/false, ElemTy);
  Value Result = emit(VROp::Load, ElemTy);
  Summary.Body.back().AccessIdx = AccessIdx;
  return Result;
}

Value LoweringContext::lowerExpr(const Expr &E) {
  switch (E.kind()) {
  case ExprKind::IntLit:
    return {-1, ScalarType::Int};
  case ExprKind::FloatLit:
    return {-1, ScalarType::Double};
  case ExprKind::VarRef: {
    const std::string &Name = static_cast<const VarRef &>(E).Name;
    auto It = Defs.find(Name);
    if (It != Defs.end())
      return It->second;
    return {-1, typeOfVar(Name)}; // Loop-invariant or induction variable.
  }
  case ExprKind::ArrayRef:
    return lowerArrayLoad(static_cast<const ArrayRef &>(E));
  case ExprKind::Unary: {
    const auto &U = static_cast<const UnaryExpr &>(E);
    Value Sub = lowerExpr(*U.Sub);
    switch (U.Op) {
    case UnaryOp::Neg:
      return emit(VROp::Neg, Sub.Ty, Sub);
    case UnaryOp::Not:
    case UnaryOp::BitNot:
      return emit(VROp::Not, Sub.Ty, Sub);
    }
    return Sub;
  }
  case ExprKind::Binary: {
    const auto &B = static_cast<const BinaryExpr &>(E);
    Value L = lowerExpr(*B.LHS);
    Value R = lowerExpr(*B.RHS);
    const ScalarType Ty = promote(L.Ty, R.Ty);
    if (isComparisonOp(B.Op))
      return emit(VROp::Cmp, Ty, L, R);
    switch (B.Op) {
    case BinaryOp::Add:
      return emit(VROp::Add, Ty, L, R);
    case BinaryOp::Sub:
      return emit(VROp::Sub, Ty, L, R);
    case BinaryOp::Mul:
      return emit(VROp::Mul, Ty, L, R);
    case BinaryOp::Div:
      return emit(VROp::Div, Ty, L, R);
    case BinaryOp::Rem:
      return emit(VROp::Rem, Ty, L, R);
    case BinaryOp::Shl:
      return emit(VROp::Shl, Ty, L, R);
    case BinaryOp::Shr:
      return emit(VROp::Shr, Ty, L, R);
    case BinaryOp::And:
    case BinaryOp::LAnd:
      return emit(VROp::And, Ty, L, R);
    case BinaryOp::Or:
    case BinaryOp::LOr:
      return emit(VROp::Or, Ty, L, R);
    case BinaryOp::Xor:
      return emit(VROp::Xor, Ty, L, R);
    default:
      return emit(VROp::Add, Ty, L, R);
    }
  }
  case ExprKind::Ternary: {
    const auto &T = static_cast<const TernaryExpr &>(E);
    Value Cond = lowerExpr(*T.Cond);
    Value Then = lowerExpr(*T.Then);
    Value Else = lowerExpr(*T.Else);
    const ScalarType Ty = promote(Then.Ty, Else.Ty);
    Summary.HasPredicate = true;
    return emit(VROp::Select, Ty, Cond, Then, Else);
  }
  case ExprKind::Cast: {
    const auto &C = static_cast<const CastExpr &>(E);
    Value Sub = lowerExpr(*C.Sub);
    return castTo(Sub, C.Ty);
  }
  case ExprKind::Call: {
    const auto &C = static_cast<const CallExpr &>(E);
    std::vector<Value> Args;
    for (const auto &Arg : C.Args)
      Args.push_back(lowerExpr(*Arg));
    if (C.Callee == "min" && Args.size() == 2)
      return emit(VROp::Min, promote(Args[0].Ty, Args[1].Ty), Args[0],
                  Args[1]);
    if (C.Callee == "max" && Args.size() == 2)
      return emit(VROp::Max, promote(Args[0].Ty, Args[1].Ty), Args[0],
                  Args[1]);
    if ((C.Callee == "abs" || C.Callee == "fabs") && Args.size() == 1)
      return emit(VROp::Abs, Args[0].Ty, Args[0]);
    if (C.Callee == "sqrt" && Args.size() == 1)
      return emit(VROp::Sqrt,
                  isFloatTy(Args[0].Ty) ? Args[0].Ty : ScalarType::Double,
                  Args[0]);
    // Unknown call: the loop cannot be vectorized (like LLVM without a
    // vector function ABI mapping).
    Summary.HasUnknownCall = true;
    return {-1, ScalarType::Int};
  }
  }
  return {-1, ScalarType::Int};
}

bool LoweringContext::exprReads(const Expr &E, const std::string &Var) {
  switch (E.kind()) {
  case ExprKind::IntLit:
  case ExprKind::FloatLit:
    return false;
  case ExprKind::VarRef:
    return static_cast<const VarRef &>(E).Name == Var;
  case ExprKind::ArrayRef: {
    const auto &Ref = static_cast<const ArrayRef &>(E);
    for (const auto &Index : Ref.Indices)
      if (exprReads(*Index, Var))
        return true;
    return false;
  }
  case ExprKind::Unary:
    return exprReads(*static_cast<const UnaryExpr &>(E).Sub, Var);
  case ExprKind::Binary: {
    const auto &B = static_cast<const BinaryExpr &>(E);
    return exprReads(*B.LHS, Var) || exprReads(*B.RHS, Var);
  }
  case ExprKind::Ternary: {
    const auto &T = static_cast<const TernaryExpr &>(E);
    return exprReads(*T.Cond, Var) || exprReads(*T.Then, Var) ||
           exprReads(*T.Else, Var);
  }
  case ExprKind::Cast:
    return exprReads(*static_cast<const CastExpr &>(E).Sub, Var);
  case ExprKind::Call: {
    const auto &C = static_cast<const CallExpr &>(E);
    for (const auto &Arg : C.Args)
      if (exprReads(*Arg, Var))
        return true;
    return false;
  }
  }
  return false;
}

bool LoweringContext::detectReduction(const AssignStmt &A,
                                      const std::string &Var) {
  // Only loop-carried scalars (no def so far in the body) reduce.
  if (Defs.count(Var))
    return false;

  ReductionKind Kind = ReductionKind::None;
  switch (A.Op) {
  case AssignOp::AddAssign:
  case AssignOp::SubAssign:
    Kind = ReductionKind::Sum;
    break;
  case AssignOp::MulAssign:
    Kind = ReductionKind::Product;
    break;
  case AssignOp::Assign: {
    // Patterns: `s = s + x`, `s = x + s`, `s = s * x`,
    // `s = min/max(s, x)`, `s = c ? x : s`.
    const Expr *RHS = A.RHS.get();
    if (const auto *B = dynCast<BinaryExpr>(RHS)) {
      const bool LhsIsVar =
          dynCast<VarRef>(B->LHS.get()) &&
          static_cast<const VarRef *>(B->LHS.get())->Name == Var;
      const bool RhsIsVar =
          dynCast<VarRef>(B->RHS.get()) &&
          static_cast<const VarRef *>(B->RHS.get())->Name == Var;
      if (LhsIsVar || RhsIsVar) {
        if (B->Op == BinaryOp::Add ||
            (B->Op == BinaryOp::Sub && LhsIsVar))
          Kind = ReductionKind::Sum;
        else if (B->Op == BinaryOp::Mul)
          Kind = ReductionKind::Product;
      }
    } else if (const auto *C = dynCast<CallExpr>(RHS)) {
      if (C->Args.size() == 2 &&
          (exprReads(*C->Args[0], Var) || exprReads(*C->Args[1], Var))) {
        if (C->Callee == "min")
          Kind = ReductionKind::Min;
        else if (C->Callee == "max")
          Kind = ReductionKind::Max;
      }
    } else if (const auto *T = dynCast<TernaryExpr>(RHS)) {
      const auto IsVar = [&](const Expr &E) {
        const auto *V = dynCast<VarRef>(&E);
        return V && V->Name == Var;
      };
      if (IsVar(*T->Then) || IsVar(*T->Else))
        Kind = exprReads(*T->Cond, Var) ? ReductionKind::Max
                                        : ReductionKind::None;
    }
    break;
  }
  }
  if (Kind == ReductionKind::None)
    return false;

  Summary.Reduction.Kind = Kind;
  Summary.Reduction.Var = Var;
  Summary.Reduction.Ty = typeOfVar(Var);
  return true;
}

void LoweringContext::lowerAssign(const AssignStmt &A) {
  if (const auto *Ref = dynCast<ArrayRef>(A.LValue.get())) {
    const ScalarType ElemTy = typeOfVar(Ref->Name);
    Value RHS;
    if (A.Op == AssignOp::Assign) {
      RHS = lowerExpr(*A.RHS);
    } else {
      Value Old = lowerArrayLoad(*Ref);
      Value Update = lowerExpr(*A.RHS);
      const VROp Op = A.Op == AssignOp::AddAssign ? VROp::Add
                      : A.Op == AssignOp::SubAssign ? VROp::Sub
                                                    : VROp::Mul;
      RHS = emit(Op, promote(Old.Ty, Update.Ty), Old, Update);
    }
    RHS = castTo(RHS, ElemTy);
    // Indirect store indices need their loads materialized too.
    for (const auto &Index : Ref->Indices) {
      AffineIndex AI = analyzeIndex(*Index, LoopVars);
      if (!AI.IsAffine)
        (void)lowerExpr(*Index);
    }
    const int AccessIdx = addAccess(*Ref, /*IsStore=*/true, ElemTy);
    (void)emit(VROp::Store, ElemTy, RHS);
    Summary.Body.back().AccessIdx = AccessIdx;
    return;
  }

  const auto *Var = dynCast<VarRef>(A.LValue.get());
  assert(Var && "assignment lvalue is VarRef or ArrayRef by construction");
  const std::string &Name = Var->Name;
  const bool IsReduction = detectReduction(A, Name);
  const bool IsLoopCarried =
      !Defs.count(Name) && !IsReduction &&
      (A.Op != AssignOp::Assign || exprReads(*A.RHS, Name));

  Value Old = Defs.count(Name) ? Defs[Name]
                               : Value{-1, typeOfVar(Name)};
  Value NewVal;
  if (A.Op == AssignOp::Assign) {
    NewVal = lowerExpr(*A.RHS);
  } else {
    Value Update = lowerExpr(*A.RHS);
    const VROp Op = A.Op == AssignOp::AddAssign ? VROp::Add
                    : A.Op == AssignOp::SubAssign ? VROp::Sub
                                                  : VROp::Mul;
    NewVal = emit(Op, promote(Old.Ty, Update.Ty), Old, Update);
  }
  NewVal = castTo(NewVal, typeOfVar(Name));

  if (IsReduction && NewVal.Idx >= 0)
    Summary.Body[NewVal.Idx].ReductionUpdate = true;
  if (IsLoopCarried) {
    // A loop-carried scalar that is not a recognized reduction serializes
    // the loop entirely (e.g. `t = a[i] + t * 3`).
    Summary.HasScalarCycle = true;
  }
  if (PredicateDepth > 0 && !IsReduction) {
    // Conditional scalar def: blend with the incoming value.
    NewVal = emit(VROp::Select, NewVal.Ty, CurrentPredicate, NewVal, Old);
  }
  Defs[Name] = NewVal;
}

void LoweringContext::lowerStmt(const Stmt &S) {
  switch (S.kind()) {
  case StmtKind::Block:
    for (const auto &Child : static_cast<const BlockStmt &>(S).Stmts)
      lowerStmt(*Child);
    return;
  case StmtKind::Decl: {
    const auto &D = static_cast<const DeclStmt &>(S);
    if (D.Init) {
      Value Init = lowerExpr(*D.Init);
      Defs[D.Name] = castTo(Init, D.Ty);
    } else {
      Defs[D.Name] = {-1, D.Ty};
    }
    return;
  }
  case StmtKind::Assign:
    lowerAssign(static_cast<const AssignStmt &>(S));
    return;
  case StmtKind::If: {
    const auto &I = static_cast<const IfStmt &>(S);
    Summary.HasPredicate = true;
    Value SavedPredicate = CurrentPredicate;
    CurrentPredicate = lowerExpr(*I.Cond);
    ++PredicateDepth;
    lowerStmt(*I.Then);
    if (I.Else)
      lowerStmt(*I.Else);
    --PredicateDepth;
    CurrentPredicate = SavedPredicate;
    return;
  }
  case StmtKind::For:
    // The extractor guarantees the site is innermost; a nested loop here
    // means the program mutated since extraction.
    assert(false && "innermost loop body contains a nested loop");
    Summary.HasUnknownCall = true;
    return;
  case StmtKind::Return:
    // Early exit from inside a loop prevents vectorization.
    Summary.HasUnknownCall = true;
    return;
  }
}

LoopSummary LoweringContext::run() {
  Summary.Loop = Site.Inner;
  Summary.Depth = Site.Depth;

  lowerStmt(*Site.Inner->Body);

  // Type extremes over memory accesses (they set the lane count).
  bool SawAccess = false;
  for (const MemAccess &Access : Summary.Accesses) {
    SawAccess = true;
    if (sizeOf(Access.ElemTy) < sizeOf(Summary.NarrowestType))
      Summary.NarrowestType = Access.ElemTy;
    if (sizeOf(Access.ElemTy) > sizeOf(Summary.WidestType))
      Summary.WidestType = Access.ElemTy;
  }
  if (!SawAccess) {
    Summary.NarrowestType = ScalarType::Int;
    Summary.WidestType = ScalarType::Int;
  }

  // Trip counts: compile-time (empty env) and runtime (globals bound).
  ValueEnv Empty;
  if (auto Trip = tripCount(*Site.Inner, Empty))
    Summary.CompileTrip = *Trip;
  ValueEnv Runtime = runtimeEnv(Prog);
  // Outer loop indices may appear in inner bounds (triangular loops); bind
  // them to their midpoints for an average-case runtime trip count.
  long long Outer = 1;
  for (size_t I = 0; I + 1 < Site.Nest.size(); ++I) {
    const ForStmt *Loop = Site.Nest[I];
    long long Trip = tripCount(*Loop, Runtime).value_or(64);
    if (Trip <= 0)
      Trip = 1;
    Outer *= Trip;
    auto Init = evalExpr(*Loop->Init, Runtime);
    Runtime[Loop->IndexVar] =
        Init.value_or(0.0) +
        static_cast<double>(Trip / 2) * static_cast<double>(Loop->Step);
  }
  Summary.OuterIterations = Outer;
  Summary.RuntimeTrip = tripCount(*Site.Inner, Runtime).value_or(64);
  Summary.InnerStep = Site.Inner->Step != 0 ? Site.Inner->Step : 1;
  Summary.InnerVarLo = static_cast<long long>(
      evalExpr(*Site.Inner->Init, Runtime).value_or(0.0));

  // Legality.
  if (Summary.HasUnknownCall || Summary.HasScalarCycle) {
    Summary.MaxSafeVF = 1;
  } else {
    Summary.MaxSafeVF =
        computeMaxSafeVF(Summary.Accesses, Site.Inner->IndexVar, HWMaxVF,
                         Summary.InnerVarLo, Summary.InnerStep,
                         Summary.RuntimeTrip);
  }

  // Register pressure estimate: distinct arrays + live scalars + masks.
  int DistinctArrays = 0;
  std::vector<std::string> Seen;
  for (const MemAccess &Access : Summary.Accesses) {
    bool Found = false;
    for (const std::string &Name : Seen)
      Found |= Name == Access.Array;
    if (!Found) {
      Seen.push_back(Access.Array);
      ++DistinctArrays;
    }
  }
  Summary.LiveValues = DistinctArrays + static_cast<int>(Defs.size()) +
                       (Summary.HasPredicate ? 1 : 0) + 1;
  return Summary;
}

LoopSummary nv::lowerLoop(const Program &P, const LoopSite &Site,
                          int HWMaxVF) {
  LoweringContext Ctx(P, Site, HWMaxVF);
  return Ctx.run();
}

std::vector<LoopSummary> nv::lowerAllLoops(const Program &P,
                                           std::vector<LoopSite> &Sites,
                                           int HWMaxVF) {
  std::vector<LoopSummary> Summaries;
  Summaries.reserve(Sites.size());
  for (const LoopSite &Site : Sites)
    Summaries.push_back(lowerLoop(P, Site, HWMaxVF));
  return Summaries;
}
