//===- ir/ConstEval.cpp - Constant expression evaluation ------------------===//

#include "ir/ConstEval.h"

#include <cmath>

using namespace nv;

std::optional<double> nv::evalExpr(const Expr &E, const ValueEnv &Env) {
  switch (E.kind()) {
  case ExprKind::IntLit:
    return static_cast<double>(static_cast<const IntLit &>(E).Value);
  case ExprKind::FloatLit:
    return static_cast<const FloatLit &>(E).Value;
  case ExprKind::VarRef: {
    auto It = Env.find(static_cast<const VarRef &>(E).Name);
    if (It == Env.end())
      return std::nullopt;
    return It->second;
  }
  case ExprKind::ArrayRef:
    return std::nullopt;
  case ExprKind::Unary: {
    const auto &U = static_cast<const UnaryExpr &>(E);
    auto Sub = evalExpr(*U.Sub, Env);
    if (!Sub)
      return std::nullopt;
    switch (U.Op) {
    case UnaryOp::Neg:
      return -*Sub;
    case UnaryOp::Not:
      return *Sub == 0.0 ? 1.0 : 0.0;
    case UnaryOp::BitNot:
      return static_cast<double>(~static_cast<long long>(*Sub));
    }
    return std::nullopt;
  }
  case ExprKind::Binary: {
    const auto &B = static_cast<const BinaryExpr &>(E);
    auto L = evalExpr(*B.LHS, Env);
    auto R = evalExpr(*B.RHS, Env);
    if (!L || !R)
      return std::nullopt;
    const long long LI = static_cast<long long>(*L);
    const long long RI = static_cast<long long>(*R);
    switch (B.Op) {
    case BinaryOp::Add:
      return *L + *R;
    case BinaryOp::Sub:
      return *L - *R;
    case BinaryOp::Mul:
      return *L * *R;
    case BinaryOp::Div:
      if (*R == 0.0)
        return std::nullopt;
      // Loop bound arithmetic is integral (`N/2 - 1`); keep C semantics.
      if (*L == std::floor(*L) && *R == std::floor(*R))
        return static_cast<double>(LI / RI);
      return *L / *R;
    case BinaryOp::Rem:
      if (RI == 0)
        return std::nullopt;
      return static_cast<double>(LI % RI);
    case BinaryOp::Shl:
      return static_cast<double>(LI << (RI & 63));
    case BinaryOp::Shr:
      return static_cast<double>(LI >> (RI & 63));
    case BinaryOp::And:
      return static_cast<double>(LI & RI);
    case BinaryOp::Or:
      return static_cast<double>(LI | RI);
    case BinaryOp::Xor:
      return static_cast<double>(LI ^ RI);
    case BinaryOp::LAnd:
      return (*L != 0.0 && *R != 0.0) ? 1.0 : 0.0;
    case BinaryOp::LOr:
      return (*L != 0.0 || *R != 0.0) ? 1.0 : 0.0;
    case BinaryOp::Lt:
      return *L < *R ? 1.0 : 0.0;
    case BinaryOp::Gt:
      return *L > *R ? 1.0 : 0.0;
    case BinaryOp::Le:
      return *L <= *R ? 1.0 : 0.0;
    case BinaryOp::Ge:
      return *L >= *R ? 1.0 : 0.0;
    case BinaryOp::Eq:
      return *L == *R ? 1.0 : 0.0;
    case BinaryOp::Ne:
      return *L != *R ? 1.0 : 0.0;
    }
    return std::nullopt;
  }
  case ExprKind::Ternary: {
    const auto &T = static_cast<const TernaryExpr &>(E);
    auto C = evalExpr(*T.Cond, Env);
    if (!C)
      return std::nullopt;
    return evalExpr(*C != 0.0 ? *T.Then : *T.Else, Env);
  }
  case ExprKind::Cast: {
    const auto &C = static_cast<const CastExpr &>(E);
    auto Sub = evalExpr(*C.Sub, Env);
    if (!Sub)
      return std::nullopt;
    if (!isFloatTy(C.Ty))
      return static_cast<double>(static_cast<long long>(*Sub));
    return *Sub;
  }
  case ExprKind::Call: {
    const auto &C = static_cast<const CallExpr &>(E);
    auto Arg = [&](size_t I) -> std::optional<double> {
      if (I >= C.Args.size())
        return std::nullopt;
      return evalExpr(*C.Args[I], Env);
    };
    if (C.Callee == "min" && C.Args.size() == 2) {
      auto A = Arg(0), B = Arg(1);
      if (A && B)
        return std::min(*A, *B);
    } else if (C.Callee == "max" && C.Args.size() == 2) {
      auto A = Arg(0), B = Arg(1);
      if (A && B)
        return std::max(*A, *B);
    } else if ((C.Callee == "abs" || C.Callee == "fabs") &&
               C.Args.size() == 1) {
      if (auto A = Arg(0))
        return std::fabs(*A);
    } else if (C.Callee == "sqrt" && C.Args.size() == 1) {
      if (auto A = Arg(0); A && *A >= 0.0)
        return std::sqrt(*A);
    }
    return std::nullopt;
  }
  }
  return std::nullopt;
}

ValueEnv nv::runtimeEnv(const Program &P, double DefaultValue) {
  ValueEnv Env;
  for (const VarDecl &G : P.Globals)
    if (!G.isArray())
      Env[G.Name] = G.Init.value_or(DefaultValue);
  return Env;
}

std::optional<long long> nv::tripCount(const ForStmt &Loop,
                                       const ValueEnv &Env) {
  auto Init = evalExpr(*Loop.Init, Env);
  auto Bound = evalExpr(*Loop.Bound, Env);
  if (!Init || !Bound)
    return std::nullopt;
  const long long Lo = static_cast<long long>(*Init);
  long long Hi = static_cast<long long>(*Bound);
  if (Loop.Cond == ForStmt::CondKind::LE)
    ++Hi;
  if (Hi <= Lo)
    return 0;
  return (Hi - Lo + Loop.Step - 1) / Loop.Step;
}
