//===- ir/AccessAnalysis.h - Affine index extraction ------------*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Extracts the affine form of array index expressions with respect to the
/// enclosing loop induction variables. This powers dependence analysis
/// (maximum safe VF), stride classification (contiguous vs strided vs
/// gather) and the polyhedral-lite transforms in src/polly.
///
//===----------------------------------------------------------------------===//

#ifndef NV_IR_ACCESSANALYSIS_H
#define NV_IR_ACCESSANALYSIS_H

#include "ir/VecIR.h"
#include "lang/AST.h"

#include <string>
#include <vector>

namespace nv {

/// Computes the affine form of \p E over the loop variables \p LoopVars.
/// Any other variable reference, array reference, or non-linear operation
/// yields IsAffine = false.
AffineIndex analyzeIndex(const Expr &E,
                         const std::vector<std::string> &LoopVars);

/// Adds \p B scaled by \p Scale into \p A (affine combination); the result
/// is non-affine if either input is.
AffineIndex combineAffine(const AffineIndex &A, const AffineIndex &B,
                          long long Scale);

/// Flattens per-dimension indices into a single element index using
/// row-major layout with the array dimensions \p Dims. If the number of
/// indices does not match Dims, or any index is non-affine, the result is
/// non-affine.
AffineIndex flattenIndex(const std::vector<AffineIndex> &PerDim,
                         const std::vector<long long> &Dims);

} // namespace nv

#endif // NV_IR_ACCESSANALYSIS_H
