//===- ir/AnalysisReport.cpp - Offline legality reporting -----------------===//

#include "ir/AnalysisReport.h"

#include "ir/Lowering.h"
#include "lang/Parser.h"
#include "support/Telemetry.h"

#include <ostream>
#include <sstream>

using namespace nv;

namespace {

const char *reductionName(ReductionKind K) {
  switch (K) {
  case ReductionKind::None:
    return "none";
  case ReductionKind::Sum:
    return "sum";
  case ReductionKind::Product:
    return "product";
  case ReductionKind::Min:
    return "min";
  case ReductionKind::Max:
    return "max";
  }
  return "none";
}

/// "<", "=", ">" — the direction-vector glyphs used in the literature.
const char *directionGlyph(DepDirection D) {
  switch (D) {
  case DepDirection::Lt:
    return "<";
  case DepDirection::Eq:
    return "=";
  case DepDirection::Gt:
    return ">";
  }
  return "?";
}

} // namespace

AnalysisReport nv::analyzeProgram(const std::string &Name,
                                  const std::string &Source,
                                  const TargetInfo &TI) {
  AnalysisReport Report;
  Report.Name = Name;
  std::string ParseError;
  std::optional<Program> Parsed = parseSource(Source, &ParseError);
  if (!Parsed) {
    Report.Error = "parse error: " + ParseError;
    return Report;
  }
  Report.Prog = std::make_unique<Program>(std::move(*Parsed));
  Report.Sites = extractLoops(*Report.Prog);
  if (Report.Sites.empty()) {
    Report.Error = "no vectorizable loops";
    return Report;
  }
  Report.Summaries = lowerAllLoops(*Report.Prog, Report.Sites, TI.MaxVF);
  Report.Legal.reserve(Report.Summaries.size());
  for (const LoopSummary &Summary : Report.Summaries)
    Report.Legal.push_back(analyzeLegality(Summary, TI));
  Report.Ok = true;
  return Report;
}

void nv::printAnalysisText(const AnalysisReport &Report, const TargetInfo &TI,
                           std::ostream &OS) {
  OS << Report.Name << ": ";
  if (!Report.Ok) {
    OS << Report.Error << "\n";
    return;
  }
  OS << Report.Sites.size() << " loop(s)\n";
  const int GridSize = static_cast<int>(TI.vfActions().size()) *
                       static_cast<int>(TI.ifActions().size());
  for (size_t L = 0; L < Report.Sites.size(); ++L) {
    const LoopSite &Site = Report.Sites[L];
    const LoopSummary &Sum = Report.Summaries[L];
    const LegalitySummary &Legal = Report.Legal[L];
    OS << "loop " << L << " (" << (Site.Func ? Site.Func->Name : "?")
       << ", var " << Sum.Loop->IndexVar << ", depth " << Sum.Depth
       << ", trip " << Sum.RuntimeTrip << ", step " << Sum.InnerStep
       << ")\n";
    OS << "  max safe VF " << Legal.MaxSafeVF << "; " << Legal.Mask.count()
       << "/" << GridSize << " grid plans legal";
    if (Legal.MinDependenceDistance > 0)
      OS << "; min binding distance " << Legal.MinDependenceDistance;
    if (Legal.HasUnknownDep)
      OS << "; unanalyzable dependence (assumed distance 1)";
    OS << "\n";
    OS << "  accesses:\n";
    for (size_t A = 0; A < Sum.Accesses.size(); ++A) {
      const MemAccess &Acc = Sum.Accesses[A];
      OS << "    [" << A << "] " << (Acc.IsStore ? "store " : "load  ")
         << Acc.Array << "  " << accessClassName(Legal.Classes[A]);
      if (Legal.Classes[A] == AccessClass::Strided)
        OS << " (stride " << Acc.InnerStride << ")";
      OS << "\n";
    }
    if (!Legal.Edges.empty()) {
      OS << "  dependences:\n";
      for (const DependenceEdge &E : Legal.Edges) {
        OS << "    [" << E.Src << "] -> [" << E.Dst << "] "
           << depKindName(E.Kind) << ", dir " << directionGlyph(E.Direction);
        if (E.Unknown)
          OS << ", unknown";
        else if (E.HasDistance)
          OS << ", distance " << E.Distance;
        if (E.BindsVF)
          OS << ", binds VF";
        OS << "\n";
      }
    }
    if (Sum.Reduction.Kind != ReductionKind::None)
      OS << "  reduction: " << reductionName(Sum.Reduction.Kind) << " over "
         << Sum.Reduction.Var << "\n";
    if (Legal.HasPredicate)
      OS << "  predicate: "
         << (Legal.IfConvertible ? "if-convertible" : "not if-convertible")
         << "\n";
    if (Legal.HasUnknownCall)
      OS << "  contains an unvectorizable call\n";
    if (Legal.HasScalarCycle)
      OS << "  loop-carried scalar recurrence (serializes iterations)\n";
  }
}

std::string nv::analysisJson(const AnalysisReport &Report,
                             const TargetInfo &TI) {
  JsonLine Root;
  Root.field("name", Report.Name)
      .field("ok", Report.Ok)
      .field("num_vf", static_cast<int>(TI.vfActions().size()))
      .field("num_if", static_cast<int>(TI.ifActions().size()));
  if (!Report.Ok) {
    Root.field("error", Report.Error).raw("loops", "[]");
    return Root.str();
  }

  std::string Loops = "[";
  for (size_t L = 0; L < Report.Sites.size(); ++L) {
    const LoopSite &Site = Report.Sites[L];
    const LoopSummary &Sum = Report.Summaries[L];
    const LegalitySummary &Legal = Report.Legal[L];

    std::string Accesses = "[";
    for (size_t A = 0; A < Sum.Accesses.size(); ++A) {
      const MemAccess &Acc = Sum.Accesses[A];
      JsonLine Row;
      Row.field("index", static_cast<int>(A))
          .field("array", Acc.Array)
          .field("store", Acc.IsStore)
          .field("class", accessClassName(Legal.Classes[A]))
          .field("stride", Acc.IsAffine ? Acc.InnerStride : 0ll);
      if (A != 0)
        Accesses += ",";
      Accesses += Row.str();
    }
    Accesses += "]";

    std::string Deps = "[";
    for (size_t E = 0; E < Legal.Edges.size(); ++E) {
      const DependenceEdge &Edge = Legal.Edges[E];
      JsonLine Row;
      Row.field("src", Edge.Src)
          .field("dst", Edge.Dst)
          .field("kind", depKindName(Edge.Kind))
          .field("direction", directionGlyph(Edge.Direction))
          .field("unknown", Edge.Unknown)
          .field("has_distance", Edge.HasDistance)
          .field("distance", Edge.Distance)
          .field("binds_vf", Edge.BindsVF);
      if (E != 0)
        Deps += ",";
      Deps += Row.str();
    }
    Deps += "]";

    JsonLine Loop;
    Loop.field("index", static_cast<int>(L))
        .field("function", Site.Func ? Site.Func->Name : "")
        .field("var", Sum.Loop->IndexVar)
        .field("depth", Sum.Depth)
        .field("trip", Sum.RuntimeTrip)
        .field("step", Sum.InnerStep)
        .field("max_safe_vf", Legal.MaxSafeVF)
        .field("min_dependence_distance", Legal.MinDependenceDistance)
        .field("unknown_dep", Legal.HasUnknownDep)
        .field("reduction", reductionName(Sum.Reduction.Kind))
        .field("has_predicate", Legal.HasPredicate)
        .field("if_convertible", Legal.IfConvertible)
        .field("unknown_call", Legal.HasUnknownCall)
        .field("scalar_cycle", Legal.HasScalarCycle)
        .field("legal_plans", Legal.Mask.count())
        .field("mask_bits", static_cast<uint64_t>(Legal.Mask.Bits))
        .raw("accesses", Accesses)
        .raw("dependences", Deps);
    if (L != 0)
      Loops += ",";
    Loops += Loop.str();
  }
  Loops += "]";

  Root.field("error", "").raw("loops", Loops);
  return Root.str();
}
