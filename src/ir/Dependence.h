//===- ir/Dependence.h - Memory dependence analysis -------------*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Loop-carried memory dependence analysis for innermost loops. Computes
/// the maximum safe vectorization factor: the paper notes that "predicates
/// and memory dependency can hinder reaching high VF and IF" and that the
/// compiler ignores infeasible pragmas — this analysis is what the
/// simulated compiler uses to clamp the agent's requested factors.
///
//===----------------------------------------------------------------------===//

#ifndef NV_IR_DEPENDENCE_H
#define NV_IR_DEPENDENCE_H

#include "ir/VecIR.h"

#include <string>
#include <vector>

namespace nv {

/// Result of a pairwise dependence test.
struct DependenceResult {
  bool Unknown = false;   ///< Analysis failed; assume the worst.
  bool Exists = false;    ///< A loop-carried dependence exists.
  long long Distance = 0; ///< Positive iteration distance when Exists.
};

/// Tests the dependence from store \p Store to access \p Other along the
/// innermost induction variable \p InnerVar.
DependenceResult testDependence(const MemAccess &Store,
                                const MemAccess &Other,
                                const std::string &InnerVar);

/// Returns the largest power-of-two VF (<= \p HWMaxVF) that is legal for a
/// loop with memory accesses \p Accesses along \p InnerVar. Returns 1 when
/// any store is non-affine or a dependence cannot be disproven. Only
/// store<->access pairs are tested: reads can never hazard against other
/// reads, so e.g. a read-only gather stays fully vectorizable.
int computeMaxSafeVF(const std::vector<MemAccess> &Accesses,
                     const std::string &InnerVar, int HWMaxVF);

/// As above, with the loop's iteration domain: the induction variable
/// takes the values \p Lo + k * \p Step for k in [0, \p Trip) (\p Trip ==
/// -1 when unknown). Distances are computed in iteration space and
/// weak-zero SIV conflicts outside the trip range are refuted, so this is
/// at least as precise as the domain-free overload.
int computeMaxSafeVF(const std::vector<MemAccess> &Accesses,
                     const std::string &InnerVar, int HWMaxVF, long long Lo,
                     long long Step, long long Trip);

/// Rounds \p X down to a power of two (minimum 1).
int floorPow2(long long X);

} // namespace nv

#endif // NV_IR_DEPENDENCE_H
