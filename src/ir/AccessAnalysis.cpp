//===- ir/AccessAnalysis.cpp - Affine index extraction --------------------===//

#include "ir/AccessAnalysis.h"

#include <algorithm>

using namespace nv;

AffineIndex nv::combineAffine(const AffineIndex &A, const AffineIndex &B,
                              long long Scale) {
  AffineIndex Result;
  if (!A.IsAffine || !B.IsAffine) {
    Result.IsAffine = false;
    return Result;
  }
  Result.Const = A.Const + Scale * B.Const;
  Result.Terms = A.Terms;
  for (const auto &[Var, Coeff] : B.Terms) {
    bool Found = false;
    for (auto &[ExistingVar, ExistingCoeff] : Result.Terms) {
      if (ExistingVar == Var) {
        ExistingCoeff += Scale * Coeff;
        Found = true;
        break;
      }
    }
    if (!Found)
      Result.Terms.emplace_back(Var, Scale * Coeff);
  }
  // Drop zero coefficients so equality comparisons are canonical.
  Result.Terms.erase(
      std::remove_if(Result.Terms.begin(), Result.Terms.end(),
                     [](const auto &Term) { return Term.second == 0; }),
      Result.Terms.end());
  return Result;
}

static AffineIndex nonAffine() {
  AffineIndex Result;
  Result.IsAffine = false;
  return Result;
}

static AffineIndex constant(long long Value) {
  AffineIndex Result;
  Result.Const = Value;
  return Result;
}

/// Multiplies two affine forms; affine only when one side is constant.
static AffineIndex mulAffine(const AffineIndex &A, const AffineIndex &B) {
  if (!A.IsAffine || !B.IsAffine)
    return nonAffine();
  if (A.Terms.empty())
    return combineAffine(constant(0), B, A.Const);
  if (B.Terms.empty())
    return combineAffine(constant(0), A, B.Const);
  return nonAffine();
}

AffineIndex nv::analyzeIndex(const Expr &E,
                             const std::vector<std::string> &LoopVars) {
  switch (E.kind()) {
  case ExprKind::IntLit:
    return constant(static_cast<const IntLit &>(E).Value);
  case ExprKind::FloatLit:
    return nonAffine();
  case ExprKind::VarRef: {
    const std::string &Name = static_cast<const VarRef &>(E).Name;
    for (const std::string &Var : LoopVars) {
      if (Var == Name) {
        AffineIndex Result;
        Result.Terms.emplace_back(Name, 1);
        return Result;
      }
    }
    // A non-induction variable in an index: loop-invariant offset. Model it
    // as an unknown-but-fixed constant 0 contribution; conservatively this
    // is fine for *stride* questions but dependence analysis must treat two
    // different symbols as maybe-aliasing. We encode it as a pseudo-term so
    // coefficient comparison keeps working.
    AffineIndex Result;
    Result.Terms.emplace_back("$sym:" + Name, 1);
    return Result;
  }
  case ExprKind::ArrayRef:
    return nonAffine(); // Indirect index => gather/scatter.
  case ExprKind::Unary: {
    const auto &U = static_cast<const UnaryExpr &>(E);
    if (U.Op != UnaryOp::Neg)
      return nonAffine();
    AffineIndex Sub = analyzeIndex(*U.Sub, LoopVars);
    return combineAffine(constant(0), Sub, -1);
  }
  case ExprKind::Binary: {
    const auto &B = static_cast<const BinaryExpr &>(E);
    AffineIndex L = analyzeIndex(*B.LHS, LoopVars);
    AffineIndex R = analyzeIndex(*B.RHS, LoopVars);
    switch (B.Op) {
    case BinaryOp::Add:
      return combineAffine(L, R, 1);
    case BinaryOp::Sub:
      return combineAffine(L, R, -1);
    case BinaryOp::Mul:
      return mulAffine(L, R);
    case BinaryOp::Shl:
      // `i << k` with constant k is an affine scale by 2^k.
      if (R.IsAffine && R.Terms.empty() && R.Const >= 0 && R.Const < 16)
        return combineAffine(constant(0), L, 1LL << R.Const);
      return nonAffine();
    default:
      return nonAffine();
    }
  }
  case ExprKind::Ternary:
    return nonAffine();
  case ExprKind::Cast:
    return analyzeIndex(*static_cast<const CastExpr &>(E).Sub, LoopVars);
  case ExprKind::Call:
    return nonAffine();
  }
  return nonAffine();
}

AffineIndex nv::flattenIndex(const std::vector<AffineIndex> &PerDim,
                             const std::vector<long long> &Dims) {
  if (PerDim.size() != Dims.size() || PerDim.empty())
    return nonAffine();
  // Row-major: flat = (((i0 * D1) + i1) * D2 + i2) ...
  AffineIndex Flat = PerDim[0];
  for (size_t D = 1; D < PerDim.size(); ++D) {
    if (!Flat.IsAffine)
      return nonAffine();
    AffineIndex Scaled = combineAffine(constant(0), Flat, Dims[D]);
    Flat = combineAffine(Scaled, PerDim[D], 1);
  }
  return Flat;
}
