//===- train/Curriculum.h - Staged training distribution --------*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A stage scheduler for what the agent trains on. The paper trains on
/// >10,000 generated programs at once; at production scale it pays to
/// start narrow (a few easy template families), widen to the full
/// generator, and finish on the fixed benchmark suites — advancing when
/// the reward EMA clears a threshold or after a step budget, whichever
/// fires first.
///
/// Stages only ever *append* programs to the environment, so earlier
/// distributions stay in the mix (no catastrophic forgetting of the easy
/// cases) and sample indices remain stable — which is what lets a resumed
/// run rebuild the exact environment by replaying stage activations.
/// All stage programs are materialized deterministically at construction
/// from the curriculum seed.
///
//===----------------------------------------------------------------------===//

#ifndef NV_TRAIN_CURRICULUM_H
#define NV_TRAIN_CURRICULUM_H

#include "dataset/Suites.h"
#include "rl/Env.h"

#include <cstdint>
#include <string>
#include <vector>

namespace nv {

/// One curriculum stage: either generated programs (template ids cycled
/// GeneratedCount times) or a fixed program list (benchmark suites).
struct CurriculumStageConfig {
  std::string Name;
  /// Generator template ids to cycle through; ignored when Programs is
  /// non-empty.
  std::vector<int> Templates;
  int GeneratedCount = 0;
  /// Fixed programs (e.g. a dataset/Suites suite).
  std::vector<NamedProgram> Programs;
  /// Advance when the reward EMA reaches this... (default: never)
  double AdvanceReward = 1e18;
  /// ...or after this many steps in the stage (default: never). The last
  /// stage typically never advances.
  long long AdvanceSteps = -1;
};

struct CurriculumConfig {
  uint64_t Seed = 0xC0FFEE;
  std::vector<CurriculumStageConfig> Stages;

  /// The default three-stage schedule: easy template families (elementwise,
  /// reductions, saxpy) -> all generator templates -> the fixed vectorizer
  /// test suite.
  static CurriculumConfig standard(int GeneratedPerStage = 24);
};

/// Stage scheduler. An empty config (no stages) is a valid inert
/// curriculum: activate()/observe() are no-ops and training uses whatever
/// the environment already contains.
class Curriculum {
public:
  explicit Curriculum(const CurriculumConfig &Config);

  int numStages() const { return static_cast<int>(Stages.size()); }
  int stage() const { return CurrentStage; }
  long long stepsInStage() const { return StepsInStage; }
  bool empty() const { return Stages.empty(); }
  const std::string &stageName(int S) const { return Stages[S].Name; }

  /// Programs stage \p S contributes (materialized at construction).
  const std::vector<NamedProgram> &stagePrograms(int S) const {
    return Stages[S].Materialized;
  }

  /// Adds every not-yet-activated stage up to the current one to \p Env.
  /// Call once on a fresh environment; after a cursor restore this replays
  /// all stages the checkpointed run had reached, in the same order.
  void activate(VectorizationEnv &Env);

  /// Observes one training batch (\p BatchSteps environment steps at
  /// reward EMA \p RewardEMA). Fires the advance trigger when due, adding
  /// the next stage's programs to \p Env. Returns true on advance.
  bool observe(double RewardEMA, long long BatchSteps,
               VectorizationEnv &Env);

  /// Checkpoint cursor: enough to resume the schedule bit-for-bit.
  struct Cursor {
    int Stage = 0;
    long long StepsInStage = 0;
  };

  Cursor cursor() const { return {CurrentStage, StepsInStage}; }

  /// Restores the cursor (call activate() afterwards to rebuild the env).
  void restore(const Cursor &C);

private:
  struct Stage {
    CurriculumStageConfig Config;
    std::vector<NamedProgram> Materialized;
    std::string Name;
  };

  std::vector<Stage> Stages;
  int CurrentStage = 0;
  int ActivatedThrough = -1; ///< Highest stage already added to the env.
  long long StepsInStage = 0;
};

} // namespace nv

#endif // NV_TRAIN_CURRICULUM_H
