//===- train/Evaluator.h - Held-out policy evaluation -----------*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Greedy-policy evaluation over held-out suites, producing the per-suite
/// reward/speedup tables of the paper's Figs 7-9. Deterministic (greedy
/// actions, no RNG), so the Trainer can run it mid-training for best-model
/// tracking without perturbing bit-reproducible resume.
///
//===----------------------------------------------------------------------===//

#ifndef NV_TRAIN_EVALUATOR_H
#define NV_TRAIN_EVALUATOR_H

#include "dataset/Suites.h"
#include "embedding/Code2Vec.h"
#include "predictors/Predictor.h"
#include "rl/Env.h"
#include "rl/Policy.h"
#include "support/Table.h"

#include <memory>
#include <string>
#include <vector>

namespace nv {

/// One evaluated program.
struct EvalProgram {
  std::string Name;
  double Reward = 0.0;  ///< (t_base - t_RL) / t_base, Eq. 2.
  double Speedup = 1.0; ///< t_base / t_RL.
};

/// One evaluated suite.
struct EvalSuite {
  std::string Name;
  std::vector<EvalProgram> Programs;
  double MeanReward = 0.0;
  double GeomeanSpeedup = 1.0;
  double MinSpeedup = 1.0;
};

/// A full evaluation pass.
struct EvalReport {
  std::vector<EvalSuite> Suites;
  double MeanReward = 0.0; ///< Over all programs of all suites.
  size_t NumPrograms = 0;

  /// One row per suite: programs, mean reward, geomean/min speedup.
  Table summaryTable() const;
  /// One row per program.
  Table programTable() const;
};

/// A multi-backend evaluation pass (the paper's Fig 7: every prediction
/// method on the held-out suites, normalized to the baseline cost model).
struct MethodReport {
  std::vector<PredictMethod> Methods; ///< Column order of the tables.

  struct SuiteRow {
    std::string Name;
    size_t Programs = 0;
    std::vector<double> GeomeanSpeedup; ///< Parallel to Methods.
  };
  std::vector<SuiteRow> Suites;

  /// Geomean speedup per method over all programs of all suites.
  std::vector<double> Overall;
  size_t NumPrograms = 0;

  /// The geomean speedup of \p Method (1.0 when it was not evaluated).
  double overallFor(PredictMethod Method) const;

  /// Fig 7-style table: one row per suite plus an "all programs" row, one
  /// column per method (geomean speedup over baseline).
  Table speedupTable() const;
};

/// Held-out evaluation harness. Suites are parsed and precompiled once at
/// registration; each evaluate() then costs one plan evaluation per
/// program.
class Evaluator {
public:
  Evaluator(SimCompiler Compiler, PathContextConfig Paths)
      : Compiler(std::move(Compiler)), Paths(Paths) {}

  /// Registers a suite; programs that fail to parse or contain no loops
  /// are skipped. Returns the number of programs accepted.
  size_t addSuite(const std::string &Name,
                  const std::vector<NamedProgram> &Programs);

  size_t numSuites() const { return Suites.size(); }

  /// Greedy evaluation of the (embedder, policy) pair on every suite.
  EvalReport evaluate(Code2Vec &Embedder, Policy &Pol) const;

  /// Evaluates every backend in \p Methods (resolved from \p Backends) on
  /// every suite, producing the paper's Fig 7-style per-method speedup
  /// table. Embedding-kind backends consume \p Embedder's code vectors;
  /// source-kind backends search each program. Unregistered or unready
  /// backends are skipped (their column reports 1.0).
  MethodReport evaluateMethods(Code2Vec &Embedder, PredictorSet &Backends,
                               const std::vector<PredictMethod> &Methods)
      const;

private:
  struct SuiteEnv {
    std::string Name;
    VectorizationEnv Env;

    SuiteEnv(std::string Name, SimCompiler Compiler,
             PathContextConfig Paths)
        : Name(std::move(Name)), Env(std::move(Compiler), Paths) {}
  };

  SimCompiler Compiler;
  PathContextConfig Paths;
  std::vector<std::unique_ptr<SuiteEnv>> Suites;
};

} // namespace nv

#endif // NV_TRAIN_EVALUATOR_H
