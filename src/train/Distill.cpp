//===- train/Distill.cpp - Oracle-labeled supervised distillation ----------===//

#include "train/Distill.h"

#include "predictors/Predictor.h"
#include "predictors/Search.h"
#include "support/Stats.h"

#include <algorithm>

using namespace nv;

DistillReport nv::distill(VectorizationEnv &Env, Code2Vec &Embedder,
                          const TargetInfo &TI,
                          NearestNeighborPredictor &NNS, DecisionTree &Tree,
                          const DistillConfig &Config) {
  // Refitting replaces both backends wholesale: stale entries would mix
  // embeddings from different weight sets (e.g. after load()).
  NNS.clear();
  Tree.clear();

  DistillReport Report;
  std::vector<std::vector<double>> X;
  std::vector<int> Y;
  std::vector<double> OracleSpeedups;
  const size_t Count = std::min(Config.MaxSamples, Env.size());
  for (size_t I = 0; I < Count; ++I) {
    const BruteForceResult Best =
        bruteForceSearch(Env, I, Config.BruteForcePasses);
    const EnvSample &Sample = Env.sample(I);
    Report.OracleEvaluations += Best.Evaluations;
    if (Best.Cycles > 0.0)
      OracleSpeedups.push_back(Sample.BaselineCycles / Best.Cycles);
    for (size_t S = 0; S < Sample.Sites.size(); ++S) {
      Matrix V = Embedder.encode(Sample.Contexts[S]);
      std::vector<double> Emb(V.raw().begin(), V.raw().end());
      NNS.add(Emb, Best.Plans[S]);
      X.push_back(std::move(Emb));
      Y.push_back(planToClass(Best.Plans[S], TI));
    }
    ++Report.Programs;
  }
  Report.Sites = X.size();
  if (!X.empty())
    Tree.fit(X, Y, numPlanClasses(TI));
  Report.TreeNodes = Tree.numNodes();
  if (!OracleSpeedups.empty())
    Report.GeomeanOracleSpeedup = geomean(OracleSpeedups);
  return Report;
}
