//===- train/RolloutWorkers.cpp - Parallel batch collection ----------------===//

#include "train/RolloutWorkers.h"

#include "rl/StateFeatures.h"

#include <atomic>
#include <cassert>

using namespace nv;

RolloutWorkers::RolloutWorkers(const VectorizationEnv &Env,
                               const RolloutModelSpec &Spec, int NumWorkers)
    : Env(Env), Pool(NumWorkers) {
  const int Count = Pool.size(); // ThreadPool clamps to >= 1.
  Replicas.reserve(Count);
  for (int I = 0; I < Count; ++I)
    Replicas.push_back(std::make_unique<Replica>(Spec));
}

namespace {

/// Copies parameter values \p Src -> \p Dst (shapes must match: both sides
/// were built from the same spec).
void copyParams(const std::vector<Param *> &Src,
                const std::vector<Param *> &Dst) {
  assert(Src.size() == Dst.size() && "replica architecture mismatch");
  for (size_t I = 0; I < Src.size(); ++I) {
    assert(Src[I]->Value.rows() == Dst[I]->Value.rows() &&
           Src[I]->Value.cols() == Dst[I]->Value.cols() &&
           "replica parameter shape mismatch");
    Dst[I]->Value = Src[I]->Value;
  }
}

} // namespace

void RolloutWorkers::runEpisode(Replica &R, RNG Rng, size_t ActiveSamples,
                                Transition *Slots) {
  // The first draw picks the program — it must match the draw made when
  // the episode plan was laid out (same split stream, same first call).
  const size_t SampleIdx = Rng.nextBounded(ActiveSamples);
  const EnvSample &Sample = Env.sample(SampleIdx);
  const TargetInfo &TI = Env.compiler().target();
  const size_t NumSites = Sample.Sites.size();

  // Replica-owned buffers + in-place kernels: steady-state episodes do not
  // touch the heap (the worker threads are the parallelism here, so the
  // kernels themselves run serial — no nested pool). Replicas never
  // backprop, so the backward caches are skipped too.
  R.Embedder.encodeBatchInto(Sample.Contexts, R.StatesBuf);
  R.DigestBuf.clear();
  for (size_t S = 0; S < NumSites; ++S)
    R.DigestBuf.push_back(Env.legality(SampleIdx, S).digest());
  const Matrix &States =
      widenStates(R.StatesBuf, R.Pol.inputDim(), R.DigestBuf.data(),
                  R.DigestBuf.size(), TI, R.WideStatesBuf);
  R.Pol.forward(States, nullptr, /*ForBackward=*/false);

  std::vector<VectorPlan> Plans(NumSites);
  std::vector<ActionRecord> Actions(NumSites);
  for (size_t S = 0; S < NumSites; ++S) {
    Actions[S] = R.Pol.sampleAction(static_cast<int>(S), Rng,
                                    &Env.actionMask(SampleIdx, S));
    Plans[S] = R.Pol.toPlan(Actions[S], TI);
  }
  const double Reward = Env.step(SampleIdx, Plans);

  for (size_t S = 0; S < NumSites; ++S) {
    Transition T;
    T.SampleIdx = SampleIdx;
    T.SiteIdx = S;
    T.Action = Actions[S];
    T.Reward = Reward;
    T.Mask = Env.actionMask(SampleIdx, S);
    Slots[S] = T;
  }
}

void RolloutWorkers::collect(Code2Vec &MasterEmbedder, Policy &MasterPolicy,
                             const RNG &BaseRng, size_t ActiveSamples,
                             int MinTransitions, RolloutBuffer &Out) {
  assert(ActiveSamples > 0 && ActiveSamples <= Env.size() &&
         "active sample range must be a non-empty prefix of the env");
  assert(MinTransitions > 0 && "batch must request at least one transition");

  // 1. Broadcast master weights to every replica (RLlib-style sync).
  for (auto &R : Replicas) {
    copyParams(MasterEmbedder.params(), R->Embedder.params());
    copyParams(MasterPolicy.params(), R->Pol.params());
  }

  // 2. Lay out the episode plan serially. Each episode's stream starts by
  // picking its program, so the plan (and every slot offset) is a pure
  // function of (BaseRng state, ActiveSamples) — workers never draw from
  // shared randomness.
  struct Episode {
    size_t SampleIdx;
    size_t Offset;
  };
  std::vector<Episode> Episodes;
  size_t Total = 0;
  for (uint64_t E = 0; Total < static_cast<size_t>(MinTransitions); ++E) {
    RNG EpisodeRng = BaseRng.split(E);
    const size_t SampleIdx = EpisodeRng.nextBounded(ActiveSamples);
    Episodes.push_back({SampleIdx, Total});
    Total += Env.sample(SampleIdx).Sites.size();
  }
  Out.Transitions.assign(Total, Transition());

  // 3. Workers drain the episode list through an atomic cursor (load
  // balance adapts to uneven program sizes) and write into pre-assigned
  // disjoint slot ranges (deterministic order, no locking).
  std::atomic<size_t> Cursor{0};
  for (auto &ReplicaPtr : Replicas) {
    Replica *R = ReplicaPtr.get();
    Pool.run([this, R, &Cursor, &Episodes, &BaseRng, ActiveSamples, &Out] {
      for (size_t E; (E = Cursor.fetch_add(1)) < Episodes.size();)
        runEpisode(*R, BaseRng.split(E), ActiveSamples,
                   Out.Transitions.data() + Episodes[E].Offset);
    });
  }
  Pool.wait();
}
