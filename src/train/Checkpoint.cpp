//===- train/Checkpoint.cpp - Resumable training state ---------------------===//

#include "train/Checkpoint.h"

#include "serve/ModelSerializer.h"
#include "support/Wire.h"

#include <cassert>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

using namespace nv;
using wire::appendBytes;
using wire::appendValue;
using wire::readValue;

namespace {

void setError(std::string *Error, const std::string &Message) {
  if (Error)
    *Error = Message;
}

bool readDoubles(const std::vector<char> &Buffer, size_t &Offset,
                 std::vector<double> &Out, size_t Count) {
  // Bounds before allocation: a corrupt count must fail the read, not
  // throw bad_alloc out of the loader's bool/Error contract.
  if (Count > (Buffer.size() - Offset) / sizeof(double))
    return false;
  Out.resize(Count);
  return wire::readBytes(Buffer.data(), Buffer.size(), Offset, Out.data(),
                         Count * sizeof(double));
}

} // namespace

SaveStatus TrainCheckpoint::trySave(const std::string &Path, PPORunner &Runner,
                                    const TrainProgress &Progress,
                                    std::string *Error) {
  std::vector<Param *> Params = Runner.trainableParams();
  std::vector<double> Moments = Runner.optimizer().exportMoments(Params);
  const RNG::Snapshot Rng = Runner.rng().snapshot();

  std::vector<char> Buffer;
  appendValue(Buffer, Magic);
  appendValue(Buffer, FormatVersion);
  appendValue(Buffer, static_cast<int64_t>(Progress.StepsDone));
  appendValue(Buffer, static_cast<int64_t>(Progress.BatchesDone));
  appendValue(Buffer, Progress.BestEvalReward);
  appendValue(Buffer, static_cast<uint8_t>(Progress.RewardEMASeen));
  appendValue(Buffer, Progress.RewardEMAValue);
  appendValue(Buffer, static_cast<int32_t>(Progress.Stage.Stage));
  appendValue(Buffer, static_cast<int64_t>(Progress.Stage.StepsInStage));
  for (uint64_t Word : Rng.State)
    appendValue(Buffer, Word);
  appendValue(Buffer, static_cast<uint8_t>(Rng.HasSpareGaussian));
  appendValue(Buffer, Rng.SpareGaussian);
  appendValue(Buffer, static_cast<int64_t>(Runner.optimizer().stepCount()));
  appendValue(Buffer, static_cast<uint32_t>(Params.size()));
  size_t MomentOffset = 0;
  for (Param *P : Params) {
    appendValue(Buffer, static_cast<uint32_t>(P->Value.rows()));
    appendValue(Buffer, static_cast<uint32_t>(P->Value.cols()));
    const size_t N = P->Value.size();
    appendBytes(Buffer, P->Value.raw().data(), N * sizeof(double));
    appendBytes(Buffer, Moments.data() + MomentOffset,
                2 * N * sizeof(double));
    MomentOffset += 2 * N;
  }
  appendValue(Buffer,
              ModelSerializer::checksum(Buffer.data(), Buffer.size()));

  std::string IoError;
  SaveStatus St = atomicWriteFile(Path, Buffer.data(), Buffer.size(), &IoError);
  if (St != SaveStatus::Ok)
    setError(Error, "checkpoint '" + Path + "': " + IoError);
  return St;
}

SaveStatus TrainCheckpoint::saveRotated(const std::string &Path,
                                        PPORunner &Runner,
                                        const TrainProgress &Progress, int Keep,
                                        std::string *Error) {
  if (Keep > 1) {
    // Shift generations oldest-first so every rename target is free:
    // drop Path.(Keep-1), then Path.k -> Path.(k+1), then Path -> Path.1.
    // Each step is a rename of a complete file, so a crash anywhere in
    // the shift still leaves only whole, loadable checkpoints behind.
    ::remove((Path + "." + std::to_string(Keep - 1)).c_str());
    for (int K = Keep - 2; K >= 1; --K)
      ::rename((Path + "." + std::to_string(K)).c_str(),
               (Path + "." + std::to_string(K + 1)).c_str());
    ::rename(Path.c_str(), (Path + ".1").c_str());
  }
  return trySave(Path, Runner, Progress, Error);
}

bool TrainCheckpoint::loadNewest(const std::string &Path, PPORunner &Runner,
                                 TrainProgress &Progress, int Keep,
                                 std::string *LoadedFrom, std::string *Error) {
  std::string FirstError;
  const int Generations = Keep > 1 ? Keep : 1;
  for (int K = 0; K < Generations; ++K) {
    const std::string Candidate =
        K == 0 ? Path : Path + "." + std::to_string(K);
    std::string LocalError;
    if (load(Candidate, Runner, Progress, &LocalError)) {
      if (LoadedFrom)
        *LoadedFrom = Candidate;
      return true;
    }
    if (K == 0)
      FirstError = LocalError;
  }
  setError(Error, FirstError);
  return false;
}

bool TrainCheckpoint::load(const std::string &Path, PPORunner &Runner,
                           TrainProgress &Progress, std::string *Error) {
  std::ifstream In(Path, std::ios::binary | std::ios::ate);
  if (!In) {
    setError(Error, "cannot open '" + Path + "'");
    return false;
  }
  const std::streamsize Size = In.tellg();
  In.seekg(0);
  std::vector<char> Buffer(static_cast<size_t>(Size));
  if (!In.read(Buffer.data(), Size)) {
    setError(Error, "short read from '" + Path + "'");
    return false;
  }

  if (Buffer.size() < 3 * sizeof(uint32_t) + sizeof(uint64_t)) {
    setError(Error, "file too small to be a checkpoint");
    return false;
  }
  const size_t PayloadSize = Buffer.size() - sizeof(uint64_t);
  uint64_t StoredSum = 0;
  std::memcpy(&StoredSum, Buffer.data() + PayloadSize, sizeof(uint64_t));
  if (StoredSum != ModelSerializer::checksum(Buffer.data(), PayloadSize)) {
    setError(Error, "checksum mismatch: checkpoint is corrupt or truncated");
    return false;
  }

  size_t Offset = 0;
  uint32_t FileMagic = 0, Version = 0;
  readValue(Buffer, Offset, FileMagic);
  readValue(Buffer, Offset, Version);
  if (FileMagic != Magic) {
    setError(Error, "bad magic: not a NeuroVectorizer checkpoint");
    return false;
  }
  if (Version != FormatVersion) {
    setError(Error,
             "unsupported checkpoint version " + std::to_string(Version));
    return false;
  }

  // Parse the whole file into temporaries; nothing touches the runner
  // until every field and shape has validated.
  TrainProgress NewProgress;
  RNG::Snapshot Rng;
  int64_t StepsDone = 0, BatchesDone = 0, StepsInStage = 0, AdamSteps = 0;
  int32_t Stage = 0;
  uint8_t EMASeen = 0, RngHasSpare = 0;
  uint32_t Count = 0;
  bool Ok = readValue(Buffer, Offset, StepsDone) &&
            readValue(Buffer, Offset, BatchesDone) &&
            readValue(Buffer, Offset, NewProgress.BestEvalReward) &&
            readValue(Buffer, Offset, EMASeen) &&
            readValue(Buffer, Offset, NewProgress.RewardEMAValue) &&
            readValue(Buffer, Offset, Stage) &&
            readValue(Buffer, Offset, StepsInStage);
  for (uint64_t &Word : Rng.State)
    Ok = Ok && readValue(Buffer, Offset, Word);
  Ok = Ok && readValue(Buffer, Offset, RngHasSpare) &&
       readValue(Buffer, Offset, Rng.SpareGaussian) &&
       readValue(Buffer, Offset, AdamSteps) &&
       readValue(Buffer, Offset, Count);
  if (!Ok) {
    setError(Error, "unexpected end of file in checkpoint header");
    return false;
  }

  std::vector<Param *> Params = Runner.trainableParams();
  if (Count != Params.size()) {
    setError(Error, "checkpoint has " + std::to_string(Count) +
                        " parameters, expected " +
                        std::to_string(Params.size()) +
                        " (architecture mismatch)");
    return false;
  }

  std::vector<std::vector<double>> Values(Params.size());
  std::vector<double> Moments;
  for (size_t I = 0; I < Params.size(); ++I) {
    uint32_t Rows = 0, Cols = 0;
    if (!readValue(Buffer, Offset, Rows) ||
        !readValue(Buffer, Offset, Cols)) {
      setError(Error, "unexpected end of file in parameter header");
      return false;
    }
    const Matrix &Dest = Params[I]->Value;
    if (Rows != static_cast<uint32_t>(Dest.rows()) ||
        Cols != static_cast<uint32_t>(Dest.cols())) {
      setError(Error, "parameter " + std::to_string(I) + " is " +
                          std::to_string(Rows) + "x" + std::to_string(Cols) +
                          ", expected " + std::to_string(Dest.rows()) + "x" +
                          std::to_string(Dest.cols()) +
                          " (architecture mismatch)");
      return false;
    }
    const size_t N = static_cast<size_t>(Rows) * Cols;
    std::vector<double> MV;
    if (!readDoubles(Buffer, Offset, Values[I], N) ||
        !readDoubles(Buffer, Offset, MV, 2 * N)) {
      setError(Error, "unexpected end of file in parameter data");
      return false;
    }
    Moments.insert(Moments.end(), MV.begin(), MV.end());
  }
  if (Offset != PayloadSize) {
    setError(Error, "trailing bytes after last parameter");
    return false;
  }

  // Commit.
  NewProgress.StepsDone = StepsDone;
  NewProgress.BatchesDone = BatchesDone;
  NewProgress.RewardEMASeen = EMASeen != 0;
  NewProgress.Stage.Stage = Stage;
  NewProgress.Stage.StepsInStage = StepsInStage;
  Rng.HasSpareGaussian = RngHasSpare != 0;
  for (size_t I = 0; I < Params.size(); ++I)
    Params[I]->Value.raw() = Values[I];
  const bool Imported =
      Runner.optimizer().importMoments(Params, Moments, AdamSteps);
  assert(Imported && "moment blob size was validated against the params");
  (void)Imported;
  Runner.rng().restore(Rng);
  Runner.rewardEMA().restore(NewProgress.RewardEMAValue,
                             NewProgress.RewardEMASeen);
  Progress = NewProgress;
  return true;
}
