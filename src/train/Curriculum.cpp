//===- train/Curriculum.cpp - Staged training distribution -----------------===//

#include "train/Curriculum.h"

#include "dataset/LoopGenerator.h"

#include <cassert>

using namespace nv;

CurriculumConfig CurriculumConfig::standard(int GeneratedPerStage) {
  CurriculumConfig Config;

  CurriculumStageConfig Warmup;
  Warmup.Name = "warmup";
  // Elementwise arithmetic, reductions, saxpy: single flat loops with
  // plenty of vector headroom — rewards are easy to find here.
  Warmup.Templates = {5, 6, 10};
  Warmup.GeneratedCount = GeneratedPerStage;
  Warmup.AdvanceReward = 0.05;
  Warmup.AdvanceSteps = 4000;
  Config.Stages.push_back(std::move(Warmup));

  CurriculumStageConfig Full;
  Full.Name = "full-synthetic";
  for (int T = 0; T < LoopGenerator::NumTemplates; ++T)
    Full.Templates.push_back(T);
  Full.GeneratedCount = 2 * GeneratedPerStage;
  Full.AdvanceReward = 0.15;
  Full.AdvanceSteps = 12000;
  Config.Stages.push_back(std::move(Full));

  CurriculumStageConfig Suites;
  Suites.Name = "suites";
  Suites.Programs = vectorizerTestSuite();
  Config.Stages.push_back(std::move(Suites));

  return Config;
}

Curriculum::Curriculum(const CurriculumConfig &Config) {
  Stages.reserve(Config.Stages.size());
  for (size_t S = 0; S < Config.Stages.size(); ++S) {
    Stage St;
    St.Config = Config.Stages[S];
    St.Name = St.Config.Name;
    if (!St.Config.Programs.empty()) {
      St.Materialized = St.Config.Programs;
    } else {
      assert(!St.Config.Templates.empty() && St.Config.GeneratedCount > 0 &&
             "generated stage needs templates and a count");
      // Per-stage generator seed: stage programs stay identical even if
      // other stages' configurations change.
      LoopGenerator Gen(Config.Seed ^
                        (0x9E3779B97F4A7C15ull * (S + 1)));
      St.Materialized.reserve(St.Config.GeneratedCount);
      for (int I = 0; I < St.Config.GeneratedCount; ++I) {
        const int Template =
            St.Config.Templates[I % St.Config.Templates.size()];
        GeneratedLoop L = Gen.generate(Template);
        St.Materialized.push_back({L.Name, L.Source});
      }
    }
    Stages.push_back(std::move(St));
  }
}

namespace {

bool envContains(const VectorizationEnv &Env, const std::string &Name) {
  for (size_t I = 0; I < Env.size(); ++I)
    if (Env.sample(I).Name == Name)
      return true;
  return false;
}

} // namespace

void Curriculum::activate(VectorizationEnv &Env) {
  for (int S = ActivatedThrough + 1; S <= CurrentStage && S < numStages();
       ++S) {
    for (const NamedProgram &P : Stages[S].Materialized) {
      // Idempotent by name: a second Trainer over the same environment
      // (continue-training or same-process resume) must not duplicate the
      // distribution. Stage program names are deterministic and unique.
      if (envContains(Env, P.Name))
        continue;
      const bool Added = Env.addProgram(P.Name, P.Source);
      assert(Added && "curriculum program failed to load");
      (void)Added;
    }
    ActivatedThrough = S;
  }
}

bool Curriculum::observe(double RewardEMA, long long BatchSteps,
                         VectorizationEnv &Env) {
  if (Stages.empty() || CurrentStage >= numStages() - 1) {
    StepsInStage += BatchSteps;
    return false;
  }
  StepsInStage += BatchSteps;
  const CurriculumStageConfig &Cfg = Stages[CurrentStage].Config;
  const bool RewardTrigger = RewardEMA >= Cfg.AdvanceReward;
  const bool StepTrigger =
      Cfg.AdvanceSteps >= 0 && StepsInStage >= Cfg.AdvanceSteps;
  if (!RewardTrigger && !StepTrigger)
    return false;
  ++CurrentStage;
  StepsInStage = 0;
  activate(Env);
  return true;
}

void Curriculum::restore(const Cursor &C) {
  assert(C.Stage >= 0 && (Stages.empty() || C.Stage < numStages()) &&
         "cursor stage out of range");
  CurrentStage = C.Stage;
  StepsInStage = C.StepsInStage;
  // ActivatedThrough is left alone: a fresh curriculum has -1, so the next
  // activate() replays stages 0..CurrentStage onto the (fresh) env.
}
