//===- train/Evaluator.cpp - Held-out policy evaluation --------------------===//

#include "train/Evaluator.h"

#include "support/Stats.h"

#include <algorithm>

using namespace nv;

Table EvalReport::summaryTable() const {
  Table T({"suite", "programs", "mean reward", "geomean speedup",
           "min speedup"});
  for (const EvalSuite &S : Suites)
    T.addRow({S.Name, std::to_string(S.Programs.size()),
              Table::fmt(S.MeanReward, 3), Table::fmt(S.GeomeanSpeedup, 3),
              Table::fmt(S.MinSpeedup, 3)});
  return T;
}

Table EvalReport::programTable() const {
  Table T({"suite", "program", "reward", "speedup"});
  for (const EvalSuite &S : Suites)
    for (const EvalProgram &P : S.Programs)
      T.addRow({S.Name, P.Name, Table::fmt(P.Reward, 3),
                Table::fmt(P.Speedup, 3)});
  return T;
}

size_t Evaluator::addSuite(const std::string &Name,
                           const std::vector<NamedProgram> &Programs) {
  auto Suite = std::make_unique<SuiteEnv>(Name, Compiler, Paths);
  size_t Accepted = 0;
  for (const NamedProgram &P : Programs)
    Accepted += Suite->Env.addProgram(P.Name, P.Source) ? 1 : 0;
  Suites.push_back(std::move(Suite));
  return Accepted;
}

EvalReport Evaluator::evaluate(Code2Vec &Embedder, Policy &Pol) const {
  EvalReport Report;
  double RewardTotal = 0.0;

  for (const auto &Suite : Suites) {
    EvalSuite Out;
    Out.Name = Suite->Name;
    std::vector<double> Speedups;

    for (size_t I = 0; I < Suite->Env.size(); ++I) {
      const EnvSample &Sample = Suite->Env.sample(I);
      Matrix States = Embedder.encodeBatch(Sample.Contexts);
      Pol.forward(States, nullptr, /*ForBackward=*/false);
      std::vector<VectorPlan> Plans;
      Plans.reserve(Sample.Sites.size());
      for (size_t S = 0; S < Sample.Sites.size(); ++S)
        Plans.push_back(Pol.toPlan(Pol.greedyAction(static_cast<int>(S)),
                                   Suite->Env.compiler().target()));

      // One simulation yields both metrics (Env::step would re-run the
      // identical plans just to derive the reward from the same cycles).
      bool TimedOut = false;
      const double Cycles = Suite->Env.compiler().runPrecompiled(
          Sample.Pre, Plans, TimedOut);
      const double TBase = Sample.BaselineCycles;
      EvalProgram P;
      P.Name = Sample.Name;
      P.Reward = TimedOut ? VectorizationEnv::TimeoutPenalty
                          : std::max((TBase - Cycles) / TBase,
                                     VectorizationEnv::TimeoutPenalty);
      P.Speedup = Cycles > 0.0 ? TBase / Cycles : 0.0;
      Out.MeanReward += P.Reward;
      RewardTotal += P.Reward;
      Speedups.push_back(P.Speedup);
      Out.Programs.push_back(std::move(P));
    }

    if (!Out.Programs.empty()) {
      Out.MeanReward /= static_cast<double>(Out.Programs.size());
      Out.GeomeanSpeedup = geomean(Speedups);
      Out.MinSpeedup = minOf(Speedups);
    }
    Report.NumPrograms += Out.Programs.size();
    Report.Suites.push_back(std::move(Out));
  }

  if (Report.NumPrograms > 0)
    Report.MeanReward = RewardTotal / static_cast<double>(Report.NumPrograms);
  return Report;
}
