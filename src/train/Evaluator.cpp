//===- train/Evaluator.cpp - Held-out policy evaluation --------------------===//

#include "train/Evaluator.h"

#include "lang/PrettyPrinter.h"
#include "rl/StateFeatures.h"
#include "support/Stats.h"

#include <algorithm>

using namespace nv;

double MethodReport::overallFor(PredictMethod Method) const {
  for (size_t I = 0; I < Methods.size(); ++I)
    if (Methods[I] == Method)
      return Overall[I];
  return 1.0;
}

Table MethodReport::speedupTable() const {
  std::vector<std::string> Header = {"suite", "programs"};
  for (PredictMethod M : Methods)
    Header.push_back(methodName(M));
  Table T(Header);
  for (const SuiteRow &S : Suites) {
    std::vector<std::string> Row = {S.Name, std::to_string(S.Programs)};
    for (double Speedup : S.GeomeanSpeedup)
      Row.push_back(Table::fmt(Speedup));
    T.addRow(Row);
  }
  if (Suites.size() > 1) {
    std::vector<std::string> Row = {"all programs",
                                    std::to_string(NumPrograms)};
    for (double Speedup : Overall)
      Row.push_back(Table::fmt(Speedup));
    T.addRow(Row);
  }
  return T;
}

Table EvalReport::summaryTable() const {
  Table T({"suite", "programs", "mean reward", "geomean speedup",
           "min speedup"});
  for (const EvalSuite &S : Suites)
    T.addRow({S.Name, std::to_string(S.Programs.size()),
              Table::fmt(S.MeanReward, 3), Table::fmt(S.GeomeanSpeedup, 3),
              Table::fmt(S.MinSpeedup, 3)});
  return T;
}

Table EvalReport::programTable() const {
  Table T({"suite", "program", "reward", "speedup"});
  for (const EvalSuite &S : Suites)
    for (const EvalProgram &P : S.Programs)
      T.addRow({S.Name, P.Name, Table::fmt(P.Reward, 3),
                Table::fmt(P.Speedup, 3)});
  return T;
}

size_t Evaluator::addSuite(const std::string &Name,
                           const std::vector<NamedProgram> &Programs) {
  auto Suite = std::make_unique<SuiteEnv>(Name, Compiler, Paths);
  size_t Accepted = 0;
  for (const NamedProgram &P : Programs)
    Accepted += Suite->Env.addProgram(P.Name, P.Source) ? 1 : 0;
  Suites.push_back(std::move(Suite));
  return Accepted;
}

EvalReport Evaluator::evaluate(Code2Vec &Embedder, Policy &Pol) const {
  EvalReport Report;
  double RewardTotal = 0.0;

  for (const auto &Suite : Suites) {
    EvalSuite Out;
    Out.Name = Suite->Name;
    std::vector<double> Speedups;

    for (size_t I = 0; I < Suite->Env.size(); ++I) {
      const EnvSample &Sample = Suite->Env.sample(I);
      Matrix States = Embedder.encodeBatch(Sample.Contexts);
      std::vector<LegalityDigest> Digests;
      for (size_t S = 0; S < Sample.Sites.size(); ++S)
        Digests.push_back(Suite->Env.legality(I, S).digest());
      Matrix WideBuf;
      const Matrix &In =
          widenStates(States, Pol.inputDim(), Digests.data(),
                      Digests.size(), Suite->Env.compiler().target(),
                      WideBuf);
      Pol.forward(In, nullptr, /*ForBackward=*/false);
      std::vector<VectorPlan> Plans;
      Plans.reserve(Sample.Sites.size());
      for (size_t S = 0; S < Sample.Sites.size(); ++S)
        Plans.push_back(Pol.toPlan(
            Pol.greedyAction(static_cast<int>(S),
                             &Suite->Env.actionMask(I, S)),
            Suite->Env.compiler().target()));

      // One simulation yields both metrics (Env::step would re-run the
      // identical plans just to derive the reward from the same cycles).
      bool TimedOut = false;
      const double Cycles = Suite->Env.compiler().runPrecompiled(
          Sample.Pre, Plans, TimedOut);
      const double TBase = Sample.BaselineCycles;
      EvalProgram P;
      P.Name = Sample.Name;
      P.Reward = TimedOut ? VectorizationEnv::TimeoutPenalty
                          : std::max((TBase - Cycles) / TBase,
                                     VectorizationEnv::TimeoutPenalty);
      P.Speedup = Cycles > 0.0 ? TBase / Cycles : 0.0;
      Out.MeanReward += P.Reward;
      RewardTotal += P.Reward;
      Speedups.push_back(P.Speedup);
      Out.Programs.push_back(std::move(P));
    }

    if (!Out.Programs.empty()) {
      Out.MeanReward /= static_cast<double>(Out.Programs.size());
      Out.GeomeanSpeedup = geomean(Speedups);
      Out.MinSpeedup = minOf(Speedups);
    }
    Report.NumPrograms += Out.Programs.size();
    Report.Suites.push_back(std::move(Out));
  }

  if (Report.NumPrograms > 0)
    Report.MeanReward = RewardTotal / static_cast<double>(Report.NumPrograms);
  return Report;
}

MethodReport Evaluator::evaluateMethods(
    Code2Vec &Embedder, PredictorSet &Backends,
    const std::vector<PredictMethod> &Methods) const {
  MethodReport Report;
  Report.Methods = Methods;
  // Per-method speedups across every program (for the overall geomean).
  std::vector<std::vector<double>> AllSpeedups(Methods.size());

  for (const auto &Suite : Suites) {
    MethodReport::SuiteRow Row;
    Row.Name = Suite->Name;
    Row.Programs = Suite->Env.size();
    std::vector<std::vector<double>> SuiteSpeedups(Methods.size());

    for (size_t I = 0; I < Suite->Env.size(); ++I) {
      const EnvSample &Sample = Suite->Env.sample(I);
      const double TBase = Sample.BaselineCycles;
      // The embedding is method-independent: encode once per sample (and
      // only when some embedding-kind method actually runs), not once per
      // method.
      Matrix States;

      for (size_t M = 0; M < Methods.size(); ++M) {
        Predictor *P = Backends.get(Methods[M]);
        if (!P || !P->ready())
          continue;
        std::vector<VectorPlan> Plans;
        if (P->kind() == Predictor::Kind::Embedding) {
          if (States.empty())
            States = Embedder.encodeBatch(Sample.Contexts);
          if (P->wantsCols() > States.cols()) {
            // A feature-widened policy gets the real analysis digests here
            // (the supervised backends stay on the bare code embedding).
            std::vector<LegalityDigest> Digests;
            for (size_t S = 0; S < Sample.Sites.size(); ++S)
              Digests.push_back(Suite->Env.legality(I, S).digest());
            Matrix WideBuf;
            Plans = P->plansForEmbeddings(
                widenStates(States, P->wantsCols(), Digests.data(),
                            Digests.size(),
                            Suite->Env.compiler().target(), WideBuf),
                nullptr);
          } else {
            Plans = P->plansForEmbeddings(States, nullptr);
          }
        } else {
          // Source-kind backends re-analyze the program themselves; the
          // sample's AST prints back to an equivalent source.
          Plans = P->plansForSource(printProgram(*Sample.Prog));
        }
        const double Cycles = Suite->Env.cyclesWith(I, Plans);
        const double Speedup = Cycles > 0.0 ? TBase / Cycles : 0.0;
        SuiteSpeedups[M].push_back(Speedup);
        AllSpeedups[M].push_back(Speedup);
      }
    }

    for (size_t M = 0; M < Methods.size(); ++M)
      Row.GeomeanSpeedup.push_back(
          SuiteSpeedups[M].empty() ? 1.0 : geomean(SuiteSpeedups[M]));
    Report.NumPrograms += Row.Programs;
    Report.Suites.push_back(std::move(Row));
  }

  for (size_t M = 0; M < Methods.size(); ++M)
    Report.Overall.push_back(
        AllSpeedups[M].empty() ? 1.0 : geomean(AllSpeedups[M]));
  return Report;
}
