//===- train/Trainer.cpp - Parallel rollout training driver ----------------===//

#include "train/Trainer.h"

#include "serve/ModelSerializer.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <chrono>
#include <iostream>
#include <stdexcept>

using namespace nv;

Trainer::Trainer(PPORunner &Runner, const RolloutModelSpec &Spec,
                 const TrainerConfig &Config)
    : Runner(Runner), Spec(Spec), Config(Config),
      Stages(Config.Curriculum),
      Eval(Runner.env().compiler(), Spec.Embedding.Paths) {}

size_t Trainer::addEvalSuite(const std::string &Name,
                             const std::vector<NamedProgram> &Programs) {
  return Eval.addSuite(Name, Programs);
}

EvalReport Trainer::runEval(TrainProgress &Progress, RunLog *Log) {
  EvalReport Report = Eval.evaluate(Runner.embedder(), Runner.policy());
  if (Report.NumPrograms == 0)
    return Report;
  if (Log && Log->enabled()) {
    JsonLine Event;
    Event.field("event", "eval")
        .field("step", static_cast<long long>(Progress.StepsDone))
        .field("mean_reward", Report.MeanReward)
        .field("programs", static_cast<uint64_t>(Report.NumPrograms))
        .field("improved", Report.MeanReward > Progress.BestEvalReward);
    JsonLine Suites;
    for (const EvalSuite &Suite : Report.Suites)
      Suites.field(Suite.Name, Suite.GeomeanSpeedup);
    Event.raw("geomean_speedup", Suites.str());
    Log->write(Event);
  }
  if (Report.MeanReward > Progress.BestEvalReward) {
    Progress.BestEvalReward = Report.MeanReward;
    if (!Config.BestModelPath.empty()) {
      std::string Error;
      // The artifact carries the env's extraction setting so a later
      // deployment embeds loops the way this model was trained.
      ModelMeta Meta;
      Meta.InnerContextOnly = Runner.env().innerContextOnly();
      SaveStatus St =
          ModelSerializer::trySave(Config.BestModelPath, Runner.embedder(),
                                   Runner.policy(), Meta, {}, &Error);
      if (St != SaveStatus::Ok) {
        // One immediate retry: losing the best-model artifact to a
        // transient I/O hiccup wastes an entire training run.
        St = ModelSerializer::trySave(Config.BestModelPath, Runner.embedder(),
                                      Runner.policy(), Meta, {}, &Error);
      }
      if (St != SaveStatus::Ok) {
        Telemetry::metrics().counter("train.save_failures").add();
        if (Log && Log->enabled())
          Log->write(JsonLine()
                         .field("event", "save_failure")
                         .field("kind", "best_model")
                         .field("status", saveStatusName(St))
                         .field("error", Error)
                         .field("step",
                                static_cast<long long>(Progress.StepsDone)));
        if (Config.Verbose)
          std::cout << "[train] best-model save failed ("
                    << saveStatusName(St) << "): " << Error << "\n";
      }
    }
  }
  return Report;
}

TrainReport Trainer::run() {
  TrainReport Report;
  TrainProgress Progress;

  // Per-iteration metrics timeline (JSONL) plus live gauges in the
  // process-wide registry (the same snapshot a /statsz would serve).
  RunLog Log(Config.RunLogPath);
  MetricsRegistry &Metrics = Telemetry::metrics();
  Gauge &RewardEMAGauge = Metrics.gauge("train.reward_ema");
  Gauge &LossGauge = Metrics.gauge("train.loss");
  Gauge &StageGauge = Metrics.gauge("train.stage");
  Gauge &RateGauge = Metrics.gauge("train.transitions_per_sec");
  ShardedHistogram &BatchUs = Metrics.histogram("train.batch_us");

  // Resume, if asked and possible. A missing or invalid checkpoint is not
  // fatal: the run simply starts from scratch.
  if (Config.Resume && !Config.CheckpointPath.empty()) {
    std::string Error, LoadedFrom;
    if (TrainCheckpoint::loadNewest(Config.CheckpointPath, Runner, Progress,
                                    Config.CheckpointKeep, &LoadedFrom,
                                    &Error)) {
      Stages.restore(Progress.Stage);
      Report.Resumed = true;
      if (Log.enabled() && LoadedFrom != Config.CheckpointPath)
        Log.write(JsonLine()
                      .field("event", "resume_fallback")
                      .field("path", LoadedFrom)
                      .field("step",
                             static_cast<long long>(Progress.StepsDone)));
      if (Config.Verbose)
        std::cout << "[train] resumed at step " << Progress.StepsDone
                  << " (stage " << Progress.Stage.Stage << ") from "
                  << LoadedFrom << "\n";
    } else if (Config.Verbose) {
      std::cout << "[train] no resume: " << Error << "\n";
    }
  }

  // Build (or, after a resume, replay) the training distribution. An
  // empty set would reach nextBounded(0) in episode planning — fail
  // loudly, release builds included.
  Stages.activate(Runner.env());
  if (Runner.env().size() == 0)
    throw std::invalid_argument(
        "Trainer: no training programs — add programs to the environment "
        "or configure a curriculum");

  RolloutWorkers Workers(Runner.env(), Spec, Config.NumWorkers);
  // The PPO update stays serial and deterministic, but its GEMMs fan out
  // across a worker-sized pool — safe because the blocked kernels are
  // bit-identical at any pool size (the 1-vs-N-worker reproducibility
  // tests now also cover differing math-pool sizes). The guard unsets the
  // pool before it dies: the runner outlives this call.
  struct MathPoolGuard {
    PPORunner &Runner;
    ThreadPool Pool;
    MathPoolGuard(PPORunner &Runner, int Threads)
        : Runner(Runner), Pool(Threads) {
      Runner.setMathPool(&Pool);
    }
    ~MathPoolGuard() { Runner.setMathPool(nullptr); }
  } MathPool(Runner, Config.NumWorkers);
  const PPOConfig &PPO = Runner.config();
  const auto Start = std::chrono::steady_clock::now();
  const long long StepsAtStart = Progress.StepsDone;

  auto hitRunCap = [&] {
    if (Config.MaxStepsThisRun > 0 &&
        Progress.StepsDone - StepsAtStart >= Config.MaxStepsThisRun)
      return true;
    if (Config.MaxSecondsThisRun > 0.0) {
      const std::chrono::duration<double> Elapsed =
          std::chrono::steady_clock::now() - Start;
      if (Elapsed.count() >= Config.MaxSecondsThisRun)
        return true;
    }
    return false;
  };

  // Rotated, crash-safe checkpoint write with one retry; failures are
  // counted in telemetry and the run log rather than lost to stdout.
  auto saveCheckpoint = [&](const char *Kind) {
    std::string Error;
    SaveStatus St = TrainCheckpoint::saveRotated(
        Config.CheckpointPath, Runner, Progress, Config.CheckpointKeep,
        &Error);
    // Retry without re-rotating: the generation shift already happened.
    if (St != SaveStatus::Ok)
      St = TrainCheckpoint::trySave(Config.CheckpointPath, Runner, Progress,
                                    &Error);
    if (St != SaveStatus::Ok) {
      Metrics.counter("train.save_failures").add();
      if (Log.enabled())
        Log.write(JsonLine()
                      .field("event", "save_failure")
                      .field("kind", Kind)
                      .field("status", saveStatusName(St))
                      .field("error", Error)
                      .field("step",
                             static_cast<long long>(Progress.StepsDone)));
      if (Config.Verbose)
        std::cout << "[train] " << Kind << " save failed ("
                  << saveStatusName(St) << "): " << Error << "\n";
    }
  };

  RolloutBuffer Buffer;
  while (Progress.StepsDone < Config.TotalSteps) {
    if (hitRunCap()) {
      Report.Interrupted = true;
      break;
    }
    const uint64_t BatchStart = nowMicros();

    // Parallel collection off the master RNG state, then one serial
    // advance so the next batch derives fresh episode streams.
    Workers.collect(Runner.embedder(), Runner.policy(), Runner.rng(),
                    Runner.env().size(), PPO.BatchSize, Buffer);
    Runner.rng().next();
    Progress.StepsDone += PPO.BatchSize;

    // Entropy annealing against the *total* budget (same schedule as the
    // serial PPORunner::train), so interrupted + resumed == uninterrupted.
    const double Fraction =
        std::min(1.0, static_cast<double>(Progress.StepsDone) /
                          std::max<long long>(1, Config.TotalSteps));
    const double EntropyCoef =
        PPO.EntropyCoef +
        (PPO.FinalEntropyCoef - PPO.EntropyCoef) * Fraction;
    const double Loss = Runner.trainOnBatch(Buffer.Transitions, EntropyCoef);
    ++Progress.BatchesDone;
    ++Report.BatchesRun;

    Report.Stats.RewardMean.add(static_cast<double>(Progress.StepsDone),
                                Runner.rewardEMA().value());
    Report.Stats.Loss.add(static_cast<double>(Progress.StepsDone), Loss);

    const uint64_t BatchTime = nowMicros() - BatchStart;
    const double Rate = BatchTime == 0 ? 0.0
                                       : static_cast<double>(PPO.BatchSize) *
                                             1e6 / BatchTime;
    BatchUs.record(BatchTime);
    RewardEMAGauge.set(Runner.rewardEMA().value());
    LossGauge.set(Loss);
    StageGauge.set(Stages.stage());
    RateGauge.set(Rate);
    if (Log.enabled())
      Log.write(JsonLine()
                    .field("event", "batch")
                    .field("step", static_cast<long long>(Progress.StepsDone))
                    .field("batch",
                           static_cast<long long>(Progress.BatchesDone))
                    .field("reward_ema", Runner.rewardEMA().value())
                    .field("loss", Loss)
                    .field("entropy_coef", EntropyCoef)
                    .field("stage", Stages.stage())
                    .field("transitions_per_sec", Rate));

    if (Stages.observe(Runner.rewardEMA().value(), PPO.BatchSize,
                       Runner.env())) {
      StageGauge.set(Stages.stage());
      if (Log.enabled())
        Log.write(
            JsonLine()
                .field("event", "curriculum")
                .field("step", static_cast<long long>(Progress.StepsDone))
                .field("stage", Stages.stage())
                .field("stage_name", Stages.stageName(Stages.stage()))
                .field("programs",
                       static_cast<uint64_t>(Runner.env().size())));
      if (Config.Verbose)
        std::cout << "[train] curriculum -> stage " << Stages.stage() << " ("
                  << Stages.stageName(Stages.stage()) << "), "
                  << Runner.env().size() << " programs\n";
    }

    if (Config.EvalEveryBatches > 0 &&
        Progress.BatchesDone % Config.EvalEveryBatches == 0)
      runEval(Progress, &Log);

    Progress.Stage = Stages.cursor();
    Progress.RewardEMAValue = Runner.rewardEMA().value();
    Progress.RewardEMASeen = Runner.rewardEMA().seen();
    if (!Config.CheckpointPath.empty() && Config.CheckpointEveryBatches > 0 &&
        Progress.BatchesDone % Config.CheckpointEveryBatches == 0)
      saveCheckpoint("checkpoint");

    if (Config.Verbose)
      std::cout << "[train] step " << Progress.StepsDone << "/"
                << Config.TotalSteps << "  reward EMA "
                << Runner.rewardEMA().value() << "  loss " << Loss << "\n";
  }

  // Final evaluation (and best-model update), then a final checkpoint so a
  // later Resume continues from the exact stopping point.
  Report.FinalEval = runEval(Progress, &Log);
  Progress.Stage = Stages.cursor();
  if (!Config.CheckpointPath.empty())
    saveCheckpoint("final_checkpoint");

  // Outside the loop: a resume of an already-completed run (zero batches)
  // must still report the restored EMA, not a default zero.
  Report.Stats.FinalRewardMean = Runner.rewardEMA().value();
  Report.Stats.Steps = Progress.StepsDone;
  Report.FinalStage = Stages.stage();
  Report.BestEvalReward = Progress.BestEvalReward;
  if (Log.enabled())
    Log.write(JsonLine()
                  .field("event", "final")
                  .field("step", static_cast<long long>(Progress.StepsDone))
                  .field("batches", static_cast<long long>(Report.BatchesRun))
                  .field("reward_ema", Report.Stats.FinalRewardMean)
                  .field("stage", Report.FinalStage)
                  .field("best_eval_reward", Report.BestEvalReward)
                  .field("interrupted", Report.Interrupted));
  return Report;
}
