//===- train/Trainer.h - Parallel rollout training driver -------*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The training-side orchestrator: fills PPO batches with parallel rollout
/// workers, runs the (serial, deterministic) PPO update on the master
/// model, advances the curriculum, checkpoints periodically, and tracks
/// the best model by held-out evaluation reward. The search/tuning driver
/// is separated from the evaluator the same way bistra separates its
/// tuner from its program evaluator.
///
/// Reproducibility contract: for a fixed seed and configuration, the final
/// model is bit-identical regardless of worker count, and a run resumed
/// from a checkpoint is bit-identical to the uninterrupted run (asserted
/// in tests/TrainTest.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef NV_TRAIN_TRAINER_H
#define NV_TRAIN_TRAINER_H

#include "rl/PPO.h"
#include "train/Checkpoint.h"
#include "train/Curriculum.h"
#include "train/Evaluator.h"
#include "train/RolloutWorkers.h"

#include <string>

namespace nv {

class RunLog;

/// Trainer configuration.
struct TrainerConfig {
  int NumWorkers = 4;
  long long TotalSteps = 20000;

  /// Staged training distribution. Empty stages = no curriculum: train on
  /// whatever the environment already contains.
  CurriculumConfig Curriculum;

  /// Checkpoint file; empty disables checkpointing. A checkpoint is also
  /// written when the run ends (completed or interrupted), so a later
  /// Resume continues from the exact stopping point.
  std::string CheckpointPath;
  int CheckpointEveryBatches = 5;
  /// Checkpoint generations kept on disk: CheckpointPath plus Keep-1
  /// rotated ancestors (CheckpointPath.1 = previous, .2 = older, ...).
  /// <= 1 keeps only CheckpointPath (the historical behavior). With
  /// rotation on, Resume falls back to the newest *loadable* generation,
  /// so a checkpoint corrupted on disk costs CheckpointEveryBatches of
  /// progress instead of the whole run.
  int CheckpointKeep = 1;
  /// Resume from CheckpointPath when it holds a valid checkpoint.
  bool Resume = false;

  /// Best-model artifact (serve/ModelSerializer format), written whenever
  /// a held-out evaluation improves on the best reward so far. Empty
  /// disables it.
  std::string BestModelPath;
  /// Evaluate every N batches; 0 = only at the end of the run.
  int EvalEveryBatches = 0;

  /// Caps for *this invocation* (0 = none): the run stops early but
  /// anneals entropy against TotalSteps, so a capped run plus a resumed
  /// run equals one uninterrupted run. MaxSeconds is for smoke tests; a
  /// wall-clock cap stops at a nondeterministic batch boundary.
  long long MaxStepsThisRun = 0;
  double MaxSecondsThisRun = 0.0;

  /// JSONL run log (one event object per line): a "batch" event per PPO
  /// update (step, reward EMA, loss, entropy coefficient, curriculum
  /// stage, transitions/s), a "curriculum" event per stage advance, an
  /// "eval" event per held-out evaluation (per-suite geomean speedups),
  /// and one "final" event. Appends, so a resumed run extends the same
  /// timeline. Empty disables it.
  std::string RunLogPath;

  bool Verbose = false; ///< Per-batch progress lines on stdout.
};

/// What a run() did.
struct TrainReport {
  TrainStats Stats; ///< Reward/loss curves over this invocation's batches.
  EvalReport FinalEval;
  long long BatchesRun = 0;
  int FinalStage = 0;
  bool Resumed = false;
  bool Interrupted = false; ///< Hit a this-run cap before TotalSteps.
  double BestEvalReward = -1e300;
};

/// Orchestrates RolloutWorkers + PPO updates + Curriculum + Evaluator +
/// checkpoints over an existing PPORunner.
class Trainer {
public:
  /// \p Spec must describe the runner's model architecture (the facade's
  /// NeuroVectorizer::rolloutSpec() builds it from its own config).
  Trainer(PPORunner &Runner, const RolloutModelSpec &Spec,
          const TrainerConfig &Config);

  /// Registers a held-out evaluation suite; returns programs accepted.
  size_t addEvalSuite(const std::string &Name,
                      const std::vector<NamedProgram> &Programs);

  /// Runs (or resumes) training until TotalSteps or a this-run cap.
  TrainReport run();

  const Curriculum &curriculum() const { return Stages; }

private:
  EvalReport runEval(TrainProgress &Progress, RunLog *Log);

  PPORunner &Runner;
  RolloutModelSpec Spec;
  TrainerConfig Config;
  Curriculum Stages;
  Evaluator Eval;
};

} // namespace nv

#endif // NV_TRAIN_TRAINER_H
