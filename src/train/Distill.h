//===- train/Distill.h - Oracle-labeled supervised distillation -*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The supervised-distillation pipeline of §3.5: after the RL agent has
/// trained the embedding end-to-end, sweep (a portion of) the dataset with
/// the brute-force oracle to label every vectorization site with its
/// optimal (VF, IF), embed each site with the trained Code2Vec, and fit
/// the methods that cannot train end-to-end — the nearest-neighbor index
/// and the CART decision tree. The paper reports both land within a few
/// percent of the RL agent (NNS 2.65x vs RL 2.67x), evidence the learned
/// embedding clusters similar loops.
///
/// Deterministic: brute-force labeling, embedding, and both fits are
/// RNG-free, so distilling twice from the same checkpoint yields
/// byte-identical backends (asserted in tests).
///
//===----------------------------------------------------------------------===//

#ifndef NV_TRAIN_DISTILL_H
#define NV_TRAIN_DISTILL_H

#include "embedding/Code2Vec.h"
#include "predictors/DecisionTree.h"
#include "predictors/NearestNeighbor.h"
#include "rl/Env.h"
#include "target/TargetInfo.h"

#include <cstddef>

namespace nv {

/// Distillation-pipeline knobs.
struct DistillConfig {
  /// Upper bound on environment programs swept by the oracle labeler (the
  /// paper runs the expensive search on a portion of the dataset, §2.3).
  size_t MaxSamples = 512;
  /// Coordinate-descent passes of the per-program brute-force sweep.
  int BruteForcePasses = 2;
};

/// What a distillation run did.
struct DistillReport {
  size_t Programs = 0;           ///< Environment programs labeled.
  size_t Sites = 0;              ///< Vectorization sites (= fitted rows).
  long long OracleEvaluations = 0; ///< Compile+run evaluations spent.
  double GeomeanOracleSpeedup = 1.0; ///< Oracle vs baseline, labeled set.
  size_t TreeNodes = 0;          ///< Fitted tree size (introspection).
};

/// Labels up to \p Config.MaxSamples programs of \p Env with the
/// brute-force oracle, embeds every site with \p Embedder, and fits
/// \p NNS and \p Tree on the result (both are cleared first: stale
/// examples would mix embeddings from different weight sets). \p Env's
/// contexts must already match the checkpoint's extraction flavour —
/// NeuroVectorizer::load() guarantees that before calling this.
DistillReport distill(VectorizationEnv &Env, Code2Vec &Embedder,
                      const TargetInfo &TI, NearestNeighborPredictor &NNS,
                      DecisionTree &Tree,
                      const DistillConfig &Config = DistillConfig());

} // namespace nv

#endif // NV_TRAIN_DISTILL_H
