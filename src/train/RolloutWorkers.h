//===- train/RolloutWorkers.h - Parallel batch collection -------*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The training-side counterpart of serve/: N worker threads fill the PPO
/// batch in parallel, the way the paper scales rollout collection across
/// RLlib workers. Each worker owns a *replica* of the policy and embedding
/// networks (forward passes cache activations, so the master model cannot
/// be shared across threads); replica weights are synced from the master
/// before every collection.
///
/// Determinism contract: collect() output depends only on the master
/// weights, the base RNG state, and the active-sample count — never on the
/// worker count or thread scheduling. Three mechanisms guarantee this:
///
///  1. episode RNG streams derive from RNG::split(episodeIndex) off the
///     fixed base state, not from a shared sequential generator;
///  2. the episode plan (which program each episode rolls out, and where
///     its transitions land in the buffer) is computed serially up front;
///  3. workers claim episode indices through an atomic cursor but write
///     only into their episode's pre-assigned slots.
///
/// So 1-worker and 16-worker training produce bit-identical batches, and
/// therefore bit-identical final models (asserted in tests/TrainTest.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef NV_TRAIN_ROLLOUTWORKERS_H
#define NV_TRAIN_ROLLOUTWORKERS_H

#include "embedding/Code2Vec.h"
#include "rl/Env.h"
#include "rl/Policy.h"
#include "support/ThreadPool.h"
#include "train/RolloutBuffer.h"

#include <memory>
#include <vector>

namespace nv {

/// Everything needed to construct a worker-local replica of the model pair
/// (architecture only; weights are synced from the master at collect time).
struct RolloutModelSpec {
  Code2VecConfig Embedding;
  ActionSpaceKind ActionSpace = ActionSpaceKind::Discrete;
  std::vector<int> Hidden = {64, 64};
  int NumVF = 0;
  int NumIF = 0;
  /// Replica policies take codeDim + NumLegalityFeatures wide states
  /// (must match the master policy's inputDim()).
  bool LegalityFeatures = false;
};

/// Fixed pool of rollout workers over a shared (read-only) environment.
class RolloutWorkers {
public:
  /// \p NumWorkers is clamped to >= 1. The environment must outlive the
  /// workers; it may grow (curriculum stages appending programs) between
  /// collect() calls, but not during one.
  RolloutWorkers(const VectorizationEnv &Env, const RolloutModelSpec &Spec,
                 int NumWorkers);

  int numWorkers() const { return static_cast<int>(Replicas.size()); }

  /// Syncs replica weights from the master pair, then fills \p Out with at
  /// least \p MinTransitions transitions drawn from the first
  /// \p ActiveSamples environment programs. Episode e rolls out with the
  /// stream BaseRng.split(e); the caller advances its master RNG between
  /// batches so successive batches draw fresh streams.
  void collect(Code2Vec &MasterEmbedder, Policy &MasterPolicy,
               const RNG &BaseRng, size_t ActiveSamples, int MinTransitions,
               RolloutBuffer &Out);

private:
  /// Worker-local model pair. InitRng is declared first so it is alive for
  /// the member initializers; the random init it produces is immediately
  /// overwritten by the first weight sync.
  struct Replica {
    RNG InitRng;
    Code2Vec Embedder;
    Policy Pol;
    Matrix StatesBuf; ///< Reused encode output: episodes allocate nothing.
    Matrix WideStatesBuf; ///< Feature-widened states (legality features).
    std::vector<LegalityDigest> DigestBuf;

    explicit Replica(const RolloutModelSpec &Spec)
        : InitRng(1), Embedder(Spec.Embedding, InitRng),
          Pol(Spec.ActionSpace,
              Embedder.codeDim() +
                  (Spec.LegalityFeatures ? NumLegalityFeatures : 0),
              Spec.Hidden, Spec.NumVF, Spec.NumIF, InitRng) {}
  };

  /// Rolls out one episode: first draw picks the program, then one action
  /// per site, one env step, and the transitions land in \p Slots.
  void runEpisode(Replica &R, RNG Rng, size_t ActiveSamples,
                  Transition *Slots);

  const VectorizationEnv &Env;
  std::vector<std::unique_ptr<Replica>> Replicas;
  ThreadPool Pool;
};

} // namespace nv

#endif // NV_TRAIN_ROLLOUTWORKERS_H
