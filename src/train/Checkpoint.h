//===- train/Checkpoint.h - Resumable training state ------------*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checkpoint persistence for the Trainer. A model file (serve/
/// ModelSerializer) freezes weights for deployment; a checkpoint addition-
/// ally captures everything a resumed run needs to be *bit-identical* to
/// the uninterrupted one: optimizer moments and step count, the master RNG
/// state (including a buffered Box-Muller spare), the reward EMA, the
/// curriculum cursor, and the step/batch counters.
///
/// Format (little-endian, doubles raw — same conventions as the model
/// file):
///
///   u32 magic 'NVCK'   u32 version
///   i64 stepsDone  i64 batchesDone  f64 bestEvalReward
///   u8 emaSeen  f64 emaValue
///   i32 curriculumStage  i64 stepsInStage
///   4 x u64 rngState  u8 rngHasSpare  f64 rngSpare
///   i64 adamStepCount
///   u32 paramCount
///   per param: u32 rows, u32 cols, rows*cols f64 values,
///              rows*cols f64 adamM, rows*cols f64 adamV
///   u64 FNV-1a checksum over everything before it
///
/// Loading is all-or-nothing: magic, version, checksum, and every shape
/// are validated against the destination runner before anything is
/// written, so a truncated, corrupted, or architecture-mismatched file
/// leaves the live training state untouched.
///
//===----------------------------------------------------------------------===//

#ifndef NV_TRAIN_CHECKPOINT_H
#define NV_TRAIN_CHECKPOINT_H

#include "rl/PPO.h"
#include "support/AtomicFile.h"
#include "train/Curriculum.h"

#include <cstdint>
#include <string>

namespace nv {

/// Trainer progress riding along with the weights.
struct TrainProgress {
  long long StepsDone = 0;
  long long BatchesDone = 0;
  double BestEvalReward = -1e300;
  double RewardEMAValue = 0.0;
  bool RewardEMASeen = false;
  Curriculum::Cursor Stage;
};

/// Save/load of the full training state of a PPORunner.
class TrainCheckpoint {
public:
  static constexpr uint32_t Magic = 0x4E56434B; ///< 'NVCK'.
  static constexpr uint32_t FormatVersion = 1;

  /// Writes the runner's weights, optimizer state, RNG, reward EMA, and
  /// \p Progress to \p Path. Crash-safe: temp + fsync + rename
  /// (support/AtomicFile.h) — a crash mid-save leaves the previous
  /// checkpoint intact. Returns a machine-readable status.
  static SaveStatus trySave(const std::string &Path, PPORunner &Runner,
                            const TrainProgress &Progress,
                            std::string *Error = nullptr);

  /// Bool wrapper over trySave (historic signature).
  static bool save(const std::string &Path, PPORunner &Runner,
                   const TrainProgress &Progress,
                   std::string *Error = nullptr) {
    return trySave(Path, Runner, Progress, Error) == SaveStatus::Ok;
  }

  /// Like trySave, but first rotates the existing generations: Path is
  /// renamed to Path.1, the old Path.1 to Path.2, ... keeping at most
  /// \p Keep files total (Path plus Keep-1 numbered ancestors). Keep <= 1
  /// means no rotation — identical to trySave. Rotation uses rename(2),
  /// so every generation stays individually loadable at all times.
  static SaveStatus saveRotated(const std::string &Path, PPORunner &Runner,
                                const TrainProgress &Progress, int Keep,
                                std::string *Error = nullptr);

  /// Restores \p Path into \p Runner and \p Progress. All-or-nothing.
  static bool load(const std::string &Path, PPORunner &Runner,
                   TrainProgress &Progress, std::string *Error = nullptr);

  /// Resume entry point for rotated checkpoints: tries \p Path, then
  /// Path.1, Path.2, ... up to \p Keep - 1, returning the first that
  /// loads cleanly (a corrupt or torn newest generation falls back to its
  /// predecessor instead of failing the resume). \p LoadedFrom (when
  /// non-null) receives the path that won. Returns false only when no
  /// generation loads; \p Error then describes the *newest* failure.
  static bool loadNewest(const std::string &Path, PPORunner &Runner,
                         TrainProgress &Progress, int Keep,
                         std::string *LoadedFrom = nullptr,
                         std::string *Error = nullptr);
};

} // namespace nv

#endif // NV_TRAIN_CHECKPOINT_H
