//===- train/Checkpoint.h - Resumable training state ------------*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checkpoint persistence for the Trainer. A model file (serve/
/// ModelSerializer) freezes weights for deployment; a checkpoint addition-
/// ally captures everything a resumed run needs to be *bit-identical* to
/// the uninterrupted one: optimizer moments and step count, the master RNG
/// state (including a buffered Box-Muller spare), the reward EMA, the
/// curriculum cursor, and the step/batch counters.
///
/// Format (little-endian, doubles raw — same conventions as the model
/// file):
///
///   u32 magic 'NVCK'   u32 version
///   i64 stepsDone  i64 batchesDone  f64 bestEvalReward
///   u8 emaSeen  f64 emaValue
///   i32 curriculumStage  i64 stepsInStage
///   4 x u64 rngState  u8 rngHasSpare  f64 rngSpare
///   i64 adamStepCount
///   u32 paramCount
///   per param: u32 rows, u32 cols, rows*cols f64 values,
///              rows*cols f64 adamM, rows*cols f64 adamV
///   u64 FNV-1a checksum over everything before it
///
/// Loading is all-or-nothing: magic, version, checksum, and every shape
/// are validated against the destination runner before anything is
/// written, so a truncated, corrupted, or architecture-mismatched file
/// leaves the live training state untouched.
///
//===----------------------------------------------------------------------===//

#ifndef NV_TRAIN_CHECKPOINT_H
#define NV_TRAIN_CHECKPOINT_H

#include "rl/PPO.h"
#include "train/Curriculum.h"

#include <cstdint>
#include <string>

namespace nv {

/// Trainer progress riding along with the weights.
struct TrainProgress {
  long long StepsDone = 0;
  long long BatchesDone = 0;
  double BestEvalReward = -1e300;
  double RewardEMAValue = 0.0;
  bool RewardEMASeen = false;
  Curriculum::Cursor Stage;
};

/// Save/load of the full training state of a PPORunner.
class TrainCheckpoint {
public:
  static constexpr uint32_t Magic = 0x4E56434B; ///< 'NVCK'.
  static constexpr uint32_t FormatVersion = 1;

  /// Writes the runner's weights, optimizer state, RNG, reward EMA, and
  /// \p Progress to \p Path. Returns false (and sets \p Error) on I/O
  /// failure.
  static bool save(const std::string &Path, PPORunner &Runner,
                   const TrainProgress &Progress,
                   std::string *Error = nullptr);

  /// Restores \p Path into \p Runner and \p Progress. All-or-nothing.
  static bool load(const std::string &Path, PPORunner &Runner,
                   TrainProgress &Progress, std::string *Error = nullptr);
};

} // namespace nv

#endif // NV_TRAIN_CHECKPOINT_H
