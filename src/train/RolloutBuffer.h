//===- train/RolloutBuffer.h - Shared rollout storage -----------*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared buffer that parallel rollout workers fill with (state,
/// action, logp, value, reward) tuples. Slots are laid out per episode
/// before collection starts (the number of sites per program is known in
/// advance), so workers write disjoint ranges without locking and the
/// finished buffer is in deterministic episode order regardless of how the
/// episodes were scheduled across threads.
///
//===----------------------------------------------------------------------===//

#ifndef NV_TRAIN_ROLLOUTBUFFER_H
#define NV_TRAIN_ROLLOUTBUFFER_H

#include "rl/PPO.h"

#include <vector>

namespace nv {

/// A batch of transitions in episode order. Reward aggregation lives in
/// PPORunner::trainOnBatch, the single consumer.
struct RolloutBuffer {
  std::vector<Transition> Transitions;

  size_t size() const { return Transitions.size(); }
  bool empty() const { return Transitions.empty(); }
  void clear() { Transitions.clear(); }
};

} // namespace nv

#endif // NV_TRAIN_ROLLOUTBUFFER_H
