//===- nn/VecMath.h - Vectorized element-wise math --------------*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SIMD element-wise transcendentals for the kernel epilogues. tanh over
/// the context/trunk activations is the single largest non-GEMM cost of a
/// batched forward (~60% pre-vectorization on one core), so this one
/// function gets its own translation unit built with the flags that let
/// the compiler emit libmvec vector calls (see CMakeLists.txt). On
/// toolchains without vector math it degrades to the scalar libm loop —
/// same results, same API.
///
/// Determinism: the vector/scalar split inside vecTanh depends only on
/// \p N, never on threading, so the blocked kernels stay bit-identical
/// across pool sizes.
///
//===----------------------------------------------------------------------===//

#ifndef NV_NN_VECMATH_H
#define NV_NN_VECMATH_H

#include <cstddef>

namespace nv {

/// X[i] = tanh(X[i]) for i in [0, N).
void vecTanh(double *X, size_t N);

} // namespace nv

#endif // NV_NN_VECMATH_H
