//===- nn/VecMath.cpp - Vectorized element-wise math ------------------------===//
//
// Built with vector-math flags (see CMakeLists.txt: NV_NATIVE_KERNELS);
// keep this TU free of reduction loops — the fast-math flags that unlock
// libmvec must never touch code whose summation order carries a
// determinism contract.
//
//===----------------------------------------------------------------------===//

#include "nn/VecMath.h"

#include <cmath>

void nv::vecTanh(double *X, size_t N) {
#pragma omp simd
  for (size_t I = 0; I < N; ++I)
    X[I] = std::tanh(X[I]);
}
