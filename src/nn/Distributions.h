//===- nn/Distributions.h - Policy output distributions ---------*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Categorical (softmax) and diagonal-Gaussian distributions for the PPO
/// policies. The paper's Fig 6 compares a discrete action space (two
/// categorical heads indexing the VF/IF arrays) against one- and
/// two-dimensional continuous (Gaussian) encodings; these helpers back all
/// three.
///
//===----------------------------------------------------------------------===//

#ifndef NV_NN_DISTRIBUTIONS_H
#define NV_NN_DISTRIBUTIONS_H

#include "support/RNG.h"

#include <vector>

namespace nv {

/// Numerically stable softmax of \p Logits.
std::vector<double> softmax(const std::vector<double> &Logits);

/// log(softmax(Logits)[Index]) computed stably.
double logSoftmaxAt(const std::vector<double> &Logits, int Index);

/// Entropy of softmax(Logits).
double softmaxEntropy(const std::vector<double> &Logits);

/// Samples an index from softmax(Logits).
int sampleCategorical(const std::vector<double> &Logits, RNG &Rng);

/// Index of the largest logit (greedy action at inference time).
int argmax(const std::vector<double> &Logits);

/// d log(softmax[Index]) / d logits; the gradient of a categorical log
/// probability with respect to its logits: onehot(Index) - softmax.
std::vector<double> categoricalLogProbGrad(const std::vector<double> &Logits,
                                           int Index);

/// Diagonal Gaussian helpers (parameterized by mean and log stddev).
double gaussianLogProb(double X, double Mean, double LogStd);
double gaussianEntropy(double LogStd);
double sampleGaussian(double Mean, double LogStd, RNG &Rng);
/// d logprob / d mean and d logprob / d logstd.
void gaussianLogProbGrad(double X, double Mean, double LogStd, double &dMean,
                         double &dLogStd);

} // namespace nv

#endif // NV_NN_DISTRIBUTIONS_H
