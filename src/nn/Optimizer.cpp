//===- nn/Optimizer.cpp - SGD and Adam optimizers --------------------------===//

#include "nn/Optimizer.h"

#include <cmath>

using namespace nv;

double nv::clipGradNorm(const std::vector<Param *> &Params, double MaxNorm) {
  double Total = 0.0;
  for (const Param *P : Params)
    Total += P->Grad.squaredNorm();
  const double Norm = std::sqrt(Total);
  if (Norm > MaxNorm && Norm > 0.0) {
    const double Scale = MaxNorm / Norm;
    for (Param *P : Params)
      P->Grad *= Scale;
  }
  return Norm;
}

void SGD::step(const std::vector<Param *> &Params) {
  for (Param *P : Params) {
    for (size_t I = 0; I < P->Value.size(); ++I)
      P->Value.raw()[I] -= LearningRate * P->Grad.raw()[I];
  }
}

Adam::Moments &Adam::momentsFor(const Param *P) {
  for (auto &[Key, M] : State)
    if (Key == P)
      return M;
  State.emplace_back(P, Moments{std::vector<double>(P->Value.size(), 0.0),
                                std::vector<double>(P->Value.size(), 0.0)});
  return State.back().second;
}

std::vector<double> Adam::exportMoments(const std::vector<Param *> &Params) {
  std::vector<double> Blob;
  for (const Param *P : Params) {
    const Moments &Mom = momentsFor(P);
    Blob.insert(Blob.end(), Mom.M.begin(), Mom.M.end());
    Blob.insert(Blob.end(), Mom.V.begin(), Mom.V.end());
  }
  return Blob;
}

bool Adam::importMoments(const std::vector<Param *> &Params,
                         const std::vector<double> &Blob, long long Steps) {
  size_t Total = 0;
  for (const Param *P : Params)
    Total += 2 * P->Value.size();
  if (Blob.size() != Total)
    return false;
  size_t Offset = 0;
  for (const Param *P : Params) {
    Moments &Mom = momentsFor(P);
    const size_t N = P->Value.size();
    Mom.M.assign(Blob.begin() + Offset, Blob.begin() + Offset + N);
    Mom.V.assign(Blob.begin() + Offset + N, Blob.begin() + Offset + 2 * N);
    Offset += 2 * N;
  }
  StepCount = Steps;
  return true;
}

void Adam::step(const std::vector<Param *> &Params) {
  ++StepCount;
  const double BiasCorrection1 =
      1.0 - std::pow(Beta1, static_cast<double>(StepCount));
  const double BiasCorrection2 =
      1.0 - std::pow(Beta2, static_cast<double>(StepCount));
  for (Param *P : Params) {
    Moments &Mom = momentsFor(P);
    for (size_t I = 0; I < P->Value.size(); ++I) {
      const double G = P->Grad.raw()[I];
      Mom.M[I] = Beta1 * Mom.M[I] + (1.0 - Beta1) * G;
      Mom.V[I] = Beta2 * Mom.V[I] + (1.0 - Beta2) * G * G;
      const double MHat = Mom.M[I] / BiasCorrection1;
      const double VHat = Mom.V[I] / BiasCorrection2;
      P->Value.raw()[I] -=
          LearningRate * MHat / (std::sqrt(VHat) + Epsilon);
    }
  }
}
