//===- nn/KernelsInt8.h - Int8 quantized inference kernels ------*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Int8 weight quantization for the serve-path forward pass. Weights get
/// per-output-row symmetric scales (maxabs / 127) at quantize time;
/// activations are quantized per input row on the fly with the same
/// symmetric scheme. The GEMM accumulates in int32 — exactly, for the
/// K ranges this repo uses — and dequantizes into the regular fp64
/// bias + activation epilogue, so a quantized layer slots into the same
/// forwardInto() shape as the fp32 one.
///
/// Because integer accumulation has no rounding, a quantized forward is
/// bit-identical across ISA tiers and pool sizes (stronger than the fp32
/// gemmTBInto story). What quantization changes is *accuracy* vs fp32,
/// not determinism; docs/quantization.md derives the error bound and the
/// plan-level-equivalence guarantee the serve path relies on.
///
/// Train-path code never sees these types: quantization is applied by
/// model owners (ModelHost, NeuroVectorizer::service) to inference-only
/// model instances, and layers fall back to fp32 whenever a backward pass
/// could follow.
///
//===----------------------------------------------------------------------===//

#ifndef NV_NN_KERNELSINT8_H
#define NV_NN_KERNELSINT8_H

#include "nn/Kernels.h"
#include "nn/Matrix.h"

#include <cstdint>
#include <vector>

namespace nv {

class ThreadPool;

/// Per-call scratch for activation quantization (one quantized row per
/// input row plus its scale). The quantized values are int8-ranged
/// ([-127, 127]) but stored widened to int16 so the vector kernels can
/// consume them with madd-style instructions directly. Owned by the
/// caller so parallel samples don't share buffers; reused across calls.
struct QuantScratch {
  std::vector<int16_t> Xq;
  std::vector<double> XScale;
};

/// An int8 shadow of a linear layer's weight matrix W (In x Out), stored
/// twice: \p Wq transposed (Out rows of KPad int8 entries, KPad = In
/// rounded up to 32 and zero-padded) as the scalar tier's contiguous
/// dot-product layout, and \p WqPair as the vector tiers' interleaved
/// int16 panel — for each k-pair (2k, 2k+1), OutPad outputs x 2 adjacent
/// entries, so one 256-bit load covers 8 outputs' k-pairs and
/// madd_epi16 against a broadcast X pair accumulates in output-lane
/// order with no horizontal reduction. Both layouts hold the same
/// integer values, and int32 accumulation is exact, so the tiers agree
/// bit for bit. WScale holds the per-output dequant scale (maxabs of W
/// column / 127).
struct QuantizedLinear {
  int In = 0;
  int Out = 0;
  int KPad = 0;
  int OutPad = 0; ///< Out rounded up to 8 (WqPair row granularity).
  std::vector<int8_t> Wq;
  std::vector<int16_t> WqPair;
  std::vector<double> WScale;

  bool ready() const { return Out > 0; }
  void clear() {
    In = Out = KPad = OutPad = 0;
    Wq.clear();
    WqPair.clear();
    WScale.clear();
  }
};

/// Builds the int8 shadow of \p W (In x Out) into \p Q.
void quantizeLinearWeights(const Matrix &W, QuantizedLinear &Q);

/// Y = act(quant(X) * Q + bias): the int8 analogue of gemmInto() with
/// B = W. X is A.rows() x Q.In; Y is resized to X.rows() x Q.Out.
/// Activation rows are quantized on the fly into \p Scratch. \p BiasRow
/// may be null. Same row-panel parallelism contract as gemmInto().
void gemmQuantInto(Matrix &Y, const Matrix &X, const QuantizedLinear &Q,
                   const Matrix *BiasRow, Activation Act,
                   QuantScratch &Scratch, ThreadPool *Pool = nullptr);

} // namespace nv

#endif // NV_NN_KERNELSINT8_H
