//===- nn/Matrix.h - Dense matrix for the NN library ------------*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small dense row-major matrix of doubles. This is the tensor type of
/// the from-scratch neural network library that replaces TensorFlow/RLlib
/// in this reproduction (see DESIGN.md). Deliberately minimal: the models
/// here (code2vec attention encoder + 64x64 FCNN policies) need nothing
/// fancier, and doubles keep gradient checks tight.
///
//===----------------------------------------------------------------------===//

#ifndef NV_NN_MATRIX_H
#define NV_NN_MATRIX_H

#include "support/RNG.h"

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <vector>

namespace nv {

/// Row-major dense matrix.
class Matrix {
public:
  Matrix() = default;
  Matrix(int Rows, int Cols, double Fill = 0.0)
      : NumRows(Rows), NumCols(Cols),
        Data(static_cast<size_t>(Rows) * Cols, Fill) {
    assert(Rows >= 0 && Cols >= 0);
  }

  int rows() const { return NumRows; }
  int cols() const { return NumCols; }
  size_t size() const { return Data.size(); }
  bool empty() const { return Data.empty(); }

  double &at(int R, int C) {
    assert(R >= 0 && R < NumRows && C >= 0 && C < NumCols &&
           "matrix index out of range");
    return Data[static_cast<size_t>(R) * NumCols + C];
  }
  double at(int R, int C) const {
    assert(R >= 0 && R < NumRows && C >= 0 && C < NumCols &&
           "matrix index out of range");
    return Data[static_cast<size_t>(R) * NumCols + C];
  }

  double *rowPtr(int R) { return &Data[static_cast<size_t>(R) * NumCols]; }
  const double *rowPtr(int R) const {
    return &Data[static_cast<size_t>(R) * NumCols];
  }

  std::vector<double> &raw() { return Data; }
  const std::vector<double> &raw() const { return Data; }

  /// Reshapes to Rows x Cols reusing the existing allocation when it is
  /// large enough (the backbone of the allocation-free forward path: a
  /// buffer resized to the same shape every batch never reallocates).
  /// Contents are unspecified after a shape change.
  void resize(int Rows, int Cols) {
    assert(Rows >= 0 && Cols >= 0);
    NumRows = Rows;
    NumCols = Cols;
    Data.resize(static_cast<size_t>(Rows) * Cols);
  }

  /// Appends one row of \p Cols values, preserving every existing row
  /// (unlike resize, whose contents are unspecified). \p Cols must match
  /// cols() unless the matrix is empty. Amortized O(Cols): capacity grows
  /// geometrically, so incremental index builds (predictors/
  /// NearestNeighbor) stay linear overall.
  void appendRow(const double *Row, int Cols) {
    assert(Cols >= 0 && (NumRows == 0 || Cols == NumCols) &&
           "appendRow column mismatch");
    const size_t Needed = Data.size() + static_cast<size_t>(Cols);
    if (Data.capacity() < Needed)
      Data.reserve(std::max(Needed, Data.capacity() * 2));
    Data.insert(Data.end(), Row, Row + Cols);
    NumCols = Cols;
    ++NumRows;
  }

  /// Sets every element to \p Value.
  void fill(double Value);
  /// Sets every element to 0.
  void zero() { fill(0.0); }

  /// Element-wise in-place operations.
  Matrix &operator+=(const Matrix &Other);
  Matrix &operator-=(const Matrix &Other);
  Matrix &operator*=(double Scale);

  /// Returns one row as a 1 x Cols matrix.
  Matrix row(int R) const;

  /// Fills with He/Xavier-style uniform random values in
  /// [-Scale, Scale] where Scale = sqrt(6 / (rows + cols)).
  void initXavier(RNG &Rng);

  /// Fills with N(0, Std^2) values (embedding-table initialization, where
  /// rows are looked up rather than multiplied: Xavier would shrink with
  /// the vocabulary size and collapse all code vectors together).
  void initGaussian(RNG &Rng, double Std);

  /// Frobenius-norm squared (for gradient-clipping and tests).
  double squaredNorm() const;

private:
  int NumRows = 0;
  int NumCols = 0;
  std::vector<double> Data;
};

// Naive reference kernels. Each allocates its result and accumulates in
// k-ascending order. The production forward/backward paths use the blocked,
// in-place, optionally thread-parallel kernels in nn/Kernels.h; the test
// suite asserts the two families agree.

/// C = A * B.
Matrix matmul(const Matrix &A, const Matrix &B);
/// C = A^T * B.
Matrix matmulTA(const Matrix &A, const Matrix &B);
/// C = A * B^T.
Matrix matmulTB(const Matrix &A, const Matrix &B);
/// Element-wise product.
Matrix hadamard(const Matrix &A, const Matrix &B);
/// A + B broadcasting B over rows when B has one row.
Matrix addRowBroadcast(const Matrix &A, const Matrix &B);
/// Column-wise sum producing a 1 x Cols matrix.
Matrix sumRows(const Matrix &A);

} // namespace nv

#endif // NV_NN_MATRIX_H
