//===- nn/Optimizer.h - SGD and Adam optimizers -----------------*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Gradient-descent optimizers for Param sets. Adam is the default, as in
/// the paper's RLlib PPO configuration; plain SGD is kept for tests and
/// ablations. Both support global-norm gradient clipping (PPO stability).
///
//===----------------------------------------------------------------------===//

#ifndef NV_NN_OPTIMIZER_H
#define NV_NN_OPTIMIZER_H

#include "nn/Layers.h"

#include <vector>

namespace nv {

/// Clips gradients of \p Params to a maximum global L2 norm; returns the
/// pre-clip norm.
double clipGradNorm(const std::vector<Param *> &Params, double MaxNorm);

/// Plain SGD: value -= lr * grad.
class SGD {
public:
  explicit SGD(double LearningRate) : LearningRate(LearningRate) {}

  void step(const std::vector<Param *> &Params);
  void setLearningRate(double LR) { LearningRate = LR; }

private:
  double LearningRate;
};

/// Adam (Kingma & Ba). State is keyed by parameter identity and allocated
/// lazily, so one optimizer instance can drive a whole model.
class Adam {
public:
  explicit Adam(double LearningRate, double Beta1 = 0.9,
                double Beta2 = 0.999, double Epsilon = 1e-8)
      : LearningRate(LearningRate), Beta1(Beta1), Beta2(Beta2),
        Epsilon(Epsilon) {}

  void step(const std::vector<Param *> &Params);
  void setLearningRate(double LR) { LearningRate = LR; }
  double learningRate() const { return LearningRate; }

  /// Number of step() calls so far (drives bias correction; checkpointed
  /// together with the moments so a resumed run corrects identically).
  long long stepCount() const { return StepCount; }

  /// Checkpointing: flattens first/second moments for \p Params, in order
  /// (per param: all of M, then all of V). Parameters never stepped yet
  /// export zeros.
  std::vector<double> exportMoments(const std::vector<Param *> &Params);

  /// Restores moments exported with the same parameter list and the saved
  /// step count. Returns false (leaving the optimizer untouched) if
  /// \p Blob does not match the total element count of \p Params.
  bool importMoments(const std::vector<Param *> &Params,
                     const std::vector<double> &Blob, long long Steps);

private:
  struct Moments {
    std::vector<double> M;
    std::vector<double> V;
  };
  double LearningRate;
  double Beta1, Beta2, Epsilon;
  long long StepCount = 0;
  std::vector<std::pair<const Param *, Moments>> State;

  Moments &momentsFor(const Param *P);
};

} // namespace nv

#endif // NV_NN_OPTIMIZER_H
