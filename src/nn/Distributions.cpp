//===- nn/Distributions.cpp - Policy output distributions ------------------===//

#include "nn/Distributions.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace nv;

std::vector<double> nv::softmax(const std::vector<double> &Logits) {
  assert(!Logits.empty() && "softmax of empty logits");
  const double MaxLogit = *std::max_element(Logits.begin(), Logits.end());
  std::vector<double> Probs(Logits.size());
  double Sum = 0.0;
  for (size_t I = 0; I < Logits.size(); ++I) {
    Probs[I] = std::exp(Logits[I] - MaxLogit);
    Sum += Probs[I];
  }
  for (double &P : Probs)
    P /= Sum;
  return Probs;
}

double nv::logSoftmaxAt(const std::vector<double> &Logits, int Index) {
  assert(Index >= 0 && Index < static_cast<int>(Logits.size()));
  const double MaxLogit = *std::max_element(Logits.begin(), Logits.end());
  double Sum = 0.0;
  for (double L : Logits)
    Sum += std::exp(L - MaxLogit);
  return Logits[Index] - MaxLogit - std::log(Sum);
}

double nv::softmaxEntropy(const std::vector<double> &Logits) {
  const std::vector<double> Probs = softmax(Logits);
  double H = 0.0;
  for (double P : Probs)
    if (P > 0.0)
      H -= P * std::log(P);
  return H;
}

int nv::sampleCategorical(const std::vector<double> &Logits, RNG &Rng) {
  const std::vector<double> Probs = softmax(Logits);
  double Target = Rng.nextDouble();
  for (size_t I = 0; I < Probs.size(); ++I) {
    Target -= Probs[I];
    if (Target < 0.0)
      return static_cast<int>(I);
  }
  return static_cast<int>(Probs.size()) - 1;
}

int nv::argmax(const std::vector<double> &Logits) {
  assert(!Logits.empty() && "argmax of empty logits");
  return static_cast<int>(
      std::max_element(Logits.begin(), Logits.end()) - Logits.begin());
}

std::vector<double>
nv::categoricalLogProbGrad(const std::vector<double> &Logits, int Index) {
  std::vector<double> Grad = softmax(Logits);
  for (double &G : Grad)
    G = -G;
  Grad[Index] += 1.0;
  return Grad;
}

double nv::gaussianLogProb(double X, double Mean, double LogStd) {
  const double Std = std::exp(LogStd);
  const double Z = (X - Mean) / Std;
  return -0.5 * Z * Z - LogStd - 0.5 * std::log(2.0 * M_PI);
}

double nv::gaussianEntropy(double LogStd) {
  return LogStd + 0.5 * std::log(2.0 * M_PI * std::exp(1.0));
}

double nv::sampleGaussian(double Mean, double LogStd, RNG &Rng) {
  return Mean + std::exp(LogStd) * Rng.nextGaussian();
}

void nv::gaussianLogProbGrad(double X, double Mean, double LogStd,
                             double &dMean, double &dLogStd) {
  const double Std = std::exp(LogStd);
  const double Z = (X - Mean) / Std;
  dMean = Z / Std;
  dLogStd = Z * Z - 1.0;
}
