//===- nn/Kernels.cpp - Blocked, in-place NN math kernels -------------------===//

#include "nn/Kernels.h"

#include "nn/VecMath.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace nv;

void nv::applyActivation(Matrix &Y, Activation Act) {
  switch (Act) {
  case Activation::Tanh:
    vecTanh(Y.raw().data(), Y.raw().size());
    break;
  case Activation::ReLU:
    for (double &V : Y.raw())
      V = V > 0.0 ? V : 0.0;
    break;
  case Activation::Identity:
    break;
  }
}

namespace {

/// Register-blocking factors. MR rows of the output are produced together
/// (each B element loaded once feeds MR FMAs); NB output columns are
/// accumulated in a stack tile that stays in L1, so C is touched once per
/// block instead of once per k step.
constexpr int MR = 4;
constexpr int NB = 64;

/// Problems below this many multiply-adds are not worth fanning out.
constexpr long long MinParallelWork = 1 << 15;

inline double activate(double V, Activation Act) {
  switch (Act) {
  case Activation::Tanh:
    return std::tanh(V);
  case Activation::ReLU:
    return V > 0.0 ? V : 0.0;
  case Activation::Identity:
    break;
  }
  return V;
}

/// Runs \p PanelFn(RowBegin, RowEnd) over [0, M) in MR-row panels, across
/// the pool when the problem justifies it. Panel boundaries are fixed
/// multiples of MR either way, and every output element's reduction order
/// is internal to its panel — bit-identical results at any pool size.
template <typename PanelFn>
void forEachRowPanel(ThreadPool *Pool, int M, long long Work,
                     const PanelFn &Panel) {
  const int NumPanels = (M + MR - 1) / MR;
  if (!Pool || NumPanels < 2 || Work < MinParallelWork) {
    Panel(0, M);
    return;
  }
  Pool->parallelFor(0, static_cast<size_t>(NumPanels), [&](size_t P) {
    const int Begin = static_cast<int>(P) * MR;
    Panel(Begin, std::min(M, Begin + MR));
  });
}

} // namespace

void nv::gemmInto(Matrix &C, const Matrix &A, const Matrix &B,
                  const Matrix *BiasRow, Activation Act, ThreadPool *Pool) {
  assert(A.cols() == B.rows() && "gemmInto shape mismatch");
  assert(!BiasRow ||
         (BiasRow->rows() == 1 && BiasRow->cols() == B.cols()) &&
             "bias must be 1 x B.cols()");
  const int M = A.rows(), K = A.cols(), N = B.cols();
  C.resize(M, N);
  const double *Bias = BiasRow ? BiasRow->rowPtr(0) : nullptr;

  auto Panel = [&](int RowBegin, int RowEnd) {
    double Acc[MR][NB];
    for (int I0 = RowBegin; I0 < RowEnd; I0 += MR) {
      const int MCur = std::min(MR, RowEnd - I0);
      for (int J0 = 0; J0 < N; J0 += NB) {
        const int NCur = std::min(NB, N - J0);
        for (int R = 0; R < MCur; ++R)
          for (int J = 0; J < NCur; ++J)
            Acc[R][J] = 0.0;

        if (MCur == MR) {
          const double *A0 = A.rowPtr(I0 + 0);
          const double *A1 = A.rowPtr(I0 + 1);
          const double *A2 = A.rowPtr(I0 + 2);
          const double *A3 = A.rowPtr(I0 + 3);
          for (int Kk = 0; Kk < K; ++Kk) {
            const double *BRow = B.rowPtr(Kk) + J0;
            const double V0 = A0[Kk], V1 = A1[Kk], V2 = A2[Kk],
                         V3 = A3[Kk];
            for (int J = 0; J < NCur; ++J) {
              const double Bv = BRow[J];
              Acc[0][J] += V0 * Bv;
              Acc[1][J] += V1 * Bv;
              Acc[2][J] += V2 * Bv;
              Acc[3][J] += V3 * Bv;
            }
          }
        } else {
          for (int Kk = 0; Kk < K; ++Kk) {
            const double *BRow = B.rowPtr(Kk) + J0;
            for (int R = 0; R < MCur; ++R) {
              const double V = A.rowPtr(I0 + R)[Kk];
              for (int J = 0; J < NCur; ++J)
                Acc[R][J] += V * BRow[J];
            }
          }
        }

        for (int R = 0; R < MCur; ++R) {
          double *CRow = C.rowPtr(I0 + R) + J0;
          if (Act == Activation::Tanh) {
            // Store bias-added values, then one vector-tanh sweep: the
            // transcendental is the dominant epilogue cost.
            for (int J = 0; J < NCur; ++J)
              CRow[J] = Acc[R][J] + (Bias ? Bias[J0 + J] : 0.0);
            vecTanh(CRow, static_cast<size_t>(NCur));
          } else {
            for (int J = 0; J < NCur; ++J) {
              double V = Acc[R][J];
              if (Bias)
                V += Bias[J0 + J];
              CRow[J] = activate(V, Act);
            }
          }
        }
      }
    }
  };
  forEachRowPanel(Pool, M, static_cast<long long>(M) * K * N, Panel);
}

void nv::gemmTAInto(Matrix &C, const Matrix &A, const Matrix &B,
                    bool Accumulate, ThreadPool *Pool) {
  assert(A.rows() == B.rows() && "gemmTAInto shape mismatch");
  const int R = A.rows(), M = A.cols(), N = B.cols();
  if (Accumulate)
    assert(C.rows() == M && C.cols() == N && "accumulate shape mismatch");
  else
    C.resize(M, N);

  auto Panel = [&](int RowBegin, int RowEnd) {
    double Acc[MR][NB];
    for (int I0 = RowBegin; I0 < RowEnd; I0 += MR) {
      const int MCur = std::min(MR, RowEnd - I0);
      for (int J0 = 0; J0 < N; J0 += NB) {
        const int NCur = std::min(NB, N - J0);
        for (int Rr = 0; Rr < MCur; ++Rr)
          for (int J = 0; J < NCur; ++J)
            Acc[Rr][J] = 0.0;

        // Output rows are columns I0..I0+MCur of A; the needed A values
        // sit contiguously in each A row.
        if (MCur == MR) {
          for (int Kk = 0; Kk < R; ++Kk) {
            const double *AVals = A.rowPtr(Kk) + I0;
            const double *BRow = B.rowPtr(Kk) + J0;
            const double V0 = AVals[0], V1 = AVals[1], V2 = AVals[2],
                         V3 = AVals[3];
            for (int J = 0; J < NCur; ++J) {
              const double Bv = BRow[J];
              Acc[0][J] += V0 * Bv;
              Acc[1][J] += V1 * Bv;
              Acc[2][J] += V2 * Bv;
              Acc[3][J] += V3 * Bv;
            }
          }
        } else {
          for (int Kk = 0; Kk < R; ++Kk) {
            const double *AVals = A.rowPtr(Kk) + I0;
            const double *BRow = B.rowPtr(Kk) + J0;
            for (int Rr = 0; Rr < MCur; ++Rr) {
              const double V = AVals[Rr];
              for (int J = 0; J < NCur; ++J)
                Acc[Rr][J] += V * BRow[J];
            }
          }
        }

        for (int Rr = 0; Rr < MCur; ++Rr) {
          double *CRow = C.rowPtr(I0 + Rr) + J0;
          if (Accumulate)
            for (int J = 0; J < NCur; ++J)
              CRow[J] += Acc[Rr][J];
          else
            for (int J = 0; J < NCur; ++J)
              CRow[J] = Acc[Rr][J];
        }
      }
    }
  };
  forEachRowPanel(Pool, M, static_cast<long long>(M) * R * N, Panel);
}

void nv::gemmTBInto(Matrix &C, const Matrix &A, const Matrix &B,
                    ThreadPool *Pool) {
  assert(A.cols() == B.cols() && "gemmTBInto shape mismatch");
  const int M = A.rows(), K = A.cols(), N = B.rows();
  C.resize(M, N);

  // Dot-product kernel: four B rows stream against one A row, so each A
  // load feeds four accumulators.
  auto Panel = [&](int RowBegin, int RowEnd) {
    for (int I = RowBegin; I < RowEnd; ++I) {
      const double *ARow = A.rowPtr(I);
      double *CRow = C.rowPtr(I);
      int J = 0;
      for (; J + 4 <= N; J += 4) {
        const double *B0 = B.rowPtr(J + 0);
        const double *B1 = B.rowPtr(J + 1);
        const double *B2 = B.rowPtr(J + 2);
        const double *B3 = B.rowPtr(J + 3);
        double S0 = 0.0, S1 = 0.0, S2 = 0.0, S3 = 0.0;
        for (int Kk = 0; Kk < K; ++Kk) {
          const double V = ARow[Kk];
          S0 += V * B0[Kk];
          S1 += V * B1[Kk];
          S2 += V * B2[Kk];
          S3 += V * B3[Kk];
        }
        CRow[J + 0] = S0;
        CRow[J + 1] = S1;
        CRow[J + 2] = S2;
        CRow[J + 3] = S3;
      }
      for (; J < N; ++J) {
        const double *BRow = B.rowPtr(J);
        double Sum = 0.0;
        for (int Kk = 0; Kk < K; ++Kk)
          Sum += ARow[Kk] * BRow[Kk];
        CRow[J] = Sum;
      }
    }
  };
  forEachRowPanel(Pool, M, static_cast<long long>(M) * K * N, Panel);
}

void nv::sumRowsInto(Matrix &Out, const Matrix &A, bool Accumulate) {
  if (Accumulate)
    assert(Out.rows() == 1 && Out.cols() == A.cols() &&
           "accumulate shape mismatch");
  else {
    Out.resize(1, A.cols());
    Out.zero();
  }
  double *Row = Out.rowPtr(0);
  for (int I = 0; I < A.rows(); ++I) {
    const double *ARow = A.rowPtr(I);
    for (int J = 0; J < A.cols(); ++J)
      Row[J] += ARow[J];
  }
}
