//===- nn/Kernels.cpp - Kernel dispatch + scalar fallback tier -------------===//
//
// The public GEMM entry points resolve an ISA tier once (CPUID clamped by
// NV_KERNEL_ISA / setKernelIsa) and fan row panels out to that tier's raw
// microkernels; the bias + activation epilogue runs here, in portable
// code, identically for every tier. The scalar tier below is the fallback
// and the bit-reference: it chains std::fma per output element in
// ascending k, which is exactly what one SIMD lane of the AVX tiers
// computes (docs/kernels.md).
//
//===----------------------------------------------------------------------===//

#include "nn/Kernels.h"

#include "nn/KernelsArch.h"
#include "nn/VecMath.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <cstring>

using namespace nv;
using namespace nv::detail;

//===----------------------------------------------------------------------===//
// ISA detection and dispatch state
//===----------------------------------------------------------------------===//

const char *nv::kernelIsaName(KernelIsa Isa) {
  switch (Isa) {
  case KernelIsa::Scalar:
    return "scalar";
  case KernelIsa::Avx2:
    return "avx2";
  case KernelIsa::Avx512:
    return "avx512";
  }
  return "scalar";
}

KernelIsa nv::detectKernelIsa() {
#if defined(NV_HAVE_AVX512_KERNELS) && defined(__GNUC__)
  if (__builtin_cpu_supports("avx512f"))
    return KernelIsa::Avx512;
#endif
#if defined(NV_HAVE_AVX2_KERNELS) && defined(__GNUC__)
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma"))
    return KernelIsa::Avx2;
#endif
  return KernelIsa::Scalar;
}

namespace {

KernelIsa parseIsaName(const char *Name, KernelIsa Fallback) {
  if (!Name || !*Name)
    return Fallback;
  if (std::strcmp(Name, "scalar") == 0)
    return KernelIsa::Scalar;
  if (std::strcmp(Name, "avx2") == 0)
    return KernelIsa::Avx2;
  if (std::strcmp(Name, "avx512") == 0)
    return KernelIsa::Avx512;
  return Fallback; // Unknown names keep the detected tier.
}

/// Resolved once: detection clamped by the NV_KERNEL_ISA environment knob.
KernelIsa initialIsa() {
  const KernelIsa Detected = detectKernelIsa();
  const KernelIsa Requested =
      parseIsaName(std::getenv("NV_KERNEL_ISA"), Detected);
  return std::min(Requested, Detected);
}

/// Active tier. Relaxed atomics: setKernelIsa is a test hook, not a
/// synchronization point; kernel calls racing a switch get one tier or
/// the other, both of which compute the contract-identical result for
/// gemmInto/gemmTAInto.
std::atomic<int> ActiveIsa{-1};

KernelIsa activeIsa() {
  int V = ActiveIsa.load(std::memory_order_relaxed);
  if (V < 0) {
    V = static_cast<int>(initialIsa());
    ActiveIsa.store(V, std::memory_order_relaxed);
  }
  return static_cast<KernelIsa>(V);
}

} // namespace

KernelIsa nv::kernelIsa() { return activeIsa(); }

KernelIsa nv::setKernelIsa(KernelIsa Requested) {
  const KernelIsa Applied = std::min(Requested, detectKernelIsa());
  ActiveIsa.store(static_cast<int>(Applied), std::memory_order_relaxed);
  return Applied;
}

//===----------------------------------------------------------------------===//
// Shared epilogue (portable; every tier funnels through this)
//===----------------------------------------------------------------------===//

void nv::applyActivation(Matrix &Y, Activation Act) {
  switch (Act) {
  case Activation::Tanh:
    vecTanh(Y.raw().data(), Y.raw().size());
    break;
  case Activation::ReLU:
    for (double &V : Y.raw())
      V = V > 0.0 ? V : 0.0;
    break;
  case Activation::Identity:
    break;
  }
}

/// Bias + activation over one raw output row. One implementation for all
/// tiers (fp64 and int8 dispatchers): the tanh sweep always spans the
/// whole row (never an NB block), so its input and extent are independent
/// of blocking, partition, and ISA — the epilogue cannot introduce
/// cross-tier divergence.
void nv::detail::epilogueRow(double *CRow, const double *Bias, int N,
                             Activation Act) {
  if (Bias)
    for (int J = 0; J < N; ++J)
      CRow[J] += Bias[J];
  switch (Act) {
  case Activation::Tanh:
    vecTanh(CRow, static_cast<size_t>(N));
    break;
  case Activation::ReLU:
    for (int J = 0; J < N; ++J)
      CRow[J] = CRow[J] > 0.0 ? CRow[J] : 0.0;
    break;
  case Activation::Identity:
    break;
  }
}

namespace {

//===----------------------------------------------------------------------===//
// Scalar tier: blocked loops with per-element std::fma chains
//===----------------------------------------------------------------------===//

/// Column-block width of the scalar accumulator tile (stays in L1).
constexpr int NB = 64;

void gemmRowsScalar(Matrix &C, const Matrix &A, const Matrix &B,
                    int RowBegin, int RowEnd) {
  const int K = A.cols(), N = B.cols();
  double Acc[KernelMR][NB];
  for (int I0 = RowBegin; I0 < RowEnd; I0 += KernelMR) {
    const int MCur = std::min(KernelMR, RowEnd - I0);
    for (int J0 = 0; J0 < N; J0 += NB) {
      const int NCur = std::min(NB, N - J0);
      for (int R = 0; R < MCur; ++R)
        for (int J = 0; J < NCur; ++J)
          Acc[R][J] = 0.0;
      for (int Kk = 0; Kk < K; ++Kk) {
        const double *BRow = B.rowPtr(Kk) + J0;
        for (int R = 0; R < MCur; ++R) {
          const double V = A.rowPtr(I0 + R)[Kk];
          for (int J = 0; J < NCur; ++J)
            Acc[R][J] = std::fma(V, BRow[J], Acc[R][J]);
        }
      }
      for (int R = 0; R < MCur; ++R) {
        double *CRow = C.rowPtr(I0 + R) + J0;
        for (int J = 0; J < NCur; ++J)
          CRow[J] = Acc[R][J];
      }
    }
  }
}

void gemmTARowsScalar(Matrix &C, const Matrix &A, const Matrix &B,
                      bool Accumulate, int RowBegin, int RowEnd) {
  const int R = A.rows(), N = B.cols();
  double Acc[KernelMR][NB];
  for (int I0 = RowBegin; I0 < RowEnd; I0 += KernelMR) {
    const int MCur = std::min(KernelMR, RowEnd - I0);
    for (int J0 = 0; J0 < N; J0 += NB) {
      const int NCur = std::min(NB, N - J0);
      for (int Rr = 0; Rr < MCur; ++Rr)
        for (int J = 0; J < NCur; ++J)
          Acc[Rr][J] = 0.0;
      // Output rows are columns I0..I0+MCur of A; the needed A values sit
      // contiguously in each A row.
      for (int Kk = 0; Kk < R; ++Kk) {
        const double *AVals = A.rowPtr(Kk) + I0;
        const double *BRow = B.rowPtr(Kk) + J0;
        for (int Rr = 0; Rr < MCur; ++Rr) {
          const double V = AVals[Rr];
          for (int J = 0; J < NCur; ++J)
            Acc[Rr][J] = std::fma(V, BRow[J], Acc[Rr][J]);
        }
      }
      for (int Rr = 0; Rr < MCur; ++Rr) {
        double *CRow = C.rowPtr(I0 + Rr) + J0;
        if (Accumulate)
          for (int J = 0; J < NCur; ++J)
            CRow[J] += Acc[Rr][J];
        else
          for (int J = 0; J < NCur; ++J)
            CRow[J] = Acc[Rr][J];
      }
    }
  }
}

void gemmTBRowsScalar(Matrix &C, const Matrix &A, const Matrix &B,
                      int RowBegin, int RowEnd) {
  const int K = A.cols(), N = B.rows();
  // Dot-product kernel: four B rows stream against one A row, so each A
  // load feeds four accumulators.
  for (int I = RowBegin; I < RowEnd; ++I) {
    const double *ARow = A.rowPtr(I);
    double *CRow = C.rowPtr(I);
    int J = 0;
    for (; J + 4 <= N; J += 4) {
      const double *B0 = B.rowPtr(J + 0);
      const double *B1 = B.rowPtr(J + 1);
      const double *B2 = B.rowPtr(J + 2);
      const double *B3 = B.rowPtr(J + 3);
      double S0 = 0.0, S1 = 0.0, S2 = 0.0, S3 = 0.0;
      for (int Kk = 0; Kk < K; ++Kk) {
        const double V = ARow[Kk];
        S0 = std::fma(V, B0[Kk], S0);
        S1 = std::fma(V, B1[Kk], S1);
        S2 = std::fma(V, B2[Kk], S2);
        S3 = std::fma(V, B3[Kk], S3);
      }
      CRow[J + 0] = S0;
      CRow[J + 1] = S1;
      CRow[J + 2] = S2;
      CRow[J + 3] = S3;
    }
    for (; J < N; ++J) {
      const double *BRow = B.rowPtr(J);
      double Sum = 0.0;
      for (int Kk = 0; Kk < K; ++Kk)
        Sum = std::fma(ARow[Kk], BRow[Kk], Sum);
      CRow[J] = Sum;
    }
  }
}

//===----------------------------------------------------------------------===//
// Tier table
//===----------------------------------------------------------------------===//

struct PanelTable {
  GemmRowsFn Gemm;
  GemmTARowsFn TA;
  GemmTBRowsFn TB;
};

constexpr PanelTable ScalarTable = {gemmRowsScalar, gemmTARowsScalar,
                                    gemmTBRowsScalar};

const PanelTable &tableFor(KernelIsa Isa) {
#ifdef NV_HAVE_AVX512_KERNELS
  static constexpr PanelTable Avx512Table = {gemmRowsAvx512, gemmTARowsAvx512,
                                             gemmTBRowsAvx512};
  if (Isa == KernelIsa::Avx512)
    return Avx512Table;
#endif
#ifdef NV_HAVE_AVX2_KERNELS
  static constexpr PanelTable Avx2Table = {gemmRowsAvx2, gemmTARowsAvx2,
                                           gemmTBRowsAvx2};
  if (Isa >= KernelIsa::Avx2)
    return Avx2Table;
#endif
  (void)Isa;
  return ScalarTable;
}

} // namespace

//===----------------------------------------------------------------------===//
// Public entry points
//===----------------------------------------------------------------------===//

void nv::gemmInto(Matrix &C, const Matrix &A, const Matrix &B,
                  const Matrix *BiasRow, Activation Act, ThreadPool *Pool) {
  assert(A.cols() == B.rows() && "gemmInto shape mismatch");
  assert(!BiasRow ||
         (BiasRow->rows() == 1 && BiasRow->cols() == B.cols()) &&
             "bias must be 1 x B.cols()");
  const int M = A.rows(), K = A.cols(), N = B.cols();
  C.resize(M, N);
  const double *Bias = BiasRow ? BiasRow->rowPtr(0) : nullptr;
  const PanelTable &T = tableFor(activeIsa());

  auto Panel = [&](int RowBegin, int RowEnd) {
    T.Gemm(C, A, B, RowBegin, RowEnd);
    for (int I = RowBegin; I < RowEnd; ++I)
      epilogueRow(C.rowPtr(I), Bias, N, Act);
  };
  forEachKernelRowPanel(Pool, M, static_cast<long long>(M) * K * N, Panel);
}

void nv::gemmTAInto(Matrix &C, const Matrix &A, const Matrix &B,
                    bool Accumulate, ThreadPool *Pool) {
  assert(A.rows() == B.rows() && "gemmTAInto shape mismatch");
  const int R = A.rows(), M = A.cols(), N = B.cols();
  if (Accumulate)
    assert(C.rows() == M && C.cols() == N && "accumulate shape mismatch");
  else
    C.resize(M, N);
  const PanelTable &T = tableFor(activeIsa());

  auto Panel = [&](int RowBegin, int RowEnd) {
    T.TA(C, A, B, Accumulate, RowBegin, RowEnd);
  };
  forEachKernelRowPanel(Pool, M, static_cast<long long>(M) * R * N, Panel);
}

void nv::gemmTBInto(Matrix &C, const Matrix &A, const Matrix &B,
                    ThreadPool *Pool) {
  assert(A.cols() == B.cols() && "gemmTBInto shape mismatch");
  const int M = A.rows(), K = A.cols(), N = B.rows();
  C.resize(M, N);
  const PanelTable &T = tableFor(activeIsa());

  auto Panel = [&](int RowBegin, int RowEnd) {
    T.TB(C, A, B, RowBegin, RowEnd);
  };
  forEachKernelRowPanel(Pool, M, static_cast<long long>(M) * K * N, Panel);
}

void nv::sumRowsInto(Matrix &Out, const Matrix &A, bool Accumulate) {
  if (Accumulate)
    assert(Out.rows() == 1 && Out.cols() == A.cols() &&
           "accumulate shape mismatch");
  else {
    Out.resize(1, A.cols());
    Out.zero();
  }
  double *Row = Out.rowPtr(0);
  for (int I = 0; I < A.rows(); ++I) {
    const double *ARow = A.rowPtr(I);
    for (int J = 0; J < A.cols(); ++J)
      Row[J] += ARow[J];
  }
}
