//===- nn/KernelsArch.h - Per-ISA microkernel internals ---------*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Internal interface between the kernel dispatcher (nn/Kernels.cpp,
/// nn/KernelsInt8.cpp) and the ISA-specific translation units
/// (nn/KernelsAvx.cpp built -mavx2 -mfma, nn/KernelsAvx512.cpp built
/// -mavx512f). Not part of the public kernel API.
///
/// Every function here computes *raw* output rows — no bias, no
/// activation. The dispatcher owns the epilogue (bias add + activation),
/// which is the same portable code for every tier, so the epilogue can
/// never split the cross-ISA bit-identity contract (docs/kernels.md).
///
/// Row-range semantics match the dispatcher's panel fan-out: a function
/// is handed [RowBegin, RowEnd) of the *output* and must touch nothing
/// outside it, so panels can run concurrently on a pool.
///
/// The AVX symbols are only compiled (and only referenced) when CMake
/// defines NV_HAVE_AVX2_KERNELS / NV_HAVE_AVX512_KERNELS — builds with
/// NV_NATIVE_KERNELS=OFF, or toolchains without the flags, fall back to
/// the scalar tier with no link-time dependency on these TUs.
///
//===----------------------------------------------------------------------===//

#ifndef NV_NN_KERNELSARCH_H
#define NV_NN_KERNELSARCH_H

#include "nn/Kernels.h"
#include "nn/Matrix.h"

#include <cstdint>

namespace nv {

class ThreadPool;

namespace detail {

/// Row-panel height shared by every tier. Panel boundaries are fixed
/// multiples of MR regardless of pool size; each output element's
/// reduction is internal to its panel.
constexpr int KernelMR = 4;

/// Problems below this many multiply-adds are not worth fanning out.
constexpr long long KernelMinParallelWork = 1 << 15;

/// C rows [RowBegin, RowEnd) = (A * B) rows, raw.
using GemmRowsFn = void (*)(Matrix &C, const Matrix &A, const Matrix &B,
                            int RowBegin, int RowEnd);

/// C rows [RowBegin, RowEnd) (+)= (A^T * B) rows, raw. The output row
/// index is a column of A.
using GemmTARowsFn = void (*)(Matrix &C, const Matrix &A, const Matrix &B,
                              bool Accumulate, int RowBegin, int RowEnd);

/// C rows [RowBegin, RowEnd) = (A * B^T) rows, raw.
using GemmTBRowsFn = void (*)(Matrix &C, const Matrix &A, const Matrix &B,
                              int RowBegin, int RowEnd);

/// Y[r][o] = (Sx[r] * WScale[o]) * dot(X row r, weight row o) for r in
/// [0, MR), o in [0, OCur): up to KernelMR quantized activation rows
/// (stride \p XStride) against one chunk of outputs, dequantized into
/// the raw fp64 output rows (stride \p YStride; the shared epilogue
/// runs after). Blocking over rows lets the vector tiers reuse each
/// weight load across every row — the weight panel is streamed once per
/// row *quad*, matching the fp64 kernels' MR=4 memory behavior. \p Wq
/// is the transposed int8 layout (stride KPad); \p WqPair the
/// interleaved int16 panel (stride OutPad * 2 per k-pair) — each tier
/// reads the layout it wants. Integer accumulation is exact and the
/// dequant is the same two IEEE multiplies in the same order on every
/// tier, so the tiers produce identical output bits.
using Int8PanelFn = void (*)(const int16_t *X, size_t XStride, int MR,
                             const int8_t *Wq, const int16_t *WqPair,
                             int KPad, int OutPad, int OCur,
                             const double *Sx, const double *WScale,
                             double *Y, size_t YStride);

/// Symmetric int8-range quantization of one fp64 row into widened int16
/// storage: scale = maxabs / 127 (1.0 for an all-zero row), values
/// rounded to nearest (even) and clamped to [-127, 127]. Returns the
/// scale. Every tier computes identical values: maxabs is exact, the
/// x * (127 / maxabs) product is one IEEE multiply, and both std::lrint
/// and the vector convert round to nearest under the default mode.
using QuantRowFn = double (*)(const double *Src, int N, int16_t *Dst);

#ifdef NV_HAVE_AVX2_KERNELS
void gemmRowsAvx2(Matrix &C, const Matrix &A, const Matrix &B, int RowBegin,
                  int RowEnd);
void gemmTARowsAvx2(Matrix &C, const Matrix &A, const Matrix &B,
                    bool Accumulate, int RowBegin, int RowEnd);
void gemmTBRowsAvx2(Matrix &C, const Matrix &A, const Matrix &B,
                    int RowBegin, int RowEnd);
void int8PanelAvx2(const int16_t *X, size_t XStride, int MR,
                   const int8_t *Wq, const int16_t *WqPair, int KPad,
                   int OutPad, int OCur, const double *Sx,
                   const double *WScale, double *Y, size_t YStride);
double quantizeRowAvx2(const double *Src, int N, int16_t *Dst);
#endif

#ifdef NV_HAVE_AVX512_KERNELS
void gemmRowsAvx512(Matrix &C, const Matrix &A, const Matrix &B,
                    int RowBegin, int RowEnd);
void gemmTARowsAvx512(Matrix &C, const Matrix &A, const Matrix &B,
                      bool Accumulate, int RowBegin, int RowEnd);
void gemmTBRowsAvx512(Matrix &C, const Matrix &A, const Matrix &B,
                      int RowBegin, int RowEnd);
#endif

/// Bias + activation over one raw output row — the single shared epilogue
/// every tier (fp64 and int8) funnels through. Defined in Kernels.cpp.
void epilogueRow(double *CRow, const double *Bias, int N, Activation Act);

/// Runs \p Panel(RowBegin, RowEnd) over [0, M) in KernelMR-row panels,
/// across \p Pool when \p Work justifies it. Shared by the fp64 and int8
/// dispatchers so both inherit the same partition (and therefore the same
/// pool-size invariance argument).
template <typename PanelFn>
inline void forEachKernelRowPanel(ThreadPool *Pool, int M, long long Work,
                                  const PanelFn &Panel);

} // namespace detail
} // namespace nv

#include "support/ThreadPool.h"

#include <algorithm>

template <typename PanelFn>
inline void nv::detail::forEachKernelRowPanel(ThreadPool *Pool, int M,
                                              long long Work,
                                              const PanelFn &Panel) {
  const int NumPanels = (M + KernelMR - 1) / KernelMR;
  if (!Pool || NumPanels < 2 || Work < KernelMinParallelWork) {
    Panel(0, M);
    return;
  }
  Pool->parallelFor(0, static_cast<size_t>(NumPanels), [&](size_t P) {
    const int Begin = static_cast<int>(P) * KernelMR;
    Panel(Begin, std::min(M, Begin + KernelMR));
  });
}

#endif // NV_NN_KERNELSARCH_H
