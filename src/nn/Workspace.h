//===- nn/Workspace.h - Reusable scratch-matrix arena -----------*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny arena of reusable scratch matrices for the in-place forward and
/// backward paths. A network owns one Workspace and addresses its scratch
/// by slot index; Matrix::resize reuses the slot's allocation whenever the
/// requested shape fits, so steady-state forwards (same batch shape every
/// call) perform zero heap allocations.
///
/// Slots live in a deque, so references handed out stay valid when later
/// requests grow the slot table. A Workspace is not thread-safe; replicas
/// (train/RolloutWorkers) and the serving layer each drive their own
/// networks, which own their own workspaces.
///
//===----------------------------------------------------------------------===//

#ifndef NV_NN_WORKSPACE_H
#define NV_NN_WORKSPACE_H

#include "nn/Matrix.h"

#include <deque>

namespace nv {

/// Slot-addressed scratch matrices.
class Workspace {
public:
  /// Returns slot \p Slot resized to Rows x Cols. Contents are
  /// unspecified; the reference stays valid for the Workspace's lifetime.
  Matrix &get(size_t Slot, int Rows, int Cols) {
    if (Slot >= Slots.size())
      Slots.resize(Slot + 1);
    Matrix &M = Slots[Slot];
    M.resize(Rows, Cols);
    return M;
  }

private:
  std::deque<Matrix> Slots;
};

} // namespace nv

#endif // NV_NN_WORKSPACE_H
