//===- nn/Layers.cpp - NN layers and the MLP -------------------------------===//

#include "nn/Layers.h"

#include <cassert>
#include <cmath>

using namespace nv;

LinearLayer::LinearLayer(int In, int Out, RNG &Rng)
    : W(In, Out), B(1, Out) {
  W.Value.initXavier(Rng);
  // Biases start at zero.
}

Matrix LinearLayer::forward(const Matrix &X) {
  assert(X.cols() == W.Value.rows() && "input width mismatch");
  CachedX = X;
  return addRowBroadcast(matmul(X, W.Value), B.Value);
}

Matrix LinearLayer::backward(const Matrix &dY) {
  assert(dY.cols() == W.Value.cols() && "gradient width mismatch");
  assert(CachedX.rows() == dY.rows() && "forward/backward batch mismatch");
  W.Grad += matmulTA(CachedX, dY);
  B.Grad += sumRows(dY);
  return matmulTB(dY, W.Value);
}

Matrix ActivationLayer::forward(const Matrix &X) {
  Matrix Y = X;
  switch (Kind) {
  case Activation::Tanh:
    for (double &V : Y.raw())
      V = std::tanh(V);
    break;
  case Activation::ReLU:
    for (double &V : Y.raw())
      V = V > 0.0 ? V : 0.0;
    break;
  case Activation::Identity:
    break;
  }
  CachedY = Y;
  return Y;
}

Matrix ActivationLayer::backward(const Matrix &dY) {
  assert(dY.rows() == CachedY.rows() && dY.cols() == CachedY.cols() &&
         "forward/backward shape mismatch");
  Matrix dX = dY;
  switch (Kind) {
  case Activation::Tanh:
    for (size_t I = 0; I < dX.size(); ++I) {
      const double Y = CachedY.raw()[I];
      dX.raw()[I] *= 1.0 - Y * Y;
    }
    break;
  case Activation::ReLU:
    for (size_t I = 0; I < dX.size(); ++I)
      if (CachedY.raw()[I] <= 0.0)
        dX.raw()[I] = 0.0;
    break;
  case Activation::Identity:
    break;
  }
  return dX;
}

MLP::MLP(const std::vector<int> &Sizes, Activation Act, RNG &Rng) {
  assert(Sizes.size() >= 2 && "MLP needs at least input and output sizes");
  for (size_t I = 0; I + 1 < Sizes.size(); ++I) {
    Linears.push_back(
        std::make_unique<LinearLayer>(Sizes[I], Sizes[I + 1], Rng));
    if (I + 2 < Sizes.size())
      Activations.push_back(std::make_unique<ActivationLayer>(Act));
  }
}

Matrix MLP::forward(const Matrix &X) {
  Matrix Cur = X;
  for (size_t I = 0; I < Linears.size(); ++I) {
    Cur = Linears[I]->forward(Cur);
    if (I < Activations.size())
      Cur = Activations[I]->forward(Cur);
  }
  return Cur;
}

Matrix MLP::backward(const Matrix &dY) {
  Matrix Cur = dY;
  for (size_t I = Linears.size(); I-- > 0;) {
    if (I < Activations.size())
      Cur = Activations[I]->backward(Cur);
    Cur = Linears[I]->backward(Cur);
  }
  return Cur;
}

std::vector<Param *> MLP::params() {
  std::vector<Param *> All;
  for (auto &L : Linears)
    for (Param *P : L->params())
      All.push_back(P);
  return All;
}
