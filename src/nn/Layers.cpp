//===- nn/Layers.cpp - NN layers and the MLP -------------------------------===//

#include "nn/Layers.h"

#include <cassert>
#include <cmath>

using namespace nv;

LinearLayer::LinearLayer(int In, int Out, RNG &Rng)
    : W(In, Out), B(1, Out) {
  W.Value.initXavier(Rng);
  // Biases start at zero.
}

void LinearLayer::forwardInto(const Matrix &X, Matrix &Y, Activation Fused,
                              ThreadPool *Pool, bool CacheInput) {
  assert(X.cols() == W.Value.rows() && "input width mismatch");
  assert(&X != &Y && "forwardInto must not alias input and output");
  if (CacheInput)
    CachedX = X; // Copy-assign reuses CachedX's allocation once warm.
  // The int8 shadow only serves pure-inference forwards: a cached input
  // means a backward pass may follow, and gradients must be computed
  // against the fp32 weights actually updated by the optimizer.
  if (!CacheInput && Quant.ready()) {
    gemmQuantInto(Y, X, Quant, &B.Value, Fused, QScratch, Pool);
    return;
  }
  gemmInto(Y, X, W.Value, &B.Value, Fused, Pool);
}

void LinearLayer::backwardInto(const Matrix &dY, Matrix &dX,
                               ThreadPool *Pool) {
  assert(dY.cols() == W.Value.cols() && "gradient width mismatch");
  assert(CachedX.rows() == dY.rows() && "forward/backward batch mismatch");
  assert(&dY != &dX && "backwardInto must not alias input and output");
  gemmTAInto(W.Grad, CachedX, dY, /*Accumulate=*/true, Pool);
  sumRowsInto(B.Grad, dY, /*Accumulate=*/true);
  gemmTBInto(dX, dY, W.Value, Pool);
}

Matrix LinearLayer::forward(const Matrix &X) {
  Matrix Y;
  forwardInto(X, Y);
  return Y;
}

Matrix LinearLayer::backward(const Matrix &dY) {
  Matrix dX;
  backwardInto(dY, dX);
  return dX;
}

Matrix ActivationLayer::forward(const Matrix &X) {
  Matrix Y = X;
  applyActivation(Y, Kind);
  CachedY = Y;
  return Y;
}

Matrix ActivationLayer::backward(const Matrix &dY) {
  assert(dY.rows() == CachedY.rows() && dY.cols() == CachedY.cols() &&
         "forward/backward shape mismatch");
  Matrix dX = dY;
  switch (Kind) {
  case Activation::Tanh:
    for (size_t I = 0; I < dX.size(); ++I) {
      const double Y = CachedY.raw()[I];
      dX.raw()[I] *= 1.0 - Y * Y;
    }
    break;
  case Activation::ReLU:
    for (size_t I = 0; I < dX.size(); ++I)
      if (CachedY.raw()[I] <= 0.0)
        dX.raw()[I] = 0.0;
    break;
  case Activation::Identity:
    break;
  }
  return dX;
}

MLP::MLP(const std::vector<int> &Sizes, Activation Act, RNG &Rng)
    : Act(Act) {
  assert(Sizes.size() >= 2 && "MLP needs at least input and output sizes");
  for (size_t I = 0; I + 1 < Sizes.size(); ++I)
    Linears.push_back(
        std::make_unique<LinearLayer>(Sizes[I], Sizes[I + 1], Rng));
  HiddenOut.assign(Linears.size() > 0 ? Linears.size() - 1 : 0, nullptr);
}

void MLP::forwardInto(const Matrix &X, Matrix &Out, ThreadPool *Pool,
                      bool ActivateLast, bool ForBackward) {
  assert(&X != &Out && "forwardInto must not alias input and output");
  const Matrix *Cur = &X;
  for (size_t I = 0; I + 1 < Linears.size(); ++I) {
    Matrix &H = Hidden.get(I, Cur->rows(), Linears[I]->outputSize());
    Linears[I]->forwardInto(*Cur, H, Act, Pool, ForBackward);
    HiddenOut[I] = &H;
    Cur = &H;
  }
  Linears.back()->forwardInto(*Cur, Out,
                              ActivateLast ? Act : Activation::Identity,
                              Pool, ForBackward);
}

Matrix MLP::forward(const Matrix &X) {
  Matrix Out;
  forwardInto(X, Out);
  return Out;
}

Matrix MLP::backward(const Matrix &dY) {
  // Ping-pong between two scratch buffers; the hidden-activation
  // derivative is applied from the saved activated outputs before each
  // hidden layer's affine backward (the fused-forward counterpart of the
  // old standalone ActivationLayer::backward).
  const Matrix *Cur = &dY;
  for (size_t I = Linears.size(); I-- > 0;) {
    if (I + 1 < Linears.size()) {
      // Entering hidden layer I+1's input gradient; first undo layer I's
      // fused activation using its activated output.
      const Matrix &H = *HiddenOut[I];
      Matrix &Scaled = BackScratch.get(2, Cur->rows(), Cur->cols());
      const std::vector<double> &HRaw = H.raw();
      const std::vector<double> &CurRaw = Cur->raw();
      std::vector<double> &OutRaw = Scaled.raw();
      switch (Act) {
      case Activation::Tanh:
        for (size_t E = 0; E < OutRaw.size(); ++E)
          OutRaw[E] = CurRaw[E] * (1.0 - HRaw[E] * HRaw[E]);
        break;
      case Activation::ReLU:
        for (size_t E = 0; E < OutRaw.size(); ++E)
          OutRaw[E] = HRaw[E] > 0.0 ? CurRaw[E] : 0.0;
        break;
      case Activation::Identity:
        for (size_t E = 0; E < OutRaw.size(); ++E)
          OutRaw[E] = CurRaw[E];
        break;
      }
      Matrix &Next = BackScratch.get(I % 2, Scaled.rows(),
                                     Linears[I]->inputSize());
      Linears[I]->backwardInto(Scaled, Next);
      Cur = &Next;
    } else {
      Matrix &Next = BackScratch.get(I % 2, Cur->rows(),
                                     Linears[I]->inputSize());
      Linears[I]->backwardInto(*Cur, Next);
      Cur = &Next;
    }
  }
  return *Cur;
}

void MLP::quantizeForInference() {
  for (auto &L : Linears)
    L->quantizeForInference();
}

void MLP::clearQuantized() {
  for (auto &L : Linears)
    L->clearQuantized();
}

bool MLP::isQuantized() const {
  for (const auto &L : Linears)
    if (!L->isQuantized())
      return false;
  return !Linears.empty();
}

std::vector<Param *> MLP::params() {
  std::vector<Param *> All;
  for (auto &L : Linears)
    for (Param *P : L->params())
      All.push_back(P);
  return All;
}
