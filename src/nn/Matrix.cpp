//===- nn/Matrix.cpp - Dense matrix for the NN library --------------------===//

#include "nn/Matrix.h"

#include <algorithm>
#include <cmath>

using namespace nv;

void Matrix::fill(double Value) {
  std::fill(Data.begin(), Data.end(), Value);
}

Matrix &Matrix::operator+=(const Matrix &Other) {
  assert(NumRows == Other.NumRows && NumCols == Other.NumCols &&
         "shape mismatch in +=");
  for (size_t I = 0; I < Data.size(); ++I)
    Data[I] += Other.Data[I];
  return *this;
}

Matrix &Matrix::operator-=(const Matrix &Other) {
  assert(NumRows == Other.NumRows && NumCols == Other.NumCols &&
         "shape mismatch in -=");
  for (size_t I = 0; I < Data.size(); ++I)
    Data[I] -= Other.Data[I];
  return *this;
}

Matrix &Matrix::operator*=(double Scale) {
  for (double &V : Data)
    V *= Scale;
  return *this;
}

Matrix Matrix::row(int R) const {
  Matrix Result(1, NumCols);
  for (int C = 0; C < NumCols; ++C)
    Result.at(0, C) = at(R, C);
  return Result;
}

void Matrix::initXavier(RNG &Rng) {
  const double Scale =
      std::sqrt(6.0 / std::max(1, NumRows + NumCols));
  for (double &V : Data)
    V = Rng.nextUniform(-Scale, Scale);
}

void Matrix::initGaussian(RNG &Rng, double Std) {
  for (double &V : Data)
    V = Std * Rng.nextGaussian();
}

double Matrix::squaredNorm() const {
  double Sum = 0.0;
  for (double V : Data)
    Sum += V * V;
  return Sum;
}

Matrix nv::matmul(const Matrix &A, const Matrix &B) {
  assert(A.cols() == B.rows() && "matmul shape mismatch");
  Matrix C(A.rows(), B.cols());
  for (int I = 0; I < A.rows(); ++I) {
    const double *ARow = A.rowPtr(I);
    double *CRow = C.rowPtr(I);
    for (int K = 0; K < A.cols(); ++K) {
      const double AVal = ARow[K];
      if (AVal == 0.0)
        continue;
      const double *BRow = B.rowPtr(K);
      for (int J = 0; J < B.cols(); ++J)
        CRow[J] += AVal * BRow[J];
    }
  }
  return C;
}

Matrix nv::matmulTA(const Matrix &A, const Matrix &B) {
  assert(A.rows() == B.rows() && "matmulTA shape mismatch");
  Matrix C(A.cols(), B.cols());
  for (int K = 0; K < A.rows(); ++K) {
    const double *ARow = A.rowPtr(K);
    const double *BRow = B.rowPtr(K);
    for (int I = 0; I < A.cols(); ++I) {
      const double AVal = ARow[I];
      if (AVal == 0.0)
        continue;
      double *CRow = C.rowPtr(I);
      for (int J = 0; J < B.cols(); ++J)
        CRow[J] += AVal * BRow[J];
    }
  }
  return C;
}

Matrix nv::matmulTB(const Matrix &A, const Matrix &B) {
  assert(A.cols() == B.cols() && "matmulTB shape mismatch");
  Matrix C(A.rows(), B.rows());
  for (int I = 0; I < A.rows(); ++I) {
    const double *ARow = A.rowPtr(I);
    double *CRow = C.rowPtr(I);
    for (int J = 0; J < B.rows(); ++J) {
      const double *BRow = B.rowPtr(J);
      double Sum = 0.0;
      for (int K = 0; K < A.cols(); ++K)
        Sum += ARow[K] * BRow[K];
      CRow[J] = Sum;
    }
  }
  return C;
}

Matrix nv::hadamard(const Matrix &A, const Matrix &B) {
  assert(A.rows() == B.rows() && A.cols() == B.cols() &&
         "hadamard shape mismatch");
  Matrix C(A.rows(), A.cols());
  for (size_t I = 0; I < A.size(); ++I)
    C.raw()[I] = A.raw()[I] * B.raw()[I];
  return C;
}

Matrix nv::addRowBroadcast(const Matrix &A, const Matrix &B) {
  assert(B.rows() == 1 && A.cols() == B.cols() &&
         "row broadcast shape mismatch");
  Matrix C = A;
  for (int I = 0; I < A.rows(); ++I)
    for (int J = 0; J < A.cols(); ++J)
      C.at(I, J) += B.at(0, J);
  return C;
}

Matrix nv::sumRows(const Matrix &A) {
  Matrix C(1, A.cols());
  for (int I = 0; I < A.rows(); ++I)
    for (int J = 0; J < A.cols(); ++J)
      C.at(0, J) += A.at(I, J);
  return C;
}
