//===- nn/Layers.h - NN layers and the MLP ----------------------*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Linear and activation layers plus the fully-connected network (FCNN)
/// used by the paper's agent ("a 64x64 fully connected neural network",
/// §4). Layers cache their forward inputs and implement exact backward
/// passes; the test suite validates all gradients against finite
/// differences.
///
//===----------------------------------------------------------------------===//

#ifndef NV_NN_LAYERS_H
#define NV_NN_LAYERS_H

#include "nn/Matrix.h"

#include <memory>
#include <vector>

namespace nv {

/// A learnable parameter with its gradient accumulator.
struct Param {
  Matrix Value;
  Matrix Grad;

  Param() = default;
  Param(int Rows, int Cols) : Value(Rows, Cols), Grad(Rows, Cols) {}

  void zeroGrad() { Grad.zero(); }
};

/// Affine layer: Y = X * W + b.
class LinearLayer {
public:
  LinearLayer(int In, int Out, RNG &Rng);

  /// \p X is (batch x In); returns (batch x Out) and caches X.
  Matrix forward(const Matrix &X);
  /// \p dY is (batch x Out); accumulates into W.Grad / B.Grad and returns
  /// dX (batch x In).
  Matrix backward(const Matrix &dY);

  std::vector<Param *> params() { return {&W, &B}; }
  int inputSize() const { return W.Value.rows(); }
  int outputSize() const { return W.Value.cols(); }

  Param W; ///< (In x Out)
  Param B; ///< (1 x Out)

private:
  Matrix CachedX;
};

/// Supported activation functions.
enum class Activation { Tanh, ReLU, Identity };

/// Element-wise activation layer.
class ActivationLayer {
public:
  explicit ActivationLayer(Activation Kind) : Kind(Kind) {}

  Matrix forward(const Matrix &X);
  Matrix backward(const Matrix &dY);

private:
  Activation Kind;
  Matrix CachedY; ///< Activations (enough to compute both derivatives).
};

/// Fully connected network: Linear -> act -> ... -> Linear (no activation
/// after the last layer, so heads can attach raw logits/values).
class MLP {
public:
  /// \p Sizes = {in, hidden..., out}; e.g. {340, 64, 64} gives the paper's
  /// 64x64 trunk over a 340-dim code2vec embedding.
  MLP(const std::vector<int> &Sizes, Activation Act, RNG &Rng);

  Matrix forward(const Matrix &X);
  Matrix backward(const Matrix &dY);

  std::vector<Param *> params();
  int inputSize() const { return Linears.front()->inputSize(); }
  int outputSize() const { return Linears.back()->outputSize(); }

private:
  std::vector<std::unique_ptr<LinearLayer>> Linears;
  std::vector<std::unique_ptr<ActivationLayer>> Activations;
};

} // namespace nv

#endif // NV_NN_LAYERS_H
