//===- nn/Layers.h - NN layers and the MLP ----------------------*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Linear and activation layers plus the fully-connected network (FCNN)
/// used by the paper's agent ("a 64x64 fully connected neural network",
/// §4). Layers cache their forward inputs and implement exact backward
/// passes; the test suite validates all gradients against finite
/// differences.
///
/// Two forward surfaces exist:
///  - the in-place API (forwardInto/backwardInto) writes into caller-owned
///    buffers through the blocked kernels in nn/Kernels.h, fuses bias and
///    activation into the GEMM epilogue, and performs no per-call heap
///    allocation once buffers are warm — this is the serving/training hot
///    path;
///  - the legacy allocating API (forward/backward) remains as a thin
///    wrapper for tests and small tools.
///
//===----------------------------------------------------------------------===//

#ifndef NV_NN_LAYERS_H
#define NV_NN_LAYERS_H

#include "nn/Kernels.h"
#include "nn/KernelsInt8.h"
#include "nn/Matrix.h"
#include "nn/Workspace.h"

#include <memory>
#include <vector>

namespace nv {

class ThreadPool;

/// A learnable parameter with its gradient accumulator.
struct Param {
  Matrix Value;
  Matrix Grad;

  Param() = default;
  Param(int Rows, int Cols) : Value(Rows, Cols), Grad(Rows, Cols) {}

  void zeroGrad() { Grad.zero(); }
};

/// Affine layer: Y = act(X * W + b) with the activation fused into the
/// GEMM epilogue (Identity for a pure affine layer).
class LinearLayer {
public:
  LinearLayer(int In, int Out, RNG &Rng);

  /// In-place forward: writes act(X * W + b) into \p Y (resized; must not
  /// alias X). Allocation-free once warm. \p CacheInput copies X for a
  /// later backward(); inference paths pass false and skip the copy (the
  /// next backward then requires a cached forward first).
  void forwardInto(const Matrix &X, Matrix &Y,
                   Activation Fused = Activation::Identity,
                   ThreadPool *Pool = nullptr, bool CacheInput = true);

  /// In-place backward for the affine part only (a fused activation's
  /// derivative is the caller's job — MLP applies it from its saved
  /// activations before calling this). Accumulates W.Grad / B.Grad and
  /// writes dLoss/dX into \p dX (resized; must not alias dY).
  void backwardInto(const Matrix &dY, Matrix &dX, ThreadPool *Pool = nullptr);

  /// \p X is (batch x In); returns (batch x Out) and caches X.
  Matrix forward(const Matrix &X);
  /// \p dY is (batch x Out); accumulates into W.Grad / B.Grad and returns
  /// dX (batch x In).
  Matrix backward(const Matrix &dY);

  std::vector<Param *> params() { return {&W, &B}; }
  int inputSize() const { return W.Value.rows(); }
  int outputSize() const { return W.Value.cols(); }

  /// Builds (or refreshes) the int8 shadow of W. Once built, inference
  /// forwards (CacheInput = false) run through the quantized kernel;
  /// training forwards always stay fp32 because they cache their input.
  /// Must be re-run after any weight update (the shadow does not track W).
  void quantizeForInference() { quantizeLinearWeights(W.Value, Quant); }
  void clearQuantized() { Quant.clear(); }
  bool isQuantized() const { return Quant.ready(); }

  Param W; ///< (In x Out)
  Param B; ///< (1 x Out)

private:
  Matrix CachedX;
  QuantizedLinear Quant; ///< Int8 shadow of W (empty = fp32 only).
  QuantScratch QScratch;
};

/// Supported activations live in nn/Kernels.h (enum class Activation) so
/// the fused GEMM epilogue can share them.

/// Element-wise activation layer (legacy standalone form; the MLP fuses
/// activations into its linear layers instead).
class ActivationLayer {
public:
  explicit ActivationLayer(Activation Kind) : Kind(Kind) {}

  Matrix forward(const Matrix &X);
  Matrix backward(const Matrix &dY);

private:
  Activation Kind;
  Matrix CachedY; ///< Activations (enough to compute both derivatives).
};

/// Fully connected network: Linear -> act -> ... -> Linear (no activation
/// after the last layer by default, so heads can attach raw logits/values;
/// forwardInto can fuse one onto the last layer for trunk-style use).
class MLP {
public:
  /// \p Sizes = {in, hidden..., out}; e.g. {340, 64, 64} gives the paper's
  /// 64x64 trunk over a 340-dim code2vec embedding.
  MLP(const std::vector<int> &Sizes, Activation Act, RNG &Rng);

  /// In-place forward through the fused kernels: writes the final layer's
  /// output into \p Out (resized; must not alias X). Hidden activations
  /// stay in the internal workspace for backward. \p ActivateLast applies
  /// the configured activation to the last layer too (the policy trunk
  /// wants bounded features; backward for that fused last activation is
  /// the caller's job, matching the legacy forward()+tanh pattern).
  /// \p ForBackward = false skips the per-layer input caching — the
  /// inference mode; backward() is only valid after a ForBackward pass.
  void forwardInto(const Matrix &X, Matrix &Out, ThreadPool *Pool = nullptr,
                   bool ActivateLast = false, bool ForBackward = true);

  Matrix forward(const Matrix &X);
  Matrix backward(const Matrix &dY);

  std::vector<Param *> params();
  int inputSize() const { return Linears.front()->inputSize(); }
  int outputSize() const { return Linears.back()->outputSize(); }

  /// Layer-wise int8 quantization (see LinearLayer::quantizeForInference).
  void quantizeForInference();
  void clearQuantized();
  bool isQuantized() const;

private:
  Activation Act;
  std::vector<std::unique_ptr<LinearLayer>> Linears;
  /// Activated hidden outputs from the last forward, one per hidden layer
  /// (workspace slots 0..L-2); backward reads them for the activation
  /// derivative.
  Workspace Hidden;
  std::vector<Matrix *> HiddenOut;
  Workspace BackScratch; ///< Ping-pong buffers for backward.
};

} // namespace nv

#endif // NV_NN_LAYERS_H
