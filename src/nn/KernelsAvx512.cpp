//===- nn/KernelsAvx512.cpp - AVX-512 fp64 microkernels --------------------===//
//
// AVX-512 variants of the register-blocked GEMM microkernels (this TU is
// compiled -mavx512f; runtime CPUID dispatch in nn/Kernels.cpp picks them
// only on machines with AVX-512F). Same bit-identity story as the AVX2
// tier: gemmRows/gemmTARows chain _mm512_fmadd_pd per output element in
// ascending k, with lanes spanning output columns, so results match the
// scalar and AVX2 tiers bit for bit; gemmTBRows uses per-lane partial
// sums over k and matches only within rounding (per-tier deterministic).
// Column tails use masked loads/stores: dead lanes compute on zeros and
// are never stored, so tail elements keep their one-chain-per-element
// reduction too.
//
//===----------------------------------------------------------------------===//

#include "nn/KernelsArch.h"

// Empty TU unless CMake applied -mavx512f (see KernelsAvx.cpp).
#if defined(__AVX512F__)

#include <cmath>
#include <immintrin.h>

// GCC 12's maskz load intrinsics trip -Wmaybe-uninitialized inside
// avx512fintrin.h (GCC PR105593); the mask semantics guarantee every
// consumed lane is written.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

using namespace nv;
using namespace nv::detail;

namespace {

/// 4-row x 16-column microkernel (two zmm per row) with a masked variant
/// for the column tail. \p Lanes selects full stores (16) or the mask.
template <int R>
inline void microGemm16(const double *const *APtr, const Matrix &B, int K,
                        int J, double *const *CPtr, int Lanes) {
  const __mmask8 LoMask =
      Lanes >= 8 ? 0xFF : static_cast<__mmask8>((1u << Lanes) - 1);
  const __mmask8 HiMask =
      Lanes >= 16 ? 0xFF
                  : static_cast<__mmask8>(
                        Lanes > 8 ? (1u << (Lanes - 8)) - 1 : 0);
  __m512d AccLo[R], AccHi[R];
  for (int Rr = 0; Rr < R; ++Rr) {
    AccLo[Rr] = _mm512_setzero_pd();
    AccHi[Rr] = _mm512_setzero_pd();
  }
  for (int Kk = 0; Kk < K; ++Kk) {
    const double *BRow = B.rowPtr(Kk) + J;
    const __m512d B0 = _mm512_maskz_loadu_pd(LoMask, BRow);
    const __m512d B1 = _mm512_maskz_loadu_pd(HiMask, BRow + 8);
    for (int Rr = 0; Rr < R; ++Rr) {
      const __m512d V = _mm512_set1_pd(APtr[Rr][Kk]);
      AccLo[Rr] = _mm512_fmadd_pd(V, B0, AccLo[Rr]);
      AccHi[Rr] = _mm512_fmadd_pd(V, B1, AccHi[Rr]);
    }
  }
  for (int Rr = 0; Rr < R; ++Rr) {
    _mm512_mask_storeu_pd(CPtr[Rr] + J, LoMask, AccLo[Rr]);
    _mm512_mask_storeu_pd(CPtr[Rr] + J + 8, HiMask, AccHi[Rr]);
  }
}

template <int R>
void gemmRowsImpl(const double *const *APtr, const Matrix &B, int K, int N,
                  double *const *CPtr) {
  int J = 0;
  for (; J + 16 <= N; J += 16)
    microGemm16<R>(APtr, B, K, J, CPtr, 16);
  if (J < N)
    microGemm16<R>(APtr, B, K, J, CPtr, N - J);
}

template <int R>
void gemmTARowsImpl(const Matrix &A, int I0, const Matrix &B, int N,
                    double *const *CPtr, bool Accumulate) {
  const int KRows = A.rows();
  for (int J = 0; J < N; J += 16) {
    const int Lanes = std::min(16, N - J);
    const __mmask8 LoMask =
        Lanes >= 8 ? 0xFF : static_cast<__mmask8>((1u << Lanes) - 1);
    const __mmask8 HiMask =
        Lanes >= 16 ? 0xFF
                    : static_cast<__mmask8>(
                          Lanes > 8 ? (1u << (Lanes - 8)) - 1 : 0);
    __m512d AccLo[R], AccHi[R];
    for (int Rr = 0; Rr < R; ++Rr) {
      AccLo[Rr] = _mm512_setzero_pd();
      AccHi[Rr] = _mm512_setzero_pd();
    }
    for (int Kk = 0; Kk < KRows; ++Kk) {
      const double *AVals = A.rowPtr(Kk) + I0;
      const double *BRow = B.rowPtr(Kk) + J;
      const __m512d B0 = _mm512_maskz_loadu_pd(LoMask, BRow);
      const __m512d B1 = _mm512_maskz_loadu_pd(HiMask, BRow + 8);
      for (int Rr = 0; Rr < R; ++Rr) {
        const __m512d V = _mm512_set1_pd(AVals[Rr]);
        AccLo[Rr] = _mm512_fmadd_pd(V, B0, AccLo[Rr]);
        AccHi[Rr] = _mm512_fmadd_pd(V, B1, AccHi[Rr]);
      }
    }
    for (int Rr = 0; Rr < R; ++Rr) {
      if (Accumulate) {
        AccLo[Rr] = _mm512_add_pd(
            _mm512_maskz_loadu_pd(LoMask, CPtr[Rr] + J), AccLo[Rr]);
        AccHi[Rr] = _mm512_add_pd(
            _mm512_maskz_loadu_pd(HiMask, CPtr[Rr] + J + 8), AccHi[Rr]);
      }
      _mm512_mask_storeu_pd(CPtr[Rr] + J, LoMask, AccLo[Rr]);
      _mm512_mask_storeu_pd(CPtr[Rr] + J + 8, HiMask, AccHi[Rr]);
    }
  }
}

/// Fixed-order horizontal sum: halves first, then the AVX2-style
/// (l0+l2) + (l1+l3) within the 256-bit sum.
inline double hsum(__m512d V) {
  const __m256d Lo = _mm512_castpd512_pd256(V);
  const __m256d Hi = _mm512_extractf64x4_pd(V, 1);
  const __m256d Sum = _mm256_add_pd(Lo, Hi);
  const __m128d Lo2 = _mm256_castpd256_pd128(Sum);
  const __m128d Hi2 = _mm256_extractf128_pd(Sum, 1);
  const __m128d Sum2 = _mm_add_pd(Lo2, Hi2);
  return _mm_cvtsd_f64(_mm_add_sd(Sum2, _mm_unpackhi_pd(Sum2, Sum2)));
}

} // namespace

void nv::detail::gemmRowsAvx512(Matrix &C, const Matrix &A, const Matrix &B,
                                int RowBegin, int RowEnd) {
  const int K = A.cols(), N = B.cols();
  for (int I0 = RowBegin; I0 < RowEnd; I0 += KernelMR) {
    const int MCur = std::min(KernelMR, RowEnd - I0);
    const double *APtr[KernelMR];
    double *CPtr[KernelMR];
    for (int Rr = 0; Rr < MCur; ++Rr) {
      APtr[Rr] = A.rowPtr(I0 + Rr);
      CPtr[Rr] = C.rowPtr(I0 + Rr);
    }
    switch (MCur) {
    case 4:
      gemmRowsImpl<4>(APtr, B, K, N, CPtr);
      break;
    case 3:
      gemmRowsImpl<3>(APtr, B, K, N, CPtr);
      break;
    case 2:
      gemmRowsImpl<2>(APtr, B, K, N, CPtr);
      break;
    default:
      gemmRowsImpl<1>(APtr, B, K, N, CPtr);
      break;
    }
  }
}

void nv::detail::gemmTARowsAvx512(Matrix &C, const Matrix &A,
                                  const Matrix &B, bool Accumulate,
                                  int RowBegin, int RowEnd) {
  const int N = B.cols();
  for (int I0 = RowBegin; I0 < RowEnd; I0 += KernelMR) {
    const int MCur = std::min(KernelMR, RowEnd - I0);
    double *CPtr[KernelMR];
    for (int Rr = 0; Rr < MCur; ++Rr)
      CPtr[Rr] = C.rowPtr(I0 + Rr);
    switch (MCur) {
    case 4:
      gemmTARowsImpl<4>(A, I0, B, N, CPtr, Accumulate);
      break;
    case 3:
      gemmTARowsImpl<3>(A, I0, B, N, CPtr, Accumulate);
      break;
    case 2:
      gemmTARowsImpl<2>(A, I0, B, N, CPtr, Accumulate);
      break;
    default:
      gemmTARowsImpl<1>(A, I0, B, N, CPtr, Accumulate);
      break;
    }
  }
}

void nv::detail::gemmTBRowsAvx512(Matrix &C, const Matrix &A,
                                  const Matrix &B, int RowBegin,
                                  int RowEnd) {
  const int K = A.cols(), N = B.rows();
  for (int I = RowBegin; I < RowEnd; ++I) {
    const double *ARow = A.rowPtr(I);
    double *CRow = C.rowPtr(I);
    int J = 0;
    for (; J + 4 <= N; J += 4) {
      const double *B0 = B.rowPtr(J + 0);
      const double *B1 = B.rowPtr(J + 1);
      const double *B2 = B.rowPtr(J + 2);
      const double *B3 = B.rowPtr(J + 3);
      __m512d S0 = _mm512_setzero_pd(), S1 = _mm512_setzero_pd();
      __m512d S2 = _mm512_setzero_pd(), S3 = _mm512_setzero_pd();
      int Kk = 0;
      for (; Kk + 8 <= K; Kk += 8) {
        const __m512d V = _mm512_loadu_pd(ARow + Kk);
        S0 = _mm512_fmadd_pd(V, _mm512_loadu_pd(B0 + Kk), S0);
        S1 = _mm512_fmadd_pd(V, _mm512_loadu_pd(B1 + Kk), S1);
        S2 = _mm512_fmadd_pd(V, _mm512_loadu_pd(B2 + Kk), S2);
        S3 = _mm512_fmadd_pd(V, _mm512_loadu_pd(B3 + Kk), S3);
      }
      double T0 = hsum(S0), T1 = hsum(S1), T2 = hsum(S2), T3 = hsum(S3);
      for (; Kk < K; ++Kk) {
        const double V = ARow[Kk];
        T0 = std::fma(V, B0[Kk], T0);
        T1 = std::fma(V, B1[Kk], T1);
        T2 = std::fma(V, B2[Kk], T2);
        T3 = std::fma(V, B3[Kk], T3);
      }
      CRow[J + 0] = T0;
      CRow[J + 1] = T1;
      CRow[J + 2] = T2;
      CRow[J + 3] = T3;
    }
    for (; J < N; ++J) {
      const double *BRow = B.rowPtr(J);
      __m512d S = _mm512_setzero_pd();
      int Kk = 0;
      for (; Kk + 8 <= K; Kk += 8)
        S = _mm512_fmadd_pd(_mm512_loadu_pd(ARow + Kk),
                            _mm512_loadu_pd(BRow + Kk), S);
      double Sum = hsum(S);
      for (; Kk < K; ++Kk)
        Sum = std::fma(ARow[Kk], BRow[Kk], Sum);
      CRow[J] = Sum;
    }
  }
}

#endif // __AVX512F__
