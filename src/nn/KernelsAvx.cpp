//===- nn/KernelsAvx.cpp - AVX2/FMA fp64 + int8 microkernels ---------------===//
//
// Explicit AVX2 register-blocked microkernels (this TU is compiled
// -mavx2 -mfma; everything else in the library stays portable — dispatch
// happens at runtime in nn/Kernels.cpp).
//
// Bit-identity: in gemmRows/gemmTARows every vector lane owns one output
// element and chains _mm256_fmadd_pd in ascending k — the same
// one-rounding-per-step sequence the scalar tier's std::fma chain
// performs — so these kernels return bit-identical matrices to the scalar
// tier (asserted in tests/NNTest.cpp). gemmTBRows vectorizes over k with
// per-lane partial sums instead (the dot-product layout has no profitable
// column vectorization), so it matches other tiers only within rounding;
// it is still deterministic and pool-size-invariant for a fixed tier.
// int8MatVec accumulates integers, which are exact in any order.
//
//===----------------------------------------------------------------------===//

#include "nn/KernelsArch.h"

// Compiled out entirely (empty TU) unless CMake applied -mavx2 -mfma to
// this file; nn/Kernels.cpp only references these symbols when it gets the
// matching NV_HAVE_AVX2_KERNELS define, so NV_NATIVE_KERNELS=OFF builds
// need no link-time stubs.
#if defined(__AVX2__) && defined(__FMA__)

#include <algorithm>
#include <cmath>
#include <cstring>
#include <immintrin.h>

using namespace nv;
using namespace nv::detail;

namespace {

/// 4-row x 8-column register microkernel: 8 accumulator ymm (one lane per
/// output element), two B loads and R broadcasts per k step.
template <int R>
inline void microGemm8(const double *const *APtr, const Matrix &B, int K,
                       int J, double *const *CPtr) {
  __m256d AccLo[R], AccHi[R];
  for (int Rr = 0; Rr < R; ++Rr) {
    AccLo[Rr] = _mm256_setzero_pd();
    AccHi[Rr] = _mm256_setzero_pd();
  }
  for (int Kk = 0; Kk < K; ++Kk) {
    const double *BRow = B.rowPtr(Kk) + J;
    const __m256d B0 = _mm256_loadu_pd(BRow);
    const __m256d B1 = _mm256_loadu_pd(BRow + 4);
    for (int Rr = 0; Rr < R; ++Rr) {
      const __m256d V = _mm256_set1_pd(APtr[Rr][Kk]);
      AccLo[Rr] = _mm256_fmadd_pd(V, B0, AccLo[Rr]);
      AccHi[Rr] = _mm256_fmadd_pd(V, B1, AccHi[Rr]);
    }
  }
  for (int Rr = 0; Rr < R; ++Rr) {
    _mm256_storeu_pd(CPtr[Rr] + J, AccLo[Rr]);
    _mm256_storeu_pd(CPtr[Rr] + J + 4, AccHi[Rr]);
  }
}

/// 4-column edge microkernel (one ymm per row).
template <int R>
inline void microGemm4(const double *const *APtr, const Matrix &B, int K,
                       int J, double *const *CPtr) {
  __m256d Acc[R];
  for (int Rr = 0; Rr < R; ++Rr)
    Acc[Rr] = _mm256_setzero_pd();
  for (int Kk = 0; Kk < K; ++Kk) {
    const __m256d B0 = _mm256_loadu_pd(B.rowPtr(Kk) + J);
    for (int Rr = 0; Rr < R; ++Rr)
      Acc[Rr] = _mm256_fmadd_pd(_mm256_set1_pd(APtr[Rr][Kk]), B0, Acc[Rr]);
  }
  for (int Rr = 0; Rr < R; ++Rr)
    _mm256_storeu_pd(CPtr[Rr] + J, Acc[Rr]);
}

template <int R>
void gemmRowsImpl(const double *const *APtr, const Matrix &B, int K, int N,
                  double *const *CPtr) {
  int J = 0;
  for (; J + 8 <= N; J += 8)
    microGemm8<R>(APtr, B, K, J, CPtr);
  for (; J + 4 <= N; J += 4)
    microGemm4<R>(APtr, B, K, J, CPtr);
  for (; J < N; ++J)
    for (int Rr = 0; Rr < R; ++Rr) {
      double Acc = 0.0;
      for (int Kk = 0; Kk < K; ++Kk)
        Acc = std::fma(APtr[Rr][Kk], B.rowPtr(Kk)[J], Acc);
      CPtr[Rr][J] = Acc;
    }
}

/// Transposed-A flavour: the R per-k multiplicands sit contiguously in
/// each A row (A.rowPtr(k) + I0), everything else matches microGemm8/4.
template <int R>
void gemmTARowsImpl(const Matrix &A, int I0, const Matrix &B, int N,
                    double *const *CPtr, bool Accumulate) {
  const int KRows = A.rows();
  int J = 0;
  for (; J + 8 <= N; J += 8) {
    __m256d AccLo[R], AccHi[R];
    for (int Rr = 0; Rr < R; ++Rr) {
      AccLo[Rr] = _mm256_setzero_pd();
      AccHi[Rr] = _mm256_setzero_pd();
    }
    for (int Kk = 0; Kk < KRows; ++Kk) {
      const double *AVals = A.rowPtr(Kk) + I0;
      const double *BRow = B.rowPtr(Kk) + J;
      const __m256d B0 = _mm256_loadu_pd(BRow);
      const __m256d B1 = _mm256_loadu_pd(BRow + 4);
      for (int Rr = 0; Rr < R; ++Rr) {
        const __m256d V = _mm256_set1_pd(AVals[Rr]);
        AccLo[Rr] = _mm256_fmadd_pd(V, B0, AccLo[Rr]);
        AccHi[Rr] = _mm256_fmadd_pd(V, B1, AccHi[Rr]);
      }
    }
    for (int Rr = 0; Rr < R; ++Rr) {
      if (Accumulate) {
        AccLo[Rr] = _mm256_add_pd(_mm256_loadu_pd(CPtr[Rr] + J), AccLo[Rr]);
        AccHi[Rr] =
            _mm256_add_pd(_mm256_loadu_pd(CPtr[Rr] + J + 4), AccHi[Rr]);
      }
      _mm256_storeu_pd(CPtr[Rr] + J, AccLo[Rr]);
      _mm256_storeu_pd(CPtr[Rr] + J + 4, AccHi[Rr]);
    }
  }
  for (; J + 4 <= N; J += 4) {
    __m256d Acc[R];
    for (int Rr = 0; Rr < R; ++Rr)
      Acc[Rr] = _mm256_setzero_pd();
    for (int Kk = 0; Kk < KRows; ++Kk) {
      const double *AVals = A.rowPtr(Kk) + I0;
      const __m256d B0 = _mm256_loadu_pd(B.rowPtr(Kk) + J);
      for (int Rr = 0; Rr < R; ++Rr)
        Acc[Rr] = _mm256_fmadd_pd(_mm256_set1_pd(AVals[Rr]), B0, Acc[Rr]);
    }
    for (int Rr = 0; Rr < R; ++Rr) {
      if (Accumulate)
        Acc[Rr] = _mm256_add_pd(_mm256_loadu_pd(CPtr[Rr] + J), Acc[Rr]);
      _mm256_storeu_pd(CPtr[Rr] + J, Acc[Rr]);
    }
  }
  for (; J < N; ++J)
    for (int Rr = 0; Rr < R; ++Rr) {
      double Acc = 0.0;
      for (int Kk = 0; Kk < KRows; ++Kk)
        Acc = std::fma(A.rowPtr(Kk)[I0 + Rr], B.rowPtr(Kk)[J], Acc);
      if (Accumulate)
        CPtr[Rr][J] += Acc;
      else
        CPtr[Rr][J] = Acc;
    }
}

/// Fixed-order horizontal sum: (l0+l2) + (l1+l3).
inline double hsum(__m256d V) {
  const __m128d Lo = _mm256_castpd256_pd128(V);
  const __m128d Hi = _mm256_extractf128_pd(V, 1);
  const __m128d Sum = _mm_add_pd(Lo, Hi);
  return _mm_cvtsd_f64(_mm_add_sd(Sum, _mm_unpackhi_pd(Sum, Sum)));
}

} // namespace

void nv::detail::gemmRowsAvx2(Matrix &C, const Matrix &A, const Matrix &B,
                              int RowBegin, int RowEnd) {
  const int K = A.cols(), N = B.cols();
  for (int I0 = RowBegin; I0 < RowEnd; I0 += KernelMR) {
    const int MCur = std::min(KernelMR, RowEnd - I0);
    const double *APtr[KernelMR];
    double *CPtr[KernelMR];
    for (int Rr = 0; Rr < MCur; ++Rr) {
      APtr[Rr] = A.rowPtr(I0 + Rr);
      CPtr[Rr] = C.rowPtr(I0 + Rr);
    }
    switch (MCur) {
    case 4:
      gemmRowsImpl<4>(APtr, B, K, N, CPtr);
      break;
    case 3:
      gemmRowsImpl<3>(APtr, B, K, N, CPtr);
      break;
    case 2:
      gemmRowsImpl<2>(APtr, B, K, N, CPtr);
      break;
    default:
      gemmRowsImpl<1>(APtr, B, K, N, CPtr);
      break;
    }
  }
}

void nv::detail::gemmTARowsAvx2(Matrix &C, const Matrix &A, const Matrix &B,
                                bool Accumulate, int RowBegin, int RowEnd) {
  const int N = B.cols();
  for (int I0 = RowBegin; I0 < RowEnd; I0 += KernelMR) {
    const int MCur = std::min(KernelMR, RowEnd - I0);
    double *CPtr[KernelMR];
    for (int Rr = 0; Rr < MCur; ++Rr)
      CPtr[Rr] = C.rowPtr(I0 + Rr);
    switch (MCur) {
    case 4:
      gemmTARowsImpl<4>(A, I0, B, N, CPtr, Accumulate);
      break;
    case 3:
      gemmTARowsImpl<3>(A, I0, B, N, CPtr, Accumulate);
      break;
    case 2:
      gemmTARowsImpl<2>(A, I0, B, N, CPtr, Accumulate);
      break;
    default:
      gemmTARowsImpl<1>(A, I0, B, N, CPtr, Accumulate);
      break;
    }
  }
}

void nv::detail::gemmTBRowsAvx2(Matrix &C, const Matrix &A, const Matrix &B,
                                int RowBegin, int RowEnd) {
  const int K = A.cols(), N = B.rows();
  for (int I = RowBegin; I < RowEnd; ++I) {
    const double *ARow = A.rowPtr(I);
    double *CRow = C.rowPtr(I);
    int J = 0;
    for (; J + 4 <= N; J += 4) {
      const double *B0 = B.rowPtr(J + 0);
      const double *B1 = B.rowPtr(J + 1);
      const double *B2 = B.rowPtr(J + 2);
      const double *B3 = B.rowPtr(J + 3);
      __m256d S0 = _mm256_setzero_pd(), S1 = _mm256_setzero_pd();
      __m256d S2 = _mm256_setzero_pd(), S3 = _mm256_setzero_pd();
      int Kk = 0;
      for (; Kk + 4 <= K; Kk += 4) {
        const __m256d V = _mm256_loadu_pd(ARow + Kk);
        S0 = _mm256_fmadd_pd(V, _mm256_loadu_pd(B0 + Kk), S0);
        S1 = _mm256_fmadd_pd(V, _mm256_loadu_pd(B1 + Kk), S1);
        S2 = _mm256_fmadd_pd(V, _mm256_loadu_pd(B2 + Kk), S2);
        S3 = _mm256_fmadd_pd(V, _mm256_loadu_pd(B3 + Kk), S3);
      }
      double T0 = hsum(S0), T1 = hsum(S1), T2 = hsum(S2), T3 = hsum(S3);
      for (; Kk < K; ++Kk) {
        const double V = ARow[Kk];
        T0 = std::fma(V, B0[Kk], T0);
        T1 = std::fma(V, B1[Kk], T1);
        T2 = std::fma(V, B2[Kk], T2);
        T3 = std::fma(V, B3[Kk], T3);
      }
      CRow[J + 0] = T0;
      CRow[J + 1] = T1;
      CRow[J + 2] = T2;
      CRow[J + 3] = T3;
    }
    for (; J < N; ++J) {
      const double *BRow = B.rowPtr(J);
      __m256d S = _mm256_setzero_pd();
      int Kk = 0;
      for (; Kk + 4 <= K; Kk += 4)
        S = _mm256_fmadd_pd(_mm256_loadu_pd(ARow + Kk),
                            _mm256_loadu_pd(BRow + Kk), S);
      double Sum = hsum(S);
      for (; Kk < K; ++Kk)
        Sum = std::fma(ARow[Kk], BRow[Kk], Sum);
      CRow[J] = Sum;
    }
  }
}

namespace {

/// One 256-bit madd_epi16 against a broadcast X k-pair accumulates two
/// k steps for 8 outputs in lane order — no horizontal reduction, which
/// is what made a per-output dot-product layout slower than the fp64
/// GEMM at this repo's small layer widths. Each weight load is shared
/// across R row broadcasts, so the weight panel streams once per row
/// quad (the int8 analogue of microGemm8's MR blocking); dequant
/// happens in-register on the way out.
template <int R>
void int8PanelImpl(const int16_t *X, size_t XStride, const int16_t *WqPair,
                   int KPad, int OutPad, int OCur, const double *Sx,
                   const double *WScale, double *Y, size_t YStride) {
  const int K2 = KPad / 2; // KPad is a multiple of 32.
  const size_t Stride = static_cast<size_t>(OutPad) * 2;
  __m256d SxV[R];
  for (int Rr = 0; Rr < R; ++Rr)
    SxV[Rr] = _mm256_set1_pd(Sx[Rr]);

  // (Sx * WScale[o]) * acc — the same two multiplies in the same order
  // as the scalar tier, so dequant cannot split the bit-identity.
  const auto Dequant8 = [&](__m256i Sum, int Rr, int O) {
    const __m256d Lo = _mm256_cvtepi32_pd(_mm256_castsi256_si128(Sum));
    const __m256d Hi = _mm256_cvtepi32_pd(_mm256_extracti128_si256(Sum, 1));
    double *YRow = Y + Rr * YStride;
    _mm256_storeu_pd(
        YRow + O,
        _mm256_mul_pd(_mm256_mul_pd(SxV[Rr], _mm256_loadu_pd(WScale + O)),
                      Lo));
    _mm256_storeu_pd(
        YRow + O + 4,
        _mm256_mul_pd(
            _mm256_mul_pd(SxV[Rr], _mm256_loadu_pd(WScale + O + 4)), Hi));
  };

  int O = 0;
  for (; O + 8 <= OCur; O += 8) {
    const int16_t *WCol = WqPair + static_cast<size_t>(O) * 2;
    __m256i Acc[R];
    for (int Rr = 0; Rr < R; ++Rr)
      Acc[Rr] = _mm256_setzero_si256();
    for (int K = 0; K < K2; ++K) {
      const __m256i Wv = _mm256_loadu_si256(
          reinterpret_cast<const __m256i *>(WCol + K * Stride));
      for (int Rr = 0; Rr < R; ++Rr) {
        int32_t Pair;
        std::memcpy(&Pair, X + Rr * XStride + 2 * K, sizeof(Pair));
        Acc[Rr] = _mm256_add_epi32(
            Acc[Rr], _mm256_madd_epi16(_mm256_set1_epi32(Pair), Wv));
      }
    }
    for (int Rr = 0; Rr < R; ++Rr)
      Dequant8(Acc[Rr], Rr, O);
  }
  if (O < OCur) {
    // Output tail: WqPair is zero-padded to OutPad so the full 8-lane
    // block is computable; dequant only the live lanes (WScale/Y end at
    // the true output count).
    const int16_t *WCol = WqPair + static_cast<size_t>(O) * 2;
    __m256i Acc[R];
    for (int Rr = 0; Rr < R; ++Rr)
      Acc[Rr] = _mm256_setzero_si256();
    for (int K = 0; K < K2; ++K) {
      const __m256i Wv = _mm256_loadu_si256(
          reinterpret_cast<const __m256i *>(WCol + K * Stride));
      for (int Rr = 0; Rr < R; ++Rr) {
        int32_t Pair;
        std::memcpy(&Pair, X + Rr * XStride + 2 * K, sizeof(Pair));
        Acc[Rr] = _mm256_add_epi32(
            Acc[Rr], _mm256_madd_epi16(_mm256_set1_epi32(Pair), Wv));
      }
    }
    for (int Rr = 0; Rr < R; ++Rr) {
      alignas(32) int32_t Tmp[8];
      _mm256_store_si256(reinterpret_cast<__m256i *>(Tmp), Acc[Rr]);
      double *YRow = Y + Rr * YStride;
      for (int T = 0; O + T < OCur; ++T)
        YRow[O + T] = (Sx[Rr] * WScale[O + T]) * static_cast<double>(Tmp[T]);
    }
  }
}

} // namespace

void nv::detail::int8PanelAvx2(const int16_t *X, size_t XStride, int MR,
                               const int8_t *, const int16_t *WqPair,
                               int KPad, int OutPad, int OCur,
                               const double *Sx, const double *WScale,
                               double *Y, size_t YStride) {
  switch (MR) {
  case 4:
    int8PanelImpl<4>(X, XStride, WqPair, KPad, OutPad, OCur, Sx, WScale, Y,
                     YStride);
    break;
  case 3:
    int8PanelImpl<3>(X, XStride, WqPair, KPad, OutPad, OCur, Sx, WScale, Y,
                     YStride);
    break;
  case 2:
    int8PanelImpl<2>(X, XStride, WqPair, KPad, OutPad, OCur, Sx, WScale, Y,
                     YStride);
    break;
  default:
    int8PanelImpl<1>(X, XStride, WqPair, KPad, OutPad, OCur, Sx, WScale, Y,
                     YStride);
    break;
  }
}

double nv::detail::quantizeRowAvx2(const double *Src, int N, int16_t *Dst) {
  const __m256d AbsMask = _mm256_castsi256_pd(
      _mm256_set1_epi64x(0x7fffffffffffffffLL));
  __m256d Max4 = _mm256_setzero_pd();
  int J = 0;
  for (; J + 4 <= N; J += 4)
    Max4 = _mm256_max_pd(Max4,
                         _mm256_and_pd(AbsMask, _mm256_loadu_pd(Src + J)));
  // max is exact and order-free, so this matches the scalar tier's scan.
  const __m128d MaxHalf = _mm_max_pd(_mm256_castpd256_pd128(Max4),
                                     _mm256_extractf128_pd(Max4, 1));
  double MaxAbs =
      _mm_cvtsd_f64(_mm_max_sd(MaxHalf, _mm_unpackhi_pd(MaxHalf, MaxHalf)));
  for (; J < N; ++J)
    MaxAbs = std::max(MaxAbs, std::fabs(Src[J]));
  if (MaxAbs == 0.0) {
    std::fill(Dst, Dst + N, static_cast<int16_t>(0));
    return 1.0;
  }
  const double Scale = MaxAbs / 127.0;
  const double InvScale = 127.0 / MaxAbs;
  const __m256d Inv = _mm256_set1_pd(InvScale);
  J = 0;
  for (; J + 4 <= N; J += 4) {
    // cvtpd rounds to nearest even under the default mode — exactly what
    // std::lrint does on the scalar tier. |x| * Inv <= 127 by
    // construction, so the int16 pack cannot saturate.
    const __m128i I32 =
        _mm256_cvtpd_epi32(_mm256_mul_pd(_mm256_loadu_pd(Src + J), Inv));
    _mm_storel_epi64(reinterpret_cast<__m128i *>(Dst + J),
                     _mm_packs_epi32(I32, I32));
  }
  for (; J < N; ++J) {
    long Q = std::lrint(Src[J] * InvScale);
    Q = std::min(127L, std::max(-127L, Q));
    Dst[J] = static_cast<int16_t>(Q);
  }
  return Scale;
}

#endif // __AVX2__ && __FMA__
