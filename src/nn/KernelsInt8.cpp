//===- nn/KernelsInt8.cpp - Int8 quantized inference dispatcher ------------===//
//
// Weight quantization plus the int8 GEMM entry point. Activation rows are
// quantized to int8 range (stored widened to int16) per call; the inner
// panel dispatches to the AVX2 madd kernel when available. Int32
// accumulation is exact for this repo's K ranges (K <= KPad <= a few
// hundred, |q| <= 127 → |acc| < KPad * 127^2 << 2^31), so every tier
// produces identical accumulators and the scalar tier is a true bit
// reference, not just a tolerance reference.
//
//===----------------------------------------------------------------------===//

#include "nn/KernelsInt8.h"

#include "nn/KernelsArch.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace nv;
using namespace nv::detail;

namespace {

/// KPad granularity: one AVX2 int8 chunk (32 bytes). Zero padding keeps
/// vector tails out of the kernels entirely.
constexpr int KPadAlign = 32;

/// WqPair output granularity: one 256-bit row of 8 interleaved pairs.
constexpr int OutPadAlign = 8;

void int8PanelScalar(const int16_t *X, size_t XStride, int MR,
                     const int8_t *Wq, const int16_t * /*WqPair*/, int KPad,
                     int /*OutPad*/, int OCur, const double *Sx,
                     const double *WScale, double *Y, size_t YStride) {
  for (int Rr = 0; Rr < MR; ++Rr) {
    const int16_t *XRow = X + Rr * XStride;
    double *YRow = Y + Rr * YStride;
    for (int O = 0; O < OCur; ++O) {
      const int8_t *WRow = Wq + static_cast<size_t>(O) * KPad;
      int32_t Sum = 0;
      for (int Kk = 0; Kk < KPad; ++Kk)
        Sum +=
            static_cast<int32_t>(XRow[Kk]) * static_cast<int32_t>(WRow[Kk]);
      // Two multiplies in this exact order — the vector tiers' dequant
      // performs the same sequence lane-wise, keeping output bits equal.
      YRow[O] = (Sx[Rr] * WScale[O]) * static_cast<double>(Sum);
    }
  }
}

Int8PanelFn int8PanelFor(KernelIsa Isa) {
#ifdef NV_HAVE_AVX2_KERNELS
  if (Isa >= KernelIsa::Avx2)
    return int8PanelAvx2;
#endif
  (void)Isa;
  return int8PanelScalar;
}

/// Symmetric int8-range quantization of one fp64 row: scale = maxabs /
/// 127 (1.0 for an all-zero row so dequant stays well-defined), values
/// rounded to nearest and clamped. Pad entries are zeroed by the caller.
double quantizeRowScalar(const double *Src, int N, int16_t *Dst) {
  double MaxAbs = 0.0;
  for (int J = 0; J < N; ++J)
    MaxAbs = std::max(MaxAbs, std::fabs(Src[J]));
  if (MaxAbs == 0.0) {
    std::fill(Dst, Dst + N, static_cast<int16_t>(0));
    return 1.0;
  }
  const double Scale = MaxAbs / 127.0;
  const double Inv = 127.0 / MaxAbs;
  for (int J = 0; J < N; ++J) {
    long Q = std::lrint(Src[J] * Inv);
    Q = std::min(127L, std::max(-127L, Q));
    Dst[J] = static_cast<int16_t>(Q);
  }
  return Scale;
}

QuantRowFn quantRowFor(KernelIsa Isa) {
#ifdef NV_HAVE_AVX2_KERNELS
  if (Isa >= KernelIsa::Avx2)
    return quantizeRowAvx2;
#endif
  (void)Isa;
  return quantizeRowScalar;
}

} // namespace

void nv::quantizeLinearWeights(const Matrix &W, QuantizedLinear &Q) {
  const int In = W.rows(), Out = W.cols();
  Q.In = In;
  Q.Out = Out;
  Q.KPad = (In + KPadAlign - 1) / KPadAlign * KPadAlign;
  Q.OutPad = (Out + OutPadAlign - 1) / OutPadAlign * OutPadAlign;
  Q.Wq.assign(static_cast<size_t>(Out) * Q.KPad, 0);
  Q.WScale.assign(static_cast<size_t>(Out), 1.0);
  // Transpose W column by column into contiguous rows of the scalar
  // layout (int8, the bit reference the vector layout must mirror).
  std::vector<double> Col(static_cast<size_t>(In));
  std::vector<int16_t> ColQ(static_cast<size_t>(In));
  for (int O = 0; O < Out; ++O) {
    for (int I = 0; I < In; ++I)
      Col[I] = W.rowPtr(I)[O];
    Q.WScale[O] = quantizeRowScalar(Col.data(), In, ColQ.data());
    int8_t *WRow = Q.Wq.data() + static_cast<size_t>(O) * Q.KPad;
    for (int I = 0; I < In; ++I)
      WRow[I] = static_cast<int8_t>(ColQ[I]);
  }
  // Interleaved int16 panel for the vector tiers: for each k-pair, OutPad
  // outputs x (even k, odd k). Same integer values as Wq, so the exact
  // int32 accumulation makes the two layouts bit-equivalent.
  const int K2 = Q.KPad / 2;
  Q.WqPair.assign(static_cast<size_t>(K2) * Q.OutPad * 2, 0);
  for (int O = 0; O < Out; ++O) {
    const int8_t *WRow = Q.Wq.data() + static_cast<size_t>(O) * Q.KPad;
    for (int K = 0; K < K2; ++K) {
      int16_t *Pair =
          Q.WqPair.data() + (static_cast<size_t>(K) * Q.OutPad + O) * 2;
      Pair[0] = WRow[2 * K];
      Pair[1] = WRow[2 * K + 1];
    }
  }
}

void nv::gemmQuantInto(Matrix &Y, const Matrix &X, const QuantizedLinear &Q,
                       const Matrix *BiasRow, Activation Act,
                       QuantScratch &Scratch, ThreadPool *Pool) {
  assert(Q.ready() && "gemmQuantInto on unquantized weights");
  assert(X.cols() == Q.In && "gemmQuantInto shape mismatch");
  assert(!BiasRow ||
         (BiasRow->rows() == 1 && BiasRow->cols() == Q.Out) &&
             "bias must be 1 x Out");
  const int M = X.rows(), Out = Q.Out, KPad = Q.KPad;
  Y.resize(M, Out);
  const double *Bias = BiasRow ? BiasRow->rowPtr(0) : nullptr;
  const KernelIsa Isa = kernelIsa();
  const Int8PanelFn PanelKernel = int8PanelFor(Isa);
  const QuantRowFn QuantRow = quantRowFor(Isa);

  Scratch.Xq.resize(static_cast<size_t>(M) * KPad);
  Scratch.XScale.resize(static_cast<size_t>(M));

  auto Panel = [&](int RowBegin, int RowEnd) {
    for (int I0 = RowBegin; I0 < RowEnd; I0 += KernelMR) {
      const int MCur = std::min(KernelMR, RowEnd - I0);
      for (int Rr = 0; Rr < MCur; ++Rr) {
        const int I = I0 + Rr;
        int16_t *XqRow = Scratch.Xq.data() + static_cast<size_t>(I) * KPad;
        Scratch.XScale[I] = QuantRow(X.rowPtr(I), Q.In, XqRow);
        std::fill(XqRow + Q.In, XqRow + KPad, static_cast<int16_t>(0));
      }
      PanelKernel(Scratch.Xq.data() + static_cast<size_t>(I0) * KPad, KPad,
                  MCur, Q.Wq.data(), Q.WqPair.data(), KPad, Q.OutPad, Out,
                  Scratch.XScale.data() + I0, Q.WScale.data(), Y.rowPtr(I0),
                  static_cast<size_t>(Y.cols()));
      for (int Rr = 0; Rr < MCur; ++Rr)
        epilogueRow(Y.rowPtr(I0 + Rr), Bias, Out, Act);
    }
  };
  forEachKernelRowPanel(Pool, M,
                        static_cast<long long>(M) * KPad * Out, Panel);
}
