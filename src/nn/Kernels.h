//===- nn/Kernels.h - Blocked, in-place NN math kernels ---------*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The NN hot-path kernels: cache-blocked GEMM variants that write into
/// caller-owned matrices (no per-call temporaries), with a fused
/// bias + activation epilogue and optional row-panel parallelism over a
/// ThreadPool.
///
/// Determinism contract: for every output element the reduction runs in
/// ascending-k order, independent of the row-panel partition — so results
/// are bit-identical regardless of pool size (or no pool at all), and the
/// training subsystem's "bit-identical across worker counts" guarantee
/// survives kernel parallelism. The kernels also match the naive reference
/// implementations in nn/Matrix.h element for element (asserted in
/// tests/NNTest.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef NV_NN_KERNELS_H
#define NV_NN_KERNELS_H

#include "nn/Matrix.h"

namespace nv {

class ThreadPool;

/// Supported activation functions (fusable into the GEMM epilogue).
enum class Activation { Tanh, ReLU, Identity };

/// Applies \p Act element-wise in place.
void applyActivation(Matrix &Y, Activation Act);

/// C = act(A * B + bias): the fused linear-layer forward. \p BiasRow may
/// be null (no bias) and must be 1 x B.cols() otherwise. C is resized to
/// A.rows() x B.cols(); it must not alias A or B. When \p Pool is non-null
/// and the problem is big enough, row panels of C run across the pool.
void gemmInto(Matrix &C, const Matrix &A, const Matrix &B,
              const Matrix *BiasRow = nullptr,
              Activation Act = Activation::Identity,
              ThreadPool *Pool = nullptr);

/// C (+)= A^T * B with A (R x M), B (R x N), C (M x N). \p Accumulate
/// selects += (gradient accumulation) vs overwrite. C must not alias.
void gemmTAInto(Matrix &C, const Matrix &A, const Matrix &B,
                bool Accumulate = false, ThreadPool *Pool = nullptr);

/// C = A * B^T with A (M x K), B (N x K), C (M x N). C must not alias.
void gemmTBInto(Matrix &C, const Matrix &A, const Matrix &B,
                ThreadPool *Pool = nullptr);

/// Out (+)= column-wise sums of A; Out is resized to 1 x A.cols() when not
/// accumulating (and must already be 1 x A.cols() when it is).
void sumRowsInto(Matrix &Out, const Matrix &A, bool Accumulate = false);

} // namespace nv

#endif // NV_NN_KERNELS_H
