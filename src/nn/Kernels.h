//===- nn/Kernels.h - Blocked, in-place NN math kernels ---------*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The NN hot-path kernels: cache-blocked GEMM variants that write into
/// caller-owned matrices (no per-call temporaries), with a fused
/// bias + activation epilogue and optional row-panel parallelism over a
/// ThreadPool.
///
/// The GEMM inner loops are explicit SIMD microkernels (AVX2/FMA and
/// AVX-512 translation units, see nn/KernelsAvx*.cpp) selected once at
/// runtime by CPUID, with a portable scalar fallback. The `NV_KERNEL_ISA`
/// environment knob (`scalar` / `avx2` / `avx512`) clamps the dispatch
/// down for testing, and setKernelIsa() does the same in-process (the ISA
/// equivalence tests iterate every tier in one binary). Full design notes:
/// docs/kernels.md.
///
/// Determinism contract (docs/kernels.md has the long form):
///  - gemmInto / gemmTAInto: every output element is one ascending-k chain
///    of *fused* multiply-adds (hardware FMA in the SIMD tiers, std::fma
///    in the scalar tier), and vector lanes span output columns — so each
///    element's reduction order is independent of the row-panel partition
///    AND of the dispatched ISA. Results are bit-identical at any pool
///    size and across scalar/AVX2/AVX-512, and the training subsystem's
///    "bit-identical across worker counts" guarantee survives both kernel
///    parallelism and ISA dispatch.
///  - gemmTBInto: the dot-product layout vectorizes over k with per-lane
///    partial sums, so it is deterministic and pool-size-invariant *per
///    ISA tier* but NOT bit-identical across tiers (it matches within
///    rounding; the backward pass never mixes tiers within a run).
///  - The fused activation epilogue is shared code across every tier
///    (vecTanh spans whole output rows), so it never splits the contract.
///
/// The kernels also match the naive reference implementations in
/// nn/Matrix.h element for element up to FMA rounding (asserted in
/// tests/NNTest.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef NV_NN_KERNELS_H
#define NV_NN_KERNELS_H

#include "nn/Matrix.h"

namespace nv {

class ThreadPool;

/// Instruction-set tiers the GEMM microkernels are built for. Ordering is
/// meaningful: a higher tier strictly extends the lower ones, and dispatch
/// clamps requests down to what the binary + CPU support.
enum class KernelIsa { Scalar = 0, Avx2 = 1, Avx512 = 2 };

/// Stable lowercase name ("scalar" / "avx2" / "avx512") for logs, statsz,
/// and the NV_KERNEL_ISA knob.
const char *kernelIsaName(KernelIsa Isa);

/// The widest tier this binary was built with AND this machine executes
/// (CPUID). Independent of any override.
KernelIsa detectKernelIsa();

/// The tier the kernels currently dispatch to: detectKernelIsa() clamped
/// by NV_KERNEL_ISA (read once, first use) and by setKernelIsa().
KernelIsa kernelIsa();

/// Clamps dispatch to min(\p Requested, detectKernelIsa()) and returns
/// the tier actually applied. Intended for tests (the ISA matrix switches
/// tiers in-process); not thread-safe against concurrent kernel calls.
KernelIsa setKernelIsa(KernelIsa Requested);

/// Supported activation functions (fusable into the GEMM epilogue).
enum class Activation { Tanh, ReLU, Identity };

/// Applies \p Act element-wise in place.
void applyActivation(Matrix &Y, Activation Act);

/// C = act(A * B + bias): the fused linear-layer forward. \p BiasRow may
/// be null (no bias) and must be 1 x B.cols() otherwise. C is resized to
/// A.rows() x B.cols(); it must not alias A or B. When \p Pool is non-null
/// and the problem is big enough, row panels of C run across the pool.
void gemmInto(Matrix &C, const Matrix &A, const Matrix &B,
              const Matrix *BiasRow = nullptr,
              Activation Act = Activation::Identity,
              ThreadPool *Pool = nullptr);

/// C (+)= A^T * B with A (R x M), B (R x N), C (M x N). \p Accumulate
/// selects += (gradient accumulation) vs overwrite. C must not alias.
void gemmTAInto(Matrix &C, const Matrix &A, const Matrix &B,
                bool Accumulate = false, ThreadPool *Pool = nullptr);

/// C = A * B^T with A (M x K), B (N x K), C (M x N). C must not alias.
void gemmTBInto(Matrix &C, const Matrix &A, const Matrix &B,
                ThreadPool *Pool = nullptr);

/// Out (+)= column-wise sums of A; Out is resized to 1 x A.cols() when not
/// accumulating (and must already be 1 x A.cols() when it is).
void sumRowsInto(Matrix &Out, const Matrix &A, bool Accumulate = false);

} // namespace nv

#endif // NV_NN_KERNELS_H
