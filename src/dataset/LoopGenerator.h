//===- dataset/LoopGenerator.h - Synthetic loop dataset ---------*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The synthetic dataset generator of §3.2: "We built generators that
/// generate more than 10,000 synthetic loop examples automatically from
/// the LLVM vectorization test-suite ... changing the names of the
/// parameters ... the stride, the number of iterations, the functionality,
/// the instructions, and the number of nested loops."
///
/// Each template mirrors a family from the paper (its five printed examples
/// are all present) and randomizes names, bounds, element types, strides,
/// constants, and whether the bound is a literal or a symbolic variable
/// ("unknown loop bounds").
///
//===----------------------------------------------------------------------===//

#ifndef NV_DATASET_LOOPGENERATOR_H
#define NV_DATASET_LOOPGENERATOR_H

#include "support/RNG.h"

#include <string>
#include <vector>

namespace nv {

/// One generated single-kernel program.
struct GeneratedLoop {
  std::string Name;
  std::string Source;
  int Template = 0; ///< Which generator family produced it.
};

/// Template-based random loop program generator.
class LoopGenerator {
public:
  explicit LoopGenerator(uint64_t Seed) : Rng(Seed) {}

  /// Number of distinct templates.
  static constexpr int NumTemplates = 12;

  /// Generates one random program (uniform over templates).
  GeneratedLoop generate();

  /// Generates from a specific template family.
  GeneratedLoop generate(int Template);

  /// Generates \p Count programs.
  std::vector<GeneratedLoop> generateMany(int Count);

private:
  std::string freshName(const char *Base);
  std::string scalarTy();
  long long tripCount();
  /// Emits the bound expression: a literal or `name` of an initialized
  /// global (unknown-at-compile-time bound), declared into \p Globals.
  std::string boundExpr(long long N, std::string &Globals);

  RNG Rng;
  int Counter = 0;
};

} // namespace nv

#endif // NV_DATASET_LOOPGENERATOR_H
