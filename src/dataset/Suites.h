//===- dataset/Suites.h - Fixed benchmark suites ----------------*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fixed program suites behind the paper's evaluation figures:
///
///  - vectorizerTestSuite(): LoopLang ports in the style of LLVM's
///    SingleSource/UnitTests/Vectorizer suite (Fig 2's x-axis).
///  - evaluationBenchmarks(): the twelve held-out benchmarks of Fig 7,
///    covering the features §4 lists (predicates, strided accesses,
///    bitwise ops, unknown bounds, if statements, unknown misalignment,
///    multidimensional arrays, reductions, type conversions, mixed data
///    types).
///  - polyBenchSuite(): six PolyBench-style linear-algebra kernels
///    (Fig 8) written so that polyhedral transforms have real headroom.
///  - miBenchSuite(): six MiBench-style embedded programs (Fig 9) whose
///    runtime is dominated by loops that cannot be vectorized (serial
///    dependences, indirect control), leaving only minor vector headroom.
///
//===----------------------------------------------------------------------===//

#ifndef NV_DATASET_SUITES_H
#define NV_DATASET_SUITES_H

#include <string>
#include <vector>

namespace nv {

/// A named benchmark program.
struct NamedProgram {
  std::string Name;
  std::string Source;
};

std::vector<NamedProgram> vectorizerTestSuite();
std::vector<NamedProgram> evaluationBenchmarks();
std::vector<NamedProgram> polyBenchSuite();
std::vector<NamedProgram> miBenchSuite();

} // namespace nv

#endif // NV_DATASET_SUITES_H
