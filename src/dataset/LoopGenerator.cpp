//===- dataset/LoopGenerator.cpp - Synthetic loop dataset ------------------===//

#include "dataset/LoopGenerator.h"

#include <cassert>
#include <sstream>

using namespace nv;

std::string LoopGenerator::freshName(const char *Base) {
  static const char *const Pool[] = {"a",   "b",   "c",    "d",   "src",
                                     "dst", "buf", "vals", "img", "acc"};
  std::string Name = Rng.nextBernoulli(0.5)
                         ? Pool[Rng.nextBounded(std::size(Pool))]
                         : std::string(Base);
  return Name + std::to_string(Counter++);
}

std::string LoopGenerator::scalarTy() {
  static const char *const Types[] = {"char",  "short", "int",
                                      "int",   "long",  "float",
                                      "float", "double"};
  return Types[Rng.nextBounded(std::size(Types))];
}

long long LoopGenerator::tripCount() {
  static const long long Trips[] = {32,  64,  128,  256,  512,
                                    640, 1024, 2048, 4096};
  return Trips[Rng.nextBounded(std::size(Trips))];
}

std::string LoopGenerator::boundExpr(long long N, std::string &Globals) {
  if (Rng.nextBernoulli(0.25)) {
    // Unknown loop bound: a symbolic global with a runtime value.
    const std::string Name = freshName("n");
    Globals += "int " + Name + " = " + std::to_string(N) + ";\n";
    return Name;
  }
  return std::to_string(N);
}

GeneratedLoop LoopGenerator::generate() {
  return generate(static_cast<int>(Rng.nextBounded(NumTemplates)));
}

std::vector<GeneratedLoop> LoopGenerator::generateMany(int Count) {
  std::vector<GeneratedLoop> All;
  All.reserve(Count);
  for (int I = 0; I < Count; ++I)
    All.push_back(generate());
  return All;
}

GeneratedLoop LoopGenerator::generate(int Template) {
  assert(Template >= 0 && Template < NumTemplates);
  GeneratedLoop Out;
  Out.Template = Template;
  std::string Globals;
  std::ostringstream Body;

  const long long N = tripCount();
  const std::string Ty = scalarTy();

  switch (Template) {
  case 0: {
    // Paper example #1: unrolled type-conversion copies
    // (short arrays converted into int arrays, step 2).
    const std::string A1 = freshName("assign"), A2 = freshName("assign"),
                      SA = freshName("short_a"), SB = freshName("short_b");
    Globals += "int " + A1 + "[" + std::to_string(N) + "];\n";
    Globals += "int " + A2 + "[" + std::to_string(N) + "];\n";
    Globals += "short " + SA + "[" + std::to_string(N) + "];\n";
    Globals += "short " + SB + "[" + std::to_string(N) + "];\n";
    const std::string Bound = boundExpr(N - 1, Globals);
    Body << "  for (int i = 0; i < " << Bound << "; i += 2) {\n"
         << "    " << A1 << "[i] = (int) (" << SA << "[i]);\n"
         << "    " << A1 << "[i + 1] = (int) (" << SA << "[i + 1]);\n"
         << "    " << A2 << "[i] = (int) (" << SB << "[i]);\n"
         << "    " << A2 << "[i + 1] = (int) (" << SB << "[i + 1]);\n"
         << "  }\n";
    Out.Name = "conversion";
    break;
  }
  case 1: {
    // Paper example #2: nested 2-D fill G[i][j] = x.
    const long long M = std::min<long long>(N, 256);
    const std::string G = freshName("G"), X = freshName("x");
    Globals += Ty + " " + G + "[" + std::to_string(M) + "][" +
               std::to_string(M) + "];\n";
    Globals += Ty + " " + X + ";\n";
    const std::string Bound = boundExpr(M, Globals);
    Body << "  for (int i = 0; i < " << M << "; i++) {\n"
         << "    for (int j = 0; j < " << Bound << "; j++) {\n"
         << "      " << G << "[i][j] = " << X << ";\n"
         << "    }\n"
         << "  }\n";
    Out.Name = "nested_fill";
    break;
  }
  case 2: {
    // Paper example #3: predicated clamp b[i] = (j > MAX ? MAX : 0).
    const std::string A = freshName("a"), B = freshName("b");
    const long long Max = Rng.nextInt(64, 1024);
    Globals += "int " + A + "[" + std::to_string(2 * N) + "];\n";
    Globals += "int " + B + "[" + std::to_string(2 * N) + "];\n";
    const std::string Bound = boundExpr(N, Globals);
    Body << "  for (int i = 0; i < " << Bound << " * 2; i++) {\n"
         << "    int j = " << A << "[i];\n"
         << "    " << B << "[i] = (j > " << Max << " ? " << Max
         << " : 0);\n"
         << "  }\n";
    Out.Name = "predicated_clamp";
    break;
  }
  case 3: {
    // Paper example #4: triple-nested matmul-style reduction.
    const long long M = 64;
    const std::string A = freshName("A"), B = freshName("B"),
                      C = freshName("C"), Alpha = freshName("alpha");
    Globals += "float " + A + "[" + std::to_string(M) + "][" +
               std::to_string(M) + "];\n";
    Globals += "float " + B + "[" + std::to_string(M) + "][" +
               std::to_string(M) + "];\n";
    Globals += "float " + C + "[" + std::to_string(M) + "][" +
               std::to_string(M) + "];\n";
    Globals += "float " + Alpha + ";\n";
    Body << "  for (int i = 0; i < " << M << "; i++) {\n"
         << "    for (int j = 0; j < " << M << "; j++) {\n"
         << "      float sum = 0;\n"
         << "      for (int k = 0; k < " << M << "; k++) {\n"
         << "        sum += " << Alpha << " * " << A << "[i][k] * " << B
         << "[k][j];\n"
         << "      }\n"
         << "      " << C << "[i][j] = sum;\n"
         << "    }\n"
         << "  }\n";
    Out.Name = "matmul_reduction";
    break;
  }
  case 4: {
    // Paper example #5: strided complex multiply.
    const std::string A = freshName("a"), B = freshName("b"),
                      C = freshName("c"), D = freshName("d");
    Globals += "float " + A + "[" + std::to_string(N) + "];\n";
    Globals += "float " + B + "[" + std::to_string(2 * N) + "];\n";
    Globals += "float " + C + "[" + std::to_string(2 * N) + "];\n";
    Globals += "float " + D + "[" + std::to_string(N) + "];\n";
    const std::string Bound = boundExpr(N, Globals);
    Body << "  for (int i = 0; i < " << Bound << " / 2 - 1; i++) {\n"
         << "    " << A << "[i] = " << B << "[2 * i + 1] * " << C
         << "[2 * i + 1] - " << B << "[2 * i] * " << C << "[2 * i];\n"
         << "    " << D << "[i] = " << B << "[2 * i] * " << C
         << "[2 * i + 1] + " << B << "[2 * i + 1] * " << C << "[2 * i];\n"
         << "  }\n";
    Out.Name = "strided_complex";
    break;
  }
  case 5: {
    // Elementwise arithmetic with a random operator mix.
    const std::string A = freshName("a"), B = freshName("b"),
                      C = freshName("c");
    static const char *const Ops[] = {"+", "-", "*"};
    const char *Op1 = Ops[Rng.nextBounded(3)];
    const char *Op2 = Ops[Rng.nextBounded(3)];
    Globals += Ty + " " + A + "[" + std::to_string(N) + "];\n";
    Globals += Ty + " " + B + "[" + std::to_string(N) + "];\n";
    Globals += Ty + " " + C + "[" + std::to_string(N) + "];\n";
    const std::string Bound = boundExpr(N, Globals);
    Body << "  for (int i = 0; i < " << Bound << "; i++) {\n"
         << "    " << C << "[i] = (" << A << "[i] " << Op1 << " " << B
         << "[i]) " << Op2 << " " << B << "[i];\n"
         << "  }\n";
    Out.Name = "elementwise";
    break;
  }
  case 6: {
    // Sum or max reduction (dot-product-like when it multiplies).
    const std::string A = freshName("v"), B = freshName("w");
    const bool Dot = Rng.nextBernoulli(0.5);
    Globals += Ty + " " + A + "[" + std::to_string(N) + "];\n";
    if (Dot)
      Globals += Ty + " " + B + "[" + std::to_string(N) + "];\n";
    const std::string Bound = boundExpr(N, Globals);
    Body << "  " << Ty << " sum = 0;\n"
         << "  for (int i = 0; i < " << Bound << "; i++) {\n";
    if (Dot)
      Body << "    sum += " << A << "[i] * " << B << "[i];\n";
    else
      Body << "    sum += " << A << "[i];\n";
    Body << "  }\n  out0 = sum;\n";
    Globals += Ty + " out0;\n";
    Out.Name = Dot ? "dot_product" : "sum_reduction";
    break;
  }
  case 7: {
    // Bitwise / shift kernel on integers.
    const std::string A = freshName("bits"), B = freshName("mask");
    const int Shift = static_cast<int>(Rng.nextInt(1, 7));
    Globals += "int " + A + "[" + std::to_string(N) + "];\n";
    Globals += "int " + B + "[" + std::to_string(N) + "];\n";
    const std::string Bound = boundExpr(N, Globals);
    Body << "  for (int i = 0; i < " << Bound << "; i++) {\n"
         << "    " << B << "[i] = ((" << A << "[i] >> " << Shift
         << ") ^ " << A << "[i]) & 255;\n"
         << "  }\n";
    Out.Name = "bitwise";
    break;
  }
  case 8: {
    // Three-point stencil with a read-after-write distance: the distance
    // caps the legal VF, so the agent must learn not to over-vectorize.
    const std::string A = freshName("a");
    const long long Dist = 1LL << Rng.nextInt(2, 6); // 4..64.
    Globals += Ty + " " + A + "[" + std::to_string(N + Dist) + "];\n";
    const std::string Bound = boundExpr(N, Globals);
    Body << "  for (int i = 0; i < " << Bound << "; i++) {\n"
         << "    " << A << "[i + " << Dist << "] = " << A << "[i] * 2 + "
         << A << "[i + 1];\n"
         << "  }\n";
    Out.Name = "stencil_dep";
    break;
  }
  case 9: {
    // Gather through an index array (non-affine load).
    const std::string A = freshName("data"), Idx = freshName("idx"),
                      O = freshName("out");
    Globals += Ty + " " + A + "[" + std::to_string(4 * N) + "];\n";
    Globals += "int " + Idx + "[" + std::to_string(N) + "];\n";
    Globals += Ty + " " + O + "[" + std::to_string(N) + "];\n";
    const std::string Bound = boundExpr(N, Globals);
    Body << "  for (int i = 0; i < " << Bound << "; i++) {\n"
         << "    " << O << "[i] = " << A << "[" << Idx << "[i]] * 3;\n"
         << "  }\n";
    Out.Name = "gather";
    break;
  }
  case 10: {
    // saxpy with a random stride (possibly misaligned offset).
    const std::string X = freshName("x"), Y = freshName("y"),
                      Alpha = freshName("alpha");
    const long long Stride = 1LL << Rng.nextInt(0, 2); // 1, 2, or 4.
    const long long Off = Rng.nextBernoulli(0.3) ? 1 : 0;
    Globals += Ty + " " + X + "[" + std::to_string(Stride * N + 8) + "];\n";
    Globals += Ty + " " + Y + "[" + std::to_string(Stride * N + 8) + "];\n";
    Globals += Ty + " " + Alpha + ";\n";
    const std::string Bound = boundExpr(N, Globals);
    Body << "  for (int i = 0; i < " << Bound << "; i++) {\n"
         << "    " << Y << "[" << Stride << " * i + " << Off
         << "] = " << Alpha << " * " << X << "[" << Stride << " * i + "
         << Off << "] + " << Y << "[" << Stride << " * i + " << Off
         << "];\n"
         << "  }\n";
    Out.Name = Stride == 1 ? "saxpy" : "saxpy_strided";
    break;
  }
  case 11: {
    // Conditional accumulate under an if-statement.
    const std::string A = freshName("a"), B = freshName("b");
    const long long Cut = Rng.nextInt(8, 512);
    Globals += "int " + A + "[" + std::to_string(N) + "];\n";
    Globals += "int " + B + "[" + std::to_string(N) + "];\n";
    const std::string Bound = boundExpr(N, Globals);
    Body << "  for (int i = 0; i < " << Bound << "; i++) {\n"
         << "    if (" << A << "[i] > " << Cut << ") {\n"
         << "      " << B << "[i] = " << B << "[i] + " << A << "[i];\n"
         << "    } else {\n"
         << "      " << B << "[i] = 0;\n"
         << "    }\n"
         << "  }\n";
    Out.Name = "predicated_if";
    break;
  }
  default:
    assert(false && "template out of range");
  }

  std::ostringstream Full;
  Full << Globals << "\nvoid kernel() {\n" << Body.str() << "}\n";
  Out.Source = Full.str();
  Out.Name += "_" + std::to_string(Counter++);
  return Out;
}
