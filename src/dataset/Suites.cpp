//===- dataset/Suites.cpp - Fixed benchmark suites -------------------------===//

#include "dataset/Suites.h"

using namespace nv;

std::vector<NamedProgram> nv::vectorizerTestSuite() {
  return {
      {"vt_copy", R"(
int a[1024]; int b[1024];
void kernel() {
  for (int i = 0; i < 1024; i++) { b[i] = a[i]; }
})"},
      {"vt_add", R"(
float a[1024]; float b[1024]; float c[1024];
void kernel() {
  for (int i = 0; i < 1024; i++) { c[i] = a[i] + b[i]; }
})"},
      {"vt_mul_scalar", R"(
float a[2048]; float alpha;
void kernel() {
  for (int i = 0; i < 2048; i++) { a[i] = a[i] * alpha; }
})"},
      {"vt_sum_red", R"(
int v[512]; int out;
void kernel() {
  int sum = 0;
  for (int i = 0; i < 512; i++) { sum += v[i]; }
  out = sum;
})"},
      {"vt_dot", R"(
float x[1024]; float y[1024]; float out;
void kernel() {
  float sum = 0;
  for (int i = 0; i < 1024; i++) { sum += x[i] * y[i]; }
  out = sum;
})"},
      {"vt_conv_short", R"(
short s[1024]; int d[1024];
void kernel() {
  for (int i = 0; i < 1024; i++) { d[i] = (int) (s[i]); }
})"},
      {"vt_select", R"(
int a[1024]; int b[1024];
void kernel() {
  for (int i = 0; i < 1024; i++) { b[i] = (a[i] > 0 ? a[i] : 0); }
})"},
      {"vt_if_store", R"(
int a[1024]; int b[1024];
void kernel() {
  for (int i = 0; i < 1024; i++) {
    if (a[i] > 16) { b[i] = a[i] * 2; }
  }
})"},
      {"vt_stride2", R"(
float a[2048]; float b[1024];
void kernel() {
  for (int i = 0; i < 1024; i++) { b[i] = a[2 * i]; }
})"},
      {"vt_reverse_safe", R"(
int a[1040];
void kernel() {
  for (int i = 0; i < 1024; i++) { a[i] = a[i + 16] + 1; }
})"},
      {"vt_unknown_bound", R"(
int n = 1024; float a[1024]; float b[1024];
void kernel() {
  for (int i = 0; i < n; i++) { b[i] = a[i] * 3.0; }
})"},
      {"vt_2d_fill", R"(
float G[128][128]; float x;
void kernel() {
  for (int i = 0; i < 128; i++) {
    for (int j = 0; j < 128; j++) { G[i][j] = x; }
  }
})"},
      {"vt_bitops", R"(
int a[1024]; int b[1024];
void kernel() {
  for (int i = 0; i < 1024; i++) { b[i] = (a[i] << 2) ^ (a[i] & 15); }
})"},
      {"vt_minmax_red", R"(
float v[2048]; float out;
void kernel() {
  float m = 0;
  for (int i = 0; i < 2048; i++) { m = max(m, v[i]); }
  out = m;
})"},
      {"vt_small_trip", R"(
float a[8]; float b[8];
void kernel() {
  for (int i = 0; i < 8; i++) { b[i] = a[i] + 1.0; }
})"},
  };
}

std::vector<NamedProgram> nv::evaluationBenchmarks() {
  return {
      {"s_predicate", R"(
int a[2048]; int b[2048];
void kernel() {
  for (int i = 0; i < 2048; i++) {
    int j = a[i];
    b[i] = (j > 255 ? 255 : 0);
  }
})"},
      {"s_strided", R"(
float a[1024]; float b[2048]; float c[2048]; float d[1024];
void kernel() {
  for (int i = 0; i < 1023; i++) {
    a[i] = b[2 * i + 1] * c[2 * i + 1] - b[2 * i] * c[2 * i];
    d[i] = b[2 * i] * c[2 * i + 1] + b[2 * i + 1] * c[2 * i];
  }
})"},
      {"s_bitwise", R"(
int bits[4096]; int out[4096];
void kernel() {
  for (int i = 0; i < 4096; i++) {
    out[i] = ((bits[i] >> 3) ^ bits[i]) & 255;
  }
})"},
      {"s_unknown_bounds", R"(
int n = 2048; float x[2048]; float y[2048]; float alpha;
void kernel() {
  for (int i = 0; i < n; i++) { y[i] = alpha * x[i] + y[i]; }
})"},
      {"s_if_convert", R"(
int a[2048]; int b[2048];
void kernel() {
  for (int i = 0; i < 2048; i++) {
    if (a[i] > 64) { b[i] = b[i] + a[i]; } else { b[i] = 0; }
  }
})"},
      {"s_misaligned", R"(
float x[4100]; float y[4100]; float alpha;
void kernel() {
  for (int i = 0; i < 4096; i++) {
    y[i + 1] = alpha * x[i + 1] + y[i + 1];
  }
})"},
      {"s_multidim", R"(
float A[128][128]; float B[128][128]; float x;
void kernel() {
  for (int i = 0; i < 128; i++) {
    for (int j = 0; j < 128; j++) {
      B[i][j] = A[i][j] * x;
    }
  }
})"},
      {"s_reduction", R"(
float v[4096]; float w[4096]; float out;
void kernel() {
  float sum = 0;
  for (int i = 0; i < 4096; i++) { sum += v[i] * w[i]; }
  out = sum;
})"},
      {"s_conversion", R"(
short src1[2048]; short src2[2048]; int dst1[2048]; int dst2[2048];
void kernel() {
  for (int i = 0; i < 2047; i += 2) {
    dst1[i] = (int) (src1[i]);
    dst1[i + 1] = (int) (src1[i + 1]);
    dst2[i] = (int) (src2[i]);
    dst2[i + 1] = (int) (src2[i + 1]);
  }
})"},
      {"s_mixed_types", R"(
char pix[4096]; float lum[4096]; float scale;
void kernel() {
  for (int i = 0; i < 4096; i++) {
    lum[i] = (float) (pix[i]) * scale;
  }
})"},
      {"s_stencil", R"(
float a[2080];
void kernel() {
  for (int i = 0; i < 2048; i++) {
    a[i + 8] = a[i] * 0.5 + a[i + 1] * 0.25;
  }
})"},
      {"s_gather", R"(
float data[8192]; int idx[2048]; float out[2048];
void kernel() {
  for (int i = 0; i < 2048; i++) {
    out[i] = data[idx[i]] * 3.0;
  }
})"},
  };
}

std::vector<NamedProgram> nv::polyBenchSuite() {
  // Sizes chosen so per-row working sets exceed L1: polyhedral locality
  // transforms (tiling / interchange) have real headroom, matching the
  // paper's note that Polly shines at large iteration counts.
  return {
      // gemm in ijk order with a memory-resident accumulator: the stock
      // vectorizer cannot touch it (output dependence on C[i][j]); Polly
      // interchanges k and j and exposes stride-1 vectorization.
      {"pb_gemm", R"(
float A[256][256]; float B[256][256]; float C[256][256];
void kernel() {
  for (int i = 0; i < 256; i++) {
    for (int k = 0; k < 256; k++) {
      for (int j = 0; j < 256; j++) {
        C[i][j] = C[i][j] + A[i][k] * B[k][j];
      }
    }
  }
})"},
      // 2mm: two back-to-back matmuls, same story as gemm.
      {"pb_2mm", R"(
float A[128][128]; float B[128][128]; float T[128][128];
float C[128][128]; float D[128][128];
void kernel() {
  for (int i = 0; i < 128; i++) {
    for (int k = 0; k < 128; k++) {
      for (int j = 0; j < 128; j++) {
        T[i][j] = T[i][j] + A[i][k] * B[k][j];
      }
    }
  }
  for (int i = 0; i < 128; i++) {
    for (int k = 0; k < 128; k++) {
      for (int j = 0; j < 128; j++) {
        D[i][j] = D[i][j] + T[i][k] * C[k][j];
      }
    }
  }
})"},
      // atax: y = A^T (A x). The second phase walks A by column (strided);
      // interchange fixes it.
      {"pb_atax", R"(
float A[512][512]; float x[512]; float t[512]; float y[512];
void kernel() {
  for (int i = 0; i < 512; i++) {
    float sum = 0;
    for (int j = 0; j < 512; j++) { sum += A[i][j] * x[j]; }
    t[i] = sum;
  }
  for (int j = 0; j < 512; j++) {
    for (int i = 0; i < 512; i++) {
      y[j] = y[j] + A[i][j] * t[i];
    }
  }
})"},
      // bicg: row-access and column-access products.
      {"pb_bicg", R"(
float A[512][512]; float p[512]; float r[512];
float q[512]; float s[512];
void kernel() {
  for (int i = 0; i < 512; i++) {
    float sum = 0;
    for (int j = 0; j < 512; j++) { sum += A[i][j] * p[j]; }
    q[i] = sum;
  }
  for (int j = 0; j < 512; j++) {
    for (int i = 0; i < 512; i++) {
      s[j] = s[j] + r[i] * A[i][j];
    }
  }
})"},
      // mvt: x1 = A y1 (rows) and x2 = A^T y2 (columns).
      {"pb_mvt", R"(
float A[512][512]; float x1[512]; float x2[512];
float y1[512]; float y2[512];
void kernel() {
  for (int i = 0; i < 512; i++) {
    float sum = 0;
    for (int j = 0; j < 512; j++) { sum += A[i][j] * y1[j]; }
    x1[i] = x1[i] + sum;
  }
  for (int j = 0; j < 512; j++) {
    for (int i = 0; i < 512; i++) {
      x2[j] = x2[j] + A[i][j] * y2[i];
    }
  }
})"},
      // gesummv: two row-major matrix-vector products; the vectorizer's
      // own territory (Polly has little to add here — §4.1's "deep RL
      // performed better with smaller number of loop iterations").
      {"pb_gesummv", R"(
float A[384][384]; float B[384][384]; float x[384]; float y[384];
float alpha; float beta;
void kernel() {
  for (int i = 0; i < 384; i++) {
    float ta = 0;
    float tb = 0;
    for (int j = 0; j < 384; j++) {
      ta += A[i][j] * x[j];
      tb += B[i][j] * x[j];
    }
    y[i] = alpha * ta + beta * tb;
  }
})"},
  };
}

std::vector<NamedProgram> nv::miBenchSuite() {
  // Embedded-style programs: runtime dominated by loops the vectorizer
  // cannot touch (loop-carried scalar recurrences, indirect accesses),
  // with a minor vectorizable share — hence Fig 9's modest 1.1x average.
  return {
      // CRC: a serial recurrence over the message plus a small table init.
      {"mi_crc32", R"(
int msg[8192]; int table[256]; int out;
void kernel() {
  for (int t = 0; t < 256; t++) { table[t] = (t << 3) ^ (t >> 2); }
  int crc = 65535;
  for (int i = 0; i < 8192; i++) {
    crc = ((crc >> 8) ^ table[(crc ^ msg[i]) & 255]) & 16777215;
  }
  out = crc;
})"},
      // String search: indexed compare with early predicates (serialized
      // by the match recurrence) plus a short hash precompute.
      {"mi_stringsearch", R"(
int text[16384]; int pat[16]; int hash[16384]; int found;
void kernel() {
  for (int i = 0; i < 16384; i++) { hash[i] = text[i] & 63; }
  int matches = 0;
  for (int i = 0; i < 16380; i++) {
    matches = (hash[i] == pat[0] ? matches + (hash[i + 1] == pat[1] ? 1 : 0) : matches);
  }
  found = matches;
})"},
      // susan-style smoothing: one vectorizable blur plus a serial
      // brightness adaptation recurrence that dominates.
      {"mi_susan", R"(
int img[16384]; int blur[16384]; int thresh;
void kernel() {
  for (int i = 0; i < 16382; i++) {
    blur[i] = (img[i] + img[i + 1] + img[i + 2]) / 3;
  }
  int level = 128;
  for (int i = 0; i < 16384; i++) {
    level = (level * 7 + img[i]) >> 3;
  }
  thresh = level;
})"},
      // bitcount: a serial accumulation through a table gather.
      {"mi_bitcount", R"(
int words[32768]; int nibble[16]; int out;
void kernel() {
  int count = 0;
  for (int i = 0; i < 32768; i++) {
    count = count + nibble[words[i] & 15] + nibble[(words[i] >> 4) & 15];
  }
  out = count;
})"},
      // ADPCM-style decoder: state recurrences everywhere; tiny
      // vectorizable delta precompute.
      {"mi_adpcm", R"(
int code[8192]; int delta[8192]; int out;
void kernel() {
  for (int i = 0; i < 8192; i++) { delta[i] = (code[i] & 7) * 2 + 1; }
  int pred = 0;
  int step = 7;
  for (int i = 0; i < 8192; i++) {
    pred = pred + ((code[i] & 8) > 0 ? 0 - step * delta[i] : step * delta[i]);
    step = (step * 3 + delta[i]) >> 2;
  }
  out = pred;
})"},
      // FFT-like pass: strided butterflies (vectorizable with the right
      // factors) plus a serial twiddle recurrence.
      {"mi_fft", R"(
float re[8192]; float im[8192]; float tw[4096]; float out;
void kernel() {
  for (int i = 0; i < 4095; i++) {
    float a = re[2 * i] + re[2 * i + 1] * tw[i];
    float b = im[2 * i] - im[2 * i + 1] * tw[i];
    re[2 * i] = a;
    im[2 * i] = b;
  }
  float w = 1.0;
  for (int i = 0; i < 4096; i++) {
    w = w * 0.9995 + tw[i] * 0.0005;
  }
  out = w;
})"},
  };
}
