//===- core/NeuroVectorizer.cpp - Public framework API ---------------------===//

#include "core/NeuroVectorizer.h"

#include "dataset/Suites.h"
#include "lang/Parser.h"
#include "lang/PrettyPrinter.h"
#include "serve/ModelSerializer.h"

#include <cassert>

using namespace nv;

NeuroVectorizer::NeuroVectorizer(const NeuroVectorizerConfig &Config)
    : Config(Config), Rng(Config.Seed) {
  Env = std::make_unique<VectorizationEnv>(
      SimCompiler(Config.Target, Config.Machine), Config.Embedding.Paths);
  Embedder = std::make_unique<Code2Vec>(Config.Embedding, Rng);
  const int NumVF = static_cast<int>(Config.Target.vfActions().size());
  const int NumIF = static_cast<int>(Config.Target.ifActions().size());
  Pol = std::make_unique<Policy>(Config.ActionSpace, Embedder->codeDim(),
                                 Config.Hidden, NumVF, NumIF, Rng);
  Runner = std::make_unique<PPORunner>(*Env, *Embedder, *Pol, Config.PPO,
                                       Config.Seed ^ 0xABCDEF);
}

bool NeuroVectorizer::addTrainingProgram(const std::string &Name,
                                         const std::string &Source) {
  return Env->addProgram(Name, Source);
}

TrainStats NeuroVectorizer::train(long long Steps) {
  assert(Env->size() > 0 && "no training programs added");
  return Runner->train(Steps);
}

RolloutModelSpec NeuroVectorizer::rolloutSpec() const {
  RolloutModelSpec Spec;
  Spec.Embedding = Config.Embedding;
  Spec.ActionSpace = Config.ActionSpace;
  Spec.Hidden = Config.Hidden;
  Spec.NumVF = static_cast<int>(Config.Target.vfActions().size());
  Spec.NumIF = static_cast<int>(Config.Target.ifActions().size());
  return Spec;
}

TrainReport NeuroVectorizer::trainParallel(const TrainerConfig &TrainConfig) {
  Trainer T(*Runner, rolloutSpec(), TrainConfig);
  // Held-out by construction: the Fig 7 evaluation benchmarks are never in
  // the training distribution (curriculum stages draw from the generator
  // and the vectorizer test suite).
  T.addEvalSuite("benchmarks", evaluationBenchmarks());
  TrainReport Report = T.run();
  // Same invalidation as load(): the serving cache and the supervised
  // predictors were derived from the pre-training weights.
  if (Service)
    Service->clearCache();
  NNS.clear();
  SupervisedReady = false;
  return Report;
}

std::vector<double>
NeuroVectorizer::embeddingOf(const std::vector<PathContext> &Contexts) {
  Matrix V = Embedder->encode(Contexts);
  std::vector<double> Row(V.raw().begin(), V.raw().end());
  return Row;
}

int NeuroVectorizer::planToClass(const VectorPlan &Plan) const {
  const std::vector<int> VFs = Config.Target.vfActions();
  const std::vector<int> IFs = Config.Target.ifActions();
  int VFIdx = 0, IFIdx = 0;
  for (size_t I = 0; I < VFs.size(); ++I)
    if (VFs[I] == Plan.VF)
      VFIdx = static_cast<int>(I);
  for (size_t I = 0; I < IFs.size(); ++I)
    if (IFs[I] == Plan.IF)
      IFIdx = static_cast<int>(I);
  return VFIdx * static_cast<int>(IFs.size()) + IFIdx;
}

VectorPlan NeuroVectorizer::classToPlan(int Class) const {
  const std::vector<int> VFs = Config.Target.vfActions();
  const std::vector<int> IFs = Config.Target.ifActions();
  const int NumIF = static_cast<int>(IFs.size());
  VectorPlan Plan;
  Plan.VF = VFs[std::min<size_t>(Class / NumIF, VFs.size() - 1)];
  Plan.IF = IFs[Class % NumIF];
  return Plan;
}

void NeuroVectorizer::fitSupervised(size_t MaxSamples) {
  // Refitting replaces the index wholesale: stale entries would mix
  // embeddings from different weight sets (e.g. after load()).
  NNS.clear();
  // Label with brute force (the paper runs the expensive search on a
  // portion of the dataset to obtain supervised labels, §2.3).
  std::vector<std::vector<double>> X;
  std::vector<int> Y;
  const size_t Count = std::min(MaxSamples, Env->size());
  for (size_t I = 0; I < Count; ++I) {
    const BruteForceResult Best = bruteForceSearch(*Env, I);
    const EnvSample &Sample = Env->sample(I);
    for (size_t S = 0; S < Sample.Sites.size(); ++S) {
      std::vector<double> Emb = embeddingOf(Sample.Contexts[S]);
      NNS.add(Emb, Best.Plans[S]);
      X.push_back(std::move(Emb));
      Y.push_back(planToClass(Best.Plans[S]));
    }
  }
  const int NumClasses =
      static_cast<int>(Config.Target.vfActions().size() *
                       Config.Target.ifActions().size());
  Tree.fit(X, Y, NumClasses);
  SupervisedReady = true;
}

std::vector<VectorPlan>
NeuroVectorizer::plansFor(const std::string &Source, PredictMethod Method) {
  std::string Error;
  std::optional<Program> Parsed = parseSource(Source, &Error);
  assert(Parsed && "plansFor() requires a valid program");
  clearAllPragmas(*Parsed);
  std::vector<LoopSite> Sites = extractLoops(*Parsed);

  // Methods that need a private environment entry (search-based).
  if (Method == PredictMethod::BruteForce || Method == PredictMethod::Random ||
      Method == PredictMethod::Baseline) {
    VectorizationEnv Scratch(SimCompiler(Config.Target, Config.Machine),
                             Config.Embedding.Paths);
    const bool Added = Scratch.addProgram("query", Source);
    assert(Added && "program with loops expected");
    (void)Added;
    switch (Method) {
    case PredictMethod::BruteForce:
      return bruteForceSearch(Scratch, 0).Plans;
    case PredictMethod::Random:
      return randomPlans(Scratch, 0, Rng);
    default: { // Baseline: the cost model's own choices, no pragma.
      CompileResult R = Scratch.compiler().compileBaseline(
          const_cast<Program &>(*Scratch.sample(0).Prog));
      std::vector<VectorPlan> Plans;
      for (const CompiledLoop &L : R.Loops)
        Plans.push_back(L.Effective);
      return Plans;
    }
    }
  }

  std::vector<VectorPlan> Plans;
  for (const LoopSite &Site : Sites) {
    // Mirror the environment's extraction setting: predicting from the
    // other loop body would hand the model embeddings it never trained on
    // (the same train/serve skew AnnotationService guards against).
    const Stmt &ContextRoot =
        Env->innerContextOnly() ? static_cast<const Stmt &>(*Site.Inner)
                                : static_cast<const Stmt &>(*Site.Outer);
    const std::vector<PathContext> Contexts =
        extractPathContexts(ContextRoot, Config.Embedding.Paths);
    switch (Method) {
    case PredictMethod::RL:
      Plans.push_back(Runner->predict(Contexts));
      break;
    case PredictMethod::NNS:
      assert(SupervisedReady && "call fitSupervised() first");
      Plans.push_back(NNS.predict(embeddingOf(Contexts)));
      break;
    case PredictMethod::DecisionTree:
      assert(SupervisedReady && "call fitSupervised() first");
      Plans.push_back(classToPlan(Tree.predict(embeddingOf(Contexts))));
      break;
    default:
      Plans.push_back({1, 1});
      break;
    }
  }
  return Plans;
}

std::string NeuroVectorizer::annotate(const std::string &Source,
                                      PredictMethod Method) {
  std::string Error;
  std::optional<Program> Parsed = parseSource(Source, &Error);
  assert(Parsed && "annotate() requires a valid program");
  clearAllPragmas(*Parsed);
  std::vector<LoopSite> Sites = extractLoops(*Parsed);
  std::vector<VectorPlan> Plans = plansFor(Source, Method);
  assert(Plans.size() == Sites.size());
  for (size_t S = 0; S < Sites.size(); ++S)
    injectPragma(Sites[S], {Plans[S].VF, Plans[S].IF});
  return printProgram(*Parsed);
}

double NeuroVectorizer::cyclesFor(const std::string &Source,
                                  PredictMethod Method) {
  VectorizationEnv Scratch(SimCompiler(Config.Target, Config.Machine),
                           Config.Embedding.Paths);
  const bool Added = Scratch.addProgram("query", Source);
  assert(Added && "program with loops expected");
  (void)Added;
  if (Method == PredictMethod::Baseline)
    return Scratch.sample(0).BaselineCycles;
  std::vector<VectorPlan> Plans = plansFor(Source, Method);
  return Scratch.cyclesWith(0, Plans);
}

double NeuroVectorizer::speedupOverBaseline(const std::string &Source,
                                            PredictMethod Method) {
  const double Base = cyclesFor(Source, PredictMethod::Baseline);
  const double Mine = cyclesFor(Source, Method);
  return Base / Mine;
}

bool NeuroVectorizer::save(const std::string &Path, std::string *Error) {
  // The file carries the extraction setting the model was trained with so
  // a loading deployment reproduces the training-side embeddings.
  ModelMeta Meta;
  Meta.InnerContextOnly = Env->innerContextOnly();
  return ModelSerializer::save(Path, *Embedder, *Pol, Meta, Error);
}

bool NeuroVectorizer::load(const std::string &Path, std::string *Error) {
  ModelMeta Meta;
  if (!ModelSerializer::load(Path, *Embedder, *Pol, &Meta, Error))
    return false;
  // The loaded model dictates how loops must be embedded from now on:
  // predictions, serving, and training all follow it (the env re-extracts
  // the contexts of any programs it already holds, so a warm-start
  // train() after load() sees the right flavour too).
  Env->setInnerContextOnly(Meta.InnerContextOnly);
  // The plan cache and the supervised predictors were derived from the old
  // weights. The NNS index is cleared eagerly (not just flagged) so stale
  // entries cannot survive into a release build where the
  // SupervisedReady asserts compile out.
  if (Service) {
    Service->setContextExtraction(Meta.InnerContextOnly);
    Service->clearCache();
  }
  NNS.clear();
  SupervisedReady = false;
  return true;
}

AnnotationService &NeuroVectorizer::service(const ServeConfig &Serve) {
  // The facade owns the consistency guarantee: whatever the caller set,
  // the service extracts contexts the way this instance's model does.
  ServeConfig Cfg = Serve;
  Cfg.InnerContextOnly = Env->innerContextOnly();
  Service = std::make_unique<AnnotationService>(
      *Embedder, *Pol, Config.Embedding.Paths, Config.Target, Cfg);
  return *Service;
}

AnnotationService &NeuroVectorizer::service() {
  if (!Service)
    return service(ServeConfig());
  return *Service;
}

std::vector<AnnotationResult> NeuroVectorizer::annotateBatch(
    const std::vector<AnnotationRequest> &Requests) {
  return service().annotateBatch(Requests);
}
