//===- core/NeuroVectorizer.cpp - Public framework API ---------------------===//

#include "core/NeuroVectorizer.h"

#include "dataset/Suites.h"
#include "ir/Lowering.h"
#include "lang/Parser.h"
#include "lang/PrettyPrinter.h"
#include "rl/StateFeatures.h"
#include "serve/ModelSerializer.h"
#include "support/Telemetry.h"

#include <cassert>

using namespace nv;

NeuroVectorizer::NeuroVectorizer(const NeuroVectorizerConfig &Config)
    : Config(Config), Rng(Config.Seed) {
  Env = std::make_unique<VectorizationEnv>(
      SimCompiler(Config.Target, Config.Machine), Config.Embedding.Paths);
  Embedder = std::make_unique<Code2Vec>(Config.Embedding, Rng);
  const int NumVF = static_cast<int>(Config.Target.vfActions().size());
  const int NumIF = static_cast<int>(Config.Target.ifActions().size());
  const int InputDim =
      Embedder->codeDim() +
      (Config.LegalityFeatures ? NumLegalityFeatures : 0);
  Pol = std::make_unique<Policy>(Config.ActionSpace, InputDim,
                                 Config.Hidden, NumVF, NumIF, Rng);
  Runner = std::make_unique<PPORunner>(*Env, *Embedder, *Pol, Config.PPO,
                                       Config.Seed ^ 0xABCDEF);

  // The full backend set of Fig 3's swappable agent block (§3.5). The
  // supervised backends start unfitted; fitSupervised() or a v3 load()
  // makes them ready.
  Backends.set(PredictMethod::RL,
               std::make_unique<PolicyBackend>(*Pol, Config.Target));
  auto NNSOwned = std::make_unique<NNSBackend>(/*K=*/3);
  NNS = NNSOwned.get();
  Backends.set(PredictMethod::NNS, std::move(NNSOwned));
  auto TreeOwned = std::make_unique<TreeBackend>(Config.Target);
  Tree = TreeOwned.get();
  Backends.set(PredictMethod::DecisionTree, std::move(TreeOwned));
  Backends.set(PredictMethod::Baseline,
               std::make_unique<BaselineBackend>(
                   Config.Target, Config.Machine, Config.Embedding.Paths));
  Backends.set(PredictMethod::Random,
               std::make_unique<RandomBackend>(Config.Target, Config.Machine,
                                               Config.Embedding.Paths,
                                               Config.Seed ^ 0x5EED5EEDull));
  Backends.set(PredictMethod::BruteForce,
               std::make_unique<BruteForceBackend>(
                   Config.Target, Config.Machine, Config.Embedding.Paths));
}

bool NeuroVectorizer::addTrainingProgram(const std::string &Name,
                                         const std::string &Source) {
  return Env->addProgram(Name, Source);
}

TrainStats NeuroVectorizer::train(long long Steps) {
  assert(Env->size() > 0 && "no training programs added");
  // Training must run fp32 end to end: rollout sampling is an inference
  // forward, and it has to see the same weights the optimizer updates.
  dropServeQuantization();
  TrainStats Stats = Runner->train(Steps);
  // Same invalidation as trainParallel()/load(): cached plans and fitted
  // supervised backends were derived from the pre-training weights.
  if (Service)
    Service->clearCache();
  NNS->index().clear();
  Tree->tree().clear();
  applyServeQuantization(); // Rebuild the int8 shadows over new weights.
  return Stats;
}

RolloutModelSpec NeuroVectorizer::rolloutSpec() const {
  RolloutModelSpec Spec;
  Spec.Embedding = Config.Embedding;
  Spec.ActionSpace = Config.ActionSpace;
  Spec.Hidden = Config.Hidden;
  Spec.NumVF = static_cast<int>(Config.Target.vfActions().size());
  Spec.NumIF = static_cast<int>(Config.Target.ifActions().size());
  Spec.LegalityFeatures = Config.LegalityFeatures;
  return Spec;
}

TrainReport NeuroVectorizer::trainParallel(const TrainerConfig &TrainConfig) {
  dropServeQuantization(); // Training must run fp32 end to end.
  Trainer T(*Runner, rolloutSpec(), TrainConfig);
  // Held-out by construction: the Fig 7 evaluation benchmarks are never in
  // the training distribution (curriculum stages draw from the generator
  // and the vectorizer test suite).
  T.addEvalSuite("benchmarks", evaluationBenchmarks());
  TrainReport Report = T.run();
  // Same invalidation as load(): the serving cache and the supervised
  // backends were derived from the pre-training weights.
  if (Service)
    Service->clearCache();
  NNS->index().clear();
  Tree->tree().clear();
  applyServeQuantization(); // Rebuild the int8 shadows over new weights.
  return Report;
}

DistillReport NeuroVectorizer::fitSupervised(size_t MaxSamples) {
  DistillConfig Distill;
  Distill.MaxSamples = MaxSamples;
  return fitSupervised(Distill);
}

DistillReport NeuroVectorizer::fitSupervised(const DistillConfig &Distill) {
  DistillReport Report = distill(*Env, *Embedder, Config.Target,
                                 NNS->index(), Tree->tree(), Distill);
  // Plans cached from a previous fit answer for the nns/tree keys; the
  // backends just changed, so those entries are stale.
  if (Service)
    Service->clearCache();
  return Report;
}

bool NeuroVectorizer::supervisedReady() const {
  return NNS->ready() && Tree->ready();
}

std::vector<VectorPlan>
NeuroVectorizer::plansFor(const std::string &Source, PredictMethod Method) {
  // The single-program facade path records into the same registry the
  // serving front-end uses, so ad-hoc and batched traffic land in one
  // latency picture.
  static ShardedHistogram &PlansUs =
      Telemetry::metrics().histogram("core.plans_us");
  const uint64_t Start = nowMicros();
  struct RecordOnExit {
    ShardedHistogram &H;
    uint64_t Start;
    ~RecordOnExit() { H.record(nowMicros() - Start); }
  } Record{PlansUs, Start};

  Predictor *P = Backends.get(Method);
  assert(P && "no backend registered for method");

  if (P->kind() == Predictor::Kind::Source) {
    // Source-kind backends see the program themselves; their plans still
    // pass the same legality clamp the serving boundary applies.
    std::vector<VectorPlan> Plans = P->plansForSource(Source);
    std::optional<Program> Parsed = parseSource(Source);
    assert(Parsed && "plansFor() requires a valid program");
    clearAllPragmas(*Parsed);
    std::vector<LoopSite> Sites = extractLoops(*Parsed);
    const std::vector<LoopSummary> Summaries =
        lowerAllLoops(*Parsed, Sites, Config.Target.MaxVF);
    for (size_t S = 0; S < Plans.size() && S < Summaries.size(); ++S)
      Plans[S] = legalizePlan(analyzeLegality(Summaries[S], Config.Target)
                                  .MaxSafeVF,
                              Plans[S], Config.Target);
    return Plans;
  }

  assert(P->ready() && "call fitSupervised() first");
  std::string Error;
  std::optional<Program> Parsed = parseSource(Source, &Error);
  assert(Parsed && "plansFor() requires a valid program");
  clearAllPragmas(*Parsed);
  std::vector<LoopSite> Sites = extractLoops(*Parsed);

  // Per-site legality: feature columns for a widened policy, and the
  // clamp every embedding-kind prediction passes through (so the plans
  // handed back are the plans the compiler would actually honor).
  std::vector<LoopSummary> Summaries =
      lowerAllLoops(*Parsed, Sites, Config.Target.MaxVF);
  std::vector<LegalitySummary> Legality;
  std::vector<LegalityDigest> Digests;
  Legality.reserve(Summaries.size());
  for (const LoopSummary &Summary : Summaries) {
    Legality.push_back(analyzeLegality(Summary, Config.Target));
    Digests.push_back(Legality.back().digest());
  }

  std::vector<std::vector<PathContext>> Contexts;
  Contexts.reserve(Sites.size());
  for (const LoopSite &Site : Sites) {
    // Mirror the environment's extraction setting: predicting from the
    // other loop body would hand the model embeddings it never trained on
    // (the same train/serve skew AnnotationService guards against).
    const Stmt &ContextRoot =
        Env->innerContextOnly() ? static_cast<const Stmt &>(*Site.Inner)
                                : static_cast<const Stmt &>(*Site.Outer);
    Contexts.push_back(extractPathContexts(ContextRoot, Config.Embedding.Paths));
  }
  const Matrix States = Embedder->encodeBatch(Contexts);
  Matrix WideBuf;
  std::vector<VectorPlan> Plans = P->plansForEmbeddings(
      widenStates(States, P->wantsCols(), Digests.data(), Digests.size(),
                  Config.Target, WideBuf),
      nullptr);
  for (size_t S = 0; S < Plans.size() && S < Legality.size(); ++S)
    Plans[S] = Legality[S].clamp(Plans[S], Config.Target);
  return Plans;
}

std::string NeuroVectorizer::annotate(const std::string &Source,
                                      PredictMethod Method) {
  static ShardedHistogram &AnnotateUs =
      Telemetry::metrics().histogram("core.annotate_us");
  const uint64_t Start = nowMicros();
  struct RecordOnExit {
    ShardedHistogram &H;
    uint64_t Start;
    ~RecordOnExit() { H.record(nowMicros() - Start); }
  } Record{AnnotateUs, Start};

  std::string Error;
  std::optional<Program> Parsed = parseSource(Source, &Error);
  assert(Parsed && "annotate() requires a valid program");
  clearAllPragmas(*Parsed);
  std::vector<LoopSite> Sites = extractLoops(*Parsed);
  std::vector<VectorPlan> Plans = plansFor(Source, Method);
  assert(Plans.size() == Sites.size());
  for (size_t S = 0; S < Sites.size(); ++S)
    injectPragma(Sites[S], {Plans[S].VF, Plans[S].IF});
  return printProgram(*Parsed);
}

double NeuroVectorizer::cyclesFor(const std::string &Source,
                                  PredictMethod Method) {
  VectorizationEnv Scratch(SimCompiler(Config.Target, Config.Machine),
                           Config.Embedding.Paths);
  const bool Added = Scratch.addProgram("query", Source);
  assert(Added && "program with loops expected");
  (void)Added;
  if (Method == PredictMethod::Baseline)
    return Scratch.sample(0).BaselineCycles;
  std::vector<VectorPlan> Plans = plansFor(Source, Method);
  return Scratch.cyclesWith(0, Plans);
}

double NeuroVectorizer::speedupOverBaseline(const std::string &Source,
                                            PredictMethod Method) {
  const double Base = cyclesFor(Source, PredictMethod::Baseline);
  const double Mine = cyclesFor(Source, Method);
  return Base / Mine;
}

bool NeuroVectorizer::save(const std::string &Path, std::string *Error) {
  return trySave(Path, Error) == SaveStatus::Ok;
}

SaveStatus NeuroVectorizer::trySave(const std::string &Path,
                                    std::string *Error) {
  // The file carries the extraction setting the model was trained with so
  // a loading deployment reproduces the training-side embeddings, plus
  // whatever supervised backends have been distilled from these weights.
  ModelMeta Meta;
  Meta.InnerContextOnly = Env->innerContextOnly();
  Meta.LegalityFeatures = Config.LegalityFeatures;
  SupervisedBundle Bundle;
  Bundle.NNS = &NNS->index();
  Bundle.Tree = &Tree->tree();
  return ModelSerializer::trySave(Path, *Embedder, *Pol, Meta, Bundle,
                                  Error);
}

bool NeuroVectorizer::load(const std::string &Path, std::string *Error) {
  ModelMeta Meta;
  SupervisedBundle Bundle;
  Bundle.NNS = &NNS->index();
  Bundle.Tree = &Tree->tree();
  if (!ModelSerializer::load(Path, *Embedder, *Pol, &Meta, &Bundle, Error))
    return false;
  // The loaded model dictates how loops must be embedded from now on:
  // predictions, serving, and training all follow it (the env re-extracts
  // the contexts of any programs it already holds, so a warm-start
  // train() after load() sees the right flavour too).
  Env->setInnerContextOnly(Meta.InnerContextOnly);
  // The plan cache was derived from the old weights. The supervised
  // backends were either restored from the file's own sections (distilled
  // from exactly these weights) or cleared by the serializer.
  if (Service) {
    Service->setContextExtraction(Meta.InnerContextOnly);
    Service->clearCache();
  }
  // Stale int8 shadows would keep serving the pre-load weights.
  applyServeQuantization();
  return true;
}

AnnotationService &NeuroVectorizer::service(const ServeConfig &Serve) {
  // The facade owns the consistency guarantee: whatever the caller set,
  // the service extracts contexts the way this instance's model does.
  ServeConfig Cfg = Serve;
  Cfg.InnerContextOnly = Env->innerContextOnly();
  Cfg.LegalityFeatures = Config.LegalityFeatures;
  Service = std::make_unique<AnnotationService>(
      *Embedder, Backends, Config.Embedding.Paths, Config.Target, Cfg);
  ServeQuantized = Cfg.Quantized;
  if (ServeQuantized)
    applyServeQuantization();
  else
    dropServeQuantization();
  return *Service;
}

void NeuroVectorizer::applyServeQuantization() {
  if (!ServeQuantized)
    return;
  Embedder->quantizeForInference();
  Pol->quantizeForInference();
}

void NeuroVectorizer::dropServeQuantization() {
  Embedder->clearQuantized();
  Pol->clearQuantized();
}

AnnotationService &NeuroVectorizer::service() {
  if (!Service)
    return service(ServeConfig());
  return *Service;
}

ServingModelConfig NeuroVectorizer::servingModelConfig() const {
  ServingModelConfig Cfg;
  Cfg.Embedding = Config.Embedding;
  Cfg.ActionSpace = Config.ActionSpace;
  Cfg.Hidden = Config.Hidden;
  Cfg.Target = Config.Target;
  Cfg.Machine = Config.Machine;
  Cfg.Seed = Config.Seed;
  Cfg.LegalityFeatures = Config.LegalityFeatures;
  return Cfg;
}

std::vector<AnnotationResult> NeuroVectorizer::annotateBatch(
    const std::vector<AnnotationRequest> &Requests) {
  return service().annotateBatch(Requests);
}
