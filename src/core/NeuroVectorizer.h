//===- core/NeuroVectorizer.h - Public framework API ------------*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The end-to-end framework of the paper (Fig 3), as one facade class:
/// programs in, annotated programs out. It wires together the loop
/// extractor, the code2vec embedding generator, the learning agent (PPO
/// contextual bandit by default), the simulated clang/LLVM toolchain, and
/// the alternative prediction methods (random, NNS, decision tree,
/// brute-force) that the framework is "extensible" to (§3.5).
///
/// Typical use (see examples/quickstart.cpp):
/// \code
///   NeuroVectorizer NV;
///   for (auto &P : trainingPrograms) NV.addTrainingProgram(P.Name, P.Src);
///   NV.train(20000);                      // end-to-end RL training
///   std::string Annotated = NV.annotate(MyLoopSource);
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef NV_CORE_NEUROVECTORIZER_H
#define NV_CORE_NEUROVECTORIZER_H

#include "embedding/Code2Vec.h"
#include "predictors/Backends.h"
#include "predictors/Predictor.h"
#include "predictors/Search.h"
#include "rl/PPO.h"
#include "rl/Policy.h"
#include "serve/AnnotationService.h"
#include "serve/ModelHost.h"
#include "train/Distill.h"
#include "train/Trainer.h"

#include <memory>
#include <string>

namespace nv {

/// Framework-wide configuration.
struct NeuroVectorizerConfig {
  TargetInfo Target;
  MachineConfig Machine;
  Code2VecConfig Embedding;
  PPOConfig PPO;
  ActionSpaceKind ActionSpace = ActionSpaceKind::Discrete;
  std::vector<int> Hidden = {64, 64}; ///< FCNN trunk (paper default).
  /// Append the legality-analysis feature block (access-class histogram,
  /// normalized max-safe VF, reduction/predication bits — see
  /// ir/Legality.h) to each loop's code embedding before the policy trunk.
  /// Changes the policy architecture, so it is part of the persisted model
  /// format (serve/ModelSerializer.h flag bit 2) and must match at load().
  bool LegalityFeatures = false;
  uint64_t Seed = 1234;
};

/// The end-to-end framework facade.
class NeuroVectorizer {
public:
  explicit NeuroVectorizer(
      const NeuroVectorizerConfig &Config = NeuroVectorizerConfig());

  /// Adds a training program; returns false if it fails to parse or has
  /// no loops.
  bool addTrainingProgram(const std::string &Name,
                          const std::string &Source);

  /// Trains the agent (and, end-to-end, the embedding) for \p Steps
  /// environment interactions. Single-threaded rollout collection; see
  /// trainParallel() for the scalable path.
  TrainStats train(long long Steps);

  /// Trains through the train/ subsystem: parallel rollout workers,
  /// optional curriculum, periodic checkpointing with bit-reproducible
  /// resume, and best-model tracking against the held-out evaluation
  /// benchmarks. Invalidates the serving plan cache and any fitted
  /// supervised predictors (the weights they were derived from changed).
  TrainReport trainParallel(const TrainerConfig &TrainConfig);

  /// The worker-replica architecture spec matching this instance's model
  /// (for driving train/Trainer or train/RolloutWorkers directly).
  RolloutModelSpec rolloutSpec() const;

  /// Fits the supervised backends (NNS, decision tree) through the
  /// distillation pipeline (train/Distill.h): runs the brute-force
  /// labeler over up to \p MaxSamples training programs and indexes the
  /// learned embeddings (§3.5). Call after train() — or after load(), to
  /// distill from a persisted checkpoint.
  DistillReport fitSupervised(size_t MaxSamples = 512);

  /// Distillation with explicit pipeline knobs.
  DistillReport fitSupervised(const DistillConfig &Distill);

  /// True when the supervised backends are fitted (after fitSupervised()
  /// or a load() of a model file carrying backend sections).
  bool supervisedReady() const;

  /// Predicts factors for every vectorization site of \p Source using
  /// \p Method; returns the annotated source (Fig 4 style).
  std::string annotate(const std::string &Source,
                       PredictMethod Method = PredictMethod::RL);

  /// Predicted plans per site for \p Source.
  std::vector<VectorPlan> plansFor(const std::string &Source,
                                   PredictMethod Method = PredictMethod::RL);

  /// Simulated execution cycles of \p Source under \p Method.
  double cyclesFor(const std::string &Source, PredictMethod Method);

  /// Speedup of \p Method over the baseline cost model on \p Source.
  double speedupOverBaseline(const std::string &Source,
                             PredictMethod Method = PredictMethod::RL);

  /// Persists the trained model (embedding generator + policy, plus the
  /// distilled supervised backends when fitted) to \p Path (see
  /// serve/ModelSerializer.h for the v3 format). Returns false and sets
  /// \p Error on failure.
  bool save(const std::string &Path, std::string *Error = nullptr);

  /// save() with the failure *stage* reported: which step of the
  /// crash-safe write sequence failed (saveStatusName() renders it for
  /// CLIs and run logs). The write is atomic — on any non-Ok status the
  /// previous file at \p Path, if any, is intact.
  SaveStatus trySave(const std::string &Path, std::string *Error = nullptr);

  /// Restores a model previously written by save() into this instance.
  /// The instance must have been constructed with the same configuration
  /// (architecture shapes are validated). All-or-nothing: on failure the
  /// current weights are untouched. Invalidates the serving plan cache;
  /// the supervised backends are restored from the file's sections when
  /// present (v3) and cleared otherwise.
  bool load(const std::string &Path, std::string *Error = nullptr);

  /// The serving-side slice of this instance's configuration, for
  /// standing up a ModelHost (serve/ModelHost.h) whose generations are
  /// architecture-compatible with models this instance save()s — the
  /// network daemon's construction path: train/save here, host + hot
  /// reload there.
  ServingModelConfig servingModelConfig() const;

  /// The batched, multi-threaded serving front-end over this instance's
  /// model (created on first use with default ServeConfig).
  AnnotationService &service();

  /// Rebuilds the serving front-end with \p Serve (pool size, cache size).
  AnnotationService &service(const ServeConfig &Serve);

  /// Annotates many programs at once through service(); results are
  /// parallel to \p Requests. Equivalent to annotate() per program but
  /// cached, batched, and multi-threaded.
  std::vector<AnnotationResult>
  annotateBatch(const std::vector<AnnotationRequest> &Requests);

  VectorizationEnv &env() { return *Env; }
  Code2Vec &embedder() { return *Embedder; }
  Policy &policy() { return *Pol; }
  PPORunner &runner() { return *Runner; }
  const TargetInfo &target() const { return Config.Target; }

  /// The backend registry (one Predictor per PredictMethod), shared with
  /// the serving front-end and usable with Evaluator::evaluateMethods.
  PredictorSet &backends() { return Backends; }

private:
  NeuroVectorizerConfig Config;
  RNG Rng;
  std::unique_ptr<VectorizationEnv> Env;
  std::unique_ptr<Code2Vec> Embedder;
  std::unique_ptr<Policy> Pol;
  std::unique_ptr<PPORunner> Runner;
  PredictorSet Backends;
  NNSBackend *NNS = nullptr;   ///< Owned by Backends.
  TreeBackend *Tree = nullptr; ///< Owned by Backends.
  std::unique_ptr<AnnotationService> Service;
  /// service() was configured with ServeConfig::Quantized: int8 shadows
  /// exist on the (shared) embedder/policy, are dropped for the duration
  /// of any training, and are rebuilt whenever the weights change
  /// (train/trainParallel exit, load).
  bool ServeQuantized = false;

  void applyServeQuantization();
  void dropServeQuantization();
};

} // namespace nv

#endif // NV_CORE_NEUROVECTORIZER_H
