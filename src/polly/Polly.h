//===- polly/Polly.h - Polyhedral-lite loop optimizer -----------*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compact stand-in for Polly (Grosser et al. [5]): classical loop-nest
/// transformations driven by affine access analysis. "To date the main
/// optimizations in Polly are tiling and loop fusion to improve data
/// locality" (§2.2) — so this pass implements exactly:
///
///  - loop interchange (make the stride-1 dimension innermost),
///  - tiling via strip-mine + interchange (shrink the reused footprint
///    into L1; pays off at large trip counts, matching §4.1's observation
///    that "Polly performed better on benchmarks with larger number of
///    loop iterations"),
///  - fusion of adjacent compatible loops.
///
/// After transforming, programs are compiled with the stock baseline
/// vectorizer, as in the paper's Polly configuration.
///
//===----------------------------------------------------------------------===//

#ifndef NV_POLLY_POLLY_H
#define NV_POLLY_POLLY_H

#include "lang/AST.h"
#include "target/TargetInfo.h"

#include <string>

namespace nv {

/// Which transformations ran (reporting/tests).
struct PollyReport {
  int Interchanged = 0;
  int Tiled = 0;
  int Fused = 0;
};

/// Polly-lite configuration.
struct PollyConfig {
  long long L1Bytes = 32 * 1024; ///< Tiling targets half of this.
  int MinTileTrip = 64;  ///< Only tile loops with at least this many iters.
  int TileSize = 256;    ///< Elements per tile (clamped to footprint).
};

/// Runs the polyhedral-lite pipeline on a copy of \p P.
Program applyPolly(const Program &P, const PollyConfig &Config,
                   PollyReport *Report = nullptr);

/// Convenience with default configuration.
inline Program applyPolly(const Program &P, PollyReport *Report = nullptr) {
  return applyPolly(P, PollyConfig(), Report);
}

} // namespace nv

#endif // NV_POLLY_POLLY_H
