//===- polly/Polly.cpp - Polyhedral-lite loop optimizer --------------------===//

#include "polly/Polly.h"

#include "ir/AccessAnalysis.h"
#include "ir/ConstEval.h"

#include <algorithm>
#include <cassert>

using namespace nv;

namespace {

/// Collects every array access (with per-dim affine forms) in a subtree.
struct AccessRecord {
  std::string Array;
  ScalarType ElemTy;
  bool IsStore;
  AffineIndex Flat;
  bool IsAffine;
};

class PollyPass {
public:
  PollyPass(const Program &P, const PollyConfig &Config, PollyReport &Report)
      : Prog(P), Config(Config), Report(Report), Env(runtimeEnv(P)) {}

  void run() {
    for (Function &F : Prog.Functions) {
      if (!F.Body)
        continue;
      auto *Body = dynCast<BlockStmt>(F.Body.get());
      assert(Body && "function body is a block");
      transformBlock(*Body, /*LoopVars=*/{});
    }
  }

  Program take() { return std::move(Prog); }

private:
  void transformBlock(BlockStmt &Block,
                      const std::vector<std::string> &LoopVars);
  void transformLoop(StmtPtr &Slot, std::vector<std::string> LoopVars);
  void tryInterchange(ForStmt &Outer);
  void tryTile(StmtPtr &Slot, const std::vector<std::string> &LoopVars);
  void tryFuse(BlockStmt &Block);

  void collectAccesses(const Stmt &S, const std::vector<std::string> &Vars,
                       std::vector<AccessRecord> &Out) const;
  void collectExprAccesses(const Expr &E,
                           const std::vector<std::string> &Vars,
                           std::vector<AccessRecord> &Out) const;
  bool isPerfectNest(const ForStmt &Outer, ForStmt *&Inner) const;
  static void collectArrays(const Stmt &S, bool StoresOnly,
                            std::vector<std::string> &Out);

  Program Prog;
  PollyConfig Config;
  PollyReport &Report;
  ValueEnv Env;
  int TileCounter = 0;
};

} // namespace

void PollyPass::collectExprAccesses(const Expr &E,
                                    const std::vector<std::string> &Vars,
                                    std::vector<AccessRecord> &Out) const {
  switch (E.kind()) {
  case ExprKind::ArrayRef: {
    const auto &Ref = static_cast<const ArrayRef &>(E);
    AccessRecord Rec;
    Rec.Array = Ref.Name;
    Rec.IsStore = false;
    const VarDecl *Decl = Prog.findGlobal(Ref.Name);
    Rec.ElemTy = Decl ? Decl->Ty : ScalarType::Int;
    std::vector<long long> Dims =
        Decl && Decl->isArray()
            ? Decl->Dims
            : std::vector<long long>(Ref.Indices.size(), 1 << 20);
    std::vector<AffineIndex> PerDim;
    for (const auto &Index : Ref.Indices) {
      PerDim.push_back(analyzeIndex(*Index, Vars));
      collectExprAccesses(*Index, Vars, Out);
    }
    Rec.Flat = flattenIndex(PerDim, Dims);
    Rec.IsAffine = Rec.Flat.IsAffine;
    Out.push_back(std::move(Rec));
    return;
  }
  case ExprKind::Unary:
    collectExprAccesses(*static_cast<const UnaryExpr &>(E).Sub, Vars, Out);
    return;
  case ExprKind::Binary: {
    const auto &B = static_cast<const BinaryExpr &>(E);
    collectExprAccesses(*B.LHS, Vars, Out);
    collectExprAccesses(*B.RHS, Vars, Out);
    return;
  }
  case ExprKind::Ternary: {
    const auto &T = static_cast<const TernaryExpr &>(E);
    collectExprAccesses(*T.Cond, Vars, Out);
    collectExprAccesses(*T.Then, Vars, Out);
    collectExprAccesses(*T.Else, Vars, Out);
    return;
  }
  case ExprKind::Cast:
    collectExprAccesses(*static_cast<const CastExpr &>(E).Sub, Vars, Out);
    return;
  case ExprKind::Call:
    for (const auto &Arg : static_cast<const CallExpr &>(E).Args)
      collectExprAccesses(*Arg, Vars, Out);
    return;
  default:
    return;
  }
}

void PollyPass::collectAccesses(const Stmt &S,
                                const std::vector<std::string> &Vars,
                                std::vector<AccessRecord> &Out) const {
  switch (S.kind()) {
  case StmtKind::Block:
    for (const auto &Child : static_cast<const BlockStmt &>(S).Stmts)
      collectAccesses(*Child, Vars, Out);
    return;
  case StmtKind::Decl: {
    const auto &D = static_cast<const DeclStmt &>(S);
    if (D.Init)
      collectExprAccesses(*D.Init, Vars, Out);
    return;
  }
  case StmtKind::Assign: {
    const auto &A = static_cast<const AssignStmt &>(S);
    collectExprAccesses(*A.RHS, Vars, Out);
    const size_t Before = Out.size();
    collectExprAccesses(*A.LValue, Vars, Out);
    // The outermost lvalue access is the store (inner index loads stay
    // loads); it is the last record produced by the lvalue walk.
    if (Out.size() > Before)
      Out.back().IsStore = true;
    return;
  }
  case StmtKind::For: {
    const auto &F = static_cast<const ForStmt &>(S);
    std::vector<std::string> Inner = Vars;
    Inner.push_back(F.IndexVar);
    collectAccesses(*F.Body, Inner, Out);
    return;
  }
  case StmtKind::If: {
    const auto &I = static_cast<const IfStmt &>(S);
    collectExprAccesses(*I.Cond, Vars, Out);
    collectAccesses(*I.Then, Vars, Out);
    if (I.Else)
      collectAccesses(*I.Else, Vars, Out);
    return;
  }
  case StmtKind::Return: {
    const auto &R = static_cast<const ReturnStmt &>(S);
    if (R.Value)
      collectExprAccesses(*R.Value, Vars, Out);
    return;
  }
  }
}

bool PollyPass::isPerfectNest(const ForStmt &Outer, ForStmt *&Inner) const {
  const auto *Body = dynCast<BlockStmt>(Outer.Body.get());
  if (!Body || Body->Stmts.size() != 1)
    return false;
  Inner = dynCast<ForStmt>(Body->Stmts[0].get());
  return Inner != nullptr;
}

void PollyPass::tryInterchange(ForStmt &Outer) {
  ForStmt *Inner = nullptr;
  if (!isPerfectNest(Outer, Inner))
    return;
  // The inner loop must itself be innermost for this simple pattern.
  ForStmt *Deeper = nullptr;
  if (isPerfectNest(*Inner, Deeper))
    return;
  // Bounds must not reference the other induction variable (rectangular
  // iteration space required for a plain interchange).
  const std::vector<std::string> OuterVar = {Outer.IndexVar};
  if (analyzeIndex(*Inner->Init, OuterVar).coeffOf(Outer.IndexVar) != 0 ||
      analyzeIndex(*Inner->Bound, OuterVar).coeffOf(Outer.IndexVar) != 0)
    return;

  std::vector<AccessRecord> Accesses;
  std::vector<std::string> Vars = {Outer.IndexVar, Inner->IndexVar};
  collectAccesses(*Inner->Body, Vars, Accesses);
  if (Accesses.empty())
    return;

  // Score: sum of |stride| along each candidate innermost variable.
  long long InnerScore = 0, OuterScore = 0;
  for (const AccessRecord &Rec : Accesses) {
    if (!Rec.IsAffine)
      return; // Indirect accesses: do not reorder.
    InnerScore += std::llabs(Rec.Flat.coeffOf(Inner->IndexVar));
    OuterScore += std::llabs(Rec.Flat.coeffOf(Outer.IndexVar));
    // A store that would become invariant along the new innermost loop
    // turns into a serial store-store dependence; never interchange into
    // that.
    if (Rec.IsStore && Rec.Flat.coeffOf(Outer.IndexVar) == 0)
      return;
  }
  if (OuterScore >= InnerScore)
    return; // Already the better order.

  // Legality: no loop-carried dependences that reorder (conservative: any
  // store whose index uses both variables with a constant offset blocks
  // the interchange unless it is the only access to that array).
  for (const AccessRecord &Store : Accesses) {
    if (!Store.IsStore)
      continue;
    for (const AccessRecord &Other : Accesses) {
      if (&Other == &Store || Other.Array != Store.Array)
        continue;
      if (!(Store.Flat.Terms == Other.Flat.Terms &&
            Store.Flat.Const == Other.Flat.Const))
        return; // Same array touched at different points: be conservative.
    }
  }

  // Swap the headers; bodies stay in place.
  std::swap(Outer.IndexVar, Inner->IndexVar);
  std::swap(Outer.Init, Inner->Init);
  std::swap(Outer.Cond, Inner->Cond);
  std::swap(Outer.Bound, Inner->Bound);
  std::swap(Outer.Step, Inner->Step);
  ++Report.Interchanged;
}

void PollyPass::tryTile(StmtPtr &Slot,
                        const std::vector<std::string> &LoopVars) {
  auto *Outer = dynCast<ForStmt>(Slot.get());
  assert(Outer && "tryTile expects a loop slot");
  ForStmt *Inner = nullptr;
  if (!isPerfectNest(*Outer, Inner))
    return;
  ForStmt *Deeper = nullptr;
  if (isPerfectNest(*Inner, Deeper))
    return; // Depth > 2 handled by recursion on the inner pair.

  // Reuse exists when the inner loop's data is re-walked by the outer
  // loop: some array indexed by the inner variable but not the outer one.
  std::vector<std::string> Vars = LoopVars;
  Vars.push_back(Outer->IndexVar);
  Vars.push_back(Inner->IndexVar);
  std::vector<AccessRecord> Accesses;
  collectAccesses(*Inner->Body, Vars, Accesses);

  long long ReusedBytes = 0;
  const auto InnerTrip = tripCount(*Inner, Env);
  if (!InnerTrip || *InnerTrip < Config.MinTileTrip)
    return;
  for (const AccessRecord &Rec : Accesses) {
    if (!Rec.IsAffine)
      return;
    const long long StrideInner =
        std::llabs(Rec.Flat.coeffOf(Inner->IndexVar));
    const long long StrideOuter =
        std::llabs(Rec.Flat.coeffOf(Outer->IndexVar));
    if (StrideInner > 0 && StrideOuter == 0)
      ReusedBytes += *InnerTrip *
                     std::min<long long>(StrideInner, 16) *
                     sizeOf(Rec.ElemTy);
    if (Rec.IsStore && StrideInner == 0)
      return; // Inner-invariant store: reordering would be unsafe.
  }
  // Tile only when the reused working set spills out of L1.
  if (ReusedBytes <= Config.L1Bytes)
    return;

  // Strip-mine the inner loop by TileSize and hoist the tile loop out:
  //   for (i ...) for (j = L; j < U; j += s) B
  // becomes
  //   for (jt = L; jt < U; jt += T*s)
  //     for (i ...) for (j = jt; j < min(jt + T*s, U); j += s) B
  const std::string TileVar =
      Inner->IndexVar + "t" + std::to_string(TileCounter++);
  const long long TileStep = Config.TileSize * Inner->Step;

  ExprPtr TileInit = Inner->Init->clone();
  ExprPtr TileBound = Inner->Bound->clone();

  // New inner bounds: j from jt to min(jt + T*s, U).
  Inner->Init = std::make_unique<VarRef>(TileVar);
  std::vector<ExprPtr> MinArgs;
  MinArgs.push_back(std::make_unique<BinaryExpr>(
      BinaryOp::Add, std::make_unique<VarRef>(TileVar),
      std::make_unique<IntLit>(TileStep)));
  MinArgs.push_back(Inner->Bound->clone());
  Inner->Bound = std::make_unique<CallExpr>("min", std::move(MinArgs));

  auto TileBody = std::make_unique<BlockStmt>();
  TileBody->Stmts.push_back(std::move(Slot)); // The old outer loop.
  auto TileLoop = std::make_unique<ForStmt>(
      TileVar, std::move(TileInit), Outer->Cond, std::move(TileBound),
      TileStep, std::move(TileBody));
  TileLoop->DeclaresIndex = true;
  Slot = std::move(TileLoop);
  ++Report.Tiled;
}

void PollyPass::collectArrays(const Stmt &S, bool StoresOnly,
                              std::vector<std::string> &Out) {
  switch (S.kind()) {
  case StmtKind::Block:
    for (const auto &Child : static_cast<const BlockStmt &>(S).Stmts)
      collectArrays(*Child, StoresOnly, Out);
    return;
  case StmtKind::Assign: {
    const auto &A = static_cast<const AssignStmt &>(S);
    if (const auto *Ref = dynCast<ArrayRef>(A.LValue.get()))
      Out.push_back(Ref->Name);
    if (StoresOnly)
      return;
    // Loads: walk the RHS for array names (approximate but sufficient
    // for the fusion safety check).
    struct Walker {
      static void walk(const Expr &E, std::vector<std::string> &Out) {
        switch (E.kind()) {
        case ExprKind::ArrayRef: {
          const auto &Ref = static_cast<const ArrayRef &>(E);
          Out.push_back(Ref.Name);
          for (const auto &Index : Ref.Indices)
            walk(*Index, Out);
          return;
        }
        case ExprKind::Unary:
          walk(*static_cast<const UnaryExpr &>(E).Sub, Out);
          return;
        case ExprKind::Binary: {
          const auto &B = static_cast<const BinaryExpr &>(E);
          walk(*B.LHS, Out);
          walk(*B.RHS, Out);
          return;
        }
        case ExprKind::Ternary: {
          const auto &T = static_cast<const TernaryExpr &>(E);
          walk(*T.Cond, Out);
          walk(*T.Then, Out);
          walk(*T.Else, Out);
          return;
        }
        case ExprKind::Cast:
          walk(*static_cast<const CastExpr &>(E).Sub, Out);
          return;
        case ExprKind::Call:
          for (const auto &Arg : static_cast<const CallExpr &>(E).Args)
            walk(*Arg, Out);
          return;
        default:
          return;
        }
      }
    };
    Walker::walk(*A.RHS, Out);
    return;
  }
  case StmtKind::For:
    collectArrays(*static_cast<const ForStmt &>(S).Body, StoresOnly, Out);
    return;
  case StmtKind::If: {
    const auto &I = static_cast<const IfStmt &>(S);
    collectArrays(*I.Then, StoresOnly, Out);
    if (I.Else)
      collectArrays(*I.Else, StoresOnly, Out);
    return;
  }
  default:
    return;
  }
}

void PollyPass::tryFuse(BlockStmt &Block) {
  for (size_t I = 0; I + 1 < Block.Stmts.size(); ++I) {
    auto *First = dynCast<ForStmt>(Block.Stmts[I].get());
    auto *Second = dynCast<ForStmt>(Block.Stmts[I + 1].get());
    if (!First || !Second)
      continue;
    // Identical headers required (same range and step).
    if (First->IndexVar != Second->IndexVar ||
        First->Step != Second->Step || First->Cond != Second->Cond)
      continue;
    const auto Lo1 = evalExpr(*First->Init, Env);
    const auto Lo2 = evalExpr(*Second->Init, Env);
    const auto Hi1 = evalExpr(*First->Bound, Env);
    const auto Hi2 = evalExpr(*Second->Bound, Env);
    if (!Lo1 || !Lo2 || !Hi1 || !Hi2 || *Lo1 != *Lo2 || *Hi1 != *Hi2)
      continue;
    // Safety: the second loop must not read or write arrays the first
    // writes (element-wise fusion only).
    std::vector<std::string> FirstStores, SecondTouches;
    collectArrays(*First->Body, /*StoresOnly=*/true, FirstStores);
    collectArrays(*Second->Body, /*StoresOnly=*/false, SecondTouches);
    bool Conflict = false;
    for (const std::string &W : FirstStores)
      for (const std::string &T : SecondTouches)
        Conflict |= W == T;
    if (Conflict)
      continue;

    auto *FirstBody = dynCast<BlockStmt>(First->Body.get());
    auto *SecondBody = dynCast<BlockStmt>(Second->Body.get());
    assert(FirstBody && SecondBody && "loop bodies are blocks");
    for (auto &S : SecondBody->Stmts)
      FirstBody->Stmts.push_back(std::move(S));
    Block.Stmts.erase(Block.Stmts.begin() + static_cast<long>(I) + 1);
    ++Report.Fused;
    --I; // Retry fusing with the next sibling.
  }
}

void PollyPass::transformLoop(StmtPtr &Slot,
                              std::vector<std::string> LoopVars) {
  auto *Loop = dynCast<ForStmt>(Slot.get());
  assert(Loop && "transformLoop expects a loop slot");

  tryInterchange(*Loop);

  // Recurse first so inner nests are in final shape, then tile this level.
  LoopVars.push_back(Loop->IndexVar);
  auto *Body = dynCast<BlockStmt>(Loop->Body.get());
  if (Body)
    transformBlock(*Body, LoopVars);

  tryTile(Slot, LoopVars);
}

void PollyPass::transformBlock(BlockStmt &Block,
                               const std::vector<std::string> &LoopVars) {
  tryFuse(Block);
  for (auto &S : Block.Stmts) {
    switch (S->kind()) {
    case StmtKind::For:
      transformLoop(S, LoopVars);
      break;
    case StmtKind::If: {
      auto &If = static_cast<IfStmt &>(*S);
      if (auto *Then = dynCast<BlockStmt>(If.Then.get()))
        transformBlock(*Then, LoopVars);
      if (If.Else)
        if (auto *Else = dynCast<BlockStmt>(If.Else.get()))
          transformBlock(*Else, LoopVars);
      break;
    }
    default:
      break;
    }
  }
}

Program nv::applyPolly(const Program &P, const PollyConfig &Config,
                       PollyReport *Report) {
  PollyReport Local;
  Program Copy;
  Copy.Globals = P.Globals;
  Copy.Functions = P.Functions; // Deep copy via Function's copy ctor.
  PollyPass Pass(Copy, Config, Report ? *Report : Local);
  Pass.run();
  return Pass.take();
}
