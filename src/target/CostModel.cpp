//===- target/CostModel.cpp - Legacy baseline cost model -------------------===//

#include "target/CostModel.h"

#include <algorithm>
#include <cmath>

using namespace nv;

bool BaselineCostModel::profitableToVectorize(const LoopSummary &Loop) const {
  if (Loop.HasUnknownCall || Loop.HasScalarCycle)
    return false;
  if (Loop.MaxSafeVF <= 1)
    return false;
  // Known-small trip counts are vetoed outright ("not beneficial").
  if (Loop.CompileTrip >= 0 && Loop.CompileTrip < TI.MinProfitableTrip)
    return false;
  // The legacy model scalarizes non-unit-stride and indirect accesses,
  // which makes the vector cost explode — it refuses such loops instead.
  for (const MemAccess &Access : Loop.Accesses) {
    if (!Access.IsAffine)
      return false;
    if (std::llabs(Access.InnerStride) > 1)
      return false;
  }
  return true;
}

double BaselineCostModel::instCost(const VecInst &Inst,
                                   const LoopSummary &Loop, int VF) const {
  // Everything is priced in "legacy register parts": how many 128-bit
  // operations the instruction expands to at this VF.
  const int Bits = static_cast<int>(sizeOf(Inst.Ty)) * 8;
  const double Parts =
      VF == 1 ? 1.0
              : std::max(1.0, static_cast<double>(Bits) * VF /
                                  TI.LegacyVectorBits);

  double Cost;
  switch (Inst.Op) {
  case VROp::Div:
  case VROp::Rem:
  case VROp::Sqrt:
    Cost = 10.0 * Parts; // Long-latency units, linearly priced.
    break;
  case VROp::Load:
  case VROp::Store: {
    if (Inst.AccessIdx >= 0 &&
        Inst.AccessIdx < static_cast<int>(Loop.Accesses.size())) {
      const MemAccess &Access = Loop.Accesses[Inst.AccessIdx];
      if (Access.IsAffine && Access.InnerStride == 0)
        return 0.0; // Loop-invariant: hoisted to a register.
      if (VF > 1 && (!Access.IsAffine || std::llabs(Access.InnerStride) > 1)) {
        // Scalarized: one extract/insert plus one scalar access per lane.
        return 2.0 * VF;
      }
    }
    Cost = Parts;
    break;
  }
  default:
    Cost = Parts;
    break;
  }
  // If-converted bodies pay for mask management on every predicated op.
  if (Inst.Predicated && VF > 1)
    Cost *= 1.5;
  return Cost;
}

double BaselineCostModel::costPerLane(const LoopSummary &Loop, int VF) const {
  VF = std::max(1, VF);
  double Total = 0.0;
  for (const VecInst &Inst : Loop.Body)
    Total += instCost(Inst, Loop, VF);
  // Loop control (index update + compare + branch), amortized over lanes
  // like everything else.
  Total += 1.0;
  // Reductions pay a log2(VF) shuffle epilogue, amortized over the trip
  // count the model assumes (it uses a fixed small divisor — it has no
  // notion of the actual iteration count beyond the profitability veto).
  if (Loop.Reduction.Kind != ReductionKind::None && VF > 1)
    Total += std::log2(static_cast<double>(VF)) / 8.0;
  return Total / VF;
}

VectorPlan BaselineCostModel::choose(const LoopSummary &Loop) const {
  if (!profitableToVectorize(Loop))
    return {1, 1};

  // Width cap: the model thinks in LegacyVectorBits-wide registers and
  // never picks a VF whose widest element type would exceed one register.
  const int WidestBits = static_cast<int>(sizeOf(Loop.WidestType)) * 8;
  const int WidthCap = std::max(1, TI.LegacyVectorBits / WidestBits);

  int BestVF = 1;
  double BestCost = costPerLane(Loop, 1);
  for (int VF = 2; VF <= WidthCap && VF <= Loop.MaxSafeVF && VF <= TI.MaxVF;
       VF *= 2) {
    const double Cost = costPerLane(Loop, VF);
    if (Cost < BestCost - 1e-12) {
      BestVF = VF;
      BestCost = Cost;
    }
  }
  if (BestVF == 1)
    return {1, 1};

  // Interleaving: the stock heuristic only interleaves to break reduction
  // dependence chains, and conservatively uses two accumulators.
  const int IF =
      Loop.Reduction.Kind != ReductionKind::None ? std::min(2, TI.MaxIF) : 1;
  return {BestVF, IF};
}
