//===- target/CostModel.h - Legacy baseline cost model ----------*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The stock compiler's vectorization cost model — the baseline the RL
/// agent is measured against (Fig 1). It is deliberately the *class* of
/// model the paper criticizes: linear per-instruction cost tables over the
/// loop body, reasoning in legacy 128-bit registers, with hard
/// profitability vetoes (strided or indirect accesses, tiny or unknown
/// trip counts, calls). It never sees port pressure, dependence-chain
/// latency, the cache hierarchy, or register spills — all of which the
/// simulated machine (sim/Machine.h) does model, so a learned policy can
/// beat these choices.
///
//===----------------------------------------------------------------------===//

#ifndef NV_TARGET_COSTMODEL_H
#define NV_TARGET_COSTMODEL_H

#include "ir/VecIR.h"
#include "target/TargetInfo.h"

namespace nv {

/// LLVM-like linear cost model choosing (VF, IF) for a lowered loop.
class BaselineCostModel {
public:
  explicit BaselineCostModel(const TargetInfo &TI = TargetInfo()) : TI(TI) {}

  /// Picks the (VF, IF) the stock compiler would use for \p Loop.
  VectorPlan choose(const LoopSummary &Loop) const;

  /// Modeled cost of one loop iteration divided by \p VF lanes — the
  /// quantity the model minimizes over the legal VFs.
  double costPerLane(const LoopSummary &Loop, int VF) const;

  /// True if the legacy profitability vetoes allow vectorizing \p Loop at
  /// all (no calls, no scalar recurrences, no strided/indirect accesses,
  /// trip count known-large-enough or unknown-but-assumed-large).
  bool profitableToVectorize(const LoopSummary &Loop) const;

private:
  /// Linear per-instruction cost at \p VF in legacy-width register parts.
  double instCost(const VecInst &Inst, const LoopSummary &Loop,
                  int VF) const;

  TargetInfo TI;
};

} // namespace nv

#endif // NV_TARGET_COSTMODEL_H
