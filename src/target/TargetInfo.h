//===- target/TargetInfo.h - Target and machine parameters ------*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The target description shared by every layer: the (VF, IF) action space
/// the agent chooses from (§3.3: powers of two up to MAX_VF/MAX_IF), the
/// assumptions the legacy baseline cost model is allowed to make, and the
/// parameters of the simulated machine (an AVX2-class Intel i7, the class
/// of hardware the paper evaluates on).
///
/// The split mirrors the paper's central observation: the *cost model*
/// reasons about a much simpler machine (128-bit SSE-era registers, linear
/// per-instruction costs) than the *hardware* actually is — the gap between
/// TargetInfo::LegacyVectorBits and MachineConfig::VectorBits is where the
/// learned policy finds its speedups.
///
//===----------------------------------------------------------------------===//

#ifndef NV_TARGET_TARGETINFO_H
#define NV_TARGET_TARGETINFO_H

#include <vector>

namespace nv {

/// One vectorization decision: the factors named by
/// `#pragma clang loop vectorize_width(VF) interleave_count(IF)`.
struct VectorPlan {
  int VF = 1; ///< vectorize_width
  int IF = 1; ///< interleave_count
};

inline bool operator==(const VectorPlan &A, const VectorPlan &B) {
  return A.VF == B.VF && A.IF == B.IF;
}
inline bool operator!=(const VectorPlan &A, const VectorPlan &B) {
  return !(A == B);
}

/// The action space and the baseline model's assumptions.
struct TargetInfo {
  /// Largest vectorization factor in the action space (2^6, §3.3).
  int MaxVF = 64;
  /// Largest interleaving factor in the action space (2^4, §3.3).
  int MaxIF = 16;

  /// Register width (bits) the *legacy* baseline cost model reasons in.
  /// Deliberately a generation behind the simulated hardware.
  int LegacyVectorBits = 128;
  /// Known trip counts below this are "not worth vectorizing" to the
  /// baseline model.
  long long MinProfitableTrip = 16;

  /// The discrete VF actions: {1, 2, 4, ..., MaxVF}.
  std::vector<int> vfActions() const {
    std::vector<int> Actions;
    for (int VF = 1; VF <= MaxVF; VF *= 2)
      Actions.push_back(VF);
    return Actions;
  }

  /// The discrete IF actions: {1, 2, 4, ..., MaxIF}.
  std::vector<int> ifActions() const {
    std::vector<int> Actions;
    for (int IF = 1; IF <= MaxIF; IF *= 2)
      Actions.push_back(IF);
    return Actions;
  }
};

/// Parameters of the simulated machine (sim/Machine.h). Defaults model an
/// AVX2-class out-of-order core with a three-level memory hierarchy.
struct MachineConfig {
  // --- Issue resources (uops per cycle) -----------------------------------
  double ScalarIssueWidth = 4.0; ///< Scalar pipes.
  double VecIssueWidth = 2.0;    ///< Vector ALU pipes.
  double LoadPorts = 2.0;
  double StorePorts = 1.0;

  /// Native SIMD register width in bits (AVX2). Wider requests split into
  /// multiple native uops.
  double VectorBits = 256.0;

  /// Architectural vector registers; beyond this, values spill.
  double NumVecRegs = 16.0;
  /// Extra load+store uops per spilled register per chunk.
  double SpillCostPerReg = 2.0;

  // --- Operation latencies (cycles), for dependence chains ----------------
  double IntAddLatency = 3.0; ///< Incl. accumulator forwarding in SIMD loops.
  double IntMulLatency = 3.0;
  double FloatAddLatency = 4.0;
  double FloatMulLatency = 4.0;
  double DivLatency = 20.0;
  double SqrtLatency = 15.0;
  double MinMaxLatency = 2.0;

  // --- Memory hierarchy ----------------------------------------------------
  long long L1Bytes = 32 * 1024;
  long long L2Bytes = 1024 * 1024;
  double CacheLineBytes = 64.0;
  double L1LineCost = 2.0;         ///< Cycles per line, L1-resident footprint.
  double L2LineCost = 8.0;         ///< ... L2-resident footprint.
  double MemLineCost = 30.0;       ///< ... DRAM-resident footprint.
  double PrefetchedLineCost = 4.0; ///< Constant-stride streams prefetch.
  double MaxMLP = 10.0;            ///< Max overlapped outstanding misses.
  double GatherPerElement = 0.7;   ///< Extra load-port uops per gathered lane.
  double ScatterPerElement = 1.0;  ///< Extra store-port uops per scattered lane.

  // --- Control flow ---------------------------------------------------------
  double PredicateMissRate = 0.15; ///< Data-dependent branch miss rate.
  double BranchMissPenalty = 14.0; ///< Cycles per miss (scalar loops only).
  double MaskedOverhead = 0.3;     ///< Relative uop overhead of masked ops.

  // --- Loop overheads -------------------------------------------------------
  double LoopSetupCycles = 10.0;  ///< Per loop entry.
  double LoopOverheadCycles = 1.0; ///< Per vector chunk (index update, branch).
};

} // namespace nv

#endif // NV_TARGET_TARGETINFO_H
