//===- sim/Compiler.h - Simulated clang/LLVM pipeline -----------*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The stand-in for "compile the program with clang/LLVM and run it" from
/// the paper's training loop (Fig 3). It:
///
///  1. extracts and lowers every loop,
///  2. honors injected pragmas but *clamps them to legality* (the paper:
///     "sometimes the compiler can decide not to consider these pragmas if
///     it is not feasible ... if the agent accidentally injected bad
///     pragmas, the compiler will ignore it"),
///  3. falls back to the baseline cost model where no pragma is present,
///  4. models compile time, which grows superlinearly with the amount of
///     vector code emitted — the basis of the paper's §3.4 compile-timeout
///     penalty (reward -9 beyond 10x the baseline compile time).
///
//===----------------------------------------------------------------------===//

#ifndef NV_SIM_COMPILER_H
#define NV_SIM_COMPILER_H

#include "ir/Legality.h"
#include "ir/VecIR.h"
#include "lang/AST.h"
#include "lang/LoopExtractor.h"
#include "sim/Machine.h"
#include "target/CostModel.h"
#include "target/TargetInfo.h"

#include <vector>

namespace nv {

/// One compiled loop: the summary plus requested and effective factors.
struct CompiledLoop {
  LoopSummary Summary;
  VectorPlan Requested;     ///< Pragma (or baseline choice).
  VectorPlan Effective;     ///< After legality clamping.
  bool FromPragma = false;  ///< True if the factors came from a pragma.
  double Cycles = 0.0;      ///< Execution cycles of this loop.
};

/// Result of compiling (and timing) a whole program.
struct CompileResult {
  std::vector<CompiledLoop> Loops;
  double CompileCycles = 0.0;
  double BaselineCompileCycles = 0.0; ///< Same program, baseline plans.
  bool CompileTimedOut = false;       ///< > Timeout x baseline (§3.4).
  double ExecutionCycles = 0.0;       ///< Total program run time.
};

/// The simulated compiler + runner.
class SimCompiler {
public:
  SimCompiler(const TargetInfo &TI = TargetInfo(),
              const MachineConfig &MC = MachineConfig())
      : TI(TI), Mach(MC), Baseline(TI) {}

  const TargetInfo &target() const { return TI; }
  const Machine &machine() const { return Mach; }
  const BaselineCostModel &baselineModel() const { return Baseline; }

  /// Compiles \p P, taking factors from pragmas where present and from the
  /// baseline cost model otherwise, then simulates execution.
  CompileResult compileAndRun(Program &P) const;

  /// Compiles \p P ignoring all pragmas (pure baseline). Convenience for
  /// reward normalization.
  CompileResult compileBaseline(Program &P) const;

  /// Legalizes a requested plan against a loop's constraints: rounds to
  /// powers of two, clamps VF to MaxSafeVF and the action-space bounds.
  VectorPlan legalize(const LoopSummary &Loop, VectorPlan Requested) const;

  /// Compile-time model (cycles) for one loop at the *requested* factors;
  /// superlinear in emitted vector code size.
  double loopCompileCycles(const LoopSummary &Loop,
                           VectorPlan Requested) const;

  /// Compile-timeout multiplier (paper: 10x baseline).
  static constexpr double TimeoutFactor = 10.0;

  /// A program analyzed once so that many (VF, IF) assignments can be
  /// timed without re-extracting/re-lowering (the RL training loop costs
  /// one of these evaluations per step).
  struct Precompiled {
    std::vector<LoopSummary> Summaries;
    /// Full legality verdicts, parallel to Summaries: the action masks the
    /// RL policy samples under and the isLegal() gate for the searches.
    std::vector<LegalitySummary> Legality;
    std::vector<VectorPlan> BaselinePlans; ///< Cost-model choices.
    double BaselineCompileCycles = 0.0;
    double BaselineExecutionCycles = 0.0;
  };

  /// Analyzes \p P once (ignoring pragmas).
  Precompiled precompile(Program &P) const;

  /// Times \p Pre under \p Requested factors (one per loop). Legalizes,
  /// runs the machine model, and sets \p TimedOut per the compile-time
  /// model.
  double runPrecompiled(const Precompiled &Pre,
                        const std::vector<VectorPlan> &Requested,
                        bool &TimedOut) const;

private:
  CompileResult compileWith(Program &P, bool UsePragmas) const;

  TargetInfo TI;
  Machine Mach;
  BaselineCostModel Baseline;
};

} // namespace nv

#endif // NV_SIM_COMPILER_H
