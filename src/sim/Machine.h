//===- sim/Machine.h - Cycle-level SIMD machine model -----------*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "hardware" the paper ran on (an AVX-capable Intel i7) is replaced by
/// this deterministic cycle model. For a loop executed at a given (VF, IF)
/// it accounts for:
///
///  - port throughput (vector ALU, load, store issue widths, native-width
///    uop splitting for wide VFs),
///  - dependence-chain latency (reduction accumulators; IF independent
///    accumulators shorten the chain — why IF matters for dot product),
///  - the memory hierarchy (footprint-classified line costs, strided
///    access and gather/scatter penalties, memory-level parallelism that
///    grows with IF),
///  - masking overhead for predicated bodies vs branch misses when scalar,
///  - remainder iterations, reduction epilogues, register spills, and
///    per-chunk loop overhead.
///
/// None of this is visible to the baseline cost model — the gap between
/// the two surfaces is precisely what the RL agent learns to exploit.
///
//===----------------------------------------------------------------------===//

#ifndef NV_SIM_MACHINE_H
#define NV_SIM_MACHINE_H

#include "ir/VecIR.h"
#include "target/TargetInfo.h"

namespace nv {

/// Detailed per-loop timing breakdown (exposed for tests and debugging).
struct LoopTiming {
  double TotalCycles = 0.0;
  double ThroughputCycles = 0.0; ///< Port-bound component per chunk.
  double MemoryCycles = 0.0;     ///< Memory component per chunk.
  double LatencyCycles = 0.0;    ///< Dep-chain component per chunk.
  double RemainderCycles = 0.0;
  double EpilogueCycles = 0.0;
  long long Chunks = 0;
  long long RemainderIters = 0;
};

/// The simulated machine.
class Machine {
public:
  explicit Machine(const MachineConfig &Config = MachineConfig())
      : Config(Config) {}

  const MachineConfig &config() const { return Config; }

  /// Cycles to execute \p Loop once (all OuterIterations included) at the
  /// already-legalized factors \p VF and \p IF.
  double loopCycles(const LoopSummary &Loop, int VF, int IF) const;

  /// Like loopCycles but returns the breakdown.
  LoopTiming timeLoop(const LoopSummary &Loop, int VF, int IF) const;

  /// Cycles for one scalar iteration of \p Loop (used for remainders and
  /// as the VF=1 path), with \p Unroll-way unrolling (IF acts as an
  /// unroll factor for scalar loops).
  double scalarIterCycles(const LoopSummary &Loop, int Unroll) const;

  /// Operation latency in cycles for dependence chains.
  double opLatency(VROp Op, ScalarType Ty) const;

  /// Bytes the inner loop touches per full execution (capped per array).
  double loopFootprintBytes(const LoopSummary &Loop) const;

  /// Cycles per cache line given a footprint classification.
  double lineCost(double FootprintBytes) const;

private:
  MachineConfig Config;
};

} // namespace nv

#endif // NV_SIM_MACHINE_H
