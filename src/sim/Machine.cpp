//===- sim/Machine.cpp - Cycle-level SIMD machine model -------------------===//

#include "sim/Machine.h"

#include <algorithm>
#include <cmath>

using namespace nv;

double Machine::opLatency(VROp Op, ScalarType Ty) const {
  const bool IsFloat = isFloatTy(Ty);
  switch (Op) {
  case VROp::Add:
  case VROp::Sub:
    return IsFloat ? Config.FloatAddLatency : Config.IntAddLatency;
  case VROp::Mul:
    return IsFloat ? Config.FloatMulLatency : Config.IntMulLatency;
  case VROp::Div:
  case VROp::Rem:
    return Config.DivLatency;
  case VROp::Sqrt:
    return Config.SqrtLatency;
  case VROp::Min:
  case VROp::Max:
    return Config.MinMaxLatency;
  default:
    return 1.0;
  }
}

double Machine::loopFootprintBytes(const LoopSummary &Loop) const {
  // Max bytes touched per distinct array over one inner-loop execution.
  std::vector<std::pair<std::string, double>> PerArray;
  for (const MemAccess &Access : Loop.Accesses) {
    const double ElemBytes = sizeOf(Access.ElemTy);
    const double ArrayBytes =
        static_cast<double>(Access.ArrayElements) * ElemBytes;
    double Touched;
    if (!Access.IsAffine) {
      Touched = ArrayBytes; // Random access pattern: whole array.
    } else {
      const double Stride =
          std::max<double>(1.0, std::llabs(Access.InnerStride));
      Touched = std::min(ArrayBytes,
                         static_cast<double>(Loop.RuntimeTrip) * Stride *
                             ElemBytes);
    }
    bool Merged = false;
    for (auto &[Name, Bytes] : PerArray) {
      if (Name == Access.Array) {
        Bytes = std::max(Bytes, Touched);
        Merged = true;
        break;
      }
    }
    if (!Merged)
      PerArray.emplace_back(Access.Array, Touched);
  }
  double Total = 0.0;
  for (const auto &[Name, Bytes] : PerArray)
    Total += Bytes;
  return Total;
}

double Machine::lineCost(double FootprintBytes) const {
  if (FootprintBytes <= static_cast<double>(Config.L1Bytes))
    return Config.L1LineCost;
  if (FootprintBytes <= static_cast<double>(Config.L2Bytes))
    return Config.L2LineCost;
  return Config.MemLineCost;
}

double Machine::scalarIterCycles(const LoopSummary &Loop, int Unroll) const {
  Unroll = std::max(1, Unroll);
  double Uops = 0.0;
  double ChainLatency = 0.0;
  for (const VecInst &Inst : Loop.Body) {
    double C = 1.0;
    if (Inst.Op == VROp::Div || Inst.Op == VROp::Rem ||
        Inst.Op == VROp::Sqrt)
      C = 6.0;
    Uops += C;
    if (Inst.ReductionUpdate)
      ChainLatency += opLatency(Inst.Op, Inst.Ty);
  }
  // Loop control is one macro-fused uop per iteration, amortized by
  // unrolling.
  const double Throughput =
      (Uops + 1.0 / Unroll) / Config.ScalarIssueWidth;

  // Memory: cost per element = lines per element * line cost, with scalar
  // MLP limited by the unroll factor.
  const double LineCostCycles = lineCost(loopFootprintBytes(Loop));
  double MemCycles = 0.0;
  for (const MemAccess &Access : Loop.Accesses) {
    const double ElemBytes = sizeOf(Access.ElemTy);
    double LinesPerElem;
    double PerLine = LineCostCycles;
    if (!Access.IsAffine) {
      LinesPerElem = 1.0; // Unpredictable: full miss cost.
    } else if (Access.InnerStride == 0) {
      LinesPerElem = 0.0; // Register-resident across iterations.
    } else {
      LinesPerElem = std::min(
          1.0, std::llabs(Access.InnerStride) * ElemBytes /
                   static_cast<double>(Config.CacheLineBytes));
      // Constant strides are prefetchable.
      PerLine = std::min(PerLine, Config.PrefetchedLineCost);
    }
    MemCycles += LinesPerElem * PerLine;
  }
  if (LineCostCycles > Config.L1LineCost) {
    const double MLP = std::min<double>(Unroll, Config.MaxMLP);
    MemCycles /= std::max(1.0, 0.5 * (1.0 + MLP));
  }

  // Data-dependent branches miss sometimes in scalar code; vector code
  // replaces them with masks.
  double BranchCycles = 0.0;
  if (Loop.HasPredicate)
    BranchCycles = Config.PredicateMissRate * Config.BranchMissPenalty;

  // Reduction chains limit scalar ILP; unrolling with multiple
  // accumulators relaxes them. A genuine serial recurrence (crc-style)
  // cannot be broken by unrolling: its chain advances once per iteration
  // no matter what.
  double Latency = ChainLatency / static_cast<double>(Unroll);
  if (Loop.HasScalarCycle) {
    double SerialChain = 0.0;
    for (const VecInst &Inst : Loop.Body)
      if (Inst.Op != VROp::Load && Inst.Op != VROp::Store)
        SerialChain += 0.5 * opLatency(Inst.Op, Inst.Ty);
    Latency = std::max(Latency, std::max(SerialChain, 2.0));
  }

  return std::max({Throughput, Latency, MemCycles}) + BranchCycles;
}

LoopTiming Machine::timeLoop(const LoopSummary &Loop, int VF, int IF) const {
  LoopTiming T;
  VF = std::max(1, VF);
  IF = std::max(1, IF);
  const long long N = std::max<long long>(0, Loop.RuntimeTrip);
  const double OuterIters =
      static_cast<double>(std::max<long long>(1, Loop.OuterIterations));

  if (N == 0) {
    T.TotalCycles = Config.LoopSetupCycles * OuterIters;
    return T;
  }

  if (VF == 1) {
    // Scalar execution; IF acts as an unroll factor.
    const double PerIter = scalarIterCycles(Loop, IF);
    T.TotalCycles =
        (static_cast<double>(N) * PerIter + Config.LoopSetupCycles) *
        OuterIters;
    T.ThroughputCycles = PerIter;
    return T;
  }

  const long long ChunkElems = static_cast<long long>(VF) * IF;
  const long long Chunks = N / ChunkElems;
  const long long Remainder = N - Chunks * ChunkElems;
  T.Chunks = Chunks;
  T.RemainderIters = Remainder;

  // --- Port throughput per chunk -----------------------------------------
  double AluUops = 0.0, LoadUops = 0.0, StoreUops = 0.0;
  double RedLatencyPerChunk = 0.0;
  for (const VecInst &Inst : Loop.Body) {
    const int Bits = static_cast<int>(sizeOf(Inst.Ty)) * 8 * VF;
    // Port occupancy in native-width slots. Sub-native operations still
    // consume an issue slot (the 0.25 floor), so very narrow VFs waste
    // bandwidth, but a half-width op does not cost a full slot.
    const double SlotCost =
        std::max(static_cast<double>(Bits) / Config.VectorBits, 0.25);
    double Uops = SlotCost * IF;
    if (Inst.Predicated)
      Uops *= 1.0 + Config.MaskedOverhead;
    if (Inst.Op == VROp::Div || Inst.Op == VROp::Rem ||
        Inst.Op == VROp::Sqrt)
      Uops *= 6.0; // Long-latency, partially pipelined units.

    switch (Inst.Op) {
    case VROp::Load:
      LoadUops += Uops;
      break;
    case VROp::Store:
      StoreUops += Uops;
      break;
    default:
      AluUops += Uops;
      break;
    }
    if (Inst.ReductionUpdate) {
      // One chain step per chunk: each accumulator advances once per
      // chunk, and the IF accumulators (and native sub-registers of a
      // wide VF) advance in parallel.
      RedLatencyPerChunk += opLatency(Inst.Op, Inst.Ty);
    }
  }

  // Gathers/scatters add per-element uops on the load/store ports; line
  // traffic is priced per access (constant strides are prefetchable).
  const double LineCostCycles = lineCost(loopFootprintBytes(Loop));
  double MemCyclesRaw = 0.0;
  for (const MemAccess &Access : Loop.Accesses) {
    const double ElemBytes = sizeOf(Access.ElemTy);
    const double Elems = static_cast<double>(ChunkElems);
    if (!Access.IsAffine) {
      (Access.IsStore ? StoreUops : LoadUops) +=
          Elems * (Access.IsStore ? Config.ScatterPerElement
                                  : Config.GatherPerElement);
      MemCyclesRaw += Elems * LineCostCycles; // Unpredictable misses.
      continue;
    }
    const long long Stride = std::llabs(Access.InnerStride);
    if (Stride == 0)
      continue; // Invariant: hoisted to a register.
    if (Stride == 1) {
      MemCyclesRaw += Elems * ElemBytes / Config.CacheLineBytes *
                      std::min(LineCostCycles, Config.PrefetchedLineCost);
      continue;
    }
    // Strided: gather uops plus one (prefetched) line per element, up to
    // the stride density limit.
    (Access.IsStore ? StoreUops : LoadUops) +=
        Elems * (Access.IsStore ? Config.ScatterPerElement
                                : Config.GatherPerElement);
    MemCyclesRaw += Elems *
                    std::min(1.0, static_cast<double>(Stride) * ElemBytes /
                                      Config.CacheLineBytes) *
                    std::min(LineCostCycles, Config.PrefetchedLineCost);
  }

  // Register pressure. Only values that persist across the interleaved
  // copies replicate with IF (reduction accumulators); body temporaries
  // are renamed/reused. Everything splits into native parts at wide VF.
  const int WidestBits = static_cast<int>(sizeOf(Loop.WidestType)) * 8;
  const double PartsPerValue =
      std::max(1.0, static_cast<double>(WidestBits) * VF /
                        Config.VectorBits);
  const double Accumulators =
      Loop.Reduction.Kind != ReductionKind::None ? 1.0 : 0.0;
  const double RegsUsed =
      PartsPerValue * (Accumulators * IF + Loop.LiveValues);
  double SpillUops = 0.0;
  if (RegsUsed > Config.NumVecRegs)
    SpillUops = (RegsUsed - Config.NumVecRegs) * Config.SpillCostPerReg;
  LoadUops += SpillUops;
  StoreUops += SpillUops;

  const double Throughput =
      std::max({AluUops / Config.VecIssueWidth,
                LoadUops / Config.LoadPorts,
                StoreUops / Config.StorePorts}) +
      Config.LoopOverheadCycles;

  // --- Memory per chunk ----------------------------------------------------
  double MemCycles = MemCyclesRaw;
  if (LineCostCycles > Config.L1LineCost) {
    // Out-of-L1 misses overlap; more interleaving sustains more misses.
    const double MLP = std::min<double>(IF * 2.0, Config.MaxMLP);
    MemCycles /= std::max(1.0, 0.5 * (1.0 + MLP));
  }

  const double PerChunk =
      std::max({Throughput, MemCycles, RedLatencyPerChunk});

  // --- Remainder and epilogue ---------------------------------------------
  const double RemainderCycles =
      static_cast<double>(Remainder) * scalarIterCycles(Loop, 1);
  double Epilogue = 0.0;
  if (Loop.Reduction.Kind != ReductionKind::None) {
    const double Steps = std::log2(static_cast<double>(VF)) +
                         std::log2(static_cast<double>(IF)) +
                         PartsPerValue - 1.0;
    Epilogue = 2.0 * std::max(0.0, Steps);
  }

  T.ThroughputCycles = Throughput;
  T.MemoryCycles = MemCycles;
  T.LatencyCycles = RedLatencyPerChunk;
  T.RemainderCycles = RemainderCycles;
  T.EpilogueCycles = Epilogue;
  T.TotalCycles = (static_cast<double>(Chunks) * PerChunk +
                   RemainderCycles + Epilogue + Config.LoopSetupCycles) *
                  OuterIters;
  return T;
}

double Machine::loopCycles(const LoopSummary &Loop, int VF, int IF) const {
  return timeLoop(Loop, VF, IF).TotalCycles;
}
