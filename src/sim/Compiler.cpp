//===- sim/Compiler.cpp - Simulated clang/LLVM pipeline -------------------===//

#include "sim/Compiler.h"

#include "ir/Dependence.h"
#include "ir/Lowering.h"

#include <algorithm>

using namespace nv;

VectorPlan SimCompiler::legalize(const LoopSummary &Loop,
                                 VectorPlan Requested) const {
  // Shared with LegalitySummary::clamp(), so the action masks the policy
  // samples under agree with this clamp by construction.
  return legalizePlan(Loop.MaxSafeVF, Requested, TI);
}

double SimCompiler::loopCompileCycles(const LoopSummary &Loop,
                                      VectorPlan Requested) const {
  // Code-generation work scales with the number of machine instructions
  // the vector body expands to: body size x interleave copies x native
  // register parts. The quadratic term models the superlinear passes
  // (regalloc, scheduling) that make over-wide requests explode — the
  // §3.4 "trying to vectorize more than plausible" effect.
  const double BodySize = std::max<size_t>(1, Loop.Body.size());
  const int WidestBits = static_cast<int>(sizeOf(Loop.WidestType)) * 8;
  const double Parts = std::max(
      1.0, static_cast<double>(WidestBits) * Requested.VF /
               Mach.config().VectorBits);
  const double Units = BodySize * Requested.IF * Parts;
  return 400.0 + 4.0 * Units + Units * Units / 8.0;
}

CompileResult SimCompiler::compileWith(Program &P, bool UsePragmas) const {
  CompileResult Result;
  std::vector<LoopSite> Sites = extractLoops(P);
  for (LoopSite &Site : Sites) {
    CompiledLoop CL;
    CL.Summary = lowerLoop(P, Site, TI.MaxVF);

    const VectorPlan BaselinePlan = Baseline.choose(CL.Summary);
    if (UsePragmas && Site.Inner->Pragma) {
      CL.Requested.VF = Site.Inner->Pragma->VF;
      CL.Requested.IF = Site.Inner->Pragma->IF;
      CL.FromPragma = true;
    } else {
      CL.Requested = BaselinePlan;
    }
    CL.Effective = legalize(CL.Summary, CL.Requested);
    CL.Cycles = Mach.loopCycles(CL.Summary, CL.Effective.VF,
                                CL.Effective.IF);

    Result.CompileCycles += loopCompileCycles(CL.Summary, CL.Requested);
    Result.BaselineCompileCycles +=
        loopCompileCycles(CL.Summary, BaselinePlan);
    Result.ExecutionCycles += CL.Cycles;
    Result.Loops.push_back(std::move(CL));
  }
  if (Result.BaselineCompileCycles > 0.0 &&
      Result.CompileCycles >
          TimeoutFactor * Result.BaselineCompileCycles)
    Result.CompileTimedOut = true;
  return Result;
}

CompileResult SimCompiler::compileAndRun(Program &P) const {
  return compileWith(P, /*UsePragmas=*/true);
}

SimCompiler::Precompiled SimCompiler::precompile(Program &P) const {
  Precompiled Pre;
  std::vector<LoopSite> Sites = extractLoops(P);
  for (const LoopSite &Site : Sites) {
    LoopSummary Summary = lowerLoop(P, Site, TI.MaxVF);
    const VectorPlan Plan = Baseline.choose(Summary);
    Pre.BaselineCompileCycles += loopCompileCycles(Summary, Plan);
    const VectorPlan Legal = legalize(Summary, Plan);
    Pre.BaselineExecutionCycles +=
        Mach.loopCycles(Summary, Legal.VF, Legal.IF);
    Pre.BaselinePlans.push_back(Plan);
    Pre.Legality.push_back(analyzeLegality(Summary, TI));
    Pre.Summaries.push_back(std::move(Summary));
  }
  return Pre;
}

double SimCompiler::runPrecompiled(const Precompiled &Pre,
                                   const std::vector<VectorPlan> &Requested,
                                   bool &TimedOut) const {
  assert(Requested.size() == Pre.Summaries.size() &&
         "one plan per loop required");
  double Cycles = 0.0;
  double CompileCycles = 0.0;
  for (size_t I = 0; I < Pre.Summaries.size(); ++I) {
    const LoopSummary &Summary = Pre.Summaries[I];
    CompileCycles += loopCompileCycles(Summary, Requested[I]);
    const VectorPlan Legal =
        I < Pre.Legality.size()
            ? Pre.Legality[I].clamp(Requested[I], TI)
            : legalize(Summary, Requested[I]);
    Cycles += Mach.loopCycles(Summary, Legal.VF, Legal.IF);
  }
  TimedOut = Pre.BaselineCompileCycles > 0.0 &&
             CompileCycles > TimeoutFactor * Pre.BaselineCompileCycles;
  return Cycles;
}

CompileResult SimCompiler::compileBaseline(Program &P) const {
  return compileWith(P, /*UsePragmas=*/false);
}
