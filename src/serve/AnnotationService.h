//===- serve/AnnotationService.h - Batched annotation serving ---*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The high-throughput inference front-end over a trained model. Where
/// NeuroVectorizer::annotate handles one program on one thread, this
/// service takes a whole batch and pipelines it in three phases:
///
///   1. extract  (parallel)  parse, strip pragmas, extract loop sites and
///                           their path contexts — allocation-free
///                           through a per-thread ContextBuffer arena —
///                           hash each site's canonical context bag into
///                           a cache key, and answer it from the sharded
///                           plan cache right here, on the worker: cache
///                           hits never touch the model lock, and
///                           concurrent batches' lookups spread over the
///                           cache shards instead of serializing.
///   2. infer    (serial)    deduplicate the remaining misses by key and
///                           run ONE Code2Vec::encodeSpansInto over their
///                           borrowed context spans (no bag copies), then
///                           hand each backend its rows (the RL backend's
///                           share is a single batched Policy::forward —
///                           the FCNN trunk becomes one matrix-matrix
///                           multiply, row-panel-parallel on the same
///                           pool). Requests routed to source-kind
///                           backends (baseline, random, brute force) are
///                           searched per program on the pool, outside
///                           the model lock.
///   3. render   (parallel)  inject the chosen pragmas and re-print each
///                           program.
///
/// Every request is answered by the backend named by its Method override
/// (ServeConfig::DefaultMethod otherwise); the method is part of the plan
/// cache key, so backends never answer for each other.
///
/// Degradation ladder (fault-hardening pass): when the requested backend
/// is unavailable — unfitted, failing, or circuit-broken — and
/// ServeConfig::Fallback is on, the request walks down RL → decision
/// tree → baseline cost model → identity plans instead of erroring, and
/// the result is flagged Degraded. Each backend has a CircuitBreaker fed
/// by predict failures/timeouts, so a broken backend is skipped at
/// resolution time instead of failing every request for a cooldown. An
/// *unregistered* method stays a hard error (that is a configuration
/// bug, not a transient fault).
///
/// Path contexts are extracted with the same inner/outer-loop selection
/// the training environment used (ServeConfig::InnerContextOnly, mirrored
/// from VectorizationEnv and persisted in the model file) — serving a
/// model on embeddings it was never trained on is silent skew.
///
/// Results are deterministic: phase 2 walks sites in request order, the
/// policy is evaluated greedily, the kernels are bit-identical at any pool
/// size, and phases 1/3 are pure per-item work — so the pool size never
/// changes the output, only the wall clock.
///
//===----------------------------------------------------------------------===//

#ifndef NV_SERVE_ANNOTATIONSERVICE_H
#define NV_SERVE_ANNOTATIONSERVICE_H

#include "embedding/Code2Vec.h"
#include "ir/Legality.h"
#include "predictors/Predictor.h"
#include "rl/Policy.h"
#include "serve/CircuitBreaker.h"
#include "serve/ServeStats.h"
#include "support/FaultInjection.h"
#include "support/ThreadPool.h"
#include "target/TargetInfo.h"

#include <atomic>
#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace nv {

class Counter;
class ModelHost;
class ServingModel;
class ShardedHistogram;
class TraceBuffer;

/// Service tuning knobs.
struct ServeConfig {
  int Threads = 4;            ///< Worker pool size.
  size_t CacheCapacity = 4096; ///< LRU plan-cache entries (0 disables).
  /// Plan-cache shard count (rounded up to a power of two). Concurrent
  /// annotateBatch callers hit different shards' mutexes instead of one
  /// global lock; capacity is split evenly across shards.
  int CacheShards = 8;
  /// Embed the innermost loop's body instead of the outermost's. Must
  /// match the setting the model was trained with
  /// (VectorizationEnv::innerContextOnly); NeuroVectorizer::service()
  /// fills it in automatically and load() restores it from the model file.
  bool InnerContextOnly = false;
  /// Backend answering requests that carry no per-request override.
  PredictMethod DefaultMethod = PredictMethod::RL;
  /// Borrowed-model mode: the policy consumes legality-feature-widened
  /// states, so phase 2 appends each miss row's analysis digest before
  /// the forward. NeuroVectorizer::service() fills it in; hosted mode
  /// ignores it (the flag rides with each generation's metadata).
  bool LegalityFeatures = false;
  /// Borrowed-model mode: serve through int8-quantized weights.
  /// NeuroVectorizer::service() honors it by quantizing the borrowed
  /// embedder/policy (and re-quantizing after each train()/load());
  /// hosted mode ignores it — quantization rides with each generation
  /// via ServingModelConfig::Quantized. See docs/quantization.md.
  bool Quantized = false;
  /// Record per-phase latency histograms (serve.*_us), pool queue
  /// metrics, and — when the trace sampling knob is on — phase spans
  /// into the process-wide telemetry (support/Telemetry.h). Histogram
  /// recording is a few relaxed atomic adds per phase; spans cost
  /// nothing until Telemetry::trace().setSampleEvery() enables them.
  bool Telemetry = true;
  /// Degradation ladder: when the requested backend is unavailable
  /// (unfitted, circuit-broken, or failing mid-predict), answer from the
  /// next rung down (RL → tree → baseline → identity plans) with the
  /// result flagged Degraded, instead of erroring. Off restores the
  /// strict contract: unavailable backend → per-request error.
  bool Fallback = true;
  /// Consecutive predict failures that trip a backend's circuit breaker.
  int BreakerFailureThreshold = 3;
  /// How long a tripped breaker refuses the backend before letting
  /// probe requests through again.
  uint64_t BreakerCooldownMicros = 5'000'000;
  /// When > 0, a predict call slower than this counts as a breaker
  /// failure (the result is still used — it was merely late). 0 = off.
  uint64_t PredictTimeoutMicros = 0;
};

/// One program to annotate.
struct AnnotationRequest {
  std::string Name;
  std::string Source;
  /// Per-request backend override (ServeConfig::DefaultMethod otherwise).
  std::optional<PredictMethod> Method;
};

/// One annotated program (or a rejection).
struct AnnotationResult {
  std::string Name;
  bool Ok = false;
  /// Ok, but answered by a fallback-ladder backend (or the identity
  /// floor) because the requested one was unavailable; Method then names
  /// the rung that actually answered (or the requested method when the
  /// floor answered). See the DEGRADED contract in net/Protocol.h.
  bool Degraded = false;
  std::string Error;    ///< Parse error / "no loops" when !Ok.
  std::string Annotated; ///< Source with pragmas injected.
  std::vector<VectorPlan> Plans; ///< One per vectorization site.
  /// Per-site legality digest (parallel to Plans): access-class counts,
  /// max safe VF, and the legal-plan bitmask the plan was clamped
  /// against. Cache hits carry the digest stored with the cached plan.
  std::vector<LegalityDigest> Legality;
  int CachedSites = 0;  ///< Sites answered from the plan cache.
  PredictMethod Method = PredictMethod::RL; ///< Backend that answered.
  /// Model generation that answered (hosted mode; 0 for borrowed models).
  /// Every site in a result is answered by exactly this generation.
  uint64_t Generation = 0;
};

/// 128-bit cache key for a canonical path-context bag. A single 64-bit
/// hash over thousands of cached loops leaves a real birthday-collision
/// risk, and a collision silently serves the wrong plan; two independent
/// 64-bit hashes push that risk below any practical cache size.
struct ContextKey {
  uint64_t Lo = 0;
  uint64_t Hi = 0;

  bool operator==(const ContextKey &O) const {
    return Lo == O.Lo && Hi == O.Hi;
  }
  bool operator!=(const ContextKey &O) const { return !(*this == O); }
};

/// Hash functor for unordered containers (the key is already uniform).
struct ContextKeyHash {
  size_t operator()(const ContextKey &K) const {
    return static_cast<size_t>(K.Lo ^ (K.Hi * 0x9E3779B97F4A7C15ull));
  }
};

/// Stable 128-bit key for a canonical path-context bag (two independent
/// hashes over the vocabulary ids in extraction order). The extraction
/// flavour is mixed in so inner- and outer-context embeddings of the same
/// loop can never answer for each other, and the prediction method is
/// mixed in so one backend's cached plans can never answer for another's.
ContextKey contextBagKey(ContextSpan Contexts, bool InnerContextOnly = false,
                         PredictMethod Method = PredictMethod::RL);

/// Convenience overload over an owned bag.
ContextKey contextBagKey(const std::vector<PathContext> &Contexts,
                         bool InnerContextOnly = false,
                         PredictMethod Method = PredictMethod::RL);

/// Sharded LRU cache mapping a context-bag key to the plan the policy
/// chose for it. Identical loops (after canonicalization into path
/// contexts) are the common case in generated and templated code, so
/// batches full of near-duplicates skip the network entirely.
///
/// The key's splitmix64 stream selects one of N shards (each its own
/// mutex + LRU list + index), so concurrent annotateBatch callers — and
/// the parallel phase-1 lookups within one batch — contend on 1/N of the
/// lock traffic instead of serializing on a single cache mutex. Capacity
/// is split evenly across shards; with the default capacity (4096) and
/// shard count (8) each shard holds 512 entries, and eviction only
/// reorders *which* of the coldest entries leave first — cached plans are
/// deterministic per key, so shard count never changes annotation output.
class PlanCache {
public:
  explicit PlanCache(size_t Capacity, int Shards = 8);

  /// Returns true and sets \p Out (and \p Digest, when non-null, to the
  /// legality digest stored with the plan) on a hit (refreshing recency).
  /// A hit also requires the entry's epoch to equal \p Epoch; a mismatch
  /// is a miss AND evicts the entry. Epochs are how a model swap invalidates
  /// the cache lazily: the service tags every entry with the model
  /// generation that computed it (captured once per batch), so after a
  /// hot reload new-generation lookups push out stale plans one by one —
  /// no global sweep, no blocking of concurrent readers, and an in-flight
  /// old-generation batch can neither read new plans nor poison new
  /// lookups with old ones.
  bool lookup(const ContextKey &Key, VectorPlan &Out, uint64_t Epoch = 0,
              LegalityDigest *Digest = nullptr);

  /// Inserts (or refreshes) \p Key tagged with \p Epoch, evicting the
  /// least recently used entry of its shard beyond the shard capacity.
  /// \p Digest rides along so hits skip re-running the legality analysis.
  void insert(const ContextKey &Key, VectorPlan Plan, uint64_t Epoch = 0,
              const LegalityDigest &Digest = LegalityDigest());

  size_t size() const;
  void clear();

  int shards() const { return static_cast<int>(Table.size()); }

private:
  struct Entry {
    ContextKey Key;
    VectorPlan Plan;
    LegalityDigest Digest;
    uint64_t Epoch;
  };

  struct Shard {
    mutable std::mutex Mutex;
    std::list<Entry> Order; ///< Front = most recently used.
    std::unordered_map<ContextKey, std::list<Entry>::iterator,
                       ContextKeyHash>
        Index;
  };

  Shard &shardFor(const ContextKey &Key) {
    // Hi is a splitmix64 stream; its top bits are well mixed and distinct
    // from the bits ContextKeyHash feeds the per-shard index.
    return Table[(Key.Hi >> 56) & (Table.size() - 1)];
  }

  size_t ShardCapacity; ///< Per-shard entry budget (0 disables).
  std::deque<Shard> Table; ///< Power-of-two size; shards never move.
};

/// The batched, multi-threaded annotation engine.
class AnnotationService {
public:
  /// The service borrows \p Embedder (the shared encoder) and the backend
  /// registry \p Backends; both must outlive it. \p Paths must match the
  /// configuration the embedder was trained with, and \p TI supplies the
  /// action arrays for decoding.
  AnnotationService(Code2Vec &Embedder, PredictorSet &Backends,
                    const PathContextConfig &Paths, const TargetInfo &TI,
                    const ServeConfig &Config = ServeConfig());

  /// RL-only convenience: builds an internal single-backend registry over
  /// \p Pol (the pre-multi-backend construction signature).
  AnnotationService(Code2Vec &Embedder, Policy &Pol,
                    const PathContextConfig &Paths, const TargetInfo &TI,
                    const ServeConfig &Config = ServeConfig());

  /// Hosted-model construction (the network daemon's mode): instead of
  /// borrowing a fixed embedder/backend set, the service acquires
  /// \p Host's *current* model generation at the start of every batch —
  /// an RCU read; the acquired shared_ptr keeps that generation alive to
  /// the end of the batch even through a concurrent ModelHost::reload().
  /// The batch's context-extraction flavour comes from that generation's
  /// persisted metadata (Config.InnerContextOnly is ignored), and plan
  /// cache entries are tagged with its generation id, so a swap lazily
  /// invalidates stale plans. \p Host must outlive the service.
  AnnotationService(ModelHost &Host, const PathContextConfig &Paths,
                    const TargetInfo &TI,
                    const ServeConfig &Config = ServeConfig());

  /// Annotates every request; the result vector is parallel to
  /// \p Requests. Thread-safe: concurrent callers share the model under an
  /// internal lock and the cache under its own.
  std::vector<AnnotationResult>
  annotateBatch(const std::vector<AnnotationRequest> &Requests);

  /// Convenience single-program entry point (still goes through the cache).
  AnnotationResult annotateOne(const std::string &Name,
                               const std::string &Source);

  /// Single-program entry point with an explicit backend.
  AnnotationResult annotateOne(const std::string &Name,
                               const std::string &Source,
                               PredictMethod Method);

  /// Switches the context-extraction flavour (e.g. after loading a model
  /// trained the other way). Thread-safe; in-flight batches finish with
  /// whichever flavour they started, and the flavour is part of the cache
  /// key, so stale entries cannot answer for the new one. Hosted mode
  /// ignores this: the flavour rides with each model generation's
  /// persisted metadata and flips atomically with the model.
  void setContextExtraction(bool InnerOnly);
  bool innerContextOnly() const { return InnerContext.load(); }

  /// The host resolved per batch (null in borrowed-model mode).
  ModelHost *host() const { return Host; }

  const ServeStats &stats() const { return Stats; }
  void resetStats() { Stats.reset(); }

  size_t cacheSize() const { return Cache.size(); }
  void clearCache() { Cache.clear(); }

  int threads() const { return Pool.size(); }

  PredictMethod defaultMethod() const { return Config.DefaultMethod; }

  /// The per-backend circuit breaker (tests force/inspect states; the
  /// statsz endpoint renders them).
  CircuitBreaker &breaker(PredictMethod M) {
    return Breakers[static_cast<size_t>(M)];
  }
  const CircuitBreaker &breaker(PredictMethod M) const {
    return Breakers[static_cast<size_t>(M)];
  }

private:
  ModelHost *Host = nullptr; ///< Hosted mode: model acquired per batch.
  Code2Vec *Embedder;        ///< Borrowed mode (null when hosted).
  std::unique_ptr<PredictorSet> OwnedBackends; ///< RL-only ctor storage.
  PredictorSet *Backends; ///< Borrowed mode (null when hosted).
  PathContextConfig Paths;
  TargetInfo TI;
  ServeConfig Config;

  ThreadPool Pool;
  PlanCache Cache;
  ServeStats Stats;
  std::atomic<bool> InnerContext;
  std::mutex ModelMutex; ///< Serializes phase-2 use of the shared model.
  Matrix StatesBuf; ///< Reused encode output (guarded by ModelMutex).

  /// Telemetry handles, resolved once at construction (all null when
  /// Config.Telemetry is false): per-phase latency histograms in the
  /// process-wide registry. Recording through them is lock-free.
  ShardedHistogram *RequestUs = nullptr;     ///< serve.request_us
  ShardedHistogram *BatchUs = nullptr;       ///< serve.batch_us
  ShardedHistogram *ParseUs = nullptr;       ///< serve.parse_us
  ShardedHistogram *LoopExtractUs = nullptr; ///< serve.loop_extract_us
  ShardedHistogram *ContextsUs = nullptr;    ///< serve.contexts_us
  ShardedHistogram *EmbedUs = nullptr;       ///< serve.embed_us
  ShardedHistogram *PredictUs = nullptr;     ///< serve.predict_us
  ShardedHistogram *RenderUs = nullptr;      ///< serve.render_us
  Counter *DegradedCounter = nullptr; ///< serve.degraded_requests
  std::atomic<uint64_t> NextBatchId{1}; ///< Trace-span correlation ids.

  /// One breaker per backend, parameterized from Config at construction.
  CircuitBreaker Breakers[NumPredictMethods];
  /// Fault points `serve.predict.<method>`, resolved once (chaos suite
  /// forces a backend to fail without touching the model).
  fault::FaultPoint *PredictFault[NumPredictMethods] = {};

  /// Resolves the histogram pointers above and attaches the pool's
  /// queue metrics; no-op when Config.Telemetry is false.
  void initTelemetry();

  /// Parameterizes the per-backend circuit breakers from Config and
  /// resolves the serve.predict.* fault points (runs in every ctor,
  /// independent of the telemetry flag).
  void initResilience();
};

} // namespace nv

#endif // NV_SERVE_ANNOTATIONSERVICE_H
