//===- serve/ThreadPool.cpp - Worker pool for the serving layer ------------===//

#include "serve/ThreadPool.h"

#include <algorithm>
#include <atomic>

using namespace nv;

ThreadPool::ThreadPool(int Threads) {
  const int Count = std::max(1, Threads);
  Workers.reserve(Count);
  for (int I = 0; I < Count; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    ShuttingDown = true;
  }
  JobReady.notify_all();
  for (std::thread &Worker : Workers)
    Worker.join();
}

void ThreadPool::run(std::function<void()> Job) {
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    Jobs.push(std::move(Job));
    ++InFlight;
  }
  JobReady.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(QueueMutex);
  AllIdle.wait(Lock, [this] { return InFlight == 0; });
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Job;
    {
      std::unique_lock<std::mutex> Lock(QueueMutex);
      JobReady.wait(Lock, [this] { return ShuttingDown || !Jobs.empty(); });
      if (Jobs.empty())
        return; // Shutting down and drained.
      Job = std::move(Jobs.front());
      Jobs.pop();
    }
    Job();
    {
      std::lock_guard<std::mutex> Lock(QueueMutex);
      --InFlight;
      if (InFlight == 0)
        AllIdle.notify_all();
    }
  }
}

void ThreadPool::parallelFor(size_t Begin, size_t End,
                             const std::function<void(size_t)> &Fn) {
  if (Begin >= End)
    return;
  auto Next = std::make_shared<std::atomic<size_t>>(Begin);
  const int Lanes =
      static_cast<int>(std::min<size_t>(Workers.size(), End - Begin));
  for (int L = 0; L < Lanes; ++L) {
    run([Next, End, &Fn] {
      for (size_t I = (*Next)++; I < End; I = (*Next)++)
        Fn(I);
    });
  }
  wait();
}
