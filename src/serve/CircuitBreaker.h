//===- serve/CircuitBreaker.h - Per-backend failure breaker -----*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A classic three-state circuit breaker, one per predictor backend: a
/// backend that keeps failing (exceptions, injected faults, predict
/// timeouts) is taken out of the serving rotation for a cooldown instead
/// of burning every request on it, and the fallback ladder answers in
/// its place.
///
///   Closed    normal operation; consecutive failures count up, any
///             success resets the count. Threshold failures → Open.
///   Open      allow() refuses (phase-1 resolution walks the ladder past
///             this backend) until the cooldown elapses → HalfOpen.
///   HalfOpen  requests flow again as probes: the first success closes
///             the breaker, a failure re-opens it for another cooldown.
///
/// Transitions take a tiny mutex; allow() is called once per request per
/// resolution, so contention is negligible next to the parse that
/// follows.
///
//===----------------------------------------------------------------------===//

#ifndef NV_SERVE_CIRCUITBREAKER_H
#define NV_SERVE_CIRCUITBREAKER_H

#include <cstdint>
#include <mutex>

namespace nv {

/// Consecutive-failure circuit breaker. Timestamps are caller-supplied
/// monotonic microseconds (support/TraceBuffer.h nowMicros()), which
/// keeps the class clock-free and the tests instant.
class CircuitBreaker {
public:
  enum class State { Closed, Open, HalfOpen };

  CircuitBreaker() = default;
  CircuitBreaker(int FailureThreshold, uint64_t CooldownMicros)
      : FailureThreshold(FailureThreshold), CooldownMicros(CooldownMicros) {}

  /// Re-parameterizes the breaker (used at service construction; not
  /// thread-safe against concurrent allow()).
  void configure(int Threshold, uint64_t Cooldown) {
    FailureThreshold = Threshold;
    CooldownMicros = Cooldown;
  }

  /// May a request use this backend right now? Open → false until the
  /// cooldown elapses, at which point the breaker turns HalfOpen and
  /// probes flow.
  bool allow(uint64_t NowMicros) {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (Current == State::Open) {
      if (NowMicros - OpenedAt < CooldownMicros)
        return false;
      Current = State::HalfOpen;
    }
    return true;
  }

  /// A predict on this backend succeeded: close (and forget failures).
  void recordSuccess() {
    std::lock_guard<std::mutex> Lock(Mutex);
    Consecutive = 0;
    Current = State::Closed;
  }

  /// A predict failed (exception, injected fault, or timeout). In
  /// HalfOpen the probe failed — straight back to Open for another
  /// cooldown; in Closed, threshold consecutive failures open it.
  void recordFailure(uint64_t NowMicros) {
    std::lock_guard<std::mutex> Lock(Mutex);
    Failures += 1;
    Consecutive += 1;
    if (Current == State::HalfOpen ||
        (Current == State::Closed &&
         Consecutive >= static_cast<uint64_t>(FailureThreshold))) {
      Current = State::Open;
      OpenedAt = NowMicros;
      Opens += 1;
    }
  }

  State state() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Current;
  }
  uint64_t failures() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Failures;
  }
  uint64_t opens() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Opens;
  }

  static const char *stateName(State S) {
    switch (S) {
    case State::Closed:
      return "closed";
    case State::Open:
      return "open";
    case State::HalfOpen:
      return "half_open";
    }
    return "unknown";
  }

private:
  mutable std::mutex Mutex;
  State Current = State::Closed;
  int FailureThreshold = 3;
  uint64_t CooldownMicros = 5'000'000;
  uint64_t Consecutive = 0; ///< Failures since the last success.
  uint64_t Failures = 0;    ///< Lifetime failures.
  uint64_t Opens = 0;       ///< Times the breaker tripped open.
  uint64_t OpenedAt = 0;    ///< When it last tripped.
};

} // namespace nv

#endif // NV_SERVE_CIRCUITBREAKER_H
