//===- serve/ThreadPool.h - Worker pool for the serving layer ---*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size worker pool used by the annotation service to parallelize
/// the embarrassingly-parallel phases of batched inference (parsing, path-
/// context extraction, pragma injection and re-printing). Deliberately
/// small: a job queue for fire-and-forget work plus a work-stealing-free
/// parallelFor that hands out indices through one atomic counter, which is
/// all the service needs and keeps scheduling deterministic-cost.
///
//===----------------------------------------------------------------------===//

#ifndef NV_SERVE_THREADPOOL_H
#define NV_SERVE_THREADPOOL_H

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace nv {

/// Fixed-size thread pool.
class ThreadPool {
public:
  /// Spawns \p Threads workers. Values < 1 are clamped to 1; a pool of
  /// size 1 still runs jobs on the worker thread (uniform behaviour), so
  /// callers never need a special single-threaded path.
  explicit ThreadPool(int Threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  int size() const { return static_cast<int>(Workers.size()); }

  /// Enqueues \p Job for execution on some worker.
  void run(std::function<void()> Job);

  /// Blocks until every enqueued job has finished.
  void wait();

  /// Runs Fn(I) for every I in [Begin, End) across the pool and blocks
  /// until all indices are done. Indices are claimed through an atomic
  /// counter, so work distribution adapts to uneven item costs.
  void parallelFor(size_t Begin, size_t End,
                   const std::function<void(size_t)> &Fn);

private:
  void workerLoop();

  std::vector<std::thread> Workers;
  std::queue<std::function<void()>> Jobs;
  std::mutex QueueMutex;
  std::condition_variable JobReady;  ///< Signals workers.
  std::condition_variable AllIdle;   ///< Signals wait().
  size_t InFlight = 0;               ///< Queued + currently running jobs.
  bool ShuttingDown = false;
};

} // namespace nv

#endif // NV_SERVE_THREADPOOL_H
