//===- serve/ModelHost.h - RCU-published serving model set ------*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The zero-downtime model-swap machinery behind the network daemon: a
/// ModelHost owns the *current generation* of the full serving model set
/// (Code2Vec embedder, greedy policy, and the whole Predictor backend
/// registry) behind one atomically published shared_ptr.
///
/// reload() builds a brand-new generation off to the side — fresh
/// embedder/policy/backends, the file's weights and sections loaded into
/// them through ModelSerializer::tryLoad — and only if every validation
/// passes flips the pointer (RCU style: readers never block, never see a
/// half-loaded model). A batch that acquired the old generation finishes
/// on it; its shared_ptr keeps the old model alive until the last
/// in-flight reader drops it. A corrupt or mismatched file leaves the
/// current generation serving and reports a LoadStatus the network layer
/// can map onto a protocol error.
///
/// Each generation carries a monotonically increasing Generation id. The
/// serving plan cache tags entries with the generation that computed them
/// (PlanCache epochs), so a flip lazily invalidates every stale plan
/// without blocking readers or touching the cache.
///
//===----------------------------------------------------------------------===//

#ifndef NV_SERVE_MODELHOST_H
#define NV_SERVE_MODELHOST_H

#include "embedding/Code2Vec.h"
#include "predictors/Predictor.h"
#include "rl/Policy.h"
#include "serve/ModelSerializer.h"
#include "support/RNG.h"
#include "target/TargetInfo.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

namespace nv {

class NNSBackend;
class TreeBackend;

/// Everything needed to construct an architecture-compatible model set
/// from scratch (the serving-side slice of NeuroVectorizerConfig;
/// NeuroVectorizer::servingModelConfig() produces a matching one).
struct ServingModelConfig {
  Code2VecConfig Embedding;
  ActionSpaceKind ActionSpace = ActionSpaceKind::Discrete;
  std::vector<int> Hidden = {64, 64};
  TargetInfo Target;
  MachineConfig Machine;
  uint64_t Seed = 1234;
  /// Build the policy over legality-feature-widened states (must match
  /// the flag the hosted model files were saved with — tryLoad validates).
  bool LegalityFeatures = false;
  /// Quantize each generation's embedder + policy weights to int8 at
  /// build time (after any load), so inference forwards run through the
  /// int8 kernels. Serving-only: the model file and training stay fp32.
  /// See docs/quantization.md for the accuracy guarantee.
  bool Quantized = false;
};

/// One immutable generation of the serving model: the embedder, the
/// policy, and the full backend registry wired over them. Immutable by
/// convention — after construction + load only const access happens
/// outside the service's model lock.
class ServingModel {
public:
  explicit ServingModel(const ServingModelConfig &Config);

  Code2Vec &embedder() const { return Embedder; }
  PredictorSet &backends() const { return Backends; }
  const ModelMeta &meta() const { return Meta; }
  uint64_t generation() const { return Generation; }
  const std::string &path() const { return Path; }
  /// True when this generation serves through the int8 kernels.
  bool isQuantized() const {
    return Embedder.isQuantized() && Pol.isQuantized();
  }

private:
  friend class ModelHost;

  RNG Rng; ///< Construction-time init stream (declared before users).
  /// The service's batch pipeline takes these non-const (forward passes
  /// cache activations); access is serialized by the service model lock.
  mutable Code2Vec Embedder;
  mutable Policy Pol;
  mutable PredictorSet Backends;
  NNSBackend *NNS = nullptr;   ///< Owned by Backends.
  TreeBackend *Tree = nullptr; ///< Owned by Backends.
  ModelMeta Meta;
  uint64_t Generation = 0;
  std::string Path; ///< Model file this generation was loaded from.
};

/// Atomic publisher of ServingModel generations.
class ModelHost {
public:
  /// Constructs generation 0: a freshly initialized (untrained) model set.
  /// Call reload() with a real model file before serving traffic.
  explicit ModelHost(const ServingModelConfig &Config);

  /// Loads \p Path into a brand-new model set and, only on full success,
  /// publishes it as the next generation. Returns the serializer's status
  /// (\p Error gets the human-readable cause); on anything but Ok the
  /// current generation is untouched and keeps serving. Safe to call
  /// concurrently with readers and with other reload() calls (those
  /// serialize on an internal mutex).
  LoadStatus reload(const std::string &Path, std::string *Error = nullptr);

  /// The current generation (never null). A reader holds the returned
  /// shared_ptr for as long as it uses the model; a concurrent reload
  /// cannot pull it away.
  std::shared_ptr<const ServingModel> current() const;

  /// Generation id of current() (starts at 0, +1 per successful reload).
  uint64_t generation() const { return Generation.load(); }

  const ServingModelConfig &config() const { return Config; }

private:
  ServingModelConfig Config;
  std::shared_ptr<const ServingModel> Current; ///< atomic_load/store only.
  std::atomic<uint64_t> Generation{0};
  std::mutex ReloadMutex; ///< Serializes writers; readers never take it.
};

} // namespace nv

#endif // NV_SERVE_MODELHOST_H
