//===- serve/AnnotationService.cpp - Batched annotation serving ------------===//

#include "serve/AnnotationService.h"

#include "embedding/ContextBuffer.h"
#include "ir/Lowering.h"
#include "lang/LoopExtractor.h"
#include "lang/Parser.h"
#include "lang/PrettyPrinter.h"
#include "predictors/Backends.h"
#include "rl/StateFeatures.h"
#include "serve/ModelHost.h"
#include "support/StringUtils.h"
#include "support/Telemetry.h"

#include <cassert>

using namespace nv;

namespace {

/// Rounds \p Value up to the next power of two (min 1).
size_t roundUpPow2(size_t Value) {
  size_t P = 1;
  while (P < Value)
    P <<= 1;
  return P;
}

/// The next rung down the degradation ladder: learned methods degrade
/// toward the stock cost model. Baseline is the last model-backed rung —
/// it returns itself, which stops the walk and lets the identity floor
/// answer.
PredictMethod fallbackRung(PredictMethod M) {
  switch (M) {
  case PredictMethod::RL:
  case PredictMethod::NNS:
    return PredictMethod::DecisionTree;
  case PredictMethod::DecisionTree:
  case PredictMethod::Random:
  case PredictMethod::BruteForce:
    return PredictMethod::Baseline;
  case PredictMethod::Baseline:
    return PredictMethod::Baseline;
  }
  return PredictMethod::Baseline;
}

} // namespace

PlanCache::PlanCache(size_t Capacity, int Shards) {
  const size_t Count = roundUpPow2(
      static_cast<size_t>(Shards < 1 ? 1 : Shards));
  // Split the budget across shards, rounding up so the total never drops
  // below the requested capacity. Capacity 0 disables caching entirely.
  ShardCapacity = Capacity == 0 ? 0 : (Capacity + Count - 1) / Count;
  // std::deque: shards (with their mutexes) are constructed in place and
  // never move.
  Table.resize(Count);
}

bool PlanCache::lookup(const ContextKey &Key, VectorPlan &Out,
                       uint64_t Epoch, LegalityDigest *Digest) {
  Shard &S = shardFor(Key);
  std::lock_guard<std::mutex> Lock(S.Mutex);
  auto It = S.Index.find(Key);
  if (It == S.Index.end())
    return false;
  if (It->second->Epoch != Epoch) {
    // Stale generation: computed by a different model. Evict rather than
    // keep — the old generation will never be asked for again.
    S.Order.erase(It->second);
    S.Index.erase(It);
    return false;
  }
  S.Order.splice(S.Order.begin(), S.Order, It->second);
  Out = It->second->Plan;
  if (Digest)
    *Digest = It->second->Digest;
  return true;
}

void PlanCache::insert(const ContextKey &Key, VectorPlan Plan,
                       uint64_t Epoch, const LegalityDigest &Digest) {
  if (ShardCapacity == 0)
    return;
  Shard &S = shardFor(Key);
  std::lock_guard<std::mutex> Lock(S.Mutex);
  auto It = S.Index.find(Key);
  if (It != S.Index.end()) {
    It->second->Plan = Plan;
    It->second->Digest = Digest;
    It->second->Epoch = Epoch;
    S.Order.splice(S.Order.begin(), S.Order, It->second);
    return;
  }
  S.Order.push_front(Entry{Key, Plan, Digest, Epoch});
  S.Index[Key] = S.Order.begin();
  while (S.Order.size() > ShardCapacity) {
    S.Index.erase(S.Order.back().Key);
    S.Order.pop_back();
  }
}

size_t PlanCache::size() const {
  size_t Total = 0;
  for (const Shard &S : Table) {
    std::lock_guard<std::mutex> Lock(S.Mutex);
    Total += S.Order.size();
  }
  return Total;
}

void PlanCache::clear() {
  for (Shard &S : Table) {
    std::lock_guard<std::mutex> Lock(S.Mutex);
    S.Order.clear();
    S.Index.clear();
  }
}

ContextKey nv::contextBagKey(ContextSpan Contexts, bool InnerContextOnly,
                             PredictMethod Method) {
  ContextKey Key;
  Key.Lo = 0xCBF29CE484222325ull;
  Key.Hi = 0x2545F4914F6CDD1Dull;
  auto Mix = [&Key](uint64_t Value) {
    // Lo: FNV-1a a byte at a time over the 32-bit id.
    for (int Shift = 0; Shift < 32; Shift += 8)
      Key.Lo = fnv1aByte(Key.Lo,
                         static_cast<unsigned char>((Value >> Shift) & 0xFF));
    // Hi: splitmix64 absorption of the id (independent of FNV's
    // byte-serial structure, so a Lo collision almost surely differs in
    // Hi).
    Key.Hi = splitmix64(Key.Hi ^ Value);
  };
  // The extraction flavour and the backend are part of the identity: an
  // inner-context bag must never answer for an outer-context bag of the
  // same loop, and one backend's plan must never answer for another's.
  Mix(InnerContextOnly ? 0x1u : 0x0u);
  Mix(static_cast<uint64_t>(Method));
  for (const PathContext &Ctx : Contexts) {
    Mix(static_cast<uint32_t>(Ctx.SrcToken));
    Mix(static_cast<uint32_t>(Ctx.Path));
    Mix(static_cast<uint32_t>(Ctx.DstToken));
  }
  return Key;
}

ContextKey nv::contextBagKey(const std::vector<PathContext> &Contexts,
                             bool InnerContextOnly, PredictMethod Method) {
  return contextBagKey(ContextSpan{Contexts.data(), Contexts.size()},
                       InnerContextOnly, Method);
}

AnnotationService::AnnotationService(Code2Vec &Embedder,
                                     PredictorSet &Backends,
                                     const PathContextConfig &Paths,
                                     const TargetInfo &TI,
                                     const ServeConfig &Config)
    : Embedder(&Embedder), Backends(&Backends), Paths(Paths), TI(TI),
      Config(Config), Pool(Config.Threads),
      Cache(Config.CacheCapacity, Config.CacheShards),
      InnerContext(Config.InnerContextOnly) {
  initTelemetry();
  initResilience();
}

AnnotationService::AnnotationService(Code2Vec &Embedder, Policy &Pol,
                                     const PathContextConfig &Paths,
                                     const TargetInfo &TI,
                                     const ServeConfig &Config)
    : Embedder(&Embedder),
      OwnedBackends(std::make_unique<PredictorSet>()),
      Backends(OwnedBackends.get()), Paths(Paths), TI(TI), Config(Config),
      Pool(Config.Threads),
      Cache(Config.CacheCapacity, Config.CacheShards),
      InnerContext(Config.InnerContextOnly) {
  OwnedBackends->set(PredictMethod::RL,
                     std::make_unique<PolicyBackend>(Pol, TI));
  initTelemetry();
  initResilience();
}

AnnotationService::AnnotationService(ModelHost &Host,
                                     const PathContextConfig &Paths,
                                     const TargetInfo &TI,
                                     const ServeConfig &Config)
    : Host(&Host), Embedder(nullptr), Backends(nullptr), Paths(Paths),
      TI(TI), Config(Config), Pool(Config.Threads),
      Cache(Config.CacheCapacity, Config.CacheShards),
      InnerContext(Config.InnerContextOnly) {
  initTelemetry();
  initResilience();
}

void AnnotationService::initResilience() {
  for (int M = 0; M < NumPredictMethods; ++M) {
    Breakers[M].configure(Config.BreakerFailureThreshold,
                          Config.BreakerCooldownMicros);
    PredictFault[M] = &fault::point(std::string("serve.predict.") +
                                    methodName(static_cast<PredictMethod>(M)));
  }
}

void AnnotationService::initTelemetry() {
  if (!Config.Telemetry)
    return;
  MetricsRegistry &M = Telemetry::metrics();
  DegradedCounter = &M.counter("serve.degraded_requests");
  RequestUs = &M.histogram("serve.request_us");
  BatchUs = &M.histogram("serve.batch_us");
  ParseUs = &M.histogram("serve.parse_us");
  LoopExtractUs = &M.histogram("serve.loop_extract_us");
  ContextsUs = &M.histogram("serve.contexts_us");
  EmbedUs = &M.histogram("serve.embed_us");
  PredictUs = &M.histogram("serve.predict_us");
  RenderUs = &M.histogram("serve.render_us");
  Pool.attachTelemetry(M, "serve.pool");
}

void AnnotationService::setContextExtraction(bool InnerOnly) {
  InnerContext.store(InnerOnly);
}

AnnotationResult AnnotationService::annotateOne(const std::string &Name,
                                                const std::string &Source) {
  return annotateBatch({{Name, Source, std::nullopt}}).front();
}

AnnotationResult AnnotationService::annotateOne(const std::string &Name,
                                                const std::string &Source,
                                                PredictMethod Method) {
  return annotateBatch({{Name, Source, Method}}).front();
}

namespace {

/// Per-request working state threaded through the three phases. Contexts
/// are stored flat (all sites back to back) so phase 2 can hand the
/// embedder borrowed spans instead of copying bags around.
struct WorkItem {
  std::unique_ptr<Program> Prog;
  std::vector<LoopSite> Sites;
  std::vector<PathContext> ContextData; ///< All sites' contexts, flat.
  std::vector<uint32_t> ContextBegin;   ///< Per-site offsets (sites + 1).
  std::vector<ContextKey> Keys;         ///< Per site.
  std::vector<uint8_t> SiteDone; ///< Answered by the cache in phase 1.
  PredictMethod Method = PredictMethod::RL; ///< Resolved backend.
  Predictor *Backend = nullptr; ///< Null after resolution = identity floor.
  bool NeedsSearch = false; ///< Source-kind backend, cache missed.
  bool Degraded = false;    ///< Answered below the requested rung.

  ContextSpan siteContexts(size_t S) const {
    return {ContextData.data() + ContextBegin[S],
            ContextBegin[S + 1] - ContextBegin[S]};
  }
};

} // namespace

std::vector<AnnotationResult> AnnotationService::annotateBatch(
    const std::vector<AnnotationRequest> &Requests) {
  const uint64_t BatchStart = nowMicros();
  const size_t N = Requests.size();
  std::vector<AnnotationResult> Results(N);
  std::vector<WorkItem> Items(N);
  // Resolve the model once for the whole batch. Hosted mode is an RCU
  // read: the acquired shared_ptr pins this generation to the end of the
  // batch, so a concurrent ModelHost::reload() can flip the published
  // pointer without ever pulling the model out from under us — the old
  // generation dies when its last in-flight batch drops it. Everything
  // generation-scoped rides along: the extraction flavour comes from the
  // model's persisted metadata, and the generation id doubles as the plan
  // cache epoch for both lookups and inserts (so an old-generation batch
  // cannot read new plans or poison new lookups with old ones).
  std::shared_ptr<const ServingModel> Model;
  Code2Vec *E = Embedder;
  PredictorSet *B = Backends;
  uint64_t Epoch = 0;
  // One flavour per batch: a concurrent setContextExtraction flips future
  // batches, never this one.
  bool InnerOnly = InnerContext.load();
  if (Host) {
    Model = Host->current();
    E = &Model->embedder();
    B = &Model->backends();
    Epoch = Model->generation();
    InnerOnly = Model->meta().InnerContextOnly;
  }
  const PredictMethod Default = Config.DefaultMethod;

  // Counters accumulate into a batch-local delta and publish once at the
  // end (ServeStats::addBatch), so readers never see a half-applied
  // batch. Trace spans are decided once per batch by the sampling knob;
  // a null buffer makes every span in this batch free.
  ServeStats Delta;
  // The embedder's int8 shadow is the batch-level quantization signal:
  // model owners quantize embedder and policy together.
  if (E->isQuantized())
    ++Delta.QuantizedBatches;
  TraceBuffer *TB = nullptr;
  if (Config.Telemetry && Telemetry::trace().shouldSample())
    TB = &Telemetry::trace();
  const uint64_t BatchId =
      NextBatchId.fetch_add(1, std::memory_order_relaxed);
  TraceSpan BatchSpan(TB, "serve.batch", BatchId);

  // --- Phase 1: parse + extract + cache lookups, in parallel --------------
  // Everything per-request happens here, on the worker: parsing, loop
  // extraction, allocation-free path-context extraction through the
  // thread's ContextBuffer arena, key hashing, and the sharded-cache
  // lookups — so cache hits are fully answered without ever touching the
  // model lock.
  const uint64_t ExtractStart = nowMicros();
  Pool.parallelFor(0, N, [&](size_t I) {
    const AnnotationRequest &Req = Requests[I];
    AnnotationResult &Res = Results[I];
    WorkItem &Item = Items[I];
    Res.Name = Req.Name;
    Res.Generation = Epoch;
    Item.Method = Req.Method.value_or(Default);
    Res.Method = Item.Method;
    // An unregistered method is a configuration bug, not a transient
    // fault — it stays a hard error even with the fallback ladder on.
    if (!B->get(Item.Method)) {
      Res.Error = std::string("no backend registered for method '") +
                  methodName(Item.Method) + "'";
      return;
    }
    // Walk the degradation ladder until a rung is fitted and its circuit
    // breaker admits the request. The requested method is rung zero, so a
    // healthy backend resolves to itself with one breaker check.
    const uint64_t ResolveNow = nowMicros();
    PredictMethod Rung = Item.Method;
    for (;;) {
      Predictor *Cand = B->get(Rung);
      if (Cand && Cand->ready() &&
          Breakers[static_cast<size_t>(Rung)].allow(ResolveNow)) {
        Item.Backend = Cand;
        break;
      }
      const PredictMethod Next = fallbackRung(Rung);
      if (!Config.Fallback || Next == Rung)
        break;
      Rung = Next;
    }
    if (!Item.Backend && !Config.Fallback) {
      // Strict contract: report why the requested backend refused.
      if (!B->get(Item.Method)->ready())
        Res.Error = std::string("backend '") + methodName(Item.Method) +
                    "' is not fitted (distill the model first)";
      else
        Res.Error = std::string("backend '") + methodName(Item.Method) +
                    "' is unavailable (circuit breaker open)";
      return;
    }
    if (Rung != Item.Method || !Item.Backend) {
      // A fallback rung (or the identity floor) answers. Re-keying the
      // request under the answering method keeps caching exact — from
      // here on it is indistinguishable from an explicit request for
      // that rung, except for the Degraded flag.
      Item.Degraded = true;
      Res.Degraded = true;
      if (Item.Backend) {
        Item.Method = Rung;
        Res.Method = Rung;
      }
    }
    const uint64_t ParseStart = nowMicros();
    std::string ParseError;
    std::optional<Program> Parsed = parseSource(Req.Source, &ParseError);
    const uint64_t ParseTime = nowMicros() - ParseStart;
    Delta.ParseMicros += ParseTime;
    if (ParseUs)
      ParseUs->record(ParseTime);
    if (TB)
      TB->record("serve.parse", ParseStart, ParseTime, BatchId);
    if (!Parsed) {
      Res.Error = "parse error: " + ParseError;
      return;
    }
    Item.Prog = std::make_unique<Program>(std::move(*Parsed));
    clearAllPragmas(*Item.Prog);
    const uint64_t SitesStart = nowMicros();
    // The serving path never reads ContextText; skip the per-site
    // pretty-print the training-side extractor pays for it.
    Item.Sites = extractLoops(*Item.Prog, /*WithContextText=*/false);
    const uint64_t SitesTime = nowMicros() - SitesStart;
    Delta.LoopExtractMicros += SitesTime;
    if (LoopExtractUs)
      LoopExtractUs->record(SitesTime);
    if (TB)
      TB->record("serve.loop_extract", SitesStart, SitesTime, BatchId);
    if (Item.Sites.empty()) {
      Item.Prog.reset();
      Res.Error = "no vectorizable loops";
      return;
    }

    if (!Item.Backend) {
      // Identity floor: every rung refused. Serve VF=1/IF=1 for every
      // site — always legal, no model, no embedding, no cache — instead
      // of failing the request. Phase 3 renders it like any other.
      Delta.forMethod(Item.Method).Loops += Item.Sites.size();
      Res.Plans.assign(Item.Sites.size(), VectorPlan{});
      Res.Legality.assign(Item.Sites.size(), LegalityDigest());
      return;
    }

    const uint64_t ContextStart = nowMicros();
    static thread_local ContextBuffer Buf;
    Item.ContextBegin.reserve(Item.Sites.size() + 1);
    Item.ContextBegin.push_back(0);
    for (const LoopSite &Site : Item.Sites) {
      // Mirror the training-side extraction (VectorizationEnv::addProgram)
      // so the policy sees the embedding distribution it was trained on.
      const Stmt &ContextRoot =
          InnerOnly ? static_cast<const Stmt &>(*Site.Inner)
                    : static_cast<const Stmt &>(*Site.Outer);
      const ContextSpan Span =
          extractPathContextsInto(ContextRoot, Paths, Buf);
      Item.ContextData.insert(Item.ContextData.end(), Span.begin(),
                              Span.end());
      Item.ContextBegin.push_back(
          static_cast<uint32_t>(Item.ContextData.size()));
      Item.Keys.push_back(
          contextBagKey(Span, InnerOnly, Item.Method));
    }
    const uint64_t ContextTime = nowMicros() - ContextStart;
    Delta.ContextMicros += ContextTime;
    if (ContextsUs)
      ContextsUs->record(ContextTime);
    if (TB)
      TB->record("serve.contexts", ContextStart, ContextTime, BatchId);

    // Sharded-cache lookups, still on the worker thread. Hits restore the
    // legality digest stored with the plan, so only misses pay for the
    // analysis below.
    MethodCounters &MC = Delta.forMethod(Item.Method);
    Res.Plans.assign(Item.Sites.size(), VectorPlan{});
    Res.Legality.assign(Item.Sites.size(), LegalityDigest());
    Item.SiteDone.assign(Item.Sites.size(), 0);
    if (Item.Backend->kind() == Predictor::Kind::Source) {
      MC.Loops += Item.Sites.size();
      // A site plan from a search backend can depend on the whole
      // program (coordinate descent couples sites), so the per-site
      // cache only holds plans of single-site programs.
      bool Hit = false;
      if (Item.Backend->cacheable() && Item.Sites.size() == 1) {
        VectorPlan HitPlan;
        if (Cache.lookup(Item.Keys[0], HitPlan, Epoch, &Res.Legality[0])) {
          Res.Plans[0] = HitPlan;
          ++Res.CachedSites;
          ++Delta.CacheHits;
          ++MC.CacheHits;
          Item.SiteDone[0] = 1;
          Hit = true;
        }
      }
      Item.NeedsSearch = !Hit;
    } else {
      for (size_t S = 0; S < Item.Sites.size(); ++S) {
        ++MC.Loops;
        VectorPlan Hit;
        if (Cache.lookup(Item.Keys[S], Hit, Epoch, &Res.Legality[S])) {
          Res.Plans[S] = Hit;
          ++Res.CachedSites;
          ++Delta.CacheHits;
          ++MC.CacheHits;
          Item.SiteDone[S] = 1;
        }
      }
    }

    // Legality analysis for every site the cache could not answer: lower
    // the program once, dependence-test each missed site, and keep the
    // digest — phase 2 widens the policy input with it and clamps the
    // prediction against its max-safe VF, and it rides into the cache
    // with the plan so future hits skip all of this.
    bool AnyMiss = false;
    for (const uint8_t Done : Item.SiteDone)
      if (!Done) {
        AnyMiss = true;
        break;
      }
    if (AnyMiss) {
      const uint64_t LegalStart = nowMicros();
      const std::vector<LoopSummary> Summaries =
          lowerAllLoops(*Item.Prog, Item.Sites, TI.MaxVF);
      for (size_t S = 0; S < Item.Sites.size(); ++S) {
        if (Item.SiteDone[S])
          continue;
        const LegalitySummary Legal = analyzeLegality(Summaries[S], TI);
        Res.Legality[S] = Legal.digest();
        ++Delta.LoopsAnalyzed;
        for (int C = 0; C < NumAccessClasses; ++C)
          Delta.AccessClasses[C] += Res.Legality[S].ClassCount[C];
      }
      const uint64_t LegalTime = nowMicros() - LegalStart;
      Delta.LegalityMicros += LegalTime;
      if (TB)
        TB->record("serve.legality", LegalStart, LegalTime, BatchId);
    }
  });
  const uint64_t ExtractTime = nowMicros() - ExtractStart;
  Delta.ExtractMicros += ExtractTime;
  if (TB)
    TB->record("serve.extract", ExtractStart, ExtractTime, BatchId);

  // --- Phase 2: dedup + batched embed + per-backend inference -------------
  const uint64_t InferStart = nowMicros();
  // Requests routed to source-kind backends that the cache could not
  // answer; computed after the model lock drops (they never touch the
  // shared model).
  std::vector<size_t> SourceMisses;
  {
    std::lock_guard<std::mutex> Lock(ModelMutex);

    // Gather the sites the phase-1 lookups could not answer,
    // deduplicating identical loops within the batch so each distinct key
    // is embedded once (keys include the method, so rows are per backend
    // by construction). MissContexts borrows each item's flat context
    // storage — no bag is copied on the way to the embedder.
    struct PendingSite {
      size_t Request;
      size_t Site;
      size_t BatchRow; ///< Row in the miss batch.
    };
    std::vector<PendingSite> Pending;
    std::vector<ContextSpan> MissContexts;
    std::vector<PredictMethod> RowMethods; ///< Backend per miss row.
    /// Legality digest per miss row (identical context bags are identical
    /// loop bodies, so dedup'd rows share one analysis result).
    std::vector<LegalityDigest> RowDigests;
    std::unordered_map<ContextKey, size_t, ContextKeyHash> RowByKey;

    for (size_t I = 0; I < N; ++I) {
      WorkItem &Item = Items[I];
      if (!Item.Prog || !Item.Backend) // Rejected or identity floor.
        continue;
      if (Item.Backend->kind() == Predictor::Kind::Source) {
        if (Item.NeedsSearch)
          SourceMisses.push_back(I);
        continue;
      }
      MethodCounters &MC = Delta.forMethod(Item.Method);
      for (size_t S = 0; S < Item.Sites.size(); ++S) {
        if (Item.SiteDone[S])
          continue;
        auto [It, Inserted] =
            RowByKey.try_emplace(Item.Keys[S], MissContexts.size());
        if (Inserted) {
          MissContexts.push_back(Item.siteContexts(S));
          RowMethods.push_back(Item.Method);
          RowDigests.push_back(Results[I].Legality[S]);
          ++Delta.CacheMisses;
          ++MC.Misses;
        } else {
          ++Delta.DedupHits; // Same loop earlier in this batch.
          ++MC.DedupHits;
        }
        Pending.push_back({I, S, It->second});
      }
    }

    if (!MissContexts.empty()) {
      // The whole miss set — across backends — goes through the embedder
      // as one (rows x dim) batch: the single matrix-matrix multiply this
      // subsystem exists for. The same pool that ran phase 1 now runs the
      // GEMM row panels (bit-identical at any pool size). Each backend
      // then consumes its own rows; when one backend owns the whole batch
      // (the common case) it reads the encode buffer in place.
      const uint64_t EmbedStart = nowMicros();
      E->encodeSpansInto(MissContexts, StatesBuf, &Pool);
      const uint64_t EmbedTime = nowMicros() - EmbedStart;
      Delta.EmbedMicros += EmbedTime;
      if (EmbedUs)
        EmbedUs->record(EmbedTime);
      if (TB)
        TB->record("serve.embed", EmbedStart, EmbedTime, BatchId);

      std::vector<VectorPlan> RowPlans(MissContexts.size());
      std::vector<uint8_t> RowDegraded(MissContexts.size(), 0);
      std::vector<uint8_t> RowFailed(MissContexts.size(), 0);
      std::vector<size_t> MethodRows[NumPredictMethods];
      for (size_t Row = 0; Row < RowMethods.size(); ++Row)
        MethodRows[static_cast<size_t>(RowMethods[Row])].push_back(Row);

      Matrix Sub;
      Matrix WideBuf;
      std::vector<LegalityDigest> SubDigests;
      // One guarded predict of \p Rows on \p P (the backend for \p M):
      // fault hooks and exceptions become a breaker failure instead of
      // tearing down the batch. True = RowPlans filled for those rows.
      auto predictRows = [&](Predictor *P, PredictMethod M,
                             const std::vector<size_t> &Rows) -> bool {
        const Matrix *States = &StatesBuf;
        const LegalityDigest *Digests = RowDigests.data();
        if (Rows.size() != MissContexts.size()) {
          Sub.resize(static_cast<int>(Rows.size()), StatesBuf.cols());
          SubDigests.clear();
          SubDigests.reserve(Rows.size());
          for (size_t R = 0; R < Rows.size(); ++R) {
            std::copy(StatesBuf.rowPtr(static_cast<int>(Rows[R])),
                      StatesBuf.rowPtr(static_cast<int>(Rows[R])) +
                          StatesBuf.cols(),
                      Sub.rowPtr(static_cast<int>(R)));
            SubDigests.push_back(RowDigests[Rows[R]]);
          }
          States = &Sub;
          Digests = SubDigests.data();
        }
        // A legality-feature policy consumes widened rows; feature-free
        // backends (wantsCols() <= codeDim) pass through untouched.
        States = &widenStates(*States, P->wantsCols(), Digests, Rows.size(),
                              TI, WideBuf);
        const uint64_t PredictStart = nowMicros();
        bool Failed = fault::fired(*PredictFault[static_cast<size_t>(M)]);
        std::vector<VectorPlan> Plans;
        if (!Failed) {
          try {
            Plans = P->plansForEmbeddings(*States, &Pool);
          } catch (const std::exception &) {
            Failed = true;
          }
        }
        const uint64_t PredictTime = nowMicros() - PredictStart;
        Delta.forMethod(M).PredictMicros += PredictTime;
        if (PredictUs)
          PredictUs->record(PredictTime);
        if (TB)
          TB->record("serve.predict", PredictStart, PredictTime, BatchId);
        CircuitBreaker &Breaker = Breakers[static_cast<size_t>(M)];
        if (Failed || Plans.size() != Rows.size()) {
          ++Delta.PredictFailures;
          Breaker.recordFailure(nowMicros());
          return false;
        }
        if (Config.PredictTimeoutMicros > 0 &&
            PredictTime > Config.PredictTimeoutMicros)
          // A late answer is still used — it was merely slow — but it
          // counts against the breaker so a degrading backend trips out.
          Breaker.recordFailure(nowMicros());
        else
          Breaker.recordSuccess();
        ++Delta.ForwardPasses;
        Delta.LoopsPerForward += Rows.size();
        for (size_t R = 0; R < Rows.size(); ++R)
          RowPlans[Rows[R]] = Plans[R];
        return true;
      };

      for (int M = 0; M < NumPredictMethods; ++M) {
        const std::vector<size_t> &Rows = MethodRows[M];
        if (Rows.empty())
          continue;
        // A backend can start failing mid-flight (injected fault, a bad
        // generation) after phase 1 resolved to it; its rows retry down
        // the embedding rungs of the same ladder rather than failing the
        // requests. Rows answered below their keyed rung are flagged
        // degraded and never cached — their key names the failed method.
        bool Answered = false;
        for (PredictMethod Rung = static_cast<PredictMethod>(M);;) {
          Predictor *P = B->get(Rung);
          if (P && P->ready() && P->kind() == Predictor::Kind::Embedding &&
              predictRows(P, Rung, Rows)) {
            Answered = true;
            if (Rung != static_cast<PredictMethod>(M))
              for (size_t Row : Rows)
                RowDegraded[Row] = 1;
            break;
          }
          const PredictMethod Next = fallbackRung(Rung);
          if (!Config.Fallback || Next == Rung)
            break;
          Rung = Next;
        }
        if (!Answered)
          for (size_t Row : Rows) {
            // Ladder on: the rows keep their identity-plan default
            // (floor). Strict mode: the owning requests error out below.
            if (Config.Fallback)
              RowDegraded[Row] = 1;
            else
              RowFailed[Row] = 1;
          }
      }

      // Legality clamp: no prediction leaves phase 2 wider than its
      // loop's max safe VF (the same legalizePlan the simulator applies,
      // so serve output and simulation agree plan for plan).
      for (size_t Row = 0; Row < RowPlans.size(); ++Row) {
        const VectorPlan Legal =
            legalizePlan(RowDigests[Row].MaxSafeVF, RowPlans[Row], TI);
        if (Legal.VF != RowPlans[Row].VF || Legal.IF != RowPlans[Row].IF)
          ++Delta.PlansClamped;
        RowPlans[Row] = Legal;
      }

      for (const PendingSite &P : Pending) {
        if (RowFailed[P.BatchRow]) {
          // Strict mode: one unanswerable site fails its whole request.
          AnnotationResult &Res = Results[P.Request];
          if (Res.Error.empty())
            Res.Error = std::string("backend '") +
                        methodName(Items[P.Request].Method) +
                        "' predict failed";
          Items[P.Request].Prog.reset();
          continue;
        }
        if (RowDegraded[P.BatchRow]) {
          Items[P.Request].Degraded = true;
          Results[P.Request].Degraded = true;
        }
        Results[P.Request].Plans[P.Site] = RowPlans[P.BatchRow];
      }
      // Degraded rows are keyed under the method that failed but answered
      // by another rung (or the floor) — caching them would serve fallback
      // plans as that backend's after it recovers, so they stay out.
      for (const auto &[Key, Row] : RowByKey)
        if (!RowDegraded[Row] && !RowFailed[Row])
          Cache.insert(Key, RowPlans[Row], Epoch, RowDigests[Row]);
    }
  }

  // --- Phase 2b: source-kind backends (search per program, on the pool) ---
  if (!SourceMisses.empty()) {
    Pool.parallelFor(0, SourceMisses.size(), [&](size_t K) {
      const size_t I = SourceMisses[K];
      WorkItem &Item = Items[I];
      MethodCounters &MC = Delta.forMethod(Item.Method);
      CircuitBreaker &Breaker = Breakers[static_cast<size_t>(Item.Method)];
      const uint64_t PredictStart = nowMicros();
      bool Failed =
          fault::fired(*PredictFault[static_cast<size_t>(Item.Method)]);
      std::vector<VectorPlan> Plans;
      if (!Failed) {
        try {
          Plans = Item.Backend->plansForSource(Requests[I].Source);
        } catch (const std::exception &) {
          Failed = true;
        }
      }
      const uint64_t PredictTime = nowMicros() - PredictStart;
      MC.PredictMicros += PredictTime;
      if (PredictUs)
        PredictUs->record(PredictTime);
      if (TB)
        TB->record("serve.predict", PredictStart, PredictTime, BatchId);
      if (Failed || Plans.size() != Item.Sites.size()) {
        ++Delta.PredictFailures;
        Breaker.recordFailure(nowMicros());
        if (!Config.Fallback) {
          Results[I].Error = std::string("backend '") +
                             methodName(Item.Method) + "' predict failed";
          Item.Prog.reset();
          return;
        }
        // A failed search floors to the identity plans phase 1 left in
        // Res.Plans; the request still renders, flagged degraded.
        Item.Degraded = true;
        Results[I].Degraded = true;
        return;
      }
      if (Config.PredictTimeoutMicros > 0 &&
          PredictTime > Config.PredictTimeoutMicros)
        Breaker.recordFailure(nowMicros());
      else
        Breaker.recordSuccess();
      MC.Misses += Plans.size();
      Delta.CacheMisses += Plans.size();
      // Search backends explore the simulator's (clamped) plan space, so
      // their plans are normally legal already — the clamp pins the
      // invariant at the serve boundary regardless of backend.
      for (size_t S = 0; S < Plans.size(); ++S) {
        const VectorPlan Legal = legalizePlan(
            Results[I].Legality[S].MaxSafeVF, Plans[S], TI);
        if (Legal.VF != Plans[S].VF || Legal.IF != Plans[S].IF)
          ++Delta.PlansClamped;
        Plans[S] = Legal;
      }
      if (Item.Backend->cacheable() && Plans.size() == 1)
        Cache.insert(Item.Keys[0], Plans[0], Epoch, Results[I].Legality[0]);
      Results[I].Plans = std::move(Plans);
    });
  }
  const uint64_t InferTime = nowMicros() - InferStart;
  Delta.InferMicros += InferTime;
  if (TB)
    TB->record("serve.infer", InferStart, InferTime, BatchId);

  // --- Phase 3: inject pragmas + re-print, in parallel --------------------
  const uint64_t RenderStart = nowMicros();
  Pool.parallelFor(0, N, [&](size_t I) {
    WorkItem &Item = Items[I];
    if (!Item.Prog)
      return;
    AnnotationResult &Res = Results[I];
    for (size_t S = 0; S < Item.Sites.size(); ++S)
      injectPragma(Item.Sites[S],
                   {Res.Plans[S].VF, Res.Plans[S].IF});
    Res.Annotated = printProgram(*Item.Prog);
    Res.Ok = true;
  });
  const uint64_t RenderTime = nowMicros() - RenderStart;
  Delta.RenderMicros += RenderTime;
  if (RenderUs)
    RenderUs->record(RenderTime);
  if (TB)
    TB->record("serve.render", RenderStart, RenderTime, BatchId);

  // --- Bookkeeping ---------------------------------------------------------
  ++Delta.BatchesServed;
  uint64_t DegradedCount = 0;
  for (const AnnotationResult &Res : Results) {
    if (Res.Ok) {
      ++Delta.ProgramsServed;
      Delta.LoopsServed += Res.Plans.size();
      if (Res.Degraded)
        ++DegradedCount;
    } else {
      ++Delta.ProgramsRejected;
    }
  }
  Delta.DegradedRequests += DegradedCount;
  if (DegradedCounter && DegradedCount)
    DegradedCounter->add(DegradedCount);
  const uint64_t BatchTime = nowMicros() - BatchStart;
  Delta.TotalMicros += BatchTime;
  // Publish the whole batch at once; snapshot() readers see it
  // all-or-nothing.
  Stats.addBatch(Delta);
  if (BatchUs) {
    BatchUs->record(BatchTime);
    // Per-request end-to-end latency: every request in a batch waits out
    // the batch wall clock, so each contributes the batch time.
    for (size_t I = 0; I < N; ++I)
      RequestUs->record(BatchTime);
  }
  return Results;
}
