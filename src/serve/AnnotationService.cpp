//===- serve/AnnotationService.cpp - Batched annotation serving ------------===//

#include "serve/AnnotationService.h"

#include "lang/LoopExtractor.h"
#include "lang/Parser.h"
#include "lang/PrettyPrinter.h"

#include <cassert>
#include <chrono>

using namespace nv;

bool PlanCache::lookup(const ContextKey &Key, VectorPlan &Out) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Index.find(Key);
  if (It == Index.end())
    return false;
  Order.splice(Order.begin(), Order, It->second);
  Out = It->second->second;
  return true;
}

void PlanCache::insert(const ContextKey &Key, VectorPlan Plan) {
  if (Capacity == 0)
    return;
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Index.find(Key);
  if (It != Index.end()) {
    It->second->second = Plan;
    Order.splice(Order.begin(), Order, It->second);
    return;
  }
  Order.emplace_front(Key, Plan);
  Index[Key] = Order.begin();
  while (Order.size() > Capacity) {
    Index.erase(Order.back().first);
    Order.pop_back();
  }
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Order.size();
}

void PlanCache::clear() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Order.clear();
  Index.clear();
}

namespace {

/// splitmix64 finalizer: the second, FNV-independent hash stream.
uint64_t mix64(uint64_t X) {
  X += 0x9E3779B97F4A7C15ull;
  X = (X ^ (X >> 30)) * 0xBF58476D1CE4E5B9ull;
  X = (X ^ (X >> 27)) * 0x94D049BB133111EBull;
  return X ^ (X >> 31);
}

} // namespace

ContextKey nv::contextBagKey(const std::vector<PathContext> &Contexts,
                             bool InnerContextOnly) {
  ContextKey Key;
  Key.Lo = 0xCBF29CE484222325ull;
  Key.Hi = 0x2545F4914F6CDD1Dull;
  auto Mix = [&Key](uint64_t Value) {
    // Lo: FNV-1a a byte at a time over the 32-bit id.
    for (int Shift = 0; Shift < 32; Shift += 8) {
      Key.Lo ^= (Value >> Shift) & 0xFF;
      Key.Lo *= 0x100000001B3ull;
    }
    // Hi: splitmix64 absorption of the id (independent of FNV's
    // byte-serial structure, so a Lo collision almost surely differs in
    // Hi).
    Key.Hi = mix64(Key.Hi ^ Value);
  };
  // The extraction flavour is part of the identity: an inner-context bag
  // must never answer for an outer-context bag of the same loop.
  Mix(InnerContextOnly ? 0x1u : 0x0u);
  for (const PathContext &Ctx : Contexts) {
    Mix(static_cast<uint32_t>(Ctx.SrcToken));
    Mix(static_cast<uint32_t>(Ctx.Path));
    Mix(static_cast<uint32_t>(Ctx.DstToken));
  }
  return Key;
}

AnnotationService::AnnotationService(Code2Vec &Embedder, Policy &Pol,
                                     const PathContextConfig &Paths,
                                     const TargetInfo &TI,
                                     const ServeConfig &Config)
    : Embedder(Embedder), Pol(Pol), Paths(Paths), TI(TI),
      Pool(Config.Threads), Cache(Config.CacheCapacity),
      InnerContext(Config.InnerContextOnly) {}

void AnnotationService::setContextExtraction(bool InnerOnly) {
  InnerContext.store(InnerOnly);
}

AnnotationResult AnnotationService::annotateOne(const std::string &Name,
                                                const std::string &Source) {
  return annotateBatch({{Name, Source}}).front();
}

namespace {

/// Per-request working state threaded through the three phases.
struct WorkItem {
  std::unique_ptr<Program> Prog;
  std::vector<LoopSite> Sites;
  std::vector<std::vector<PathContext>> Contexts; ///< Per site.
  std::vector<ContextKey> Keys;                   ///< Per site.
};

uint64_t microsSince(std::chrono::steady_clock::time_point Start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - Start)
          .count());
}

} // namespace

std::vector<AnnotationResult> AnnotationService::annotateBatch(
    const std::vector<AnnotationRequest> &Requests) {
  const auto BatchStart = std::chrono::steady_clock::now();
  const size_t N = Requests.size();
  std::vector<AnnotationResult> Results(N);
  std::vector<WorkItem> Items(N);
  // One flavour per batch: a concurrent setContextExtraction flips future
  // batches, never this one.
  const bool InnerOnly = InnerContext.load();

  // --- Phase 1: parse + extract, in parallel ------------------------------
  const auto ExtractStart = std::chrono::steady_clock::now();
  Pool.parallelFor(0, N, [&](size_t I) {
    const AnnotationRequest &Req = Requests[I];
    AnnotationResult &Res = Results[I];
    Res.Name = Req.Name;
    std::string ParseError;
    std::optional<Program> Parsed = parseSource(Req.Source, &ParseError);
    if (!Parsed) {
      Res.Error = "parse error: " + ParseError;
      return;
    }
    WorkItem &Item = Items[I];
    Item.Prog = std::make_unique<Program>(std::move(*Parsed));
    clearAllPragmas(*Item.Prog);
    Item.Sites = extractLoops(*Item.Prog);
    if (Item.Sites.empty()) {
      Item.Prog.reset();
      Res.Error = "no vectorizable loops";
      return;
    }
    for (const LoopSite &Site : Item.Sites) {
      // Mirror the training-side extraction (VectorizationEnv::addProgram)
      // so the policy sees the embedding distribution it was trained on.
      const Stmt &ContextRoot =
          InnerOnly ? static_cast<const Stmt &>(*Site.Inner)
                    : static_cast<const Stmt &>(*Site.Outer);
      Item.Contexts.push_back(extractPathContexts(ContextRoot, Paths));
      Item.Keys.push_back(contextBagKey(Item.Contexts.back(), InnerOnly));
    }
  });
  Stats.ExtractMicros += microsSince(ExtractStart);

  // --- Phase 2: cache lookups + one batched forward -----------------------
  const auto InferStart = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> Lock(ModelMutex);

    // Gather the sites the cache cannot answer, deduplicating identical
    // loops within the batch so each distinct key is embedded once.
    struct PendingSite {
      size_t Request;
      size_t Site;
      size_t BatchRow; ///< Row in the miss batch.
    };
    std::vector<PendingSite> Pending;
    std::vector<std::vector<PathContext>> MissContexts;
    std::unordered_map<ContextKey, size_t, ContextKeyHash> RowByKey;

    for (size_t I = 0; I < N; ++I) {
      WorkItem &Item = Items[I];
      if (!Item.Prog)
        continue;
      Results[I].Plans.assign(Item.Sites.size(), VectorPlan{});
      for (size_t S = 0; S < Item.Sites.size(); ++S) {
        VectorPlan Hit;
        if (Cache.lookup(Item.Keys[S], Hit)) {
          Results[I].Plans[S] = Hit;
          ++Results[I].CachedSites;
          ++Stats.CacheHits;
          continue;
        }
        auto [It, Inserted] =
            RowByKey.try_emplace(Item.Keys[S], MissContexts.size());
        if (Inserted) {
          MissContexts.push_back(Item.Contexts[S]);
          ++Stats.CacheMisses;
        } else {
          ++Stats.DedupHits; // Same loop earlier in this batch.
        }
        Pending.push_back({I, S, It->second});
      }
    }

    if (!MissContexts.empty()) {
      // The whole miss set goes through the embedder and the FCNN as one
      // (rows x dim) batch — the single matrix-matrix multiply this
      // subsystem exists for. The same pool that ran phase 1 now runs the
      // GEMM row panels (bit-identical at any pool size).
      Embedder.encodeBatchInto(MissContexts, StatesBuf, &Pool);
      Pol.forward(StatesBuf, &Pool, /*ForBackward=*/false);
      ++Stats.ForwardPasses;
      Stats.LoopsPerForward += MissContexts.size();

      std::vector<VectorPlan> RowPlans(MissContexts.size());
      for (size_t Row = 0; Row < MissContexts.size(); ++Row)
        RowPlans[Row] =
            Pol.toPlan(Pol.greedyAction(static_cast<int>(Row)), TI);

      for (const PendingSite &P : Pending)
        Results[P.Request].Plans[P.Site] = RowPlans[P.BatchRow];
      for (const auto &[Key, Row] : RowByKey)
        Cache.insert(Key, RowPlans[Row]);
    }
  }
  Stats.InferMicros += microsSince(InferStart);

  // --- Phase 3: inject pragmas + re-print, in parallel --------------------
  const auto RenderStart = std::chrono::steady_clock::now();
  Pool.parallelFor(0, N, [&](size_t I) {
    WorkItem &Item = Items[I];
    if (!Item.Prog)
      return;
    AnnotationResult &Res = Results[I];
    for (size_t S = 0; S < Item.Sites.size(); ++S)
      injectPragma(Item.Sites[S],
                   {Res.Plans[S].VF, Res.Plans[S].IF});
    Res.Annotated = printProgram(*Item.Prog);
    Res.Ok = true;
  });
  Stats.RenderMicros += microsSince(RenderStart);

  // --- Bookkeeping ---------------------------------------------------------
  ++Stats.BatchesServed;
  for (const AnnotationResult &Res : Results) {
    if (Res.Ok) {
      ++Stats.ProgramsServed;
      Stats.LoopsServed += Res.Plans.size();
    } else {
      ++Stats.ProgramsRejected;
    }
  }
  Stats.TotalMicros += microsSince(BatchStart);
  return Results;
}
