//===- serve/ModelSerializer.cpp - Versioned model save/load ---------------===//

#include "serve/ModelSerializer.h"

#include <cstring>
#include <fstream>
#include <vector>

using namespace nv;

namespace {

void setError(std::string *Error, const std::string &Message) {
  if (Error)
    *Error = Message;
}

void appendBytes(std::vector<char> &Buffer, const void *Data, size_t Size) {
  const char *Bytes = static_cast<const char *>(Data);
  Buffer.insert(Buffer.end(), Bytes, Bytes + Size);
}

template <typename T> void appendValue(std::vector<char> &Buffer, T Value) {
  appendBytes(Buffer, &Value, sizeof(T));
}

template <typename T>
bool readValue(const std::vector<char> &Buffer, size_t &Offset, T &Out) {
  if (Offset + sizeof(T) > Buffer.size())
    return false;
  std::memcpy(&Out, Buffer.data() + Offset, sizeof(T));
  Offset += sizeof(T);
  return true;
}

/// Every learnable parameter of the pair, in a fixed order.
std::vector<Param *> allParams(Code2Vec &Embedder, Policy &Pol) {
  std::vector<Param *> Params = Embedder.params();
  for (Param *P : Pol.params())
    Params.push_back(P);
  return Params;
}

} // namespace

uint64_t ModelSerializer::checksum(const void *Data, size_t Size) {
  const unsigned char *Bytes = static_cast<const unsigned char *>(Data);
  uint64_t Hash = 0xCBF29CE484222325ull;
  for (size_t I = 0; I < Size; ++I) {
    Hash ^= Bytes[I];
    Hash *= 0x100000001B3ull;
  }
  return Hash;
}

bool ModelSerializer::save(const std::string &Path, Code2Vec &Embedder,
                           Policy &Pol, const ModelMeta &Meta,
                           std::string *Error) {
  std::vector<Param *> Params = allParams(Embedder, Pol);

  uint32_t Flags = 0;
  if (Meta.InnerContextOnly)
    Flags |= 1u;

  std::vector<char> Buffer;
  appendValue(Buffer, Magic);
  appendValue(Buffer, FormatVersion);
  appendValue(Buffer, Flags);
  appendValue(Buffer, static_cast<uint32_t>(Params.size()));
  for (Param *P : Params) {
    appendValue(Buffer, static_cast<uint32_t>(P->Value.rows()));
    appendValue(Buffer, static_cast<uint32_t>(P->Value.cols()));
    appendBytes(Buffer, P->Value.raw().data(),
                P->Value.raw().size() * sizeof(double));
  }
  appendValue(Buffer, checksum(Buffer.data(), Buffer.size()));

  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  if (!Out) {
    setError(Error, "cannot open '" + Path + "' for writing");
    return false;
  }
  Out.write(Buffer.data(), static_cast<std::streamsize>(Buffer.size()));
  Out.flush();
  if (!Out) {
    setError(Error, "short write to '" + Path + "'");
    return false;
  }
  return true;
}

bool ModelSerializer::load(const std::string &Path, Code2Vec &Embedder,
                           Policy &Pol, ModelMeta *Meta,
                           std::string *Error) {
  std::ifstream In(Path, std::ios::binary | std::ios::ate);
  if (!In) {
    setError(Error, "cannot open '" + Path + "'");
    return false;
  }
  const std::streamsize Size = In.tellg();
  In.seekg(0);
  std::vector<char> Buffer(static_cast<size_t>(Size));
  if (!In.read(Buffer.data(), Size)) {
    setError(Error, "short read from '" + Path + "'");
    return false;
  }

  // Validate the envelope before looking inside (v1 header is the
  // smallest: magic, version, count).
  if (Buffer.size() < 3 * sizeof(uint32_t) + sizeof(uint64_t)) {
    setError(Error, "file too small to be a model");
    return false;
  }
  const size_t PayloadSize = Buffer.size() - sizeof(uint64_t);
  uint64_t StoredSum = 0;
  std::memcpy(&StoredSum, Buffer.data() + PayloadSize, sizeof(uint64_t));
  if (StoredSum != checksum(Buffer.data(), PayloadSize)) {
    setError(Error, "checksum mismatch: file is corrupt or truncated");
    return false;
  }

  size_t Offset = 0;
  uint32_t FileMagic = 0, Version = 0, Flags = 0, Count = 0;
  readValue(Buffer, Offset, FileMagic);
  readValue(Buffer, Offset, Version);
  if (FileMagic != Magic) {
    setError(Error, "bad magic: not a NeuroVectorizer model file");
    return false;
  }
  if (Version != 1 && Version != FormatVersion) {
    setError(Error, "unsupported format version " + std::to_string(Version));
    return false;
  }
  // v1 had no flags word; those models could only have been trained with
  // the default outer-context extraction, so Flags = 0 is exact.
  if (Version >= 2)
    readValue(Buffer, Offset, Flags);
  readValue(Buffer, Offset, Count);

  std::vector<Param *> Params = allParams(Embedder, Pol);
  if (Count != Params.size()) {
    setError(Error, "model has " + std::to_string(Count) +
                        " parameters, expected " +
                        std::to_string(Params.size()) +
                        " (architecture mismatch)");
    return false;
  }

  // Two passes: validate every shape first so a mismatch midway cannot
  // leave the destination half-overwritten.
  std::vector<size_t> Offsets(Params.size());
  for (size_t I = 0; I < Params.size(); ++I) {
    uint32_t Rows = 0, Cols = 0;
    if (!readValue(Buffer, Offset, Rows) ||
        !readValue(Buffer, Offset, Cols)) {
      setError(Error, "unexpected end of file in parameter header");
      return false;
    }
    const Matrix &Dest = Params[I]->Value;
    if (Rows != static_cast<uint32_t>(Dest.rows()) ||
        Cols != static_cast<uint32_t>(Dest.cols())) {
      setError(Error, "parameter " + std::to_string(I) + " is " +
                          std::to_string(Rows) + "x" + std::to_string(Cols) +
                          ", expected " + std::to_string(Dest.rows()) + "x" +
                          std::to_string(Dest.cols()) +
                          " (architecture mismatch)");
      return false;
    }
    const size_t Bytes = static_cast<size_t>(Rows) * Cols * sizeof(double);
    if (Offset + Bytes > PayloadSize) {
      setError(Error, "unexpected end of file in parameter data");
      return false;
    }
    Offsets[I] = Offset;
    Offset += Bytes;
  }
  if (Offset != PayloadSize) {
    setError(Error, "trailing bytes after last parameter");
    return false;
  }

  for (size_t I = 0; I < Params.size(); ++I) {
    std::vector<double> &Dest = Params[I]->Value.raw();
    std::memcpy(Dest.data(), Buffer.data() + Offsets[I],
                Dest.size() * sizeof(double));
  }
  if (Meta)
    Meta->InnerContextOnly = (Flags & 1u) != 0;
  return true;
}
