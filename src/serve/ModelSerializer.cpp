//===- serve/ModelSerializer.cpp - Versioned model save/load ---------------===//

#include "serve/ModelSerializer.h"

#include "predictors/DecisionTree.h"
#include "predictors/NearestNeighbor.h"
#include "support/Wire.h"

#include <cstring>
#include <fstream>
#include <vector>

using namespace nv;

namespace {

void setError(std::string *Error, const std::string &Message) {
  if (Error)
    *Error = Message;
}

/// Every learnable parameter of the pair, in a fixed order.
std::vector<Param *> allParams(Code2Vec &Embedder, Policy &Pol) {
  std::vector<Param *> Params = Embedder.params();
  for (Param *P : Pol.params())
    Params.push_back(P);
  return Params;
}

} // namespace

uint64_t ModelSerializer::checksum(const void *Data, size_t Size) {
  const unsigned char *Bytes = static_cast<const unsigned char *>(Data);
  uint64_t Hash = 0xCBF29CE484222325ull;
  for (size_t I = 0; I < Size; ++I) {
    Hash ^= Bytes[I];
    Hash *= 0x100000001B3ull;
  }
  return Hash;
}

SaveStatus ModelSerializer::trySave(const std::string &Path, Code2Vec &Embedder,
                                    Policy &Pol, const ModelMeta &Meta,
                                    const SupervisedBundle &Supervised,
                                    std::string *Error) {
  std::vector<Param *> Params = allParams(Embedder, Pol);

  uint32_t Flags = 0;
  if (Meta.InnerContextOnly)
    Flags |= 1u;
  // Bit 1: the embedding tables are bucketed by the bias-free vocabulary
  // fold (hashToVocab). Files without it were trained under the legacy
  // `fnv1a % vocab` bucketing, whose row assignments the current
  // extractor no longer reproduces — loading one would silently read
  // rows trained for unrelated tokens, so the loader rejects them.
  Flags |= 2u;
  // Bit 2: the policy was built over legality-feature-widened states.
  if (Meta.LegalityFeatures)
    Flags |= 4u;

  std::vector<char> Buffer;
  wire::appendValue(Buffer, Magic);
  wire::appendValue(Buffer, FormatVersion);
  wire::appendValue(Buffer, Flags);
  wire::appendValue(Buffer, static_cast<uint32_t>(Params.size()));
  for (Param *P : Params) {
    wire::appendValue(Buffer, static_cast<uint32_t>(P->Value.rows()));
    wire::appendValue(Buffer, static_cast<uint32_t>(P->Value.cols()));
    wire::appendBytes(Buffer, P->Value.raw().data(),
                      P->Value.raw().size() * sizeof(double));
  }

  // v3 sections: one per fitted supervised backend. Empty backends are
  // skipped so a weights-only save stays minimal and a later load knows
  // the file carries no distillation.
  std::vector<std::pair<uint32_t, std::vector<char>>> Sections;
  if (Supervised.NNS && Supervised.NNS->size() > 0) {
    std::vector<char> Payload;
    Supervised.NNS->serialize(Payload);
    Sections.emplace_back(NNSSectionTag, std::move(Payload));
  }
  if (Supervised.Tree && Supervised.Tree->fitted()) {
    std::vector<char> Payload;
    Supervised.Tree->serialize(Payload);
    Sections.emplace_back(TreeSectionTag, std::move(Payload));
  }
  wire::appendValue(Buffer, static_cast<uint32_t>(Sections.size()));
  for (const auto &[Tag, Payload] : Sections) {
    wire::appendValue(Buffer, Tag);
    wire::appendValue(Buffer, static_cast<uint64_t>(Payload.size()));
    wire::appendBytes(Buffer, Payload.data(), Payload.size());
  }

  wire::appendValue(Buffer, checksum(Buffer.data(), Buffer.size()));

  std::string IoError;
  SaveStatus St = atomicWriteFile(Path, Buffer.data(), Buffer.size(), &IoError);
  if (St != SaveStatus::Ok)
    setError(Error, "save '" + Path + "': " + IoError);
  return St;
}

const char *nv::loadStatusName(LoadStatus Status) {
  switch (Status) {
  case LoadStatus::Ok:
    return "ok";
  case LoadStatus::OpenFailed:
    return "open_failed";
  case LoadStatus::Truncated:
    return "truncated";
  case LoadStatus::BadChecksum:
    return "bad_checksum";
  case LoadStatus::BadMagic:
    return "bad_magic";
  case LoadStatus::BadVersion:
    return "bad_version";
  case LoadStatus::LegacyHashing:
    return "legacy_hashing";
  case LoadStatus::ArchMismatch:
    return "arch_mismatch";
  case LoadStatus::Malformed:
    return "malformed";
  }
  return "unknown";
}

bool ModelSerializer::load(const std::string &Path, Code2Vec &Embedder,
                           Policy &Pol, ModelMeta *Meta,
                           SupervisedBundle *Supervised, std::string *Error) {
  return tryLoad(Path, Embedder, Pol, Meta, Supervised, Error) ==
         LoadStatus::Ok;
}

LoadStatus ModelSerializer::tryLoad(const std::string &Path,
                                    Code2Vec &Embedder, Policy &Pol,
                                    ModelMeta *Meta,
                                    SupervisedBundle *Supervised,
                                    std::string *Error) {
  std::ifstream In(Path, std::ios::binary | std::ios::ate);
  if (!In) {
    setError(Error, "cannot open '" + Path + "'");
    return LoadStatus::OpenFailed;
  }
  const std::streamsize Size = In.tellg();
  In.seekg(0);
  std::vector<char> Buffer;
  // A file of lies (or a disk error mid-read) must come back as a status,
  // never an exception: the reload endpoint feeds this path files pushed
  // over the network.
  try {
    Buffer.resize(static_cast<size_t>(Size));
  } catch (const std::bad_alloc &) {
    setError(Error, "file too large to buffer");
    return LoadStatus::Malformed;
  }
  if (!In.read(Buffer.data(), Size)) {
    setError(Error, "short read from '" + Path + "'");
    return LoadStatus::OpenFailed;
  }

  // Validate the envelope before looking inside (v1 header is the
  // smallest: magic, version, count).
  if (Buffer.size() < 3 * sizeof(uint32_t) + sizeof(uint64_t)) {
    setError(Error, "file too small to be a model");
    return LoadStatus::Truncated;
  }
  const size_t PayloadSize = Buffer.size() - sizeof(uint64_t);
  uint64_t StoredSum = 0;
  std::memcpy(&StoredSum, Buffer.data() + PayloadSize, sizeof(uint64_t));
  if (StoredSum != checksum(Buffer.data(), PayloadSize)) {
    setError(Error, "checksum mismatch: file is corrupt or truncated");
    return LoadStatus::BadChecksum;
  }

  size_t Offset = 0;
  uint32_t FileMagic = 0, Version = 0, Flags = 0, Count = 0;
  wire::readValue(Buffer, Offset, FileMagic);
  wire::readValue(Buffer, Offset, Version);
  if (FileMagic != Magic) {
    setError(Error, "bad magic: not a NeuroVectorizer model file");
    return LoadStatus::BadMagic;
  }
  if (Version < 1 || Version > FormatVersion) {
    setError(Error, "unsupported format version " + std::to_string(Version));
    return LoadStatus::BadVersion;
  }
  // v1 had no flags word; those models could only have been trained with
  // the default outer-context extraction, so Flags = 0 is exact (and
  // their vocabulary bucketing is undetectable — see the header note).
  if (Version >= 2) {
    wire::readValue(Buffer, Offset, Flags);
    if ((Flags & 2u) == 0) {
      setError(Error,
               "model was saved with the legacy vocabulary hashing; its "
               "embedding rows do not match the current extractor — "
               "retrain and re-save with this build");
      return LoadStatus::LegacyHashing;
    }
  }
  wire::readValue(Buffer, Offset, Count);

  // The legality-feature flag must agree with the destination policy's
  // input width. The per-parameter shape checks below would catch the
  // mismatch anyway (the trunk's first weight matrix differs), but this
  // names the actual problem instead of "parameter 12 is 71x64".
  const bool FileWidened = Version >= 2 && (Flags & 4u) != 0;
  const bool DestWidened = Pol.inputDim() > Embedder.codeDim();
  if (FileWidened != DestWidened) {
    setError(Error, FileWidened
                        ? "model was trained with legality features; the "
                          "destination policy was built without them"
                        : "destination policy expects legality features; "
                          "the model was trained without them");
    return LoadStatus::ArchMismatch;
  }

  std::vector<Param *> Params = allParams(Embedder, Pol);
  if (Count != Params.size()) {
    setError(Error, "model has " + std::to_string(Count) +
                        " parameters, expected " +
                        std::to_string(Params.size()) +
                        " (architecture mismatch)");
    return LoadStatus::ArchMismatch;
  }

  // Two passes: validate every shape first so a mismatch midway cannot
  // leave the destination half-overwritten.
  std::vector<size_t> Offsets(Params.size());
  for (size_t I = 0; I < Params.size(); ++I) {
    uint32_t Rows = 0, Cols = 0;
    if (!wire::readValue(Buffer, Offset, Rows) ||
        !wire::readValue(Buffer, Offset, Cols)) {
      setError(Error, "unexpected end of file in parameter header");
      return LoadStatus::Malformed;
    }
    const Matrix &Dest = Params[I]->Value;
    if (Rows != static_cast<uint32_t>(Dest.rows()) ||
        Cols != static_cast<uint32_t>(Dest.cols())) {
      setError(Error, "parameter " + std::to_string(I) + " is " +
                          std::to_string(Rows) + "x" + std::to_string(Cols) +
                          ", expected " + std::to_string(Dest.rows()) + "x" +
                          std::to_string(Dest.cols()) +
                          " (architecture mismatch)");
      return LoadStatus::ArchMismatch;
    }
    const size_t Bytes = static_cast<size_t>(Rows) * Cols * sizeof(double);
    if (Offset + Bytes > PayloadSize) {
      setError(Error, "unexpected end of file in parameter data");
      return LoadStatus::Malformed;
    }
    Offsets[I] = Offset;
    Offset += Bytes;
  }

  // v3 backend sections. Parsed into temporaries before any destination
  // is touched, preserving the all-or-nothing contract for the weights
  // AND the supervised predictors.
  NearestNeighborPredictor LoadedNNS;
  DecisionTree LoadedTree;
  bool HaveNNS = false, HaveTree = false;
  if (Version >= 3) {
    uint32_t SectionCount = 0;
    if (!wire::readValue(Buffer, Offset, SectionCount)) {
      setError(Error, "unexpected end of file in section count");
      return LoadStatus::Malformed;
    }
    for (uint32_t S = 0; S < SectionCount; ++S) {
      uint32_t Tag = 0;
      uint64_t Length = 0;
      // The header reads bound against the whole buffer, so Offset may
      // land past PayloadSize (inside the checksum) before this check;
      // and the Length test subtracts rather than adds because a corrupt
      // 64-bit Length could wrap Offset + Length past the bounds check.
      if (!wire::readValue(Buffer, Offset, Tag) ||
          !wire::readValue(Buffer, Offset, Length) ||
          Offset > PayloadSize || Length > PayloadSize - Offset) {
        setError(Error, "unexpected end of file in section header");
        return LoadStatus::Malformed;
      }
      const char *Payload = Buffer.data() + Offset;
      std::string SectionError;
      if (Tag == NNSSectionTag) {
        if (!LoadedNNS.deserialize(Payload, Length, &SectionError)) {
          setError(Error, SectionError);
          return LoadStatus::Malformed;
        }
        if (LoadedNNS.dimension() !=
            static_cast<size_t>(Embedder.codeDim())) {
          setError(Error, "NNS section: embedding dimension mismatch");
          return LoadStatus::ArchMismatch;
        }
        HaveNNS = true;
      } else if (Tag == TreeSectionTag) {
        if (!LoadedTree.deserialize(Payload, Length, &SectionError)) {
          setError(Error, SectionError);
          return LoadStatus::Malformed;
        }
        if (LoadedTree.numFeatures() != Embedder.codeDim()) {
          setError(Error, "tree section: embedding dimension mismatch");
          return LoadStatus::ArchMismatch;
        }
        HaveTree = true;
      } else {
        setError(Error, "unknown section tag in model file");
        return LoadStatus::Malformed;
      }
      Offset += Length;
    }
  }

  if (Offset != PayloadSize) {
    setError(Error, "trailing bytes after last parameter");
    return LoadStatus::Malformed;
  }

  for (size_t I = 0; I < Params.size(); ++I) {
    std::vector<double> &Dest = Params[I]->Value.raw();
    std::memcpy(Dest.data(), Buffer.data() + Offsets[I],
                Dest.size() * sizeof(double));
  }
  if (Meta) {
    Meta->InnerContextOnly = (Flags & 1u) != 0;
    Meta->LegalityFeatures = FileWidened;
  }
  if (Supervised) {
    // A file without sections clears the destinations: the weights just
    // changed, so any previously fitted index is stale either way.
    if (Supervised->NNS) {
      if (HaveNNS)
        *Supervised->NNS = std::move(LoadedNNS);
      else
        Supervised->NNS->clear();
    }
    if (Supervised->Tree) {
      if (HaveTree)
        *Supervised->Tree = std::move(LoadedTree);
      else
        Supervised->Tree->clear();
    }
    Supervised->Loaded = HaveNNS || HaveTree;
  }
  return LoadStatus::Ok;
}
