//===- serve/ModelHost.cpp - RCU-published serving model set --------------===//

#include "serve/ModelHost.h"

#include "predictors/Backends.h"
#include "support/FaultInjection.h"

using namespace nv;

ServingModel::ServingModel(const ServingModelConfig &Config)
    : Rng(Config.Seed), Embedder(Config.Embedding, Rng),
      Pol(Config.ActionSpace,
          Embedder.codeDim() +
              (Config.LegalityFeatures ? NumLegalityFeatures : 0),
          Config.Hidden,
          static_cast<int>(Config.Target.vfActions().size()),
          static_cast<int>(Config.Target.ifActions().size()), Rng) {
  Meta.LegalityFeatures = Config.LegalityFeatures;
  // The same registry NeuroVectorizer wires up: every PredictMethod is
  // servable from a hosted model, and the supervised slots are the
  // destinations tryLoad restores v3 sections into.
  Backends.set(PredictMethod::RL,
               std::make_unique<PolicyBackend>(Pol, Config.Target));
  auto NNSOwned = std::make_unique<NNSBackend>(/*K=*/3);
  NNS = NNSOwned.get();
  Backends.set(PredictMethod::NNS, std::move(NNSOwned));
  auto TreeOwned = std::make_unique<TreeBackend>(Config.Target);
  Tree = TreeOwned.get();
  Backends.set(PredictMethod::DecisionTree, std::move(TreeOwned));
  Backends.set(PredictMethod::Baseline,
               std::make_unique<BaselineBackend>(
                   Config.Target, Config.Machine, Config.Embedding.Paths));
  Backends.set(PredictMethod::Random,
               std::make_unique<RandomBackend>(Config.Target, Config.Machine,
                                               Config.Embedding.Paths,
                                               Config.Seed ^ 0x5EED5EEDull));
  Backends.set(PredictMethod::BruteForce,
               std::make_unique<BruteForceBackend>(
                   Config.Target, Config.Machine, Config.Embedding.Paths));
}

ModelHost::ModelHost(const ServingModelConfig &Config) : Config(Config) {
  auto Initial = std::make_shared<ServingModel>(Config);
  Initial->Generation = 0;
  if (Config.Quantized) {
    Initial->Embedder.quantizeForInference();
    Initial->Pol.quantizeForInference();
  }
  std::atomic_store(&Current,
                    std::shared_ptr<const ServingModel>(std::move(Initial)));
}

std::shared_ptr<const ServingModel> ModelHost::current() const {
  return std::atomic_load(&Current);
}

LoadStatus ModelHost::reload(const std::string &Path, std::string *Error) {
  // Chaos hook: the suite proves a failed reload leaves the published
  // generation serving (and the daemon maps the failure to a clean
  // RELOAD_FAILED) without needing an actually-corrupt model file.
  static fault::FaultPoint &FP = fault::point("model.reload");
  if (fault::fired(FP)) {
    if (Error)
      *Error = "fault injected: model.reload";
    return LoadStatus::OpenFailed;
  }
  // Build + validate entirely off to the side. Readers keep serving the
  // published generation; only the final pointer flip is visible to them.
  auto Fresh = std::make_shared<ServingModel>(Config);
  SupervisedBundle Bundle;
  Bundle.NNS = &Fresh->NNS->index();
  Bundle.Tree = &Fresh->Tree->tree();
  const LoadStatus Status = ModelSerializer::tryLoad(
      Path, Fresh->Embedder, Fresh->Pol, &Fresh->Meta, &Bundle, Error);
  if (Status != LoadStatus::Ok)
    return Status;
  Fresh->Path = Path;
  // Quantize strictly after the load so the int8 shadows reflect the
  // weights this generation actually serves.
  if (Config.Quantized) {
    Fresh->Embedder.quantizeForInference();
    Fresh->Pol.quantizeForInference();
  }

  // Writers serialize so generation ids are dense and monotonic even
  // under concurrent reloads; the store itself is the RCU flip.
  std::lock_guard<std::mutex> Lock(ReloadMutex);
  Fresh->Generation = Generation.load() + 1;
  std::atomic_store(&Current,
                    std::shared_ptr<const ServingModel>(std::move(Fresh)));
  Generation.fetch_add(1);
  return LoadStatus::Ok;
}
