//===- serve/ModelSerializer.h - Versioned model save/load ------*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Binary persistence for a trained model: the Code2Vec embedding
/// generator (token/path tables, attention) and the PPO Policy (trunk,
/// heads), plus — since format v3 — the supervised backends distilled
/// from them. The paper trains once and deploys the frozen policy for
/// inference on unseen programs; this file is that deployment artifact,
/// and with the backend sections one file restores the *whole* backend
/// set (RL + NNS + decision tree) into a serving process.
///
/// Format v3 (little-endian, doubles written raw so a round trip is
/// bitwise exact):
///
///   u32 magic 'NVMF'   u32 version
///   u32 flags          (bit 0: trained on inner-context embeddings;
///                       bit 1: vocabulary bucketed by the bias-free
///                       hashToVocab fold — REQUIRED on load for v2+,
///                       so files trained under the legacy
///                       `fnv1a % vocab` bucketing fail loudly instead
///                       of silently reading re-bucketed embedding rows;
///                       bit 2: the policy trunk consumes legality-
///                       feature-widened states — must match the
///                       destination policy's input width on load)
///   u32 paramCount
///   per param:  u32 rows, u32 cols, rows*cols f64 values
///   u32 sectionCount                                        (v3+)
///   per section: u32 tag, u64 byteLength, payload           (v3+)
///   u64 FNV-1a checksum over everything before it
///
/// Sections carry the distilled supervised predictors: 'SNNS' is a
/// NearestNeighborPredictor payload, 'STRE' a DecisionTree payload (see
/// their serialize() methods). A weights-only model writes sectionCount
/// 0. v1 files (no flags word, no sections) and v2 files (flags word, no
/// sections) still load; their backend set is simply unfitted. Caveat:
/// a v1 file has no flags word, so the vocabulary-hash check above
/// cannot apply — a v1 file written by a pre-fold build loads but its
/// embeddings are re-bucketed (retrain rather than carry v1 artifacts
/// across builds).
///
/// Loading validates magic, version, per-parameter shapes against the
/// *destination* model (so a file trained with one architecture cannot be
/// loaded into another), byte counts, section framing, and the checksum —
/// truncated or bit-flipped files are rejected without touching the
/// destination.
///
//===----------------------------------------------------------------------===//

#ifndef NV_SERVE_MODELSERIALIZER_H
#define NV_SERVE_MODELSERIALIZER_H

#include "embedding/Code2Vec.h"
#include "rl/Policy.h"
#include "support/AtomicFile.h"

#include <cstdint>
#include <string>

namespace nv {

class NearestNeighborPredictor;
class DecisionTree;

/// Model-level settings persisted alongside the weights.
struct ModelMeta {
  /// The context-extraction selection the model was trained with
  /// (VectorizationEnv::innerContextOnly).
  bool InnerContextOnly = false;
  /// The policy consumes legality-feature-widened states (codeDim +
  /// NumLegalityFeatures; flag bit 2). The serving side must run the
  /// loop legality analysis and append the feature block before every
  /// forward — feeding a widened policy bare embeddings is silent skew.
  bool LegalityFeatures = false;
};

/// The distilled supervised predictors riding along with the weights.
/// save(): non-null members are written as v3 sections (skipped when the
/// predictor is empty/unfitted). load(): non-null members receive the
/// file's sections; Loaded reports whether any were present.
struct SupervisedBundle {
  NearestNeighborPredictor *NNS = nullptr;
  DecisionTree *Tree = nullptr;
  bool Loaded = false; ///< load() only: sections were present and restored.
};

/// Why a load failed, as a machine-readable code. The string form of each
/// failure stays in the optional Error out-parameter; the code exists for
/// callers that must *act* on the distinction — the network reload
/// endpoint maps it onto a wire status so a corrupt file pushed to a
/// running daemon produces a clean protocol error (and the old model keeps
/// serving) instead of a stringly-typed guess.
enum class LoadStatus {
  Ok,
  OpenFailed,    ///< File missing or unreadable.
  Truncated,     ///< Too small to hold even the v1 envelope.
  BadChecksum,   ///< FNV-1a mismatch: corrupt or truncated payload.
  BadMagic,      ///< Not a NeuroVectorizer model file.
  BadVersion,    ///< Format version outside [1, FormatVersion].
  LegacyHashing, ///< Pre-fold vocabulary bucketing (retrain required).
  ArchMismatch,  ///< Parameter count/shape differs from the destination.
  Malformed,     ///< Framing damage the checksum cannot see (bad section
                 ///< tag/length, trailing bytes, short parameter data).
};

/// Stable lowercase name for a LoadStatus ("ok", "bad_checksum", ...).
const char *loadStatusName(LoadStatus Status);

/// Save/load for the (embedder, policy, supervised backends) set.
class ModelSerializer {
public:
  static constexpr uint32_t Magic = 0x4E564D46; ///< 'NVMF'.
  static constexpr uint32_t FormatVersion = 3;

  /// Section tags (v3).
  static constexpr uint32_t NNSSectionTag = 0x534E4E53;  ///< 'SNNS'.
  static constexpr uint32_t TreeSectionTag = 0x45525453; ///< 'STRE'.

  /// Writes \p Embedder and \p Pol (with \p Meta in the header and the
  /// non-null fitted members of \p Supervised as sections) to \p Path.
  /// Crash-safe since the fault-hardening pass: the bytes go to a temp
  /// file that is fsynced and renamed over \p Path (support/AtomicFile.h),
  /// so a crash mid-save never destroys the previous model. Returns a
  /// machine-readable SaveStatus mirroring tryLoad's LoadStatus — the
  /// snapshot CLI and the reload RPC surface saveStatusName() of it.
  static SaveStatus trySave(const std::string &Path, Code2Vec &Embedder,
                            Policy &Pol, const ModelMeta &Meta,
                            const SupervisedBundle &Supervised,
                            std::string *Error = nullptr);

  /// Bool wrapper over trySave (historic signature).
  static bool save(const std::string &Path, Code2Vec &Embedder, Policy &Pol,
                   const ModelMeta &Meta, const SupervisedBundle &Supervised,
                   std::string *Error = nullptr) {
    return trySave(Path, Embedder, Pol, Meta, Supervised, Error) ==
           SaveStatus::Ok;
  }

  /// Weights-only overload (no backend sections).
  static bool save(const std::string &Path, Code2Vec &Embedder, Policy &Pol,
                   const ModelMeta &Meta, std::string *Error = nullptr) {
    return save(Path, Embedder, Pol, Meta, SupervisedBundle(), Error);
  }

  /// Back-compat overload: default metadata (outer-context model).
  static bool save(const std::string &Path, Code2Vec &Embedder, Policy &Pol,
                   std::string *Error = nullptr) {
    return save(Path, Embedder, Pol, ModelMeta(), SupervisedBundle(), Error);
  }

  /// Reads \p Path into \p Embedder and \p Pol, the header settings into
  /// \p Meta (may be null), and any backend sections into the non-null
  /// members of \p Supervised (may be null; sections are then ignored).
  /// All-or-nothing: on any validation failure every destination is left
  /// untouched and \p Error describes the problem.
  static bool load(const std::string &Path, Code2Vec &Embedder, Policy &Pol,
                   ModelMeta *Meta, SupervisedBundle *Supervised,
                   std::string *Error = nullptr);

  /// load() with a machine-readable failure code instead of a bool; never
  /// throws. Same all-or-nothing contract: anything but LoadStatus::Ok
  /// leaves every destination untouched, so a daemon can keep serving the
  /// model it already has.
  static LoadStatus tryLoad(const std::string &Path, Code2Vec &Embedder,
                            Policy &Pol, ModelMeta *Meta,
                            SupervisedBundle *Supervised,
                            std::string *Error = nullptr);

  /// Weights/meta-only overload.
  static bool load(const std::string &Path, Code2Vec &Embedder, Policy &Pol,
                   ModelMeta *Meta, std::string *Error = nullptr) {
    return load(Path, Embedder, Pol, Meta, nullptr, Error);
  }

  /// Back-compat overload discarding the metadata.
  static bool load(const std::string &Path, Code2Vec &Embedder, Policy &Pol,
                   std::string *Error = nullptr) {
    return load(Path, Embedder, Pol, nullptr, nullptr, Error);
  }

  /// FNV-1a 64-bit over \p Size bytes (exposed for tests).
  static uint64_t checksum(const void *Data, size_t Size);
};

} // namespace nv

#endif // NV_SERVE_MODELSERIALIZER_H
