//===- serve/ModelSerializer.h - Versioned model save/load ------*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Binary persistence for a trained model: the Code2Vec embedding
/// generator (token/path tables, attention) and the PPO Policy (trunk,
/// heads). The paper trains once and deploys the frozen policy for
/// inference on unseen programs; this file is that deployment artifact.
///
/// Format v2 (little-endian, doubles written raw so a round trip is
/// bitwise exact):
///
///   u32 magic 'NVMF'   u32 version
///   u32 flags          (bit 0: trained on inner-context embeddings)
///   u32 paramCount
///   per param:  u32 rows, u32 cols, rows*cols f64 values
///   u64 FNV-1a checksum over everything before it
///
/// The flags word exists because weights alone under-specify a model: the
/// agent was trained on embeddings of a *particular* loop body selection
/// (inner vs outer context, §3.3), and a deployment that extracts the
/// other one silently serves a skewed distribution. A loaded model
/// therefore carries its own extraction setting.
///
/// Loading validates magic, version, per-parameter shapes against the
/// *destination* model (so a file trained with one architecture cannot be
/// loaded into another), byte counts, and the checksum — truncated or
/// bit-flipped files are rejected without touching the destination.
///
//===----------------------------------------------------------------------===//

#ifndef NV_SERVE_MODELSERIALIZER_H
#define NV_SERVE_MODELSERIALIZER_H

#include "embedding/Code2Vec.h"
#include "rl/Policy.h"

#include <cstdint>
#include <string>

namespace nv {

/// Model-level settings persisted alongside the weights.
struct ModelMeta {
  /// The context-extraction selection the model was trained with
  /// (VectorizationEnv::innerContextOnly).
  bool InnerContextOnly = false;
};

/// Save/load for the (embedder, policy) pair.
class ModelSerializer {
public:
  static constexpr uint32_t Magic = 0x4E564D46;  ///< 'NVMF'.
  static constexpr uint32_t FormatVersion = 2;

  /// Writes \p Embedder and \p Pol (with \p Meta in the header) to
  /// \p Path. Returns false (and sets \p Error) on I/O failure.
  static bool save(const std::string &Path, Code2Vec &Embedder, Policy &Pol,
                   const ModelMeta &Meta, std::string *Error = nullptr);

  /// Back-compat overload: default metadata (outer-context model).
  static bool save(const std::string &Path, Code2Vec &Embedder, Policy &Pol,
                   std::string *Error = nullptr) {
    return save(Path, Embedder, Pol, ModelMeta(), Error);
  }

  /// Reads \p Path into \p Embedder and \p Pol, and the header settings
  /// into \p Meta (may be null). All-or-nothing: on any validation failure
  /// the destination parameters are left untouched and \p Error describes
  /// the problem.
  static bool load(const std::string &Path, Code2Vec &Embedder, Policy &Pol,
                   ModelMeta *Meta, std::string *Error = nullptr);

  /// Back-compat overload discarding the metadata.
  static bool load(const std::string &Path, Code2Vec &Embedder, Policy &Pol,
                   std::string *Error = nullptr) {
    return load(Path, Embedder, Pol, nullptr, Error);
  }

  /// FNV-1a 64-bit over \p Size bytes (exposed for tests).
  static uint64_t checksum(const void *Data, size_t Size);
};

} // namespace nv

#endif // NV_SERVE_MODELSERIALIZER_H
