//===- serve/ServeStats.cpp - Serving throughput/latency counters ----------===//

#include "serve/ServeStats.h"

#include "nn/Kernels.h"

#include <ostream>

using namespace nv;

double ServeSnapshot::hitRate() const {
  const uint64_t Hits = CacheHits + DedupHits;
  const uint64_t Total = Hits + CacheMisses;
  return Total == 0 ? 0.0 : static_cast<double>(Hits) / Total;
}

double ServeSnapshot::throughput() const {
  if (TotalMicros == 0)
    return 0.0;
  return static_cast<double>(ProgramsServed) * 1e6 / TotalMicros;
}

void ServeStats::addBatch(const ServeStats &Delta) {
  std::lock_guard<std::mutex> Lock(SnapshotMutex);
  BatchesServed += Delta.BatchesServed.load();
  ProgramsServed += Delta.ProgramsServed.load();
  ProgramsRejected += Delta.ProgramsRejected.load();
  DegradedRequests += Delta.DegradedRequests.load();
  PredictFailures += Delta.PredictFailures.load();
  LoopsServed += Delta.LoopsServed.load();
  CacheHits += Delta.CacheHits.load();
  DedupHits += Delta.DedupHits.load();
  CacheMisses += Delta.CacheMisses.load();
  ForwardPasses += Delta.ForwardPasses.load();
  LoopsPerForward += Delta.LoopsPerForward.load();
  QuantizedBatches += Delta.QuantizedBatches.load();
  ExtractMicros += Delta.ExtractMicros.load();
  InferMicros += Delta.InferMicros.load();
  RenderMicros += Delta.RenderMicros.load();
  TotalMicros += Delta.TotalMicros.load();
  ParseMicros += Delta.ParseMicros.load();
  LoopExtractMicros += Delta.LoopExtractMicros.load();
  ContextMicros += Delta.ContextMicros.load();
  EmbedMicros += Delta.EmbedMicros.load();
  LoopsAnalyzed += Delta.LoopsAnalyzed.load();
  PlansClamped += Delta.PlansClamped.load();
  LegalityMicros += Delta.LegalityMicros.load();
  for (int I = 0; I < NumAccessClasses; ++I)
    AccessClasses[I] += Delta.AccessClasses[I].load();
  for (int I = 0; I < NumPredictMethods; ++I) {
    PerMethod[I].Loops += Delta.PerMethod[I].Loops.load();
    PerMethod[I].CacheHits += Delta.PerMethod[I].CacheHits.load();
    PerMethod[I].DedupHits += Delta.PerMethod[I].DedupHits.load();
    PerMethod[I].Misses += Delta.PerMethod[I].Misses.load();
    PerMethod[I].PredictMicros += Delta.PerMethod[I].PredictMicros.load();
  }
}

ServeSnapshot ServeStats::snapshot() const {
  std::lock_guard<std::mutex> Lock(SnapshotMutex);
  ServeSnapshot S;
  S.BatchesServed = BatchesServed.load();
  S.ProgramsServed = ProgramsServed.load();
  S.ProgramsRejected = ProgramsRejected.load();
  S.DegradedRequests = DegradedRequests.load();
  S.PredictFailures = PredictFailures.load();
  S.LoopsServed = LoopsServed.load();
  S.CacheHits = CacheHits.load();
  S.DedupHits = DedupHits.load();
  S.CacheMisses = CacheMisses.load();
  S.ForwardPasses = ForwardPasses.load();
  S.LoopsPerForward = LoopsPerForward.load();
  S.QuantizedBatches = QuantizedBatches.load();
  S.ExtractMicros = ExtractMicros.load();
  S.InferMicros = InferMicros.load();
  S.RenderMicros = RenderMicros.load();
  S.TotalMicros = TotalMicros.load();
  S.ParseMicros = ParseMicros.load();
  S.LoopExtractMicros = LoopExtractMicros.load();
  S.ContextMicros = ContextMicros.load();
  S.EmbedMicros = EmbedMicros.load();
  S.LoopsAnalyzed = LoopsAnalyzed.load();
  S.PlansClamped = PlansClamped.load();
  S.LegalityMicros = LegalityMicros.load();
  for (int I = 0; I < NumAccessClasses; ++I)
    S.AccessClasses[I] = AccessClasses[I].load();
  for (int I = 0; I < NumPredictMethods; ++I) {
    S.PerMethod[I].Loops = PerMethod[I].Loops.load();
    S.PerMethod[I].CacheHits = PerMethod[I].CacheHits.load();
    S.PerMethod[I].DedupHits = PerMethod[I].DedupHits.load();
    S.PerMethod[I].Misses = PerMethod[I].Misses.load();
    S.PerMethod[I].PredictMicros = PerMethod[I].PredictMicros.load();
  }
  return S;
}

void ServeStats::reset() {
  std::lock_guard<std::mutex> Lock(SnapshotMutex);
  BatchesServed = 0;
  ProgramsServed = 0;
  ProgramsRejected = 0;
  DegradedRequests = 0;
  PredictFailures = 0;
  LoopsServed = 0;
  CacheHits = 0;
  DedupHits = 0;
  CacheMisses = 0;
  ForwardPasses = 0;
  LoopsPerForward = 0;
  QuantizedBatches = 0;
  ExtractMicros = 0;
  InferMicros = 0;
  RenderMicros = 0;
  TotalMicros = 0;
  ParseMicros = 0;
  LoopExtractMicros = 0;
  ContextMicros = 0;
  EmbedMicros = 0;
  LoopsAnalyzed = 0;
  PlansClamped = 0;
  LegalityMicros = 0;
  for (std::atomic<uint64_t> &C : AccessClasses)
    C = 0;
  for (MethodCounters &M : PerMethod)
    M.reset();
}

Table ServeStats::toTable() const {
  const ServeSnapshot S = snapshot();
  Table T({"metric", "value"});
  auto AddCount = [&T](const char *Name, uint64_t Value) {
    T.addRow({Name, std::to_string(Value)});
  };
  AddCount("batches", S.BatchesServed);
  AddCount("quantized batches", S.QuantizedBatches);
  T.addRow({"kernel isa", kernelIsaName(kernelIsa())});
  AddCount("programs served", S.ProgramsServed);
  AddCount("programs rejected", S.ProgramsRejected);
  AddCount("degraded requests", S.DegradedRequests);
  AddCount("predict failures", S.PredictFailures);
  AddCount("loops served", S.LoopsServed);
  AddCount("cache hits", S.CacheHits);
  AddCount("dedup hits", S.DedupHits);
  AddCount("cache misses", S.CacheMisses);
  T.addRow({"cache hit rate", Table::fmt(S.hitRate(), 3)});
  AddCount("forward passes", S.ForwardPasses);
  T.addRow({"loops per forward",
            Table::fmt(S.ForwardPasses == 0
                           ? 0.0
                           : static_cast<double>(S.LoopsPerForward) /
                                 S.ForwardPasses,
                       1)});
  T.addRow({"extract ms", Table::fmt(S.ExtractMicros / 1e3)});
  T.addRow({"  parse ms (cpu)", Table::fmt(S.ParseMicros / 1e3)});
  T.addRow(
      {"  loop extract ms (cpu)", Table::fmt(S.LoopExtractMicros / 1e3)});
  T.addRow({"  contexts ms (cpu)", Table::fmt(S.ContextMicros / 1e3)});
  T.addRow({"infer ms", Table::fmt(S.InferMicros / 1e3)});
  T.addRow({"  embed ms", Table::fmt(S.EmbedMicros / 1e3)});
  AddCount("loops analyzed", S.LoopsAnalyzed);
  AddCount("plans clamped", S.PlansClamped);
  T.addRow({"  legality ms (cpu)", Table::fmt(S.LegalityMicros / 1e3)});
  for (int C = 0; C < NumAccessClasses; ++C)
    AddCount((std::string("accesses ") +
              accessClassName(static_cast<AccessClass>(C)))
                 .c_str(),
             S.AccessClasses[C]);
  T.addRow({"render ms", Table::fmt(S.RenderMicros / 1e3)});
  T.addRow({"total ms", Table::fmt(S.TotalMicros / 1e3)});
  T.addRow({"programs/s", Table::fmt(S.throughput(), 0)});
  return T;
}

Table ServeStats::methodTable() const {
  const ServeSnapshot S = snapshot();
  Table T({"backend", "loops", "cache hits", "dedup hits", "computed",
           "backend ms"});
  for (int I = 0; I < NumPredictMethods; ++I) {
    const MethodCountersView &M = S.PerMethod[I];
    if (M.Loops == 0)
      continue;
    T.addRow({methodName(static_cast<PredictMethod>(I)),
              std::to_string(M.Loops), std::to_string(M.CacheHits),
              std::to_string(M.DedupHits), std::to_string(M.Misses),
              Table::fmt(M.PredictMicros / 1e3)});
  }
  return T;
}

void ServeStats::print(std::ostream &OS) const {
  const ServeSnapshot S = snapshot();
  toTable().print(OS);
  for (const MethodCountersView &M : S.PerMethod) {
    if (M.Loops != 0) {
      methodTable().print(OS);
      break;
    }
  }
}
