//===- serve/ServeStats.cpp - Serving throughput/latency counters ----------===//

#include "serve/ServeStats.h"

#include <ostream>

using namespace nv;

double ServeStats::hitRate() const {
  const uint64_t Hits = CacheHits.load() + DedupHits.load();
  const uint64_t Total = Hits + CacheMisses.load();
  return Total == 0 ? 0.0 : static_cast<double>(Hits) / Total;
}

double ServeStats::throughput() const {
  const uint64_t Micros = TotalMicros.load();
  if (Micros == 0)
    return 0.0;
  return static_cast<double>(ProgramsServed.load()) * 1e6 / Micros;
}

void ServeStats::reset() {
  BatchesServed = 0;
  ProgramsServed = 0;
  ProgramsRejected = 0;
  LoopsServed = 0;
  CacheHits = 0;
  DedupHits = 0;
  CacheMisses = 0;
  ForwardPasses = 0;
  LoopsPerForward = 0;
  ExtractMicros = 0;
  InferMicros = 0;
  RenderMicros = 0;
  TotalMicros = 0;
  ParseMicros = 0;
  LoopExtractMicros = 0;
  ContextMicros = 0;
  EmbedMicros = 0;
  for (MethodCounters &M : PerMethod)
    M.reset();
}

Table ServeStats::toTable() const {
  Table T({"metric", "value"});
  auto AddCount = [&T](const char *Name, uint64_t Value) {
    T.addRow({Name, std::to_string(Value)});
  };
  AddCount("batches", BatchesServed.load());
  AddCount("programs served", ProgramsServed.load());
  AddCount("programs rejected", ProgramsRejected.load());
  AddCount("loops served", LoopsServed.load());
  AddCount("cache hits", CacheHits.load());
  AddCount("dedup hits", DedupHits.load());
  AddCount("cache misses", CacheMisses.load());
  T.addRow({"cache hit rate", Table::fmt(hitRate(), 3)});
  AddCount("forward passes", ForwardPasses.load());
  const uint64_t Passes = ForwardPasses.load();
  T.addRow({"loops per forward",
            Table::fmt(Passes == 0 ? 0.0
                                   : static_cast<double>(
                                         LoopsPerForward.load()) /
                                         Passes,
                       1)});
  T.addRow({"extract ms", Table::fmt(ExtractMicros.load() / 1e3)});
  T.addRow({"  parse ms (cpu)", Table::fmt(ParseMicros.load() / 1e3)});
  T.addRow({"  loop extract ms (cpu)",
            Table::fmt(LoopExtractMicros.load() / 1e3)});
  T.addRow({"  contexts ms (cpu)", Table::fmt(ContextMicros.load() / 1e3)});
  T.addRow({"infer ms", Table::fmt(InferMicros.load() / 1e3)});
  T.addRow({"  embed ms", Table::fmt(EmbedMicros.load() / 1e3)});
  T.addRow({"render ms", Table::fmt(RenderMicros.load() / 1e3)});
  T.addRow({"total ms", Table::fmt(TotalMicros.load() / 1e3)});
  T.addRow({"programs/s", Table::fmt(throughput(), 0)});
  return T;
}

Table ServeStats::methodTable() const {
  Table T({"backend", "loops", "cache hits", "dedup hits", "computed",
           "backend ms"});
  for (int I = 0; I < NumPredictMethods; ++I) {
    const MethodCounters &M = PerMethod[I];
    if (M.Loops.load() == 0)
      continue;
    T.addRow({methodName(static_cast<PredictMethod>(I)),
              std::to_string(M.Loops.load()),
              std::to_string(M.CacheHits.load()),
              std::to_string(M.DedupHits.load()),
              std::to_string(M.Misses.load()),
              Table::fmt(M.PredictMicros.load() / 1e3)});
  }
  return T;
}

void ServeStats::print(std::ostream &OS) const {
  toTable().print(OS);
  for (const MethodCounters &M : PerMethod) {
    if (M.Loops.load() != 0) {
      methodTable().print(OS);
      break;
    }
  }
}
