//===- serve/ServeStats.h - Serving throughput/latency counters -*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Operational counters for the annotation service: programs and loops
/// served, plan-cache hits/misses, batched forward passes, and wall time
/// split across the pipeline phases. All counters are atomic so worker
/// threads update them without coordination; rendering goes through
/// support/Table so service reports look like every other harness table.
///
//===----------------------------------------------------------------------===//

#ifndef NV_SERVE_SERVESTATS_H
#define NV_SERVE_SERVESTATS_H

#include "support/Table.h"

#include <atomic>
#include <cstdint>
#include <iosfwd>

namespace nv {

/// Counters accumulated across annotateBatch() calls.
class ServeStats {
public:
  std::atomic<uint64_t> BatchesServed{0};
  std::atomic<uint64_t> ProgramsServed{0}; ///< Successfully annotated.
  std::atomic<uint64_t> ProgramsRejected{0}; ///< Parse failures / no loops.
  std::atomic<uint64_t> LoopsServed{0};
  std::atomic<uint64_t> CacheHits{0};
  std::atomic<uint64_t> DedupHits{0}; ///< Served by intra-batch dedup.
  std::atomic<uint64_t> CacheMisses{0}; ///< Distinct loops sent to the net.
  std::atomic<uint64_t> ForwardPasses{0}; ///< Batched policy forwards run.
  std::atomic<uint64_t> LoopsPerForward{0}; ///< Rows across all forwards.

  /// Wall time (microseconds) per phase, summed over batches.
  std::atomic<uint64_t> ExtractMicros{0}; ///< Parse + path contexts.
  std::atomic<uint64_t> InferMicros{0};   ///< Embed + policy forward.
  std::atomic<uint64_t> RenderMicros{0};  ///< Pragma injection + printing.
  std::atomic<uint64_t> TotalMicros{0};   ///< End-to-end annotateBatch time.

  /// Fraction of loop lookups answered without a fresh forward row
  /// (LRU cache hits + intra-batch dedup hits).
  double hitRate() const;

  /// Programs per second over the accumulated total time (0 if no time).
  double throughput() const;

  /// Resets every counter to zero.
  void reset();

  /// Renders the counters as a two-column table.
  Table toTable() const;

  /// Prints toTable() to \p OS.
  void print(std::ostream &OS) const;
};

} // namespace nv

#endif // NV_SERVE_SERVESTATS_H
