//===- serve/ServeStats.h - Serving throughput/latency counters -*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Operational counters for the annotation service: programs and loops
/// served, plan-cache hits/misses, batched forward passes, and wall time
/// split across the pipeline phases.
///
/// ServeStats is a thin counter view over the serving pipeline (latency
/// *distributions* live in the process-wide telemetry histograms, see
/// support/Telemetry.h). The fields stay public atomics for cheap direct
/// reads, but every derived reading — hitRate(), throughput(), the
/// tables, print() — goes through snapshot(), which is coherent with
/// batch publication: annotateBatch accumulates a whole batch into a
/// private delta and folds it in with one addBatch() call under the
/// snapshot mutex, so a snapshot never sees a batch half-applied (e.g.
/// CacheMisses bumped but TotalMicros not yet, which used to make
/// throughput() transiently nonsensical mid-batch).
///
//===----------------------------------------------------------------------===//

#ifndef NV_SERVE_SERVESTATS_H
#define NV_SERVE_SERVESTATS_H

#include "ir/Legality.h"
#include "predictors/Predictor.h"
#include "support/Table.h"

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <mutex>

namespace nv {

/// Per-backend slice of the serving counters: how much traffic each
/// PredictMethod carried and what its backend time cost. PredictMicros is
/// summed across (possibly concurrent) backend calls, so it is cumulative
/// backend time, not wall clock.
struct MethodCounters {
  std::atomic<uint64_t> Loops{0};     ///< Sites served (incl. cached).
  std::atomic<uint64_t> CacheHits{0}; ///< Sites answered by the LRU cache.
  std::atomic<uint64_t> DedupHits{0}; ///< Sites answered by batch dedup.
  std::atomic<uint64_t> Misses{0};    ///< Sites the backend computed.
  std::atomic<uint64_t> PredictMicros{0}; ///< Cumulative backend time.

  void reset() {
    Loops = 0;
    CacheHits = 0;
    DedupHits = 0;
    Misses = 0;
    PredictMicros = 0;
  }
};

/// Plain (non-atomic) copy of one backend's counters.
struct MethodCountersView {
  uint64_t Loops = 0;
  uint64_t CacheHits = 0;
  uint64_t DedupHits = 0;
  uint64_t Misses = 0;
  uint64_t PredictMicros = 0;
};

/// One coherent reading of every serving counter: all fields come from
/// the same instant under the publication mutex, so cross-field ratios
/// (hit rate, throughput, loops per forward) are internally consistent.
struct ServeSnapshot {
  uint64_t BatchesServed = 0;
  uint64_t ProgramsServed = 0;
  uint64_t ProgramsRejected = 0;
  uint64_t DegradedRequests = 0; ///< Ok, but via the fallback ladder.
  uint64_t PredictFailures = 0;  ///< Backend predict calls that failed.
  uint64_t LoopsServed = 0;
  uint64_t CacheHits = 0;
  uint64_t DedupHits = 0;
  uint64_t CacheMisses = 0;
  uint64_t ForwardPasses = 0;
  uint64_t LoopsPerForward = 0;
  uint64_t QuantizedBatches = 0; ///< Batches served by int8 generations.
  uint64_t ExtractMicros = 0;
  uint64_t InferMicros = 0;
  uint64_t RenderMicros = 0;
  uint64_t TotalMicros = 0;
  uint64_t ParseMicros = 0;
  uint64_t LoopExtractMicros = 0;
  uint64_t ContextMicros = 0;
  uint64_t EmbedMicros = 0;
  uint64_t LoopsAnalyzed = 0;  ///< Sites run through the legality analysis.
  uint64_t PlansClamped = 0;   ///< Predictions legality had to shrink.
  uint64_t LegalityMicros = 0; ///< Lowering + dependence analysis time.
  /// Memory accesses seen by the analysis, by AccessClass (uniform /
  /// consecutive / strided / gather) — the serve-side view of what kind
  /// of loops the deployment actually sees.
  uint64_t AccessClasses[NumAccessClasses] = {0, 0, 0, 0};
  MethodCountersView PerMethod[NumPredictMethods];

  /// Fraction of loop lookups answered without a fresh forward row
  /// (LRU cache hits + intra-batch dedup hits).
  double hitRate() const;

  /// Programs per second over the accumulated total time (0 if no time).
  double throughput() const;
};

/// Counters accumulated across annotateBatch() calls.
class ServeStats {
public:
  std::atomic<uint64_t> BatchesServed{0};
  std::atomic<uint64_t> ProgramsServed{0}; ///< Successfully annotated.
  std::atomic<uint64_t> ProgramsRejected{0}; ///< Parse failures / no loops.
  /// Requests answered Ok but by a fallback-ladder backend (or the
  /// identity floor) because the requested backend was unavailable.
  std::atomic<uint64_t> DegradedRequests{0};
  /// Backend predict calls that threw or were fault-injected (each one
  /// also feeds that backend's circuit breaker).
  std::atomic<uint64_t> PredictFailures{0};
  std::atomic<uint64_t> LoopsServed{0};
  std::atomic<uint64_t> CacheHits{0};
  std::atomic<uint64_t> DedupHits{0}; ///< Served by intra-batch dedup.
  std::atomic<uint64_t> CacheMisses{0}; ///< Distinct loops sent to the net.
  std::atomic<uint64_t> ForwardPasses{0}; ///< Batched policy forwards run.
  std::atomic<uint64_t> LoopsPerForward{0}; ///< Rows across all forwards.
  /// Batches whose resolved model served through the int8 kernels
  /// (ServingModelConfig::Quantized / ServeConfig::Quantized).
  std::atomic<uint64_t> QuantizedBatches{0};

  /// Wall time (microseconds) per phase, summed over batches.
  std::atomic<uint64_t> ExtractMicros{0}; ///< Parse + path contexts.
  std::atomic<uint64_t> InferMicros{0};   ///< Embed + backend predictions.
  std::atomic<uint64_t> RenderMicros{0};  ///< Pragma injection + printing.
  std::atomic<uint64_t> TotalMicros{0};   ///< End-to-end annotateBatch time.

  /// Cold-path front-end split (microseconds). Unlike the wall-clock
  /// phase times above, these are summed per request across the worker
  /// threads (cumulative CPU time, like MethodCounters::PredictMicros),
  /// so a front-end regression — slower parsing, slower path-context
  /// extraction — is visible even when pool parallelism hides it from
  /// the wall clock.
  std::atomic<uint64_t> ParseMicros{0};   ///< parseSource per request.
  std::atomic<uint64_t> LoopExtractMicros{0}; ///< extractLoops per request.
  std::atomic<uint64_t> ContextMicros{0}; ///< Path contexts + cache keys.
  /// Wall time of the batched Code2Vec encode over the deduplicated miss
  /// set (runs under the model lock, so wall == cumulative).
  std::atomic<uint64_t> EmbedMicros{0};

  /// Legality-analysis counters: sites lowered + dependence-tested (cache
  /// misses only — hits reuse the digest stored with the cached plan),
  /// predictions the per-loop legality clamp had to shrink, cumulative
  /// analysis time, and the per-AccessClass mix of analyzed accesses.
  std::atomic<uint64_t> LoopsAnalyzed{0};
  std::atomic<uint64_t> PlansClamped{0};
  std::atomic<uint64_t> LegalityMicros{0};
  std::atomic<uint64_t> AccessClasses[NumAccessClasses] = {};

  /// Per-backend traffic/latency breakdown, indexed by PredictMethod.
  MethodCounters PerMethod[NumPredictMethods];

  MethodCounters &forMethod(PredictMethod M) {
    return PerMethod[static_cast<size_t>(M)];
  }
  const MethodCounters &forMethod(PredictMethod M) const {
    return PerMethod[static_cast<size_t>(M)];
  }

  /// Folds a quiesced batch-local \p Delta into this object under the
  /// snapshot mutex, so concurrent snapshot()/reset() callers observe
  /// each batch all-or-nothing.
  void addBatch(const ServeStats &Delta);

  /// One coherent copy of every field (serialized against addBatch and
  /// reset). All derived readings below are computed over a snapshot.
  ServeSnapshot snapshot() const;

  /// See ServeSnapshot::hitRate().
  double hitRate() const { return snapshot().hitRate(); }

  /// See ServeSnapshot::throughput().
  double throughput() const { return snapshot().throughput(); }

  /// Resets every counter to zero (coherent with addBatch: a concurrent
  /// batch is either fully in before the wipe or fully published after).
  void reset();

  /// Renders the counters as a two-column table.
  Table toTable() const;

  /// One row per backend that carried traffic (loops, hit sources,
  /// cumulative backend time).
  Table methodTable() const;

  /// Prints toTable() (and methodTable() when any backend saw traffic)
  /// to \p OS.
  void print(std::ostream &OS) const;

private:
  /// Serializes addBatch / snapshot / reset against each other. Workers
  /// inside a batch never touch it — they accumulate into the batch
  /// delta — so it is uncontended except at batch boundaries.
  mutable std::mutex SnapshotMutex;
};

} // namespace nv

#endif // NV_SERVE_SERVESTATS_H
