//===- predictors/DecisionTree.cpp - CART over embeddings ------------------===//

#include "predictors/DecisionTree.h"

#include "support/Wire.h"

#include <algorithm>
#include <cassert>
#include <numeric>

using namespace nv;

namespace {

/// Gini impurity from class counts.
double gini(const std::vector<int> &Counts, int Total) {
  if (Total == 0)
    return 0.0;
  double SumSquares = 0.0;
  for (int C : Counts) {
    const double P = static_cast<double>(C) / Total;
    SumSquares += P * P;
  }
  return 1.0 - SumSquares;
}

int majority(const std::vector<int> &Counts) {
  return static_cast<int>(
      std::max_element(Counts.begin(), Counts.end()) - Counts.begin());
}

} // namespace

int DecisionTree::build(const std::vector<std::vector<double>> &X,
                        const std::vector<int> &Y,
                        std::vector<int> &Indices, int Depth) {
  std::vector<int> Counts(NumClasses, 0);
  for (int I : Indices)
    ++Counts[Y[I]];
  const int Total = static_cast<int>(Indices.size());

  Node N;
  N.Label = majority(Counts);
  const double ParentGini = gini(Counts, Total);

  const bool Stop = Depth >= Config.MaxDepth ||
                    Total < Config.MinSamplesSplit || ParentGini <= 0.0;
  if (!Stop) {
    const int NumFeatures = static_cast<int>(X[Indices[0]].size());
    double BestGain = 1e-9;
    int BestFeature = -1;
    double BestThreshold = 0.0;

    for (int F = 0; F < NumFeatures; ++F) {
      // Sort indices by feature value and sweep split points.
      std::vector<int> Sorted = Indices;
      std::sort(Sorted.begin(), Sorted.end(), [&](int A, int B) {
        return X[A][F] < X[B][F];
      });
      std::vector<int> LeftCounts(NumClasses, 0);
      std::vector<int> RightCounts = Counts;
      for (int P = 0; P + 1 < Total; ++P) {
        const int Idx = Sorted[P];
        ++LeftCounts[Y[Idx]];
        --RightCounts[Y[Idx]];
        const double Here = X[Idx][F];
        const double Next = X[Sorted[P + 1]][F];
        if (Here == Next)
          continue; // No separating threshold between equal values.
        const int NumLeft = P + 1;
        const int NumRight = Total - NumLeft;
        if (NumLeft < Config.MinSamplesLeaf ||
            NumRight < Config.MinSamplesLeaf)
          continue;
        const double Split =
            (static_cast<double>(NumLeft) / Total) *
                gini(LeftCounts, NumLeft) +
            (static_cast<double>(NumRight) / Total) *
                gini(RightCounts, NumRight);
        const double Gain = ParentGini - Split;
        if (Gain > BestGain) {
          BestGain = Gain;
          BestFeature = F;
          BestThreshold = 0.5 * (Here + Next);
        }
      }
    }

    if (BestFeature >= 0) {
      std::vector<int> LeftIdx, RightIdx;
      for (int I : Indices) {
        if (X[I][BestFeature] <= BestThreshold)
          LeftIdx.push_back(I);
        else
          RightIdx.push_back(I);
      }
      assert(!LeftIdx.empty() && !RightIdx.empty() &&
             "degenerate split slipped through");
      N.Feature = BestFeature;
      N.Threshold = BestThreshold;
      const int Self = static_cast<int>(Nodes.size());
      Nodes.push_back(N);
      const int Left = build(X, Y, LeftIdx, Depth + 1);
      const int Right = build(X, Y, RightIdx, Depth + 1);
      Nodes[Self].Left = Left;
      Nodes[Self].Right = Right;
      return Self;
    }
  }

  const int Self = static_cast<int>(Nodes.size());
  Nodes.push_back(N); // Leaf.
  return Self;
}

void DecisionTree::fit(const std::vector<std::vector<double>> &X,
                       const std::vector<int> &Y, int NumClassesIn) {
  assert(!X.empty() && X.size() == Y.size() && "bad training data");
  NumClasses = NumClassesIn;
  NumFeatures = static_cast<int>(X[0].size());
  Nodes.clear();
  std::vector<int> Indices(X.size());
  std::iota(Indices.begin(), Indices.end(), 0);
  build(X, Y, Indices, /*Depth=*/0);
}

int DecisionTree::predict(const std::vector<double> &Row) const {
  assert(!Nodes.empty() && "predict() before fit()");
  int Cur = 0;
  for (;;) {
    const Node &N = Nodes[Cur];
    if (N.Feature < 0)
      return N.Label;
    Cur = Row[N.Feature] <= N.Threshold ? N.Left : N.Right;
  }
}

void DecisionTree::serialize(std::vector<char> &Out) const {
  wire::appendValue(Out, static_cast<int32_t>(Config.MaxDepth));
  wire::appendValue(Out, static_cast<int32_t>(Config.MinSamplesSplit));
  wire::appendValue(Out, static_cast<int32_t>(Config.MinSamplesLeaf));
  wire::appendValue(Out, static_cast<int32_t>(NumClasses));
  wire::appendValue(Out, static_cast<int32_t>(NumFeatures));
  wire::appendValue(Out, static_cast<uint64_t>(Nodes.size()));
  for (const Node &N : Nodes) {
    wire::appendValue(Out, static_cast<int32_t>(N.Feature));
    wire::appendValue(Out, N.Threshold);
    wire::appendValue(Out, static_cast<int32_t>(N.Left));
    wire::appendValue(Out, static_cast<int32_t>(N.Right));
    wire::appendValue(Out, static_cast<int32_t>(N.Label));
  }
}

bool DecisionTree::deserialize(const char *Data, size_t Size,
                               std::string *Error) {
  auto Fail = [Error](const char *Message) {
    if (Error)
      *Error = Message;
    return false;
  };
  size_t Offset = 0;
  int32_t MaxDepth = 0, MinSplit = 0, MinLeaf = 0, Classes = 0,
          Features = 0;
  uint64_t Count = 0;
  if (!wire::readValue(Data, Size, Offset, MaxDepth) ||
      !wire::readValue(Data, Size, Offset, MinSplit) ||
      !wire::readValue(Data, Size, Offset, MinLeaf) ||
      !wire::readValue(Data, Size, Offset, Classes) ||
      !wire::readValue(Data, Size, Offset, Features) ||
      !wire::readValue(Data, Size, Offset, Count))
    return Fail("tree section: truncated header");
  if (Features < 0)
    return Fail("tree section: negative feature count");
  // A claimed node count must fit in the remaining bytes BEFORE any
  // allocation: a corrupt count must return false, not throw bad_alloc.
  constexpr size_t NodeBytes = 4 * sizeof(int32_t) + sizeof(double);
  if (Count > (Size - Offset) / NodeBytes)
    return Fail("tree section: node count exceeds payload");
  std::vector<Node> NewNodes;
  NewNodes.reserve(Count);
  for (uint64_t I = 0; I < Count; ++I) {
    Node N;
    int32_t Feature = 0, Left = 0, Right = 0, Label = 0;
    if (!wire::readValue(Data, Size, Offset, Feature) ||
        !wire::readValue(Data, Size, Offset, N.Threshold) ||
        !wire::readValue(Data, Size, Offset, Left) ||
        !wire::readValue(Data, Size, Offset, Right) ||
        !wire::readValue(Data, Size, Offset, Label))
      return Fail("tree section: truncated node");
    N.Feature = Feature;
    N.Left = Left;
    N.Right = Right;
    N.Label = Label;
    const int64_t Last = static_cast<int64_t>(Count) - 1;
    // Corrupt sections must not make predict() misbehave: labels index
    // the class space, the split feature must be a fitted column (no
    // out-of-bounds row reads), and children must point strictly forward
    // in the array — build() lays them out that way, and a strictly
    // increasing walk cannot cycle.
    if (N.Label < 0 || N.Label >= Classes)
      return Fail("tree section: leaf label out of range");
    if (N.Feature >= 0) {
      if (N.Feature >= Features)
        return Fail("tree section: split feature out of range");
      if (N.Left <= static_cast<int64_t>(I) || N.Left > Last ||
          N.Right <= static_cast<int64_t>(I) || N.Right > Last)
        return Fail("tree section: child index out of range");
    }
    NewNodes.push_back(N);
  }
  if (Offset != Size)
    return Fail("tree section: trailing bytes");
  Config.MaxDepth = MaxDepth;
  Config.MinSamplesSplit = MinSplit;
  Config.MinSamplesLeaf = MinLeaf;
  NumClasses = Classes;
  NumFeatures = Features;
  Nodes = std::move(NewNodes);
  return true;
}

int DecisionTree::depth() const {
  // Depth via recursion over the node array.
  if (Nodes.empty())
    return 0;
  struct Walker {
    const std::vector<Node> &Nodes;
    int walk(int Index) const {
      const Node &N = Nodes[Index];
      if (N.Feature < 0)
        return 1;
      return 1 + std::max(walk(N.Left), walk(N.Right));
    }
  };
  return Walker{Nodes}.walk(0);
}
