//===- predictors/DecisionTree.h - CART over embeddings ---------*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CART decision-tree classifier (Gini impurity, axis-aligned splits) from
/// embedding vectors to joint (VF, IF) classes — the second supervised
/// method the framework supports after end-to-end training (§3.5; Quinlan
/// [9]). Labels come from the brute-force sweep, like NNS.
///
//===----------------------------------------------------------------------===//

#ifndef NV_PREDICTORS_DECISIONTREE_H
#define NV_PREDICTORS_DECISIONTREE_H

#include <cstddef>
#include <string>
#include <vector>

namespace nv {

/// Decision-tree hyperparameters.
struct DecisionTreeConfig {
  int MaxDepth = 10;
  int MinSamplesSplit = 4;
  int MinSamplesLeaf = 2;
};

/// Axis-aligned CART classifier.
class DecisionTree {
public:
  explicit DecisionTree(DecisionTreeConfig Config = DecisionTreeConfig())
      : Config(Config) {}

  /// Fits on rows \p X with integer class labels \p Y in [0, NumClasses).
  void fit(const std::vector<std::vector<double>> &X,
           const std::vector<int> &Y, int NumClasses);

  /// Predicted class for \p Row. Must be fitted first.
  int predict(const std::vector<double> &Row) const;

  /// True after a successful fit() or deserialize().
  bool fitted() const { return !Nodes.empty(); }

  /// Drops the fitted tree (e.g. when the embedding that produced its
  /// training rows is replaced by NeuroVectorizer::load()).
  void clear() {
    Nodes.clear();
    NumClasses = 0;
    NumFeatures = 0;
  }

  /// Number of nodes (tests/introspection).
  std::size_t numNodes() const { return Nodes.size(); }
  int depth() const;

  /// Width of the rows the tree was fitted on (0 before fit()). predict()
  /// requires rows at least this wide; the model loader cross-checks it
  /// against the embedding dimension.
  int numFeatures() const { return NumFeatures; }

  /// Appends the fitted tree (config, nodes) to \p Out — the payload of a
  /// model-file v3 'STRE' section. Byte-stable for identical trees.
  void serialize(std::vector<char> &Out) const;

  /// Replaces this tree with the one serialized in \p Data. All-or-
  /// nothing: on a malformed payload the current tree is untouched, false
  /// is returned, and \p Error (if non-null) describes the problem.
  bool deserialize(const char *Data, size_t Size, std::string *Error);

private:
  struct Node {
    int Feature = -1;       ///< -1 for leaves.
    double Threshold = 0.0; ///< Go left when x[Feature] <= Threshold.
    int Left = -1;
    int Right = -1;
    int Label = 0; ///< Majority class (used at leaves).
  };

  int build(const std::vector<std::vector<double>> &X,
            const std::vector<int> &Y, std::vector<int> &Indices, int Depth);

  DecisionTreeConfig Config;
  int NumClasses = 0;
  int NumFeatures = 0;
  std::vector<Node> Nodes;
};

} // namespace nv

#endif // NV_PREDICTORS_DECISIONTREE_H
