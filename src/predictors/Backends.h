//===- predictors/Backends.h - Concrete Predictor backends ------*- C++ -*-===//
//
// Part of the NeuroVectorizer reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The concrete Predictor implementations behind each PredictMethod:
///
///  - PolicyBackend     "rl"         greedy trained PPO policy (embedding)
///  - NNSBackend        "nns"        k-NN over the learned embedding
///  - TreeBackend       "tree"       CART over the learned embedding
///  - BaselineBackend   "baseline"   stock cost model, no pragma (source)
///  - RandomBackend     "random"     uniform factors, uncacheable (source)
///  - BruteForceBackend "bruteforce" exhaustive oracle search (source)
///
/// The supervised backends own their index/tree so the distillation
/// pipeline (train/Distill.h) can fit them in place and ModelSerializer
/// can persist them as v3 sections.
///
//===----------------------------------------------------------------------===//

#ifndef NV_PREDICTORS_BACKENDS_H
#define NV_PREDICTORS_BACKENDS_H

#include "embedding/PathContext.h"
#include "predictors/DecisionTree.h"
#include "predictors/NearestNeighbor.h"
#include "predictors/Predictor.h"
#include "support/RNG.h"

#include <mutex>

namespace nv {

class Policy;

/// Greedy inference over the trained PPO policy (the paper's deployed
/// agent: "inference ... requires a single step only", §4).
class PolicyBackend : public Predictor {
public:
  /// Borrows \p Pol (the live trained model); it must outlive the backend.
  PolicyBackend(Policy &Pol, const TargetInfo &TI) : Pol(Pol), TI(TI) {}

  Kind kind() const override { return Kind::Embedding; }
  std::string name() const override { return "rl"; }
  int wantsCols() const override;
  std::vector<VectorPlan> plansForEmbeddings(const Matrix &States,
                                             ThreadPool *Pool) override;

private:
  Policy &Pol;
  TargetInfo TI;
  Matrix WideBuf; ///< Zero-feature widening for legality-feature policies.
};

/// k-NN over (embedding, oracle plan) pairs (§3.5, 2.65x in the paper).
class NNSBackend : public Predictor {
public:
  explicit NNSBackend(int K = 3) : Index(K) {}

  Kind kind() const override { return Kind::Embedding; }
  std::string name() const override { return "nns"; }
  bool ready() const override { return Index.size() > 0; }
  std::vector<VectorPlan> plansForEmbeddings(const Matrix &States,
                                             ThreadPool *Pool) override;

  /// The underlying index, for the distillation pipeline and persistence.
  NearestNeighborPredictor &index() { return Index; }
  const NearestNeighborPredictor &index() const { return Index; }

private:
  NearestNeighborPredictor Index;
};

/// CART over the learned embedding (§3.5, 2.47x in the paper).
class TreeBackend : public Predictor {
public:
  TreeBackend(const TargetInfo &TI,
              DecisionTreeConfig Config = DecisionTreeConfig())
      : TI(TI), Tree(Config) {}

  Kind kind() const override { return Kind::Embedding; }
  std::string name() const override { return "tree"; }
  bool ready() const override { return Tree.fitted(); }
  std::vector<VectorPlan> plansForEmbeddings(const Matrix &States,
                                             ThreadPool *Pool) override;

  /// The underlying tree, for the distillation pipeline and persistence.
  DecisionTree &tree() { return Tree; }
  const DecisionTree &tree() const { return Tree; }

private:
  TargetInfo TI;
  DecisionTree Tree;
};

/// Shared scratch-environment machinery of the source-kind backends: each
/// query builds a private environment over the query program, so calls are
/// thread-safe and never touch shared model state.
class SearchBackendBase : public Predictor {
public:
  SearchBackendBase(const TargetInfo &TI, const MachineConfig &Machine,
                    const PathContextConfig &Paths)
      : TI(TI), Machine(Machine), Paths(Paths) {}

  Kind kind() const override { return Kind::Source; }

protected:
  TargetInfo TI;
  MachineConfig Machine;
  PathContextConfig Paths;
};

/// The stock cost model's own decisions (no pragma injected).
class BaselineBackend : public SearchBackendBase {
public:
  using SearchBackendBase::SearchBackendBase;

  std::string name() const override { return "baseline"; }
  std::vector<VectorPlan> plansForSource(const std::string &Source) override;
};

/// Uniformly random factor assignment (the paper's sanity baseline:
/// "performed much worse than the baseline").
class RandomBackend : public SearchBackendBase {
public:
  RandomBackend(const TargetInfo &TI, const MachineConfig &Machine,
                const PathContextConfig &Paths, uint64_t Seed)
      : SearchBackendBase(TI, Machine, Paths), Rng(Seed) {}

  std::string name() const override { return "random"; }
  /// Random answers must never be cached: two requests for the same loop
  /// are two independent draws.
  bool cacheable() const override { return false; }
  std::vector<VectorPlan> plansForSource(const std::string &Source) override;

private:
  std::mutex Mutex; ///< plansForSource may run on several pool threads.
  RNG Rng;
};

/// Exhaustive (VF, IF) search — the oracle Fig 7 normalizes against and
/// the labeler of the distillation pipeline (§2.3).
class BruteForceBackend : public SearchBackendBase {
public:
  BruteForceBackend(const TargetInfo &TI, const MachineConfig &Machine,
                    const PathContextConfig &Paths, int Passes = 2)
      : SearchBackendBase(TI, Machine, Paths), Passes(Passes) {}

  std::string name() const override { return "bruteforce"; }
  std::vector<VectorPlan> plansForSource(const std::string &Source) override;

private:
  int Passes;
};

} // namespace nv

#endif // NV_PREDICTORS_BACKENDS_H
